package duo

import (
	"fmt"
	"math/rand"

	"duo/internal/attack"
	"duo/internal/baseline"
	"duo/internal/core"
)

// BaselineName identifies one of the paper's comparison attacks.
type BaselineName string

// The baselines of §V-B.
const (
	// BaselineVanilla is random frame/pixel selection plus the SimBA query
	// attack [53].
	BaselineVanilla BaselineName = "Vanilla"
	// BaselineTIMI is the dense translation-invariant momentum-iterative
	// transfer attack [25] (no victim queries).
	BaselineTIMI BaselineName = "TIMI"
	// BaselineHEUNes is the heuristic black-box attack [16] with
	// motion-saliency ("nature-estimated") support selection.
	BaselineHEUNes BaselineName = "HEU-Nes"
	// BaselineHEUSim is HEU with Vanilla's random support selection.
	BaselineHEUSim BaselineName = "HEU-Sim"
)

// BaselineNames lists the comparison attacks in table order.
func BaselineNames() []BaselineName {
	return []BaselineName{BaselineVanilla, BaselineTIMI, BaselineHEUNes, BaselineHEUSim}
}

// AttackBaseline runs one of the paper's comparison attacks with budgets
// matched to DUO's (AttackOptions semantics are identical to Attack's;
// TIMI ignores Queries since it never queries the victim). The surrogate
// is only used by TIMI and may be nil for the other baselines.
func (s *System) AttackBaseline(name BaselineName, v, vt *Video, surr Model, opts AttackOptions) (*Report, error) {
	tcfg := core.DefaultTransferConfig(s.geom)
	if opts.K > 0 {
		tcfg.K = opts.K
	}
	if opts.N > 0 {
		tcfg.N = opts.N
	}
	if opts.Tau > 0 {
		tcfg.Tau = opts.Tau
	}
	queries := opts.Queries
	if queries <= 0 {
		queries = 600
	}
	if opts.Seed == 0 {
		opts.Seed = s.opts.Seed + 17
	}
	ctx := &attack.Context{Victim: s.Victim, M: s.M, Rng: rand.New(rand.NewSource(opts.Seed))}

	var out *attack.Outcome
	var err error
	switch name {
	case BaselineVanilla:
		cfg := baseline.DefaultVanillaConfig(tcfg)
		cfg.MaxQueries = queries
		out, err = baseline.RunVanilla(ctx, v, vt, cfg)
	case BaselineTIMI:
		if surr == nil {
			return nil, fmt.Errorf("duo: TIMI needs a surrogate model")
		}
		out, err = baseline.RunTIMI(surr, v, vt, baseline.DefaultTIMIConfig())
	case BaselineHEUNes, BaselineHEUSim:
		sel := baseline.SelectionSaliency
		if name == BaselineHEUSim {
			sel = baseline.SelectionRandom
		}
		cfg := baseline.DefaultHEUConfig(sel, tcfg.K, tcfg.N, tcfg.Tau)
		cfg.MaxQueries = queries
		out, err = baseline.RunHEU(ctx, v, vt, cfg)
	default:
		return nil, fmt.Errorf("duo: unknown baseline %q (have %v)", name, BaselineNames())
	}
	if err != nil {
		return nil, err
	}
	return s.report(v, vt, out), nil
}
