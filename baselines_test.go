package duo

import "testing"

func TestAttackBaselineVanilla(t *testing.T) {
	sys, _ := sharedSystem(t)
	pair := sys.SamplePairs(8, 1)[0]
	rep, err := sys.AttackBaseline(BaselineVanilla, pair.Original, pair.Target, nil,
		AttackOptions{Queries: 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 || rep.Queries > 40 {
		t.Errorf("queries = %d", rep.Queries)
	}
	if rep.Spa == 0 {
		t.Error("no perturbation recorded")
	}
}

func TestAttackBaselineTIMI(t *testing.T) {
	sys, surr := sharedSystem(t)
	pair := sys.SamplePairs(9, 1)[0]
	rep, err := sys.AttackBaseline(BaselineTIMI, pair.Original, pair.Target, surr, AttackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 0 {
		t.Errorf("TIMI used %d queries, want 0", rep.Queries)
	}
	// Dense: perturbs most of the clip.
	if float64(rep.Spa) < 0.5*float64(pair.Original.Data.Len()) {
		t.Errorf("TIMI Spa = %d, expected dense", rep.Spa)
	}
	if rep.SSIM >= 1 {
		t.Errorf("TIMI SSIM = %g, expected < 1", rep.SSIM)
	}
}

func TestAttackBaselineTIMINeedsSurrogate(t *testing.T) {
	sys, _ := sharedSystem(t)
	pair := sys.SamplePairs(10, 1)[0]
	if _, err := sys.AttackBaseline(BaselineTIMI, pair.Original, pair.Target, nil, AttackOptions{}); err == nil {
		t.Error("nil surrogate accepted for TIMI")
	}
}

func TestAttackBaselineHEUVariants(t *testing.T) {
	sys, _ := sharedSystem(t)
	pair := sys.SamplePairs(11, 1)[0]
	for _, name := range []BaselineName{BaselineHEUNes, BaselineHEUSim} {
		rep, err := sys.AttackBaseline(name, pair.Original, pair.Target, nil,
			AttackOptions{Queries: 40})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Queries > 40 {
			t.Errorf("%s queries = %d", name, rep.Queries)
		}
	}
}

func TestAttackBaselineUnknown(t *testing.T) {
	sys, _ := sharedSystem(t)
	pair := sys.SamplePairs(12, 1)[0]
	if _, err := sys.AttackBaseline("FGSM", pair.Original, pair.Target, nil, AttackOptions{}); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestBaselineNamesComplete(t *testing.T) {
	if got := len(BaselineNames()); got != 4 {
		t.Errorf("baselines = %d, want 4", got)
	}
}
