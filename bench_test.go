package duo

// bench_test.go regenerates every table and figure of the paper's
// evaluation as a Go benchmark (one Benchmark per artifact, per the
// experiment index in DESIGN.md §4), plus end-to-end pipeline benchmarks
// of the public API. Each iteration rebuilds the full scenario — corpus,
// victims, surrogates, attacks — so the reported time is the cost of
// regenerating the artifact from scratch at Tiny scale.
//
// Run: go test -bench=. -benchmem

import (
	"testing"

	"duo/internal/experiments"
)

// benchOptions restricts the sweep to one dataset and one victim so the
// whole suite completes in minutes; cmd/duobench runs the full grid.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:       experiments.Tiny,
		Seed:        1,
		Datasets:    []string{experiments.UCF101Sim},
		VictimArchs: []string{"I3D"},
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig3VictimMAP regenerates Fig. 3 (victim mAPs per backbone and
// loss).
func BenchmarkFig3VictimMAP(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4SurrogateMAP regenerates Fig. 4 (surrogate mAP vs stolen
// dataset size and feature size).
func BenchmarkFig4SurrogateMAP(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5QueryCurves regenerates Fig. 5 (objective 𝕋 vs queries).
func BenchmarkFig5QueryCurves(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkTable2AttackComparison regenerates Table II (all attacks on all
// victims).
func BenchmarkTable2AttackComparison(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3SurrogateSize regenerates Table III (surrogate dataset
// size sweep).
func BenchmarkTable3SurrogateSize(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4VictimLoss regenerates Table IV (victim loss sweep).
func BenchmarkTable4VictimLoss(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5KSweep regenerates Table V (pixel budget k sweep).
func BenchmarkTable5KSweep(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6NSweep regenerates Table VI (frame budget n sweep).
func BenchmarkTable6NSweep(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7TauSweep regenerates Table VII (τ sweep).
func BenchmarkTable7TauSweep(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8IterNumH regenerates Table VIII (iter_numH sweep).
func BenchmarkTable8IterNumH(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkTable9Transfer regenerates Table IX (SparseTransfer
// transferability under ℓ2/ℓ∞).
func BenchmarkTable9Transfer(b *testing.B) { benchExperiment(b, "table9") }

// BenchmarkTable10Defenses regenerates Table X (defense detection rates).
func BenchmarkTable10Defenses(b *testing.B) { benchExperiment(b, "table10") }

// BenchmarkAblationADMM regenerates the ℓp-box-ADMM-vs-top-k ablation
// (DESIGN.md §6).
func BenchmarkAblationADMM(b *testing.B) { benchExperiment(b, "ablation-admm") }

// BenchmarkAblationNDCG regenerates the NDCG-vs-plain-overlap ablation.
func BenchmarkAblationNDCG(b *testing.B) { benchExperiment(b, "ablation-ndcg") }

// BenchmarkAblationMask regenerates the masked-vs-dense SimBA ablation.
func BenchmarkAblationMask(b *testing.B) { benchExperiment(b, "ablation-mask") }

// --- end-to-end pipeline benchmarks over the public API -----------------

func benchSystem(b *testing.B) (*System, Model) {
	b.Helper()
	sys, err := NewSystem(tinySystemOptions())
	if err != nil {
		b.Fatal(err)
	}
	surr, err := sys.StealSurrogate(SurrogateOptions{MaxSamples: 16, Epochs: 3})
	if err != nil {
		b.Fatal(err)
	}
	return sys, surr
}

// BenchmarkSystemBuild measures victim training plus gallery indexing.
func BenchmarkSystemBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSystem(tinySystemOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurrogateSteal measures black-box dataset stealing plus
// surrogate training.
func BenchmarkSurrogateSteal(b *testing.B) {
	sys, err := NewSystem(tinySystemOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.StealSurrogate(SurrogateOptions{MaxSamples: 16, Epochs: 3, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDUOAttack measures one full targeted DUO run (SparseTransfer +
// SparseQuery, iter_numH=2).
func BenchmarkDUOAttack(b *testing.B) {
	sys, surr := benchSystem(b)
	pair := sys.SamplePairs(2, 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Attack(pair.Original, pair.Target, surr, AttackOptions{Queries: 120, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDUOAttackUntargeted measures one full untargeted DUO run.
func BenchmarkDUOAttackUntargeted(b *testing.B) {
	sys, surr := benchSystem(b)
	v := sys.Corpus.Train[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AttackUntargeted(v, surr, AttackOptions{Queries: 120, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrieveQuery measures one victim R^m(v) query (feature
// extraction + gallery scan), the unit every black-box attack pays per
// query.
func BenchmarkRetrieveQuery(b *testing.B) {
	sys, _ := benchSystem(b)
	q := sys.Corpus.Test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := sys.Retrieve(q, sys.M); len(rs) == 0 {
			b.Fatal("empty retrieval")
		}
	}
}

// BenchmarkEnsembleDefense regenerates the §V-D ensemble-defense
// evaluation.
func BenchmarkEnsembleDefense(b *testing.B) { benchExperiment(b, "ensemble") }

// BenchmarkStealthComparison regenerates the visual-stealthiness table
// (PSNR/SSIM per attack).
func BenchmarkStealthComparison(b *testing.B) { benchExperiment(b, "stealth") }

// BenchmarkAblationDCT regenerates the Cartesian-vs-DCT basis ablation.
func BenchmarkAblationDCT(b *testing.B) { benchExperiment(b, "ablation-dct") }
