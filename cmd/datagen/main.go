// Command datagen generates a synthetic video corpus (the UCF101/HMDB51
// stand-in of DESIGN.md §2) and persists it with encoding/gob, or inspects
// an existing corpus file.
//
// Usage:
//
//	datagen -out ucf101sim.gob -categories 6 -train 8 -test 4
//	datagen -inspect ucf101sim.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"duo/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "output corpus file")
		inspect    = fs.String("inspect", "", "inspect an existing corpus file and exit")
		name       = fs.String("name", "UCF101Sim", "corpus name")
		categories = fs.Int("categories", 6, "number of categories")
		train      = fs.Int("train", 8, "training videos per category")
		test       = fs.Int("test", 4, "test videos per category")
		frames     = fs.Int("frames", 16, "frames per clip")
		size       = fs.Int("size", 16, "frame height and width")
		seed       = fs.Int64("seed", 1, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		c, err := dataset.ReadFile(*inspect)
		if err != nil {
			return err
		}
		fmt.Printf("corpus %s: %d categories, %d train / %d test videos\n",
			c.Name, c.Categories, len(c.Train), len(c.Test))
		if len(c.Train) > 0 {
			v := c.Train[0]
			fmt.Printf("clip geometry: %d frames × %d×%d×%d channels (example: %s)\n",
				v.Frames(), v.Height(), v.Width(), v.Channels(), v.ID)
		}
		return nil
	}

	if *out == "" {
		return fmt.Errorf("need -out (or -inspect)")
	}
	c, err := dataset.Generate(dataset.Config{
		Name:             *name,
		Categories:       *categories,
		TrainPerCategory: *train,
		TestPerCategory:  *test,
		Frames:           *frames,
		Channels:         3,
		Height:           *size,
		Width:            *size,
		Seed:             *seed,
	})
	if err != nil {
		return err
	}
	if err := c.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d train / %d test videos across %d categories\n",
		*out, len(c.Train), len(c.Test), c.Categories)
	return nil
}
