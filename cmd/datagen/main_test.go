package main

import (
	"path/filepath"
	"testing"
)

func TestGenerateAndInspect(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.gob")
	err := run([]string{"-out", out, "-categories", "3", "-train", "3", "-test", "2",
		"-frames", "4", "-size", "8"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-inspect", out}); err != nil {
		t.Fatal(err)
	}
}

func TestMissingOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestInspectMissingFile(t *testing.T) {
	if err := run([]string{"-inspect", "/nonexistent/x.gob"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBadConfig(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.gob")
	if err := run([]string{"-out", out, "-categories", "1"}); err == nil {
		t.Error("1-category corpus accepted")
	}
}
