// Command duoattack runs one end-to-end DUO attack: build a victim
// retrieval system, steal a surrogate over the black-box interface, craft
// an adversarial example for a random (original, target) pair, and report
// the paper's measures.
//
// Usage:
//
//	duoattack -victim I3D -queries 600 -tau 40
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"duo"
	"duo/internal/models"
	"duo/internal/video"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "duoattack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("duoattack", flag.ContinueOnError)
	var (
		victim   = fs.String("victim", "SlowFast", "victim backbone: I3D, TPN, SlowFast, Resnet34")
		loss     = fs.String("loss", "ArcFaceLoss", "victim loss: ArcFaceLoss, LiftedLoss, AngularLoss, Triplet")
		surrArch = fs.String("surrogate", "C3D", "surrogate backbone: C3D or Resnet18")
		queries  = fs.Int("queries", 600, "victim query budget")
		strategy = fs.String("strategy", "sparsequery", "black-box optimizer: "+strings.Join(duo.Strategies(), ", "))
		tau      = fs.Float64("tau", 0, "per-element perturbation bound (0 = default)")
		k        = fs.Int("k", 0, "pixel budget (0 = default)")
		n        = fs.Int("n", 0, "frame budget (0 = default)")
		iterH    = fs.Int("iternumh", 2, "SparseTransfer↔SparseQuery loops")
		nodes    = fs.Int("nodes", 1, "retrieval data nodes (1 = single engine)")
		seed     = fs.Int64("seed", 1, "run seed")
		export   = fs.String("export", "", "directory to write original/adversarial/delta frames as PPM images")
		telem    = fs.Bool("telemetry", false, "collect and print per-stage timings, query-budget burn, and the 𝕋 trajectory")
		traceOut = fs.String("trace", "", "write the attack's span tree to this file as JSONL (analyze with duotrace)")
		traceClk = fs.Bool("traceclock", false, "timestamp trace spans with wall-clock nanoseconds instead of the deterministic logical clock")
		tiny     = fs.Bool("tiny", false, "shrink corpus, models, and budget for a fast smoke run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// With -telemetry every layer of the run is instrumented: the retrieval
	// engine, the attack stages, and the surrogate's layer graph. The attack
	// result is identical either way — telemetry is write-only.
	var reg *duo.Telemetry
	if *telem {
		reg = duo.NewTelemetry()
	}

	// With -trace the span tree of the whole pipeline (attack.run → round →
	// stage → retrieve → node) is recorded and dumped as JSONL. The default
	// logical clock keeps the dump bitwise reproducible; -traceclock trades
	// that for real latencies.
	var tracer *duo.Tracer
	if *traceOut != "" {
		tracer = duo.NewTracer("duoattack")
		if *traceClk {
			tracer.SetClock(func() int64 { return time.Now().UnixNano() }) //duolint:allow walltime opt-in real-time trace timestamps
		}
	}

	sysOpts := duo.SystemOptions{
		VictimArch: *victim,
		VictimLoss: *loss,
		Nodes:      *nodes,
		Seed:       *seed,
	}
	surrOpts := duo.SurrogateOptions{Arch: *surrArch, Seed: *seed + 7}
	if *tiny {
		sysOpts.Categories, sysOpts.TrainPerCategory, sysOpts.TestPerCategory = 3, 4, 2
		sysOpts.Frames, sysOpts.Height, sysOpts.Width = 6, 10, 10
		sysOpts.FeatureDim, sysOpts.TrainEpochs, sysOpts.M = 12, 2, 6
		surrOpts.MaxSamples, surrOpts.Epochs = 12, 3
	}

	fmt.Printf("building victim system (%s + %s)...\n", *victim, *loss)
	sys, err := duo.NewSystem(sysOpts)
	if err != nil {
		return err
	}
	defer sys.Close()
	sys.SetTelemetry(reg)
	sys.SetTrace(tracer)
	fmt.Printf("victim mAP on test split: %.2f%%\n", sys.MAP()*100)

	fmt.Printf("stealing %s surrogate over the black-box interface...\n", *surrArch)
	surr, err := sys.StealSurrogate(surrOpts)
	if err != nil {
		return err
	}
	surr = models.Instrument(surr, reg)

	pair := sys.SamplePairs(*seed+11, 1)[0]
	fmt.Printf("attacking: original %s (label %d) → target %s (label %d)\n",
		pair.Original.ID, pair.Original.Label, pair.Target.ID, pair.Target.Label)

	rep, err := sys.Attack(pair.Original, pair.Target, surr, duo.AttackOptions{
		K: *k, N: *n, Tau: *tau,
		Queries:  *queries,
		IterNumH: *iterH,
		Strategy: *strategy,
		Seed:     *seed + 13,
	})
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Printf("== DUO attack report (strategy %s) ==\n", *strategy)
	fmt.Printf("AP@m w/o attack : %6.2f%%\n", rep.APBefore)
	fmt.Printf("AP@m with attack: %6.2f%%\n", rep.APAfter)
	fmt.Printf("Spa (perturbed elements): %d of %d\n", rep.Spa, pair.Original.Data.Len())
	fmt.Printf("perturbed frames: %d of %d\n", rep.PerturbedFrames, pair.Original.Frames())
	fmt.Printf("PScore: %.4f\n", rep.PScore)
	fmt.Printf("visual quality: PSNR %.1f dB, SSIM %.4f\n", rep.PSNR, rep.SSIM)
	fmt.Printf("victim queries: %d\n", rep.Queries)
	if rep.APAfter > rep.APBefore {
		fmt.Println("verdict: targeted attack SUCCEEDED (AP@m increased)")
	} else {
		fmt.Println("verdict: targeted attack made no headway on this pair")
	}

	if *export != "" {
		if err := exportFrames(*export, pair.Original, rep.Adv); err != nil {
			return err
		}
		fmt.Printf("frames written under %s (original/, adversarial/, delta8x/)\n", *export)
	}

	if reg != nil {
		s := reg.Snapshot()
		fmt.Println()
		fmt.Printf("query budget burn: %d of %d (%d round(s))\n",
			s.Counters["attack.queries"], *queries, s.Counters["attack.rounds"])
		fmt.Print(reg.Summary())
	}

	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans written to %s (inspect with duotrace summarize %s)\n",
			tracer.Len(), *traceOut, *traceOut)
	}
	return nil
}

// writeTrace dumps the tracer's finished spans as JSONL.
func writeTrace(path string, tr *duo.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exportFrames writes the original clip, the adversarial clip, and an
// 8×-amplified perturbation visualization as PPM images.
func exportFrames(dir string, original, adv *duo.Video) error {
	if _, err := video.ExportPPMDir(filepath.Join(dir, "original"), original); err != nil {
		return err
	}
	if _, err := video.ExportPPMDir(filepath.Join(dir, "adversarial"), adv); err != nil {
		return err
	}
	_, err := video.ExportPPMDir(filepath.Join(dir, "delta8x"), video.AmplifiedDelta(original, adv, 8))
	return err
}
