package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunRejectsUnknownVictim(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-victim", "AlexNet"}); err == nil {
		t.Error("unknown victim accepted")
	}
}

func TestRunRejectsUnknownLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-loss", "FocalLoss"}); err == nil {
		t.Error("unknown loss accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestTelemetryFlagPrintsStageSummary runs a small end-to-end attack with
// -telemetry and checks the report covers every instrumented layer: attack
// stage timings, query-budget burn, surrogate per-layer timings, and the
// retrieval scan histogram.
func TestTelemetryFlagPrintsStageSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-queries", "30", "-iternumh", "1", "-telemetry"})
	w.Close()
	os.Stdout = old
	raw, readErr := io.ReadAll(r)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if runErr != nil {
		t.Fatalf("run -telemetry: %v", runErr)
	}
	out := string(raw)
	for _, want := range []string{
		"query budget burn:",
		"== telemetry ==",
		"attack.queries",
		"attack.sparse_transfer_ns",
		"attack.sparse_query_ns",
		"model.C3D.forward_ns",
		"retrieval.scan_ns",
		"attack.trajectory",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry output is missing %q", want)
		}
	}
}
