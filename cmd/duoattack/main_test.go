package main

import "testing"

func TestRunRejectsUnknownVictim(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-victim", "AlexNet"}); err == nil {
		t.Error("unknown victim accepted")
	}
}

func TestRunRejectsUnknownLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-loss", "FocalLoss"}); err == nil {
		t.Error("unknown loss accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
