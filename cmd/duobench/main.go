// Command duobench regenerates the paper's tables and figures on the
// scaled-down substrate.
//
// Usage:
//
//	duobench -exp table2              # one experiment
//	duobench -exp table2,fig5        # several
//	duobench -exp all -scale small   # everything, bench scale
//	duobench -list                   # show experiment ids
//
// Add -markdown to emit GitHub tables (used to build EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"duo/internal/experiments"
	"duo/internal/parallel"
	"duo/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "duobench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("duobench", flag.ContinueOnError)
	var (
		expFlag  = fs.String("exp", "all", "comma-separated experiment ids, or \"all\"")
		scale    = fs.String("scale", "tiny", "scale preset: tiny or small")
		seed     = fs.Int64("seed", 1, "experiment seed")
		markdown = fs.Bool("markdown", false, "emit markdown tables")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		datasets = fs.String("datasets", "", "restrict datasets (comma-separated)")
		victims  = fs.String("victims", "", "restrict victim backbones (comma-separated)")
		outPath  = fs.String("out", "", "also write the rendered tables to this file")
		workers  = fs.Int("workers", 0, "worker count for parallel compute (0 = GOMAXPROCS, overrides DUO_PARALLEL)")
		telem    = fs.Bool("telemetry", false, "aggregate instrumentation across all experiments and print a summary at the end")

		bench    = fs.String("bench", "", "run micro-benchmarks instead of experiments (comma-separated: retrieve, conv, pq)")
		benchOut = fs.String("benchout", ".", "directory for BENCH_*.json files (micro-benchmarks and -serve)")

		serve          = fs.Bool("serve", false, "run the closed-loop saturation benchmark against a live TCP cluster")
		serveNodes     = fs.Int("serve-nodes", 2, "node servers in the saturation cluster")
		serveClients   = fs.Int("serve-clients", 8, "concurrent load-generator clients")
		serveQPS       = fs.Float64("serve-qps", 0, "total target queries/s across clients (0 = unthrottled)")
		serveDuration  = fs.Duration("serve-duration", 2*time.Second, "load duration")
		maxInFlight    = fs.Int("max-inflight", 2, "per-node admission: max concurrent requests (0 = unlimited)")
		maxQueue       = fs.Int("queue", 0, "per-node admission: queue slots beyond max-inflight (negative = none)")
		coalesceWindow = fs.Duration("coalesce-window", 0, "coordinator coalescing window (0 = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	if *serve {
		return runServe(serveOptions{
			nodes:          *serveNodes,
			clients:        *serveClients,
			qps:            *serveQPS,
			duration:       *serveDuration,
			maxInFlight:    *maxInFlight,
			maxQueue:       *maxQueue,
			coalesceWindow: *coalesceWindow,
			outDir:         *benchOut,
		}, func(s string) { fmt.Print(s) })
	}
	if *bench != "" {
		return runMicrobench(*bench, *benchOut, func(s string) { fmt.Print(s) })
	}

	opts := experiments.Options{Seed: *seed}
	if *telem {
		opts.Telemetry = telemetry.New()
	}
	switch strings.ToLower(*scale) {
	case "tiny":
		opts.Scale = experiments.Tiny
	case "small":
		opts.Scale = experiments.Small
	default:
		return fmt.Errorf("unknown scale %q (want tiny or small)", *scale)
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *victims != "" {
		opts.VictimArchs = strings.Split(*victims, ",")
	}

	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		outFile = f
	}
	emit := func(text string) {
		fmt.Print(text)
		if outFile != nil {
			fmt.Fprint(outFile, text)
		}
	}

	ids := experiments.IDs()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	for _, id := range ids {
		start := time.Now() //duolint:allow walltime operator-facing progress timing; never feeds a result
		tab, err := experiments.Run(strings.TrimSpace(id), opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *markdown {
			emit(tab.Markdown() + "\n")
		} else {
			emit(tab.String() + "\n")
		}
		emit(fmt.Sprintf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))) //duolint:allow walltime operator-facing progress timing; never feeds a result
	}
	if opts.Telemetry != nil {
		emit(opts.Telemetry.Summary())
	}
	return nil
}
