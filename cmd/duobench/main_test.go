package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic", "-exp", "fig3"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunServeRejectsBadOptions(t *testing.T) {
	if err := run([]string{"-serve", "-serve-nodes", "0"}); err == nil {
		t.Error("serve accepted zero nodes")
	}
	if err := run([]string{"-serve", "-serve-duration", "0s"}); err == nil {
		t.Error("serve accepted zero duration")
	}
}

func TestRunBenchUnknownID(t *testing.T) {
	if err := run([]string{"-bench", "sort"}); err == nil {
		t.Error("unknown bench id accepted")
	}
}

func TestRunServeSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster run")
	}
	dir := t.TempDir()
	err := run([]string{
		"-serve", "-serve-duration", "500ms", "-serve-nodes", "2",
		"-serve-clients", "8", "-max-inflight", "1", "-benchout", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep serveReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_serve.json is not valid JSON: %v", err)
	}
	if rep.Served == 0 {
		t.Error("saturation run served nothing")
	}
	if rep.Shed == 0 {
		t.Error("1-slot nodes under 8-way load never shed")
	}
	if rep.Errors != 0 {
		t.Errorf("%d non-overload errors during saturation", rep.Errors)
	}
	if len(rep.PerNode) != 2 {
		t.Errorf("per-node reports = %d, want 2", len(rep.PerNode))
	}
	for _, n := range rep.PerNode {
		if n.HighWater > 1 {
			t.Errorf("node %d in-flight high-water %d exceeds max-inflight 1", n.Node, n.HighWater)
		}
	}

	// The fleet rollup rides in the report and reconciles with the
	// client-side tallies: every node has its own registry, so the merged
	// admission counters are exactly the per-node sums.
	if rep.Fleet == nil {
		t.Fatal("BENCH_serve.json has no fleet rollup")
	}
	if rep.Fleet.Reachable != 2 || rep.Fleet.Nodes != 2 {
		t.Fatalf("fleet rollup reach = %d/%d, want 2/2", rep.Fleet.Reachable, rep.Fleet.Nodes)
	}
	var admitted, sheds int64
	for _, n := range rep.PerNode {
		admitted += n.Admitted
		sheds += n.Sheds
	}
	if got := rep.Fleet.Fleet.Counters["node.admission.admitted"]; got != admitted {
		t.Errorf("fleet merged admitted = %d, want per-node sum %d", got, admitted)
	}
	if got := rep.Fleet.Fleet.Counters["node.admission.shed"]; got != sheds {
		t.Errorf("fleet merged shed = %d, want per-node sum %d", got, sheds)
	}
	for _, fn := range rep.Fleet.PerNode {
		if got := fn.Snapshot.Counters["node.admission.admitted"]; got != rep.PerNode[fn.Node].Admitted {
			t.Errorf("node %d snapshot admitted = %d, want its own tally %d (shared-registry lumping?)",
				fn.Node, got, rep.PerNode[fn.Node].Admitted)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-exp", "fig3", "-datasets", "UCF101Sim", "-victims", "I3D", "-markdown"})
	if err != nil {
		t.Fatal(err)
	}
}
