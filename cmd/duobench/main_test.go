package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic", "-exp", "fig3"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-exp", "fig3", "-datasets", "UCF101Sim", "-victims", "I3D", "-markdown"})
	if err != nil {
		t.Fatal(err)
	}
}
