package main

// Micro-benchmark mode: `duobench -bench retrieve,conv` runs the repo's
// hot-path benchmarks through testing.Benchmark and writes one
// BENCH_<id>.json per id into -benchout, so CI and operators get
// machine-readable numbers without go test plumbing.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/nn"
	"duo/internal/parallel"
	"duo/internal/retrieval"
	"duo/internal/tensor"
)

// benchResult is one benchmark line in a BENCH_*.json file.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func toBenchResult(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// writeBenchJSON writes results as BENCH_<id>.json under dir.
func writeBenchJSON(dir, id string, results []benchResult) (string, error) {
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	return path, os.WriteFile(path, append(raw, '\n'), 0o644)
}

// benchRetrieve measures single-query retrieval against an in-process
// engine at several worker counts (embedding plus gallery scan, the
// serving hot path).
func benchRetrieve() ([]benchResult, error) {
	c, err := dataset.Generate(dataset.Config{
		Name: "BenchSim", Categories: 3, TrainPerCategory: 6, TestPerCategory: 2,
		Frames: 6, Channels: 3, Height: 10, Width: 10, Seed: 11,
	})
	if err != nil {
		return nil, err
	}
	m := models.NewC3D(rand.New(rand.NewSource(12)), models.GeometryOf(c.Train[0]), 12)
	eng := retrieval.NewEngine(m, c.Train)
	q := c.Test[0]
	var out []benchResult
	for _, w := range []int{1, 2, 4} {
		prev := parallel.SetWorkers(w)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Retrieve(q, 6)
			}
		})
		parallel.SetWorkers(prev)
		out = append(out, toBenchResult(fmt.Sprintf("retrieve/engine/workers=%d", w), r))
	}
	return out, nil
}

// benchConv measures the Conv3D forward pass (the model bottleneck) at
// several worker counts, mirroring internal/nn's benchmark geometry.
func benchConv() ([]benchResult, error) {
	rng := rand.New(rand.NewSource(6))
	l := nn.NewConv3DFull(rng, 3, 8, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1})
	x := tensor.RandNormal(rng, 0, 1, 3, 16, 16, 16)
	var out []benchResult
	for _, w := range []int{1, 2, 4} {
		prev := parallel.SetWorkers(w)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = l.Forward(x)
			}
		})
		parallel.SetWorkers(prev)
		out = append(out, toBenchResult(fmt.Sprintf("conv/forward/workers=%d", w), r))
	}
	return out, nil
}

// runMicrobench executes the requested benchmark ids and writes one JSON
// file per id.
func runMicrobench(ids string, outDir string, emit func(string)) error {
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		var (
			results []benchResult
			err     error
		)
		switch id {
		case "retrieve":
			results, err = benchRetrieve()
		case "conv":
			results, err = benchConv()
		case "pq":
			// The PQ bench writes its own richer BENCH_pq.json (recall and
			// cold-start columns don't fit the flat benchResult rows).
			if err := runPQBench(outDir, emit); err != nil {
				return fmt.Errorf("bench %s: %w", id, err)
			}
			continue
		case "strategies":
			// The strategy shootout also writes its own richer report
			// (success rates and per-pair query counts, not ns/op rows).
			if err := runStrategiesBench(outDir, emit); err != nil {
				return fmt.Errorf("bench %s: %w", id, err)
			}
			continue
		default:
			return fmt.Errorf("unknown bench id %q (want retrieve, conv, pq, or strategies)", id)
		}
		if err != nil {
			return fmt.Errorf("bench %s: %w", id, err)
		}
		path, err := writeBenchJSON(outDir, id, results)
		if err != nil {
			return fmt.Errorf("bench %s: %w", id, err)
		}
		for _, r := range results {
			emit(fmt.Sprintf("%-32s n=%-8d %12.0f ns/op %8d B/op %6d allocs/op\n",
				r.Name, r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp))
		}
		emit(fmt.Sprintf("wrote %s\n", path))
	}
	return nil
}
