package main

// PQ corpus-scale benchmark: `duobench -bench pq` measures the exact
// sharded scan, a coarse-quantizer (IVF-style) probe, and the
// product-quantized ADC scan + exact re-rank over the same synthetic
// gallery at 1×/10×/100× scale, reports recall@10 against the exact scan,
// times the cold-start load of a persisted PQ index, and writes the whole
// report to BENCH_pq.json — the perf trajectory ROADMAP item 1 asks for.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"duo/internal/retrieval"
	"duo/internal/tensor"
)

const (
	pqBenchDim     = 64
	pqBenchBaseN   = 200
	pqBenchQueries = 32
	pqBenchTopM    = 10
	// pqBenchPerCluster keeps cluster density constant as the gallery
	// scales: a bigger corpus has more distinct content, not 100 duplicates
	// of the same content. This is what makes recall comparable across the
	// 1×/10×/100× rows — the neighborhood a query must resolve stays the
	// same size while the haystack around it grows.
	pqBenchPerCluster = 25
)

func pqBenchClusters(n int) int {
	c := n / pqBenchPerCluster
	if c < 8 {
		c = 8
	}
	return c
}

// pqBenchRow is one gallery scale's measurements.
type pqBenchRow struct {
	Scale        int     `json:"scale"`
	N            int     `json:"n"`
	Dim          int     `json:"dim"`
	ExactNsPerOp float64 `json:"exact_ns_per_op"`
	IVFNsPerOp   float64 `json:"ivf_ns_per_op"`
	PQNsPerOp    float64 `json:"pq_ns_per_op"`
	PQSpeedup    float64 `json:"pq_speedup_vs_exact"`
	IVFRecall    float64 `json:"ivf_recall_at_10"`
	PQRecall     float64 `json:"pq_recall_at_10"`
	IndexBytes   int64   `json:"pq_index_bytes"`
	LoadMs       float64 `json:"pq_load_ms"`
}

// pqBenchReport is the BENCH_pq.json shape; AtMaxScale repeats the
// headline numbers CI asserts on.
type pqBenchReport struct {
	Dim        int          `json:"dim"`
	TopM       int          `json:"top_m"`
	Rows       []pqBenchRow `json:"rows"`
	AtMaxScale pqBenchRow   `json:"at_max_scale"`
}

// pqBenchCorpus synthesizes a clustered gallery (the shape real embedding
// spaces have — recall against cluster structure is the interesting case)
// plus queries drawn from the same distribution.
func pqBenchCorpus(scale int) (ids []string, labels []int, feats []*tensor.Tensor, queries []*tensor.Tensor) {
	rng := rand.New(rand.NewSource(41))
	n := pqBenchBaseN * scale
	nclusters := pqBenchClusters(n)
	centers := make([][]float64, nclusters)
	for c := range centers {
		centers[c] = make([]float64, pqBenchDim)
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64() * 10
		}
	}
	sample := func(c int) *tensor.Tensor {
		v := make([]float64, pqBenchDim)
		for d := range v {
			v[d] = centers[c][d] + rng.NormFloat64()
		}
		return tensor.From(v, pqBenchDim)
	}
	for i := 0; i < n; i++ {
		c := i % nclusters
		ids = append(ids, fmt.Sprintf("v%07d", i))
		labels = append(labels, c)
		feats = append(feats, sample(c))
	}
	for q := 0; q < pqBenchQueries; q++ {
		queries = append(queries, sample(q%nclusters))
	}
	return ids, labels, feats, queries
}

// ivfProbe is the bench's minimal coarse-quantizer baseline: rank the
// KMeans centroids, scan the nprobe nearest cells exactly, merge. It
// exists to place PQ between the exact scan and the cell-probing IVF point
// in the recall/speed table.
type ivfProbe struct {
	centroids []*tensor.Tensor
	cells     []*retrieval.Shard
	nprobe    int
}

func newIVFProbe(ids []string, labels []int, feats []*tensor.Tensor, nlist, nprobe int) (*ivfProbe, error) {
	km, err := retrieval.KMeans(rand.New(rand.NewSource(43)), feats, nlist, 10)
	if err != nil {
		return nil, err
	}
	cellIDs := make([][]string, nlist)
	cellLabels := make([][]int, nlist)
	cellFeats := make([][]*tensor.Tensor, nlist)
	for i, c := range km.Assign {
		cellIDs[c] = append(cellIDs[c], ids[i])
		cellLabels[c] = append(cellLabels[c], labels[i])
		cellFeats[c] = append(cellFeats[c], feats[i])
	}
	p := &ivfProbe{centroids: km.Centroids, nprobe: nprobe}
	for c := 0; c < nlist; c++ {
		p.cells = append(p.cells, retrieval.NewShardFromFeatures(cellIDs[c], cellLabels[c], cellFeats[c]))
	}
	return p, nil
}

func (p *ivfProbe) Nearest(feat []float64, m int) []retrieval.Result {
	q := tensor.From(feat, len(feat))
	type cellDist struct {
		cell int
		d    float64
	}
	cd := make([]cellDist, len(p.centroids))
	for c, cent := range p.centroids {
		cd[c] = cellDist{cell: c, d: q.SquaredDistance(cent)}
	}
	sort.Slice(cd, func(a, b int) bool {
		if cd[a].d != cd[b].d { //duolint:allow floateq comparator tie-break: exact equality IS the tie, and both operands are the same unrounded computation
			return cd[a].d < cd[b].d
		}
		return cd[a].cell < cd[b].cell
	})
	var merged []retrieval.Result
	for _, c := range cd[:p.nprobe] {
		merged = append(merged, p.cells[c.cell].Nearest(feat, m)...)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Dist != merged[b].Dist { //duolint:allow floateq comparator tie-break: exact equality IS the tie, and both operands are the same unrounded computation
			return merged[a].Dist < merged[b].Dist
		}
		return merged[a].ID < merged[b].ID
	})
	if m > len(merged) {
		m = len(merged)
	}
	return merged[:m]
}

// recallAt10 measures the ID overlap of approx's top-10 with exact's.
func pqBenchRecall(exact, approx func(feat []float64, m int) []retrieval.Result, queries []*tensor.Tensor) float64 {
	total := 0.0
	for _, q := range queries {
		want := map[string]bool{}
		for _, r := range exact(q.Data(), pqBenchTopM) {
			want[r.ID] = true
		}
		hit := 0
		for _, r := range approx(q.Data(), pqBenchTopM) {
			if want[r.ID] {
				hit++
			}
		}
		total += float64(hit) / float64(len(want))
	}
	return total / float64(len(queries))
}

// pqBenchScan times one Nearest implementation, rotating over the queries.
func pqBenchScan(nearest func(feat []float64, m int) []retrieval.Result, queries []*tensor.Tensor) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nearest(queries[i%len(queries)].Data(), pqBenchTopM)
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// runPQBench measures one scale and returns its row.
func pqBenchScale(scale int, tmpDir string) (pqBenchRow, error) {
	ids, labels, feats, queries := pqBenchCorpus(scale)
	n := len(ids)
	row := pqBenchRow{Scale: scale, N: n, Dim: pqBenchDim}

	exact := retrieval.NewShardFromFeatures(ids, labels, feats)

	k := 64
	if k > n {
		k = n
	}
	// RerankDepth 64 comfortably covers one ~25-point cluster: the ADC scan
	// reliably isolates the query's cluster but is near-flat inside it, so
	// the depth must cover the cluster for the exact re-rank to recover the
	// true top-10.
	pq, err := retrieval.NewPQIndex(ids, labels, feats, retrieval.PQConfig{
		Subspaces: 8, Centroids: k, KMeansIters: 15, Seed: 7, RerankDepth: 64,
	})
	if err != nil {
		return row, err
	}
	ivf, err := newIVFProbe(ids, labels, feats, 32, 4)
	if err != nil {
		return row, err
	}

	row.ExactNsPerOp = pqBenchScan(exact.Nearest, queries)
	row.PQNsPerOp = pqBenchScan(pq.Nearest, queries)
	row.IVFNsPerOp = pqBenchScan(ivf.Nearest, queries)
	row.PQSpeedup = row.ExactNsPerOp / row.PQNsPerOp
	row.PQRecall = pqBenchRecall(exact.Nearest, pq.Nearest, queries)
	row.IVFRecall = pqBenchRecall(exact.Nearest, ivf.Nearest, queries)

	// Persist and measure the cold-start path: open (mmap + validate) and
	// close, which is what a restarting retrievald node pays instead of
	// re-embedding the gallery.
	path := filepath.Join(tmpDir, fmt.Sprintf("pq-%dx.duopq", scale))
	f, err := os.Create(path)
	if err != nil {
		return row, err
	}
	if err := pq.WriteIndex(f); err != nil {
		f.Close()
		return row, err
	}
	if err := f.Close(); err != nil {
		return row, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return row, err
	}
	row.IndexBytes = st.Size()
	load := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix, err := retrieval.OpenPQIndexFile(path)
			if err != nil {
				b.Fatal(err)
			}
			ix.Close()
		}
	})
	row.LoadMs = float64(load.T.Nanoseconds()) / float64(load.N) / 1e6
	return row, nil
}

// runPQBench executes the scale sweep and writes BENCH_pq.json.
func runPQBench(outDir string, emit func(string)) error {
	tmpDir, err := os.MkdirTemp("", "duobench-pq-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmpDir)

	report := pqBenchReport{Dim: pqBenchDim, TopM: pqBenchTopM}
	for _, scale := range []int{1, 10, 100} {
		row, err := pqBenchScale(scale, tmpDir)
		if err != nil {
			return fmt.Errorf("pq bench scale %d×: %w", scale, err)
		}
		report.Rows = append(report.Rows, row)
		emit(fmt.Sprintf("pq/scale=%-3dx n=%-6d exact %10.0f ns/op  ivf %10.0f ns/op (r@10 %.3f)  pq %10.0f ns/op (r@10 %.3f, %4.1fx, load %.2fms, %d B)\n",
			row.Scale, row.N, row.ExactNsPerOp, row.IVFNsPerOp, row.IVFRecall,
			row.PQNsPerOp, row.PQRecall, row.PQSpeedup, row.LoadMs, row.IndexBytes))
	}
	report.AtMaxScale = report.Rows[len(report.Rows)-1]

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_pq.json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	emit(fmt.Sprintf("wrote %s\n", path))
	return nil
}
