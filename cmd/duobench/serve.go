package main

// Saturation mode: `duobench -serve` stands up a live retrievald-style
// cluster (real TCP node servers with admission control, multiplexed
// transports, RequireAll merge policy, optional coalescing front door)
// and drives it closed-loop from N client goroutines at a target QPS.
// Served-request latency quantiles come from a telemetry histogram;
// sheds are counted per node and end to end. The run is summarized on
// stdout and written as BENCH_serve.json for CI and trend tracking.
//
// This mode measures wall-clock behaviour of a live server and is the
// one deliberately non-deterministic corner of duobench; everything it
// reports is measurement, never attack state.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/retrieval"
	"duo/internal/telemetry"
)

// serveOptions parameterize the saturation run.
type serveOptions struct {
	nodes          int
	clients        int
	qps            float64 // total target QPS across all clients; 0 = unthrottled
	duration       time.Duration
	maxInFlight    int
	maxQueue       int
	coalesceWindow time.Duration
	outDir         string
}

// nodeServeReport is one node's admission accounting after the run.
type nodeServeReport struct {
	Node      int   `json:"node"`
	Admitted  int64 `json:"admitted"`
	Sheds     int64 `json:"sheds"`
	HighWater int   `json:"inflight_highwater"`
}

// serveReport is the machine-readable summary (BENCH_serve.json).
type serveReport struct {
	Nodes            int               `json:"nodes"`
	Clients          int               `json:"clients"`
	TargetQPS        float64           `json:"target_qps"`
	DurationSec      float64           `json:"duration_sec"`
	MaxInFlight      int               `json:"max_inflight"`
	MaxQueue         int               `json:"max_queue"`
	CoalesceWindowMs float64           `json:"coalesce_window_ms"`
	Served           int64             `json:"served"`
	Shed             int64             `json:"shed"`
	Errors           int64             `json:"errors"`
	ServedQPS        float64           `json:"served_qps"`
	ShedRate         float64           `json:"shed_rate"`
	LatencyP50Ms     float64           `json:"latency_p50_ms"`
	LatencyP95Ms     float64           `json:"latency_p95_ms"`
	LatencyP99Ms     float64           `json:"latency_p99_ms"`
	LatencyMaxMs     float64           `json:"latency_max_ms"`
	PerNode          []nodeServeReport `json:"per_node"`
	// Fleet is the post-run fleet observability rollup, pulled over the
	// same stats RPC duostat uses: every node's telemetry snapshot merged
	// deterministically, with the per-node breakdown retained. It is the
	// cross-check for the client-side tallies above — merged admission
	// counters must equal the per_node sums.
	Fleet *retrieval.FleetView `json:"fleet,omitempty"`
}

// runServe builds the cluster, applies load, and reports.
func runServe(opts serveOptions, emit func(string)) error {
	if opts.nodes < 1 || opts.clients < 1 || opts.duration <= 0 {
		return fmt.Errorf("serve: need nodes ≥ 1, clients ≥ 1, duration > 0")
	}

	// A tiny untrained substrate: saturation measures the serving path
	// (embed, scan, merge, admission), not retrieval quality.
	c, err := dataset.Generate(dataset.Config{
		Name: "ServeSim", Categories: 3, TrainPerCategory: 4, TestPerCategory: 2,
		Frames: 6, Channels: 3, Height: 10, Width: 10, Seed: 17,
	})
	if err != nil {
		return err
	}
	model := models.NewC3D(rand.New(rand.NewSource(18)), models.GeometryOf(c.Train[0]), 12)

	// The coordinator registry holds client-side instruments (end-to-end
	// latency, cluster scatter/gather); each node server gets its OWN
	// registry below, exactly as separate retrievald processes would. A
	// shared registry would make every node's stats probe return the same
	// lumped counters and the fleet merge would multi-count them.
	reg := telemetry.New()
	latency := reg.Latency("serve.latency_ns")

	// One TCP node server per shard, each with the same admission budget.
	var servers []*retrieval.NodeServer
	var transports []retrieval.Transport
	defer func() {
		for _, t := range transports {
			t.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}()
	per := (len(c.Train) + opts.nodes - 1) / opts.nodes
	for i := 0; i < opts.nodes; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(c.Train) {
			hi = len(c.Train)
		}
		nodeReg := telemetry.New()
		shard := retrieval.NewShard(model, c.Train[lo:hi])
		shard.SetTelemetry(nodeReg)
		srv, err := retrieval.ServeNodeConfig("127.0.0.1:0", shard, retrieval.NodeServerConfig{
			Admission: retrieval.AdmissionConfig{MaxInFlight: opts.maxInFlight, MaxQueue: opts.maxQueue},
			Telemetry: nodeReg,
		})
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		tr, err := retrieval.DialNodeConfig(srv.Addr(), retrieval.TCPConfig{
			Timeout: 30 * time.Second,
			Conns:   4,
		})
		if err != nil {
			return err
		}
		transports = append(transports, tr)
	}

	// No retry layer: a saturation benchmark wants sheds to surface, not
	// to be absorbed into inflated latencies. RequireAll classifies a run
	// cleanly — a request is served iff every node answered it.
	cluster := retrieval.NewCluster(model, transports).SetPolicy(retrieval.RequireAll())
	cluster.SetTelemetry(reg)

	var front retrieval.FallibleRetriever = cluster
	if opts.coalesceWindow > 0 {
		co := retrieval.NewCoalescer(cluster, retrieval.CoalescerConfig{
			MaxBatch: opts.clients,
			Window:   opts.coalesceWindow,
		})
		co.SetTelemetry(reg)
		defer co.Close()
		front = co
	}

	var served, shed, errCount atomic.Int64
	var firstErr atomic.Value
	interval := time.Duration(0)
	if opts.qps > 0 {
		interval = time.Duration(float64(opts.clients) / opts.qps * float64(time.Second))
	}
	deadline := time.Now().Add(opts.duration) //duolint:allow walltime load-generator run bound; measurement-only mode
	var wg sync.WaitGroup
	for w := 0; w < opts.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var next time.Time
			for {
				now := time.Now() //duolint:allow walltime closed-loop pacing clock; measurement-only mode
				if now.After(deadline) {
					return
				}
				if interval > 0 {
					if next.IsZero() {
						next = now
					} else if now.Before(next) {
						time.Sleep(next.Sub(now)) //duolint:allow walltime QPS pacing sleep; measurement-only mode
						continue
					}
					next = next.Add(interval)
				}
				q := c.Test[rng.Intn(len(c.Test))]
				start := time.Now() //duolint:allow walltime latency measurement start; the histogram is the deliverable
				_, err := front.RetrieveErr(q, 6)
				elapsed := time.Since(start) //duolint:allow walltime latency measurement stop; the histogram is the deliverable
				switch {
				case err == nil:
					served.Add(1)
					latency.Observe(float64(elapsed))
				case errors.Is(err, retrieval.ErrOverloaded):
					shed.Add(1)
				default:
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(w)
	}
	wg.Wait()

	st := latency.Stats()
	toMs := func(ns float64) float64 { return ns / 1e6 }
	rep := serveReport{
		Nodes:            opts.nodes,
		Clients:          opts.clients,
		TargetQPS:        opts.qps,
		DurationSec:      opts.duration.Seconds(),
		MaxInFlight:      opts.maxInFlight,
		MaxQueue:         opts.maxQueue,
		CoalesceWindowMs: float64(opts.coalesceWindow) / 1e6,
		Served:           served.Load(),
		Shed:             shed.Load(),
		Errors:           errCount.Load(),
		LatencyP50Ms:     toMs(st.P50),
		LatencyP95Ms:     toMs(st.P95),
		LatencyP99Ms:     toMs(st.P99),
		LatencyMaxMs:     toMs(st.Max),
	}
	rep.ServedQPS = float64(rep.Served) / rep.DurationSec
	if total := rep.Served + rep.Shed; total > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(total)
	}
	for i, s := range servers {
		ast := s.AdmissionStats()
		rep.PerNode = append(rep.PerNode, nodeServeReport{
			Node: i, Admitted: ast.Admitted, Sheds: ast.Sheds, HighWater: ast.HighWater,
		})
	}
	// Pull the fleet rollup over the stats RPC — the same path duostat
	// reads — so the JSON carries both the client-side tallies and the
	// node-side merged telemetry to reconcile them against.
	view, err := cluster.FleetSnapshot(false)
	if err != nil {
		return err
	}
	rep.Fleet = view

	raw, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(opts.outDir, "BENCH_serve.json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	emit(fmt.Sprintf("serve: %d node(s), %d client(s), %.1fs", rep.Nodes, rep.Clients, rep.DurationSec))
	if rep.TargetQPS > 0 {
		emit(fmt.Sprintf(" @ %.0f qps target", rep.TargetQPS))
	}
	emit(fmt.Sprintf("\n  served %d (%.1f qps)  shed %d (%.1f%%)  errors %d\n",
		rep.Served, rep.ServedQPS, rep.Shed, 100*rep.ShedRate, rep.Errors))
	emit(fmt.Sprintf("  latency served: p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms, rep.LatencyMaxMs))
	for _, n := range rep.PerNode {
		emit(fmt.Sprintf("  node %d: admitted %d  shed %d  inflight high-water %d\n",
			n.Node, n.Admitted, n.Sheds, n.HighWater))
	}
	emit(fmt.Sprintf("  fleet view: %d/%d nodes reachable, %d indexed (merged rollup in BENCH_serve.json)\n",
		view.Reachable, view.Nodes, view.Size))
	emit(fmt.Sprintf("wrote %s\n", path))
	if rep.Served == 0 {
		if e, ok := firstErr.Load().(error); ok {
			return fmt.Errorf("serve: no request served (first error: %v)", e)
		}
		return fmt.Errorf("serve: no request served")
	}
	return nil
}
