package main

// Strategy shootout: `duobench -bench strategies` runs every registered
// black-box optimizer (SparseQuery baseline, Sparse-RS, evolutionary) over
// the same tiny victim + surrogate + attack pairs and reports
// queries-to-success, success rate, and wall time per strategy. The whole
// report lands in BENCH_strategies.json so CI can assert the new
// strategies actually close attacks within budget and EXPERIMENTS.md can
// table the comparison.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"duo"
)

const (
	// strategiesBenchPairs is the number of (original, target) pairs every
	// strategy attacks; one shared sample keeps the comparison paired.
	strategiesBenchPairs = 4
	// strategiesBenchBudget is the per-attack victim query budget. Matches
	// the golden fixture's order of magnitude: big enough for each strategy
	// to converge on the tiny corpus, small enough for a CI smoke run.
	strategiesBenchBudget = 120
)

// strategyPairResult is one (strategy, pair) attack outcome.
type strategyPairResult struct {
	Pair     string  `json:"pair"`
	Success  bool    `json:"success"`
	APBefore float64 `json:"ap_before"`
	APAfter  float64 `json:"ap_after"`
	Queries  int     `json:"queries"`
	Spa      int     `json:"spa"`
	WallMs   float64 `json:"wall_ms"`
}

// strategyRow aggregates one strategy across all pairs.
type strategyRow struct {
	Strategy      string               `json:"strategy"`
	Pairs         int                  `json:"pairs"`
	Successes     int                  `json:"successes"`
	SuccessRate   float64              `json:"success_rate"`
	MedianQueries int                  `json:"median_queries"`
	MeanAPGain    float64              `json:"mean_ap_gain"`
	TotalWallMs   float64              `json:"total_wall_ms"`
	PerPair       []strategyPairResult `json:"per_pair"`
}

// strategiesBenchReport is the BENCH_strategies.json shape.
type strategiesBenchReport struct {
	Budget   int           `json:"budget"`
	Pairs    int           `json:"pairs"`
	Baseline string        `json:"baseline"`
	Rows     []strategyRow `json:"rows"`
}

// runStrategiesBench builds one tiny victim system and surrogate, samples a
// fixed pair set, and attacks every pair once per registered strategy.
func runStrategiesBench(outDir string, emit func(string)) error {
	sys, err := duo.NewSystem(duo.SystemOptions{
		Categories: 3, TrainPerCategory: 4, TestPerCategory: 2,
		Frames: 6, Height: 10, Width: 10,
		FeatureDim: 12, TrainEpochs: 2, M: 6, Seed: 17,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	surr, err := sys.StealSurrogate(duo.SurrogateOptions{MaxSamples: 12, Epochs: 3})
	if err != nil {
		return err
	}
	pairs := sys.SamplePairs(5, strategiesBenchPairs)

	report := strategiesBenchReport{
		Budget:   strategiesBenchBudget,
		Pairs:    len(pairs),
		Baseline: "sparsequery",
	}
	for _, strategy := range duo.Strategies() {
		row := strategyRow{Strategy: strategy, Pairs: len(pairs)}
		var queries []int
		for i, pair := range pairs {
			start := time.Now() //duolint:allow walltime benchmark timing is the point here
			rep, err := sys.Attack(pair.Original, pair.Target, surr, duo.AttackOptions{
				Queries:  strategiesBenchBudget,
				Strategy: strategy,
				Seed:     100 + int64(i),
			})
			if err != nil {
				return fmt.Errorf("strategy %s pair %d: %w", strategy, i, err)
			}
			wallMs := float64(time.Since(start).Nanoseconds()) / 1e6 //duolint:allow walltime benchmark timing is the point here
			pr := strategyPairResult{
				Pair:     fmt.Sprintf("%s→%s", pair.Original.ID, pair.Target.ID),
				Success:  rep.APAfter > rep.APBefore,
				APBefore: rep.APBefore,
				APAfter:  rep.APAfter,
				Queries:  rep.Queries,
				Spa:      rep.Spa,
				WallMs:   wallMs,
			}
			if pr.Success {
				row.Successes++
			}
			row.MeanAPGain += (rep.APAfter - rep.APBefore) / float64(len(pairs))
			row.TotalWallMs += wallMs
			queries = append(queries, rep.Queries)
			row.PerPair = append(row.PerPair, pr)
		}
		row.SuccessRate = float64(row.Successes) / float64(len(pairs))
		sort.Ints(queries)
		row.MedianQueries = queries[len(queries)/2]
		report.Rows = append(report.Rows, row)
		emit(fmt.Sprintf("%-12s success %d/%d  median queries %3d  mean ΔAP %+6.2f  wall %7.0f ms\n",
			strategy, row.Successes, row.Pairs, row.MedianQueries, row.MeanAPGain, row.TotalWallMs))
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_strategies.json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	emit(fmt.Sprintf("wrote %s\n", path))
	return nil
}
