// Command duolint runs the project's static-analysis suite
// (internal/analysis): seven analyzers enforcing the determinism contract
// (DESIGN.md §9), the query-billing invariant, and the write-only
// telemetry rule (DESIGN.md §10) over every package of the module.
//
// Usage:
//
//	duolint [-rules detrand,walltime,...] [-json] [packages]
//
// Packages default to ./... . Diagnostics print as
//
//	file:line:col: [rule] message
//
// and the exit status is 1 when there are findings, 2 on a load error,
// 0 on a clean tree. Legitimate exceptions are annotated in place with
// //duolint:allow <rule> <reason> (see README.md); an unused or malformed
// directive is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"duo/internal/analysis"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, for tests: dir is the working
// directory package patterns resolve against.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("duolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a JSON array for tooling")
	listFlag := fs.Bool("list", false, "list available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *rulesFlag != "" {
		names := strings.Split(*rulesFlag, ",")
		sel, bad := analysis.Select(names)
		if bad != "" {
			fmt.Fprintf(stderr, "duolint: unknown rule %q (run duolint -list)\n", bad)
			return 2
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(stderr, "duolint: %v\n", err)
		return 2
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintf(stderr, "duolint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(abs, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "duolint: %v\n", err)
		return 2
	}

	diags := analysis.Run(loader.Fset, pkgs, analyzers, analysis.KnownRules())
	// Report paths relative to the invocation directory, like go vet.
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "duolint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonFlag {
			fmt.Fprintf(stderr, "duolint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
