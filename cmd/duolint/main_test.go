package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var badmodDir = filepath.Join("testdata", "badmod")

// TestBadModuleFindings drives the CLI against the known-bad fixture
// module and pins the exit code and the diagnostic line format.
func TestBadModuleFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(badmodDir, nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d diagnostics, want 3:\n%s", len(lines), stdout.String())
	}
	format := regexp.MustCompile(`^bad\.go:\d+:\d+: \[(detrand|walltime|floateq)\] .+$`)
	for _, ln := range lines {
		if !format.MatchString(ln) {
			t.Errorf("diagnostic %q does not match file:line:col: [rule] message", ln)
		}
	}
	for _, rule := range []string{"detrand", "walltime", "floateq"} {
		if !strings.Contains(stdout.String(), "["+rule+"]") {
			t.Errorf("missing a %s finding in:\n%s", rule, stdout.String())
		}
	}
	if !strings.Contains(stderr.String(), "3 finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr.String())
	}
}

// TestRulesSubset checks -rules restricts the run to the named analyzers.
func TestRulesSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(badmodDir, []string{"-rules", "floateq"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[floateq]") || strings.Contains(out, "[detrand]") || strings.Contains(out, "[walltime]") {
		t.Errorf("-rules floateq output wrong:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(badmodDir, []string{"-rules", "billedquery"}, &stdout, &stderr); code != 0 {
		t.Errorf("-rules billedquery on badmod: exit %d, want 0 (no attack-path packages there)\n%s", code, stdout.String())
	}

	if code := run(badmodDir, []string{"-rules", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown rule: exit %d, want 2", code)
	}
}

// TestJSONOutput checks -json emits machine-readable diagnostics carrying
// the same positions as the text form.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(badmodDir, []string{"-json"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) != 3 {
		t.Fatalf("got %d JSON diagnostics, want 3", len(diags))
	}
	for _, d := range diags {
		if d.File != "bad.go" || d.Line <= 0 || d.Col <= 0 || d.Rule == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

// TestListRules checks -list names every analyzer.
func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(badmodDir, []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d, want 0", code)
	}
	for _, rule := range []string{"detrand", "walltime", "mapiter", "floateq", "billedquery", "telemetryro"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, stdout.String())
		}
	}
}
