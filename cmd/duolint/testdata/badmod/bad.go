// Package badmod is a deliberately contract-violating module for
// cmd/duolint's end-to-end test: one finding each for detrand, walltime,
// and floateq, at stable positions.
package badmod

import (
	"math/rand"
	"time"
)

// Jitter violates detrand (global source) and walltime (clock read).
func Jitter() time.Time {
	return time.Now().Add(time.Duration(rand.Intn(1000)))
}

// Same violates floateq.
func Same(a, b float64) bool {
	return a == b
}
