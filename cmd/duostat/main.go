// Command duostat is the fleet observability console: it reads the
// /fleet.json endpoint served by `retrievald -admin` (node or
// coordinator mode) and renders the cluster-wide telemetry rollup — node
// reachability, per-node load and scan quantiles, shed counts, breaker
// states — plus multi-window SLO burn rates when polling.
//
//	duostat http://127.0.0.1:8080                     one-shot fleet view
//	duostat -watch -interval 1s -count 10 <url>       poll; adds qps + SLO burn
//	duostat -diff before.json after.json              compare two saved views
//	duostat -record <url> > flight.jsonl              rings + recent spans, JSONL
//
// The watch loop drives the clockless SLO engine (internal/telemetry/slo)
// with one tick per poll: qps and burn rates are computed from the
// declared -interval and the per-tick counter deltas, never from a
// measured wall clock, so a recorded sequence of fleet views always
// replays to the same numbers.
//
// -record is the flight recorder: it pulls /fleet.json?rings=1 (the
// recent-sample rings every node keeps) and the coordinator's finished
// spans from /trace.jsonl, and emits both as typed JSONL for offline
// analysis. Each line carries a "type" discriminator: fleet, ring, span,
// or note.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"duo/internal/retrieval"
	"duo/internal/telemetry"
	"duo/internal/telemetry/slo"
	"duo/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "duostat:", err)
		os.Exit(1)
	}
}

const usage = `usage:
  duostat [flags] <url>            one-shot fleet view from /fleet.json
  duostat -watch [flags] <url>     poll the fleet; adds qps and SLO burn
  duostat -diff <a.json> <b.json>  compare two saved fleet views
  duostat -record <url>            flight-recorder dump (rings + spans) as JSONL`

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("duostat", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		watch    = fs.Bool("watch", false, "poll the fleet every -interval and report deltas + SLO burn")
		interval = fs.Duration("interval", time.Second, "watch poll cadence; also the qps denominator")
		count    = fs.Int("count", 0, "watch: stop after this many polls (0 = until interrupted)")
		diffMode = fs.Bool("diff", false, "compare two saved fleet views (two file arguments)")
		record   = fs.Bool("record", false, "dump flight-recorder JSONL (rings + recent spans) to stdout")
		full     = fs.Bool("full", false, "also render the merged fleet telemetry table")

		sloTarget  = fs.Float64("slo-target", 0.999, "SLO target for both objectives, in (0,1)")
		sloGood    = fs.String("slo-good", "node.admission.admitted", "availability objective: good-event counter")
		sloBad     = fs.String("slo-bad", "node.admission.shed", "availability objective: bad-event counter")
		sloHist    = fs.String("slo-hist", "shard.scan_ns", "latency objective: bucketed histogram name")
		sloLatency = fs.Duration("slo-latency", 0, "latency objective: good-latency bound (0 disables the objective)")
		sloFast    = fs.Int("slo-fast", 0, "SLO fast window in ticks (0 = default 5)")
		sloSlow    = fs.Int("slo-slow", 0, "SLO slow window in ticks (0 = default 60)")
		sloPage    = fs.Float64("slo-page", 0, "SLO page-burn threshold (0 = default 14.4)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *diffMode:
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff wants two saved fleet views\n%s", usage)
		}
		a, err := loadView(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := loadView(fs.Arg(1))
		if err != nil {
			return err
		}
		diffViews(w, [2]string{fs.Arg(0), fs.Arg(1)}, [2]*retrieval.FleetView{a, b})
		return nil

	case fs.NArg() != 1:
		return fmt.Errorf("want one fleet URL\n%s", usage)

	case *record:
		return recordFlight(w, fs.Arg(0))

	case *watch:
		ev, err := newEvaluator(*sloTarget, *sloGood, *sloBad, *sloHist, *sloLatency,
			slo.Config{FastWindow: *sloFast, SlowWindow: *sloSlow, PageBurn: *sloPage})
		if err != nil {
			return err
		}
		return watchFleet(w, fs.Arg(0), *interval, *count, ev)

	default:
		view, err := fetchView(fs.Arg(0), false)
		if err != nil {
			return err
		}
		renderView(w, view, *full)
		return nil
	}
}

// fleetURL normalizes a user-supplied target into a /fleet.json URL:
// a bare host:port gets the scheme and path filled in, a full URL is
// kept, and rings=1 is appended when the caller wants ring samples.
func fleetURL(arg string, rings bool) (string, error) {
	if !strings.Contains(arg, "://") {
		arg = "http://" + arg
	}
	u, err := url.Parse(arg)
	if err != nil {
		return "", fmt.Errorf("bad fleet URL %q: %w", arg, err)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/fleet.json"
	}
	if rings {
		q := u.Query()
		q.Set("rings", "1")
		u.RawQuery = q.Encode()
	}
	return u.String(), nil
}

// siblingURL points at another admin endpoint on the same server.
func siblingURL(arg, path string) (string, error) {
	s, err := fleetURL(arg, false)
	if err != nil {
		return "", err
	}
	u, _ := url.Parse(s)
	u.Path, u.RawQuery = path, ""
	return u.String(), nil
}

func fetchView(arg string, rings bool) (*retrieval.FleetView, error) {
	s, err := fleetURL(arg, rings)
	if err != nil {
		return nil, err
	}
	resp, err := http.Get(s)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: status %d: %s", s, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var view retrieval.FleetView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("GET %s: not a fleet view: %w", s, err)
	}
	return &view, nil
}

func loadView(path string) (*retrieval.FleetView, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var view retrieval.FleetView
	if err := json.Unmarshal(b, &view); err != nil {
		return nil, fmt.Errorf("%s: not a fleet view: %w", path, err)
	}
	return &view, nil
}

// newEvaluator builds the watch loop's SLO engine: an availability
// objective over admitted-vs-shed, plus a latency objective when a
// threshold was given.
func newEvaluator(target float64, good, bad, hist string, threshold time.Duration, cfg slo.Config) (*slo.Evaluator, error) {
	objs := []slo.Objective{{Name: "availability", Good: good, Bad: bad, Target: target}}
	if threshold > 0 {
		objs = append(objs, slo.Objective{
			Name:        "latency",
			Histogram:   hist,
			ThresholdNs: float64(threshold.Nanoseconds()),
			Target:      target,
		})
	}
	return slo.NewEvaluator(cfg, objs...)
}

// suffixSum totals every counter whose name ends in the given suffix —
// ".queries" matches shard.queries and pq.queries alike, so the rollup
// works for exact and quantized nodes without knowing the engine.
func suffixSum(s *telemetry.Snapshot, suffix string) int64 {
	if s == nil {
		return 0
	}
	var total int64
	for k, v := range s.Counters {
		if strings.HasSuffix(k, suffix) {
			total += v
		}
	}
	return total
}

// scanStats picks the busiest scan histogram from a snapshot (shard or
// pq engine), for the quantile columns.
func scanStats(s *telemetry.Snapshot) (telemetry.HistogramStats, bool) {
	if s == nil {
		return telemetry.HistogramStats{}, false
	}
	var best telemetry.HistogramStats
	found := false
	for k, st := range s.Histograms {
		if !strings.HasSuffix(k, "scan_ns") && !strings.HasSuffix(k, "adc_ns") {
			continue
		}
		if !found || st.Count > best.Count {
			best, found = st, true
		}
	}
	return best, found
}

func fmtNs(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// renderView prints the one-shot fleet report: the reachability header,
// the per-node table, the merged totals, and the coordinator's breaker
// panel.
func renderView(w io.Writer, view *retrieval.FleetView, full bool) {
	fmt.Fprintf(w, "fleet: %d/%d nodes reachable, %d indexed\n", view.Reachable, view.Nodes, view.Size)
	fmt.Fprintf(w, "%4s  %-21s %6s %10s %8s %10s %10s\n",
		"node", "addr", "size", "queries", "shed", "scan p50", "scan p99")
	for _, fn := range view.PerNode {
		if fn.Err != "" {
			fmt.Fprintf(w, "%4d  %-21s %6s %10s %8s  unreachable: %s\n", fn.Node, fn.Addr, "-", "-", "-", fn.Err)
			continue
		}
		p50, p99 := "-", "-"
		if st, ok := scanStats(fn.Snapshot); ok {
			p50, p99 = fmtNs(st.P50), fmtNs(st.P99)
		}
		fmt.Fprintf(w, "%4d  %-21s %6d %10d %8d %10s %10s\n",
			fn.Node, fn.Addr, fn.Size,
			suffixSum(fn.Snapshot, ".queries"), suffixSum(fn.Snapshot, ".shed"),
			p50, p99)
	}
	if view.Fleet != nil {
		line := fmt.Sprintf("fleet totals: queries %d, shed %d",
			suffixSum(view.Fleet, ".queries"), suffixSum(view.Fleet, ".shed"))
		if st, ok := scanStats(view.Fleet); ok {
			line += fmt.Sprintf(", scan p99 %s", fmtNs(st.P99))
		}
		fmt.Fprintln(w, line)
	}
	renderBreakers(w, view.Coordinator)
	if full && view.Fleet != nil {
		fmt.Fprint(w, view.Fleet.Render())
	}
}

// renderBreakers prints the coordinator's per-node breaker states, the
// one cluster-side signal an operator reads first during an incident.
func renderBreakers(w io.Writer, coord *telemetry.Snapshot) {
	if coord == nil {
		return
	}
	var names []string
	for k := range coord.Gauges {
		if strings.HasSuffix(k, ".breaker_state") {
			names = append(names, k)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, k := range names {
		label := strings.TrimSuffix(strings.TrimPrefix(k, "cluster."), ".breaker_state")
		parts = append(parts, fmt.Sprintf("%s %s", label, retrieval.BreakerState(coord.Gauges[k])))
	}
	fmt.Fprintf(w, "breakers: %s\n", strings.Join(parts, ", "))
}

// watchFleet polls the fleet and prints one delta line per tick plus the
// SLO burn table. qps comes from the declared interval, not a measured
// clock, so a fixed snapshot sequence renders identically every run.
func watchFleet(w io.Writer, arg string, interval time.Duration, count int, ev *slo.Evaluator) error {
	if interval <= 0 {
		return fmt.Errorf("-interval must be positive")
	}
	tick := time.NewTicker(interval) //duolint:allow walltime operator poll cadence; qps math uses the declared interval
	defer tick.Stop()
	var prevQueries, prevShed int64
	for n := 1; count == 0 || n <= count; n++ {
		view, err := fetchView(arg, false)
		if err != nil {
			return err
		}
		queries, shed := suffixSum(view.Fleet, ".queries"), suffixSum(view.Fleet, ".shed")
		reports := ev.Tick(view.Fleet)
		if n == 1 {
			fmt.Fprintf(w, "[tick %d] fleet %d/%d: %d queries, %d shed (baseline)\n",
				n, view.Reachable, view.Nodes, queries, shed)
		} else {
			qps := float64(queries-prevQueries) / interval.Seconds()
			fmt.Fprintf(w, "[tick %d] fleet %d/%d: %d queries (+%d, %.1f qps), %d shed (+%d)\n",
				n, view.Reachable, view.Nodes, queries, queries-prevQueries, qps, shed, shed-prevShed)
			for _, r := range reports {
				line := fmt.Sprintf("  slo %-14s fast burn %6.2f  slow burn %6.2f  target %.2f%%",
					r.Objective, r.FastBurn, r.SlowBurn, 100*r.Target)
				if r.Page {
					line += "  PAGE"
				}
				fmt.Fprintln(w, line)
			}
		}
		prevQueries, prevShed = queries, shed
		if count == 0 || n < count {
			<-tick.C
		}
	}
	return nil
}

// fingerprint hashes a view's canonical JSON re-encoding, so two files
// that differ only in formatting still compare equal.
func fingerprint(v *retrieval.FleetView) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "unhashable: " + err.Error()
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%x", sum[:12])
}

// diffViews mirrors `duotrace diff` for fleet views: identical
// fingerprints short-circuit; otherwise every counter and histogram
// count is compared name by name, changed rows marked with *.
func diffViews(w io.Writer, names [2]string, vs [2]*retrieval.FleetView) {
	fa, fb := fingerprint(vs[0]), fingerprint(vs[1])
	if fa == fb {
		fmt.Fprintf(w, "fleet views are IDENTICAL (fingerprint %s, %d/%d nodes)\n",
			fa, vs[0].Reachable, vs[0].Nodes)
		return
	}
	fmt.Fprintf(w, "fleet views differ: %s (%d/%d nodes) vs %s (%d/%d nodes)\n",
		fa, vs[0].Reachable, vs[0].Nodes, fb, vs[1].Reachable, vs[1].Nodes)

	ca, cb := fleetCounters(vs[0]), fleetCounters(vs[1])
	all := map[string]bool{}
	for k := range ca {
		all[k] = true
	}
	for k := range cb {
		all[k] = true
	}
	fmt.Fprintf(w, "\nfleet counters: value (%s → %s)\n", names[0], names[1])
	keys := make([]string, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		marker := " "
		if ca[k] != cb[k] {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %-36s %d → %d\n", marker, k, ca[k], cb[k])
	}

	ha, hb := fleetHists(vs[0]), fleetHists(vs[1])
	for k := range hb {
		all[k] = true
	}
	var hkeys []string
	for k := range ha {
		hkeys = append(hkeys, k)
	}
	for k := range hb {
		if _, ok := ha[k]; !ok {
			hkeys = append(hkeys, k)
		}
	}
	if len(hkeys) > 0 {
		sort.Strings(hkeys)
		fmt.Fprintf(w, "\nfleet histograms: count (a → b)\n")
		for _, k := range hkeys {
			a, b := ha[k], hb[k]
			marker := " "
			if a.Count != b.Count {
				marker = "*"
			}
			fmt.Fprintf(w, "%s %-36s ×%d → ×%d\n", marker, k, a.Count, b.Count)
		}
	}
}

func fleetCounters(v *retrieval.FleetView) map[string]int64 {
	if v.Fleet == nil {
		return map[string]int64{}
	}
	return v.Fleet.Counters
}

func fleetHists(v *retrieval.FleetView) map[string]telemetry.HistogramStats {
	if v.Fleet == nil {
		return map[string]telemetry.HistogramStats{}
	}
	return v.Fleet.Histograms
}

// flightLine is one JSONL record in a -record dump.
type flightLine struct {
	Type string `json:"type"`
	// fleet line
	Nodes     int `json:"nodes,omitempty"`
	Reachable int `json:"reachable,omitempty"`
	Size      int `json:"size,omitempty"`
	// ring line
	Scope   string    `json:"scope,omitempty"` // "node<i>" or "coordinator"
	Addr    string    `json:"addr,omitempty"`
	Name    string    `json:"name,omitempty"`
	Samples []float64 `json:"samples,omitempty"`
	// span line
	Span *trace.Record `json:"span,omitempty"`
	// note line
	Msg string `json:"msg,omitempty"`
}

// recordFlight dumps the flight recorder: every node's ring samples
// (pulled with ?rings=1) and the server's finished spans, one typed
// JSON object per line. Spans degrade to a note when the server runs
// without a tracer.
func recordFlight(w io.Writer, arg string) error {
	view, err := fetchView(arg, true)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(flightLine{Type: "fleet", Nodes: view.Nodes, Reachable: view.Reachable, Size: view.Size}); err != nil {
		return err
	}
	emitRings := func(scope, addr string, s *telemetry.Snapshot) error {
		if s == nil {
			return nil
		}
		names := make([]string, 0, len(s.Rings))
		for k := range s.Rings {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			if len(s.Rings[k]) == 0 {
				continue
			}
			if err := enc.Encode(flightLine{Type: "ring", Scope: scope, Addr: addr, Name: k, Samples: s.Rings[k]}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, fn := range view.PerNode {
		if err := emitRings(fmt.Sprintf("node%d", fn.Node), fn.Addr, fn.Snapshot); err != nil {
			return err
		}
	}
	if err := emitRings("coordinator", "", view.Coordinator); err != nil {
		return err
	}

	spanURL, err := siblingURL(arg, "/trace.jsonl")
	if err != nil {
		return err
	}
	resp, err := http.Get(spanURL)
	if err == nil && resp.StatusCode == http.StatusOK {
		recs, rerr := trace.ReadJSONL(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return enc.Encode(flightLine{Type: "note", Msg: "trace unavailable: " + rerr.Error()})
		}
		for i := range recs {
			if err := enc.Encode(flightLine{Type: "span", Span: &recs[i]}); err != nil {
				return err
			}
		}
		return nil
	}
	if resp != nil {
		resp.Body.Close()
	}
	return enc.Encode(flightLine{Type: "note", Msg: "trace unavailable: no /trace.jsonl on this server"})
}
