package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"duo/internal/retrieval"
	"duo/internal/telemetry"
	"duo/internal/trace"
)

// testView builds a deterministic 3-node fleet view with the counter and
// histogram names retrievald nodes actually publish.
func testView() *retrieval.FleetView {
	node := func(i int, queries, shed int64) retrieval.FleetNode {
		return retrieval.FleetNode{
			Node: i,
			Addr: fmt.Sprintf("127.0.0.1:%d", 7001+i),
			Size: 40,
			Snapshot: &telemetry.Snapshot{
				Counters: map[string]int64{
					"shard.queries":           queries,
					"node.admission.admitted": queries,
					"node.admission.shed":     shed,
				},
				Histograms: map[string]telemetry.HistogramStats{
					"shard.scan_ns": {Count: queries, Mean: 2e6, P50: 1.5e6, P95: 4e6, P99: 6e6},
				},
				Rings: map[string][]float64{},
			},
		}
	}
	view := &retrieval.FleetView{
		Nodes: 3, Reachable: 3, Size: 120,
		PerNode: []retrieval.FleetNode{node(0, 100, 0), node(1, 100, 0), node(2, 100, 7)},
		Coordinator: &telemetry.Snapshot{
			Counters: map[string]int64{"cluster.queries": 300},
			Gauges: map[string]int64{
				"cluster.node0.breaker_state": int64(retrieval.BreakerClosed),
				"cluster.node2.breaker_state": int64(retrieval.BreakerOpen),
			},
		},
	}
	view.Fleet = &telemetry.Snapshot{
		Counters: map[string]int64{
			"shard.queries":           300,
			"node.admission.admitted": 300,
			"node.admission.shed":     7,
		},
		Histograms: map[string]telemetry.HistogramStats{
			"shard.scan_ns": {Count: 300, Mean: 2e6, P50: 1.5e6, P95: 4e6, P99: 6e6},
		},
	}
	return view
}

// serveView stands up an admin-shaped test server whose /fleet.json is
// produced by view(), called once per request.
func serveView(t *testing.T, view func(r *http.Request) *retrieval.FleetView) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(view(r))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestOneShotRendersFleet(t *testing.T) {
	srv := serveView(t, func(*http.Request) *retrieval.FleetView { return testView() })
	var buf bytes.Buffer
	if err := run([]string{srv.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fleet: 3/3 nodes reachable, 120 indexed",
		"127.0.0.1:7003",
		"fleet totals: queries 300, shed 7",
		"breakers: node0 closed, node2 open",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("one-shot output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "== telemetry ==") {
		t.Error("full telemetry table rendered without -full")
	}
}

func TestOneShotFullRendersMergedTable(t *testing.T) {
	srv := serveView(t, func(*http.Request) *retrieval.FleetView { return testView() })
	var buf bytes.Buffer
	if err := run([]string{"-full", srv.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "== telemetry ==") || !strings.Contains(out, "shard.scan_ns") {
		t.Errorf("-full did not render the merged snapshot table:\n%s", out)
	}
}

func TestOneShotMarksUnreachableNode(t *testing.T) {
	srv := serveView(t, func(*http.Request) *retrieval.FleetView {
		view := testView()
		view.Reachable = 2
		view.PerNode[1] = retrieval.FleetNode{Node: 1, Err: retrieval.ErrStatsUnsupported.Error()}
		return view
	})
	var buf bytes.Buffer
	if err := run([]string{srv.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "unreachable: retrieval: node does not support stats") {
		t.Errorf("unreachable node not marked:\n%s", out)
	}
}

// TestWatchBurnMathOnShedBurst replays a deterministic counter sequence:
// two clean ticks, then a shed burst that holds the availability burn at
// the page threshold across both windows. With target 0.9 and page burn
// 10, shedding half the traffic burns 0.5/0.1 = 5× per tick and a full
// window of pure sheds pages.
func TestWatchBurnMathOnShedBurst(t *testing.T) {
	// Cumulative (admitted, shed) per poll: baseline, one clean tick, then
	// an all-shed burst. Fast window 2, slow window 2, so by the final
	// tick both windows hold only burst traffic: burn = 1.0/0.1 = 10.
	steps := []struct{ admitted, shed int64 }{
		{100, 0}, {200, 0}, {200, 100}, {200, 200},
	}
	var call atomic.Int64
	srv := serveView(t, func(*http.Request) *retrieval.FleetView {
		i := int(call.Add(1)) - 1
		if i >= len(steps) {
			i = len(steps) - 1
		}
		view := testView()
		view.Fleet.Counters["node.admission.admitted"] = steps[i].admitted
		view.Fleet.Counters["node.admission.shed"] = steps[i].shed
		view.Fleet.Counters["shard.queries"] = steps[i].admitted + steps[i].shed
		return view
	})
	var buf bytes.Buffer
	err := run([]string{
		"-watch", "-interval", "1ms", "-count", "4",
		"-slo-target", "0.9", "-slo-fast", "2", "-slo-slow", "2", "-slo-page", "10",
		srv.URL,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(baseline)") {
		t.Errorf("watch output missing the baseline tick:\n%s", out)
	}
	// Tick 2: 100 new queries over the declared 1ms interval.
	if !strings.Contains(out, "(+100, 100000.0 qps)") {
		t.Errorf("watch output missing interval-derived qps:\n%s", out)
	}
	// The final tick's availability line pages at exactly the threshold.
	if !strings.Contains(out, "fast burn  10.00  slow burn  10.00  target 90.00%  PAGE") {
		t.Errorf("watch output missing the paging burn line:\n%s", out)
	}
	// Earlier clean tick must not page.
	if got := strings.Count(out, "PAGE"); got != 1 {
		t.Errorf("PAGE printed %d times, want exactly 1:\n%s", got, out)
	}
}

func TestWatchIsDeterministicAcrossRuns(t *testing.T) {
	take := func() string {
		var call atomic.Int64
		srv := serveView(t, func(*http.Request) *retrieval.FleetView {
			n := call.Add(1)
			view := testView()
			view.Fleet.Counters["shard.queries"] = 100 * n
			view.Fleet.Counters["node.admission.admitted"] = 100 * n
			return view
		})
		var buf bytes.Buffer
		if err := run([]string{"-watch", "-interval", "1ms", "-count", "3", srv.URL}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := take(), take(); a != b {
		t.Errorf("watch output not deterministic for equal snapshot sequences:\n%s\nvs\n%s", a, b)
	}
}

func TestDiffIdenticalViews(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	a, _ := json.Marshal(testView())
	// Same state, different formatting: the canonical fingerprint must
	// still compare equal.
	var pretty bytes.Buffer
	json.Indent(&pretty, a, "", "  ")
	os.WriteFile(paths[0], a, 0o644)
	os.WriteFile(paths[1], pretty.Bytes(), 0o644)

	var buf bytes.Buffer
	if err := run([]string{"-diff", paths[0], paths[1]}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IDENTICAL") {
		t.Errorf("equal views did not compare identical:\n%s", buf.String())
	}
}

func TestDiffMarksChangedCounters(t *testing.T) {
	dir := t.TempDir()
	before, after := testView(), testView()
	after.Fleet.Counters["node.admission.shed"] = 44
	after.Fleet.Histograms["shard.scan_ns"] = telemetry.HistogramStats{Count: 500}
	paths := [2]string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for i, v := range []*retrieval.FleetView{before, after} {
		b, _ := json.Marshal(v)
		if err := os.WriteFile(paths[i], b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-diff", paths[0], paths[1]}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fleet views differ",
		"* node.admission.shed",
		"7 → 44",
		"* shard.scan_ns",
		"×300 → ×500",
		"  shard.queries", // unchanged rows keep the blank marker
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestRecordEmitsTypedJSONL(t *testing.T) {
	tr := trace.New("duostat-test")
	tr.Start(nil, "warmup").End()
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet.json", func(w http.ResponseWriter, r *http.Request) {
		view := testView()
		if r.URL.Query().Get("rings") == "1" {
			view.PerNode[0].Snapshot.Rings = map[string][]float64{"shard.scan_ms": {1.5, 2.5}}
		}
		json.NewEncoder(w).Encode(view)
	})
	mux.Handle("/trace.jsonl", trace.Handler(tr))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var buf bytes.Buffer
	if err := run([]string{"-record", srv.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	var rings []flightLine
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var fl flightLine
		if err := json.Unmarshal([]byte(line), &fl); err != nil {
			t.Fatalf("record line is not JSON: %q: %v", line, err)
		}
		types[fl.Type]++
		if fl.Type == "ring" {
			rings = append(rings, fl)
		}
	}
	if types["fleet"] != 1 || types["ring"] != 1 || types["span"] != 1 {
		t.Fatalf("record dump types = %v, want 1 fleet, 1 ring, 1 span", types)
	}
	r := rings[0]
	if r.Scope != "node0" || r.Name != "shard.scan_ms" || len(r.Samples) != 2 {
		t.Errorf("ring line = %+v, want node0 shard.scan_ms with 2 samples", r)
	}
}

func TestRecordNotesMissingTrace(t *testing.T) {
	srv := serveView(t, func(*http.Request) *retrieval.FleetView { return testView() })
	var buf bytes.Buffer
	if err := run([]string{"-record", srv.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"type":"note"`) {
		t.Errorf("record without /trace.jsonl did not degrade to a note:\n%s", buf.String())
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{},                         // no URL
		{"-diff", "only-one.json"}, // diff wants two files
		{"-watch", "-interval", "0s", "http://x"},    // non-positive interval
		{"-watch", "-slo-target", "1.5", "http://x"}, // invalid target
		{"http://a", "http://b"},                     // too many URLs
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestFleetURLNormalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"127.0.0.1:8080", "http://127.0.0.1:8080/fleet.json"},
		{"http://h:1/fleet.json", "http://h:1/fleet.json"},
		{"http://h:1/", "http://h:1/fleet.json"},
	}
	for _, c := range cases {
		got, err := fleetURL(c.in, false)
		if err != nil || got != c.want {
			t.Errorf("fleetURL(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	if got, _ := fleetURL("h:1", true); got != "http://h:1/fleet.json?rings=1" {
		t.Errorf("rings URL = %q", got)
	}
	if got, _ := siblingURL("h:1", "/trace.jsonl"); got != "http://h:1/trace.jsonl" {
		t.Errorf("sibling URL = %q", got)
	}
}
