// Command duotrace analyzes span-tree dumps recorded by the deterministic
// tracer (internal/trace): the JSONL files written by `duoattack -trace`
// or scraped from `retrievald -admin`'s /trace.jsonl endpoint.
//
//	duotrace summarize run.jsonl
//	duotrace diff before.jsonl after.jsonl
//
// summarize prints per-stage and per-round rollups, the critical path,
// and the query-budget attribution: every billed victim query must appear
// as a `queries` attribute on a leaf retrieve span, so the per-round sums
// reconcile exactly with the run's `queries_total`. A trace that does not
// reconcile is corrupt (or was produced by unbilled instrumentation) and
// summarize exits nonzero on it.
//
// diff compares two runs stage by stage and round by round — e.g. the
// same attack before and after a code change, or at different worker
// counts (with the default logical clock those must be identical).
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"sort"

	"duo/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "duotrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: duotrace summarize <trace.jsonl> | duotrace diff <a.jsonl> <b.jsonl>")
	}
	switch args[0] {
	case "summarize":
		if len(args) != 2 {
			return fmt.Errorf("usage: duotrace summarize <trace.jsonl>")
		}
		tr, err := loadTrace(args[1])
		if err != nil {
			return err
		}
		return summarize(w, args[1], tr)
	case "diff":
		if len(args) != 3 {
			return fmt.Errorf("usage: duotrace diff <a.jsonl> <b.jsonl>")
		}
		a, err := loadTrace(args[1])
		if err != nil {
			return err
		}
		b, err := loadTrace(args[2])
		if err != nil {
			return err
		}
		diff(w, [2]string{args[1], args[2]}, [2]*traceTree{a, b})
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want summarize or diff)", args[0])
	}
}

// traceTree is a loaded span dump with parent/child structure resolved.
type traceTree struct {
	recs     []trace.Record
	byID     map[uint64]trace.Record
	children map[uint64][]trace.Record // parent span ID → children, ID order
	roots    []trace.Record            // spans with no local parent
}

func loadTrace(path string) (*traceTree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := trace.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return buildTree(recs), nil
}

func buildTree(recs []trace.Record) *traceTree {
	t := &traceTree{
		recs:     recs,
		byID:     make(map[uint64]trace.Record, len(recs)),
		children: make(map[uint64][]trace.Record),
	}
	for _, r := range recs {
		t.byID[r.ID] = r
	}
	// Records arrive in span-ID order, so child lists inherit it.
	for _, r := range recs {
		if _, ok := t.byID[r.Parent]; r.Parent != 0 && ok {
			t.children[r.Parent] = append(t.children[r.Parent], r)
		} else {
			t.roots = append(t.roots, r)
		}
	}
	return t
}

// dur is a span's tick (or nanosecond, under an injected clock) extent.
func dur(r trace.Record) int64 { return r.End - r.Start }

// fingerprint hashes the canonical re-encoding of the span dump; two runs
// with identical trees (the workers=1 vs workers=4 contract) match here.
func fingerprint(t *traceTree) string {
	h := sha256.New()
	if err := trace.WriteRecords(h, t.recs); err != nil {
		return "unhashable: " + err.Error()
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// stageStat is one row of the per-stage rollup.
type stageStat struct {
	count int
	total int64
}

func stageRollup(t *traceTree) map[string]stageStat {
	out := make(map[string]stageStat)
	for _, r := range t.recs {
		s := out[r.Name]
		s.count++
		s.total += dur(r)
		out[r.Name] = s
	}
	return out
}

// sortedNames returns map keys in deterministic order for printing.
func sortedNames(m map[string]stageStat) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// roundInfo is the per-round reconciliation row.
type roundInfo struct {
	rec        trace.Record
	index      int64 // the round attr
	billed     int64 // the span's own round_queries attr
	attributed int64 // Σ queries over retrieve leaves beneath it
	leaves     int   // number of retrieve leaves beneath it
	finalT     float64
	hasT       bool
}

// rounds extracts each round span beneath run with its leaf attribution.
func (t *traceTree) rounds(run trace.Record) []roundInfo {
	var out []roundInfo
	for _, r := range t.children[run.ID] {
		if r.Name != "round" {
			continue
		}
		ri := roundInfo{rec: r}
		ri.index, _ = r.Int("round")
		ri.billed, _ = r.Int("round_queries")
		ri.finalT, ri.hasT = r.Float("T")
		t.walk(r.ID, func(d trace.Record) {
			if q, ok := d.Int("queries"); ok {
				ri.attributed += q
				ri.leaves++
			}
		})
		out = append(out, ri)
	}
	return out
}

// walk visits every descendant of the span with the given ID, in ID order.
func (t *traceTree) walk(id uint64, f func(trace.Record)) {
	for _, c := range t.children[id] {
		f(c)
		t.walk(c.ID, f)
	}
}

// criticalPath descends from r, at each level following the child with the
// largest extent, and returns the chain including r itself.
func (t *traceTree) criticalPath(r trace.Record) []trace.Record {
	path := []trace.Record{r}
	for {
		kids := t.children[path[len(path)-1].ID]
		if len(kids) == 0 {
			return path
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if dur(k) > dur(best) {
				best = k
			}
		}
		path = append(path, best)
	}
}

func summarize(w io.Writer, path string, t *traceTree) error {
	fmt.Fprintf(w, "%s: %d spans, fingerprint %s\n", path, len(t.recs), fingerprint(t))
	if len(t.recs) == 0 {
		return fmt.Errorf("%s: empty trace", path)
	}

	fmt.Fprintf(w, "\nper-stage rollup (ticks with the default logical clock, ns under -traceclock):\n")
	stages := stageRollup(t)
	for _, n := range sortedNames(stages) {
		s := stages[n]
		fmt.Fprintf(w, "  %-18s ×%-5d total %-8d mean %.1f\n", n, s.count, s.total, float64(s.total)/float64(s.count))
	}

	// Reconcile every attack run in the dump; a node-side dump (retrievald
	// scrape) has no attack.run spans and skips straight past this.
	reconciled := true
	runs := 0
	for _, root := range t.roots {
		if root.Name != "attack.run" {
			continue
		}
		runs++
		total, _ := root.Int("queries_total")
		rounds := t.rounds(root)
		fmt.Fprintf(w, "\nattack.run span %d: %d round(s), %d queries billed\n", root.ID, len(rounds), total)
		if len(rounds) == 0 {
			reconciled = false
		}
		var attributed int64
		for _, ri := range rounds {
			line := fmt.Sprintf("  round %d: %d queries over %d retrieve span(s)", ri.index, ri.attributed, ri.leaves)
			if ri.hasT {
				line += fmt.Sprintf(", final 𝕋 %.4f", ri.finalT)
			}
			if ri.attributed != ri.billed {
				line += fmt.Sprintf("  [MISMATCH: round span billed %d]", ri.billed)
				reconciled = false
			}
			fmt.Fprintln(w, line)
			attributed += ri.attributed
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(attributed) / float64(total)
		}
		fmt.Fprintf(w, "  query attribution: %d of %d billed queries on retrieve leaves (%.1f%%)\n", attributed, total, pct)
		if attributed != total {
			reconciled = false
		}

		fmt.Fprintf(w, "  critical path:")
		for i, s := range t.criticalPath(root) {
			if i > 0 {
				fmt.Fprintf(w, " →")
			}
			fmt.Fprintf(w, " %s(%d)", s.Name, dur(s))
		}
		fmt.Fprintln(w)
	}
	if runs == 0 {
		fmt.Fprintf(w, "\nno attack.run spans (node-side trace); skipping query attribution\n")
		return nil
	}
	if !reconciled {
		return fmt.Errorf("%s: billed queries do not reconcile with retrieve-leaf attribution", path)
	}
	return nil
}

func diff(w io.Writer, names [2]string, ts [2]*traceTree) {
	fa, fb := fingerprint(ts[0]), fingerprint(ts[1])
	if fa == fb {
		fmt.Fprintf(w, "traces are IDENTICAL (fingerprint %s, %d spans)\n", fa, len(ts[0].recs))
		return
	}
	fmt.Fprintf(w, "traces differ: %s (%d spans) vs %s (%d spans)\n", fa, len(ts[0].recs), fb, len(ts[1].recs))

	sa, sb := stageRollup(ts[0]), stageRollup(ts[1])
	all := make(map[string]stageStat, len(sa)+len(sb))
	for n, s := range sa {
		all[n] = s
	}
	for n, s := range sb {
		if _, ok := all[n]; !ok {
			all[n] = s
		}
	}
	fmt.Fprintf(w, "\nper-stage: count (a→b), total extent (a→b)\n")
	for _, n := range sortedNames(all) {
		a, b := sa[n], sb[n]
		marker := " "
		if a != b {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %-18s ×%d→×%d  total %d→%d\n", marker, n, a.count, b.count, a.total, b.total)
	}

	for i := range ts {
		for _, root := range ts[i].roots {
			if root.Name != "attack.run" {
				continue
			}
			total, _ := root.Int("queries_total")
			fmt.Fprintf(w, "\n%s attack.run: %d queries across %d rounds\n", names[i], total, len(ts[i].rounds(root)))
		}
	}
}
