package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duo/internal/trace"
)

// recordedAttack emits a miniature but structurally faithful attack trace:
// attack.run → 2 rounds → sparsetransfer + sparsequery → retrieve leaves,
// with the billing attrs the real instrumentation writes.
func recordedAttack(queriesPerRound []int64) *trace.Tracer {
	tr := trace.New("duotrace-test")
	run := tr.Start(nil, "attack.run")
	var total int64
	for i, q := range queriesPerRound {
		round := tr.Start(run, "round")
		round.SetInt("round", int64(i))
		st := tr.Start(round, "sparsetransfer")
		st.End()
		sq := tr.Start(round, "sparsequery")
		var billed int64
		for billed < q {
			step := tr.Start(sq, "query.step")
			leaf := tr.Start(step, "retrieve")
			n := int64(2)
			if q-billed < 2 {
				n = q - billed
			}
			leaf.SetInt("queries", n)
			leaf.SetStr("outcome", "ok")
			leaf.End()
			billed += n
			step.SetFloat("T", 1.0/float64(billed))
			step.End()
		}
		sq.End()
		round.SetInt("round_queries", billed)
		round.SetFloat("T", 1.0/float64(billed))
		round.End()
		total += billed
	}
	run.SetInt("queries_total", total)
	run.End()
	return tr
}

func writeTraceFile(t *testing.T, tr *trace.Tracer, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarizeReconcilesBudget(t *testing.T) {
	path := writeTraceFile(t, recordedAttack([]int64{10, 6}), "run.jsonl")
	var out bytes.Buffer
	if err := run([]string{"summarize", path}, &out); err != nil {
		t.Fatalf("summarize failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"2 round(s), 16 queries billed",
		"round 0: 10 queries",
		"round 1: 6 queries",
		"16 of 16 billed queries on retrieve leaves (100.0%)",
		"critical path:",
		"attack.run",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summarize output missing %q:\n%s", want, s)
		}
	}
}

func TestSummarizeFailsOnUnattributedQueries(t *testing.T) {
	// Tamper with the run total so the leaves no longer cover it.
	tr := recordedAttack([]int64{4})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), `"queries_total":4`, `"queries_total":7`, 1)
	if tampered == buf.String() {
		t.Fatal("tamper target not found in dump")
	}
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"summarize", path}, &out); err == nil {
		t.Errorf("summarize accepted a trace with unattributed queries:\n%s", out.String())
	}
}

func TestSummarizeNodeTraceSkipsAttribution(t *testing.T) {
	tr := trace.New("node")
	sp := tr.Start(nil, "node.serve")
	sp.SetInt("m", 5)
	sp.End()
	path := writeTraceFile(t, tr, "node.jsonl")
	var out bytes.Buffer
	if err := run([]string{"summarize", path}, &out); err != nil {
		t.Fatalf("summarize failed on node-side trace: %v", err)
	}
	if !strings.Contains(out.String(), "skipping query attribution") {
		t.Errorf("node-side trace not recognized:\n%s", out.String())
	}
}

func TestDiffIdenticalAndDiverging(t *testing.T) {
	a := writeTraceFile(t, recordedAttack([]int64{8}), "a.jsonl")
	b := writeTraceFile(t, recordedAttack([]int64{8}), "b.jsonl")
	c := writeTraceFile(t, recordedAttack([]int64{8, 4}), "c.jsonl")

	var out bytes.Buffer
	if err := run([]string{"diff", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IDENTICAL") {
		t.Errorf("identical runs not detected:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"diff", a, c}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "traces differ") || !strings.Contains(s, "round") {
		t.Errorf("diverging runs not reported:\n%s", s)
	}
}

func TestBadUsage(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		nil,
		{"summarize"},
		{"diff", "one.jsonl"},
		{"frobnicate", "x"},
		{"summarize", filepath.Join(t.TempDir(), "missing.jsonl")},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
