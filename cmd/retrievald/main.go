// Command retrievald runs the distributed retrieval system of Fig. 1
// across real processes: data nodes serve gallery shards over TCP and a
// query client scatter/gathers top-m results through the coordinator.
//
// Every process rebuilds the same corpus and victim deterministically from
// -seed, so shards and features agree without shipping model weights.
//
// Usage:
//
//	retrievald -mode node  -addr 127.0.0.1:7001 -shard 0/2 &
//	retrievald -mode node  -addr 127.0.0.1:7002 -shard 1/2 &
//	retrievald -mode query -nodes 127.0.0.1:7001,127.0.0.1:7002 -index 0
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"duo"
	"duo/internal/models"
	"duo/internal/retrieval"
	"duo/internal/telemetry"
	"duo/internal/tensor"
	"duo/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retrievald:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("retrievald", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "query", "node or query")
		addr    = fs.String("addr", "127.0.0.1:7001", "node listen address")
		shard   = fs.String("shard", "0/1", "shard spec i/n for node mode")
		nodes   = fs.String("nodes", "", "comma-separated node addresses for query mode")
		idxFile = fs.String("indexfile", "", "node mode: persist/reuse the shard's feature index at this path")
		engine  = fs.String("engine", "exact", "node mode: index format: exact (full scan) or pq (product-quantized, ADC scan + exact re-rank)")

		pqSub    = fs.Int("pq-subspaces", 4, "pq engine: code subspaces per vector")
		pqCent   = fs.Int("pq-centroids", 16, "pq engine: centroids per subspace (≤ 256; clamped to the shard size)")
		pqRerank = fs.Int("pq-rerank", 32, "pq engine: exact re-rank depth per query")
		index    = fs.Int("index", 0, "test-video index to query")
		m        = fs.Int("m", 10, "retrieval list length")
		seed     = fs.Int64("seed", 1, "deterministic system seed")
		timeout  = fs.Duration("timeout", retrieval.DefaultCallTimeout, "per-call I/O deadline on node connections")
		retries  = fs.Int("retries", 3, "query mode: attempts per node call (1 disables retry)")
		breakK   = fs.Int("break-after", 5, "query mode: consecutive failures before a node's circuit breaker opens (0 disables)")
		policy   = fs.String("policy", "besteffort", "query mode: partial-result policy: besteffort, all, or quorum=N")
		admin    = fs.String("admin", "", "serve telemetry admin endpoints (/metrics.json, /debug/vars, /debug/pprof/) on this address; empty disables")

		maxInflight = fs.Int("max-inflight", 0, "node mode: max concurrently served requests (0 = unlimited)")
		queue       = fs.Int("queue", 0, "node mode: admission queue slots beyond -max-inflight (negative = none)")
		coalesceWin = fs.Duration("coalesce-window", 0, "query mode: coalesce concurrent queries into batch windows flushed every window (0 disables)")
		hold        = fs.Bool("hold", false, "query mode: stay up after the query, serving -admin endpoints (incl. /fleet.json) until interrupted")
		runtimeSamp = fs.Duration("runtime-stats", 5*time.Second, "runtime gauge sampling interval (heap, goroutines, GC pauses); 0 disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Telemetry and tracing are opt-in: without -admin both stay nil and
	// every instrument/span call below is a zero-cost no-op. The tracer
	// records node.serve spans (node mode) or per-attack-query node spans
	// (query mode), exported live at /trace.jsonl — only finished spans
	// appear, so scraping mid-serve is safe.
	var reg *telemetry.Registry
	var tracer *trace.Tracer
	var adminMux *http.ServeMux
	if *admin != "" {
		reg = telemetry.New()
		reg.PublishExpvar("duo")
		tracer = trace.New(fmt.Sprintf("retrievald-%s-%s", *mode, *shard))
		srv, lnAddr, mux, err := serveAdmin(*admin, reg, tracer)
		if err != nil {
			return err
		}
		defer srv.Close()
		adminMux = mux
		fmt.Printf("admin endpoints on http://%s/ (metrics.json, fleet.json, trace.jsonl, debug/vars, debug/pprof/)\n", lnAddr)
	}
	// A data node always runs a registry, -admin or not: the coordinator's
	// fleet view pulls node snapshots over the wire, and a node without
	// telemetry would be a blind spot in every /fleet.json.
	if *mode == "node" && reg == nil {
		reg = telemetry.New()
	}
	if reg != nil && *runtimeSamp > 0 {
		rs := telemetry.NewRuntimeStats(reg)
		rs.Sample() // populate the gauges before the first scrape
		stop := rs.Poll(*runtimeSamp)
		defer stop()
	}

	// Rebuild the identical system in every process.
	sys, err := duo.NewSystem(duo.SystemOptions{Seed: *seed})
	if err != nil {
		return err
	}

	switch *mode {
	case "node":
		var si, sn int
		if _, err := fmt.Sscanf(*shard, "%d/%d", &si, &sn); err != nil || sn < 1 || si < 0 || si >= sn {
			return fmt.Errorf("bad -shard %q (want i/n)", *shard)
		}
		var mine []*duo.Video
		for i, v := range sys.Corpus.Train {
			if i%sn == si {
				mine = append(mine, v)
			}
		}
		var (
			nodeIdx  retrieval.GalleryIndex
			fromDisk bool
		)
		switch *engine {
		case "exact":
			shardIdx, loaded, err := loadOrBuildShard(*idxFile, sys, mine)
			if err != nil {
				return err
			}
			shardIdx.SetTelemetry(reg)
			nodeIdx, fromDisk = shardIdx, loaded
		case "pq":
			pqIdx, loaded, err := loadOrBuildPQ(*idxFile, sys, mine, retrieval.PQConfig{
				Subspaces:   *pqSub,
				Centroids:   *pqCent,
				Seed:        *seed,
				RerankDepth: *pqRerank,
			})
			if err != nil {
				return err
			}
			pqIdx.SetTelemetry(reg)
			defer pqIdx.Close()
			nodeIdx, fromDisk = pqIdx, loaded
		default:
			return fmt.Errorf("unknown -engine %q (want exact or pq)", *engine)
		}
		if fromDisk {
			fmt.Printf("loaded %s feature index from %s\n", *engine, *idxFile)
		} else if *idxFile != "" {
			fmt.Printf("built and saved %s feature index to %s\n", *engine, *idxFile)
		}
		srv, err := retrieval.ServeNodeConfig(*addr, nodeIdx, retrieval.NodeServerConfig{
			Trace: tracer,
			Admission: retrieval.AdmissionConfig{
				MaxInFlight: *maxInflight,
				MaxQueue:    *queue,
			},
			Telemetry: reg,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		// Surface the admission configuration in /metrics.json next to the
		// live counters, so an operator reading shed counts can see the
		// limits that produced them.
		reg.Gauge("node.admission.config.max_inflight").Set(int64(*maxInflight))
		reg.Gauge("node.admission.config.queue").Set(int64(*queue))
		fmt.Printf("node serving shard %s (%d videos) on %s\n", *shard, len(mine), srv.Addr())
		if *maxInflight > 0 {
			fmt.Printf("admission: max %d in flight, %d queued; excess load is shed\n", *maxInflight, *queue)
		}
		if adminMux != nil {
			// A node's /fleet.json is the fleet-of-one view of itself, so
			// duostat points at any retrievald process the same way.
			adminMux.HandleFunc("/fleet.json", func(w http.ResponseWriter, r *http.Request) {
				snap := reg.Snapshot()
				if r.URL.Query().Get("rings") != "1" {
					snap.Rings = map[string][]float64{}
				}
				writeFleetJSON(w, &retrieval.FleetView{
					Nodes: 1, Reachable: 1, Size: nodeIdx.Size(),
					Fleet: snap,
					PerNode: []retrieval.FleetNode{
						{Node: 0, Addr: srv.Addr(), Size: nodeIdx.Size(), Snapshot: snap},
					},
				})
			})
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		return nil

	case "query":
		if *nodes == "" {
			return fmt.Errorf("query mode needs -nodes")
		}
		pol, err := parsePolicy(*policy)
		if err != nil {
			return err
		}
		var transports []retrieval.Transport
		for i, a := range strings.Split(*nodes, ",") {
			tr, err := retrieval.DialNodeTimeout(strings.TrimSpace(a), *timeout)
			if err != nil {
				return err
			}
			// Per-node fault-tolerance chain: breaker outermost so retries
			// don't hammer a node the breaker already declared dead.
			var node retrieval.Transport = tr
			if *retries > 1 {
				rt := retrieval.NewRetryTransport(node, retrieval.RetryConfig{
					MaxAttempts: *retries, Seed: *seed + int64(i),
				})
				rt.SetTelemetry(reg, fmt.Sprintf("cluster.node%d.retry", i))
				node = rt
			}
			if *breakK > 0 {
				bt := retrieval.NewBreakerTransport(node, retrieval.BreakerConfig{
					FailureThreshold: *breakK,
				})
				bt.SetTelemetry(reg, fmt.Sprintf("cluster.node%d.breaker", i))
				node = bt
			}
			transports = append(transports, node)
		}
		cluster := retrieval.NewCluster(sys.VictimModel(), transports).SetPolicy(pol).SetTrace(tracer)
		cluster.SetTelemetry(reg)
		defer cluster.Close()
		if adminMux != nil {
			// The coordinator's /fleet.json pulls every node's snapshot over
			// the stats RPC and serves the deterministic merge (?rings=1
			// includes node-local sample rings in the per-node sections).
			adminMux.HandleFunc("/fleet.json", func(w http.ResponseWriter, r *http.Request) {
				view, err := cluster.FleetSnapshot(r.URL.Query().Get("rings") == "1")
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				writeFleetJSON(w, view)
			})
		}

		// Optional coalescing front door: concurrent queries park in a
		// window flushed every -coalesce-window (or when full) and execute
		// as one batch. For this CLI's single query it adds one window of
		// latency; it exists here so a scripted fan-out of retrievald
		// processes behind one coordinator exercises the serving front door.
		var front retrieval.FallibleRetriever = cluster
		if *coalesceWin > 0 {
			co := retrieval.NewCoalescer(cluster, retrieval.CoalescerConfig{Window: *coalesceWin})
			co.SetTelemetry(reg)
			defer co.Close()
			reg.Gauge("coalesce.config.window_ms").Set(coalesceWin.Milliseconds())
			front = co
		}

		if *index < 0 || *index >= len(sys.Corpus.Test) {
			return fmt.Errorf("index %d out of range [0,%d)", *index, len(sys.Corpus.Test))
		}
		q := sys.Corpus.Test[*index]
		rs, err := front.RetrieveErr(q, *m)
		if err != nil {
			for _, h := range cluster.Health() {
				if h.LastError != "" || h.Sheds > 0 {
					fmt.Fprintf(os.Stderr, "node %d: %d ok, %d failed, %d shed (breaker %s): %s\n",
						h.Node, h.Successes, h.Failures, h.Sheds, h.Breaker, h.LastError)
				}
			}
			// BestEffort reports node errors alongside a usable partial
			// merge; that availability is the policy's point, so warn and
			// print. Strict policies return no results — fail hard.
			if len(rs) == 0 {
				return err
			}
			fmt.Fprintf(os.Stderr, "retrievald: partial results (%s): %v\n", pol, err)
		}
		fmt.Printf("query %s (label %d) → top-%d [policy %s]:\n", q.ID, q.Label, *m, pol)
		for i, r := range rs {
			fmt.Printf("%2d. %-28s label=%d dist=%.4f\n", i+1, r.ID, r.Label, r.Dist)
		}
		if *hold {
			fmt.Println("holding: admin endpoints stay up until interrupt (ctrl-c)")
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt)
			<-sig
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// serveAdmin starts the -admin endpoint server (metrics snapshot, span
// dump, expvar, pprof) on addr and returns the running server, its bound
// address (so callers can use ":0" and learn the real port), and the mux
// so mode-specific endpoints (/fleet.json) can be added once their
// backing state exists — http.ServeMux registration is safe after the
// server starts.
func serveAdmin(addr string, reg *telemetry.Registry, tr *trace.Tracer) (*http.Server, net.Addr, *http.ServeMux, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("admin listener: %w", err)
	}
	mux := telemetry.AdminMux(reg)
	mux.Handle("/trace.jsonl", trace.Handler(tr))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr(), mux, nil
}

// writeFleetJSON serves a fleet view as pretty-printed JSON. encoding/json
// walks map keys sorted, so equal fleet state yields identical bytes.
func writeFleetJSON(w http.ResponseWriter, view *retrieval.FleetView) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view)
}

// parsePolicy maps the -policy flag to a partial-result policy.
func parsePolicy(s string) (retrieval.Policy, error) {
	switch {
	case s == "besteffort" || s == "best-effort":
		return retrieval.BestEffort(), nil
	case s == "all" || s == "require-all":
		return retrieval.RequireAll(), nil
	case strings.HasPrefix(s, "quorum="):
		var q int
		if _, err := fmt.Sscanf(s, "quorum=%d", &q); err != nil || q < 1 {
			return retrieval.Policy{}, fmt.Errorf("bad -policy %q (want quorum=N with N ≥ 1)", s)
		}
		return retrieval.Quorum(q), nil
	default:
		return retrieval.Policy{}, fmt.Errorf("unknown -policy %q (want besteffort, all, or quorum=N)", s)
	}
}

// loadOrBuildShard reuses a persisted feature index when available (the
// expensive part of node startup is feature extraction), otherwise builds
// the shard and persists it if a path was given.
//
// A missing file means "build"; any other open failure (permissions, I/O)
// is reported rather than silently triggering an expensive rebuild over a
// file we could not even look at. A file that opens but fails to decode is
// treated as corrupt: the node warns and rebuilds, overwriting it.
func loadOrBuildShard(path string, sys *duo.System, mine []*duo.Video) (*retrieval.Shard, bool, error) {
	if path != "" {
		f, err := os.Open(path)
		switch {
		case err == nil:
			shard, rerr := retrieval.ReadShard(f)
			f.Close()
			if rerr == nil {
				return shard, true, nil
			}
			fmt.Fprintf(os.Stderr, "retrievald: index %s is corrupt (%v); rebuilding\n", path, rerr)
		case !errors.Is(err, os.ErrNotExist):
			return nil, false, fmt.Errorf("open index %s: %w", path, err)
		}
	}
	shard := retrieval.NewShard(sys.VictimModel(), mine)
	if path != "" {
		if err := writeIndexAtomic(path, shard.WriteIndex); err != nil {
			return nil, false, err
		}
	}
	return shard, false, nil
}

// loadOrBuildPQ is loadOrBuildShard for the product-quantized engine: it
// reuses a persisted PQ index (memory-mapped read-only, so cold starts
// skip both feature extraction and codebook training), otherwise embeds
// the shard, trains the index, and persists it if a path was given.
//
// A missing file means "build". A file that fails the format's typed
// validation (truncated, corrupt, wrong version, not a PQ index) is
// reported and rebuilt, overwriting it — same contract as the exact
// engine's gob index.
func loadOrBuildPQ(path string, sys *duo.System, mine []*duo.Video, cfg retrieval.PQConfig) (*retrieval.PQIndex, bool, error) {
	if path != "" {
		idx, err := retrieval.OpenPQIndexFile(path)
		switch {
		case err == nil:
			return idx, true, nil
		case errors.Is(err, retrieval.ErrIndexMagic),
			errors.Is(err, retrieval.ErrIndexVersion),
			errors.Is(err, retrieval.ErrIndexTruncated),
			errors.Is(err, retrieval.ErrIndexCorrupt):
			fmt.Fprintf(os.Stderr, "retrievald: pq index %s unusable (%v); rebuilding\n", path, err)
		case !errors.Is(err, os.ErrNotExist):
			return nil, false, fmt.Errorf("open pq index %s: %w", path, err)
		}
	}
	model := sys.VictimModel()
	ids := make([]string, len(mine))
	labels := make([]int, len(mine))
	feats := make([]*tensor.Tensor, len(mine))
	for i, v := range mine {
		ids[i] = v.ID
		labels[i] = v.Label
		feats[i] = models.Embed(model, v)
	}
	if cfg.Centroids > len(mine) {
		cfg.Centroids = len(mine)
	}
	idx, err := retrieval.NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		return nil, false, err
	}
	if path != "" {
		if err := writeIndexAtomic(path, idx.WriteIndex); err != nil {
			return nil, false, err
		}
	}
	return idx, false, nil
}

// writeIndexAtomic persists an index via temp file + rename so a crash
// mid-write can never leave a truncated index that poisons the next
// startup: readers see either the old file or the complete new one. write
// is the index's encoder (Shard.WriteIndex, PQIndex.WriteIndex, ...).
func writeIndexAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist index: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("persist index: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist index: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist index: %w", err)
	}
	return nil
}
