// Command retrievald runs the distributed retrieval system of Fig. 1
// across real processes: data nodes serve gallery shards over TCP and a
// query client scatter/gathers top-m results through the coordinator.
//
// Every process rebuilds the same corpus and victim deterministically from
// -seed, so shards and features agree without shipping model weights.
//
// Usage:
//
//	retrievald -mode node  -addr 127.0.0.1:7001 -shard 0/2 &
//	retrievald -mode node  -addr 127.0.0.1:7002 -shard 1/2 &
//	retrievald -mode query -nodes 127.0.0.1:7001,127.0.0.1:7002 -index 0
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"duo"
	"duo/internal/retrieval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retrievald:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("retrievald", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "query", "node or query")
		addr    = fs.String("addr", "127.0.0.1:7001", "node listen address")
		shard   = fs.String("shard", "0/1", "shard spec i/n for node mode")
		nodes   = fs.String("nodes", "", "comma-separated node addresses for query mode")
		idxFile = fs.String("indexfile", "", "node mode: persist/reuse the shard's feature index at this path")
		index   = fs.Int("index", 0, "test-video index to query")
		m       = fs.Int("m", 10, "retrieval list length")
		seed    = fs.Int64("seed", 1, "deterministic system seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Rebuild the identical system in every process.
	sys, err := duo.NewSystem(duo.SystemOptions{Seed: *seed})
	if err != nil {
		return err
	}

	switch *mode {
	case "node":
		var si, sn int
		if _, err := fmt.Sscanf(*shard, "%d/%d", &si, &sn); err != nil || sn < 1 || si < 0 || si >= sn {
			return fmt.Errorf("bad -shard %q (want i/n)", *shard)
		}
		var mine []*duo.Video
		for i, v := range sys.Corpus.Train {
			if i%sn == si {
				mine = append(mine, v)
			}
		}
		shardIdx, fromDisk, err := loadOrBuildShard(*idxFile, sys, mine)
		if err != nil {
			return err
		}
		if fromDisk {
			fmt.Printf("loaded feature index from %s\n", *idxFile)
		} else if *idxFile != "" {
			fmt.Printf("built and saved feature index to %s\n", *idxFile)
		}
		srv, err := retrieval.ServeNode(*addr, shardIdx)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("node serving shard %s (%d videos) on %s\n", *shard, len(mine), srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		return nil

	case "query":
		if *nodes == "" {
			return fmt.Errorf("query mode needs -nodes")
		}
		var transports []retrieval.Transport
		for _, a := range strings.Split(*nodes, ",") {
			tr, err := retrieval.DialNode(strings.TrimSpace(a))
			if err != nil {
				return err
			}
			transports = append(transports, tr)
		}
		cluster := retrieval.NewCluster(sys.VictimModel(), transports)
		defer cluster.Close()

		if *index < 0 || *index >= len(sys.Corpus.Test) {
			return fmt.Errorf("index %d out of range [0,%d)", *index, len(sys.Corpus.Test))
		}
		q := sys.Corpus.Test[*index]
		rs, err := cluster.RetrieveErr(q, *m)
		if err != nil {
			return err
		}
		fmt.Printf("query %s (label %d) → top-%d:\n", q.ID, q.Label, *m)
		for i, r := range rs {
			fmt.Printf("%2d. %-28s label=%d dist=%.4f\n", i+1, r.ID, r.Label, r.Dist)
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// loadOrBuildShard reuses a persisted feature index when available (the
// expensive part of node startup is feature extraction), otherwise builds
// the shard and persists it if a path was given.
func loadOrBuildShard(path string, sys *duo.System, mine []*duo.Video) (*retrieval.Shard, bool, error) {
	if path != "" {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			shard, err := retrieval.ReadShard(f)
			if err != nil {
				return nil, false, err
			}
			return shard, true, nil
		}
	}
	shard := retrieval.NewShard(sys.VictimModel(), mine)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		if err := shard.WriteIndex(f); err != nil {
			return nil, false, err
		}
	}
	return shard, false, nil
}
