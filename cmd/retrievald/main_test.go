package main

import (
	"os"
	"path/filepath"
	"testing"

	"duo"
)

// newTestSystem builds the deterministic system the daemon uses.
func newTestSystem() (*duo.System, error) {
	return duo.NewSystem(duo.SystemOptions{Seed: 1})
}

func TestUnknownMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestQueryNeedsNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "query"}); err == nil {
		t.Error("query mode without -nodes accepted")
	}
}

func TestNodeBadShardSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "node", "-shard", "5/2"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run([]string{"-mode", "node", "-shard", "nonsense"}); err == nil {
		t.Error("malformed shard accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"besteffort", "best-effort", "all", "require-all", "quorum=2"} {
		if _, err := parsePolicy(ok); err != nil {
			t.Errorf("parsePolicy(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "quorum=0", "quorum=x", "most"} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("parsePolicy(%q) accepted", bad)
		}
	}
}

func TestLoadOrBuildShardCorruptIndexRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.idx")
	// A truncated/garbage index (e.g. a crash mid-write under the old
	// non-atomic persist) must warn and rebuild, not fail or load garbage.
	if err := os.WriteFile(path, []byte("not a gob index"), 0o644); err != nil {
		t.Fatal(err)
	}
	shard, fromDisk, err := loadOrBuildShard(path, sys, sys.Corpus.Train[:3])
	if err != nil {
		t.Fatalf("corrupt index was not rebuilt: %v", err)
	}
	if fromDisk {
		t.Error("corrupt index reported as loaded from disk")
	}
	if shard.Size() != 3 {
		t.Errorf("rebuilt shard has %d entries, want 3", shard.Size())
	}
	// The rebuild overwrote the corrupt file atomically: it now loads.
	loaded, fromDisk, err := loadOrBuildShard(path, sys, nil)
	if err != nil || !fromDisk {
		t.Fatalf("repaired index did not load: fromDisk=%v, err=%v", fromDisk, err)
	}
	if loaded.Size() != 3 {
		t.Errorf("repaired index has %d entries, want 3", loaded.Size())
	}
	// Atomic persist leaves no temp droppings behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("index dir has stray files: %v", names)
	}
}

func TestLoadOrBuildShardReportsUnreadablePath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	// A path under a regular file fails with ENOTDIR — an environment
	// problem, which must be reported, not conflated with "missing index,
	// rebuild silently".
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadOrBuildShard(filepath.Join(blocker, "shard.idx"), sys, sys.Corpus.Train[:2]); err == nil {
		t.Error("unreadable index path did not surface an error")
	}
}

func TestLoadOrBuildShardRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/shard.idx"
	built, fromDisk, err := loadOrBuildShard(path, sys, sys.Corpus.Train[:4])
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk {
		t.Error("first call should build, not load")
	}
	loaded, fromDisk, err := loadOrBuildShard(path, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fromDisk {
		t.Error("second call should load from disk")
	}
	if loaded.Size() != built.Size() {
		t.Errorf("sizes differ: %d vs %d", loaded.Size(), built.Size())
	}
}
