package main

import (
	"testing"

	"duo"
)

// newTestSystem builds the deterministic system the daemon uses.
func newTestSystem() (*duo.System, error) {
	return duo.NewSystem(duo.SystemOptions{Seed: 1})
}

func TestUnknownMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestQueryNeedsNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "query"}); err == nil {
		t.Error("query mode without -nodes accepted")
	}
}

func TestNodeBadShardSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "node", "-shard", "5/2"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run([]string{"-mode", "node", "-shard", "nonsense"}); err == nil {
		t.Error("malformed shard accepted")
	}
}

func TestLoadOrBuildShardRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/shard.idx"
	built, fromDisk, err := loadOrBuildShard(path, sys, sys.Corpus.Train[:4])
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk {
		t.Error("first call should build, not load")
	}
	loaded, fromDisk, err := loadOrBuildShard(path, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fromDisk {
		t.Error("second call should load from disk")
	}
	if loaded.Size() != built.Size() {
		t.Errorf("sizes differ: %d vs %d", loaded.Size(), built.Size())
	}
}
