package main

import (
	"bytes"
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duo"
	"duo/internal/retrieval"
	"duo/internal/telemetry"
	"duo/internal/trace"
)

// newTestSystem builds the deterministic system the daemon uses.
func newTestSystem() (*duo.System, error) {
	return duo.NewSystem(duo.SystemOptions{Seed: 1})
}

func TestUnknownMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestQueryNeedsNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "query"}); err == nil {
		t.Error("query mode without -nodes accepted")
	}
}

func TestNodeBadShardSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-mode", "node", "-shard", "5/2"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run([]string{"-mode", "node", "-shard", "nonsense"}); err == nil {
		t.Error("malformed shard accepted")
	}
}

// httpGet fetches a URL from the admin server and returns the body.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestAdminEndpointsServeAllGroups stands up the -admin server exactly as
// run() does and checks each endpoint group: the registry snapshot at
// /metrics.json (counters, gauges, histograms), the expvar dump at
// /debug/vars, and the pprof index at /debug/pprof/.
func TestAdminEndpointsServeAllGroups(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("cluster.queries").Add(3)
	reg.Gauge("cluster.node0.breaker_state").Set(1)
	reg.Latency("retrieval.scan_ns").Observe(1.5e6)

	tr := trace.New("admin-test")
	tr.Start(nil, "warmup").End()

	srv, addr, _, err := serveAdmin("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()

	var snap telemetry.Snapshot
	if err := json.Unmarshal(httpGet(t, base+"/metrics.json"), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	if snap.Counters["cluster.queries"] != 3 {
		t.Errorf("counters: got %v, want cluster.queries=3", snap.Counters)
	}
	if snap.Gauges["cluster.node0.breaker_state"] != 1 {
		t.Errorf("gauges: got %v, want cluster.node0.breaker_state=1", snap.Gauges)
	}
	if st, ok := snap.Histograms["retrieval.scan_ns"]; !ok || st.Count != 1 {
		t.Errorf("histograms: got %v, want retrieval.scan_ns with count 1", snap.Histograms)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(httpGet(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["cmdline"]; !ok {
		t.Error("/debug/vars is missing the standard cmdline var")
	}

	if body := httpGet(t, base+"/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}

	recs, err := trace.ReadJSONL(bytes.NewReader(httpGet(t, base+"/trace.jsonl")))
	if err != nil {
		t.Fatalf("/trace.jsonl is not valid span JSONL: %v", err)
	}
	if len(recs) != 1 || recs[0].Name != "warmup" {
		t.Errorf("/trace.jsonl served %+v, want the one finished warmup span", recs)
	}
}

func TestAdminBadAddressFails(t *testing.T) {
	if _, _, _, err := serveAdmin("256.0.0.1:http", telemetry.New(), trace.New("t")); err == nil {
		t.Error("unlistenable admin address accepted")
	}
}

// TestQueryModeWithAdminPublishesTelemetry runs a real node + query pair
// through run() with -admin enabled and then checks, via the globally
// published expvar, that the query-path instrumentation actually fired:
// one cluster query, one per-node success, breaker closed.
func TestQueryModeWithAdminPublishesTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	node, err := retrieval.ServeNode("127.0.0.1:0", retrieval.NewShard(sys.VictimModel(), sys.Corpus.Train[:4]))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	err = run([]string{
		"-mode", "query", "-nodes", node.Addr(), "-index", "0", "-m", "3",
		"-admin", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("query mode with -admin: %v", err)
	}

	v := expvar.Get("duo")
	if v == nil {
		t.Fatal("-admin did not publish the duo expvar")
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("duo expvar is not a snapshot: %v", err)
	}
	if snap.Counters["cluster.queries"] != 1 {
		t.Errorf("cluster.queries = %d, want 1", snap.Counters["cluster.queries"])
	}
	if snap.Counters["cluster.node0.ok"] != 1 {
		t.Errorf("cluster.node0.ok = %d, want 1", snap.Counters["cluster.node0.ok"])
	}
	if got := snap.Gauges["cluster.node0.breaker_state"]; got != 0 {
		t.Errorf("cluster.node0.breaker_state = %d, want closed (0)", got)
	}
	if _, ok := snap.Histograms["cluster.gather_ns"]; !ok {
		t.Error("cluster.gather_ns histogram missing from snapshot")
	}
}

func TestQueryModeWithCoalescingFrontDoor(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	node, err := retrieval.ServeNode("127.0.0.1:0", retrieval.NewShard(sys.VictimModel(), sys.Corpus.Train[:4]))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// A single CLI query through the coalescer: the window ticker must
	// flush it (nothing else will), and the answer must come back intact.
	err = run([]string{
		"-mode", "query", "-nodes", node.Addr(), "-index", "0", "-m", "3",
		"-coalesce-window", "5ms",
	})
	if err != nil {
		t.Fatalf("query mode with -coalesce-window: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"besteffort", "best-effort", "all", "require-all", "quorum=2"} {
		if _, err := parsePolicy(ok); err != nil {
			t.Errorf("parsePolicy(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "quorum=0", "quorum=x", "most"} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("parsePolicy(%q) accepted", bad)
		}
	}
}

func TestLoadOrBuildShardCorruptIndexRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.idx")
	// A truncated/garbage index (e.g. a crash mid-write under the old
	// non-atomic persist) must warn and rebuild, not fail or load garbage.
	if err := os.WriteFile(path, []byte("not a gob index"), 0o644); err != nil {
		t.Fatal(err)
	}
	shard, fromDisk, err := loadOrBuildShard(path, sys, sys.Corpus.Train[:3])
	if err != nil {
		t.Fatalf("corrupt index was not rebuilt: %v", err)
	}
	if fromDisk {
		t.Error("corrupt index reported as loaded from disk")
	}
	if shard.Size() != 3 {
		t.Errorf("rebuilt shard has %d entries, want 3", shard.Size())
	}
	// The rebuild overwrote the corrupt file atomically: it now loads.
	loaded, fromDisk, err := loadOrBuildShard(path, sys, nil)
	if err != nil || !fromDisk {
		t.Fatalf("repaired index did not load: fromDisk=%v, err=%v", fromDisk, err)
	}
	if loaded.Size() != 3 {
		t.Errorf("repaired index has %d entries, want 3", loaded.Size())
	}
	// Atomic persist leaves no temp droppings behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("index dir has stray files: %v", names)
	}
}

func TestLoadOrBuildShardReportsUnreadablePath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	// A path under a regular file fails with ENOTDIR — an environment
	// problem, which must be reported, not conflated with "missing index,
	// rebuild silently".
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadOrBuildShard(filepath.Join(blocker, "shard.idx"), sys, sys.Corpus.Train[:2]); err == nil {
		t.Error("unreadable index path did not surface an error")
	}
}

func TestLoadOrBuildShardRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/shard.idx"
	built, fromDisk, err := loadOrBuildShard(path, sys, sys.Corpus.Train[:4])
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk {
		t.Error("first call should build, not load")
	}
	loaded, fromDisk, err := loadOrBuildShard(path, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fromDisk {
		t.Error("second call should load from disk")
	}
	if loaded.Size() != built.Size() {
		t.Errorf("sizes differ: %d vs %d", loaded.Size(), built.Size())
	}
}

func testPQConfig() retrieval.PQConfig {
	return retrieval.PQConfig{Subspaces: 4, Centroids: 4, KMeansIters: 10, Seed: 2, RerankDepth: 8}
}

func TestLoadOrBuildPQRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pq.duopq")
	built, fromDisk, err := loadOrBuildPQ(path, sys, sys.Corpus.Train[:4], testPQConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()
	if fromDisk {
		t.Error("first call should build, not load")
	}
	if built.Size() != 4 {
		t.Errorf("built index has %d entries, want 4", built.Size())
	}
	loaded, fromDisk, err := loadOrBuildPQ(path, sys, nil, testPQConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if !fromDisk {
		t.Error("second call should load from disk")
	}
	if loaded.Size() != built.Size() {
		t.Errorf("sizes differ: %d vs %d", loaded.Size(), built.Size())
	}
}

func TestLoadOrBuildPQCorruptIndexRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pq.duopq")
	if err := os.WriteFile(path, []byte("not a pq index"), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, fromDisk, err := loadOrBuildPQ(path, sys, sys.Corpus.Train[:4], testPQConfig())
	if err != nil {
		t.Fatalf("corrupt index was not rebuilt: %v", err)
	}
	defer idx.Close()
	if fromDisk {
		t.Error("corrupt index reported as loaded from disk")
	}
	// The rebuild overwrote the file atomically: it now loads, and the
	// directory holds no temp droppings.
	repaired, fromDisk, err := loadOrBuildPQ(path, sys, nil, testPQConfig())
	if err != nil || !fromDisk {
		t.Fatalf("repaired index did not load: fromDisk=%v, err=%v", fromDisk, err)
	}
	defer repaired.Close()
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("index dir has stray files: %v", names)
	}
}

func TestLoadOrBuildPQReportsUnreadablePath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	// ENOTDIR is an environment problem, not a missing-or-damaged index;
	// it must surface instead of triggering a silent rebuild.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadOrBuildPQ(filepath.Join(blocker, "pq.duopq"), sys, sys.Corpus.Train[:2], testPQConfig()); err == nil {
		t.Error("unreadable index path did not surface an error")
	}
}

// TestQueryAgainstPQNode serves a product-quantized index behind the same
// TCP node protocol the exact shards use and runs a real CLI query against
// it — the GalleryIndex seam, exercised end to end.
func TestQueryAgainstPQNode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, err := newTestSystem()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testPQConfig()
	idx, _, err := loadOrBuildPQ("", sys, sys.Corpus.Train[:4], cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	node, err := retrieval.ServeNode("127.0.0.1:0", idx)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	err = run([]string{"-mode", "query", "-nodes", node.Addr(), "-index", "0", "-m", "3"})
	if err != nil {
		t.Fatalf("query against pq node: %v", err)
	}
}
