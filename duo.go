// Package duo is the public API of the DUO reproduction: a stealthy,
// targeted, black-box adversarial-example attack on DNN-based video
// retrieval systems via dual frame-pixel search (Yao et al., ICDCS 2023).
//
// The package bundles the full experimental stack — synthetic video
// corpora, trainable video feature extractors, a (optionally distributed)
// retrieval engine, surrogate-model stealing, the DUO attack pipeline
// (SparseTransfer + SparseQuery), three baseline attacks, and two
// defenses — behind a small workflow API:
//
//	sys, _ := duo.NewSystem(duo.SystemOptions{})        // victim service
//	surr, _ := sys.StealSurrogate(duo.SurrogateOptions{}) // black-box steal
//	rep, _ := sys.Attack(v, vt, surr, duo.AttackOptions{}) // run DUO
//	fmt.Println(rep.APAfter, rep.Spa, rep.PScore)
//
// Everything is deterministic given the seeds in the option structs.
package duo

import (
	"fmt"
	"math/rand"

	"duo/internal/attack"
	"duo/internal/core"
	"duo/internal/dataset"
	"duo/internal/metrics"
	"duo/internal/models"
	"duo/internal/nn/losses"
	"duo/internal/retrieval"
	"duo/internal/surrogate"
	"duo/internal/telemetry"
	"duo/internal/trace"
	"duo/internal/video"
)

// Video is a labelled video clip ([N, C, H, W] pixels in [0, 255]).
type Video = video.Video

// Corpus is a train/test video collection.
type Corpus = dataset.Corpus

// Model is a differentiable video → feature-vector map.
type Model = models.Model

// Retriever answers top-m similarity queries (the black-box interface).
type Retriever = retrieval.Retriever

// Result is one retrieved gallery entry.
type Result = retrieval.Result

// Telemetry is a write-only metrics registry (counters, gauges, latency
// histograms, trajectory rings). Wire one into a System with SetTelemetry
// or into a single run with AttackOptions.Telemetry, then read it back via
// Snapshot, Summary, or the HTTP handlers in internal/telemetry. Enabling
// telemetry never changes any retrieval or attack result.
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty telemetry registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Tracer is a write-only deterministic span recorder. Wire one into a
// System with SetTrace or into a single run with AttackOptions.Trace, then
// export the span tree with WriteJSONL (analyzed offline by cmd/duotrace).
// With the default logical clock the recorded tree is bitwise reproducible
// across runs and worker counts; enabling tracing never changes any
// retrieval or attack result.
type Tracer = trace.Tracer

// NewTracer returns a tracer recording under the given trace ID (empty
// selects "trace").
func NewTracer(id string) *Tracer { return trace.New(id) }

// SystemOptions configure NewSystem.
type SystemOptions struct {
	// DatasetName labels the synthetic corpus (default "UCF101Sim").
	DatasetName string
	// Categories, TrainPerCategory, TestPerCategory size the corpus
	// (defaults: 6 / 8 / 4).
	Categories       int
	TrainPerCategory int
	TestPerCategory  int
	// Frames, Height, Width set clip geometry (defaults: 16 / 16 / 16).
	Frames int
	Height int
	Width  int
	// VictimArch is one of I3D, TPN, SlowFast, Resnet34 (default SlowFast).
	VictimArch string
	// VictimLoss is one of ArcFaceLoss, LiftedLoss, AngularLoss, Triplet
	// (default ArcFaceLoss).
	VictimLoss string
	// FeatureDim is the embedding size (default 32).
	FeatureDim int
	// TrainEpochs controls victim training (default 3).
	TrainEpochs int
	// M is the retrieval list length (default 10).
	M int
	// Nodes > 1 shards the gallery across that many in-process data
	// nodes behind a scatter/gather coordinator (Fig. 1's distributed
	// deployment); 0 or 1 uses a single-node engine.
	Nodes int
	// Hash switches the victim to Hamming-space retrieval over
	// median-thresholded binary codes (the HashNet-style deployment of
	// the paper's reference model [42]). Incompatible with Nodes > 1.
	Hash bool
	// Hardness ∈ [0, 1) controls category separability; the default 0.7
	// yields victims with paper-like (imperfect) retrieval mAPs. Set a
	// negative value for a maximally separable (easy) corpus.
	Hardness float64
	// Seed drives corpus generation and training.
	Seed int64
}

func (o *SystemOptions) applyDefaults() {
	if o.DatasetName == "" {
		o.DatasetName = "UCF101Sim"
	}
	if o.Categories == 0 {
		o.Categories = 6
	}
	if o.TrainPerCategory == 0 {
		o.TrainPerCategory = 8
	}
	if o.TestPerCategory == 0 {
		o.TestPerCategory = 4
	}
	if o.Frames == 0 {
		o.Frames = 16
	}
	if o.Height == 0 {
		o.Height = 16
	}
	if o.Width == 0 {
		o.Width = 16
	}
	if o.VictimArch == "" {
		o.VictimArch = "SlowFast"
	}
	if o.VictimLoss == "" {
		o.VictimLoss = "ArcFaceLoss"
	}
	if o.FeatureDim == 0 {
		o.FeatureDim = 32
	}
	if o.TrainEpochs == 0 {
		o.TrainEpochs = 3
	}
	if o.M == 0 {
		o.M = 10
	}
	if o.Hardness == 0 {
		o.Hardness = 0.7
	}
	if o.Hardness < 0 {
		o.Hardness = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// System is a complete victim environment: a synthetic corpus, a trained
// retrieval service, and helpers to steal surrogates and launch attacks.
type System struct {
	// Corpus holds the generated train/test videos; the train split is
	// the retrieval gallery.
	Corpus *Corpus
	// Victim answers R^m(v) queries (single-node or sharded).
	Victim Retriever
	// M is the retrieval list length used throughout.
	M int

	opts    SystemOptions
	engine  *retrieval.Engine
	cluster *retrieval.Cluster
	model   models.Model
	geom    models.Geometry
	tel     *telemetry.Registry
	tracer  *trace.Tracer
}

// NewSystem generates a corpus, trains the victim extractor with the
// requested metric loss, and indexes the gallery.
func NewSystem(opts SystemOptions) (*System, error) {
	opts.applyDefaults()
	corpus, err := dataset.Generate(dataset.Config{
		Name:             opts.DatasetName,
		Categories:       opts.Categories,
		TrainPerCategory: opts.TrainPerCategory,
		TestPerCategory:  opts.TestPerCategory,
		Frames:           opts.Frames,
		Channels:         3,
		Height:           opts.Height,
		Width:            opts.Width,
		Seed:             opts.Seed,
		Hardness:         opts.Hardness,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed + 1))
	geom := models.Geometry{Frames: opts.Frames, Channels: 3, Height: opts.Height, Width: opts.Width}
	m, err := models.Build(opts.VictimArch, rng, geom, opts.FeatureDim)
	if err != nil {
		return nil, err
	}
	loss, err := buildLoss(opts.VictimLoss, rng, opts.Categories, opts.FeatureDim)
	if err != nil {
		return nil, err
	}
	tc := models.DefaultTrainConfig()
	tc.Epochs = opts.TrainEpochs
	tc.Seed = opts.Seed
	if _, err := models.Train(m, loss, corpus.Train, tc); err != nil {
		return nil, fmt.Errorf("duo: train victim: %w", err)
	}

	sys := &System{Corpus: corpus, M: opts.M, opts: opts, model: m, geom: geom}
	switch {
	case opts.Hash && opts.Nodes > 1:
		return nil, fmt.Errorf("duo: Hash and Nodes > 1 are mutually exclusive")
	case opts.Hash:
		sys.Victim = retrieval.NewHashEngine(m, corpus.Train)
	case opts.Nodes > 1:
		sys.cluster = retrieval.NewLocalCluster(m, corpus.Train, opts.Nodes)
		sys.Victim = sys.cluster
	default:
		sys.engine = retrieval.NewEngine(m, corpus.Train)
		sys.Victim = sys.engine
	}
	return sys, nil
}

func buildLoss(name string, rng *rand.Rand, classes, dim int) (losses.MetricLoss, error) {
	switch name {
	case "ArcFaceLoss":
		return losses.NewArcFace(rng, classes, dim), nil
	case "LiftedLoss":
		return losses.Lifted{Margin: 1.0}, nil
	case "AngularLoss":
		return losses.Angular{AlphaDeg: 40}, nil
	case "Triplet":
		return losses.Triplet{Margin: 0.2}, nil
	default:
		return nil, fmt.Errorf("duo: unknown loss %q", name)
	}
}

// Close releases distributed resources, if any.
func (s *System) Close() error {
	if s.cluster != nil {
		return s.cluster.Close()
	}
	return nil
}

// SetTelemetry wires the system's retrieval service into the registry
// (per-query scan latencies, cluster gather timings, per-node health
// counters) and makes it the default registry for Attack runs; nil — the
// default — disables instrumentation at zero hot-path cost.
func (s *System) SetTelemetry(r *telemetry.Registry) {
	s.tel = r
	if s.engine != nil {
		s.engine.SetTelemetry(r)
	}
	if s.cluster != nil {
		s.cluster.SetTelemetry(r)
	}
}

// SetTrace wires the tracer into the system's retrieval service (a
// sharded victim records per-node child spans under each attack query) and
// makes it the default tracer for Attack runs; nil — the default —
// disables span recording at zero hot-path cost.
func (s *System) SetTrace(t *Tracer) {
	s.tracer = t
	if s.cluster != nil {
		s.cluster.SetTrace(t)
	}
}

// VictimModel exposes the victim's extractor for defense evaluation.
// Attacks must not use it.
func (s *System) VictimModel() Model { return s.model }

// MAP evaluates the victim's retrieval quality over the test split.
func (s *System) MAP() float64 {
	return retrieval.EvaluateMAP(s.Victim, s.Corpus.Test, s.M)
}

// SamplePairs draws n attack (original, target) pairs with distinct labels.
func (s *System) SamplePairs(seed int64, n int) []dataset.AttackPair {
	rng := rand.New(rand.NewSource(seed))
	return dataset.SamplePairs(rng, s.Corpus.Train, n)
}

// SurrogateOptions configure StealSurrogate.
type SurrogateOptions struct {
	// Arch is C3D or Resnet18 (default C3D).
	Arch string
	// MaxSamples caps the stolen dataset size (default 48).
	MaxSamples int
	// FeatureDim is the surrogate embedding size (default: victim's).
	FeatureDim int
	// Epochs controls surrogate training (default 5).
	Epochs int
	// Seed drives stealing and training.
	Seed int64
}

// StealSurrogate queries the victim to build a rank-list training set
// (§IV-B-1) and fits a surrogate on it.
func (s *System) StealSurrogate(opts SurrogateOptions) (Model, error) {
	if opts.Arch == "" {
		opts.Arch = "C3D"
	}
	if opts.MaxSamples == 0 {
		opts.MaxSamples = 48
	}
	if opts.FeatureDim == 0 {
		opts.FeatureDim = s.opts.FeatureDim
	}
	if opts.Epochs == 0 {
		opts.Epochs = 5
	}
	if opts.Seed == 0 {
		opts.Seed = s.opts.Seed + 7
	}

	scfg := surrogate.DefaultStealConfig()
	scfg.M = s.M
	scfg.MaxSamples = opts.MaxSamples
	scfg.Rounds = opts.MaxSamples/4 + 2
	scfg.Seed = opts.Seed
	samples, err := surrogate.Steal(s.Victim, surrogate.CorpusLookup(s.Corpus.Train), s.Corpus.Test, scfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	m, err := models.Build(opts.Arch, rng, s.geom, opts.FeatureDim)
	if err != nil {
		return nil, err
	}
	tcfg := surrogate.DefaultTrainConfig()
	tcfg.Epochs = opts.Epochs
	tcfg.Seed = opts.Seed
	if _, err := surrogate.Train(m, samples, tcfg); err != nil {
		return nil, err
	}
	return m, nil
}

// AttackOptions configure Attack. Zero values select the defaults of
// core.DefaultConfig for the system's geometry.
type AttackOptions struct {
	// K is the pixel budget (1ᵀℐ = k).
	K int
	// N is the frame budget (‖𝓕‖₂,₀ = n).
	N int
	// Tau bounds per-element magnitudes.
	Tau float64
	// Queries is the victim query budget (default 600).
	Queries int
	// IterNumH loops SparseTransfer↔SparseQuery (default 2).
	IterNumH int
	// Strategy selects the black-box optimizer driving the victim-query
	// stage: "sparsequery" (empty value and default — the paper's
	// Algorithm 2 coordinate descent), "sparsers" (Sparse-RS random
	// search), or "evolutionary" (population-based search). Every strategy
	// runs inside the same billing/tracing/shed-refund harness, so query
	// counts stay comparable across strategies. See Strategies().
	Strategy string
	// Seed drives the query stage's randomness.
	Seed int64
	// Telemetry optionally collects this run's stage timings, query-budget
	// burn, and 𝕋-trajectory tail (write-only; the attack result is
	// identical either way). Nil falls back to the registry wired with
	// System.SetTelemetry, if any.
	Telemetry *telemetry.Registry
	// Trace optionally records this run's span tree (attack.run → round →
	// stage → retrieve, plus per-node children on a sharded victim).
	// Write-only like Telemetry; nil falls back to the tracer wired with
	// System.SetTrace, if any.
	Trace *Tracer
}

// Report summarizes an attack run with the paper's measures.
type Report struct {
	// APBefore and APAfter are AP@m between the (original | adversarial)
	// video's retrieval list and the target's, in percent. The attack
	// succeeds when APAfter > APBefore (§V-C).
	APBefore float64
	APAfter  float64
	// Spa is the number of perturbed elements; PerturbedFrames is ‖φ‖₂,₀.
	Spa             int
	PerturbedFrames int
	// PScore is the perceptibility score of [49].
	PScore float64
	// PSNR (dB) and SSIM quantify visual stealthiness of Adv vs the
	// original (higher PSNR / SSIM closer to 1 = less perceptible).
	PSNR float64
	SSIM float64
	// Queries is the number of victim queries consumed.
	Queries int
	// Trajectory is the 𝕋 objective over query steps.
	Trajectory []float64
	// Adv is the synthesized adversarial video.
	Adv *Video
}

// Strategies lists the registered black-box optimizer strategy names
// accepted by AttackOptions.Strategy (and `duoattack -strategy`).
func Strategies() []string { return core.OptimizerNames() }

// Attack runs the full DUO pipeline against the system's victim.
func (s *System) Attack(v, vt *Video, surr Model, opts AttackOptions) (*Report, error) {
	cfg := core.DefaultConfig(s.geom)
	if opts.K > 0 {
		cfg.Transfer.K = opts.K
	}
	if opts.N > 0 {
		cfg.Transfer.N = opts.N
	}
	if opts.Tau > 0 {
		cfg.Transfer.Tau = opts.Tau
		cfg.Query.Tau = opts.Tau
	}
	if opts.Queries > 0 {
		cfg.Query.MaxQueries = opts.Queries
	} else {
		cfg.Query.MaxQueries = 600
	}
	if opts.IterNumH > 0 {
		cfg.IterNumH = opts.IterNumH
	}
	cfg.Query.Strategy = opts.Strategy
	if opts.Seed == 0 {
		opts.Seed = s.opts.Seed + 13
	}

	ctx := &attack.Context{Victim: s.Victim, M: s.M, Rng: rand.New(rand.NewSource(opts.Seed)), Telemetry: s.attackTelemetry(opts), Trace: s.attackTrace(opts)}
	res, err := core.Run(ctx, surr, v, vt, cfg)
	if err != nil {
		return nil, err
	}
	return s.report(v, vt, res.Outcome), nil
}

// attackTelemetry picks the per-run registry: the run's own, else the
// system-wide one.
func (s *System) attackTelemetry(opts AttackOptions) *telemetry.Registry {
	if opts.Telemetry != nil {
		return opts.Telemetry
	}
	return s.tel
}

// attackTrace picks the per-run tracer: the run's own, else the
// system-wide one. Note a sharded victim records node spans on the tracer
// wired with SetTrace — a per-run tracer that differs from it still traces
// the attack side, with node spans parented remotely across the two.
func (s *System) attackTrace(opts AttackOptions) *trace.Tracer {
	if opts.Trace != nil {
		return opts.Trace
	}
	return s.tracer
}

// AttackUntargeted runs the untargeted DUO variant (§I): the adversarial
// video's retrieval list is pushed away from the original's, with no target
// video. In the returned Report, APBefore/APAfter measure AP@m between the
// (original | adversarial) list and the ORIGINAL's own list — the attack
// succeeds when APAfter drops well below APBefore (≈100).
func (s *System) AttackUntargeted(v *Video, surr Model, opts AttackOptions) (*Report, error) {
	cfg := core.UntargetedConfig(s.geom)
	if opts.K > 0 {
		cfg.Transfer.K = opts.K
	}
	if opts.N > 0 {
		cfg.Transfer.N = opts.N
	}
	if opts.Tau > 0 {
		cfg.Transfer.Tau = opts.Tau
		cfg.Query.Tau = opts.Tau
	}
	if opts.Queries > 0 {
		cfg.Query.MaxQueries = opts.Queries
	} else {
		cfg.Query.MaxQueries = 600
	}
	if opts.IterNumH > 0 {
		cfg.IterNumH = opts.IterNumH
	}
	cfg.Query.Strategy = opts.Strategy
	if opts.Seed == 0 {
		opts.Seed = s.opts.Seed + 13
	}

	ctx := &attack.Context{Victim: s.Victim, M: s.M, Rng: rand.New(rand.NewSource(opts.Seed)), Telemetry: s.attackTelemetry(opts), Trace: s.attackTrace(opts)}
	res, err := core.Run(ctx, surr, v, nil, cfg)
	if err != nil {
		return nil, err
	}
	origList := retrieval.IDs(s.Victim.Retrieve(v, s.M))
	advList := retrieval.IDs(s.Victim.Retrieve(res.Adv, s.M))
	return &Report{
		APBefore:        metrics.APAtM(origList, origList) * 100,
		APAfter:         metrics.APAtM(advList, origList) * 100,
		Spa:             res.Spa(),
		PerturbedFrames: res.PerturbedFrames(),
		PScore:          res.PScore(),
		PSNR:            video.PSNR(v, res.Adv),
		SSIM:            video.SSIM(v, res.Adv),
		Queries:         res.Queries,
		Trajectory:      res.Trajectory,
		Adv:             res.Adv,
	}, nil
}

// report assembles a Report from an attack outcome.
func (s *System) report(v, vt *Video, out *attack.Outcome) *Report {
	origList := retrieval.IDs(s.Victim.Retrieve(v, s.M))
	tgtList := retrieval.IDs(s.Victim.Retrieve(vt, s.M))
	advList := retrieval.IDs(s.Victim.Retrieve(out.Adv, s.M))
	return &Report{
		APBefore:        metrics.APAtM(origList, tgtList) * 100,
		APAfter:         metrics.APAtM(advList, tgtList) * 100,
		Spa:             out.Spa(),
		PerturbedFrames: out.PerturbedFrames(),
		PScore:          out.PScore(),
		PSNR:            video.PSNR(v, out.Adv),
		SSIM:            video.SSIM(v, out.Adv),
		Queries:         out.Queries,
		Trajectory:      out.Trajectory,
		Adv:             out.Adv,
	}
}

// String renders the report in the layout duoattack and the examples print.
func (r *Report) String() string {
	verdict := "no headway"
	if r.APAfter > r.APBefore {
		verdict = "SUCCEEDED"
	}
	return fmt.Sprintf(
		"AP@m %.2f%% → %.2f%% (%s) | Spa %d over %d frames | PScore %.3f | PSNR %.1f dB | SSIM %.4f | %d queries",
		r.APBefore, r.APAfter, verdict, r.Spa, r.PerturbedFrames, r.PScore, r.PSNR, r.SSIM, r.Queries)
}

// Retrieve proxies a top-m query to the victim.
func (s *System) Retrieve(v *Video, m int) []Result { return s.Victim.Retrieve(v, m) }
