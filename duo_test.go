package duo

import (
	"strings"
	"sync"
	"testing"
)

// tinySystemOptions keeps the facade tests fast.
func tinySystemOptions() SystemOptions {
	return SystemOptions{
		Categories: 4, TrainPerCategory: 6, TestPerCategory: 3,
		Frames: 8, Height: 12, Width: 12,
		FeatureDim: 16, TrainEpochs: 3, M: 8, Seed: 61,
	}
}

var (
	sysOnce sync.Once
	sysVal  *System
	surrVal Model
)

func sharedSystem(t *testing.T) (*System, Model) {
	t.Helper()
	sysOnce.Do(func() {
		sys, err := NewSystem(tinySystemOptions())
		if err != nil {
			panic(err)
		}
		surr, err := sys.StealSurrogate(SurrogateOptions{MaxSamples: 16, Epochs: 4})
		if err != nil {
			panic(err)
		}
		sysVal, surrVal = sys, surr
	})
	return sysVal, surrVal
}

func TestNewSystemDefaults(t *testing.T) {
	sys, _ := sharedSystem(t)
	if sys.Corpus == nil || len(sys.Corpus.Train) == 0 {
		t.Fatal("system has no corpus")
	}
	if sys.MAP() <= 0.25 {
		t.Errorf("victim mAP %g at or below chance", sys.MAP())
	}
}

func TestNewSystemRejectsBadOptions(t *testing.T) {
	o := tinySystemOptions()
	o.VictimArch = "VGG"
	if _, err := NewSystem(o); err == nil {
		t.Error("unknown victim arch accepted")
	}
	o = tinySystemOptions()
	o.VictimLoss = "FocalLoss"
	if _, err := NewSystem(o); err == nil {
		t.Error("unknown loss accepted")
	}
}

func TestSystemRetrieve(t *testing.T) {
	sys, _ := sharedSystem(t)
	rs := sys.Retrieve(sys.Corpus.Test[0], 5)
	if len(rs) != 5 {
		t.Fatalf("got %d results", len(rs))
	}
}

func TestSamplePairs(t *testing.T) {
	sys, _ := sharedSystem(t)
	pairs := sys.SamplePairs(1, 4)
	if len(pairs) != 4 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.Original.Label == p.Target.Label {
			t.Error("pair labels equal")
		}
	}
}

func TestAttackEndToEnd(t *testing.T) {
	sys, surr := sharedSystem(t)
	pair := sys.SamplePairs(2, 1)[0]
	rep, err := sys.Attack(pair.Original, pair.Target, surr, AttackOptions{Queries: 120})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adv == nil {
		t.Fatal("no adversarial video")
	}
	if rep.APAfter < rep.APBefore {
		t.Errorf("attack regressed AP@m: %g → %g", rep.APBefore, rep.APAfter)
	}
	if rep.Spa == 0 {
		t.Error("no perturbation recorded")
	}
	if rep.Queries == 0 || rep.Queries > 120 {
		t.Errorf("queries = %d", rep.Queries)
	}
	if rep.PerturbedFrames == 0 || rep.PerturbedFrames > pair.Original.Frames() {
		t.Errorf("perturbed frames = %d", rep.PerturbedFrames)
	}
}

func TestAttackCustomBudgets(t *testing.T) {
	sys, surr := sharedSystem(t)
	pair := sys.SamplePairs(3, 1)[0]
	rep, err := sys.Attack(pair.Original, pair.Target, surr, AttackOptions{
		K: 50, N: 2, Tau: 20, Queries: 40, IterNumH: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spa > 50 {
		t.Errorf("Spa %d exceeds k=50", rep.Spa)
	}
	if rep.PerturbedFrames > 2 {
		t.Errorf("frames %d exceeds n=2", rep.PerturbedFrames)
	}
}

func TestDistributedSystemMatchesSingleNode(t *testing.T) {
	o := tinySystemOptions()
	single, err := NewSystem(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Nodes = 3
	sharded, err := NewSystem(o)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	q := single.Corpus.Test[0]
	a := single.Retrieve(q, 6)
	b := sharded.Retrieve(q, 6)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("sharded retrieval differs at %d", i)
		}
	}
}

func TestStealSurrogateResnet(t *testing.T) {
	sys, _ := sharedSystem(t)
	surr, err := sys.StealSurrogate(SurrogateOptions{Arch: "Resnet18", MaxSamples: 8, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if surr.Name() != "Resnet18" {
		t.Errorf("surrogate arch = %s", surr.Name())
	}
}

func TestAttackUntargeted(t *testing.T) {
	sys, surr := sharedSystem(t)
	v := sys.Corpus.Train[0]
	rep, err := sys.AttackUntargeted(v, surr, AttackOptions{Queries: 120})
	if err != nil {
		t.Fatal(err)
	}
	if rep.APBefore < 99.9 {
		t.Errorf("APBefore = %g, want ≈ 100 (self retrieval)", rep.APBefore)
	}
	if rep.APAfter > rep.APBefore {
		t.Errorf("untargeted attack increased self AP@m: %g → %g", rep.APBefore, rep.APAfter)
	}
	if rep.Spa == 0 {
		t.Error("no perturbation recorded")
	}
}

func TestReportIncludesQualityMetrics(t *testing.T) {
	sys, surr := sharedSystem(t)
	pair := sys.SamplePairs(6, 1)[0]
	rep, err := sys.Attack(pair.Original, pair.Target, surr, AttackOptions{Queries: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PSNR < 20 {
		t.Errorf("PSNR = %g dB, sparse attack should stay above 20", rep.PSNR)
	}
	if rep.SSIM < 0.7 || rep.SSIM > 1 {
		t.Errorf("SSIM = %g out of expected range", rep.SSIM)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{APBefore: 1, APAfter: 10, Spa: 5, PerturbedFrames: 2, PScore: 0.5, PSNR: 30, SSIM: 0.99, Queries: 7}
	s := r.String()
	for _, want := range []string{"SUCCEEDED", "Spa 5", "7 queries"} {
		if !strings.Contains(s, want) {
			t.Errorf("Report.String() = %q missing %q", s, want)
		}
	}
	r.APAfter = 1
	if !strings.Contains(r.String(), "no headway") {
		t.Error("failed attack not labelled")
	}
}

func TestHashSystem(t *testing.T) {
	o := tinySystemOptions()
	o.Hash = true
	sys, err := NewSystem(o)
	if err != nil {
		t.Fatal(err)
	}
	if sys.MAP() <= 0.25 {
		t.Errorf("hash victim mAP %g at or below chance", sys.MAP())
	}
	rs := sys.Retrieve(sys.Corpus.Test[0], 5)
	if len(rs) != 5 {
		t.Fatalf("got %d results", len(rs))
	}
	// Hamming distances are integral.
	for _, r := range rs {
		if r.Dist != float64(int(r.Dist)) {
			t.Errorf("non-integral Hamming distance %g", r.Dist)
		}
	}
}

func TestHashAndNodesExclusive(t *testing.T) {
	o := tinySystemOptions()
	o.Hash = true
	o.Nodes = 3
	if _, err := NewSystem(o); err == nil {
		t.Error("Hash+Nodes accepted")
	}
}
