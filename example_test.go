package duo_test

import (
	"fmt"
	"log"

	"duo"
)

// ExampleNewSystem builds a complete victim environment: synthetic corpus,
// trained extractor, indexed gallery.
func ExampleNewSystem() {
	sys, err := duo.NewSystem(duo.SystemOptions{
		Categories: 4, TrainPerCategory: 6, TestPerCategory: 3,
		Frames: 8, Height: 12, Width: 12,
		FeatureDim: 16, TrainEpochs: 3, M: 8, Seed: 61,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(sys.Corpus.Train) > 0)
	// Output: true
}

// ExampleSystem_Attack runs the full DUO pipeline: steal a surrogate over
// the black-box interface, then craft a targeted adversarial example.
func ExampleSystem_Attack() {
	sys, err := duo.NewSystem(duo.SystemOptions{
		Categories: 4, TrainPerCategory: 6, TestPerCategory: 3,
		Frames: 8, Height: 12, Width: 12,
		FeatureDim: 16, TrainEpochs: 3, M: 8, Seed: 61,
	})
	if err != nil {
		log.Fatal(err)
	}
	surr, err := sys.StealSurrogate(duo.SurrogateOptions{MaxSamples: 16, Epochs: 3})
	if err != nil {
		log.Fatal(err)
	}
	pair := sys.SamplePairs(2, 1)[0]
	rep, err := sys.Attack(pair.Original, pair.Target, surr, duo.AttackOptions{Queries: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Spa > 0, rep.Queries <= 60)
	// Output: true true
}

// ExampleSystem_AttackUntargeted crafts an adversarial copy whose retrieval
// list no longer matches the original's (the §I copyright-evasion case).
func ExampleSystem_AttackUntargeted() {
	sys, err := duo.NewSystem(duo.SystemOptions{
		Categories: 4, TrainPerCategory: 6, TestPerCategory: 3,
		Frames: 8, Height: 12, Width: 12,
		FeatureDim: 16, TrainEpochs: 3, M: 8, Seed: 61,
	})
	if err != nil {
		log.Fatal(err)
	}
	surr, err := sys.StealSurrogate(duo.SurrogateOptions{MaxSamples: 16, Epochs: 3})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.AttackUntargeted(sys.Corpus.Train[0], surr, duo.AttackOptions{Queries: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.APBefore == 100, rep.APAfter <= rep.APBefore)
	// Output: true true
}
