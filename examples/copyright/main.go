// Copyright evasion (§I of the paper): a video owner checks whether their
// copyrighted clip is protected by querying the retrieval service and
// verifying that near-duplicates of it come back. The adversary publishes
// an *untargeted* DUO adversarial example of the copyrighted clip: visually
// the same video, but the retrieval service no longer surfaces the
// original — so the copyright check never fires.
//
//	go run ./examples/copyright
package main

import (
	"fmt"
	"log"

	"duo"
)

// copyrightCheck reports whether querying the service with the published
// clip surfaces the original copyrighted video among the top-m results.
func copyrightCheck(sys *duo.System, published, original *duo.Video) bool {
	for _, r := range sys.Retrieve(published, sys.M) {
		if r.ID == original.ID {
			return true
		}
	}
	return false
}

func main() {
	fmt.Println("== scenario: bypassing copyright-violation detection ==")
	sys, err := duo.NewSystem(duo.SystemOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// The copyrighted video is in the service's gallery.
	copyrighted := sys.Corpus.Train[3]
	fmt.Printf("copyrighted video: %s (label %d)\n", copyrighted.ID, copyrighted.Label)

	// Publishing the original verbatim is caught immediately.
	if copyrightCheck(sys, copyrighted, copyrighted) {
		fmt.Println("publishing the original verbatim: CAUGHT by the retrieval check")
	} else {
		fmt.Println("unexpected: the original did not retrieve itself")
	}

	// The adversary steals a surrogate and crafts an untargeted AE.
	fmt.Println("\nstealing surrogate and crafting untargeted adversarial copy...")
	surr, err := sys.StealSurrogate(duo.SurrogateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.AttackUntargeted(copyrighted, surr, duo.AttackOptions{Queries: 500})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("perturbation: %d elements (%.1f%% of pixels), %d of %d frames, PScore %.3f\n",
		rep.Spa, 100*float64(rep.Spa)/float64(copyrighted.Data.Len()),
		rep.PerturbedFrames, copyrighted.Frames(), rep.PScore)
	fmt.Printf("similarity of the copy's retrieval list to the original's: %.2f%% → %.2f%%\n",
		rep.APBefore, rep.APAfter)

	if copyrightCheck(sys, rep.Adv, copyrighted) {
		fmt.Println("\nthe adversarial copy still retrieves the original: check CAUGHT it")
	} else {
		fmt.Println("\nthe adversarial copy no longer retrieves the original: check BYPASSED")
		fmt.Println("(the paper's motivating copyright-evasion case, §I)")
	}
}
