// Defense bake-off (§V-D / Table X): calibrate feature squeezing and a
// Noise2Self-style denoiser on clean traffic, then measure how often each
// attack's adversarial examples are detected. Sparse attacks like DUO slip
// past the squeezer far more often than dense or crude ones.
//
//	go run ./examples/defense
package main

import (
	"fmt"
	"log"
	"math/rand"

	"duo"
	"duo/internal/attack"
	"duo/internal/baseline"
	"duo/internal/core"
	"duo/internal/defense"
	"duo/internal/models"
	"duo/internal/video"
)

func main() {
	fmt.Println("== building victim and calibrating defenses (5% clean FPR) ==")
	sys, err := duo.NewSystem(duo.SystemOptions{Seed: 29})
	if err != nil {
		log.Fatal(err)
	}
	fs := &defense.FeatureSqueezer{Model: sys.VictimModel(), Bits: 4, MedianK: 1}
	n2s := &defense.Noise2Self{Model: sys.VictimModel()}
	fsThr, err := defense.CalibrateThreshold(fs, sys.Corpus.Train, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	n2sThr, err := defense.CalibrateThreshold(n2s, sys.Corpus.Train, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thresholds: squeezing %.4f, Noise2Self %.4f\n\n", fsThr, n2sThr)

	surr, err := sys.StealSurrogate(duo.SurrogateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pairs := sys.SamplePairs(3, 4)
	geom := models.GeometryOf(pairs[0].Original)
	tcfg := core.DefaultTransferConfig(geom)

	// Craft adversarial examples with three attacks.
	crafted := map[string][]*video.Video{}
	for i, pair := range pairs {
		ctx := &attack.Context{Victim: sys.Victim, M: sys.M, Rng: rand.New(rand.NewSource(int64(40 + i)))}

		rep, err := sys.Attack(pair.Original, pair.Target, surr, duo.AttackOptions{Queries: 300, Seed: int64(50 + i)})
		if err != nil {
			log.Fatal(err)
		}
		crafted["DUO-C3D"] = append(crafted["DUO-C3D"], rep.Adv)

		timi, err := baseline.RunTIMI(surr, pair.Original, pair.Target, baseline.DefaultTIMIConfig())
		if err != nil {
			log.Fatal(err)
		}
		crafted["TIMI-C3D"] = append(crafted["TIMI-C3D"], timi.Adv)

		van, err := baseline.RunVanilla(ctx, pair.Original, pair.Target,
			baseline.DefaultVanillaConfig(tcfg))
		if err != nil {
			log.Fatal(err)
		}
		crafted["Vanilla"] = append(crafted["Vanilla"], van.Adv)
	}

	fmt.Printf("%-10s  %-18s  %-12s\n", "attack", "feature squeezing", "Noise2Self")
	for _, name := range []string{"Vanilla", "TIMI-C3D", "DUO-C3D"} {
		advs := crafted[name]
		fmt.Printf("%-10s  %17.1f%%  %11.1f%%\n", name,
			defense.DetectionRate(fs, fsThr, advs)*100,
			defense.DetectionRate(n2s, n2sThr, advs)*100)
	}
	fmt.Println("\nnote: with a handful of pairs the rates quantize coarsely; run")
	fmt.Println("  go run ./cmd/duobench -exp table10")
	fmt.Println("for the aggregated Table X, where Vanilla is detected far more often")
	fmt.Println("than the sparsified attacks (the paper's stealthiness claim).")
}
