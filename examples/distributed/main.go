// Distributed retrieval under attack: the gallery is sharded across TCP
// data nodes behind a scatter/gather coordinator (Fig. 1 of the paper), and
// DUO attacks the distributed service exactly as it would a single-node
// one — the attack only ever sees the R^m(v) interface.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"math/rand"

	"duo"
	"duo/internal/attack"
	"duo/internal/core"
	"duo/internal/models"
	"duo/internal/retrieval"
)

func main() {
	fmt.Println("== building the victim (single node, for training weights) ==")
	sys, err := duo.NewSystem(duo.SystemOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Shard the gallery across three real TCP node servers.
	fmt.Println("== sharding the gallery across 3 TCP data nodes ==")
	var shards [3][]*duo.Video
	for i, v := range sys.Corpus.Train {
		shards[i%3] = append(shards[i%3], v)
	}
	var servers []*retrieval.NodeServer
	var transports []retrieval.Transport
	for i, vids := range shards {
		srv, err := retrieval.ServeNode("127.0.0.1:0", retrieval.NewShard(sys.VictimModel(), vids))
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		tr, err := retrieval.DialNode(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		// Production-shaped per-node chain: retries with deterministic
		// backoff inside a circuit breaker, under the TCP call deadline.
		node := retrieval.NewBreakerTransport(
			retrieval.NewRetryTransport(tr, retrieval.RetryConfig{Seed: int64(i + 1)}),
			retrieval.BreakerConfig{},
		)
		transports = append(transports, node)
		fmt.Printf("node %d: %d videos on %s\n", i, len(vids), srv.Addr())
	}
	// RequireAll: a flaky node burns retries, never silently truncates the
	// top-m that the attack objective 𝕋 is computed from.
	cluster := retrieval.NewCluster(sys.VictimModel(), transports).
		SetPolicy(retrieval.RequireAll())
	defer func() {
		cluster.Close()
		for _, s := range servers {
			s.Close()
		}
	}()

	// Sanity: the distributed service answers exactly like the local one.
	q := sys.Corpus.Test[0]
	local := retrieval.IDs(sys.Retrieve(q, sys.M))
	remote := retrieval.IDs(cluster.Retrieve(q, sys.M))
	agree := 0
	for i := range local {
		if local[i] == remote[i] {
			agree++
		}
	}
	fmt.Printf("\nscatter/gather sanity: %d/%d positions agree with the single-node engine\n",
		agree, len(local))

	// Attack THROUGH the distributed coordinator.
	fmt.Println("\n== attacking the distributed service with DUO ==")
	surr, err := sys.StealSurrogate(duo.SurrogateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pair := sys.SamplePairs(9, 1)[0]
	cfg := core.DefaultConfig(models.GeometryOf(pair.Original))
	cfg.Query.MaxQueries = 500
	ctx := &attack.Context{Victim: cluster, M: sys.M, Rng: rand.New(rand.NewSource(31))}
	res, err := core.Run(ctx, surr, pair.Original, pair.Target, cfg)
	if err != nil {
		log.Fatal(err)
	}

	advList := retrieval.IDs(cluster.Retrieve(res.Adv, sys.M))
	tgtList := retrieval.IDs(cluster.Retrieve(pair.Target, sys.M))
	hits := 0
	inTgt := map[string]bool{}
	for _, id := range tgtList {
		inTgt[id] = true
	}
	for _, id := range advList {
		if inTgt[id] {
			hits++
		}
	}
	fmt.Printf("adversarial list shares %d/%d entries with the target's list\n", hits, sys.M)
	fmt.Printf("Spa %d, frames %d, queries %d (all served by the TCP cluster: %d total)\n",
		res.Spa(), res.PerturbedFrames(), res.Queries, cluster.QueryCount())

	fmt.Println("\nnode health after the attack:")
	for _, h := range cluster.Health() {
		fmt.Printf("node %d: %d ok, %d failed, breaker %s\n",
			h.Node, h.Successes, h.Failures, h.Breaker)
	}
}
