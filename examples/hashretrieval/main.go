// Hash retrieval under attack: the victim serves Hamming-space queries over
// compact binary codes — the HashNet-style deployment of the paper's
// reference model [42], and the setting of ref. [32]'s (white-box) attack.
// DUO needs no change: it only ever sees the R^m(v) list interface, so the
// same black-box pipeline attacks the hash service directly.
//
//	go run ./examples/hashretrieval
package main

import (
	"fmt"
	"log"

	"duo"
)

func main() {
	fmt.Println("== building a Hamming-space (hash) retrieval victim ==")
	sys, err := duo.NewSystem(duo.SystemOptions{Hash: true, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gallery: %d videos indexed as binary codes; victim mAP: %.1f%%\n",
		len(sys.Corpus.Train), sys.MAP()*100)

	q := sys.Corpus.Test[0]
	fmt.Printf("\nsample query %s (label %d) — integral Hamming distances:\n", q.ID, q.Label)
	for i, r := range sys.Retrieve(q, 5) {
		fmt.Printf("%2d. %-28s label=%d hamming=%.0f\n", i+1, r.ID, r.Label, r.Dist)
	}

	fmt.Println("\n== stealing a surrogate and attacking the hash service ==")
	surr, err := sys.StealSurrogate(duo.SurrogateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pair := sys.SamplePairs(4, 1)[0]
	fmt.Printf("original %s (label %d) → target %s (label %d)\n",
		pair.Original.ID, pair.Original.Label, pair.Target.ID, pair.Target.Label)
	rep, err := sys.Attack(pair.Original, pair.Target, surr, duo.AttackOptions{Queries: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== report ==")
	fmt.Println(rep)
	fmt.Println("\nnotes:")
	fmt.Println("- ref. [32] attacked video-hash retrieval white-box and densely; DUO")
	fmt.Println("  reaches the same deployment black-box with sparse perturbations")
	fmt.Println("- gains are smaller than against the real-valued engine: binarization")
	fmt.Println("  quantizes away sub-threshold feature movement, acting as an implicit")
	fmt.Println("  defense — an observation this substrate makes measurable")
}
