// Plagiarism laundering (§I of the paper): a social-media platform runs an
// originality check on every submission — it queries the retrieval service
// and rejects uploads whose top results are near-duplicates from a
// different uploader. The plagiarist takes an existing gallery video and
// runs a *targeted* DUO attack toward an unrelated target category, so the
// submission retrieves innocuous content and sails through the check.
//
//	go run ./examples/plagiarism
package main

import (
	"fmt"
	"log"

	"duo"
)

// originalityCheck reports how many of the submission's top results share
// the plagiarized source's label (a high count ⇒ submission rejected).
func originalityCheck(sys *duo.System, submission *duo.Video, sourceLabel int) int {
	hits := 0
	for _, r := range sys.Retrieve(submission, sys.M) {
		if r.Label == sourceLabel {
			hits++
		}
	}
	return hits
}

func main() {
	fmt.Println("== scenario: laundering a plagiarized video past an originality check ==")
	sys, err := duo.NewSystem(duo.SystemOptions{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	pair := sys.SamplePairs(99, 1)[0]
	source := pair.Original // the video being plagiarized (in the gallery)
	decoy := pair.Target    // an unrelated category to hide behind
	fmt.Printf("plagiarized source: %s (label %d)\n", source.ID, source.Label)
	fmt.Printf("decoy target:       %s (label %d)\n", decoy.ID, decoy.Label)

	before := originalityCheck(sys, source, source.Label)
	fmt.Printf("\nsubmitting the source verbatim: %d of %d results match its category — REJECTED\n",
		before, sys.M)

	fmt.Println("\nstealing surrogate and disguising the submission with targeted DUO...")
	surr, err := sys.StealSurrogate(duo.SurrogateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Attack(source, decoy, surr, duo.AttackOptions{Queries: 500})
	if err != nil {
		log.Fatal(err)
	}

	after := originalityCheck(sys, rep.Adv, source.Label)
	fmt.Printf("perturbation: %d elements, %d frames, PScore %.3f, %d queries\n",
		rep.Spa, rep.PerturbedFrames, rep.PScore, rep.Queries)
	fmt.Printf("AP@m toward the decoy's list: %.2f%% → %.2f%%\n", rep.APBefore, rep.APAfter)
	fmt.Printf("\nsubmitting the disguised copy: %d of %d results match the source's category\n",
		after, sys.M)
	if after < before {
		fmt.Println("the originality check sees mostly decoy-category content — submission PASSES")
	} else {
		fmt.Println("the disguise failed on this pair — raise the query budget or τ")
	}
}
