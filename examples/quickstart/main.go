// Quickstart: build a victim video-retrieval service, steal a surrogate
// over its black-box interface, and run the DUO attack on one
// (original, target) pair.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"duo"
)

func main() {
	// 1. A victim service: synthetic UCF101-like corpus, SlowFast
	//    extractor trained with ArcFace, gallery indexed for top-10
	//    retrieval. Everything is deterministic in Seed.
	fmt.Println("== 1. building the victim retrieval service ==")
	sys, err := duo.NewSystem(duo.SystemOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gallery: %d videos, %d categories; victim mAP: %.1f%%\n\n",
		len(sys.Corpus.Train), sys.Corpus.Categories, sys.MAP()*100)

	// 2. The attacker only sees R^m(v): steal a training set by querying
	//    and fit a C3D surrogate (§IV-B-1 of the paper).
	fmt.Println("== 2. stealing a surrogate over the black-box interface ==")
	surr, err := sys.StealSurrogate(duo.SurrogateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surrogate: %s with %d-dim features\n\n", surr.Name(), surr.FeatureDim())

	// 3. DUO: SparseTransfer finds sparse masks {ℐ, 𝓕, θ} on the
	//    surrogate; SparseQuery rectifies them against the victim.
	fmt.Println("== 3. running the DUO attack ==")
	pair := sys.SamplePairs(42, 1)[0]
	fmt.Printf("original: %s (label %d)\ntarget:   %s (label %d)\n",
		pair.Original.ID, pair.Original.Label, pair.Target.ID, pair.Target.Label)

	rep, err := sys.Attack(pair.Original, pair.Target, surr, duo.AttackOptions{Queries: 400})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== results ==")
	fmt.Printf("AP@m (adv list vs target list): %.2f%% → %.2f%%\n", rep.APBefore, rep.APAfter)
	fmt.Printf("perturbed elements (Spa): %d of %d (%.1f%%)\n",
		rep.Spa, pair.Original.Data.Len(), 100*float64(rep.Spa)/float64(pair.Original.Data.Len()))
	fmt.Printf("perturbed frames: %d of %d\n", rep.PerturbedFrames, pair.Original.Frames())
	fmt.Printf("perceptibility (PScore): %.3f\n", rep.PScore)
	fmt.Printf("victim queries used: %d\n", rep.Queries)
	if rep.APAfter > rep.APBefore {
		fmt.Println("\nthe adversarial video now retrieves the target's results — attack succeeded")
	} else {
		fmt.Println("\nno headway on this pair — try more queries or a larger τ")
	}
}
