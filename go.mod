module duo

go 1.22
