package duo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/parallel"
	"duo/internal/retrieval"
)

// goldenPQ is the checked-in fingerprint of the product-quantized
// retrieval tier. Fingerprint covers the full ranked lists — IDs and exact
// float64 distance bits — over every test query, so any drift in codebook
// training, ADC candidate selection, re-rank order, or persistence
// round-tripping fails the test. RecallFloor is the quality gate: the PQ
// tier must keep at least this recall@10 against the exact engine.
type goldenPQ struct {
	Fingerprint string  `json:"fingerprint"`
	RecallAt10  float64 `json:"recall_at_10"`
	RecallFloor float64 `json:"recall_floor"`
}

const goldenPQPath = "testdata/golden_pq.json"

// goldenPQSetup builds the fixed corpus, extractor, exact engine, and PQ
// engine the golden test pins.
func goldenPQSetup(t *testing.T) (*retrieval.Engine, *retrieval.PQEngine, []*Video) {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{
		Name: "GoldenPQ", Categories: 4, TrainPerCategory: 15, TestPerCategory: 3,
		Frames: 6, Channels: 3, Height: 10, Width: 10, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := models.NewC3D(rand.New(rand.NewSource(24)), models.GeometryOf(c.Train[0]), 16)
	exact := retrieval.NewEngine(m, c.Train)
	pq, err := retrieval.NewPQEngine(m, c.Train, retrieval.PQConfig{
		Subspaces: 4, Centroids: 16, KMeansIters: 20, Seed: 19, RerankDepth: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return exact, pq, c.Test
}

// pqFingerprint hashes every query's full ranked list: result IDs and the
// exact distance bit patterns. Two runs share a fingerprint iff their
// retrieval output is bitwise-identical.
func pqFingerprint(queries []*Video, retrieve func(*Video, int) []retrieval.Result) string {
	h := sha256.New()
	var buf [8]byte
	for _, q := range queries {
		for _, r := range retrieve(q, 10) {
			h.Write([]byte(r.ID))
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.Dist))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenPQ locks the PQ retrieval tier to its checked-in fingerprint
// at workers=1, then requires the identical fingerprint at workers=4 (the
// §9 determinism contract through the ADC scan and re-rank), from a
// persisted-and-reloaded index (the mmap serving path a restarted node
// takes), and recall@10 at or above the checked-in floor.
func TestGoldenPQ(t *testing.T) {
	if testing.Short() {
		t.Skip("full PQ pipeline run")
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	exact, pq, queries := goldenPQSetup(t)
	got := goldenPQ{
		Fingerprint: pqFingerprint(queries, pq.Retrieve),
		RecallAt10:  retrieval.RecallAtM(exact, pq, queries, 10),
		RecallFloor: 0.95,
	}

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPQPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPQPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPQPath)
	}

	raw, err := os.ReadFile(goldenPQPath)
	if err != nil {
		t.Fatalf("read golden (run `go test -run TestGoldenPQ -update` to create): %v", err)
	}
	var want goldenPQ
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Errorf("PQ fingerprint drifted:\n got %s\nwant %s", got.Fingerprint, want.Fingerprint)
	}
	if got.RecallAt10 < want.RecallFloor {
		t.Errorf("recall@10 = %g below checked-in floor %g", got.RecallAt10, want.RecallFloor)
	}
	if math.Float64bits(got.RecallAt10) != math.Float64bits(want.RecallAt10) {
		t.Errorf("recall@10 drifted: got %v, want %v", got.RecallAt10, want.RecallAt10)
	}

	// Same bits at workers=4: the scan shards, the fingerprint must not.
	parallel.SetWorkers(4)
	_, pq4, queries4 := goldenPQSetup(t)
	if fp4 := pqFingerprint(queries4, pq4.Retrieve); fp4 != got.Fingerprint {
		t.Errorf("workers=4 fingerprint differs:\n w1 %s\n w4 %s", got.Fingerprint, fp4)
	}

	// Same bits through persistence: write, reload via the mmap open path,
	// and serve — a restarted node must be indistinguishable bit for bit.
	path := filepath.Join(t.TempDir(), "golden.duopq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pq.Index().WriteIndex(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err := retrieval.OpenPQIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	reloaded, err := retrieval.NewPQEngineFromIndex(pq.Model(), ix)
	if err != nil {
		t.Fatal(err)
	}
	if fpR := pqFingerprint(queries, reloaded.Retrieve); fpR != got.Fingerprint {
		t.Errorf("reloaded-index fingerprint differs:\n mem  %s\n disk %s", got.Fingerprint, fpR)
	}
}
