package duo

// Golden fingerprints for the non-default optimizer strategies, mirroring
// TestGoldenPipeline (which pins the sparsequery default): one checked-in
// fingerprint per strategy at workers=1, plus a workers=4 rerun that must
// be bitwise-identical. Any drift in a strategy's RNG consumption, billing,
// or acceptance rule fails here; deliberate changes re-baseline with
// `go test -run TestGoldenStrategies -update`.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"duo/internal/parallel"
	"duo/internal/retrieval"
)

const goldenStrategiesPath = "testdata/golden_strategies.json"

// goldenStrategy is one strategy's checked-in fingerprint.
type goldenStrategy struct {
	APBefore  float64  `json:"ap_before"`
	APAfter   float64  `json:"ap_after"`
	Spa       int      `json:"spa"`
	Frames    int      `json:"perturbed_frames"`
	Queries   int      `json:"queries"`
	TopM      []string `json:"top_m"`
	AdvSHA256 string   `json:"adv_sha256"`
}

// goldenStrategyRun executes the golden pipeline with the given strategy
// and summarizes it. The victim system and surrogate are rebuilt each call
// so worker-count reruns share nothing but the seeds.
func goldenStrategyRun(t *testing.T, strategy string) (*goldenStrategy, *Tracer) {
	t.Helper()
	sys, err := NewSystem(SystemOptions{
		Categories: 3, TrainPerCategory: 4, TestPerCategory: 2,
		Frames: 6, Height: 10, Width: 10,
		FeatureDim: 12, TrainEpochs: 2, M: 6, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer("golden-" + strategy)
	sys.SetTrace(tr)
	surr, err := sys.StealSurrogate(SurrogateOptions{MaxSamples: 12, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	pair := sys.SamplePairs(5, 1)[0]
	rep, err := sys.Attack(pair.Original, pair.Target, surr, AttackOptions{Queries: 80, Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	return &goldenStrategy{
		APBefore:  rep.APBefore,
		APAfter:   rep.APAfter,
		Spa:       rep.Spa,
		Frames:    rep.PerturbedFrames,
		Queries:   rep.Queries,
		TopM:      retrieval.IDs(sys.Retrieve(rep.Adv, sys.M)),
		AdvSHA256: videoSHA256(rep.Adv),
	}, tr
}

// TestGoldenStrategies pins every non-default strategy to its checked-in
// fingerprint and proves worker-count invariance (w1 vs w4 bitwise equal,
// including the span trace).
func TestGoldenStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs")
	}
	got := map[string]*goldenStrategy{}
	for _, strategy := range Strategies() {
		if strategy == "sparsequery" {
			continue // pinned by TestGoldenPipeline
		}
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			prev := parallel.SetWorkers(1)
			defer parallel.SetWorkers(prev)
			fp1, tr1 := goldenStrategyRun(t, strategy)
			got[strategy] = fp1

			// The `queries` trace attribute must account for every billed
			// query, whatever the strategy.
			var attributed int64
			for _, r := range tr1.Records() {
				if q, ok := r.Int("queries"); ok {
					if r.Name != "retrieve" {
						t.Errorf("span %q carries a `queries` attr; reserved for retrieve leaves", r.Name)
					}
					attributed += q
				}
			}
			if attributed != int64(fp1.Queries) {
				t.Errorf("trace attributes %d queries, billed %d", attributed, fp1.Queries)
			}
			if fp1.Queries > 80 {
				t.Errorf("queries = %d exceed the 80-query budget", fp1.Queries)
			}

			parallel.SetWorkers(4)
			fp4, tr4 := goldenStrategyRun(t, strategy)
			if !reflect.DeepEqual(fp1, fp4) {
				t.Errorf("workers=4 fingerprint differs:\n w1 %+v\n w4 %+v", fp1, fp4)
			}
			if f1, f4 := traceSHA256(t, tr1), traceSHA256(t, tr4); f1 != f4 {
				t.Errorf("trace fingerprint differs between workers=1 (%s) and workers=4 (%s)", f1, f4)
			}
		})
	}

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenStrategiesPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenStrategiesPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenStrategiesPath)
		return
	}

	raw, err := os.ReadFile(goldenStrategiesPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenStrategies -update .`): %v", err)
	}
	want := map[string]*goldenStrategy{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for strategy, fp := range got {
		if want[strategy] == nil {
			t.Errorf("strategy %s has no checked-in golden; re-baseline with -update", strategy)
			continue
		}
		if !reflect.DeepEqual(fp, want[strategy]) {
			t.Errorf("strategy %s drifted from golden:\ngot  %+v\nwant %+v", strategy, fp, want[strategy])
		}
	}
	for strategy := range want {
		if got[strategy] == nil {
			t.Errorf("golden file pins unknown strategy %q; re-baseline with -update", strategy)
		}
	}
}
