package duo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"duo/internal/parallel"
	"duo/internal/retrieval"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens from the current pipeline output")

// goldenPipeline is the checked-in fingerprint of one full DUO run. Any
// drift in the attack math, the retrieval ranking, the RNG consumption
// order, or the query billing changes at least one field and fails the
// regression test — deliberate changes re-baseline with `go test -update`.
type goldenPipeline struct {
	VictimMAP float64  `json:"victim_map"`
	APBefore  float64  `json:"ap_before"`
	APAfter   float64  `json:"ap_after"`
	Spa       int      `json:"spa"`
	Frames    int      `json:"perturbed_frames"`
	PScore    float64  `json:"pscore"`
	Queries   int      `json:"queries"`
	TopM      []string `json:"top_m"`
	AdvSHA256 string   `json:"adv_sha256"`
}

const goldenPath = "testdata/golden_pipeline.json"

// goldenRun executes the full pipeline — corpus, victim training, surrogate
// stealing, DUO attack — at a fixed seed and summarizes it. The telemetry
// registry and tracer may be nil; the summary must be identical either way.
func goldenRun(t *testing.T, reg *Telemetry, tr *Tracer) (*goldenPipeline, *Report) {
	t.Helper()
	sys, err := NewSystem(SystemOptions{
		Categories: 3, TrainPerCategory: 4, TestPerCategory: 2,
		Frames: 6, Height: 10, Width: 10,
		FeatureDim: 12, TrainEpochs: 2, M: 6, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetTelemetry(reg)
	sys.SetTrace(tr)
	surr, err := sys.StealSurrogate(SurrogateOptions{MaxSamples: 12, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	pair := sys.SamplePairs(5, 1)[0]
	rep, err := sys.Attack(pair.Original, pair.Target, surr, AttackOptions{Queries: 80, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return &goldenPipeline{
		VictimMAP: sys.MAP(),
		APBefore:  rep.APBefore,
		APAfter:   rep.APAfter,
		Spa:       rep.Spa,
		Frames:    rep.PerturbedFrames,
		PScore:    rep.PScore,
		Queries:   rep.Queries,
		TopM:      retrieval.IDs(sys.Retrieve(rep.Adv, sys.M)),
		AdvSHA256: videoSHA256(rep.Adv),
	}, rep
}

// videoSHA256 hashes the exact float64 bit patterns of a video, so two
// videos share a hash iff they are bitwise-identical.
func videoSHA256(v *Video) string {
	h := sha256.New()
	var buf [8]byte
	for _, x := range v.Data.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenPipeline locks the end-to-end DUO pipeline to its checked-in
// fingerprint at workers=1, then reruns the entire pipeline at workers=4
// and requires a bitwise-identical adversarial video and identical
// fingerprint — the determinism contract of internal/parallel, asserted at
// the highest level the repo has. The workers=1 run also collects
// telemetry and a span trace, proving an instrumented run produces the
// same bits as the clean workers=4 run, that the telemetry query counter
// agrees exactly with the billed query count, and that every billed query
// is attributed to a leaf retrieve span in the trace.
func TestGoldenPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	reg := NewTelemetry()
	tr1 := NewTracer("golden")
	got, rep := goldenRun(t, reg, tr1)

	if telQ := reg.Snapshot().Counters["attack.queries"]; telQ != int64(got.Queries) {
		t.Errorf("telemetry attack.queries = %d, billed queries = %d", telQ, got.Queries)
	}
	// Query-budget attribution: the bare `queries` attribute appears only
	// on leaf retrieve spans and must sum to exactly the billed count.
	var attributed int64
	for _, r := range tr1.Records() {
		q, ok := r.Int("queries")
		if !ok {
			continue
		}
		if r.Name != "retrieve" {
			t.Errorf("span %q carries a `queries` attr; reserved for retrieve leaves", r.Name)
		}
		attributed += q
	}
	if attributed != int64(got.Queries) {
		t.Errorf("trace attributes %d queries to retrieve leaves, billed %d", attributed, got.Queries)
	}
	if got.Queries > 80 {
		t.Errorf("queries = %d exceed the 80-query budget", got.Queries)
	}
	if len(got.TopM) == 0 || rep.Adv == nil {
		t.Fatal("pipeline produced no retrieval list or adversarial video")
	}

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run `go test -run TestGoldenPipeline -update` to create): %v", err)
	}
	var want goldenPipeline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, &want) {
		t.Errorf("pipeline drifted from golden:\n got %+v\nwant %+v", got, &want)
	}

	// Rerun everything at workers=4, telemetry off but traced: identical
	// bits and a bitwise-identical span tree required.
	parallel.SetWorkers(4)
	tr4 := NewTracer("golden")
	got4, rep4 := goldenRun(t, nil, tr4)
	if !reflect.DeepEqual(got, got4) {
		t.Errorf("workers=4 fingerprint differs:\n w1 %+v\n w4 %+v", got, got4)
	}
	a, b := rep.Adv.Data.Data(), rep4.Adv.Data.Data()
	if len(a) != len(b) {
		t.Fatalf("adversarial video lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("adversarial video differs at element %d: %v vs %v", i, a[i], b[i])
		}
	}
	if f1, f4 := traceSHA256(t, tr1), traceSHA256(t, tr4); f1 != f4 {
		t.Errorf("trace fingerprint differs between workers=1 (%s) and workers=4 (%s)", f1, f4)
	}
}

// traceSHA256 fingerprints a tracer's JSONL dump.
func traceSHA256(t *testing.T, tr *Tracer) string {
	t.Helper()
	h := sha256.New()
	if err := tr.WriteJSONL(h); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}
