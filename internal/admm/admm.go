// Package admm implements the ℓp-box ADMM scheme of Wu & Ghanem (reference
// [18] of the paper) for the binary program that SparseTransfer's pixel-mask
// step (Algorithm 1, line 4) solves:
//
//	minimize    cᵀx
//	subject to  1ᵀx = k,   x ∈ {0,1}^d .
//
// The binary constraint is replaced by the intersection of the box [0,1]^d
// with the sphere ‖x − ½·1‖² = d/4 (the "ℓ₂-box"), and ADMM alternates
// between an unconstrained quadratic x-update (solved in closed form via
// Sherman–Morrison), projections onto the box and the sphere, and dual
// ascent. The relaxed solution is binarized to exactly k ones by top-k.
package admm

import (
	"fmt"
	"math"
)

// Config tunes the solver.
type Config struct {
	// Rho is the initial penalty weight for the box/sphere splits.
	Rho float64
	// RhoCard is the penalty weight for the cardinality constraint 1ᵀx=k.
	RhoCard float64
	// RhoGrowth multiplies the penalties every iteration (>1 accelerates
	// consensus; the reference implementation uses ~1.03).
	RhoGrowth float64
	// MaxIter bounds the ADMM iterations.
	MaxIter int
	// Tol stops early when both primal residuals fall below it.
	Tol float64
}

// DefaultConfig returns the settings used throughout the experiments.
func DefaultConfig() Config {
	return Config{Rho: 1, RhoCard: 1, RhoGrowth: 1.03, MaxIter: 200, Tol: 1e-6}
}

// Result reports the solver outcome.
type Result struct {
	// X is the binary solution (exactly K ones).
	X []bool
	// Objective is cᵀx at the returned solution.
	Objective float64
	// Iterations is the number of ADMM iterations performed.
	Iterations int
	// Converged reports whether the primal residuals met Tol.
	Converged bool
}

// MinimizeCardinality solves min cᵀx s.t. 1ᵀx = k, x binary.
func MinimizeCardinality(c []float64, k int, cfg Config) (*Result, error) {
	d := len(c)
	if d == 0 {
		return nil, fmt.Errorf("admm: empty cost vector")
	}
	if k < 0 || k > d {
		return nil, fmt.Errorf("admm: k=%d out of range [0,%d]", k, d)
	}
	if cfg.MaxIter <= 0 {
		cfg = DefaultConfig()
	}

	x := make([]float64, d)
	y1 := make([]float64, d) // box copy
	y2 := make([]float64, d) // sphere copy
	z1 := make([]float64, d) // dual for x=y1
	z2 := make([]float64, d) // dual for x=y2
	z3 := 0.0                // dual for 1ᵀx=k
	for i := range x {
		x[i] = float64(k) / float64(d)
		y1[i], y2[i] = x[i], x[i]
	}

	rho := cfg.Rho
	rhoC := cfg.RhoCard
	radius := math.Sqrt(float64(d)) / 2

	res := &Result{}
	for it := 0; it < cfg.MaxIter; it++ {
		res.Iterations = it + 1

		// y1-update: projection onto the box [0,1]^d.
		for i := range y1 {
			v := x[i] + z1[i]/rho
			y1[i] = math.Max(0, math.Min(1, v))
		}

		// y2-update: projection onto the sphere ‖y − ½‖ = √d/2.
		norm := 0.0
		for i := range y2 {
			v := x[i] + z2[i]/rho - 0.5
			y2[i] = v
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate centre: any sphere point works; pick axis 0.
			for i := range y2 {
				y2[i] = 0.5
			}
			y2[0] = 0.5 + radius
		} else {
			s := radius / norm
			for i := range y2 {
				y2[i] = 0.5 + y2[i]*s
			}
		}

		// x-update: minimize
		//   cᵀx + Σ zᵢᵀ(x−yᵢ) + z₃(1ᵀx−k) + ρ‖x−y₁‖²/2 + ρ‖x−y₂‖²/2
		//   + ρ_c(1ᵀx−k)²/2 ,
		// i.e. solve (2ρ·I + ρ_c·11ᵀ)x = r with Sherman–Morrison.
		a := 2 * rho
		b := rhoC
		sumR := 0.0
		r := make([]float64, d)
		for i := range r {
			r[i] = rho*(y1[i]+y2[i]) - c[i] - z1[i] - z2[i] - z3 + b*float64(k)
			sumR += r[i]
		}
		corr := b / (a * (a + b*float64(d))) * sumR
		sumX := 0.0
		maxR1 := 0.0
		maxR2 := 0.0
		for i := range x {
			x[i] = r[i]/a - corr
			sumX += x[i]
		}

		// Dual ascent.
		for i := range x {
			r1 := x[i] - y1[i]
			r2 := x[i] - y2[i]
			z1[i] += rho * r1
			z2[i] += rho * r2
			if math.Abs(r1) > maxR1 {
				maxR1 = math.Abs(r1)
			}
			if math.Abs(r2) > maxR2 {
				maxR2 = math.Abs(r2)
			}
		}
		z3 += rhoC * (sumX - float64(k))

		rho *= cfg.RhoGrowth
		rhoC *= cfg.RhoGrowth

		if maxR1 < cfg.Tol && maxR2 < cfg.Tol {
			res.Converged = true
			break
		}
	}

	// Binarize to exactly k ones: keep the k largest relaxed coordinates.
	res.X = topKMask(x, k)
	for i, on := range res.X {
		if on {
			res.Objective += c[i]
		}
	}
	return res, nil
}

// topKMask returns a boolean mask with true at the indices of the k largest
// values (ties broken toward lower index for determinism).
func topKMask(x []float64, k int) []bool {
	mask := make([]bool, len(x))
	if k <= 0 {
		return mask
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine at the scales used here; keep it
	// deterministic under ties.
	for s := 0; s < k; s++ {
		best := s
		for j := s + 1; j < len(idx); j++ {
			if x[idx[j]] > x[idx[best]] {
				best = j
			}
		}
		idx[s], idx[best] = idx[best], idx[s]
		mask[idx[s]] = true
	}
	return mask
}

// TopKByScore is the plain (non-ADMM) comparator used by the ablation in
// DESIGN.md §6: select the k coordinates with the lowest cost directly.
func TopKByScore(c []float64, k int) []bool {
	neg := make([]float64, len(c))
	for i, v := range c {
		neg[i] = -v
	}
	return topKMask(neg, k)
}
