package admm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func countTrue(m []bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// bruteForceOptimum returns the optimal objective: sum of the k smallest
// costs.
func bruteForceOptimum(c []float64, k int) float64 {
	s := append([]float64(nil), c...)
	sort.Float64s(s)
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += s[i]
	}
	return sum
}

func TestMinimizeCardinalityOptimal(t *testing.T) {
	c := []float64{5, 1, 3, 2, 4}
	res, err := MinimizeCardinality(c, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if countTrue(res.X) != 2 {
		t.Fatalf("cardinality = %d", countTrue(res.X))
	}
	if !res.X[1] || !res.X[3] {
		t.Errorf("selected %v, want indices 1 and 3", res.X)
	}
	if res.Objective != 3 {
		t.Errorf("objective = %g, want 3", res.Objective)
	}
}

func TestMinimizeCardinalityRandomMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		d := 10 + rng.Intn(30)
		k := 1 + rng.Intn(d-1)
		c := make([]float64, d)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		res, err := MinimizeCardinality(c, k, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if countTrue(res.X) != k {
			t.Fatalf("trial %d: cardinality %d, want %d", trial, countTrue(res.X), k)
		}
		want := bruteForceOptimum(c, k)
		// The ADMM relaxation should land on (or extremely near) the
		// optimum for this separable objective.
		if res.Objective > want+1e-6 {
			t.Errorf("trial %d: objective %g > optimum %g", trial, res.Objective, want)
		}
	}
}

func TestMinimizeCardinalityEdgeCases(t *testing.T) {
	c := []float64{1, 2, 3}
	res, err := MinimizeCardinality(c, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if countTrue(res.X) != 0 || res.Objective != 0 {
		t.Errorf("k=0: %v, obj %g", res.X, res.Objective)
	}
	res, err = MinimizeCardinality(c, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if countTrue(res.X) != 3 || res.Objective != 6 {
		t.Errorf("k=d: %v, obj %g", res.X, res.Objective)
	}
}

func TestMinimizeCardinalityErrors(t *testing.T) {
	if _, err := MinimizeCardinality(nil, 0, DefaultConfig()); err == nil {
		t.Error("empty cost accepted")
	}
	if _, err := MinimizeCardinality([]float64{1}, 2, DefaultConfig()); err == nil {
		t.Error("k > d accepted")
	}
	if _, err := MinimizeCardinality([]float64{1}, -1, DefaultConfig()); err == nil {
		t.Error("negative k accepted")
	}
}

func TestMinimizeCardinalityZeroConfigUsesDefaults(t *testing.T) {
	res, err := MinimizeCardinality([]float64{2, 1}, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.X[1] || res.X[0] {
		t.Errorf("zero config: %v", res.X)
	}
}

func TestTopKByScore(t *testing.T) {
	mask := TopKByScore([]float64{5, 1, 3}, 1)
	if !mask[1] || mask[0] || mask[2] {
		t.Errorf("TopKByScore = %v", mask)
	}
}

func TestPropCardinalityAlwaysExact(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 5 + int(kRaw%20)
		k := int(kRaw) % (d + 1)
		c := make([]float64, d)
		for i := range c {
			c[i] = rng.NormFloat64() * 10
		}
		res, err := MinimizeCardinality(c, k, DefaultConfig())
		if err != nil {
			return false
		}
		return countTrue(res.X) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropADMMNotWorseThanRandom(t *testing.T) {
	// The solver must never pick a set whose cost exceeds the mean random
	// k-subset cost (sanity floor far above optimal).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 20
		k := 5
		c := make([]float64, d)
		mean := 0.0
		for i := range c {
			c[i] = rng.Float64() * 10
			mean += c[i]
		}
		mean = mean / float64(d) * float64(k)
		res, err := MinimizeCardinality(c, k, DefaultConfig())
		if err != nil {
			return false
		}
		return res.Objective <= mean+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
