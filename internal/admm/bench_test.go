package admm

import (
	"math/rand"
	"testing"
)

func benchCosts(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	return c
}

// BenchmarkMinimizeCardinality measures one ℓp-box ADMM solve at the size
// SparseTransfer's ℐ-step uses for a 16×3×16×16 clip.
func BenchmarkMinimizeCardinality(b *testing.B) {
	c := benchCosts(12288)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeCardinality(c, 1843, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKByScore measures the plain top-k baseline of the ablation.
func BenchmarkTopKByScore(b *testing.B) {
	c := benchCosts(12288)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TopKByScore(c, 1843)
	}
}
