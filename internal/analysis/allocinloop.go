package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Allocinloop enforces the hot-path allocation discipline that PR 2's
// sync.Pool scratch idiom established by convention: inside loops
// reachable from an annotated hot entry point, nothing may allocate per
// iteration. A function opts in with a
//
//	//duolint:hot
//
// line in its doc comment; the rule then walks a loop-nesting view of the
// function (and transitively treats every same-package function called
// from a hot region as fully hot — its whole body runs once per
// iteration), flagging:
//
//   - make and new
//   - composite literals that allocate (&T{...}, slice and map literals;
//     plain value struct literals live on the stack and are not flagged)
//   - growing append
//   - closure captures (a func literal referencing enclosing locals is
//     materialized on the heap each time it is evaluated; a literal
//     capturing nothing is a static function and is not flagged)
//   - interface boxing at call sites (a non-pointer-shaped concrete
//     argument passed to an interface parameter, variadic ...any included)
//   - string <-> []byte/[]rune conversions
//
// The PR 2 scratch idiom is recognized and discharged, not flagged:
//
//   - pool checkout / grow-once: a make or append guarded by a len()/cap()
//     comparison ("if cap(buf) < n { buf = make(...) }");
//   - pre-sized buffers: append onto a target whose defining assignment
//     before the append is a reslice ("buf := sc.merged[:0]"), a
//     three-argument make, or a sync.Pool-style .Get() checkout.
//
// Anything legitimately allocating in a hot loop carries a
// //duolint:allow allocinloop annotation with a reason, which doubles as
// the inventory of every per-iteration allocation the project accepts.
var Allocinloop = &Analyzer{
	Name: "allocinloop",
	Doc:  "no per-iteration heap allocation inside loops reachable from //duolint:hot entry points",
	Run:  runAllocinloop,
}

// hotDirective is the annotation marking a hot entry point.
const hotDirective = "//duolint:hot"

func runAllocinloop(p *Pass) {
	// Index every function declaration and local closure binding so calls
	// inside hot regions can be resolved for propagation.
	decls := map[types.Object]*ast.FuncDecl{}
	closures := map[types.Object]*ast.FuncLit{}
	var annotated []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Info.ObjectOf(fd.Name); obj != nil {
				decls[obj] = fd
			}
			if hasHotDirective(fd.Doc) {
				annotated = append(annotated, fd)
			}
			// name := func(...){...} bindings inside this function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok {
						continue
					}
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					if obj := p.Info.ObjectOf(id); obj != nil {
						closures[obj] = lit
					}
				}
				return true
			})
		}
	}
	if len(annotated) == 0 {
		return
	}

	// Propagation: every same-package function (or local closure) called
	// from a hot region becomes fully hot. Fixpoint over a worklist.
	type hotBody struct {
		body   *ast.BlockStmt
		full   bool
		origin string
	}
	fullDone := map[ast.Node]string{} // node -> origin, processed as fully hot
	var work []hotBody
	enqueue := func(node ast.Node, body *ast.BlockStmt, origin string) {
		if _, done := fullDone[node]; done {
			return
		}
		fullDone[node] = origin
		work = append(work, hotBody{body: body, full: true, origin: origin})
	}
	collectCalls := func(origin string) func(n ast.Node, _ []ast.Expr) {
		return func(n ast.Node, _ []ast.Expr) {
			ast.Inspect(n, func(c ast.Node) bool {
				if _, isLit := c.(*ast.FuncLit); isLit {
					return false // its body is walked with its own hotness
				}
				call, ok := c.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					obj := p.Info.Uses[fun]
					if fd, ok := decls[obj]; ok && samePkg(p, obj) {
						enqueue(fd, fd.Body, origin)
					} else if lit, ok := closures[obj]; ok {
						enqueue(lit, lit.Body, origin)
					}
				case *ast.SelectorExpr:
					if obj := p.Info.Uses[fun.Sel]; samePkg(p, obj) {
						if fd, ok := decls[obj]; ok {
							enqueue(fd, fd.Body, origin)
						}
					}
				}
				return true
			})
		}
	}
	for _, fd := range annotated {
		walkHot(fd.Body, false, collectCalls(fd.Name.Name))
	}
	for len(work) > 0 {
		hb := work[len(work)-1]
		work = work[:len(work)-1]
		walkHot(hb.body, hb.full, collectCalls(hb.origin))
	}

	// Reporting: annotated entry points contribute their loops; propagated
	// functions contribute their whole bodies. A shared seen-set dedups
	// regions visited from several directions.
	seen := map[token.Pos]bool{}
	for _, fd := range annotated {
		if _, isFull := fullDone[fd]; isFull {
			continue // reported below with the stronger judgment
		}
		walkHot(fd.Body, false, reportAllocs(p, fd.Name.Name, fd.Body, seen))
	}
	for node, origin := range fullDone {
		var body *ast.BlockStmt
		switch d := node.(type) {
		case *ast.FuncDecl:
			body = d.Body
		case *ast.FuncLit:
			body = d.Body
		}
		walkHot(body, true, reportAllocs(p, origin, body, seen))
	}
}

// samePkg reports whether obj is declared in the package under analysis.
func samePkg(p *Pass, obj types.Object) bool {
	return obj != nil && obj.Pkg() == p.Pkg
}

// hasHotDirective reports whether a doc comment carries //duolint:hot.
func hasHotDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// walkHot walks a function body in its loop-nesting view, calling onHot
// for every leaf statement or condition expression that executes per
// hot-loop iteration — all of them when full, otherwise those inside
// loops. Function literal bodies are descended into with the hotness of
// the position where the literal is evaluated (a literal built inside a
// hot loop runs at least once per iteration, so its whole body is hot; a
// literal built outside contributes only its own loops). The enclosing
// if-conditions within the walk are passed alongside for the discharge
// heuristics.
func walkHot(body *ast.BlockStmt, full bool, onHot func(n ast.Node, guards []ast.Expr)) {
	w := &hotWalker{onHot: onHot}
	w.stmts(body.List, full)
}

type hotWalker struct {
	onHot  func(n ast.Node, guards []ast.Expr)
	guards []ast.Expr
}

func (w *hotWalker) stmts(list []ast.Stmt, hot bool) {
	for _, st := range list {
		w.stmt(st, hot)
	}
}

func (w *hotWalker) stmt(st ast.Stmt, hot bool) {
	switch s := st.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		w.stmts(s.List, hot)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, hot)
	case *ast.IfStmt:
		w.stmt(s.Init, hot)
		w.node(s.Cond, hot)
		w.guards = append(w.guards, s.Cond)
		w.stmts(s.Body.List, hot)
		w.guards = w.guards[:len(w.guards)-1]
		w.stmt(s.Else, hot)
	case *ast.ForStmt:
		w.stmt(s.Init, hot)
		if s.Cond != nil {
			w.node(s.Cond, true) // evaluated per iteration
		}
		w.stmt(s.Post, true)
		w.stmts(s.Body.List, true)
	case *ast.RangeStmt:
		w.node(s.X, hot) // the ranged expression is evaluated once
		w.stmts(s.Body.List, true)
	case *ast.SwitchStmt:
		w.stmt(s.Init, hot)
		if s.Tag != nil {
			w.node(s.Tag, hot)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.node(e, hot)
				}
				w.stmts(cc.Body, hot)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, hot)
		w.stmt(s.Assign, hot)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.stmts(cc.Body, hot)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.stmt(cc.Comm, hot)
				w.stmts(cc.Body, hot)
			}
		}
	default:
		// Leaf statement: Assign/Expr/IncDec/Decl/Return/Go/Defer/Send.
		w.node(st, hot)
	}
}

// node handles one leaf event: report it when hot, and descend into any
// function literals it evaluates with the event's hotness.
func (w *hotWalker) node(n ast.Node, hot bool) {
	if n == nil {
		return
	}
	if hot {
		w.onHot(n, w.guards)
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if lit, ok := c.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, hot)
			return false
		}
		return true
	})
}

// reportAllocs returns the walkHot callback that flags allocation
// operations inside one hot region. body is the enclosing function body
// (the scope searched for pre-sizing definitions); origin names the hot
// entry point for diagnostics; seen dedups nodes reachable through
// several hot paths.
func reportAllocs(p *Pass, origin string, body *ast.BlockStmt, seen map[token.Pos]bool) func(n ast.Node, guards []ast.Expr) {
	return func(n ast.Node, guards []ast.Expr) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch e := c.(type) {
			case *ast.FuncLit:
				checkClosure(p, origin, e, seen)
				return false // body walked separately by walkHot
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					if cl, ok := e.X.(*ast.CompositeLit); ok && !seen[cl.Pos()] {
						seen[cl.Pos()] = true
						reportAlloc(p, origin, e.Pos(), "&%s composite literal", typeLabel(p, cl))
					}
				}
			case *ast.CallExpr:
				checkCall(p, origin, body, e, guards, seen)
			case *ast.CompositeLit:
				checkComposite(p, origin, e, seen)
			}
			return true
		})
	}
}

// reportAlloc emits one allocinloop finding.
func reportAlloc(p *Pass, origin string, pos token.Pos, format string, args ...any) {
	what := fmt.Sprintf(format, args...)
	p.Reportf(pos, "%s allocates on every iteration of a hot loop (hot path: %s); hoist it or use the pooled scratch idiom", what, origin)
}

// checkCall classifies one call expression in a hot region: builtin
// allocators, allocating conversions, and interface boxing.
func checkCall(p *Pass, origin string, body *ast.BlockStmt, call *ast.CallExpr, guards []ast.Expr, seen map[token.Pos]bool) {
	if seen[call.Pos()] {
		return
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if !guardDischarges(guards) {
					seen[call.Pos()] = true
					reportAlloc(p, origin, call.Pos(), "make")
				}
			case "new":
				seen[call.Pos()] = true
				reportAlloc(p, origin, call.Pos(), "new")
			case "append":
				if !appendDischarged(p, body, call, guards) {
					seen[call.Pos()] = true
					reportAlloc(p, origin, call.Pos(), "growing append")
				}
			}
			return
		}
	}
	// Conversions: string <-> []byte / []rune.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := p.Info.TypeOf(call.Args[0])
		if isStringByteConversion(dst, src) {
			seen[call.Pos()] = true
			reportAlloc(p, origin, call.Pos(), "%s conversion", types.TypeString(dst, types.RelativeTo(p.Pkg)))
		}
		return
	}
	// Interface boxing at the call site.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if seen[arg.Pos()] {
			continue
		}
		seen[arg.Pos()] = true
		reportAlloc(p, origin, arg.Pos(), "interface boxing of %s argument", types.TypeString(at, types.RelativeTo(p.Pkg)))
	}
}

// paramType resolves the i-th argument's parameter type, flattening
// variadics; nil when no boxing judgment applies (spread calls pass the
// slice through).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	np := params.Len()
	if np == 0 {
		return nil
	}
	if sig.Variadic() {
		if i < np-1 {
			return params.At(i).Type()
		}
		if ellipsis {
			return nil // f(xs...) passes the slice through, no per-element boxing
		}
		s, ok := params.At(np - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= np {
		return nil
	}
	return params.At(i).Type()
}

// pointerShaped reports whether values of t fit an interface's data word
// without allocating: pointers, channels, maps, funcs, unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isStringByteConversion reports a string <-> []byte/[]rune conversion
// (each direction copies into a fresh allocation).
func isStringByteConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Uint8 || b.Kind() == types.Int32
}

// checkComposite flags slice and map composite literals. Value struct and
// array literals are stack-allocated and skipped; &T{...} is handled by
// the UnaryExpr case of reportAllocs.
func checkComposite(p *Pass, origin string, cl *ast.CompositeLit, seen map[token.Pos]bool) {
	if seen[cl.Pos()] {
		return
	}
	t := p.Info.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		seen[cl.Pos()] = true
		reportAlloc(p, origin, cl.Pos(), "%s slice literal", typeLabel(p, cl))
	case *types.Map:
		seen[cl.Pos()] = true
		reportAlloc(p, origin, cl.Pos(), "%s map literal", typeLabel(p, cl))
	}
}

// typeLabel renders a composite literal's type for diagnostics.
func typeLabel(p *Pass, cl *ast.CompositeLit) string {
	if t := p.Info.TypeOf(cl); t != nil {
		return types.TypeString(t, types.RelativeTo(p.Pkg))
	}
	return "composite"
}

// checkClosure flags a func literal that captures enclosing variables: its
// closure record is materialized per evaluation. A literal referencing
// only its own locals/params and package-level state compiles to a static
// function and is not flagged.
func checkClosure(p *Pass, origin string, lit *ast.FuncLit, seen map[token.Pos]bool) {
	if seen[lit.Pos()] {
		return
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, isVar := p.Info.Uses[id].(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Package-level variables are statically addressed, not captured.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		// Declared inside the literal itself (params or locals): no capture.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		captured = id.Name
		return false
	})
	if captured == "" {
		return
	}
	seen[lit.Pos()] = true
	reportAlloc(p, origin, lit.Pos(), "closure capturing %q", captured)
}

// guardDischarges reports whether an enclosing if-condition performs a
// len()/cap() comparison — the grow-once / pool-checkout pattern
// ("if cap(buf) < n { buf = make(...) }").
func guardDischarges(guards []ast.Expr) bool {
	for _, g := range guards {
		found := false
		ast.Inspect(g, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// appendDischarged applies the pre-sized-buffer discharges to an append
// in a hot region: a len/cap guard on the path, or a target whose
// defining assignment (lexically before the append, same function body)
// is a reslice, a 3-arg make, or a pool .Get() checkout.
func appendDischarged(p *Pass, body *ast.BlockStmt, call *ast.CallExpr, guards []ast.Expr) bool {
	if guardDischarges(guards) {
		return true
	}
	if len(call.Args) == 0 {
		return true
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	discharged := false
	ast.Inspect(body, func(n ast.Node) bool {
		if discharged {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= call.Pos() {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			lobj := p.Info.Defs[lid]
			if lobj == nil {
				lobj = p.Info.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			if presizedRHS(as.Rhs[i]) {
				discharged = true
				return false
			}
		}
		return true
	})
	return discharged
}

// presizedRHS recognizes defining expressions that make a later append
// amortized-free: a reslice (buf[:0], sc.merged[:n]), a 3-argument make
// (explicit capacity), or a pool checkout (a .Get() call anywhere in the
// expression, sync.Pool style).
func presizedRHS(rhs ast.Expr) bool {
	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) == 3 {
			return true
		}
	}
	got := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if got {
			return false
		}
		switch c := n.(type) {
		case *ast.SliceExpr:
			got = true
			return false
		case *ast.CallExpr:
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" && len(c.Args) == 0 {
				got = true
				return false
			}
		}
		return true
	})
	return got
}
