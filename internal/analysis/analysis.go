// Package analysis is a small, dependency-free static-analysis framework
// (go/parser + go/ast + go/types only) plus the project-specific analyzers
// that enforce this repository's load-bearing contracts:
//
//   - the determinism contract (DESIGN.md §9): bitwise-identical results at
//     any worker count, all randomness through a seeded *rand.Rand, no
//     wall-clock reads in computation paths, no map-iteration-order leaks,
//     no accidental float equality;
//   - the query-billing invariant: every victim Retrieve/RetrieveBatch in
//     the attack path is billed against the query budget — the property
//     that makes DUO's query-efficiency numbers measurable;
//   - the write-only telemetry rule (DESIGN.md §10): instruments are
//     recorded, never read back into any computation.
//
// Tests enforce these contracts only where a test happens to look; the
// analyzers in this package enforce them at every call site, forever. The
// cmd/duolint CLI loads packages, runs every analyzer, and exits non-zero
// on findings; legitimate exceptions are annotated in place with a
//
//	//duolint:allow <rule>[,<rule>...] <reason>
//
// comment directive (see run.go), and an unused directive is itself a
// finding so stale annotations cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named rule. Run inspects a fully type-checked package
// through the Pass and reports diagnostics; it must not mutate the AST.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics ("[name] message")
	// and in //duolint:allow directives.
	Name string
	// Doc is a one-line description of the contract the rule guards.
	Doc string
	// Run executes the rule over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Fset maps token positions for every file in the package.
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Dir is the package's source directory on disk. Analyzers that need
	// evidence from files outside the type-checked set (gobsymmetry scans
	// sibling _test.go files) read it from here; it is empty when the
	// package was loaded without directory information.
	Dir string
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package object (never nil; possibly
	// incomplete when the package had type errors, which the loader
	// tolerates).
	Pkg *types.Package
	// Info holds the type-checker's expression/object tables.
	Info *types.Info

	rule   string
	report func(Diagnostic)
}

// Reportf records one diagnostic for the current rule at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
}

// String renders the canonical "file:line:col: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// fill populates the flattened position fields from Pos; diagnostics
// constructed with File/Line directly (directive hygiene) pass through.
func (d *Diagnostic) fill() {
	if d.File != "" || d.Pos.Filename == "" {
		return
	}
	d.File = d.Pos.Filename
	d.Line = d.Pos.Line
	d.Col = d.Pos.Column
}

// sortDiagnostics orders findings by file, line, column, then rule, so
// output is stable across runs and analyzer execution order.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
