package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureCases drives every analyzer over its fixture packages under
// testdata/src. Expectations are trailing comments of the form
//
//	// want `regex`
//
// where the regex is matched against the rendered "[rule] message". A
// fixture line with no want comment must produce no diagnostic, and every
// want must be consumed by exactly one diagnostic.
var fixtureCases = []struct {
	pkg       string
	analyzers []*Analyzer
}{
	{"detrand/fix", []*Analyzer{Detrand}},
	{"walltime/fix", []*Analyzer{Walltime}},
	{"mapiter/fix", []*Analyzer{Mapiter}},
	{"floateq/fix", []*Analyzer{Floateq}},
	{"billedquery/core", []*Analyzer{Billedquery}},
	{"billedquery/other", []*Analyzer{Billedquery}},
	{"telemetryro/telemetry", []*Analyzer{Telemetryro}},
	{"telemetryro/app", []*Analyzer{Telemetryro}},
	{"gobsymmetry/wire", []*Analyzer{Gobsymmetry}},
	{"gobsymmetry/naked", []*Analyzer{Gobsymmetry}},
	{"directive/fix", []*Analyzer{Detrand}},
	{"allocinloop/hot", []*Analyzer{Allocinloop}},
}

func TestAnalyzersOnFixtures(t *testing.T) {
	loader, err := NewFixtureLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("fixture loader: %v", err)
	}
	for _, tc := range fixtureCases {
		t.Run(strings.ReplaceAll(tc.pkg, "/", "_"), func(t *testing.T) {
			pkgs, err := loader.Load("", tc.pkg)
			if err != nil {
				t.Fatalf("load %s: %v", tc.pkg, err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("load %s: got %d packages, want 1", tc.pkg, len(pkgs))
			}
			diags := Run(loader.Fset, pkgs, tc.analyzers, KnownRules())
			wants := collectWants(t, loader.Fset, pkgs[0].Files)

			for _, d := range diags {
				rendered := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
				if !claimWant(wants, d.File, d.Line, rendered) {
					t.Errorf("unexpected diagnostic %s:%d: %s", filepath.Base(d.File), d.Line, rendered)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing diagnostic at %s:%d matching %q", filepath.Base(w.file), w.line, w.re.String())
				}
			}
		})
	}
}

// wantExp is one parsed expectation comment.
type wantExp struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("want `([^`]*)`")

// collectWants extracts every `want` expectation from the files' comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*wantExp {
	t.Helper()
	var out []*wantExp
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := fset.Position(c.Pos())
					out = append(out, &wantExp{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// claimWant marks the first unclaimed expectation on file:line whose regex
// matches rendered; it reports whether one was found.
func claimWant(wants []*wantExp, file string, line int, rendered string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(rendered) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestRepoIsClean runs the full suite over the whole module: the tree must
// stay duolint-clean (CI also enforces this as a separate step; failing
// here gives contributors the finding list without leaving `go test`).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load(loader.Root(), "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	for _, d := range Run(loader.Fset, pkgs, All(), KnownRules()) {
		t.Errorf("%s", d.String())
	}
}

// TestSelect covers the -rules plumbing: known subsets resolve in order,
// unknown names are rejected by name.
func TestSelect(t *testing.T) {
	sel, bad := Select([]string{"floateq", "detrand"})
	if bad != "" || len(sel) != 2 || sel[0] != Floateq || sel[1] != Detrand {
		t.Fatalf("Select known: got %v bad=%q", sel, bad)
	}
	if _, bad := Select([]string{"nope"}); bad != "nope" {
		t.Fatalf("Select unknown: bad=%q, want nope", bad)
	}
}
