package analysis

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrand,
		Walltime,
		Mapiter,
		Floateq,
		Billedquery,
		Telemetryro,
		Gobsymmetry,
		Allocinloop,
	}
}

// KnownRules returns the set of every rule name that may appear in a
// //duolint:allow directive (all analyzers plus the directive pseudo-rule
// is excluded: directive findings cannot be suppressed).
func KnownRules() map[string]bool {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// Select returns the analyzers whose names appear in the comma-free list
// names; it errors (by returning nil and the offending name) on an
// unknown name.
func Select(names []string) ([]*Analyzer, string) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
