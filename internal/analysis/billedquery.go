package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Billedquery enforces the query-billing invariant that makes DUO's
// query-efficiency numbers measurable: inside the attack path (packages
// .../internal/core and .../internal/attack), every victim
// Retrieve/RetrieveErr/RetrieveBatch call must be billed against the query
// budget. Concretely, the innermost function issuing the call must
// increment a budget counter (an identifier or field whose name contains
// "queries") lexically before the call — the `queries++` /
// `telQueries.Inc()` pattern of SparseQuery's retrieveIDs wrapper.
// Evaluation-time queries outside the budget (metrics like AP@m) carry
// //duolint:allow billedquery annotations, which doubles as an inventory
// of every unbilled victim touchpoint.
var Billedquery = &Analyzer{
	Name: "billedquery",
	Doc:  "victim Retrieve/RetrieveBatch calls in the attack path must be budget-billed in the issuing function",
	Run:  runBilledquery,
}

// billedMethods are the victim query entry points.
var billedMethods = map[string]bool{
	"Retrieve":       true,
	"RetrieveErr":    true,
	"RetrieveBatch":  true,
	"RetrieveTraced": true,
}

func runBilledquery(p *Pass) {
	// The invariant binds the attack path only; retrieval engines bill
	// internally and other packages never hold a victim.
	if !pathMatches(p.Path, "core", "attack") {
		return
	}
	for _, f := range p.Files {
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			var billingPos []token.Pos
			type queryCall struct {
				pos  token.Pos
				name string
			}
			var calls []queryCall
			inspectShallow(body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.IncDecStmt:
					if st.Tok == token.INC && nameMentionsQueries(st.X) {
						billingPos = append(billingPos, st.Pos())
					}
				case *ast.AssignStmt:
					// Only an increment counts as billing — `queries := 0`
					// initializes the meter, it does not charge it.
					if st.Tok != token.ADD_ASSIGN {
						return true
					}
					for _, lhs := range st.Lhs {
						if nameMentionsQueries(lhs) {
							billingPos = append(billingPos, st.Pos())
							break
						}
					}
				case *ast.CallExpr:
					sel, ok := st.Fun.(*ast.SelectorExpr)
					if !ok || !billedMethods[sel.Sel.Name] {
						return true
					}
					if pkgNamePath(p.Info, sel.X) != "" {
						return true // package function, not a victim method
					}
					calls = append(calls, queryCall{pos: st.Pos(), name: sel.Sel.Name})
				}
				return true
			})
			for _, c := range calls {
				billed := false
				for _, bp := range billingPos {
					if bp < c.pos {
						billed = true
						break
					}
				}
				if !billed {
					p.Reportf(c.pos, "victim %s call is not budget-billed in this function; increment the query budget before issuing it", c.name)
				}
			}
		})
	}
}

// nameMentionsQueries reports whether the assignment target is an
// identifier or field whose name contains "queries" (the budget counter
// naming convention: queries, telQueries, numQueries, ...).
func nameMentionsQueries(x ast.Expr) bool {
	var name string
	switch e := x.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "queries")
}
