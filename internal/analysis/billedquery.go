package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Billedquery enforces the query-billing invariant that makes DUO's
// query-efficiency numbers measurable: inside the attack path (packages
// .../internal/core and .../internal/attack), every victim
// Retrieve/RetrieveErr/RetrieveBatch call must be billed against the query
// budget. The check is CFG-grade: the issuing function must increment a
// budget counter (an identifier or field whose name contains "queries")
// on EVERY control-flow path from function entry to the call — the
// `queries++` / `telQueries.Inc()` pattern of SparseQuery's retrieveIDs
// wrapper. Billing split across both arms of a branch satisfies the rule
// (the lexical predecessor check this replaces could not see that);
// billing only one arm does not. Evaluation-time queries outside the
// budget (metrics like AP@m) carry //duolint:allow billedquery
// annotations, which doubles as an inventory of every unbilled victim
// touchpoint.
var Billedquery = &Analyzer{
	Name: "billedquery",
	Doc:  "victim Retrieve/RetrieveBatch calls in the attack path must be budget-billed on every path in the issuing function",
	Run:  runBilledquery,
}

// billedMethods are the victim query entry points.
var billedMethods = map[string]bool{
	"Retrieve":       true,
	"RetrieveErr":    true,
	"RetrieveBatch":  true,
	"RetrieveTraced": true,
}

func runBilledquery(p *Pass) {
	// The invariant binds the attack path only; retrieval engines bill
	// internally and other packages never hold a victim.
	if !pathMatches(p.Path, "core", "attack") {
		return
	}
	for _, f := range p.Files {
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			g := buildCFG(body)
			verdict := g.allPathsBefore(eventBills, func(ev ast.Node) bool {
				return len(victimCalls(p, ev)) > 0
			})
			for ev, billed := range verdict {
				if billed {
					continue
				}
				for _, c := range victimCalls(p, ev) {
					p.Reportf(c.Pos(), "victim %s call is not budget-billed on every path in this function; increment the query budget before issuing it",
						c.Fun.(*ast.SelectorExpr).Sel.Name)
				}
			}
		})
	}
}

// eventBills reports whether one CFG event charges the query budget: an
// increment or += on a name containing "queries". A plain assignment
// (`queries := 0`) initializes the meter, it does not charge it.
func eventBills(ev ast.Node) bool {
	bills := false
	inspectShallow(ev, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.IncDecStmt:
			if st.Tok == token.INC && nameMentionsQueries(st.X) {
				bills = true
			}
		case *ast.AssignStmt:
			if st.Tok != token.ADD_ASSIGN {
				return true
			}
			for _, lhs := range st.Lhs {
				if nameMentionsQueries(lhs) {
					bills = true
					break
				}
			}
		}
		return !bills
	})
	return bills
}

// victimCalls collects the victim query calls issued by one CFG event
// (method calls named Retrieve/RetrieveErr/RetrieveBatch/RetrieveTraced on
// a value receiver — package-qualified functions are not victims).
func victimCalls(p *Pass, ev ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	inspectShallow(ev, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !billedMethods[sel.Sel.Name] {
			return true
		}
		if pkgNamePath(p.Info, sel.X) != "" {
			return true // package function, not a victim method
		}
		out = append(out, call)
		return true
	})
	return out
}

// nameMentionsQueries reports whether the assignment target is an
// identifier or field whose name contains "queries" (the budget counter
// naming convention: queries, telQueries, numQueries, ...).
func nameMentionsQueries(x ast.Expr) bool {
	var name string
	switch e := x.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "queries")
}
