package analysis

import (
	"go/ast"
)

// This file is the control-flow-graph layer of the analyzer suite. It
// lowers one function body (go/ast, structured control flow only) into
// basic blocks with successor/predecessor edges, and derives the two
// judgments the CFG-grade rules need:
//
//   - dominators (iterative dataflow over reverse post-order), used by
//     billedquery's "the increment must dominate the victim call" check
//     and by the natural-loop detection below;
//   - forward must-analysis (allPathsBefore), the generalization that
//     handles billing split across branches: a fact holds at an event iff
//     EVERY entry path establishes it first.
//
// The builder understands if/for/range/switch/type-switch/select,
// break/continue (labeled and not), fallthrough, and return. goto is
// treated as a path terminator: the repository bans it stylistically, and
// for the must-analyses built on top a missing edge can only make the
// verdict more conservative on the jump's target, never less.
//
// Blocks carry "events": leaf statements plus the condition/init/post
// expressions evaluated in that block, in evaluation order. Nested
// function literals are NOT traversed — a FuncLit body is its own function
// with its own CFG (the per-innermost-function judgment every rule in this
// suite applies).

// cfgBlock is one basic block: events in evaluation order plus edges.
type cfgBlock struct {
	idx    int
	events []ast.Node
	succs  []*cfgBlock
	preds  []*cfgBlock
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

// loopCtx is one enclosing breakable/continuable construct during
// construction.
type loopCtx struct {
	label    string
	breakTo  *cfgBlock
	contTo   *cfgBlock // nil for switch/select (break-only)
	isSwitch bool
}

type cfgBuilder struct {
	g     *cfg
	loops []loopCtx
}

// buildCFG lowers body into a CFG. It never returns nil; an empty body
// yields a single empty entry block.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	entry := b.newBlock()
	b.g.entry = entry
	b.stmtList(body.List, entry)
	b.connect()
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{idx: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// connect fills predecessor lists once every edge exists.
func (b *cfgBuilder) connect() {
	for _, blk := range b.g.blocks {
		for _, s := range blk.succs {
			s.preds = append(s.preds, blk)
		}
	}
}

// stmtList lowers stmts starting in cur and returns the block where
// control continues, or nil when every path left the list (return/branch).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, st := range stmts {
		if cur == nil {
			return nil
		}
		cur = b.stmt(st, "", cur)
	}
	return cur
}

// stmt lowers one statement (label is the enclosing label name, for
// `L: for ...`) and returns the continuation block, nil if control never
// falls through.
func (b *cfgBuilder) stmt(st ast.Stmt, label string, cur *cfgBlock) *cfgBlock {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, s.Label.Name, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.events = append(cur.events, s.Init)
		}
		cur.events = append(cur.events, s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		edge(cur, then)
		if out := b.stmtList(s.Body.List, then); out != nil {
			edge(out, join)
		}
		if s.Else != nil {
			els := b.newBlock()
			edge(cur, els)
			if out := b.stmt(s.Else, "", els); out != nil {
				edge(out, join)
			}
		} else {
			edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.events = append(cur.events, s.Init)
		}
		header := b.newBlock()
		edge(cur, header)
		if s.Cond != nil {
			header.events = append(header.events, s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			edge(header, exit) // condition false
		}
		body := b.newBlock()
		edge(header, body)
		latch := b.newBlock() // post statement / back edge source
		if s.Post != nil {
			latch.events = append(latch.events, s.Post)
		}
		edge(latch, header)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: exit, contTo: latch})
		if out := b.stmtList(s.Body.List, body); out != nil {
			edge(out, latch)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return exit

	case *ast.RangeStmt:
		header := b.newBlock()
		// The ranged expression and the per-iteration key/value binding
		// are header events.
		header.events = append(header.events, s.X)
		edge(cur, header)
		exit := b.newBlock()
		edge(header, exit) // range exhausted
		body := b.newBlock()
		edge(header, body)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: exit, contTo: header})
		if out := b.stmtList(s.Body.List, body); out != nil {
			edge(out, header) // back edge
		}
		b.loops = b.loops[:len(b.loops)-1]
		return exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			init, tag, clauses = sw.Init, sw.Tag, sw.Body.List
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			init, tag, clauses = ts.Init, ts.Assign, ts.Body.List
		}
		if init != nil {
			cur.events = append(cur.events, init)
		}
		if tag != nil {
			cur.events = append(cur.events, tag)
		}
		join := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join, isSwitch: true})
		hasDefault := false
		// Lower clause bodies in order so fallthrough can edge into the
		// next clause's block.
		bodies := make([]*cfgBlock, len(clauses))
		for i := range clauses {
			bodies[i] = b.newBlock()
			edge(cur, bodies[i])
		}
		for i, cl := range clauses {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				bodies[i].events = append(bodies[i].events, e)
			}
			out := b.stmtList(cc.Body, bodies[i])
			if out == nil {
				continue
			}
			if ft := endsInFallthrough(cc.Body); ft && i+1 < len(bodies) {
				edge(out, bodies[i+1])
			} else {
				edge(out, join)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		if !hasDefault {
			edge(cur, join) // no clause matched
		}
		return join

	case *ast.SelectStmt:
		join := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join, isSwitch: true})
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			body := b.newBlock()
			edge(cur, body)
			if cc.Comm != nil {
				body.events = append(body.events, cc.Comm)
			}
			if out := b.stmtList(cc.Body, body); out != nil {
				edge(out, join)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		return join

	case *ast.BranchStmt:
		return b.branch(s, cur)

	case *ast.ReturnStmt:
		cur.events = append(cur.events, s)
		return nil

	default:
		// Leaf statement: one event in the current block. This includes
		// Expr/Assign/IncDec/Decl/Defer/Go/Send/Empty statements.
		cur.events = append(cur.events, st)
		return cur
	}
}

// branch resolves break/continue/fallthrough/goto. fallthrough is handled
// by the switch lowering (endsInFallthrough); reaching it here means a
// malformed tree, treat as fallthrough-to-nowhere.
func (b *cfgBuilder) branch(s *ast.BranchStmt, cur *cfgBlock) *cfgBlock {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.loops) - 1; i >= 0; i-- {
			l := b.loops[i]
			if name == "" || l.label == name {
				edge(cur, l.breakTo)
				return nil
			}
		}
	case "continue":
		for i := len(b.loops) - 1; i >= 0; i-- {
			l := b.loops[i]
			if l.isSwitch {
				continue
			}
			if name == "" || l.label == name {
				edge(cur, l.contTo)
				return nil
			}
		}
	}
	// goto (or an unresolved label): path terminator — conservative for
	// every must-analysis built on this graph.
	return nil
}

// endsInFallthrough reports whether a case body ends in a fallthrough.
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// dominators returns idom[i] = immediate dominator block index of block i
// (idom[entry] = entry; unreachable blocks get -1). Cooper/Harvey/Kennedy
// iterative algorithm over reverse post-order.
func (g *cfg) dominators() []int {
	n := len(g.blocks)
	// Reverse post-order.
	order := make([]*cfgBlock, 0, n)
	seen := make([]bool, n)
	var dfs func(*cfgBlock)
	dfs = func(b *cfgBlock) {
		seen[b.idx] = true
		for _, s := range b.succs {
			if !seen[s.idx] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(g.entry)
	// order is post-order; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b.idx] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[g.entry.idx] = g.entry.idx
	intersect := func(a, c int) int {
		for a != c {
			for rpoNum[a] > rpoNum[c] {
				a = idom[a]
			}
			for rpoNum[c] > rpoNum[a] {
				c = idom[c]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == g.entry {
				continue
			}
			newIdom := -1
			for _, p := range b.preds {
				if idom[p.idx] == -1 {
					continue // pred not yet processed / unreachable
				}
				if newIdom == -1 {
					newIdom = p.idx
				} else {
					newIdom = intersect(p.idx, newIdom)
				}
			}
			if newIdom != -1 && idom[b.idx] != newIdom {
				idom[b.idx] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominates reports whether block a dominates block c under idom (every
// path from entry to c passes through a). A block dominates itself.
func dominates(idom []int, a, c int) bool {
	if idom[c] == -1 {
		return false // unreachable: vacuously no judgment
	}
	for {
		if c == a {
			return true
		}
		next := idom[c]
		if next == c {
			return false // reached entry
		}
		c = next
	}
}

// loopBlocks returns the set of block indices inside at least one natural
// loop: for every back edge u→v (v dominates u), the loop is v plus every
// block reaching u without passing v.
func (g *cfg) loopBlocks() map[int]bool {
	idom := g.dominators()
	in := make(map[int]bool)
	for _, u := range g.blocks {
		for _, v := range u.succs {
			if !dominates(idom, v.idx, u.idx) {
				continue // not a back edge
			}
			// Natural loop of back edge u→v.
			if !in[v.idx] {
				in[v.idx] = true
			}
			stack := []*cfgBlock{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if in[b.idx] && b != u {
					continue
				}
				if b.idx == v.idx {
					continue
				}
				if !in[b.idx] {
					in[b.idx] = true
					for _, p := range b.preds {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	return in
}

// allPathsBefore runs the forward must-analysis billedquery needs: it
// returns, for every event that `consumes` matches, whether EVERY path
// from entry reaches it only after an event matching `establishes`. Events
// within a block are ordered; establishing and consuming in the same event
// counts as NOT established (Go statements cannot both bill and query).
// The verdict map is keyed by the consuming event node.
func (g *cfg) allPathsBefore(establishes, consumes func(ast.Node) bool) map[ast.Node]bool {
	n := len(g.blocks)
	// in[b] = true iff the fact holds on entry to b along every path.
	// Must-analysis: initialize optimistically (true) everywhere except
	// entry, iterate to a fixpoint of IN[b] = AND over preds of OUT[p].
	in := make([]bool, n)
	out := make([]bool, n)
	for i := range in {
		in[i], out[i] = true, true
	}
	in[g.entry.idx] = false

	blockOut := func(b *cfgBlock) bool {
		state := in[b.idx]
		for _, ev := range b.events {
			if establishes(ev) {
				state = true
			}
		}
		return state
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.blocks {
			if b != g.entry {
				s := true
				if len(b.preds) == 0 {
					s = false // unreachable from entry: no paths, stay safe
				}
				for _, p := range b.preds {
					s = s && out[p.idx]
				}
				if s != in[b.idx] {
					in[b.idx] = s
					changed = true
				}
			}
			if o := blockOut(b); o != out[b.idx] {
				out[b.idx] = o
				changed = true
			}
		}
	}

	verdict := make(map[ast.Node]bool)
	for _, b := range g.blocks {
		state := in[b.idx]
		for _, ev := range b.events {
			if consumes(ev) {
				verdict[ev] = state
			}
			if establishes(ev) {
				state = true
			}
		}
	}
	return verdict
}
