package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a single function declaration and
// returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f(a, b, c int, xs []int, ch chan int) int {\n" + body + "\n}"
	f, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// eventText renders an event node's leading token for matching in tests.
func eventMatches(ev ast.Node, needle string) bool {
	switch n := ev.(type) {
	case *ast.ExprStmt:
		return exprMentions(n.X, needle)
	case *ast.AssignStmt:
		for _, e := range append(append([]ast.Expr{}, n.Lhs...), n.Rhs...) {
			if exprMentions(e, needle) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return exprMentions(n.X, needle)
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			if exprMentions(e, needle) {
				return true
			}
		}
	case ast.Expr:
		return exprMentions(n, needle)
	}
	return false
}

func exprMentions(e ast.Expr, needle string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(id.Name, needle) {
			found = true
		}
		return !found
	})
	return found
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(parseBody(t, "a = 1\nb = 2\nreturn a + b"))
	if len(g.entry.events) != 3 {
		t.Fatalf("entry events = %d, want 3", len(g.entry.events))
	}
	if loops := g.loopBlocks(); len(loops) != 0 {
		t.Fatalf("straight-line code has loop blocks: %v", loops)
	}
}

func TestCFGDominators(t *testing.T) {
	// entry -> then/else -> join: the entry dominates everything; neither
	// arm dominates the join.
	g := buildCFG(parseBody(t, `
a = 0
if a > 0 {
	b = 1
} else {
	b = 2
}
return b`))
	idom := g.dominators()
	var thenIdx, elseIdx, joinIdx = -1, -1, -1
	for _, blk := range g.blocks {
		for _, ev := range blk.events {
			as, ok := ev.(*ast.AssignStmt)
			if ok && len(as.Rhs) == 1 {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
					switch lit.Value {
					case "1":
						thenIdx = blk.idx
					case "2":
						elseIdx = blk.idx
					}
				}
			}
			if _, ok := ev.(*ast.ReturnStmt); ok {
				joinIdx = blk.idx
			}
		}
	}
	if thenIdx < 0 || elseIdx < 0 || joinIdx < 0 {
		t.Fatalf("blocks not found: then=%d else=%d join=%d", thenIdx, elseIdx, joinIdx)
	}
	e := g.entry.idx
	if !dominates(idom, e, thenIdx) || !dominates(idom, e, elseIdx) || !dominates(idom, e, joinIdx) {
		t.Errorf("entry should dominate all blocks")
	}
	if dominates(idom, thenIdx, joinIdx) || dominates(idom, elseIdx, joinIdx) {
		t.Errorf("neither branch arm may dominate the join")
	}
	if idom[joinIdx] != e {
		t.Errorf("join's immediate dominator = %d, want entry %d", idom[joinIdx], e)
	}
}

func TestCFGLoopBlocks(t *testing.T) {
	g := buildCFG(parseBody(t, `
a = 0
for i := 0; i < b; i++ {
	a += i
}
return a`))
	loops := g.loopBlocks()
	if len(loops) == 0 {
		t.Fatalf("for loop produced no loop blocks")
	}
	inLoop := func(needle string) bool {
		for _, blk := range g.blocks {
			if !loops[blk.idx] {
				continue
			}
			for _, ev := range blk.events {
				if eventMatches(ev, needle) {
					return true
				}
			}
		}
		return false
	}
	if !inLoop("i") {
		t.Errorf("loop body/latch events not inside loop blocks")
	}
	// The return after the loop must not be in the loop.
	for _, blk := range g.blocks {
		for _, ev := range blk.events {
			if _, ok := ev.(*ast.ReturnStmt); ok && loops[blk.idx] {
				t.Errorf("return after loop classified as loop block")
			}
		}
	}
}

func TestCFGNestedAndRangeLoops(t *testing.T) {
	g := buildCFG(parseBody(t, `
total := 0
for _, x := range xs {
	for j := 0; j < x; j++ {
		total += j
	}
}
return total`))
	loops := g.loopBlocks()
	found := false
	for _, blk := range g.blocks {
		if !loops[blk.idx] {
			continue
		}
		for _, ev := range blk.events {
			if eventMatches(ev, "total") {
				if _, ok := ev.(*ast.ReturnStmt); !ok {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("inner accumulation not recognized as loop work")
	}
}

// allPaths runs allPathsBefore with establish/consume keyed on identifier
// substrings and returns the verdicts of consuming events in source order.
func allPaths(t *testing.T, body, establish, consume string) []bool {
	t.Helper()
	g := buildCFG(parseBody(t, body))
	verdict := g.allPathsBefore(
		func(ev ast.Node) bool { return eventMatches(ev, establish) },
		func(ev ast.Node) bool { return eventMatches(ev, consume) },
	)
	type kv struct {
		pos token.Pos
		ok  bool
	}
	var ordered []kv
	for ev, ok := range verdict {
		ordered = append(ordered, kv{ev.Pos(), ok})
	}
	for i := range ordered {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].pos < ordered[i].pos {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	out := make([]bool, len(ordered))
	for i, o := range ordered {
		out[i] = o.ok
	}
	return out
}

func TestAllPathsBefore(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []bool
	}{
		{"straight line established", "bill()\nconsume()", []bool{true}},
		{"consume first", "consume()\nbill()", []bool{false}},
		{"one arm only", "if a > 0 { bill() }\nconsume()", []bool{false}},
		{"both arms", "if a > 0 { bill() } else { bill() }\nconsume()", []bool{true}},
		{"switch without default", "switch a {\ncase 0:\n\tbill()\ncase 1:\n\tbill()\n}\nconsume()", []bool{false}},
		{"switch with default", "switch a {\ncase 0:\n\tbill()\ndefault:\n\tbill()\n}\nconsume()", []bool{true}},
		{"zero-trip loop", "for i := 0; i < a; i++ { bill() }\nconsume()", []bool{false}},
		{"bill then loop consume", "bill()\nfor i := 0; i < a; i++ { consume() }", []bool{true}},
		{"consume before bill in loop", "for i := 0; i < a; i++ { consume(); bill() }", []bool{false}},
		{"bill before consume in loop", "for i := 0; i < a; i++ { bill(); consume() }", []bool{true}},
		{"early return guards consume", "if a > 0 { return 0 }\nbill()\nconsume()", []bool{true}},
		{"break skips bill", "for i := 0; i < a; i++ { if i > 2 { break }; bill() }\nconsume()", []bool{false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := allPaths(t, tc.body, "bill", "consume")
			if len(got) != len(tc.want) {
				t.Fatalf("got %d consuming events, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("consume #%d verdict = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}
