package analysis

import (
	"go/ast"
	"go/types"
)

// Detrand enforces the determinism contract's randomness rule (DESIGN.md
// §9): all randomness flows through a seeded *rand.Rand. Any reference to
// a math/rand (or math/rand/v2) top-level sampling function — rand.Intn,
// rand.Float64, rand.Perm, rand.Shuffle, rand.Seed, ... — draws from the
// global, possibly concurrently-shared source and is flagged. Constructors
// (rand.New, rand.NewSource, rand.NewPCG, ...) are fine: they are how the
// seeded generator is built.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "no global math/rand top-level functions; randomness must flow through a seeded *rand.Rand",
	Run:  runDetrand,
}

// detrandAllowed are math/rand package-level functions that do not sample
// from the global source.
var detrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *rand.Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDetrand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := pkgNamePath(p.Info, sel.X)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Type and constant references (rand.Rand, rand.Source) are
			// not randomness; only package-level functions sample the
			// global source. When type info resolved the selector, trust
			// it; otherwise fall back to the name-based judgment.
			if obj, ok := p.Info.Uses[sel.Sel]; ok {
				if _, isFunc := obj.(*types.Func); !isFunc {
					return true
				}
			}
			if detrandAllowed[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "reference to global %s.%s; route randomness through a seeded *rand.Rand", pathBase(path), sel.Sel.Name)
			return true
		})
	}
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
