package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floateq flags ==/!= between floating-point operands in non-test code.
// Exact float equality between computed values is almost always a
// rounding-order bug waiting to happen — and under the determinism
// contract (DESIGN.md §9) any tolerance-free comparison that "works" only
// because evaluation order is pinned is a trap for the next refactor. Two
// idioms are exempt: comparison against an exact constant zero (the
// sentinel/support-test pattern — a float is exactly 0.0 iff it was never
// perturbed) and the x != x NaN test. Intentional exact comparisons
// elsewhere carry //duolint:allow floateq annotations.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= between float operands (exact-zero sentinel tests and x != x NaN checks exempt)",
	Run:  runFloateq,
}

func runFloateq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(p.Info, be.X) && !isFloatExpr(p.Info, be.Y) {
				return true
			}
			if isZeroConst(p.Info, be.X) || isZeroConst(p.Info, be.Y) {
				return true
			}
			// x != x / x == x is the canonical NaN test.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "float %s comparison; use a tolerance or //duolint:allow floateq with the exactness argument", be.Op)
			return true
		})
	}
}

// isFloatExpr reports whether x's static type is a floating-point type.
func isFloatExpr(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether x is a compile-time numeric constant equal
// to zero.
func isZeroConst(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
