package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Gobsymmetry guards the wire-compatibility contract of the distributed
// retrieval protocol (DESIGN.md §12): every struct type this package
// passes to gob's Encoder.Encode or Decoder.Decode is a wire type whose
// layout is an implicit cross-process ABI. For each wire type declared in
// the package, the rule requires
//
//   - every field to be exported — gob silently drops unexported fields,
//     which decodes as zero values on the far side with no error; and
//   - a sibling _test.go file that mentions the type by name and builds
//     both a gob.NewEncoder and a gob.NewDecoder — evidence of a
//     round-trip test pinning the type's wire behavior (wire_test.go's
//     gobRoundTrip pattern).
//
// The test-file scan is syntactic on purpose: it runs without type-checking
// the test sources, so the rule stays cheap and dependency-free.
var Gobsymmetry = &Analyzer{
	Name: "gobsymmetry",
	Doc:  "gob wire types must be fully exported and covered by a sibling encode+decode round-trip test",
	Run:  runGobsymmetry,
}

func runGobsymmetry(p *Pass) {
	wire := gobWireTypes(p)
	if len(wire) == 0 {
		return
	}
	evidence := testEvidence(p.Dir)

	// Report in declaration order for stable output.
	names := make([]string, 0, len(wire))
	for n := range wire {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return wire[names[i]].pos < wire[names[j]].pos })

	for _, name := range names {
		wt := wire[name]
		if st, ok := wt.obj.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if f := st.Field(i); !f.Exported() {
					p.Reportf(f.Pos(), "gob wire type %s has unexported field %s, which gob silently drops on the wire", name, f.Name())
				}
			}
		}
		if evidence == nil {
			// No readable test files at all: every wire type is untested.
			p.Reportf(wt.pos, "gob wire type %s has no sibling _test.go round-trip coverage", name)
			continue
		}
		if !evidence.roundTrips || !evidence.mentions[name] {
			p.Reportf(wt.pos, "gob wire type %s is not covered by a sibling round-trip test (want a _test.go naming it and using both gob.NewEncoder and gob.NewDecoder)", name)
		}
	}
}

// wireType is one struct type observed crossing a gob boundary.
type wireType struct {
	obj *types.TypeName
	pos token.Pos
}

// gobWireTypes finds every named struct type, declared in this package,
// that is passed to (*gob.Encoder).Encode or (*gob.Decoder).Decode.
func gobWireTypes(p *Pass) map[string]wireType {
	out := make(map[string]wireType)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			if method != "Encode" && method != "Decode" {
				return true
			}
			recv := p.Info.TypeOf(sel.X)
			switch namedDeclPath(recv) {
			case "encoding/gob":
			default:
				return true
			}
			arg := call.Args[0]
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				arg = u.X
			}
			t := p.Info.TypeOf(arg)
			if t == nil {
				return true
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != p.Path {
				return true // declared elsewhere; its home package owns the contract
			}
			if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
				return true
			}
			if _, seen := out[obj.Name()]; !seen {
				out[obj.Name()] = wireType{obj: obj, pos: obj.Pos()}
			}
			return true
		})
	}
	return out
}

// gobEvidence is what the package's test files prove: which identifiers
// they mention, and whether they exercise a full encode+decode cycle.
type gobEvidence struct {
	mentions   map[string]bool
	newEncoder bool
	newDecoder bool
	roundTrips bool
}

// testEvidence parses the package directory's _test.go files (syntax only)
// and collects round-trip evidence. Returns nil when the directory cannot
// be read or holds no test files.
func testEvidence(dir string) *gobEvidence {
	if dir == "" {
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	ev := &gobEvidence{mentions: make(map[string]bool)}
	found := false
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		found = true
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				ev.mentions[x.Name] = true
			case *ast.SelectorExpr:
				if id, ok := x.X.(*ast.Ident); ok && id.Name == "gob" {
					switch x.Sel.Name {
					case "NewEncoder":
						ev.newEncoder = true
					case "NewDecoder":
						ev.newDecoder = true
					}
				}
			}
			return true
		})
	}
	if !found {
		return nil
	}
	ev.roundTrips = ev.newEncoder && ev.newDecoder
	return ev
}
