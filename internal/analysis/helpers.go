package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgNamePath resolves x to an imported package path when x is an
// identifier naming a package (e.g. the "rand" in rand.Intn); otherwise "".
func pkgNamePath(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// namedDeclPath returns the declaring package path of t's named type,
// unwrapping pointers; "" for unnamed/builtin types.
func namedDeclPath(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// pathMatches reports whether a package import path is, or ends with a
// path element equal to, one of the targets. It lets rules scoped to real
// packages ("duo/internal/core") also fire on fixture packages whose path
// ends in ".../core".
func pathMatches(path string, targets ...string) bool {
	for _, t := range targets {
		if path == t || strings.HasSuffix(path, "/"+t) {
			return true
		}
	}
	return false
}

// funcBodies visits every function body in the file — declarations and
// literals — calling fn with the body and a key identifying the innermost
// enclosing function (the *ast.FuncDecl or *ast.FuncLit node itself).
func funcBodies(f *ast.File, fn func(enclosing ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			if d.Body != nil {
				fn(d, d.Body)
			}
		}
		return true
	})
}

// inspectShallow walks the subtree under root that belongs to the
// enclosing function itself, NOT descending into nested function literals.
// Used by rules whose judgment is per-innermost-function (e.g. billing
// must happen in the same function that issues the query).
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}
