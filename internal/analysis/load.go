package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("duo/internal/core").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checker's package object.
	Types *types.Package
	// Info is the populated expression/object table.
	Info *types.Info
	// TypeErrors collects type-checker errors (tolerated: analysis is
	// best-effort on the parts of the package that did check).
	TypeErrors []error
}

// Loader parses and type-checks packages of a single module (or of a
// fixture tree) using only the standard library. Standard-library imports
// are resolved from GOROOT source via go/importer; imports inside the
// module are loaded recursively from source; anything else degrades to an
// empty placeholder package so analysis never hard-fails on an unresolved
// import.
type Loader struct {
	// Fset is shared by every file the loader touches.
	Fset *token.FileSet

	root    string // module root directory (absolute)
	modPath string // module path; "" for fixture trees
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
	stubs   map[string]*types.Package
}

// NewLoader finds the enclosing module of dir (by walking up to go.mod)
// and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			modPath := modulePath(data)
			if modPath == "" {
				return nil, fmt.Errorf("analysis: no module path in %s/go.mod", root)
			}
			return newLoader(root, modPath), nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
}

// NewFixtureLoader returns a loader rooted at a plain directory tree (no
// go.mod): every import path that names a subdirectory of root resolves
// there, so fixture packages can import each other by relative-to-root
// paths.
func NewFixtureLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	return newLoader(abs, ""), nil
}

func newLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		stubs:   make(map[string]*types.Package),
	}
}

// Root returns the loader's module (or fixture-tree) root directory.
func (l *Loader) Root() string { return l.root }

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load resolves the given patterns relative to base (absolute or relative
// to the loader root if empty) and loads each matched package. A pattern
// is either a directory ("./cmd/duolint", "internal/core") or a recursive
// "dir/..." walk that skips testdata, vendor, and hidden directories.
func (l *Loader) Load(base string, patterns ...string) ([]*Package, error) {
	if base == "" {
		base = l.root
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		} else if pat == "..." {
			rec, pat = true, "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		dir = filepath.Clean(dir)
		if !rec {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walking %s: %w", dir, err)
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir contains at least one non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute directory inside the root to its import
// path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	rel = filepath.ToSlash(rel)
	switch {
	case rel == ".":
		if l.modPath != "" {
			return l.modPath
		}
		return "."
	case l.modPath != "":
		return l.modPath + "/" + rel
	default:
		return rel
	}
}

// dirForImport maps an import path to a directory inside the root, or ""
// when the path does not belong to the module/fixture tree.
func (l *Loader) dirForImport(path string) string {
	if l.modPath != "" {
		if path == l.modPath {
			return l.root
		}
		if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
			return filepath.Join(l.root, filepath.FromSlash(rest))
		}
		return ""
	}
	// Fixture tree: any path naming an existing subdirectory resolves.
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if hasGoFiles(dir) {
		return dir
	}
	return ""
}

// Import implements types.Importer: module-internal packages load from
// source, everything else (the standard library) comes from GOROOT source,
// degrading to an empty placeholder on failure so a single unresolvable
// import cannot abort the whole analysis.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirForImport(path); dir != "" {
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	return l.stub(path), nil
}

// stub returns (creating once) an empty, complete placeholder package so
// type-checking can continue past an unresolvable import.
func (l *Loader) stub(path string) *types.Package {
	if p, ok := l.stubs[path]; ok {
		return p
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	l.stubs[path] = p
	return p
}

// loadDir parses and type-checks the package in dir (cached by import
// path). Parse errors are fatal; type errors are collected and tolerated.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a useful error beyond what Error collected; the
	// returned *types.Package is valid (if incomplete) even on type errors.
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	return pkg, nil
}

// goFileNames lists dir's buildable non-test Go files (build-tag aware via
// go/build), sorted for deterministic load order.
func goFileNames(dir string) ([]string, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, err
		}
		// MultiplePackageError and friends: fall back to every non-test
		// .go file so the analyzer still sees the code.
		entries, rerr := os.ReadDir(dir)
		if rerr != nil {
			return nil, rerr
		}
		var names []string
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		return names, nil
	}
	names := append(append([]string(nil), bp.GoFiles...), bp.CgoFiles...)
	sort.Strings(names)
	return names, nil
}
