package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Mapiter flags the map-order nondeterminism hazard of the determinism
// contract (DESIGN.md §9): a `range` over a map whose body builds ordered
// output — appends to a slice or concatenates onto a string — without a
// subsequent sort in the same block. Go's map iteration order is
// randomized per run, so such output differs run to run and corrupts any
// bitwise-reproducibility guarantee. Aggregations (sums, counts, writes
// into another map) are order-insensitive and not flagged; a sort call
// after the loop (package sort/slices, or any function whose name contains
// "sort") discharges the hazard.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc:  "range over a map must not build ordered output without a subsequent sort",
	Run:  runMapiter,
}

func runMapiter(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, st := range block.List {
				rs, ok := st.(*ast.RangeStmt)
				if !ok || !isMapType(p.Info, rs.X) {
					continue
				}
				hazard := orderedOutputHazard(p, rs)
				if hazard == "" {
					continue
				}
				if sortFollows(block.List[i+1:]) {
					continue
				}
				p.Reportf(rs.Pos(), "range over map %s without a subsequent sort; map iteration order is nondeterministic", hazard)
			}
			return true
		})
	}
}

// isMapType reports whether x's static type is (or is named with
// underlying) a map.
func isMapType(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderedOutputHazard scans the loop body (not nested function literals)
// for statements that build order-sensitive output; it returns a short
// description of the first hazard found, or "".
//
// Two shapes count: appending to a slice (the list's element order leaks
// map order) and `+=` accumulation into a variable declared OUTSIDE the
// loop whose type makes the result order-sensitive — string concatenation,
// or float addition, whose rounding is not associative so the accumulated
// bits depend on visit order. Integer sums and per-iteration locals are
// order-insensitive and not flagged.
func orderedOutputHazard(p *Pass, rs *ast.RangeStmt) string {
	hazard := ""
	inspectShallow(rs.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// x = append(x, ...) — order-sensitive slice build.
		for _, rhs := range as.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					hazard = "appends to a slice"
					return false
				}
			}
		}
		if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 &&
			crossesIterations(p, as.Lhs[0], rs) && orderSensitiveSum(p, as.Lhs[0]) {
			hazard = "accumulates order-sensitively (string/float +=)"
			return false
		}
		return true
	})
	return hazard
}

// crossesIterations reports whether the assignment target names a variable
// declared before the range statement, i.e. one that accumulates across
// map iterations rather than being reset inside the body.
func crossesIterations(p *Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return true // field/index target: assume it outlives the loop
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos()
}

// orderSensitiveSum reports whether += on this target depends on operand
// order: string concatenation, or non-associative float addition.
func orderSensitiveSum(p *Pass, lhs ast.Expr) bool {
	t := p.Info.TypeOf(lhs)
	if t == nil {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsString|types.IsFloat|types.IsComplex) != 0
}

// sortFollows reports whether any statement after the loop in the same
// block performs a sort: a call into package sort/slices, or any call
// whose function name contains "sort".
func sortFollows(rest []ast.Stmt) bool {
	found := false
	for _, st := range rest {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
					found = true
				}
				if strings.Contains(strings.ToLower(fun.Sel.Name), "sort") {
					found = true
				}
			case *ast.Ident:
				if strings.Contains(strings.ToLower(fun.Name), "sort") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
