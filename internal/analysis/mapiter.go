package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Mapiter flags the map-order nondeterminism hazards of the determinism
// contract (DESIGN.md §9). A `range` over a map must not:
//
//   - build ordered output — append to a slice or concatenate onto a
//     string — without a subsequent sort in the same block (a call into
//     package sort/slices, or any function whose name contains "sort",
//     discharges the hazard);
//   - let the iteration pick escape — return the range key/value from
//     inside the loop, or assign it to a named result — without a
//     key-equality guard. `if k == want { return v }` is deterministic
//     (map keys are unique); returning under any other condition selects
//     whichever matching entry the randomized iteration order reaches
//     first.
//
// Go's map iteration order is randomized per run, so both shapes differ
// run to run and corrupt any bitwise-reproducibility guarantee.
// Aggregations (sums, counts, writes into another map) are
// order-insensitive and not flagged.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc:  "range over a map must not build ordered output without a sort or leak the iteration pick without a key guard",
	Run:  runMapiter,
}

func runMapiter(p *Pass) {
	for _, f := range p.Files {
		funcBodies(f, func(enclosing ast.Node, body *ast.BlockStmt) {
			results := namedResults(p, enclosing)
			inspectShallow(body, func(n ast.Node) bool {
				block, ok := n.(*ast.BlockStmt)
				if !ok {
					return true
				}
				for i, st := range block.List {
					rs, ok := st.(*ast.RangeStmt)
					if !ok || !isMapType(p.Info, rs.X) {
						continue
					}
					if hazard := orderedOutputHazard(p, rs); hazard != "" && !sortFollows(block.List[i+1:]) {
						p.Reportf(rs.Pos(), "range over map %s without a subsequent sort; map iteration order is nondeterministic", hazard)
					}
					escapeHazards(p, rs, results)
				}
				return true
			})
		})
	}
}

// namedResults collects the named result variables of the enclosing
// function, the targets an escaping map-range pick can hide behind.
func namedResults(p *Pass, enclosing ast.Node) map[types.Object]bool {
	var ft *ast.FuncType
	switch fn := enclosing.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	}
	if ft == nil || ft.Results == nil {
		return nil
	}
	out := make(map[types.Object]bool)
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// escapeHazards flags map-range key/value escapes from inside the loop
// body: a return whose results mention the range variables, or an
// assignment of them to a named result — unless the escape sits under a
// key-equality guard (keys are unique, so `if k == want` pins the pick).
func escapeHazards(p *Pass, rs *ast.RangeStmt, results map[types.Object]bool) {
	keyObj := rangeVarObj(p, rs.Key)
	valObj := rangeVarObj(p, rs.Value)
	if keyObj == nil && valObj == nil {
		return
	}
	mentionsRangeVar := func(e ast.Expr) string {
		name := ""
		ast.Inspect(e, func(n ast.Node) bool {
			if name != "" {
				return false
			}
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && (obj == keyObj || obj == valObj) {
					name = id.Name
					return false
				}
			}
			return true
		})
		return name
	}
	keyGuard := func(cond ast.Expr) bool {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if found {
				return false
			}
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if id, ok := side.(*ast.Ident); ok && keyObj != nil && p.Info.Uses[id] == keyObj {
					found = true
				}
			}
			return !found
		})
		return found
	}
	var walk func(st ast.Stmt, guarded bool)
	walkList := func(list []ast.Stmt, guarded bool) {
		for _, st := range list {
			walk(st, guarded)
		}
	}
	walk = func(st ast.Stmt, guarded bool) {
		switch s := st.(type) {
		case nil:
		case *ast.BlockStmt:
			walkList(s.List, guarded)
		case *ast.LabeledStmt:
			walk(s.Stmt, guarded)
		case *ast.IfStmt:
			walk(s.Body, guarded || keyGuard(s.Cond))
			walk(s.Else, guarded)
		case *ast.ForStmt:
			walk(s.Body, guarded)
		case *ast.RangeStmt:
			walk(s.Body, guarded)
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					walkList(cc.Body, guarded)
				}
			}
		case *ast.ReturnStmt:
			if guarded {
				return
			}
			for _, res := range s.Results {
				if name := mentionsRangeVar(res); name != "" {
					p.Reportf(s.Pos(), "map-range variable %q returned from inside the loop without a key-equality guard; map iteration order is nondeterministic", name)
					return
				}
			}
		case *ast.AssignStmt:
			if guarded || len(results) == 0 {
				return
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !results[p.Info.Uses[id]] {
					continue
				}
				rhs := s.Rhs[0]
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				if name := mentionsRangeVar(rhs); name != "" {
					p.Reportf(s.Pos(), "map-range variable %q assigned to named result %q without a key-equality guard; map iteration order is nondeterministic", name, id.Name)
					return
				}
			}
		}
	}
	walk(rs.Body, false)
}

// rangeVarObj resolves a range key/value expression to its variable
// object; nil for blanks and non-identifiers.
func rangeVarObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// isMapType reports whether x's static type is (or is named with
// underlying) a map.
func isMapType(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderedOutputHazard scans the loop body (not nested function literals)
// for statements that build order-sensitive output; it returns a short
// description of the first hazard found, or "".
//
// Two shapes count: appending to a slice (the list's element order leaks
// map order) and `+=` accumulation into a variable declared OUTSIDE the
// loop whose type makes the result order-sensitive — string concatenation,
// or float addition, whose rounding is not associative so the accumulated
// bits depend on visit order. Integer sums and per-iteration locals are
// order-insensitive and not flagged.
func orderedOutputHazard(p *Pass, rs *ast.RangeStmt) string {
	hazard := ""
	inspectShallow(rs.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// x = append(x, ...) — order-sensitive slice build.
		for _, rhs := range as.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					hazard = "appends to a slice"
					return false
				}
			}
		}
		if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 &&
			crossesIterations(p, as.Lhs[0], rs) && orderSensitiveSum(p, as.Lhs[0]) {
			hazard = "accumulates order-sensitively (string/float +=)"
			return false
		}
		return true
	})
	return hazard
}

// crossesIterations reports whether the assignment target names a variable
// declared before the range statement, i.e. one that accumulates across
// map iterations rather than being reset inside the body.
func crossesIterations(p *Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return true // field/index target: assume it outlives the loop
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos()
}

// orderSensitiveSum reports whether += on this target depends on operand
// order: string concatenation, or non-associative float addition.
func orderSensitiveSum(p *Pass, lhs ast.Expr) bool {
	t := p.Info.TypeOf(lhs)
	if t == nil {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsString|types.IsFloat|types.IsComplex) != 0
}

// sortFollows reports whether any statement after the loop in the same
// block performs a sort: a call into package sort/slices, or any call
// whose function name contains "sort".
func sortFollows(rest []ast.Stmt) bool {
	found := false
	for _, st := range rest {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
					found = true
				}
				if strings.Contains(strings.ToLower(fun.Sel.Name), "sort") {
					found = true
				}
			case *ast.Ident:
				if strings.Contains(strings.ToLower(fun.Name), "sort") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
