package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DirectiveRule is the pseudo-rule under which directive hygiene findings
// (malformed or unused //duolint:allow comments) are reported. It cannot
// itself be suppressed by a directive.
const DirectiveRule = "directive"

// directive is one parsed //duolint:allow comment.
type directive struct {
	file   string
	line   int
	rules  []string
	reason string
	used   bool
}

const directivePrefix = "//duolint:allow"

// parseDirectives scans a file's comments for //duolint:allow directives.
// A well-formed directive is
//
//	//duolint:allow rule[,rule...] reason text
//
// and suppresses matching findings on its own line (trailing comment) or
// on the line immediately below (standalone comment above the offending
// statement). Malformed directives — unknown rule, missing reason — are
// reported under the "directive" pseudo-rule.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool, report func(Diagnostic)) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //duolint:allowance — not ours
			}
			fields := strings.Fields(rest)
			bad := func(msg string) {
				report(Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column, Rule: DirectiveRule, Message: msg})
			}
			if len(fields) == 0 {
				bad("malformed //duolint:allow: missing rule name")
				continue
			}
			rules := strings.Split(fields[0], ",")
			ok := true
			for _, r := range rules {
				if !known[r] {
					bad("unknown rule \"" + r + "\" in //duolint:allow (known: " + knownList(known) + ")")
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if len(fields) < 2 {
				bad("//duolint:allow " + fields[0] + " needs a reason")
				continue
			}
			out = append(out, &directive{
				file:   pos.Filename,
				line:   pos.Line,
				rules:  rules,
				reason: strings.Join(fields[1:], " "),
			})
		}
	}
	return out
}

// knownList renders the sorted known-rule names for error messages.
func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// covers reports whether the directive suppresses a finding of the given
// rule at file:line.
func (d *directive) covers(diag Diagnostic) bool {
	if diag.Rule == DirectiveRule || diag.File != d.file {
		return false
	}
	if diag.Line != d.line && diag.Line != d.line+1 {
		return false
	}
	for _, r := range d.rules {
		if r == diag.Rule {
			return true
		}
	}
	return false
}

// Run executes the given analyzers over every package, applies
// //duolint:allow suppression, reports directive hygiene findings, and
// returns the surviving diagnostics in stable (file, line, col, rule)
// order. knownRules should name every rule that exists (the full registry)
// so a directive for a temporarily disabled rule is not "unknown"; the
// unused-directive check applies only to directives whose rules are all
// enabled in this run.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, knownRules map[string]bool) []Diagnostic {
	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, runPackage(fset, pkg, analyzers, knownRules, enabled)...)
	}
	sortDiagnostics(all)
	return all
}

func runPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, known, enabled map[string]bool) []Diagnostic {
	var kept []Diagnostic
	keep := func(d Diagnostic) { kept = append(kept, d) }

	var directives []*directive
	for _, f := range pkg.Files {
		directives = append(directives, parseDirectives(fset, f, known, keep)...)
	}

	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:   fset,
			Path:   pkg.Path,
			Dir:    pkg.Dir,
			Files:  pkg.Files,
			Pkg:    pkg.Types,
			Info:   pkg.Info,
			rule:   a.Name,
			report: func(d Diagnostic) { raw = append(raw, d) },
		}
		a.Run(pass)
	}

	for _, d := range raw {
		d.fill()
		suppressed := false
		for _, dir := range directives {
			if dir.covers(d) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	// An unused directive is itself a finding: stale annotations would
	// otherwise silently grant future violations a free pass. Only checked
	// when every rule the directive names ran in this invocation.
	for _, dir := range directives {
		if dir.used {
			continue
		}
		allEnabled := true
		for _, r := range dir.rules {
			if !enabled[r] {
				allEnabled = false
				break
			}
		}
		if !allEnabled {
			continue
		}
		kept = append(kept, Diagnostic{
			File:    dir.file,
			Line:    dir.line,
			Col:     1,
			Rule:    DirectiveRule,
			Message: "unused //duolint:allow " + strings.Join(dir.rules, ",") + " (nothing to suppress here — remove it)",
		})
	}
	return kept
}
