package analysis

import (
	"go/ast"
	"go/types"
)

// Telemetryro enforces the write-only telemetry rule (DESIGN.md §10):
// outside internal/telemetry itself, nothing recorded by an instrument may
// feed back into a computation. It flags, in any if/for/switch condition
// (including the init statement):
//
//   - a direct read — a method call on a telemetry-declared type
//     (Counter.Value, Gauge.Value, Histogram.Stats, Registry.Snapshot,
//     ...) or a field read off a telemetry-declared struct
//     (snapshot.Counters[...]);
//   - a def-use chain — a local variable assigned (directly or through
//     further locals) from such a read and later used in the condition.
//     The taint judgment is per innermost function and flow-insensitive: a
//     local that ever held telemetry state may not decide a branch later
//     in the same function. Taint does not cross a call boundary (the
//     error from encoding a snapshot is not telemetry state), and
//     resolving an instrument handle (Registry.Counter & co) is a write
//     capability, not a read.
//
// Telemetry may be exported, serialized, and displayed — it must never
// decide a branch, because then enabling or disabling a registry could
// change a result bit.
//
// The observability plane itself is exempt alongside the telemetry
// package: the SLO engine (internal/telemetry/slo) and the duostat CLI
// (cmd/duostat) exist to read telemetry and decide things about it —
// burn thresholds, render diffs — and none of their decisions feed back
// into a serving or attack computation. The rule protects result bits,
// not dashboards.
var Telemetryro = &Analyzer{
	Name: "telemetryro",
	Doc:  "telemetry reads must not feed branch conditions outside the telemetry/observability packages (instruments are write-only)",
	Run:  runTelemetryro,
}

func runTelemetryro(p *Pass) {
	// The telemetry package necessarily reads its own state; the SLO
	// engine and duostat are pure consumers on the observability side of
	// the read-only boundary (see the Analyzer doc above).
	if pathMatches(p.Path, "internal/telemetry", "telemetry",
		"internal/telemetry/slo", "cmd/duostat") {
		return
	}
	for _, f := range p.Files {
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			tainted := taintedLocals(p, body)
			inspectShallow(body, func(n ast.Node) bool {
				var init ast.Stmt
				var conds []ast.Expr
				switch st := n.(type) {
				case *ast.IfStmt:
					init, conds = st.Init, []ast.Expr{st.Cond}
				case *ast.ForStmt:
					init = st.Init
					if st.Cond != nil {
						conds = []ast.Expr{st.Cond}
					}
				case *ast.SwitchStmt:
					init = st.Init
					if st.Tag != nil {
						conds = []ast.Expr{st.Tag}
					}
				default:
					return true
				}
				direct := 0
				if init != nil {
					ast.Inspect(init, func(m ast.Node) bool { return checkTelemetryRead(p, m, &direct) })
				}
				for _, cond := range conds {
					ast.Inspect(cond, func(m ast.Node) bool { return checkTelemetryRead(p, m, &direct) })
				}
				if direct > 0 {
					return true // already reported at the read itself
				}
				for _, cond := range conds {
					checkTaintedUse(p, cond, tainted)
				}
				return true
			})
		})
	}
}

// checkTelemetryRead reports a finding when n reads telemetry state:
// a method call on, or a field selected from, a type declared in the
// telemetry package. Pointer identity tests (tel == nil) don't read state
// and are not flagged. Returns false once reported to avoid duplicate
// findings on sub-expressions.
func checkTelemetryRead(p *Pass, n ast.Node, reported *int) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	base := p.Info.TypeOf(sel.X)
	if !isTelemetryType(base) {
		return true
	}
	p.Reportf(sel.Pos(), "telemetry read %s.%s feeds a branch condition; instruments are write-only (DESIGN.md §10)",
		types.ExprString(sel.X), sel.Sel.Name)
	*reported++
	return false
}

// checkTaintedUse reports the first identifier in cond whose object carries
// telemetry taint.
func checkTaintedUse(p *Pass, cond ast.Expr, tainted map[types.Object]string) {
	done := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if done {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		src, isTainted := tainted[obj]
		if !isTainted {
			return true
		}
		done = true
		p.Reportf(id.Pos(), "telemetry read %s feeds a branch condition through local %q; instruments are write-only (DESIGN.md §10)",
			src, id.Name)
		return false
	})
}

// taintedLocals computes the def-use taint set of one function body: every
// local assigned — directly or transitively through other locals — from a
// telemetry read, mapped to a description of the originating read. The
// analysis is flow-insensitive (taint is never washed by reassignment) and
// per innermost function (closures are judged separately).
func taintedLocals(p *Pass, body *ast.BlockStmt) map[types.Object]string {
	tainted := make(map[types.Object]string)
	// exprSource returns the description of the telemetry read (or tainted
	// local) the expression draws from, "" if clean.
	exprSource := func(e ast.Expr) string {
		src := ""
		ast.Inspect(e, func(n ast.Node) bool {
			if src != "" {
				return false
			}
			switch m := n.(type) {
			case *ast.CallExpr:
				// A call taints its result only when it reads telemetry
				// DATA: a method on a telemetry type whose result is not
				// itself an instrument handle. Registry.Counter & co merely
				// resolve a name to a writable instrument, and the result
				// of an unrelated call never carries its arguments' taint —
				// an error from encoding a snapshot is not telemetry state.
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok &&
					isTelemetryType(p.Info.TypeOf(sel.X)) &&
					!isInstrumentHandle(p.Info.TypeOf(m)) {
					src = types.ExprString(sel.X) + "." + sel.Sel.Name
				}
				return false
			case *ast.SelectorExpr:
				if isTelemetryType(p.Info.TypeOf(m.X)) {
					src = types.ExprString(m.X) + "." + m.Sel.Name
					return false
				}
			case *ast.Ident:
				if s, ok := tainted[p.Info.Uses[m]]; ok {
					src = s
					return false
				}
			case *ast.FuncLit:
				return false
			}
			return true
		})
		return src
	}
	taint := func(lhs ast.Expr, src string) bool {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return false
		}
		if _, seen := tainted[obj]; seen {
			return false
		}
		tainted[obj] = src
		return true
	}
	for changed := true; changed; {
		changed = false
		inspectShallow(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, rhs := range st.Rhs {
						if src := exprSource(rhs); src != "" && taint(st.Lhs[i], src) {
							changed = true
						}
					}
					return true
				}
				// Tuple assignment: one tainted source taints every target.
				for _, rhs := range st.Rhs {
					if src := exprSource(rhs); src != "" {
						for _, lhs := range st.Lhs {
							if taint(lhs, src) {
								changed = true
							}
						}
						break
					}
				}
			case *ast.ValueSpec:
				for i, v := range st.Values {
					src := exprSource(v)
					if src == "" {
						continue
					}
					if len(st.Values) == len(st.Names) {
						if taint(st.Names[i], src) {
							changed = true
						}
					} else {
						for _, name := range st.Names {
							if taint(name, src) {
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return tainted
}

// isTelemetryType reports whether t is declared in a telemetry package.
func isTelemetryType(t types.Type) bool {
	path := namedDeclPath(t)
	return path != "" && pathMatches(path, "internal/telemetry", "telemetry")
}

// isInstrumentHandle reports whether t is a pointer to a telemetry type —
// the shape of a resolved instrument (Counter, Gauge, Histogram, Ring,
// Registry). Handles are write targets, not data: holding one taints
// nothing. Telemetry VALUE types (Snapshot, Stats) are data and do taint.
func isInstrumentHandle(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isTelemetryType(ptr.Elem())
}
