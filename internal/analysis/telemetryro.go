package analysis

import (
	"go/ast"
	"go/types"
)

// Telemetryro enforces the write-only telemetry rule (DESIGN.md §10):
// outside internal/telemetry itself, nothing recorded by an instrument may
// feed back into a computation. Concretely it flags, in any if/for/switch
// condition (including the init statement), a method call on a
// telemetry-declared type (Counter.Value, Gauge.Value, Histogram.Stats,
// Registry.Snapshot, ...) or a field read off a telemetry-declared struct
// (snapshot.Counters[...]). Telemetry may be exported, serialized, and
// displayed — it must never decide a branch, because then enabling or
// disabling a registry could change a result bit.
var Telemetryro = &Analyzer{
	Name: "telemetryro",
	Doc:  "telemetry reads must not feed branch conditions outside internal/telemetry (instruments are write-only)",
	Run:  runTelemetryro,
}

func runTelemetryro(p *Pass) {
	// The telemetry package itself necessarily reads its own state.
	if pathMatches(p.Path, "internal/telemetry", "telemetry") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var init ast.Stmt
			var conds []ast.Expr
			switch st := n.(type) {
			case *ast.IfStmt:
				init, conds = st.Init, []ast.Expr{st.Cond}
			case *ast.ForStmt:
				init = st.Init
				if st.Cond != nil {
					conds = []ast.Expr{st.Cond}
				}
			case *ast.SwitchStmt:
				init = st.Init
				if st.Tag != nil {
					conds = []ast.Expr{st.Tag}
				}
			default:
				return true
			}
			if init != nil {
				ast.Inspect(init, func(m ast.Node) bool { return checkTelemetryRead(p, m) })
			}
			for _, cond := range conds {
				ast.Inspect(cond, func(m ast.Node) bool { return checkTelemetryRead(p, m) })
			}
			return true
		})
	}
}

// checkTelemetryRead reports a finding when n reads telemetry state:
// a method call on, or a field selected from, a type declared in the
// telemetry package. Pointer identity tests (tel == nil) don't read state
// and are not flagged. Returns false once reported to avoid duplicate
// findings on sub-expressions.
func checkTelemetryRead(p *Pass, n ast.Node) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	base := p.Info.TypeOf(sel.X)
	if !isTelemetryType(base) {
		return true
	}
	p.Reportf(sel.Pos(), "telemetry read %s.%s feeds a branch condition; instruments are write-only (DESIGN.md §10)",
		types.ExprString(sel.X), sel.Sel.Name)
	return false
}

// isTelemetryType reports whether t is declared in a telemetry package.
func isTelemetryType(t types.Type) bool {
	path := namedDeclPath(t)
	return path != "" && pathMatches(path, "internal/telemetry", "telemetry")
}
