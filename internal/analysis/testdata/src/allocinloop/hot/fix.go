// Package hot exercises the allocinloop rule: per-iteration heap
// allocations inside loops reachable from a //duolint:hot entry point are
// findings — make/new, slice and map composite literals, &T{} literals,
// growing append, capturing closures, interface boxing at call sites, and
// string<->[]byte conversions — while the sync.Pool scratch idiom
// (len/cap-guarded grow-once makes, appends onto reslices, 3-arg makes, or
// pool checkouts) is discharged. Hotness propagates to same-package
// callees; functions not reachable from a hot entry are never flagged.
package hot

import "sync"

type item struct {
	id   int
	dist float64
}

var pool = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}

var exported any

// scan is a hot entry point: only its loops are hot, so the setup
// allocations before the loop are fine.
//
//duolint:hot
func scan(feats [][]float64, q []float64, names []string) float64 {
	hdr := make([]float64, 8) // outside any loop: not flagged
	_ = hdr
	total := 0.0
	var grown []int
	for i, f := range feats {
		buf := make([]float64, len(f)) // want `\[allocinloop\] make allocates on every iteration of a hot loop \(hot path: scan\)`
		_ = buf
		grown = append(grown, i)       // want `\[allocinloop\] growing append allocates on every iteration of a hot loop \(hot path: scan\)`
		weights := []float64{0.5, 0.5} // want `\[allocinloop\] \[\]float64 slice literal allocates on every iteration of a hot loop \(hot path: scan\)`
		_ = weights
		seen := map[int]bool{} // want `\[allocinloop\] map\[int\]bool map literal allocates on every iteration of a hot loop \(hot path: scan\)`
		_ = seen
		it := &item{id: i} // want `\[allocinloop\] &item composite literal allocates on every iteration of a hot loop \(hot path: scan\)`
		_ = it
		get := func() float64 { return total } // want `\[allocinloop\] closure capturing "total" allocates on every iteration of a hot loop \(hot path: scan\)`
		_ = get
		emit(total)             // want `\[allocinloop\] interface boxing of float64 argument allocates on every iteration of a hot loop \(hot path: scan\)`
		raw := []byte(names[i]) // want `\[allocinloop\] \[\]byte conversion allocates on every iteration of a hot loop \(hot path: scan\)`
		_ = raw
		total += dot(f, q)
	}
	val := item{id: 1} // value struct literal is stack-allocated: not flagged
	_ = val
	return total
}

// dot is reached from scan's loop, so its whole body is hot — including
// straight-line statements outside its own loops.
func dot(a, b []float64) float64 {
	acc := new(float64) // want `\[allocinloop\] new allocates on every iteration of a hot loop \(hot path: scan\)`
	for i := range a {
		*acc += a[i] * b[i]
	}
	return *acc
}

// emit is also propagated hot; its body stays clean (assigning an
// interface value to an interface variable does not box again).
func emit(v any) {
	exported = v
}

// discharges shows every recognized scratch pattern staying clean.
//
//duolint:hot
func discharges(feats [][]float64, scratch []float64) float64 {
	total := 0.0
	res := scratch[:0]
	sized := make([]float64, 0, len(feats))
	for _, f := range feats {
		n := len(f)
		if cap(scratch) < n {
			scratch = make([]float64, n) // grow-once under a cap() guard
		}
		res = append(res, total)   // append onto a reslice definition
		sized = append(sized, 0.0) // append onto a 3-arg make
		bufp := pool.Get().(*[]float64)
		buf := (*bufp)[:0]
		buf = append(buf, f...) // append onto a pool checkout
		total += buf[0] + res[0]
		*bufp = buf
		pool.Put(bufp)
		double := func(x float64) float64 { return x * 2 } // captures nothing: static func
		total = double(total)
		spill := []int{n} //duolint:allow allocinloop demonstrates an accepted per-iteration allocation
		_ = spill
	}
	return total
}

// cold is not annotated and not reachable from a hot entry: its loop may
// allocate freely.
func cold(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
		tmp := make([]int, i)
		_ = tmp
	}
	return out
}
