// Package core exercises the billedquery rule inside an attack-path
// package (the path suffix "core" matches the rule's scope): victim query
// calls must be preceded, in the same function, by a budget increment.
package core

type victim interface {
	Retrieve(q string, m int) []string
	RetrieveErr(q string, m int) ([]string, error)
	RetrieveBatch(qs []string, m int) [][]string
	RetrieveTraced(tc any, q string, m int) ([]string, error)
}

func positiveUnbilled(v victim) []string {
	return v.Retrieve("q", 5) // want `\[billedquery\] victim Retrieve call is not budget-billed`
}

func positiveInitIsNotBilling(v victim) []string {
	queries := 0 // initializing the meter does not charge it
	_ = queries
	return v.RetrieveBatch(nil, 5)[0] // want `\[billedquery\] victim RetrieveBatch call is not budget-billed`
}

func positiveClosureScope(v victim) func() []string {
	queries := 0
	queries++ // billing in the outer function does not license the closure
	_ = queries
	return func() []string {
		return v.Retrieve("q", 5) // want `\[billedquery\] victim Retrieve call is not budget-billed`
	}
}

func negativeBilled(v victim) ([]string, int) {
	queries := 0
	queries++
	return v.Retrieve("q", 5), queries
}

func negativeBilledBatch(v victim) ([][]string, int) {
	queries := 0
	queries += 2
	return v.RetrieveBatch(nil, 5), queries
}

func negativeBilledErr(v victim) ([]string, error) {
	telQueries := 0
	telQueries++
	_ = telQueries
	return v.RetrieveErr("q", 5)
}

func positiveUnbilledTraced(v victim) ([]string, error) {
	return v.RetrieveTraced(nil, "q", 5) // want `\[billedquery\] victim RetrieveTraced call is not budget-billed`
}

func negativeBilledTraced(v victim) ([]string, error) {
	queries := 0
	queries++
	_ = queries
	return v.RetrieveTraced(nil, "q", 5)
}

// oracle mirrors the optimizer harness shape: the victim and the billing
// meter live on the same struct, and billing charges a field, not a local.
type oracle struct {
	victim  victim
	queries int
}

func (o *oracle) negativeBilledField(q string) []string {
	o.queries++
	return o.victim.Retrieve(q, 5)
}

func (o *oracle) negativeBilledFieldPair(qs []string) [][]string {
	o.queries += 2
	return o.victim.RetrieveBatch(qs, 5)
}

func (o *oracle) positiveUnbilledField(q string) []string {
	return o.victim.Retrieve(q, 5) // want `\[billedquery\] victim Retrieve call is not budget-billed`
}

func (o *oracle) positiveRefundIsNotBilling(q string) []string {
	o.queries--                    // a shed refund decrements; it never licenses a new call
	return o.victim.Retrieve(q, 5) // want `\[billedquery\] victim Retrieve call is not budget-billed`
}

// The cases below separate the CFG dominance check from the lexical
// predecessor heuristic it replaced: billing must reach the call on EVERY
// path, not merely appear earlier in the source.

func positiveOneArmBilling(v victim, flag bool) []string {
	queries := 0
	if flag {
		queries++ // lexically before the call, but the else path never bills
	}
	_ = queries
	return v.Retrieve("q", 5) // want `\[billedquery\] victim Retrieve call is not budget-billed`
}

func negativeBothArmsBilling(v victim, flag bool) []string {
	queries := 0
	if flag {
		queries++
	} else {
		queries += 1
	}
	_ = queries
	return v.Retrieve("q", 5) // every path through the branch bills first
}

func positiveSwitchNoDefault(v victim, mode int) []string {
	queries := 0
	switch mode {
	case 0:
		queries++
	case 1:
		queries++
	}
	_ = queries
	return v.Retrieve("q", 5) // want `\[billedquery\] victim Retrieve call is not budget-billed`
}

func negativeSwitchWithDefault(v victim, mode int) []string {
	queries := 0
	switch mode {
	case 0:
		queries++
	default:
		queries += 1
	}
	_ = queries
	return v.Retrieve("q", 5) // all three paths (case, default) bill
}

func positiveZeroTripLoopBilling(v victim, qs []string) []string {
	queries := 0
	for range qs {
		queries++ // a zero-trip loop leaves the meter untouched
	}
	_ = queries
	return v.Retrieve("q", 5) // want `\[billedquery\] victim Retrieve call is not budget-billed`
}

func negativeBilledInLoop(v victim, qs []string) [][]string {
	queries := 0
	var out [][]string
	for _, q := range qs {
		queries++
		out = append(out, v.Retrieve(q, 5))
	}
	_ = queries
	return out
}
