// Package other is the billedquery negative scope fixture: it is not an
// attack-path package (path suffix is neither "core" nor "attack"), so
// unbilled victim calls are fine here — retrieval engines and evaluation
// harnesses bill internally or not at all.
package other

type victim interface {
	Retrieve(q string, m int) []string
}

func free(v victim) []string {
	return v.Retrieve("q", 1)
}
