// Package fix exercises the detrand rule: global math/rand references are
// findings; seeded *rand.Rand usage and constructors are not.
package fix

import "math/rand"

var source = rand.NewSource(1) // constructor: allowed
var rng = rand.New(source)     // constructor: allowed

func positives() {
	_ = rand.Intn(10)     // want `\[detrand\] reference to global rand.Intn`
	_ = rand.Float64()    // want `\[detrand\] reference to global rand.Float64`
	_ = rand.Perm(4)      // want `\[detrand\] reference to global rand.Perm`
	sampler := rand.Int63 // want `\[detrand\] reference to global rand.Int63`
	_ = sampler
	rand.Shuffle(3, func(i, j int) {}) // want `\[detrand\] reference to global rand.Shuffle`
}

func negatives() float64 {
	_ = rng.Intn(10)
	_ = rng.Perm(4)
	var r *rand.Rand // type reference, not a sampling function
	_ = r
	z := rand.NewZipf(rng, 1.1, 1, 100) // constructor taking the seeded rng
	_ = z.Uint64()
	return rng.Float64()
}
