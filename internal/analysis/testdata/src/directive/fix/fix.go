// Package fix exercises the //duolint:allow directive machinery:
// suppression on the same line and from the line above, the
// unused-directive finding, and the malformed-directive findings.
package fix

import "math/rand"

// Same-line suppression: the detrand finding here must not surface.
var _ = rand.Intn(3) //duolint:allow detrand fixture: same-line suppression

// Line-above suppression: the directive covers the next line.
//
//duolint:allow detrand fixture: suppression from the line above
var _ = rand.Float64()

// A directive with nothing to suppress is itself a finding.
//
//duolint:allow detrand nothing here violates; want `\[directive\] unused //duolint:allow detrand`
var _ = 1

// Unknown rule names are findings.
//
//duolint:allow bogusrule some reason; want `\[directive\] unknown rule "bogusrule"`
var _ = 2

// A reason is mandatory: annotations double as an audit trail.
var _ = 3 /* want `\[directive\] //duolint:allow detrand needs a reason` */ //duolint:allow detrand

// A bare directive is malformed.
var _ = 4 /* want `\[directive\] malformed //duolint:allow: missing rule name` */ //duolint:allow
