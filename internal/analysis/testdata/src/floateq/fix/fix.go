// Package fix exercises the floateq rule: exact ==/!= between computed
// floats is a finding; exact-zero sentinels, NaN self-tests, integer
// comparisons, and ordered comparisons are not.
package fix

func positives(a, b float64, xs []float32) bool {
	if a == b { // want `\[floateq\] float == comparison`
		return true
	}
	if xs[0] != xs[1] { // want `\[floateq\] float != comparison`
		return false
	}
	return a != b+1 // want `\[floateq\] float != comparison`
}

func positiveConst(a float64) bool {
	return a == 0.5 // want `\[floateq\] float == comparison`
}

func negatives(a, b float64, n int) bool {
	if a == 0 { // exact-zero sentinel: a float is 0.0 iff never perturbed
		return false
	}
	if b != 0.0 {
		return true
	}
	if a != a { // NaN self-test
		return true
	}
	if n == 3 { // integers compare exactly
		return false
	}
	return a < b
}
