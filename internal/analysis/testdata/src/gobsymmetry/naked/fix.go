// Package naked exercises the gobsymmetry rule in a package with no test
// files at all: every wire type is flagged as untested.
package naked

import (
	"encoding/gob"
	"io"
)

// Payload crosses the gob boundary with no test file anywhere nearby.
type Payload struct { // want `\[gobsymmetry\] gob wire type Payload has no sibling _test.go round-trip coverage`
	N int
}

func write(w io.Writer, p Payload) error {
	return gob.NewEncoder(w).Encode(p)
}
