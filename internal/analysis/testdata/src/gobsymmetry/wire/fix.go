// Package wire exercises the gobsymmetry rule with a sibling test file
// (fix_test.go) that round-trips some — not all — of the wire types.
package wire

import (
	"bytes"
	"encoding/gob"
)

// Covered is round-tripped by fix_test.go: no findings.
type Covered struct {
	A int
	B string
}

// Uncovered crosses the gob boundary but no test names it.
type Uncovered struct { // want `\[gobsymmetry\] gob wire type Uncovered is not covered by a sibling round-trip test`
	A int
}

// Leaky is covered by the test but smuggles an unexported field, which gob
// drops silently.
type Leaky struct {
	A int
	b int // want `\[gobsymmetry\] gob wire type Leaky has unexported field b`
}

// alias is not a struct passed to gob; only the struct types above count.
type alias int

func encodeAll() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(Covered{A: 1, B: "x"}); err != nil {
		return nil, err
	}
	if err := enc.Encode(&Uncovered{A: 2}); err != nil {
		return nil, err
	}
	if err := enc.Encode(Leaky{A: 3}); err != nil {
		return nil, err
	}
	if err := enc.Encode(alias(4)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCovered(b []byte) (Covered, error) {
	var c Covered
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c)
	return c, err
}
