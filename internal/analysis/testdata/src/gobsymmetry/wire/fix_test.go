package wire

// This file is evidence for the gobsymmetry analyzer, which scans sibling
// _test.go files syntactically: it names Covered and Leaky and uses both
// halves of a gob round trip. Uncovered is deliberately absent.

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestCoveredRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Covered{A: 1, B: "x"}); err != nil {
		t.Fatal(err)
	}
	var got Covered
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	var leak Leaky
	_ = leak
}
