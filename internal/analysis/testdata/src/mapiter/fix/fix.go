// Package fix exercises the mapiter rule: building ordered output from a
// map range without sorting afterwards is a finding; sorted builds and
// order-insensitive aggregations are not.
package fix

import "sort"

func positiveAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `\[mapiter\] range over map appends to a slice`
		out = append(out, k)
	}
	return out
}

func positiveFloatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `\[mapiter\] range over map accumulates order-sensitively`
		sum += v
	}
	return sum
}

func positiveConcat(m map[string]string) string {
	s := ""
	for _, v := range m { // want `\[mapiter\] range over map accumulates order-sensitively`
		s += v
	}
	return s
}

func negativeSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func negativeHelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(ks []string) { sort.Strings(ks) }

func negativeIntSum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Escape hazards: the iteration pick leaving the loop through a return or
// a named result is a finding unless pinned by a key-equality guard.

func positiveReturnFirstKey(m map[string]int) string {
	for k := range m {
		return k // want `\[mapiter\] map-range variable "k" returned from inside the loop without a key-equality guard`
	}
	return ""
}

func positiveReturnStructuralGuard(m map[string]string) string {
	for k, v := range m {
		if len(k) > 3 { // several keys can satisfy a structural test
			return v // want `\[mapiter\] map-range variable "v" returned from inside the loop without a key-equality guard`
		}
	}
	return ""
}

func positiveNamedResultPick(m map[string]int) (first string) {
	for k := range m {
		first = k // want `\[mapiter\] map-range variable "k" assigned to named result "first" without a key-equality guard`
		break
	}
	return first
}

func negativeKeyEqualityLookup(m map[string]int, want string) int {
	for k, v := range m {
		if k == want { // keys are unique: this pick is deterministic
			return v
		}
	}
	return 0
}

func negativeGuardedNamedResult(m map[string]int, want string) (hit int) {
	for k, v := range m {
		if k == want {
			hit = v
		}
	}
	return hit
}

func negativeOrdinaryLocalAssign(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best { // max over values: order-insensitive aggregation
			best = v
		}
	}
	return best
}

func negativeLocalFloat(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		t := 0.0 // per-iteration accumulator: never crosses map order
		for _, v := range vs {
			t += v
		}
		out[k] = t
	}
	return out
}
