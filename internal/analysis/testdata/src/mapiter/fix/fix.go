// Package fix exercises the mapiter rule: building ordered output from a
// map range without sorting afterwards is a finding; sorted builds and
// order-insensitive aggregations are not.
package fix

import "sort"

func positiveAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `\[mapiter\] range over map appends to a slice`
		out = append(out, k)
	}
	return out
}

func positiveFloatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `\[mapiter\] range over map accumulates order-sensitively`
		sum += v
	}
	return sum
}

func positiveConcat(m map[string]string) string {
	s := ""
	for _, v := range m { // want `\[mapiter\] range over map accumulates order-sensitively`
		s += v
	}
	return s
}

func negativeSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func negativeHelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(ks []string) { sort.Strings(ks) }

func negativeIntSum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func negativeLocalFloat(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		t := 0.0 // per-iteration accumulator: never crosses map order
		for _, v := range vs {
			t += v
		}
		out[k] = t
	}
	return out
}
