// Package app exercises the telemetryro rule from outside the telemetry
// package: instrument reads feeding if/for/switch conditions (including
// init statements) are findings; writes, straight-line reads for export,
// and nil identity tests are not.
package app

import "telemetryro/telemetry"

func positives(c *telemetry.Counter, s telemetry.Snapshot) int {
	out := 0
	if c.Value() > 0 { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition`
		out++
	}
	for i := int64(0); i < c.Value(); i++ { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition`
		out++
	}
	if s.Counters["q"] > 0 { // want `\[telemetryro\] telemetry read s.Counters feeds a branch condition`
		out++
	}
	switch c.Value() { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition`
	case 0:
		out++
	}
	if v := c.Value(); v > 0 { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition`
		out++
	}
	return out
}

func negatives(c *telemetry.Counter) int64 {
	c.Inc() // writes are the instruments' purpose
	if c == nil {
		return 0 // pointer identity reads no state
	}
	v := c.Value() // straight-line read for export/serialization
	return v
}
