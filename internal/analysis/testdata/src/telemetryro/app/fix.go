// Package app exercises the telemetryro rule from outside the telemetry
// package: instrument reads feeding if/for/switch conditions (including
// init statements) are findings; writes, straight-line reads for export,
// and nil identity tests are not.
package app

import "telemetryro/telemetry"

func positives(c *telemetry.Counter, s telemetry.Snapshot) int {
	out := 0
	if c.Value() > 0 { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition`
		out++
	}
	for i := int64(0); i < c.Value(); i++ { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition`
		out++
	}
	if s.Counters["q"] > 0 { // want `\[telemetryro\] telemetry read s.Counters feeds a branch condition`
		out++
	}
	switch c.Value() { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition`
	case 0:
		out++
	}
	if v := c.Value(); v > 0 { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition`
		out++
	}
	return out
}

func negatives(c *telemetry.Counter) int64 {
	c.Inc() // writes are the instruments' purpose
	if c == nil {
		return 0 // pointer identity reads no state
	}
	v := c.Value() // straight-line read for export/serialization
	return v
}

// Def-use tracking: a local that ever held telemetry state may not decide
// a branch later in the same function, even through further locals.

func positiveLocalTaint(c *telemetry.Counter) int {
	v := c.Value()
	if v > 0 { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition through local "v"`
		return 1
	}
	return 0
}

func positiveTransitiveTaint(c *telemetry.Counter) int64 {
	v := c.Value()
	w := v * 2
	for w > 0 { // want `\[telemetryro\] telemetry read c.Value feeds a branch condition through local "w"`
		w--
	}
	return w
}

func positiveSnapshotFieldTaint(s telemetry.Snapshot) int {
	n := s.Counters["q"]
	switch n { // want `\[telemetryro\] telemetry read s.Counters feeds a branch condition through local "n"`
	case 0:
		return 0
	}
	return 1
}

func negativeTaintedExportOnly(c *telemetry.Counter) (int64, int64) {
	v := c.Value()
	w := v + 1
	return v, w // exported, never branched on
}

func negativeUntaintedBranch(c *telemetry.Counter) int {
	v := c.Value()
	_ = v
	n := 3 // a clean local with the same shape branches freely
	if n > 2 {
		return 1
	}
	return 0
}
