// Package telemetry is a miniature stand-in for the real instrumentation
// package: its path ends in "/telemetry", so the telemetryro rule exempts
// it — the instrument substrate necessarily reads its own state.
package telemetry

// Counter is a toy write/read instrument.
type Counter struct{ v int64 }

// Inc is the write side.
func (c *Counter) Inc() { c.v++ }

// Value is the read side.
func (c *Counter) Value() int64 { return c.v }

// Snapshot is an exported point-in-time view.
type Snapshot struct{ Counters map[string]int64 }

// reset branches on its own state — legal inside the telemetry package.
func (c *Counter) reset() {
	if c.Value() > 0 {
		c.v = 0
	}
}

var _ = (&Counter{}).reset
