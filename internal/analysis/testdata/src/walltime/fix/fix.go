// Package fix exercises the walltime rule: wall-clock observations are
// findings, whether called or captured as injectable defaults; pure time
// arithmetic is not.
package fix

import "time"

type clock struct {
	now   func() time.Time
	sleep func(time.Duration)
}

func positives() clock {
	_ = time.Now()          // want `\[walltime\] wall-clock reference time.Now`
	time.Sleep(time.Second) // want `\[walltime\] wall-clock reference time.Sleep`
	<-time.After(0)         // want `\[walltime\] wall-clock reference time.After`
	return clock{
		now:   time.Now,   // want `\[walltime\] wall-clock reference time.Now`
		sleep: time.Sleep, // want `\[walltime\] wall-clock reference time.Sleep`
	}
}

func negatives(t0, t1 time.Time) time.Duration {
	epoch := time.Unix(0, 0)
	d := 3 * time.Second
	if t1.After(t0) { // method on a value, not the package clock
		d += t1.Sub(t0)
	}
	return d + t0.Sub(epoch)
}
