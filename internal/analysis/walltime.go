package analysis

import (
	"go/ast"
)

// Walltime enforces the clock half of the determinism contract (DESIGN.md
// §9): computation paths never read the wall clock. Any reference to
// time.Now, time.Since, time.Sleep, time.After, time.Tick, time.NewTimer,
// time.NewTicker, or time.AfterFunc — as a call or as a value (the default
// injectable-clock pattern `cfg.Now = time.Now`) — is flagged. The
// legitimate sites (the telemetry stopwatch, TCP deadline arithmetic, the
// breaker/retry/faultinject default-clock constructors, CLI progress
// output) carry //duolint:allow walltime annotations, which doubles as an
// inventory of every place the system can observe real time.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "no wall-clock reads (time.Now/Since/Sleep/...) outside the annotated injectable-clock sites",
	Run:  runWalltime,
}

// walltimeBanned are the time package functions that observe or wait on
// the real clock. Pure arithmetic/parsing (time.Duration, time.Unix,
// time.Parse, time.Date) is deterministic and allowed.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWalltime(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgNamePath(p.Info, sel.X) != "time" || !walltimeBanned[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "wall-clock reference time.%s; inject a clock (and //duolint:allow walltime at the injection default)", sel.Sel.Name)
			return true
		})
	}
}
