// Package attack defines the types shared by every adversarial-example
// attack in this repository (DUO in internal/core and the baselines in
// internal/baseline): the black-box context an attack runs against and the
// outcome record the evaluation harness consumes.
package attack

import (
	"math/rand"

	"duo/internal/metrics"
	"duo/internal/retrieval"
	"duo/internal/telemetry"
	"duo/internal/tensor"
	"duo/internal/trace"
	"duo/internal/video"
)

// Context is everything a black-box attack may touch: the victim's query
// interface, the list length m, and a seeded RNG. Attacks must not reach
// into the victim's model.
type Context struct {
	// Victim answers R^m(·) queries.
	Victim retrieval.Retriever
	// M is the retrieval list length.
	M int
	// Rng drives all attack randomness (deterministic per seed).
	Rng *rand.Rand
	// Telemetry optionally collects write-only attack instrumentation
	// (stage timings, query-budget burn, 𝕋 trajectory); nil — the default —
	// disables it at zero cost. Nothing recorded here ever feeds back into
	// attack math, so enabling telemetry cannot change any result.
	Telemetry *telemetry.Registry
	// Trace optionally records the attack's span tree (attack.run → round
	// → stage → retrieve). Like Telemetry it is write-only and nil — the
	// default — is a zero-cost no-op; with the default logical clock the
	// recorded tree is bitwise reproducible across runs and worker counts.
	Trace *trace.Tracer
}

// Outcome is the result of one attack run on one (v, v_t) pair.
type Outcome struct {
	// Adv is the synthesized adversarial video.
	Adv *video.Video
	// Delta is the effective perturbation Adv − v after pixel clipping.
	Delta *tensor.Tensor
	// Queries is the number of victim queries consumed.
	Queries int
	// Trajectory records the objective 𝕋 after each accepted/rejected
	// query step (Fig. 5); empty for pure transfer attacks.
	Trajectory []float64
}

// Spa returns Σᵢ‖φᵢ‖₀ of the effective perturbation.
func (o *Outcome) Spa() int { return o.Delta.L0() }

// PScore returns the perceptibility score of the effective perturbation.
func (o *Outcome) PScore() float64 { return o.Delta.L1() / float64(o.Delta.Len()) }

// PerturbedFrames returns ‖φ‖₂,₀.
func (o *Outcome) PerturbedFrames() int { return o.Delta.L20() }

// APAtM evaluates the targeted-attack success AP@m between the adversarial
// video's retrieval list and the target's (two victim queries).
func (o *Outcome) APAtM(victim retrieval.Retriever, target *video.Video, m int) float64 {
	advList := retrieval.IDs(victim.Retrieve(o.Adv, m))  //duolint:allow billedquery evaluation-time AP@m measurement, outside the attack's query budget by design
	tgtList := retrieval.IDs(victim.Retrieve(target, m)) //duolint:allow billedquery evaluation-time AP@m measurement, outside the attack's query budget by design
	return metrics.APAtM(advList, tgtList)
}

// NewOutcome assembles an outcome from an original and adversarial video.
func NewOutcome(original, adv *video.Video, queries int, trajectory []float64) *Outcome {
	return &Outcome{
		Adv:        adv,
		Delta:      adv.Data.Sub(original.Data),
		Queries:    queries,
		Trajectory: trajectory,
	}
}
