package attack

import (
	"math"
	"math/rand"
	"testing"

	"duo/internal/retrieval"
	"duo/internal/tensor"
	"duo/internal/video"
)

// stubRetriever returns a fixed list regardless of the query.
type stubRetriever struct{ list []retrieval.Result }

func (s stubRetriever) Retrieve(*video.Video, int) []retrieval.Result { return s.list }

func testVideos() (*video.Video, *video.Video) {
	rng := rand.New(rand.NewSource(1))
	v := video.New(4, 1, 4, 4)
	v.Data.FillUniform(rng, 0, 255)
	v.ID = "orig"
	adv := v.Clone()
	adv.ID = "orig"
	// Perturb 3 elements in 2 frames.
	adv.Data.Set(math.Min(adv.Data.At(0, 0, 0, 0)+30, 255), 0, 0, 0, 0)
	adv.Data.Set(math.Max(adv.Data.At(0, 0, 1, 1)-30, 0), 0, 0, 1, 1)
	adv.Data.Set(math.Min(adv.Data.At(2, 0, 2, 2)+10, 255), 2, 0, 2, 2)
	return v, adv
}

func TestNewOutcomeDelta(t *testing.T) {
	v, adv := testVideos()
	out := NewOutcome(v, adv, 7, []float64{1, 0.5})
	if out.Queries != 7 || len(out.Trajectory) != 2 {
		t.Errorf("metadata lost: %+v", out)
	}
	if got := out.Spa(); got != 3 {
		t.Errorf("Spa = %d, want 3", got)
	}
	if got := out.PerturbedFrames(); got != 2 {
		t.Errorf("PerturbedFrames = %d, want 2", got)
	}
	if out.PScore() <= 0 {
		t.Error("PScore should be positive")
	}
}

func TestOutcomeZeroPerturbation(t *testing.T) {
	v, _ := testVideos()
	out := NewOutcome(v, v.Clone(), 0, nil)
	if out.Spa() != 0 || out.PScore() != 0 || out.PerturbedFrames() != 0 {
		t.Error("clean outcome has nonzero sparsity metrics")
	}
}

func TestOutcomeAPAtM(t *testing.T) {
	v, adv := testVideos()
	out := NewOutcome(v, adv, 0, nil)
	list := []retrieval.Result{{ID: "a"}, {ID: "b"}}
	// Stub returns the same list for adv and target ⇒ AP@m = 1.
	if got := out.APAtM(stubRetriever{list: list}, v, 2); got != 1 {
		t.Errorf("AP@m = %g, want 1", got)
	}
}

func TestContextDeterminism(t *testing.T) {
	a := &Context{Rng: rand.New(rand.NewSource(5))}
	b := &Context{Rng: rand.New(rand.NewSource(5))}
	x := tensor.New(16).FillNormal(a.Rng, 0, 1)
	y := tensor.New(16).FillNormal(b.Rng, 0, 1)
	if !x.Equal(y, 0) {
		t.Error("contexts with the same seed diverge")
	}
}
