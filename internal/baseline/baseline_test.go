package baseline

import (
	"math/rand"
	"sync"
	"testing"

	"duo/internal/attack"
	"duo/internal/core"
	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/nn/losses"
	"duo/internal/retrieval"
	"duo/internal/video"
)

type fixture struct {
	victim *retrieval.Engine
	surr   models.Model
	geom   models.Geometry
	origin *video.Video
	target *video.Video
	m      int
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		c, err := dataset.Generate(dataset.Config{
			Name: "BaseSim", Categories: 4, TrainPerCategory: 6, TestPerCategory: 3,
			Frames: 8, Channels: 3, Height: 12, Width: 12, Seed: 41,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(42))
		g := models.GeometryOf(c.Train[0])
		vm := models.NewI3D(rng, g, 16)
		tc := models.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := models.Train(vm, losses.Triplet{Margin: 0.2}, c.Train, tc); err != nil {
			panic(err)
		}
		sm := models.NewC3D(rand.New(rand.NewSource(43)), g, 16)
		var origin, target *video.Video
		for _, v := range c.Train {
			if origin == nil {
				origin = v
			} else if v.Label != origin.Label {
				target = v
				break
			}
		}
		fix = &fixture{victim: retrieval.NewEngine(vm, c.Train), surr: sm, geom: g, origin: origin, target: target, m: 8}
	})
	return fix
}

func newCtx(f *fixture, seed int64) *attack.Context {
	return &attack.Context{Victim: f.victim, M: f.m, Rng: rand.New(rand.NewSource(seed))}
}

func TestVanillaRespectsBudgets(t *testing.T) {
	f := getFixture(t)
	cfg := VanillaConfig{Spa: 100, Frames: 3, Tau: 30, MaxQueries: 40, Eta: 0.5}
	out, err := RunVanilla(newCtx(f, 1), f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Spa(); got > cfg.Spa {
		t.Errorf("Spa = %d > %d", got, cfg.Spa)
	}
	if got := out.PerturbedFrames(); got > cfg.Frames {
		t.Errorf("frames = %d > %d", got, cfg.Frames)
	}
	if got := out.Delta.LInf(); got > cfg.Tau+1e-9 {
		t.Errorf("‖φ‖∞ = %g > τ", got)
	}
	if out.Queries > cfg.MaxQueries {
		t.Errorf("queries %d > budget", out.Queries)
	}
}

func TestVanillaErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := RunVanilla(newCtx(f, 2), f.origin, f.target, VanillaConfig{Spa: 0, Frames: 1, Tau: 30, MaxQueries: 10}); err == nil {
		t.Error("Spa=0 accepted")
	}
	if _, err := RunVanilla(newCtx(f, 2), f.origin, f.target, VanillaConfig{Spa: 10, Frames: 99, Tau: 30, MaxQueries: 10}); err == nil {
		t.Error("too many frames accepted")
	}
}

func TestVanillaSpaClampsToSupport(t *testing.T) {
	f := getFixture(t)
	// Ask for more pixels than 1 frame holds: must clamp, not fail.
	perFrame := f.origin.Pixels()
	cfg := VanillaConfig{Spa: perFrame * 2, Frames: 1, Tau: 30, MaxQueries: 10, Eta: 0.5}
	out, err := RunVanilla(newCtx(f, 3), f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.PerturbedFrames(); got > 1 {
		t.Errorf("frames = %d, want ≤ 1", got)
	}
}

func TestTIMIDenseAndBounded(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultTIMIConfig()
	cfg.Steps = 4
	out, err := RunTIMI(f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Queries != 0 {
		t.Errorf("TIMI used %d queries, want 0 (pure transfer)", out.Queries)
	}
	if got := out.Delta.LInf(); got > cfg.Epsilon+1e-9 {
		t.Errorf("‖φ‖∞ = %g > ε = %g", got, cfg.Epsilon)
	}
	// Dense: the vast majority of elements must be perturbed.
	if got := out.Spa(); float64(got) < 0.5*float64(out.Delta.Len()) {
		t.Errorf("TIMI Spa = %d of %d, expected dense", got, out.Delta.Len())
	}
	// All frames touched (n = 16 in Table II).
	if got := out.PerturbedFrames(); got != f.origin.Frames() {
		t.Errorf("TIMI frames = %d, want all %d", got, f.origin.Frames())
	}
}

func TestTIMIMovesSurrogateFeatures(t *testing.T) {
	f := getFixture(t)
	out, err := RunTIMI(f.surr, f.origin, f.target, DefaultTIMIConfig())
	if err != nil {
		t.Fatal(err)
	}
	tf := models.Embed(f.surr, f.target)
	before := models.Embed(f.surr, f.origin).SquaredDistance(tf)
	after := models.Embed(f.surr, out.Adv).SquaredDistance(tf)
	if after >= before {
		t.Errorf("TIMI did not reduce surrogate distance: %g → %g", before, after)
	}
}

func TestTIMIErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := RunTIMI(f.surr, f.origin, f.target, TIMIConfig{Epsilon: 0, Steps: 5}); err == nil {
		t.Error("ε=0 accepted")
	}
	if _, err := RunTIMI(f.surr, f.origin, f.target, TIMIConfig{Epsilon: 10, Steps: 0}); err == nil {
		t.Error("steps=0 accepted")
	}
}

func TestHEUNesRespectsBudgets(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultHEUConfig(SelectionSaliency, 120, 3, 30)
	cfg.MaxQueries = 60
	out, err := RunHEU(newCtx(f, 4), f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Spa(); got > cfg.Spa {
		t.Errorf("Spa = %d > %d", got, cfg.Spa)
	}
	if got := out.PerturbedFrames(); got > cfg.Frames {
		t.Errorf("frames = %d > %d", got, cfg.Frames)
	}
	if got := out.Delta.LInf(); got > cfg.Tau+1e-9 {
		t.Errorf("‖φ‖∞ = %g", got)
	}
	if out.Queries > cfg.MaxQueries {
		t.Errorf("queries %d > %d", out.Queries, cfg.MaxQueries)
	}
	if len(out.Trajectory) == 0 {
		t.Error("no trajectory recorded")
	}
}

func TestHEUSimUsesRandomSupport(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultHEUConfig(SelectionRandom, 100, 3, 30)
	cfg.MaxQueries = 40
	a, err := RunHEU(newCtx(f, 5), f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHEU(newCtx(f, 6), f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds ⇒ different random supports (with overwhelming
	// probability), while HEU-Nes supports are seed-independent.
	if a.Delta.Equal(b.Delta, 0) {
		t.Error("random selection produced identical perturbations across seeds")
	}
}

func TestHEUNesSaliencyIsDeterministic(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultHEUConfig(SelectionSaliency, 100, 3, 30)
	cfg.MaxQueries = 30
	a, err := RunHEU(newCtx(f, 7), f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHEU(newCtx(f, 7), f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Adv.Data.Equal(b.Adv.Data, 0) {
		t.Error("same seed produced different HEU-Nes results")
	}
}

func TestHEUErrors(t *testing.T) {
	f := getFixture(t)
	bad := DefaultHEUConfig(SelectionSaliency, 0, 3, 30)
	if _, err := RunHEU(newCtx(f, 8), f.origin, f.target, bad); err == nil {
		t.Error("Spa=0 accepted")
	}
	bad = DefaultHEUConfig(SelectionSaliency, 10, 3, 30)
	bad.Population = 1
	if _, err := RunHEU(newCtx(f, 8), f.origin, f.target, bad); err == nil {
		t.Error("population=1 accepted")
	}
	bad = DefaultHEUConfig(Selection(99), 10, 3, 30)
	if _, err := RunHEU(newCtx(f, 8), f.origin, f.target, bad); err == nil {
		t.Error("unknown selection accepted")
	}
}

func TestBaselinesComparableToDUOSparsity(t *testing.T) {
	// Table II's headline: TIMI's Spa is orders of magnitude above the
	// sparse attacks'.
	f := getFixture(t)
	tcfg := core.DefaultTransferConfig(f.geom)
	vcfg := DefaultVanillaConfig(tcfg)
	vcfg.MaxQueries = 30
	van, err := RunVanilla(newCtx(f, 9), f.origin, f.target, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	timi, err := RunTIMI(f.surr, f.origin, f.target, DefaultTIMIConfig())
	if err != nil {
		t.Fatal(err)
	}
	if timi.Spa() < 10*van.Spa() {
		t.Errorf("expected TIMI (%d) ≫ Vanilla (%d) in Spa", timi.Spa(), van.Spa())
	}
}
