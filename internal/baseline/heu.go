package baseline

import (
	"fmt"
	"math"

	"duo/internal/attack"
	"duo/internal/metrics"
	"duo/internal/retrieval"
	"duo/internal/tensor"
	"duo/internal/video"
)

// Selection picks how HEU chooses its frame/pixel support.
type Selection int

const (
	// SelectionSaliency is HEU-Nes: frames and pixels chosen by the
	// motion-saliency heuristic of [16] ("nature-estimated").
	SelectionSaliency Selection = iota + 1
	// SelectionRandom is HEU-Sim: the random-selection strategy of
	// Vanilla combined with HEU's NES optimizer.
	SelectionRandom
)

// HEUConfig parameterizes the heuristic black-box attacks of Wei et al.
// (AAAI'20), reference [16].
type HEUConfig struct {
	// Selection picks saliency (HEU-Nes) or random (HEU-Sim) support.
	Selection Selection
	// Spa is the pixel budget and Frames the key-frame budget n.
	Spa    int
	Frames int
	// Tau bounds per-element magnitudes.
	Tau float64
	// MaxQueries is the victim query budget; NES spends Population
	// queries per optimization step.
	MaxQueries int
	// Population is the (even) number of NES samples per gradient
	// estimate.
	Population int
	// Sigma is the NES smoothing radius.
	Sigma float64
	// Alpha is the PGD step size.
	Alpha float64
	// Eta is the 𝕋 margin.
	Eta float64
}

// DefaultHEUConfig mirrors DUO's budgets for fair Table II comparison.
func DefaultHEUConfig(sel Selection, spa, frames int, tau float64) HEUConfig {
	return HEUConfig{
		Selection:  sel,
		Spa:        spa,
		Frames:     frames,
		Tau:        tau,
		MaxQueries: 1000,
		Population: 10,
		Sigma:      4,
		Alpha:      tau / 4,
		Eta:        0.5,
	}
}

// RunHEU executes HEU-Nes or HEU-Sim: heuristic support selection followed
// by NES gradient estimation on the black-box victim and signed PGD steps
// restricted to the support.
func RunHEU(ctx *attack.Context, v, vt *video.Video, cfg HEUConfig) (*attack.Outcome, error) {
	if cfg.Spa <= 0 || cfg.Frames <= 0 || cfg.Frames > v.Frames() {
		return nil, fmt.Errorf("baseline: heu: bad budgets (Spa=%d, Frames=%d)", cfg.Spa, cfg.Frames)
	}
	if cfg.Population < 2 {
		return nil, fmt.Errorf("baseline: heu: population %d < 2", cfg.Population)
	}
	if cfg.Selection != SelectionSaliency && cfg.Selection != SelectionRandom {
		return nil, fmt.Errorf("baseline: heu: unknown selection %d", cfg.Selection)
	}

	mask, err := heuMask(ctx, v, cfg)
	if err != nil {
		return nil, err
	}
	support := make([]int, 0, cfg.Spa)
	for i, mv := range mask.Data() {
		if mv != 0 {
			support = append(support, i)
		}
	}

	queries := 0
	retrieveIDs := func(qv *video.Video) []string {
		queries++
		return retrieval.IDs(ctx.Victim.Retrieve(qv, ctx.M))
	}
	origList := retrieveIDs(v)
	targetList := retrieveIDs(vt)
	objective := func(qv *video.Video) float64 {
		return metrics.Objective(metrics.CoOccurrence, retrieveIDs(qv), origList, targetList, cfg.Eta)
	}

	adv := v.Clone()
	tCur := objective(adv)
	trajectory := []float64{tCur}
	half := cfg.Population / 2

	for queries+2*half <= cfg.MaxQueries {
		// NES gradient estimate with antithetic sampling on the support.
		grad := tensor.New(v.Data.Shape()...)
		gd := grad.Data()
		for p := 0; p < half; p++ {
			noise := make([]float64, len(support))
			plus := adv.Clone()
			minus := adv.Clone()
			for j, idx := range support {
				noise[j] = ctx.Rng.NormFloat64()
				plus.Data.Data()[idx] += cfg.Sigma * noise[j]
				minus.Data.Data()[idx] -= cfg.Sigma * noise[j]
			}
			plus.Clip()
			minus.Clip()
			tp := objective(plus)
			tm := objective(minus)
			w := (tp - tm) / (2 * cfg.Sigma * float64(half))
			for j, idx := range support {
				gd[idx] += w * noise[j]
			}
		}
		// The list-valued objective plateaus between rank boundaries; a
		// flat NES estimate carries no direction, so fall back to a random
		// exploratory sign step (as the reference's exploration phase does).
		flat := true
		for _, idx := range support {
			if gd[idx] != 0 {
				flat = false
				break
			}
		}
		if flat {
			for _, idx := range support {
				gd[idx] = ctx.Rng.NormFloat64()
			}
		}
		// Signed PGD step descending 𝕋, restricted to the support.
		for _, idx := range support {
			step := 0.0
			if gd[idx] > 0 {
				step = -cfg.Alpha
			} else if gd[idx] < 0 {
				step = cfg.Alpha
			}
			nv := adv.Data.Data()[idx] + step
			base := v.Data.Data()[idx]
			nv = math.Max(base-cfg.Tau, math.Min(base+cfg.Tau, nv))
			nv = math.Max(video.PixelMin, math.Min(video.PixelMax, nv))
			adv.Data.Data()[idx] = nv
		}
		tCur = objective(adv)
		trajectory = append(trajectory, tCur)
	}
	return attack.NewOutcome(v, adv, queries, trajectory), nil
}

// heuMask selects the attack support: n frames and Spa elements.
func heuMask(ctx *attack.Context, v *video.Video, cfg HEUConfig) (*tensor.Tensor, error) {
	perFrame := v.Data.Len() / v.Frames()
	mask := tensor.New(v.Data.Shape()...)

	var frames []int
	var elementScore []float64 // per element within concatenated frames
	switch cfg.Selection {
	case SelectionSaliency:
		// Motion saliency: per-frame temporal difference energy picks key
		// frames; per-element |Δt| picks pixels ("nature-estimated").
		diffs := make([]float64, v.Frames())
		elementScore = make([]float64, v.Data.Len())
		for f := 0; f < v.Frames(); f++ {
			prev := f - 1
			if prev < 0 {
				prev = f + 1 // first frame compares forward
			}
			cur := v.Data.Slice(f).Data()
			pre := v.Data.Slice(prev).Data()
			sum := 0.0
			for i := range cur {
				d := math.Abs(cur[i] - pre[i])
				elementScore[f*perFrame+i] = d
				sum += d
			}
			diffs[f] = sum
		}
		frames = tensor.TopK(diffs, cfg.Frames)
	case SelectionRandom:
		frames = ctx.Rng.Perm(v.Frames())[:cfg.Frames]
	}

	// Collect candidates within the chosen frames.
	inFrame := make(map[int]bool, len(frames))
	for _, f := range frames {
		inFrame[f] = true
	}
	var candidates []int
	for f := 0; f < v.Frames(); f++ {
		if !inFrame[f] {
			continue
		}
		for i := 0; i < perFrame; i++ {
			candidates = append(candidates, f*perFrame+i)
		}
	}
	k := cfg.Spa
	if k > len(candidates) {
		k = len(candidates)
	}
	if cfg.Selection == SelectionSaliency {
		scores := make([]float64, len(candidates))
		for j, idx := range candidates {
			scores[j] = elementScore[idx]
		}
		for _, j := range tensor.TopK(scores, k) {
			mask.Data()[candidates[j]] = 1
		}
	} else {
		for _, j := range ctx.Rng.Perm(len(candidates))[:k] {
			mask.Data()[candidates[j]] = 1
		}
	}
	return mask, nil
}
