package baseline

import (
	"fmt"
	"math"

	"duo/internal/attack"
	"duo/internal/models"
	"duo/internal/tensor"
	"duo/internal/video"
)

// TIMIConfig parameterizes the translation-invariant momentum-iterative
// transfer attack of Dong et al. (CVPR'19), reference [25].
type TIMIConfig struct {
	// Epsilon is the ℓ∞ budget (10 in Table II — TIMI is dense, so its
	// PScore ≈ ε).
	Epsilon float64
	// Steps is the number of MI-FGSM iterations.
	Steps int
	// Mu is the momentum decay factor (1.0 in the reference).
	Mu float64
	// Kernel is the translation-invariance smoothing kernel half-width;
	// gradients are averaged over a (2·Kernel+1)² spatial window.
	Kernel int
}

// DefaultTIMIConfig mirrors the paper's TIMI settings.
func DefaultTIMIConfig() TIMIConfig {
	return TIMIConfig{Epsilon: 10, Steps: 10, Mu: 1.0, Kernel: 1}
}

// RunTIMI executes TIMI on the surrogate s: a pure transfer attack (zero
// victim queries) that perturbs every pixel of every frame toward the
// target's surrogate features.
func RunTIMI(s models.Model, v, vt *video.Video, cfg TIMIConfig) (*attack.Outcome, error) {
	if cfg.Epsilon <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("baseline: timi: non-positive ε=%g or steps=%d", cfg.Epsilon, cfg.Steps)
	}
	targetFeat := models.Embed(s, vt)
	adv := v.Clone()
	momentum := tensor.New(v.Data.Shape()...)
	alpha := cfg.Epsilon / float64(cfg.Steps)

	for step := 0; step < cfg.Steps; step++ {
		feat, cache := s.Forward(adv.Data)
		diff := feat.Sub(targetFeat)
		grad := s.Backward(cache, diff.Scale(2))
		// Translation invariance: smooth the gradient spatially.
		grad = smoothSpatial(grad, cfg.Kernel)
		// MI: momentum over the L1-normalized gradient.
		l1 := grad.L1()
		if l1 < 1e-12 {
			break
		}
		momentum.ScaleInPlace(cfg.Mu).AddScaled(1/l1, grad)
		// Descend (toward the target) by the sign of the momentum.
		sign := momentum.Apply(func(x float64) float64 {
			if x > 0 {
				return 1
			}
			if x < 0 {
				return -1
			}
			return 0
		})
		adv.Data.AddScaled(-alpha, sign)
		// Project onto the ε-ball around v and the pixel range.
		clampDelta(adv, v, cfg.Epsilon)
	}
	return attack.NewOutcome(v, adv, 0, nil), nil
}

// clampDelta projects adv onto {x : ‖x−v‖∞ ≤ eps} ∩ [PixelMin, PixelMax].
func clampDelta(adv, v *video.Video, eps float64) {
	ad, vd := adv.Data.Data(), v.Data.Data()
	for i := range ad {
		lo := math.Max(vd[i]-eps, video.PixelMin)
		hi := math.Min(vd[i]+eps, video.PixelMax)
		if ad[i] < lo {
			ad[i] = lo
		} else if ad[i] > hi {
			ad[i] = hi
		}
	}
}

// smoothSpatial averages g over a (2k+1)² window within each frame/channel
// plane — the translation-invariant gradient of [25].
func smoothSpatial(g *tensor.Tensor, k int) *tensor.Tensor {
	if k <= 0 {
		return g
	}
	s := g.Shape() // [N, C, H, W]
	N, C, H, W := s[0], s[1], s[2], s[3]
	out := tensor.New(s...)
	gd, od := g.Data(), out.Data()
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			base := (n*C + c) * H * W
			for y := 0; y < H; y++ {
				for x := 0; x < W; x++ {
					sum, cnt := 0.0, 0
					for dy := -k; dy <= k; dy++ {
						yy := y + dy
						if yy < 0 || yy >= H {
							continue
						}
						for dx := -k; dx <= k; dx++ {
							xx := x + dx
							if xx < 0 || xx >= W {
								continue
							}
							sum += gd[base+yy*W+xx]
							cnt++
						}
					}
					od[base+y*W+x] = sum / float64(cnt)
				}
			}
		}
	}
	return out
}
