// Package baseline implements the comparison attacks of §V-B: the Vanilla
// random-selection query attack, the TIMI transferable attack [25], and the
// heuristic black-box attacks HEU-Nes and HEU-Sim [16].
package baseline

import (
	"fmt"

	"duo/internal/attack"
	"duo/internal/core"
	"duo/internal/tensor"
	"duo/internal/video"
)

// VanillaConfig parameterizes the Vanilla attack.
type VanillaConfig struct {
	// Spa is the pixel budget: how many elements may be perturbed.
	Spa int
	// Frames is n: how many randomly chosen frames carry perturbations.
	Frames int
	// Tau bounds the per-element magnitude.
	Tau float64
	// MaxQueries is the query budget for the SimBA stage [53].
	MaxQueries int
	// Eta is the margin in the objective 𝕋.
	Eta float64
}

// DefaultVanillaConfig mirrors DUO's budgets so Table II compares attacks
// at equal sparsity.
func DefaultVanillaConfig(t core.TransferConfig) VanillaConfig {
	return VanillaConfig{Spa: t.K, Frames: t.N, Tau: t.Tau, MaxQueries: 1000, Eta: 0.5}
}

// RunVanilla executes the Vanilla attack: uniformly random frame and pixel
// selection (no prior knowledge) followed by the same SimBA-style query
// attack DUO uses, restricted to the random mask.
func RunVanilla(ctx *attack.Context, v, vt *video.Video, cfg VanillaConfig) (*attack.Outcome, error) {
	if cfg.Spa <= 0 || cfg.Frames <= 0 {
		return nil, fmt.Errorf("baseline: vanilla: non-positive budgets (Spa=%d, Frames=%d)", cfg.Spa, cfg.Frames)
	}
	if cfg.Frames > v.Frames() {
		return nil, fmt.Errorf("baseline: vanilla: n=%d exceeds %d frames", cfg.Frames, v.Frames())
	}

	shape := v.Data.Shape()
	perFrame := v.Data.Len() / v.Frames()

	// Random frame mask.
	frameMask := tensor.New(shape...)
	chosen := ctx.Rng.Perm(v.Frames())[:cfg.Frames]
	for _, f := range chosen {
		frameMask.Slice(f).Fill(1)
	}

	// Random pixel mask inside the chosen frames, exactly Spa elements
	// (clamped to the available support).
	var candidates []int
	for _, f := range chosen {
		for i := 0; i < perFrame; i++ {
			candidates = append(candidates, f*perFrame+i)
		}
	}
	k := cfg.Spa
	if k > len(candidates) {
		k = len(candidates)
	}
	pixelMask := tensor.New(shape...)
	for _, ci := range ctx.Rng.Perm(len(candidates))[:k] {
		pixelMask.Data()[candidates[ci]] = 1
	}

	masks := &core.Masks{Pixel: pixelMask, Frame: frameMask, Theta: tensor.New(shape...)}
	qr, err := core.SparseQuery(ctx, v, vt, masks, core.QueryConfig{
		MaxQueries: cfg.MaxQueries,
		Eta:        cfg.Eta,
		Tau:        cfg.Tau,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: vanilla: %w", err)
	}
	return attack.NewOutcome(v, qr.Adv, qr.Queries, qr.Trajectory), nil
}
