package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"

	"duo/internal/attack"
	"duo/internal/retrieval"
	"duo/internal/tensor"
	"duo/internal/video"
)

// This file pins the steady-state allocation behaviour of the SparseQuery
// harness walk. duolint's allocinloop rule proves the strategy loops clean
// within this package, but the full per-step path crosses into retrieval
// and metrics; this test holds the end-to-end claim — after warm-up, a
// walk step allocates nothing — by showing the malloc count of a round is
// independent of the query budget.

// fixedVictim answers every query with the same pre-built list, so a
// victim round-trip performs zero heap allocations and the harness's own
// per-step behaviour is the only thing the malloc counter can see.
type fixedVictim struct{ rs []retrieval.Result }

func (f *fixedVictim) Retrieve(*video.Video, int) []retrieval.Result { return f.rs }

// allocTestMasks builds a full pixel/frame mask with a 6-element θ support
// over a 2×1×4×4 video.
func allocTestMasks(v *video.Video) *Masks {
	shape := v.Data.Shape()
	pixel := tensor.New(shape...)
	frame := tensor.New(shape...)
	theta := tensor.New(shape...)
	pd, fd := pixel.Data(), frame.Data()
	for i := range pd {
		pd[i], fd[i] = 1, 1
	}
	td := theta.Data()
	for _, idx := range []int{0, 3, 5, 9, 17, 26} {
		td[idx] = 4
	}
	return &Masks{Pixel: pixel, Frame: frame, Theta: theta}
}

// sparseQueryMallocs runs one SparseQuery round against the fixed victim
// (trace and telemetry disabled) and returns the mallocs it performed.
// The caller is responsible for disabling GC around the measurement.
func sparseQueryMallocs(t *testing.T, budget int) uint64 {
	t.Helper()
	v := video.New(2, 1, 4, 4)
	vt := video.New(2, 1, 4, 4)
	masks := allocTestMasks(v)
	rs := make([]retrieval.Result, 8)
	for i := range rs {
		rs[i] = retrieval.Result{ID: fmt.Sprintf("g%d", i), Label: i, Dist: float64(i)}
	}
	ctx := &attack.Context{Victim: &fixedVictim{rs: rs}, M: 8, Rng: rand.New(rand.NewSource(3))}
	cfg := DefaultQueryConfig()
	cfg.MaxQueries = budget
	cfg.Tau = 8

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := SparseQuery(ctx, v, vt, masks, cfg)
	runtime.ReadMemStats(&m1)
	if err != nil {
		t.Fatalf("SparseQuery(budget=%d): %v", budget, err)
	}
	if res.Queries > budget {
		t.Fatalf("SparseQuery overran its budget: %d > %d", res.Queries, budget)
	}
	return m1.Mallocs - m0.Mallocs
}

// TestSparseQueryStepLoopZeroSteadyStateAllocs pins the harness step loop
// at zero marginal allocations: a budget-192 round must malloc exactly as
// much as a budget-64 round, because everything a round allocates —
// oracle, reference copies, candidate pool high-water mark, pre-sized
// trajectory — is warm-up, and the 128 extra steady-state queries must be
// allocation-free (candidate recycling, permInto reuse, pooled membership
// maps, aliased ID projections).
func TestSparseQueryStepLoopZeroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs exact allocation counts")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	_ = sparseQueryMallocs(t, 64) // warm the process-wide pools (metrics membership)
	small := sparseQueryMallocs(t, 64)
	large := sparseQueryMallocs(t, 192)
	if large != small {
		t.Errorf("steady-state walk allocates: %d mallocs at budget 64 vs %d at budget 192 (the 128 extra queries must be allocation-free)",
			small, large)
	}
}
