package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"duo/internal/attack"
	"duo/internal/dataset"
	"duo/internal/metrics"
	"duo/internal/models"
	"duo/internal/nn/losses"
	"duo/internal/retrieval"
	"duo/internal/surrogate"
	"duo/internal/video"
)

// fixture is the shared attack scenario: a trained victim retrieval system,
// a stolen-and-trained surrogate, and the corpus. Built once per test run.
type fixture struct {
	corpus *dataset.Corpus
	victim *retrieval.Engine
	surr   models.Model
	geom   models.Geometry
	origin *video.Video
	target *video.Video
	m      int
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		c, err := dataset.Generate(dataset.Config{
			Name: "CoreSim", Categories: 4, TrainPerCategory: 6, TestPerCategory: 3,
			Frames: 8, Channels: 3, Height: 12, Width: 12, Seed: 31,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(32))
		g := models.GeometryOf(c.Train[0])
		victimModel := models.NewSlowFast(rng, g, 16)
		tc := models.DefaultTrainConfig()
		tc.Epochs = 4
		if _, err := models.Train(victimModel, losses.Triplet{Margin: 0.2}, c.Train, tc); err != nil {
			panic(err)
		}
		eng := retrieval.NewEngine(victimModel, c.Train)

		samples, err := surrogate.Steal(eng, surrogate.CorpusLookup(c.Train), c.Test, surrogate.DefaultStealConfig())
		if err != nil {
			panic(err)
		}
		surr := models.NewC3D(rand.New(rand.NewSource(33)), g, 16)
		if _, err := surrogate.Train(surr, samples, surrogate.DefaultTrainConfig()); err != nil {
			panic(err)
		}

		// Pick an attack pair with distinct labels.
		var origin, target *video.Video
		for _, v := range c.Train {
			if origin == nil {
				origin = v
				continue
			}
			if v.Label != origin.Label {
				target = v
				break
			}
		}
		fix = &fixture{corpus: c, victim: eng, surr: surr, geom: g, origin: origin, target: target, m: 8}
	})
	if fix == nil {
		t.Fatal("fixture build failed")
	}
	return fix
}

func testTransferConfig(g models.Geometry) TransferConfig {
	cfg := DefaultTransferConfig(g)
	cfg.OuterIters = 2
	cfg.ThetaSteps = 8
	return cfg
}

func TestSparseTransferRespectsBudgets(t *testing.T) {
	f := getFixture(t)
	cfg := testTransferConfig(f.geom)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	phi := masks.Compose()
	if got := phi.L0(); got > cfg.K {
		t.Errorf("‖φ‖₀ = %d > k = %d", got, cfg.K)
	}
	if got := phi.L20(); got > cfg.N {
		t.Errorf("‖φ‖₂,₀ = %d > n = %d", got, cfg.N)
	}
	if got := phi.LInf(); got > cfg.Tau+1e-9 {
		t.Errorf("‖φ‖∞ = %g > τ = %g", got, cfg.Tau)
	}
	if got := len(masks.ActiveFrames()); got != cfg.N {
		t.Errorf("active frames = %d, want %d", got, cfg.N)
	}
	// ℐ must have exactly k ones.
	if got := masks.Pixel.L0(); got != cfg.K {
		t.Errorf("1ᵀℐ = %d, want %d", got, cfg.K)
	}
}

func TestSparseTransferMovesTowardTarget(t *testing.T) {
	f := getFixture(t)
	cfg := testTransferConfig(f.geom)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tf := models.Embed(f.surr, f.target)
	before := models.Embed(f.surr, f.origin).SquaredDistance(tf)
	adv := f.origin.Add(masks.Compose())
	after := models.Embed(f.surr, adv).SquaredDistance(tf)
	if after >= before {
		t.Errorf("surrogate feature distance did not shrink: %g → %g", before, after)
	}
}

func TestSparseTransferL2Norm(t *testing.T) {
	f := getFixture(t)
	cfg := testTransferConfig(f.geom)
	cfg.Norm = NormL2
	masks, err := SparseTransfer(f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	phi := masks.Compose()
	// The ℓ2 budget bounds total energy; allow the 0.5-per-element
	// quantization slack on top of the ball radius.
	radius := cfg.Tau * math.Sqrt(float64(cfg.K)) / 2
	slack := 0.5 * math.Sqrt(float64(phi.Len()))
	if got := phi.L2(); got > radius+slack {
		t.Errorf("ℓ2 variant energy %g exceeds radius %g", got, radius)
	}
}

func TestSparseTransferValidation(t *testing.T) {
	f := getFixture(t)
	cases := []func(*TransferConfig){
		func(c *TransferConfig) { c.K = 0 },
		func(c *TransferConfig) { c.K = f.origin.Data.Len() + 1 },
		func(c *TransferConfig) { c.N = 0 },
		func(c *TransferConfig) { c.N = f.origin.Frames() + 1 },
		func(c *TransferConfig) { c.Tau = -1 },
		func(c *TransferConfig) { c.OuterIters = 0 },
	}
	for i, mutate := range cases {
		cfg := testTransferConfig(f.geom)
		mutate(&cfg)
		if _, err := SparseTransfer(f.surr, f.origin, f.target, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Shape mismatch.
	other := video.New(f.origin.Frames()/2, f.origin.Channels(), f.origin.Height(), f.origin.Width())
	if _, err := SparseTransfer(f.surr, f.origin, other, testTransferConfig(f.geom)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func newCtx(f *fixture, seed int64) *attack.Context {
	return &attack.Context{Victim: f.victim, M: f.m, Rng: rand.New(rand.NewSource(seed))}
}

func testQueryConfig() QueryConfig {
	cfg := DefaultQueryConfig()
	cfg.MaxQueries = 60
	// Match the transfer stage's τ so the prior is inside the query
	// stage's budget.
	cfg.Tau = DefaultTransferConfig(models.Geometry{Frames: 8, Channels: 3, Height: 12, Width: 12}).Tau
	return cfg
}

func TestSparseQueryTrajectoryMonotone(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	qr, err := SparseQuery(newCtx(f, 1), f.origin, f.target, masks, testQueryConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(qr.Trajectory); i++ {
		if qr.Trajectory[i] > qr.Trajectory[i-1]+1e-12 {
			t.Fatalf("𝕋 increased at step %d: %g → %g", i, qr.Trajectory[i-1], qr.Trajectory[i])
		}
	}
	if qr.Queries > testQueryConfig().MaxQueries {
		t.Errorf("queries %d exceeded budget %d", qr.Queries, testQueryConfig().MaxQueries)
	}
}

func TestSparseQueryStaysInSupportAndBudget(t *testing.T) {
	f := getFixture(t)
	cfg := testTransferConfig(f.geom)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := SparseQuery(newCtx(f, 2), f.origin, f.target, masks, testQueryConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every element outside ℐ⊙𝓕 must be untouched relative to v + φ₀
	// (SparseQuery explores at most the mask, per Eq. 4 with the
	// degenerate-θ fallback).
	base := f.origin.Add(masks.Compose())
	pm, fm := masks.Pixel.Data(), masks.Frame.Data()
	for i := range pm {
		if pm[i]*fm[i] == 0 && qr.Adv.Data.Data()[i] != base.Data.Data()[i] {
			t.Fatalf("element %d outside the mask was modified", i)
		}
	}
	// τ constraint versus the round's base video.
	delta := qr.Adv.Data.Sub(f.origin.Data)
	if got := delta.LInf(); got > testQueryConfig().Tau+1e-9 {
		t.Errorf("‖v_adv − v‖∞ = %g > τ", got)
	}
}

func TestSparseQueryErrors(t *testing.T) {
	f := getFixture(t)
	masks, _ := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	bad := testQueryConfig()
	bad.MaxQueries = 0
	if _, err := SparseQuery(newCtx(f, 3), f.origin, f.target, masks, bad); err == nil {
		t.Error("zero budget accepted")
	}
	bad = testQueryConfig()
	bad.Tau = 0
	if _, err := SparseQuery(newCtx(f, 3), f.origin, f.target, masks, bad); err == nil {
		t.Error("zero τ accepted")
	}
}

func TestSparseQueryDegeneratePrior(t *testing.T) {
	f := getFixture(t)
	// All-zero θ: SparseQuery must fall back to exploring the mask.
	masks := &Masks{
		Pixel: f.origin.Data.Clone(),
		Frame: f.origin.Data.Clone(),
		Theta: f.origin.Data.Clone(),
	}
	masks.Pixel.Fill(1)
	masks.Frame.Fill(1)
	masks.Theta.Zero()
	qr, err := SparseQuery(newCtx(f, 4), f.origin, f.target, masks, testQueryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if qr.Adv == nil {
		t.Fatal("nil adversarial video")
	}
}

func TestRunDUOEndToEnd(t *testing.T) {
	f := getFixture(t)
	cfg := Config{
		Transfer: testTransferConfig(f.geom),
		Query:    testQueryConfig(),
		IterNumH: 2,
	}
	cfg.Query.MaxQueries = 80
	res, err := Run(newCtx(f, 5), f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Errorf("rounds = %d", len(res.Rounds))
	}
	if res.Queries == 0 || len(res.Trajectory) == 0 {
		t.Error("no queries/trajectory recorded")
	}
	// Perturbation accounting: the effective delta must stay sparse
	// (≤ iter_numH × k elements) and bounded (≤ iter_numH × τ).
	if got, cap := res.Spa(), cfg.IterNumH*cfg.Transfer.K; got > cap {
		t.Errorf("Spa = %d > %d", got, cap)
	}
	if got := res.Delta.LInf(); got > float64(cfg.IterNumH)*cfg.Transfer.Tau+1e-9 {
		t.Errorf("‖φ‖∞ = %g", got)
	}
	// The attack must not move retrieval away from the target.
	origList := retrieval.IDs(f.victim.Retrieve(f.origin, f.m))
	tgtList := retrieval.IDs(f.victim.Retrieve(f.target, f.m))
	advList := retrieval.IDs(f.victim.Retrieve(res.Adv, f.m))
	before := metrics.APAtM(origList, tgtList)
	after := metrics.APAtM(advList, tgtList)
	if after < before {
		t.Errorf("AP@m regressed: %g → %g", before, after)
	}
}

func TestRunDUODeterministic(t *testing.T) {
	f := getFixture(t)
	cfg := Config{Transfer: testTransferConfig(f.geom), Query: testQueryConfig(), IterNumH: 1}
	a, err := Run(newCtx(f, 7), f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(newCtx(f, 7), f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Adv.Data.Equal(b.Adv.Data, 0) {
		t.Error("same seed produced different adversarial videos")
	}
}

func TestRunDUOValidation(t *testing.T) {
	f := getFixture(t)
	cfg := Config{Transfer: testTransferConfig(f.geom), Query: testQueryConfig(), IterNumH: 0}
	if _, err := Run(newCtx(f, 8), f.surr, f.origin, f.target, cfg); err == nil {
		t.Error("iter_numH=0 accepted")
	}
}

func TestMasksComposeMatchesParts(t *testing.T) {
	f := getFixture(t)
	masks, _ := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	phi := masks.Compose()
	// φ must be zero wherever any factor is zero and equal θ where both
	// masks are one.
	p, fr, th := masks.Pixel.Data(), masks.Frame.Data(), masks.Theta.Data()
	for i, v := range phi.Data() {
		want := p[i] * fr[i] * th[i]
		if v != want {
			t.Fatalf("compose[%d] = %g, want %g", i, v, want)
		}
	}
}
