package core

import (
	"fmt"

	"duo/internal/attack"
	"duo/internal/models"
	"duo/internal/trace"
	"duo/internal/video"
)

// Config parameterizes a full DUO run.
type Config struct {
	// Transfer configures SparseTransfer (Algorithm 1).
	Transfer TransferConfig
	// Query configures SparseQuery (Algorithm 2); its MaxQueries budget is
	// split evenly across the iter_numH rounds.
	Query QueryConfig
	// IterNumH is the number of SparseTransfer↔SparseQuery loops (≤4 in
	// the paper, default 2).
	IterNumH int
}

// DefaultConfig returns the paper's settings scaled to a geometry. The
// query stage's τ is aligned with the transfer stage's so the prior starts
// inside the query budget.
func DefaultConfig(g models.Geometry) Config {
	t := DefaultTransferConfig(g)
	q := DefaultQueryConfig()
	q.Tau = t.Tau
	return Config{Transfer: t, Query: q, IterNumH: 2}
}

// UntargetedConfig returns DefaultConfig switched to the untargeted goal.
func UntargetedConfig(g models.Geometry) Config {
	c := DefaultConfig(g)
	c.Transfer.Mode = Untargeted
	c.Query.Mode = Untargeted
	return c
}

// Result is the outcome of a DUO run, including the per-round masks for
// inspection.
type Result struct {
	*attack.Outcome
	// Rounds holds each round's SparseTransfer masks.
	Rounds []*Masks
}

// Run executes the DUO pipeline of §IV: loop SparseTransfer on the
// surrogate s and SparseQuery on the black-box victim for IterNumH rounds,
// feeding each round's adversarial video in as the next round's base
// (the {ℐ,𝓕,θ,v_adv}→{ℐ,𝓕,θ,v} re-initialization of §IV-C).
//
// When both stages are configured Untargeted, vt may be nil.
func Run(ctx *attack.Context, s models.Model, v, vt *video.Video, cfg Config) (*Result, error) {
	if cfg.IterNumH <= 0 {
		return nil, fmt.Errorf("core: iter_numH=%d must be positive", cfg.IterNumH)
	}
	if s.FeatureDim() <= 0 {
		return nil, fmt.Errorf("core: surrogate has no feature dimension")
	}
	// The zero Mode means Targeted; normalize before comparing.
	tMode, qMode := cfg.Transfer.Mode, cfg.Query.Mode
	if tMode == 0 {
		tMode = Targeted
	}
	if qMode == 0 {
		qMode = Targeted
	}
	if tMode != qMode {
		return nil, fmt.Errorf("core: transfer/query modes disagree (%d vs %d)", tMode, qMode)
	}

	perRound := cfg.Query.MaxQueries / cfg.IterNumH
	if perRound < 1 {
		perRound = 1
	}

	// Stage instruments resolve to nil (no-op) without a registry. They are
	// write-only: timings and gauges never feed back into the attack, so a
	// telemetry-enabled run synthesizes the same video as a disabled one.
	transferNs := ctx.Telemetry.Latency("attack.sparse_transfer_ns")
	queryNs := ctx.Telemetry.Latency("attack.sparse_query_ns")
	rounds := ctx.Telemetry.Counter("attack.rounds")
	budget := ctx.Telemetry.Gauge("attack.budget_remaining")
	budget.Set(int64(cfg.Query.MaxQueries))

	// The span tree follows the same write-only contract. Stage bodies run
	// under pprof labels so CPU profiles attribute samples to stage+round
	// (labels are inherited by the parallel workers the stages spawn).
	run := ctx.Trace.Start(nil, "attack.run")
	run.SetInt("budget", int64(cfg.Query.MaxQueries))
	run.SetInt("iter_num_h", int64(cfg.IterNumH))

	cur := v
	totalQueries := 0
	totalShed := 0
	var trajectory []float64
	res := &Result{}

	for h := 0; h < cfg.IterNumH; h++ {
		round := ctx.Trace.Start(run, "round")
		round.SetInt("round", int64(h))

		var masks *Masks
		var err error
		sw := transferNs.Start()
		trace.WithStageLabels("sparsetransfer", h, func() {
			masks, err = sparseTransfer(ctx.Trace, round, s, cur, vt, cfg.Transfer)
		})
		sw.Stop()
		if err != nil {
			round.End()
			run.End()
			return nil, fmt.Errorf("core: round %d: %w", h+1, err)
		}
		res.Rounds = append(res.Rounds, masks)

		qcfg := cfg.Query
		qcfg.MaxQueries = perRound
		var qr *QueryResult
		sw = queryNs.Start()
		trace.WithStageLabels("sparsequery", h, func() {
			qr, err = sparseQuery(ctx, round, cur, vt, masks, qcfg)
		})
		sw.Stop()
		if err != nil {
			round.End()
			run.End()
			return nil, fmt.Errorf("core: round %d: %w", h+1, err)
		}
		rounds.Inc()
		totalQueries += qr.Queries
		totalShed += qr.Shed
		budget.Set(int64(cfg.Query.MaxQueries - totalQueries))
		trajectory = append(trajectory, qr.Trajectory...)
		cur = qr.Adv

		// Named round_queries, not queries: the bare `queries` key is
		// reserved for leaf retrieve spans so Σ queries == QueryCount holds
		// without double counting (duotrace's budget attribution).
		round.SetInt("round_queries", int64(qr.Queries))
		if n := len(qr.Trajectory); n > 0 {
			round.SetFloat("T", qr.Trajectory[n-1])
		}
		round.End()
	}

	run.SetInt("queries_total", int64(totalQueries))
	// Sheds are attempts the victim refused at admission: tracked for the
	// overload story, excluded from billing everywhere (never in a
	// `queries` attr, never in queries_total).
	run.SetInt("shed_total", int64(totalShed))
	run.End()
	res.Outcome = attack.NewOutcome(v, cur, totalQueries, trajectory)
	return res, nil
}
