package core

import (
	"errors"
	"math"
	"slices"

	"duo/internal/video"
)

func init() {
	RegisterOptimizer(StrategyEvolutionary, func() BlackBoxOptimizer { return evolutionary{} })
}

// StrategyEvolutionary selects the population-based strategy.
const StrategyEvolutionary = "evolutionary"

const (
	// evoPopSize is the population size (one victim query per unevaluated
	// individual per generation).
	evoPopSize = 8
	// evoElites survive each generation unchanged, fitness cached — the
	// elitism that makes the best-so-far trajectory monotone without
	// re-billing known candidates.
	evoElites = 2
	// evoTournament is the tournament size for parent selection.
	evoTournament = 3
	// evoMutRate is the per-gene mutation probability.
	evoMutRate = 0.25
	// evoMutSigma scales the Gaussian mutation step in units of τ.
	evoMutSigma = 0.25
)

// evolutionary is a population-based frame-pixel search in the spirit of
// the evolutionary/RL sparse-attack line (Yan et al., arXiv 2001.03754;
// the population attack of SNIPPETS.md snippet 1): a population of
// perturbation genomes over the SparseTransfer support evolves by
// deterministic tournament selection, uniform crossover, and Gaussian
// mutation, with the victim's rank-similarity objective 𝕋 as fitness. The
// transfer prior seeds individual 0 (its fitness is the harness's initial
// evaluation — never re-billed), elites carry cached fitness across
// generations, and every randomness draw comes from the seeded oracle RNG,
// so the whole evolution is a pure function of the seed.
type evolutionary struct{}

func (evolutionary) Name() string { return StrategyEvolutionary }

//duolint:hot
func (evolutionary) Optimize(o *Oracle) error {
	rng := o.Rng()
	support := o.Support()
	base := o.Base().Data.Data()
	tau := o.Tau()

	// A genome is the perturbation over the support, in [-τ, τ].
	genomeOf := func(v []float64) []float64 {
		g := make([]float64, len(support))
		for i, idx := range support {
			g[i] = v[idx] - base[idx]
		}
		return g
	}
	toVideo := func(g []float64) *video.Video {
		// Strategies only ever write the support, so the current state's
		// off-support elements equal the base's and a recycled candidate
		// plus a full support overwrite reproduces Base().Clone() exactly.
		cand := o.NewCandidate()
		for i, idx := range support {
			o.SetStep(cand, idx, base[idx]+g[i])
		}
		return cand
	}
	// freeGenomes recycles the genome storage of individuals that did not
	// survive a generation swap; children overwrite every element, so a
	// recycled genome needs no clearing.
	var freeGenomes [][]float64
	newGenome := func() []float64 {
		if n := len(freeGenomes); n > 0 {
			g := freeGenomes[n-1]
			freeGenomes = freeGenomes[:n-1]
			return g
		}
		//duolint:allow allocinloop pool-miss path: recycled genomes cover the steady state
		return make([]float64, len(support))
	}

	pop := make([][]float64, 0, evoPopSize)
	fit := make([]float64, evoPopSize)
	known := make([]bool, evoPopSize)
	// Individual 0 is the transfer prior; its 𝕋 was already charged by the
	// harness's initial evaluation.
	pop = append(pop, genomeOf(o.Current().Data.Data()))
	fit[0], known[0] = o.CurrentT(), true
	for len(pop) < evoPopSize {
		//duolint:allow allocinloop one-time population seeding, not a steady-state loop
		g := make([]float64, len(support))
		for i := range g {
			g[i] = (rng.Float64()*2 - 1) * tau
		}
		pop = append(pop, g)
	}

	// fitter orders two individuals: lower 𝕋 wins, index breaks ties so
	// selection is deterministic under equal fitness.
	fitter := func(a, b int) bool {
		if fit[a] != fit[b] { //duolint:allow floateq comparator tie-break: exact equality IS the tie, and both operands are the same unrounded computation
			return fit[a] < fit[b]
		}
		return a < b
	}
	// cmpFitter is fitter as a three-way comparison. It is a strict total
	// order, so the sorted sequence is unique and algorithm-independent
	// (sort.Slice and slices.SortFunc agree bitwise; the latter boxes
	// nothing).
	cmpFitter := func(a, b int) int {
		if fitter(a, b) {
			return -1
		}
		if fitter(b, a) {
			return 1
		}
		return 0
	}
	// tournament picks the fittest of evoTournament uniform draws; it is
	// hoisted out of the generation loop so no closure is rebuilt per
	// generation (pop and fit rebind at each swap, which the captures see).
	tournament := func() []float64 {
		best := -1
		for t := 0; t < evoTournament; t++ {
			c := rng.Intn(len(pop))
			if best < 0 || fitter(c, best) {
				best = c
			}
		}
		return pop[best]
	}

	// Per-generation workspaces, allocated once and swapped with the live
	// population at each generation boundary.
	order := make([]int, evoPopSize)
	nextBuf := make([][]float64, 0, evoPopSize)
	nfitBuf := make([]float64, evoPopSize)
	nknownBuf := make([]bool, evoPopSize)

	gen := 0
	for o.Remaining() > 0 {
		sp := o.StepStart()
		sp.SetInt("gen", int64(gen))

		// Evaluate the unevaluated individuals, one billed query each, and
		// commit any non-increasing candidate as the new best.
		evaluated := 0
		for i := range pop {
			if known[i] {
				continue
			}
			if o.Remaining() == 0 {
				fit[i] = math.Inf(1)
				continue
			}
			cand := toVideo(pop[i])
			tNew, err := o.Score(cand)
			known[i] = true
			switch {
			case errors.Is(err, ErrBudgetExhausted):
				fit[i] = math.Inf(1)
			case err != nil:
				o.Skip()
				fit[i] = math.Inf(1)
			default:
				fit[i] = tNew
				evaluated++
				o.Accept(cand, tNew)
			}
			o.Release(cand)
		}
		sp.SetInt("evaluated", int64(evaluated))
		o.Record()
		sp.SetFloat("T", o.CurrentT())
		o.StepEnd(sp)
		gen++
		if o.Remaining() == 0 {
			break
		}

		// Rank deterministically (fitness ascending, index tie-break).
		for i := range order {
			order[i] = i
		}
		slices.SortFunc(order, cmpFitter)

		// Next generation: elites survive with cached fitness; the rest
		// are tournament-selected parents crossed uniformly and mutated.
		next := nextBuf[:0]
		nfit := nfitBuf
		nknown := nknownBuf
		for i := range nknown {
			nknown[i] = false
		}
		for e := 0; e < evoElites && e < len(order); e++ {
			i := order[e]
			next = append(next, pop[i])
			nfit[e], nknown[e] = fit[i], known[i]
		}
		for len(next) < evoPopSize {
			pa, pb := tournament(), tournament()
			child := newGenome()
			for i := range child {
				if rng.Intn(2) == 0 {
					child[i] = pa[i]
				} else {
					child[i] = pb[i]
				}
				if rng.Float64() < evoMutRate {
					child[i] += rng.NormFloat64() * evoMutSigma * tau
					child[i] = math.Max(-tau, math.Min(tau, child[i]))
				}
			}
			next = append(next, child)
		}
		pop, nextBuf = next, pop
		fit, nfitBuf = nfit, fit
		known, nknownBuf = nknown, known
		// Recycle the genomes of non-surviving individuals: anything in the
		// displaced population not aliased by an elite is dead storage.
		for _, g := range nextBuf {
			live := false
			for _, h := range pop[:evoElites] {
				if &g[0] == &h[0] {
					live = true
					break
				}
			}
			if !live {
				freeGenomes = append(freeGenomes, g)
			}
		}
	}
	return nil
}
