package core

import (
	"testing"

	"duo/internal/defense"
	"duo/internal/metrics"
	"duo/internal/retrieval"
)

// TestDUOEvadesStatefulDetectionViaRotation reproduces §I's claim end to
// end: against a service that blocks accounts issuing near-duplicate query
// bursts, a single-account DUO run is cut off, while the same attack
// spread over rotated sybil accounts completes its full query budget.
func TestDUOEvadesStatefulDetectionViaRotation(t *testing.T) {
	f := getFixture(t)
	det := defense.NewStatefulDetector(10, 5, 5)
	svc := defense.NewMonitoredService(f.victim, det)

	cfg := Config{
		Transfer: testTransferConfig(f.geom),
		Query:    testQueryConfig(),
		IterNumH: 1,
	}
	cfg.Query.MaxQueries = 40

	// Naive attacker: every query from one account. SparseQuery's
	// near-duplicate probes trip the detector, after which the service
	// returns empty lists and the objective carries no signal.
	naiveCtx := newCtx(f, 71)
	naiveCtx.Victim = &defense.SingleAccount{Service: svc, Account: "naive"}
	if _, err := Run(naiveCtx, f.surr, f.origin, f.target, cfg); err != nil {
		t.Fatal(err)
	}
	if got := svc.BlockedAccounts(); len(got) != 1 || got[0] != "naive" {
		t.Fatalf("naive account not blocked: %v", got)
	}
	_, refusedNaive := svc.Stats()
	if refusedNaive == 0 {
		t.Fatal("no queries were refused for the naive attacker")
	}

	// Rotating attacker: same attack, fresh sybil account every 4 queries
	// (below the detector's 5-query minimum window).
	det2 := defense.NewStatefulDetector(10, 5, 5)
	svc2 := defense.NewMonitoredService(f.victim, det2)
	rot := &defense.AccountRotator{Service: svc2, QueriesPerAccount: 4}
	rotCtx := newCtx(f, 71)
	rotCtx.Victim = rot
	if _, err := Run(rotCtx, f.surr, f.origin, f.target, cfg); err != nil {
		t.Fatal(err)
	}
	if got := svc2.BlockedAccounts(); len(got) != 0 {
		t.Errorf("rotated accounts blocked: %v", got)
	}
	served, refused := svc2.Stats()
	if refused != 0 {
		t.Errorf("%d rotated queries refused", refused)
	}
	if served == 0 {
		t.Error("no queries served")
	}
	if rot.AccountsUsed() < 2 {
		t.Errorf("rotation never happened (%d accounts)", rot.AccountsUsed())
	}
}

// TestDUOAttacksHashRetrieval runs the full pipeline against the
// Hamming-space (hash) variant of the victim — the deployment style of the
// paper's reference model [42] and the setting of ref. [32], but black-box.
func TestDUOAttacksHashRetrieval(t *testing.T) {
	f := getFixture(t)
	hash := retrieval.NewHashEngine(f.victim.Model(), f.corpus.Train)
	cfg := Config{
		Transfer: testTransferConfig(f.geom),
		Query:    testQueryConfig(),
		IterNumH: 1,
	}
	ctx := newCtx(f, 91)
	ctx.Victim = hash
	res, err := Run(ctx, f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spa() == 0 {
		t.Error("no perturbation against the hash victim")
	}
	// The attack must not push the adversarial list away from the target's
	// relative to the clean baseline.
	origList := retrieval.IDs(hash.Retrieve(f.origin, f.m))
	tgtList := retrieval.IDs(hash.Retrieve(f.target, f.m))
	advList := retrieval.IDs(hash.Retrieve(res.Adv, f.m))
	before := metrics.APAtM(origList, tgtList)
	after := metrics.APAtM(advList, tgtList)
	if after < before {
		t.Errorf("hash-victim AP@m regressed: %g → %g", before, after)
	}
}
