package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"duo/internal/metrics"
	"duo/internal/retrieval"
	"duo/internal/telemetry"
	"duo/internal/trace"
	"duo/internal/video"
)

// ErrBudgetExhausted is returned by Oracle.Score and Oracle.ScorePair when
// the query budget has no room for the request. Strategies that poll
// Remaining() before scoring never see it; it is the harness's backstop
// against a strategy overspending the budget.
var ErrBudgetExhausted = errors.New("core: query budget exhausted")

// BlackBoxOptimizer is one strategy for rectifying a perturbation against
// the black-box victim: given the harness Oracle — the strategy's only
// window onto the victim — it walks candidates until the budget is spent.
//
// The harness owns everything the project's contracts bind: query billing
// (every victim round-trip increments the budget, shed round-trips are
// refunded), span tracing (the `queries` attribute appears only on leaf
// retrieve spans and sums to the billed count), write-only telemetry, and
// the monotone best-so-far trajectory. A strategy proposes candidate
// videos via Oracle.Score / Oracle.ScorePair and commits progress via
// Oracle.Accept; it must confine its perturbations to Oracle.Support()
// inside the ±τ box (Oracle.ApplyStep / Oracle.SetStep enforce the box),
// draw all randomness from Oracle.Rng(), and never touch the victim by any
// other path. The contract battery in optimizer_contract_test.go holds every
// registered strategy to exactly these rules.
type BlackBoxOptimizer interface {
	// Name is the registry key (the AttackOptions.Strategy /
	// `duoattack -strategy` spelling).
	Name() string
	// Optimize runs the strategy until Oracle.Remaining() hits zero (or
	// the strategy concludes no further progress is possible). On return
	// the harness packages Oracle state into the round's QueryResult.
	Optimize(o *Oracle) error
}

// optimizerRegistry maps strategy names to constructors. Strategies
// register in init(); the map is only ever iterated through the sorted
// OptimizerNames accessor so registry order can never leak into results.
var optimizerRegistry = map[string]func() BlackBoxOptimizer{}

// RegisterOptimizer adds a strategy constructor under its name. It panics
// on duplicates — strategy names are CLI surface, a silent overwrite would
// repoint user flags.
func RegisterOptimizer(name string, mk func() BlackBoxOptimizer) {
	if _, dup := optimizerRegistry[name]; dup {
		panic(fmt.Sprintf("core: duplicate optimizer %q", name))
	}
	optimizerRegistry[name] = mk
}

// OptimizerNames returns the registered strategy names, sorted.
func OptimizerNames() []string {
	names := make([]string, 0, len(optimizerRegistry))
	for name := range optimizerRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StrategySparseQuery is the default strategy: the paper's SparseQuery
// masked coordinate descent (Algorithm 2).
const StrategySparseQuery = "sparsequery"

// newOptimizer resolves a strategy name; empty selects the paper's
// SparseQuery coordinate descent.
func newOptimizer(name string) (BlackBoxOptimizer, error) {
	if name == "" {
		name = StrategySparseQuery
	}
	mk, ok := optimizerRegistry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown optimizer %q (have %v)", name, OptimizerNames())
	}
	return mk(), nil
}

// Oracle is the harness a strategy runs against. It wraps the victim with
// the billing, retry, shed-refund, tracing, and telemetry machinery that
// every strategy must share, and carries the walk state (current best
// candidate, its objective 𝕋, the trajectory) the harness reports.
type Oracle struct {
	ctx  *oracleCtx
	cfg  QueryConfig
	eps  float64
	sim  metrics.ListSimilarity
	mode Mode

	v, vt   *video.Video
	masks   *Masks
	support []int

	// retries is the per-query retry allowance for fallible victims.
	retries  int
	fallible retrieval.FallibleRetriever
	traced   retrieval.TracedRetriever
	batcher  retrieval.BatchRetriever

	tr *trace.Tracer
	// qsp is the sparsequery span; retrParent is where the next leaf
	// retrieve span hangs (qsp outside a step, the step span inside one).
	qsp, retrParent *trace.Span

	telQueries *telemetry.Counter
	telShed    *telemetry.Counter
	telTraj    *telemetry.Ring

	queries   int
	shedTotal int

	origList, targetList []string

	cur  *video.Video
	tCur float64
	res  *QueryResult

	// idsBuf backs the ID projection of the most recent victim answer.
	// Every retrieveIDs/ScorePair result aliases it and is consumed (scored)
	// before the next query, so one buffer serves the whole walk; the
	// round-long reference lists are owned copies, never aliases.
	idsBuf []string
	// pairBuf carries the two videos of a batched pair round-trip; the
	// batcher contract is synchronous, so the slice is reusable per call.
	pairBuf [2]*video.Video
	// spares recycles candidate videos a strategy has released: a
	// steady-state walk allocates one candidate per in-flight arm and then
	// reuses that storage for the rest of the round.
	spares []*video.Video
}

// NewCandidate returns a deep copy of Current() for the strategy to
// mutate, drawing storage from the released-candidate stack when one is
// available. Candidates all share the round's geometry, so a recycled
// video is refilled with a flat tensor copy instead of a fresh Clone.
func (o *Oracle) NewCandidate() *video.Video {
	if n := len(o.spares); n > 0 {
		c := o.spares[n-1]
		o.spares = o.spares[:n-1]
		c.Data.CopyFrom(o.cur.Data)
		c.Label, c.ID = o.cur.Label, o.cur.ID
		return c
	}
	return o.cur.Clone()
}

// Release hands a candidate the walk no longer references back to the
// oracle for reuse. Releasing the committed current state, the base, or
// the target is a harmless no-op, so strategies may release every arm
// unconditionally after the accept decision.
func (o *Oracle) Release(cand *video.Video) {
	if cand == nil || cand == o.cur || cand == o.v || cand == o.vt {
		return
	}
	//duolint:allow allocinloop spare stack grows to the high-water mark of in-flight candidates (≤ a handful) and then stays flat
	o.spares = append(o.spares, cand)
}

// oracleCtx is the slice of attack.Context the oracle needs (kept narrow so
// the oracle's victim access is auditable in one place).
type oracleCtx struct {
	victim retrieval.Retriever
	m      int
	rng    *rand.Rand
}

// Rng is the strategy's randomness source: seeded, deterministic, and the
// only legal source (duolint's detrand rule forbids global math/rand in
// this package).
func (o *Oracle) Rng() *rand.Rand { return o.ctx.rng }

// Base returns the round's base video v. Strategies must treat it as
// read-only: candidates are clones with ApplyStep/SetStep writes.
func (o *Oracle) Base() *video.Video { return o.v }

// Masks returns the SparseTransfer prior {ℐ, 𝓕, θ}.
func (o *Oracle) Masks() *Masks { return o.masks }

// Support returns the flat indices a strategy may perturb: the support of
// ℐ⊙𝓕⊙θ (Eq. 4), or of ℐ⊙𝓕 when θ is degenerate.
func (o *Oracle) Support() []int { return o.support }

// Eps is the per-query step size ε (defaulted to τ).
func (o *Oracle) Eps() float64 { return o.eps }

// Tau is the per-element box budget relative to the round's base video.
func (o *Oracle) Tau() float64 { return o.cfg.Tau }

// Budget is the round's query budget.
func (o *Oracle) Budget() int { return o.cfg.MaxQueries }

// Used is the number of queries billed so far (reference fetches and the
// initial evaluation included).
func (o *Oracle) Used() int { return o.queries }

// Remaining is the unspent query budget.
func (o *Oracle) Remaining() int {
	if r := o.cfg.MaxQueries - o.queries; r > 0 {
		return r
	}
	return 0
}

// Current returns the best candidate committed so far (initially the base
// video plus the τ-clamped transfer prior).
func (o *Oracle) Current() *video.Video { return o.cur }

// CurrentT returns the objective 𝕋 of Current.
func (o *Oracle) CurrentT() float64 { return o.tCur }

// PairBatching reports whether ScorePair can send a candidate pair in one
// batched round-trip (an infallible victim implementing BatchRetriever).
func (o *Oracle) PairBatching() bool { return o.batcher != nil }

// Accept applies the non-increase rule of Eq. (3): a candidate whose 𝕋 did
// not increase becomes the new current state (equality keeps the walk
// moving across rank-boundary plateaus). Acceptance can never raise 𝕋, so
// the recorded trajectory is monotone non-increasing for every strategy.
func (o *Oracle) Accept(cand *video.Video, tNew float64) bool {
	if tNew > o.tCur {
		return false
	}
	if tNew < o.tCur {
		o.res.Improved = true
	}
	prev := o.cur
	o.cur = cand
	o.tCur = tNew
	// The displaced state is only ever reachable through o.cur, so its
	// storage can back a future NewCandidate. Release's self/base/target
	// guards make this a no-op when a strategy re-accepts the current state.
	o.Release(prev)
	return true
}

// Record appends the current 𝕋 to the round trajectory (one entry per
// strategy iteration) and to the telemetry ring.
func (o *Oracle) Record() {
	//duolint:allow allocinloop trajectory capacity is pre-sized to the query budget at round start; this append grows only on pathological no-query iterations
	o.res.Trajectory = append(o.res.Trajectory, o.tCur)
	o.telTraj.Push(o.tCur)
}

// Skip notes a candidate abandoned because its victim query failed after
// retries (distributed victims only).
func (o *Oracle) Skip() { o.res.Skipped++ }

// StepStart opens one query.step span under the sparsequery span and
// reparents subsequent leaf retrieve spans under it. Strategies set their
// own attributes on the returned span and must close it with StepEnd.
func (o *Oracle) StepStart() *trace.Span {
	sp := o.tr.Start(o.qsp, "query.step")
	o.retrParent = sp
	return sp
}

// StepEnd closes a step span and reparents retrieve leaves back onto the
// sparsequery span.
func (o *Oracle) StepEnd(sp *trace.Span) {
	sp.End()
	o.retrParent = o.qsp
}

// ApplyStep writes cand[idx] += delta clamped to the ±τ box around the
// base video and the pixel range; it reports whether anything changed.
func (o *Oracle) ApplyStep(cand *video.Video, idx int, delta float64) bool {
	return o.setClamped(cand, idx, cand.Data.Data()[idx]+delta)
}

// SetStep writes cand[idx] = value clamped to the ±τ box around the base
// video and the pixel range; it reports whether anything changed.
func (o *Oracle) SetStep(cand *video.Video, idx int, value float64) bool {
	return o.setClamped(cand, idx, value)
}

func (o *Oracle) setClamped(cand *video.Video, idx int, nv float64) bool {
	d := cand.Data.Data()
	base := o.v.Data.Data()[idx]
	nv = math.Max(base-o.cfg.Tau, math.Min(base+o.cfg.Tau, nv))
	nv = math.Max(video.PixelMin, math.Min(video.PixelMax, nv))
	if nv == d[idx] { //duolint:allow floateq exact no-op detection: a clipped step is worth a query iff it changed at least one bit
		return false
	}
	d[idx] = nv
	return true
}

// Score issues one billed victim query for cand and returns its objective
// 𝕋. Retries against a fallible victim are billed per attempt; shed
// attempts (ErrOverloaded) are refunded because the victim never served
// them. The round-trip is recorded as one leaf retrieve span whose
// `queries` attribute is exactly what this call billed.
func (o *Oracle) Score(cand *video.Video) (float64, error) {
	if o.queries >= o.cfg.MaxQueries {
		return 0, ErrBudgetExhausted
	}
	return o.objective(cand)
}

// ScorePair evaluates two candidates in one batched round-trip, billing
// both. It requires PairBatching() and budget for two queries.
func (o *Oracle) ScorePair(a, b *video.Video) (float64, float64, error) {
	if o.batcher == nil {
		return 0, 0, fmt.Errorf("core: victim does not support pair batching")
	}
	if o.queries+2 > o.cfg.MaxQueries {
		return 0, 0, ErrBudgetExhausted
	}
	rsp := o.tr.Start(o.retrParent, "retrieve")
	o.queries += 2
	o.telQueries.Add(2)
	o.res.BatchedPairs++
	o.pairBuf[0], o.pairBuf[1] = a, b
	lists := o.batcher.RetrieveBatch(o.pairBuf[:], o.ctx.m)
	rsp.SetInt("queries", 2)
	rsp.SetStr("outcome", "ok")
	rsp.SetStr("kind", "pair")
	rsp.End()
	// Each projected list is fully consumed by score before the buffer is
	// refilled for the second arm.
	o.idsBuf = retrieval.IDsInto(o.idsBuf, lists[0])
	ta := o.score(o.idsBuf)
	o.idsBuf = retrieval.IDsInto(o.idsBuf, lists[1])
	return ta, o.score(o.idsBuf), nil
}

// objective is Score without the budget backstop: one victim query plus
// the billing-free Eq. (2) evaluation. The harness uses it directly for
// the initial 𝕋⁰ evaluation, which the paper charges even on a budget of
// one.
func (o *Oracle) objective(qv *video.Video) (float64, error) {
	advList, err := o.retrieveIDs(qv)
	if err != nil {
		return 0, err
	}
	return o.score(advList), nil
}

// score is the billing-free half of the objective: Eq. (2) on an
// already-retrieved list.
func (o *Oracle) score(advList []string) float64 {
	if o.mode == Untargeted {
		return o.sim(advList, o.origList) + o.cfg.Eta
	}
	return metrics.Objective(o.sim, advList, o.origList, o.targetList, o.cfg.Eta)
}

// retrieveIDs issues one victim query, retrying a fallible victim up to
// `retries` extra times; every attempt counts against the budget. The
// returned list aliases o.idsBuf and is valid only until the next victim
// query — callers that keep a list across queries (the reference fetch)
// must copy it. A nil
// error guarantees the list is complete — a failed node must never leak a
// silently-partial top-m into 𝕋 (Eq. 2). Each call records one leaf
// retrieve span whose `queries` attribute is exactly what this call
// billed, retries included — EXCEPT sheds: an attempt the victim refused
// at admission (ErrOverloaded) is refunded, because the victim never
// served it. Shed attempts still consume a retry slot (the loop is bounded
// by `retries`, not by budget), and they surface on the span as a `shed`
// attribute, never inside `queries`.
func (o *Oracle) retrieveIDs(qv *video.Video) ([]string, error) {
	rsp := o.tr.Start(o.retrParent, "retrieve")
	if o.fallible == nil {
		o.queries++
		o.telQueries.Inc()
		o.idsBuf = retrieval.IDsInto(o.idsBuf, o.ctx.victim.Retrieve(qv, o.ctx.m))
		rsp.SetInt("queries", 1)
		rsp.SetStr("outcome", "ok")
		rsp.End()
		return o.idsBuf, nil
	}
	billed := 0
	shed := 0
	var lastErr error
	for attempt := 0; attempt <= o.retries; attempt++ {
		if attempt > 0 && o.queries >= o.cfg.MaxQueries {
			break // no budget left to retry
		}
		o.queries++
		billed++
		var rs []retrieval.Result
		var err error
		// A traced victim (the cluster) attributes per-node child spans
		// under this retrieve leaf; results and billing are identical to
		// RetrieveErr.
		if tc := rsp.Ctx(); o.traced != nil && tc.Valid() {
			rs, err = o.traced.RetrieveTraced(tc, qv, o.ctx.m)
		} else {
			rs, err = o.fallible.RetrieveErr(qv, o.ctx.m)
		}
		if errors.Is(err, retrieval.ErrOverloaded) {
			// Load shed: the request never reached a shard, so it is not a
			// query the victim answered. Refund the bill and account the
			// attempt separately.
			o.queries--
			billed--
			shed++
			o.shedTotal++
			o.telShed.Inc()
			lastErr = err
			continue
		}
		o.telQueries.Inc()
		if err == nil {
			rsp.SetInt("queries", int64(billed))
			if shed > 0 {
				rsp.SetInt("shed", int64(shed))
			}
			rsp.SetStr("outcome", "ok")
			rsp.End()
			o.idsBuf = retrieval.IDsInto(o.idsBuf, rs)
			return o.idsBuf, nil
		}
		lastErr = err
	}
	rsp.SetInt("queries", int64(billed))
	if shed > 0 {
		rsp.SetInt("shed", int64(shed))
	}
	if billed == 0 && shed > 0 {
		// Every attempt was refused at admission — the round-trip cost
		// nothing, it just didn't happen.
		rsp.SetStr("outcome", "shed")
	} else {
		rsp.SetStr("outcome", "failed")
	}
	rsp.End()
	return nil, fmt.Errorf("core: victim query failed: %w", lastErr)
}

// permInto fills dst with a pseudo-random permutation of [0, n), growing
// dst only when its capacity is short. It draws exactly the Intn sequence
// rand.Perm draws and applies the same inside-out Fisher–Yates update, so
// swapping one for the other changes neither the permutation nor the RNG
// state — golden strategy fingerprints stay bitwise-identical (pinned by
// TestPermIntoMatchesRandPerm).
func permInto(rng *rand.Rand, dst []int, n int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	// The i=0 iteration is a self-swap, but rand.Perm performs it anyway
	// (its Intn(1) draw advances the generator), so it must stay.
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}

// fetchReferences bills the reference lists for Eq. (2): the original's
// list, and (targeted) the target's. Targeted rounds against a batching
// victim fetch both in one round-trip; billing and results are identical
// to two Retrieves.
func (o *Oracle) fetchReferences() error {
	if o.batcher != nil && o.mode != Untargeted {
		rsp := o.tr.Start(o.qsp, "retrieve")
		o.queries += 2
		o.telQueries.Add(2)
		o.pairBuf[0], o.pairBuf[1] = o.v, o.vt
		lists := o.batcher.RetrieveBatch(o.pairBuf[:], o.ctx.m)
		o.origList, o.targetList = retrieval.IDs(lists[0]), retrieval.IDs(lists[1])
		rsp.SetInt("queries", 2)
		rsp.SetStr("outcome", "ok")
		rsp.SetStr("kind", "batch")
		rsp.End()
		return nil
	}
	// The reference lists outlive every later query, so they must own their
	// storage: retrieveIDs results alias the per-query buffer.
	ids, err := o.retrieveIDs(o.v)
	if err != nil {
		return err
	}
	o.origList = append([]string(nil), ids...)
	if o.mode != Untargeted {
		if ids, err = o.retrieveIDs(o.vt); err != nil {
			return err
		}
		o.targetList = append([]string(nil), ids...)
	}
	return nil
}
