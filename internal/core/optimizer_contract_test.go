package core

import (
	"math"
	"sync"
	"testing"

	"duo/internal/parallel"
	"duo/internal/retrieval"
	"duo/internal/telemetry"
	"duo/internal/trace"
	"duo/internal/video"
)

// The optimizer contract battery: every registered BlackBoxOptimizer —
// current and future — must satisfy the harness invariants that the rest of
// the repo (duotrace, telemetry dashboards, the query-budget accounting in
// EXPERIMENTS.md) depends on. A new strategy registered via
// RegisterOptimizer is picked up here automatically; if it can't pass this
// battery it doesn't belong in the registry.

var (
	contractMaskOnce sync.Once
	contractMask     *Masks
)

// contractMasks builds the SparseTransfer prior once; the transfer stage is
// deterministic, so every subtest sees identical masks.
func contractMasks(t *testing.T) *Masks {
	t.Helper()
	f := getFixture(t)
	contractMaskOnce.Do(func() {
		m, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
		if err != nil {
			panic(err)
		}
		contractMask = m
	})
	if contractMask == nil {
		t.Fatal("mask build failed")
	}
	return contractMask
}

// countingVictim wraps a Retriever and counts round-trips. It deliberately
// implements ONLY Retrieve, so the harness takes the plain (infallible,
// unbatched) path and every victim call maps to exactly one billed query.
type countingVictim struct {
	inner retrieval.Retriever
	calls int
}

func (c *countingVictim) Retrieve(v *video.Video, m int) []retrieval.Result {
	c.calls++
	return c.inner.Retrieve(v, m)
}

// runStrategy executes one SparseQuery round under the given strategy with
// full instrumentation and returns the result plus the instruments.
func runStrategy(t *testing.T, strategy string, seed int64) (*QueryResult, *countingVictim, *telemetry.Registry, *trace.Tracer) {
	t.Helper()
	f := getFixture(t)
	masks := contractMasks(t)
	cv := &countingVictim{inner: f.victim}
	reg := telemetry.New()
	tr := trace.New("contract-" + strategy)
	ctx := newCtx(f, seed)
	ctx.Victim = cv
	ctx.Telemetry = reg
	ctx.Trace = tr
	cfg := testQueryConfig()
	cfg.Strategy = strategy
	qr, err := SparseQuery(ctx, f.origin, f.target, masks, cfg)
	if err != nil {
		t.Fatalf("strategy %s: %v", strategy, err)
	}
	return qr, cv, reg, tr
}

// TestOptimizerContracts runs the shared battery over every registered
// strategy.
func TestOptimizerContracts(t *testing.T) {
	f := getFixture(t)
	masks := contractMasks(t)
	budget := testQueryConfig().MaxQueries
	for _, strategy := range OptimizerNames() {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			qr, cv, reg, tr := runStrategy(t, strategy, 11)

			// Billing: never over budget, and the billed count is exactly
			// what the victim served and what telemetry recorded.
			if qr.Queries > budget {
				t.Errorf("queries %d exceed budget %d", qr.Queries, budget)
			}
			if cv.calls != qr.Queries {
				t.Errorf("victim served %d calls, billed %d", cv.calls, qr.Queries)
			}
			if telQ := reg.Snapshot().Counters["attack.queries"]; telQ != int64(qr.Queries) {
				t.Errorf("telemetry attack.queries = %d, billed %d", telQ, qr.Queries)
			}

			// Trace attribution: the bare `queries` attribute lives only on
			// leaf retrieve spans and sums to the billed count, and the
			// sparsequery span names the strategy.
			var attributed int64
			named := false
			for _, r := range tr.Records() {
				if q, ok := r.Int("queries"); ok {
					if r.Name != "retrieve" {
						t.Errorf("span %q carries a `queries` attr; reserved for retrieve leaves", r.Name)
					}
					attributed += q
				}
				if r.Name == "sparsequery" {
					if s, ok := r.Str("strategy"); ok && s == strategy {
						named = true
					}
				}
			}
			if attributed != int64(qr.Queries) {
				t.Errorf("trace attributes %d queries, billed %d", attributed, qr.Queries)
			}
			if !named {
				t.Errorf("sparsequery span does not carry strategy=%q", strategy)
			}

			// 𝕋 trajectory: monotone non-increasing (acceptance is never
			// allowed to raise the objective, whatever the strategy).
			for i := 1; i < len(qr.Trajectory); i++ {
				if qr.Trajectory[i] > qr.Trajectory[i-1]+1e-12 {
					t.Fatalf("𝕋 increased at step %d: %g → %g", i, qr.Trajectory[i-1], qr.Trajectory[i])
				}
			}

			// Support and budget: the perturbation lives inside ℐ⊙𝓕 and
			// within ±τ of the round's base on every element.
			base := f.origin.Add(masks.Compose().Clamp(-testQueryConfig().Tau, testQueryConfig().Tau))
			pm, fm := masks.Pixel.Data(), masks.Frame.Data()
			advData, baseData := qr.Adv.Data.Data(), base.Data.Data()
			for i := range pm {
				if pm[i]*fm[i] == 0 && advData[i] != baseData[i] {
					t.Fatalf("element %d outside the mask was modified", i)
				}
			}
			if got := qr.Adv.Data.Sub(f.origin.Data).LInf(); got > testQueryConfig().Tau+1e-9 {
				t.Errorf("‖v_adv − v‖∞ = %g > τ", got)
			}
			for _, x := range advData {
				if x < video.PixelMin-1e-9 || x > video.PixelMax+1e-9 {
					t.Fatalf("pixel value %g outside [%g, %g]", x, video.PixelMin, video.PixelMax)
					break
				}
			}

			// Seed determinism: a rerun with the same seed reproduces the
			// adversarial video bitwise and the trajectory exactly.
			qr2, _, _, _ := runStrategy(t, strategy, 11)
			if !qr.Adv.Data.Equal(qr2.Adv.Data, 0) {
				t.Error("same seed produced different adversarial videos")
			}
			if len(qr.Trajectory) != len(qr2.Trajectory) {
				t.Fatalf("trajectory lengths differ: %d vs %d", len(qr.Trajectory), len(qr2.Trajectory))
			}
			for i := range qr.Trajectory {
				if math.Float64bits(qr.Trajectory[i]) != math.Float64bits(qr2.Trajectory[i]) {
					t.Fatalf("trajectory diverged at step %d", i)
				}
			}
		})
	}
}

// TestOptimizerContractsWorkerInvariance reruns every strategy at workers=4
// and requires bitwise-identical results to the workers=1 battery run: the
// strategies themselves are sequential, so parallel victim internals must
// not leak into the walk.
func TestOptimizerContractsWorkerInvariance(t *testing.T) {
	for _, strategy := range OptimizerNames() {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			prev := parallel.SetWorkers(1)
			qr1, _, _, _ := runStrategy(t, strategy, 23)
			parallel.SetWorkers(4)
			qr4, _, _, _ := runStrategy(t, strategy, 23)
			parallel.SetWorkers(prev)
			if !qr1.Adv.Data.Equal(qr4.Adv.Data, 0) {
				t.Error("workers=1 and workers=4 produced different adversarial videos")
			}
			if qr1.Queries != qr4.Queries {
				t.Errorf("queries differ across worker counts: %d vs %d", qr1.Queries, qr4.Queries)
			}
		})
	}
}

// TestOptimizerUnknownStrategy pins the error path: an unregistered name is
// rejected up front with the known strategies listed.
func TestOptimizerUnknownStrategy(t *testing.T) {
	f := getFixture(t)
	masks := contractMasks(t)
	cfg := testQueryConfig()
	cfg.Strategy = "does-not-exist"
	if _, err := SparseQuery(newCtx(f, 9), f.origin, f.target, masks, cfg); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
