package core

import (
	"math"
	"testing"

	"duo/internal/retrieval"
	"duo/internal/video"
)

// spyVictim records every video the harness sends to the victim, so the
// fuzz target can check the support/budget contract on the actual queries —
// not just the final adversarial video.
type spyVictim struct {
	inner   retrieval.Retriever
	queried []*video.Video
}

func (s *spyVictim) Retrieve(v *video.Video, m int) []retrieval.Result {
	s.queried = append(s.queried, v)
	return s.inner.Retrieve(v, m)
}

// FuzzOptimizerSupport fuzzes (seed, strategy, budget) over every
// registered optimizer and asserts the two hard safety contracts on every
// single victim query: no candidate ever perturbs an element outside the
// ℐ⊙𝓕 mask, no candidate ever exceeds the ±τ ball around the original, and
// the total victim round-trips never exceed the budget. A strategy that
// leaks even one out-of-mask pixel into one probe breaks stealth — the
// property must hold per query, not just at the end.
func FuzzOptimizerSupport(f *testing.F) {
	for i := range OptimizerNames() {
		f.Add(int64(1), uint8(i), uint16(12))
		f.Add(int64(99), uint8(i), uint16(40))
	}
	f.Fuzz(func(t *testing.T, seed int64, strategyIdx uint8, budget uint16) {
		names := OptimizerNames()
		strategy := names[int(strategyIdx)%len(names)]
		fix := getFixture(t)
		masks := contractMasks(t)

		cfg := testQueryConfig()
		cfg.Strategy = strategy
		cfg.MaxQueries = 1 + int(budget)%60

		spy := &spyVictim{inner: fix.victim}
		ctx := newCtx(fix, seed)
		ctx.Victim = spy
		qr, err := SparseQuery(ctx, fix.origin, fix.target, masks, cfg)
		if cfg.MaxQueries < 3 {
			// Too small to cover the two reference fetches plus the initial
			// 𝕋⁰ evaluation: the harness must reject it up front rather
			// than overrun the budget (found by this very fuzz target).
			if err == nil {
				t.Fatalf("strategy %s: budget %d accepted", strategy, cfg.MaxQueries)
			}
			return
		}
		if err != nil {
			t.Fatalf("strategy %s: %v", strategy, err)
		}
		if len(spy.queried) > cfg.MaxQueries {
			t.Fatalf("victim served %d queries, budget %d", len(spy.queried), cfg.MaxQueries)
		}
		if qr.Queries != len(spy.queried) {
			t.Fatalf("billed %d, victim served %d", qr.Queries, len(spy.queried))
		}

		base := fix.origin.Add(masks.Compose().Clamp(-cfg.Tau, cfg.Tau))
		baseData := base.Data.Data()
		origData := fix.origin.Data.Data()
		pm, fm := masks.Pixel.Data(), masks.Frame.Data()
		for qi, q := range spy.queried {
			if q == fix.target {
				continue // the target-list reference query, not a candidate
			}
			qd := q.Data.Data()
			for i := range qd {
				if pm[i]*fm[i] == 0 && qd[i] != baseData[i] {
					t.Fatalf("query %d (strategy %s): element %d outside the mask perturbed", qi, strategy, i)
				}
				if d := math.Abs(qd[i] - origData[i]); d > cfg.Tau+1e-9 {
					t.Fatalf("query %d (strategy %s): |Δ[%d]| = %g > τ = %g", qi, strategy, i, d, cfg.Tau)
				}
				if qd[i] < video.PixelMin-1e-9 || qd[i] > video.PixelMax+1e-9 {
					t.Fatalf("query %d (strategy %s): pixel %d = %g out of range", qi, strategy, i, qd[i])
				}
			}
		}
	})
}

// TestOptimizerSeedDeterminism is the property-test companion to the fuzz
// target: for every strategy and a spread of seeds, two runs with the same
// seed must produce bit-identical trajectories and adversarial videos.
func TestOptimizerSeedDeterminism(t *testing.T) {
	for _, strategy := range OptimizerNames() {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			for _, seed := range []int64{1, 42, 12345} {
				a, _, _, _ := runStrategy(t, strategy, seed)
				b, _, _, _ := runStrategy(t, strategy, seed)
				if !a.Adv.Data.Equal(b.Adv.Data, 0) {
					t.Fatalf("seed %d: adversarial videos differ", seed)
				}
				if len(a.Trajectory) != len(b.Trajectory) {
					t.Fatalf("seed %d: trajectory lengths %d vs %d", seed, len(a.Trajectory), len(b.Trajectory))
				}
				for i := range a.Trajectory {
					if math.Float64bits(a.Trajectory[i]) != math.Float64bits(b.Trajectory[i]) {
						t.Fatalf("seed %d: trajectory diverged at %d", seed, i)
					}
				}
			}
		})
	}
}
