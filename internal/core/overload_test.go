package core

// Billing correctness under load shedding: a victim that refuses a query
// at admission (retrieval.ErrOverloaded) never served it, so SparseQuery
// must refund the attempt — shed round-trips appear in QueryResult.Shed
// and the attack.shed counter, never in Queries, never in a retrieve
// leaf's `queries` attribute, and never in the attack.queries counter.

import (
	"errors"
	"fmt"
	"testing"

	"duo/internal/retrieval"
	"duo/internal/telemetry"
	"duo/internal/trace"
	"duo/internal/video"
)

// sheddingVictim wraps the fixture's engine with a deterministic admission
// schedule: calls in [shedFrom, shedTo] and every shedEvery-th call are
// refused with a wrapped ErrOverloaded, exactly as a cluster surfaces a
// policy violation caused by a shedding node. SparseQuery is
// single-goroutine, so no locking is needed.
type sheddingVictim struct {
	inner            *retrieval.Engine
	calls            int
	served           int
	shed             int
	shedFrom, shedTo int
	shedEvery        int
}

var _ retrieval.FallibleRetriever = (*sheddingVictim)(nil)

func (s *sheddingVictim) shedding() bool {
	if s.shedFrom > 0 && s.calls >= s.shedFrom && s.calls <= s.shedTo {
		return true
	}
	return s.shedEvery > 0 && s.calls%s.shedEvery == 0
}

func (s *sheddingVictim) RetrieveErr(v *video.Video, m int) ([]retrieval.Result, error) {
	s.calls++
	if s.shedding() {
		s.shed++
		return nil, fmt.Errorf("retrieval: require-all: 1/2 nodes answered (1 shed): %w", retrieval.ErrOverloaded)
	}
	s.served++
	return s.inner.Retrieve(v, m), nil
}

func (s *sheddingVictim) Retrieve(v *video.Video, m int) []retrieval.Result {
	rs, _ := s.RetrieveErr(v, m)
	return rs
}

func TestSparseQueryRefundsShedQueries(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	victim := &sheddingVictim{inner: f.victim, shedEvery: 5}
	ctx := newCtx(f, 41)
	ctx.Victim = victim
	reg := telemetry.New()
	ctx.Telemetry = reg
	tr := trace.New("overload-billing")
	ctx.Trace = tr
	cfg := testQueryConfig()
	qr, err := SparseQuery(ctx, f.origin, f.target, masks, cfg)
	if err != nil {
		t.Fatalf("periodic sheds broke SparseQuery: %v", err)
	}

	if victim.shed == 0 {
		t.Fatal("shed schedule never fired; the test exercises nothing")
	}
	// The core invariant: billed == served, sheds tracked separately.
	if qr.Queries != victim.served {
		t.Errorf("billed %d queries, victim served %d — sheds must not bill", qr.Queries, victim.served)
	}
	if qr.Shed != victim.shed {
		t.Errorf("QueryResult.Shed = %d, victim shed %d", qr.Shed, victim.shed)
	}
	if victim.served+victim.shed != victim.calls {
		t.Errorf("victim accounting drifted: %d served + %d shed != %d calls",
			victim.served, victim.shed, victim.calls)
	}
	if qr.Queries > cfg.MaxQueries {
		t.Errorf("queries %d exceeded budget %d", qr.Queries, cfg.MaxQueries)
	}

	// Telemetry mirrors the split: attack.queries bills served round-trips
	// only, attack.shed the refused ones.
	snap := reg.Snapshot()
	if got := snap.Counters["attack.queries"]; got != int64(qr.Queries) {
		t.Errorf("attack.queries = %d, want billed %d", got, qr.Queries)
	}
	if got := snap.Counters["attack.shed"]; got != int64(qr.Shed) {
		t.Errorf("attack.shed = %d, want %d", got, qr.Shed)
	}

	// Trace attribution: Σ `queries` over retrieve leaves equals the billed
	// count exactly (duotrace's invariant), and shed attempts surface only
	// through the separate `shed` attribute.
	var attributed, shedAttr int64
	for _, r := range tr.Records() {
		if q, ok := r.Int("queries"); ok {
			if r.Name != "retrieve" {
				t.Errorf("span %q carries a `queries` attr; reserved for retrieve leaves", r.Name)
			}
			attributed += q
		}
		if s, ok := r.Int("shed"); ok && r.Name == "retrieve" {
			shedAttr += s
		}
	}
	if attributed != int64(qr.Queries) {
		t.Errorf("Σ retrieve queries attrs = %d, want billed %d", attributed, qr.Queries)
	}
	if shedAttr != int64(qr.Shed) {
		t.Errorf("Σ retrieve shed attrs = %d, want %d", shedAttr, qr.Shed)
	}
}

func TestSparseQuerySkipsWhenShedsPersist(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	// Calls 1–3 fetch the reference lists and 𝕋⁰; calls 4–12 shed,
	// outlasting the default 2 retries, so candidate steps are skipped —
	// without billing a single refused attempt.
	victim := &sheddingVictim{inner: f.victim, shedFrom: 4, shedTo: 12}
	ctx := newCtx(f, 42)
	ctx.Victim = victim
	tr := trace.New("overload-skip")
	ctx.Trace = tr
	qr, err := SparseQuery(ctx, f.origin, f.target, masks, testQueryConfig())
	if err != nil {
		t.Fatalf("sustained sheds broke SparseQuery: %v", err)
	}
	if qr.Skipped == 0 {
		t.Error("no candidate skipped despite a 9-call shed storm")
	}
	if qr.Shed != victim.shed || victim.shed == 0 {
		t.Errorf("QueryResult.Shed = %d, victim shed %d", qr.Shed, victim.shed)
	}
	if qr.Queries != victim.served {
		t.Errorf("billed %d, served %d", qr.Queries, victim.served)
	}
	// A retrieve round-trip refused on every attempt is outcome "shed" with
	// zero billed queries — it simply didn't happen.
	sawShedOutcome := false
	for _, r := range tr.Records() {
		if r.Name != "retrieve" {
			continue
		}
		if out, ok := r.Str("outcome"); ok && out == "shed" {
			sawShedOutcome = true
			if q, _ := r.Int("queries"); q != 0 {
				t.Errorf("outcome=shed retrieve span billed %d queries, want 0", q)
			}
		}
	}
	if !sawShedOutcome {
		t.Error("no retrieve span with outcome=shed despite exhausted retries")
	}
}

func TestSparseQueryAbortsWhenVictimAlwaysSheds(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	// Every call sheds: the reference lists can never be fetched, and the
	// round must abort with the typed overload error — after billing zero
	// queries, because the victim answered zero.
	victim := &sheddingVictim{inner: f.victim, shedFrom: 1, shedTo: 1 << 30}
	ctx := newCtx(f, 43)
	ctx.Victim = victim
	_, err = SparseQuery(ctx, f.origin, f.target, masks, testQueryConfig())
	if !errors.Is(err, retrieval.ErrOverloaded) {
		t.Fatalf("err = %v, want wrapped ErrOverloaded", err)
	}
	if victim.served != 0 {
		t.Errorf("victim served %d queries during a full outage", victim.served)
	}
}

func TestSparseQueryShedScheduleIsDeterministic(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *QueryResult {
		victim := &sheddingVictim{inner: f.victim, shedEvery: 4}
		ctx := newCtx(f, 44)
		ctx.Victim = victim
		qr, err := SparseQuery(ctx, f.origin, f.target, masks, testQueryConfig())
		if err != nil {
			t.Fatal(err)
		}
		return qr
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.Shed != b.Shed || a.Skipped != b.Skipped {
		t.Errorf("shed accounting not reproducible: (%d,%d,%d) vs (%d,%d,%d)",
			a.Queries, a.Shed, a.Skipped, b.Queries, b.Shed, b.Skipped)
	}
	if !a.Adv.Data.Equal(b.Adv.Data, 0) {
		t.Error("adversarial video differs between identical shed-schedule runs")
	}
}
