package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"duo/internal/models"
	"duo/internal/video"
)

// TestPropSparseTransferBudgetsAlwaysHold drives SparseTransfer with
// randomized budgets on a minimal geometry and checks every Eq. (1)
// constraint on the output, whatever the inputs.
func TestPropSparseTransferBudgetsAlwaysHold(t *testing.T) {
	g := models.Geometry{Frames: 4, Channels: 1, Height: 6, Width: 6}
	elems := g.Frames * g.Channels * g.Height * g.Width
	surr := models.NewC3D(rand.New(rand.NewSource(81)), g, 4)
	rng := rand.New(rand.NewSource(82))
	mk := func() *video.Video {
		v := video.New(g.Frames, g.Channels, g.Height, g.Width)
		v.Data.FillUniform(rng, 0, 255)
		return v
	}

	f := func(kRaw, nRaw uint8, tauRaw uint8) bool {
		k := 1 + int(kRaw)%(elems-1)
		n := 1 + int(nRaw)%g.Frames
		tau := 5 + float64(tauRaw%60)
		cfg := TransferConfig{
			K: k, N: n, Tau: tau,
			Lambda:     1e-3,
			OuterIters: 1, ThetaSteps: 3,
			Schedule: DefaultTransferConfig(g).Schedule,
			Norm:     NormLInf,
			UseADMM:  kRaw%2 == 0, // exercise both ℐ-step variants
			Tol:      1e-4,
		}
		masks, err := SparseTransfer(surr, mk(), mk(), cfg)
		if err != nil {
			return false
		}
		phi := masks.Compose()
		return phi.L0() <= k &&
			phi.L20() <= n &&
			phi.LInf() <= tau+1e-9 &&
			masks.Pixel.L0() == k &&
			len(masks.ActiveFrames()) == n
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropSparseQueryNeverExceedsTau randomizes the query stage and checks
// the ‖v_adv − v‖∞ ≤ τ and query-budget invariants.
func TestPropSparseQueryNeverExceedsTau(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, budgetRaw, tauRaw uint8) bool {
		cfg := QueryConfig{
			MaxQueries: 5 + int(budgetRaw)%40,
			Eta:        0.5,
			Tau:        10 + float64(tauRaw%50),
		}
		ctx := newCtx(f, seed)
		qr, err := SparseQuery(ctx, f.origin, f.target, masks, cfg)
		if err != nil {
			return false
		}
		delta := qr.Adv.Data.Sub(f.origin.Data)
		if delta.LInf() > cfg.Tau+1e-9 {
			return false
		}
		if qr.Queries > cfg.MaxQueries {
			return false
		}
		// Monotone trajectory.
		for i := 1; i < len(qr.Trajectory); i++ {
			if qr.Trajectory[i] > qr.Trajectory[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
