//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// its write barriers add allocations that break exact AllocsPerRun counts.
const raceEnabled = true
