package core

import (
	"math/rand"
	"slices"
	"testing"
)

// TestPermIntoMatchesRandPerm pins the drop-in contract of permInto: for
// every n it must produce exactly rand.Perm's permutation AND leave the RNG
// in exactly rand.Perm's state, so the strategies' switch from Perm to the
// buffer-reusing variant cannot move any golden fingerprint.
func TestPermIntoMatchesRandPerm(t *testing.T) {
	for n := 0; n <= 65; n++ {
		a := rand.New(rand.NewSource(int64(n)*7 + 1))
		b := rand.New(rand.NewSource(int64(n)*7 + 1))
		want := a.Perm(n)
		got := permInto(b, nil, n)
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: permInto = %v, rand.Perm = %v", n, got, want)
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: RNG state diverged after the permutation", n)
		}
	}
}

// TestPermIntoReusesBuffer checks the steady-state path: a warm buffer is
// refilled in place (no growth) and still matches rand.Perm draw for draw.
func TestPermIntoReusesBuffer(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	var buf []int
	for round := 0; round < 10; round++ {
		want := a.Perm(33)
		buf = permInto(b, buf, 33)
		if !slices.Equal(buf, want) {
			t.Fatalf("round %d: permInto = %v, rand.Perm = %v", round, buf, want)
		}
	}
	first := permInto(rand.New(rand.NewSource(1)), nil, 16)
	p := &first[0]
	again := permInto(rand.New(rand.NewSource(2)), first, 16)
	if &again[0] != p {
		t.Fatalf("permInto grew a buffer that already had capacity")
	}
	if short := permInto(rand.New(rand.NewSource(3)), again, 8); len(short) != 8 {
		t.Fatalf("permInto(n=8) returned length %d", len(short))
	}
}
