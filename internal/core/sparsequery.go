package core

import (
	"fmt"
	"math"

	"duo/internal/attack"
	"duo/internal/mathx"
	"duo/internal/metrics"
	"duo/internal/retrieval"
	"duo/internal/trace"
	"duo/internal/video"
)

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BasisType selects the search basis of SparseQuery's coordinate descent.
// The zero value is the paper's Cartesian basis (Eq. 4).
type BasisType int

const (
	// BasisCartesian perturbs one element per query (the paper's setting).
	BasisCartesian BasisType = iota
	// BasisDCT perturbs along masked low-frequency 2-D DCT basis functions
	// of one frame/channel per query — the SimBA-DCT refinement of [53],
	// which trades per-element sparsity for smoother, lower-visibility
	// perturbations.
	BasisDCT
)

// QueryConfig parameterizes the black-box rectification stage.
type QueryConfig struct {
	// MaxQueries is iter_numQ, the query budget (1,000 in §V-B).
	MaxQueries int
	// Eta is the margin η in Eq. (2).
	Eta float64
	// Epsilon is the coordinate step size; ‖±εq‖∞ ≤ τ is enforced, so ε
	// defaults to τ when zero.
	Epsilon float64
	// Tau is the per-element budget relative to the *round's* base video.
	Tau float64
	// Sim is the list-similarity ℍ; nil selects the NDCG-weighted
	// CoOccurrence of [10] (plain overlap is the DESIGN.md §6 ablation).
	Sim metrics.ListSimilarity
	// Mode selects Targeted (zero value and default) or Untargeted; the
	// untargeted objective drops the target term of Eq. (2).
	Mode Mode
	// Basis selects Cartesian (default, per the paper) or DCT directions
	// for the sparsequery strategy.
	Basis BasisType
	// Strategy selects the registered BlackBoxOptimizer driving the
	// victim-query walk: "sparsequery" (empty value and default, the
	// paper's Algorithm 2), "sparsers" (Sparse-RS random search), or
	// "evolutionary" (population-based frame-pixel search). Every strategy
	// runs inside the same billing/tracing/shed-refund harness.
	Strategy string
	// QueryRetries is how many extra attempts a failed victim query gets
	// before its candidate step is skipped. Every attempt — retries
	// included — counts against MaxQueries: a flaky victim burns budget,
	// it never corrupts 𝕋 with a partial list. 0 selects the default (2);
	// negative disables retries. Only distributed victims exposing
	// RetrieveErr can fail; plain engines never trigger this path.
	QueryRetries int
	// BatchPairs evaluates each iteration's +ε/−ε candidate pair in one
	// RetrieveBatch round-trip when the victim implements
	// retrieval.BatchRetriever. Both arms are billed even when +ε alone
	// would have been accepted, so the walk trades query-budget efficiency
	// for round-trip latency; it is therefore opt-in and off by default.
	// Fallible (distributed) victims always take the sequential path —
	// their retry accounting needs one query at a time. Only the
	// sparsequery strategy batches pairs.
	BatchPairs bool
}

// DefaultQueryConfig returns the paper's SparseQuery settings scaled down
// (iter_numQ=1,000 in the paper; callers lower it for tests).
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{MaxQueries: 1000, Eta: 0.5, Tau: 30}
}

// QueryResult is the rectification stage's outcome for one round.
type QueryResult struct {
	// Adv is the rectified adversarial video.
	Adv *video.Video
	// Trajectory is 𝕋 after each iteration (Fig. 5).
	Trajectory []float64
	// Queries is the number of victim queries consumed (failed attempts
	// and their retries included — the victim still served them).
	Queries int
	// Improved reports whether any candidate strictly lowered 𝕋.
	Improved bool
	// Skipped counts candidate steps abandoned because the victim query
	// failed even after retries (distributed victims only).
	Skipped int
	// Shed counts victim round-trips refused at admission (ErrOverloaded).
	// A shed request was never served, so it is NOT billed: Queries excludes
	// every shed attempt, keeping the attack's query count equal to what the
	// victim actually answered.
	Shed int
	// BatchedPairs counts iterations whose ±ε pair went to the victim as
	// one batched round-trip (cfg.BatchPairs against a BatchRetriever).
	BatchedPairs int
}

// SparseQuery runs the black-box rectification stage: the strategy named
// by cfg.Strategy (Algorithm 2's masked SimBA-style coordinate descent by
// default) walks candidates against the victim. v is the round's base
// video, vt the target, and masks the prior from SparseTransfer;
// perturbations stay inside the support of ℐ⊙𝓕⊙θ (Eq. 4) and within ±τ of
// v on every element, whatever the strategy.
func SparseQuery(ctx *attack.Context, v, vt *video.Video, masks *Masks, cfg QueryConfig) (*QueryResult, error) {
	return sparseQuery(ctx, nil, v, vt, masks, cfg)
}

// sparseQuery is SparseQuery with span recording under parent: one
// sparsequery span (carrying the strategy name), one query.step span per
// strategy iteration, and one leaf retrieve span per victim round-trip.
// The `queries` attribute appears ONLY on retrieve leaves and covers every
// billing site — reference fetches, walk steps, retries, batched pairs —
// so Σ queries over retrieve spans equals the round's billed query count
// exactly (duotrace enforces this). The harness below owns everything the
// contracts bind; the selected BlackBoxOptimizer only ever sees the
// Oracle.
func sparseQuery(ctx *attack.Context, parent *trace.Span, v, vt *video.Video, masks *Masks, cfg QueryConfig) (*QueryResult, error) {
	if cfg.MaxQueries <= 0 {
		return nil, fmt.Errorf("core: non-positive query budget %d", cfg.MaxQueries)
	}
	if cfg.Tau <= 0 {
		return nil, fmt.Errorf("core: τ=%g must be positive", cfg.Tau)
	}
	strategy, err := newOptimizer(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	sim := cfg.Sim
	if sim == nil {
		sim = metrics.CoOccurrence
	}
	eps := cfg.Epsilon
	if eps <= 0 || eps > cfg.Tau {
		eps = cfg.Tau
	}

	retries := cfg.QueryRetries
	if retries == 0 {
		retries = 2
	}
	if retries < 0 {
		retries = 0
	}

	mode := cfg.Mode
	if mode == 0 {
		mode = Targeted
	}

	// The harness itself bills queries before any strategy step runs: the
	// reference-list fetches plus the initial 𝕋⁰ evaluation. A budget that
	// cannot even cover that overhead would overrun MaxQueries, so reject
	// it as a misconfiguration instead.
	overhead := 2 // R(v) reference + 𝕋⁰
	if mode != Untargeted {
		overhead++ // R(v_t) reference
	}
	if cfg.MaxQueries < overhead {
		return nil, fmt.Errorf("core: query budget %d cannot cover the %d reference/initial queries", cfg.MaxQueries, overhead)
	}

	tr := ctx.Trace
	qsp := tr.Start(parent, "sparsequery")
	defer qsp.End()
	qsp.SetStr("strategy", strategy.Name())

	o := &Oracle{
		ctx:     &oracleCtx{victim: ctx.Victim, m: ctx.M, rng: ctx.Rng},
		cfg:     cfg,
		eps:     eps,
		sim:     sim,
		mode:    mode,
		v:       v,
		vt:      vt,
		masks:   masks,
		retries: retries,
		tr:      tr,
		qsp:     qsp,
		res:     &QueryResult{},
		// Write-only instruments: the query counter burns with the budget
		// and the ring keeps the tail of the 𝕋 trajectory (Fig. 5) for
		// inspection. Neither is ever read back, so telemetry cannot
		// perturb the walk.
		telQueries: ctx.Telemetry.Counter("attack.queries"),
		telShed:    ctx.Telemetry.Counter("attack.shed"),
		telTraj:    ctx.Telemetry.Ring("attack.trajectory", 512),
	}
	o.retrParent = qsp
	o.fallible, _ = ctx.Victim.(retrieval.FallibleRetriever)
	o.traced, _ = ctx.Victim.(retrieval.TracedRetriever)
	// A fallible victim keeps the one-query-at-a-time path so retries are
	// billed per attempt; batching is only sound when Retrieve cannot fail.
	if o.fallible == nil {
		o.batcher, _ = ctx.Victim.(retrieval.BatchRetriever)
	}

	// Reference lists for Eq. (2). Untargeted runs have no target list and
	// minimize ℍ(R(v_adv), R(v)) + η alone. A victim that cannot answer
	// the reference queries leaves the round with no objective at all.
	if mode != Untargeted && vt == nil {
		return nil, fmt.Errorf("core: targeted SparseQuery needs a target video")
	}
	if err := o.fetchReferences(); err != nil {
		return nil, err
	}

	// Line 1–2: v_adv⁰ = v + ℐ⊙𝓕⊙θ, 𝕋⁰. The prior is projected into this
	// stage's τ-ball so the ‖v_adv − v‖∞ ≤ τ contract holds even when the
	// caller configured a larger transfer-stage budget.
	adv := v.Add(masks.Compose().Clamp(-cfg.Tau, cfg.Tau))
	tCur, err := o.objective(adv)
	if err != nil {
		return nil, err
	}
	o.cur, o.tCur = adv, tCur

	// Every strategy is restricted to the support of ℐ⊙𝓕⊙θ (Eq. 4).
	support := supportIndices(masks)
	if len(support) == 0 {
		// Degenerate prior (θ ≡ 0 on the mask): explore the mask itself.
		support = maskIndices(masks)
	}
	if len(support) == 0 {
		o.telTraj.Push(tCur)
		return &QueryResult{Adv: adv, Trajectory: []float64{tCur}, Queries: o.queries, Shed: o.shedTotal}, nil
	}
	o.support = support

	// One trajectory entry per strategy iteration, and every iteration
	// spends at least one query on the steady-state path: pre-sizing to the
	// budget keeps Record's append from ever growing the slice mid-walk.
	o.res.Trajectory = make([]float64, 1, cfg.MaxQueries+2)
	o.res.Trajectory[0] = tCur
	o.telTraj.Push(tCur)

	if err := strategy.Optimize(o); err != nil {
		return nil, err
	}

	res := o.res
	res.Adv = o.cur
	res.Queries = o.queries
	res.Shed = o.shedTotal
	qsp.SetInt("support", int64(len(support)))
	qsp.SetInt("round_queries", int64(res.Queries))
	qsp.SetInt("skipped", int64(res.Skipped))
	qsp.SetInt("shed", int64(res.Shed))
	qsp.SetInt("batched_pairs", int64(res.BatchedPairs))
	return res, nil
}

func init() {
	RegisterOptimizer(StrategySparseQuery, func() BlackBoxOptimizer { return sparseQueryOpt{} })
}

// sparseQueryOpt is the paper's Algorithm 2 as a BlackBoxOptimizer: masked
// SimBA-style coordinate descent, one ±ε candidate pair per iteration over
// a without-replacement permutation of the support (or masked DCT basis
// directions with cfg.Basis == BasisDCT).
type sparseQueryOpt struct{}

func (sparseQueryOpt) Name() string { return StrategySparseQuery }

//duolint:hot
func (sparseQueryOpt) Optimize(o *Oracle) error {
	cfg := o.cfg
	v := o.v
	support := o.support
	eps := o.eps
	rng := o.Rng()

	// The retrieval list is a step function of the input, so 𝕋 plateaus
	// between rank boundaries. Eq. (3) therefore accepts non-strictly
	// (𝕋 ≤ 𝕋_prev keeps the +ε step): the walk keeps moving across
	// plateaus and descends whenever it crosses a boundary. Acceptance
	// never increases 𝕋, so the final state is also the best visited.
	perm := permInto(rng, nil, len(support))
	pi := 0

	// makeCandidate builds the κ-th candidate pair generator according to
	// the configured basis.
	cartesianCandidate := func(sign float64) (*video.Video, bool) {
		idx := support[perm[pi%len(perm)]]
		cand := o.NewCandidate()
		return cand, o.ApplyStep(cand, idx, sign*eps)
	}
	var activeFrames []int
	if cfg.Basis == BasisDCT {
		activeFrames = o.masks.ActiveFrames()
		if len(activeFrames) == 0 {
			for f := 0; f < v.Frames(); f++ {
				activeFrames = append(activeFrames, f)
			}
		}
	}
	var dctDir [][]float64
	var dctFrame, dctChannel int
	sampleDCT := func() {
		dctFrame = activeFrames[rng.Intn(len(activeFrames))]
		dctChannel = rng.Intn(v.Channels())
		// Low-frequency quarter of the spectrum.
		maxU := max(1, v.Height()/4)
		maxV := max(1, v.Width()/4)
		dir := mathx.DCTBasis2D(v.Height(), v.Width(), rng.Intn(maxU), rng.Intn(maxV))
		// Normalize to ‖·‖∞ = 1 so ε keeps its per-element meaning.
		peak := 0.0
		for _, row := range dir {
			for _, x := range row {
				if a := math.Abs(x); a > peak {
					peak = a
				}
			}
		}
		if peak > 0 {
			for _, row := range dir {
				for x := range row {
					row[x] /= peak
				}
			}
		}
		dctDir = dir
	}
	dctCandidate := func(sign float64) (*video.Video, bool) {
		cand := o.NewCandidate()
		pm, fm := o.masks.Pixel.Data(), o.masks.Frame.Data()
		perFrame := v.Data.Len() / v.Frames()
		plane := v.Height() * v.Width()
		changed := false
		for y := 0; y < v.Height(); y++ {
			for x := 0; x < v.Width(); x++ {
				idx := dctFrame*perFrame + dctChannel*plane + y*v.Width() + x
				if pm[idx]*fm[idx] == 0 {
					continue
				}
				if o.ApplyStep(cand, idx, sign*eps*dctDir[y][x]) {
					changed = true
				}
			}
		}
		return cand, changed
	}
	buildCandidate := func(sign float64) (*video.Video, bool) {
		if cfg.Basis == BasisDCT {
			return dctCandidate(sign)
		}
		return cartesianCandidate(sign)
	}
	// tryArm issues one sequential query for a prebuilt arm; it reports
	// whether the walk is done with this iteration's pair (the arm was
	// accepted, or the budget ran out before it could be queried).
	tryArm := func(cand *video.Video, changed bool) bool {
		if !changed {
			return false // no-op candidate, don't waste a query
		}
		if o.Remaining() == 0 {
			return true
		}
		tNew, err := o.Score(cand)
		if err != nil {
			// Retry-or-skip: the retries inside the oracle are spent;
			// reject the candidate rather than scoring it against a
			// partial (availability-degraded) retrieval list.
			o.Skip()
			return false
		}
		return o.Accept(cand, tNew)
	}
	// trySequential walks a prebuilt pair in Eq. (3) order (+ε before −ε),
	// one victim query each, keeping the first non-increasing candidate and
	// releasing both arms' storage back to the oracle.
	trySequential := func(candP, candM *video.Video, okP, okM bool) {
		if !tryArm(candP, okP) {
			tryArm(candM, okM)
		}
		o.Release(candP)
		o.Release(candM)
	}
	pairBatch := cfg.BatchPairs && o.PairBatching()

	for o.Remaining() > 0 {
		// Line 5: sample q from the basis without replacement; reshuffle
		// once the Cartesian basis is exhausted.
		if pi >= len(perm) {
			perm = permInto(rng, perm, len(support))
			pi = 0
		}
		stepSp := o.StepStart()
		if cfg.Basis == BasisDCT {
			sampleDCT()
			stepSp.SetInt("frame", int64(dctFrame))
			stepSp.SetInt("channel", int64(dctChannel))
		} else {
			stepSp.SetInt("pixel", int64(support[perm[pi%len(perm)]]))
		}

		// Lines 6–14 / Eq. (3): try +ε then −ε, keeping the first
		// candidate that does not increase 𝕋.
		if pairBatch {
			candP, okP := buildCandidate(1)
			candM, okM := buildCandidate(-1)
			if okP && okM && o.Remaining() >= 2 {
				// Both arms go out in one round-trip; both are billed.
				// Acceptance order is unchanged: +ε wins whenever it
				// qualifies, so the per-iteration walk matches the
				// sequential one exactly.
				tp, tm, err := o.ScorePair(candP, candM)
				if err != nil {
					o.Skip()
				} else if !o.Accept(candP, tp) {
					o.Accept(candM, tm)
				}
				o.Release(candP)
				o.Release(candM)
			} else {
				// A no-op arm or budget for at most one query: fall back
				// to the sequential walk over the prebuilt pair.
				trySequential(candP, candM, okP, okM)
			}
		} else {
			candP, okP := buildCandidate(1)
			candM, okM := buildCandidate(-1)
			trySequential(candP, candM, okP, okM)
		}
		pi++
		o.Record()
		stepSp.SetFloat("T", o.tCur)
		o.StepEnd(stepSp)
	}
	return nil
}

// supportIndices returns the flat indices where ℐ⊙𝓕⊙θ ≠ 0 (Eq. 4).
func supportIndices(m *Masks) []int {
	composed := m.Compose().Data()
	var out []int
	for i, v := range composed {
		if v != 0 {
			out = append(out, i)
		}
	}
	return out
}

// maskIndices returns the flat indices where ℐ⊙𝓕 ≠ 0 regardless of θ.
func maskIndices(m *Masks) []int {
	p, f := m.Pixel.Data(), m.Frame.Data()
	var out []int
	for i := range p {
		if p[i] != 0 && f[i] != 0 {
			out = append(out, i)
		}
	}
	return out
}
