package core

import (
	"errors"
	"fmt"
	"math"

	"duo/internal/attack"
	"duo/internal/mathx"
	"duo/internal/metrics"
	"duo/internal/retrieval"
	"duo/internal/trace"
	"duo/internal/video"
)

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BasisType selects the search basis of SparseQuery's coordinate descent.
// The zero value is the paper's Cartesian basis (Eq. 4).
type BasisType int

const (
	// BasisCartesian perturbs one element per query (the paper's setting).
	BasisCartesian BasisType = iota
	// BasisDCT perturbs along masked low-frequency 2-D DCT basis functions
	// of one frame/channel per query — the SimBA-DCT refinement of [53],
	// which trades per-element sparsity for smoother, lower-visibility
	// perturbations.
	BasisDCT
)

// QueryConfig parameterizes SparseQuery.
type QueryConfig struct {
	// MaxQueries is iter_numQ, the query budget (1,000 in §V-B).
	MaxQueries int
	// Eta is the margin η in Eq. (2).
	Eta float64
	// Epsilon is the coordinate step size; ‖±εq‖∞ ≤ τ is enforced, so ε
	// defaults to τ when zero.
	Epsilon float64
	// Tau is the per-element budget relative to the *round's* base video.
	Tau float64
	// Sim is the list-similarity ℍ; nil selects the NDCG-weighted
	// CoOccurrence of [10] (plain overlap is the DESIGN.md §6 ablation).
	Sim metrics.ListSimilarity
	// Mode selects Targeted (zero value and default) or Untargeted; the
	// untargeted objective drops the target term of Eq. (2).
	Mode Mode
	// Basis selects Cartesian (default, per the paper) or DCT directions.
	Basis BasisType
	// QueryRetries is how many extra attempts a failed victim query gets
	// before its candidate step is skipped. Every attempt — retries
	// included — counts against MaxQueries: a flaky victim burns budget,
	// it never corrupts 𝕋 with a partial list. 0 selects the default (2);
	// negative disables retries. Only distributed victims exposing
	// RetrieveErr can fail; plain engines never trigger this path.
	QueryRetries int
	// BatchPairs evaluates each iteration's +ε/−ε candidate pair in one
	// RetrieveBatch round-trip when the victim implements
	// retrieval.BatchRetriever. Both arms are billed even when +ε alone
	// would have been accepted, so the walk trades query-budget efficiency
	// for round-trip latency; it is therefore opt-in and off by default.
	// Fallible (distributed) victims always take the sequential path —
	// their retry accounting needs one query at a time.
	BatchPairs bool
}

// DefaultQueryConfig returns the paper's SparseQuery settings scaled down
// (iter_numQ=1,000 in the paper; callers lower it for tests).
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{MaxQueries: 1000, Eta: 0.5, Tau: 30}
}

// QueryResult is SparseQuery's outcome for one round.
type QueryResult struct {
	// Adv is the rectified adversarial video.
	Adv *video.Video
	// Trajectory is 𝕋 after each iteration (Fig. 5).
	Trajectory []float64
	// Queries is the number of victim queries consumed (failed attempts
	// and their retries included — the victim still served them).
	Queries int
	// Improved reports whether any coordinate step was accepted.
	Improved bool
	// Skipped counts candidate steps abandoned because the victim query
	// failed even after retries (distributed victims only).
	Skipped int
	// Shed counts victim round-trips refused at admission (ErrOverloaded).
	// A shed request was never served, so it is NOT billed: Queries excludes
	// every shed attempt, keeping the attack's query count equal to what the
	// victim actually answered.
	Shed int
	// BatchedPairs counts iterations whose ±ε pair went to the victim as
	// one batched round-trip (cfg.BatchPairs against a BatchRetriever).
	BatchedPairs int
}

// SparseQuery runs Algorithm 2: masked SimBA-style coordinate descent on
// the victim. v is the round's base video, vt the target, and masks the
// prior from SparseTransfer; perturbations stay inside the support of
// ℐ⊙𝓕⊙θ (Eq. 4) and within ±τ of v on every element.
func SparseQuery(ctx *attack.Context, v, vt *video.Video, masks *Masks, cfg QueryConfig) (*QueryResult, error) {
	return sparseQuery(ctx, nil, v, vt, masks, cfg)
}

// sparseQuery is SparseQuery with span recording under parent: one
// sparsequery span, one query.step span per coordinate iteration (with
// the candidate pixel and post-step 𝕋), and one leaf retrieve span per
// victim round-trip. The `queries` attribute appears ONLY on retrieve
// leaves and covers every billing site — reference fetches, walk steps,
// retries, batched pairs — so Σ queries over retrieve spans equals the
// round's billed query count exactly (duotrace enforces this).
func sparseQuery(ctx *attack.Context, parent *trace.Span, v, vt *video.Video, masks *Masks, cfg QueryConfig) (*QueryResult, error) {
	if cfg.MaxQueries <= 0 {
		return nil, fmt.Errorf("core: non-positive query budget %d", cfg.MaxQueries)
	}
	if cfg.Tau <= 0 {
		return nil, fmt.Errorf("core: τ=%g must be positive", cfg.Tau)
	}
	sim := cfg.Sim
	if sim == nil {
		sim = metrics.CoOccurrence
	}
	eps := cfg.Epsilon
	if eps <= 0 || eps > cfg.Tau {
		eps = cfg.Tau
	}

	retries := cfg.QueryRetries
	if retries == 0 {
		retries = 2
	}
	if retries < 0 {
		retries = 0
	}

	// Write-only instruments: the query counter burns with the budget and
	// the ring keeps the tail of the 𝕋 trajectory (Fig. 5) for inspection.
	// Neither is ever read back, so telemetry cannot perturb the walk.
	telQueries := ctx.Telemetry.Counter("attack.queries")
	telShed := ctx.Telemetry.Counter("attack.shed")
	telTraj := ctx.Telemetry.Ring("attack.trajectory", 512)

	tr := ctx.Trace
	qsp := tr.Start(parent, "sparsequery")
	defer qsp.End()
	// retrParent is the span the next leaf retrieve span hangs under: the
	// sparsequery span for the reference fetches, the current query.step
	// span during the walk.
	retrParent := qsp

	queries := 0
	shedTotal := 0
	fallible, _ := ctx.Victim.(retrieval.FallibleRetriever)
	traced, _ := ctx.Victim.(retrieval.TracedRetriever)
	// A fallible victim keeps the one-query-at-a-time path so retries are
	// billed per attempt; batching is only sound when Retrieve cannot fail.
	var batcher retrieval.BatchRetriever
	if fallible == nil {
		batcher, _ = ctx.Victim.(retrieval.BatchRetriever)
	}
	// retrieveIDs issues one victim query, retrying a fallible victim up
	// to `retries` extra times; every attempt counts against the budget.
	// A nil error guarantees the list is complete — a failed node must
	// never leak a silently-partial top-m into 𝕋 (Eq. 2). Each call
	// records one leaf retrieve span whose `queries` attribute is exactly
	// what this call billed, retries included — EXCEPT sheds: an attempt
	// the victim refused at admission (ErrOverloaded) is refunded, because
	// the victim never served it. Shed attempts still consume a retry slot
	// (the loop is bounded by `retries`, not by budget), and they surface
	// on the span as a `shed` attribute, never inside `queries`.
	retrieveIDs := func(qv *video.Video) ([]string, error) {
		rsp := tr.Start(retrParent, "retrieve")
		if fallible == nil {
			queries++
			telQueries.Inc()
			ids := retrieval.IDs(ctx.Victim.Retrieve(qv, ctx.M))
			rsp.SetInt("queries", 1)
			rsp.SetStr("outcome", "ok")
			rsp.End()
			return ids, nil
		}
		billed := 0
		shed := 0
		var lastErr error
		for attempt := 0; attempt <= retries; attempt++ {
			if attempt > 0 && queries >= cfg.MaxQueries {
				break // no budget left to retry
			}
			queries++
			billed++
			var rs []retrieval.Result
			var err error
			// A traced victim (the cluster) attributes per-node child
			// spans under this retrieve leaf; results and billing are
			// identical to RetrieveErr.
			if tc := rsp.Ctx(); traced != nil && tc.Valid() {
				rs, err = traced.RetrieveTraced(tc, qv, ctx.M)
			} else {
				rs, err = fallible.RetrieveErr(qv, ctx.M)
			}
			if errors.Is(err, retrieval.ErrOverloaded) {
				// Load shed: the request never reached a shard, so it is
				// not a query the victim answered. Refund the bill and
				// account the attempt separately.
				queries--
				billed--
				shed++
				shedTotal++
				telShed.Inc()
				lastErr = err
				continue
			}
			telQueries.Inc()
			if err == nil {
				rsp.SetInt("queries", int64(billed))
				if shed > 0 {
					rsp.SetInt("shed", int64(shed))
				}
				rsp.SetStr("outcome", "ok")
				rsp.End()
				return retrieval.IDs(rs), nil
			}
			lastErr = err
		}
		rsp.SetInt("queries", int64(billed))
		if shed > 0 {
			rsp.SetInt("shed", int64(shed))
		}
		if billed == 0 && shed > 0 {
			// Every attempt was refused at admission — the round-trip cost
			// nothing, it just didn't happen.
			rsp.SetStr("outcome", "shed")
		} else {
			rsp.SetStr("outcome", "failed")
		}
		rsp.End()
		return nil, fmt.Errorf("core: victim query failed: %w", lastErr)
	}

	// Reference lists for Eq. (2). Untargeted runs have no target list and
	// minimize ℍ(R(v_adv), R(v)) + η alone. A victim that cannot answer
	// the reference queries leaves the round with no objective at all.
	// Targeted rounds against a batching victim fetch both references in
	// one round-trip; billing and results are identical to two Retrieves.
	var origList, targetList []string
	var err error
	if cfg.Mode != Untargeted && vt == nil {
		return nil, fmt.Errorf("core: targeted SparseQuery needs a target video")
	}
	if batcher != nil && cfg.Mode != Untargeted {
		rsp := tr.Start(qsp, "retrieve")
		queries += 2
		telQueries.Add(2)
		lists := batcher.RetrieveBatch([]*video.Video{v, vt}, ctx.M)
		origList, targetList = retrieval.IDs(lists[0]), retrieval.IDs(lists[1])
		rsp.SetInt("queries", 2)
		rsp.SetStr("outcome", "ok")
		rsp.SetStr("kind", "batch")
		rsp.End()
	} else {
		if origList, err = retrieveIDs(v); err != nil {
			return nil, err
		}
		if cfg.Mode != Untargeted {
			if targetList, err = retrieveIDs(vt); err != nil {
				return nil, err
			}
		}
	}
	// score is the billing-free half of the objective: Eq. (2) on an
	// already-retrieved list.
	score := func(advList []string) float64 {
		if cfg.Mode == Untargeted {
			return sim(advList, origList) + cfg.Eta
		}
		return metrics.Objective(sim, advList, origList, targetList, cfg.Eta)
	}
	objective := func(qv *video.Video) (float64, error) {
		advList, err := retrieveIDs(qv)
		if err != nil {
			return 0, err
		}
		return score(advList), nil
	}

	// Line 1–2: v_adv⁰ = v + ℐ⊙𝓕⊙θ, 𝕋⁰. The prior is projected into this
	// stage's τ-ball so the ‖v_adv − v‖∞ ≤ τ contract holds even when the
	// caller configured a larger transfer-stage budget.
	adv := v.Add(masks.Compose().Clamp(-cfg.Tau, cfg.Tau))
	tCur, err := objective(adv)
	if err != nil {
		return nil, err
	}

	// The Cartesian basis is restricted to the support of ℐ⊙𝓕⊙θ (Eq. 4).
	support := supportIndices(masks)
	if len(support) == 0 {
		// Degenerate prior (θ ≡ 0 on the mask): explore the mask itself.
		support = maskIndices(masks)
	}
	if len(support) == 0 {
		telTraj.Push(tCur)
		return &QueryResult{Adv: adv, Trajectory: []float64{tCur}, Queries: queries, Shed: shedTotal}, nil
	}

	// The retrieval list is a step function of the input, so 𝕋 plateaus
	// between rank boundaries. Eq. (3) therefore accepts non-strictly
	// (𝕋 ≤ 𝕋_prev keeps the +ε step): the walk keeps moving across
	// plateaus and descends whenever it crosses a boundary. Acceptance
	// never increases 𝕋, so the final state is also the best visited.
	res := &QueryResult{Trajectory: []float64{tCur}}
	telTraj.Push(tCur)
	perm := ctx.Rng.Perm(len(support))
	pi := 0

	// applyStep writes a candidate value at one flat index, respecting the
	// ±τ box around v and the pixel range; it reports whether anything
	// changed.
	applyStep := func(cand *video.Video, idx int, delta float64) bool {
		d := cand.Data.Data()
		base := v.Data.Data()[idx]
		nv := d[idx] + delta
		nv = math.Max(base-cfg.Tau, math.Min(base+cfg.Tau, nv))
		nv = math.Max(video.PixelMin, math.Min(video.PixelMax, nv))
		if nv == d[idx] { //duolint:allow floateq exact no-op detection: a clipped step is worth a query iff it changed at least one bit
			return false
		}
		d[idx] = nv
		return true
	}

	// makeCandidate builds the κ-th candidate pair generator according to
	// the configured basis.
	cartesianCandidate := func(sign float64) (*video.Video, bool) {
		idx := support[perm[pi%len(perm)]]
		cand := adv.Clone()
		return cand, applyStep(cand, idx, sign*eps)
	}
	var activeFrames []int
	if cfg.Basis == BasisDCT {
		activeFrames = masks.ActiveFrames()
		if len(activeFrames) == 0 {
			for f := 0; f < v.Frames(); f++ {
				activeFrames = append(activeFrames, f)
			}
		}
	}
	var dctDir [][]float64
	var dctFrame, dctChannel int
	sampleDCT := func() {
		dctFrame = activeFrames[ctx.Rng.Intn(len(activeFrames))]
		dctChannel = ctx.Rng.Intn(v.Channels())
		// Low-frequency quarter of the spectrum.
		maxU := max(1, v.Height()/4)
		maxV := max(1, v.Width()/4)
		dir := mathx.DCTBasis2D(v.Height(), v.Width(), ctx.Rng.Intn(maxU), ctx.Rng.Intn(maxV))
		// Normalize to ‖·‖∞ = 1 so ε keeps its per-element meaning.
		peak := 0.0
		for _, row := range dir {
			for _, x := range row {
				if a := math.Abs(x); a > peak {
					peak = a
				}
			}
		}
		if peak > 0 {
			for _, row := range dir {
				for x := range row {
					row[x] /= peak
				}
			}
		}
		dctDir = dir
	}
	dctCandidate := func(sign float64) (*video.Video, bool) {
		cand := adv.Clone()
		pm, fm := masks.Pixel.Data(), masks.Frame.Data()
		perFrame := v.Data.Len() / v.Frames()
		plane := v.Height() * v.Width()
		changed := false
		for y := 0; y < v.Height(); y++ {
			for x := 0; x < v.Width(); x++ {
				idx := dctFrame*perFrame + dctChannel*plane + y*v.Width() + x
				if pm[idx]*fm[idx] == 0 {
					continue
				}
				if applyStep(cand, idx, sign*eps*dctDir[y][x]) {
					changed = true
				}
			}
		}
		return cand, changed
	}
	buildCandidate := func(sign float64) (*video.Video, bool) {
		if cfg.Basis == BasisDCT {
			return dctCandidate(sign)
		}
		return cartesianCandidate(sign)
	}
	// accept applies Eq. (3): keep a candidate whose 𝕋 did not increase.
	accept := func(cand *video.Video, tNew float64) bool {
		if tNew > tCur {
			return false
		}
		if tNew < tCur {
			res.Improved = true
		}
		adv = cand
		tCur = tNew
		return true
	}
	// trySequential walks prebuilt arms in Eq. (3) order (+ε before −ε),
	// one victim query each, keeping the first non-increasing candidate.
	type arm struct {
		cand    *video.Video
		changed bool
	}
	trySequential := func(arms []arm) {
		for _, a := range arms {
			if !a.changed {
				continue // no-op candidate, don't waste a query
			}
			if queries >= cfg.MaxQueries {
				break
			}
			tNew, err := objective(a.cand)
			if err != nil {
				// Retry-or-skip: the retries inside retrieveIDs are spent;
				// reject the candidate rather than scoring it against a
				// partial (availability-degraded) retrieval list.
				res.Skipped++
				continue
			}
			if accept(a.cand, tNew) {
				break
			}
		}
	}
	pairBatch := cfg.BatchPairs && batcher != nil

	for queries < cfg.MaxQueries {
		// Line 5: sample q from the basis without replacement; reshuffle
		// once the Cartesian basis is exhausted.
		if pi >= len(perm) {
			perm = ctx.Rng.Perm(len(support))
			pi = 0
		}
		stepSp := tr.Start(qsp, "query.step")
		retrParent = stepSp
		if cfg.Basis == BasisDCT {
			sampleDCT()
			stepSp.SetInt("frame", int64(dctFrame))
			stepSp.SetInt("channel", int64(dctChannel))
		} else {
			stepSp.SetInt("pixel", int64(support[perm[pi%len(perm)]]))
		}

		// Lines 6–14 / Eq. (3): try +ε then −ε, keeping the first
		// candidate that does not increase 𝕋.
		if pairBatch {
			candP, okP := buildCandidate(1)
			candM, okM := buildCandidate(-1)
			if okP && okM && queries+2 <= cfg.MaxQueries {
				// Both arms go out in one round-trip; both are billed.
				// Acceptance order is unchanged: +ε wins whenever it
				// qualifies, so the per-iteration walk matches the
				// sequential one exactly.
				rsp := tr.Start(stepSp, "retrieve")
				queries += 2
				telQueries.Add(2)
				res.BatchedPairs++
				lists := batcher.RetrieveBatch([]*video.Video{candP, candM}, ctx.M)
				rsp.SetInt("queries", 2)
				rsp.SetStr("outcome", "ok")
				rsp.SetStr("kind", "pair")
				rsp.End()
				if !accept(candP, score(retrieval.IDs(lists[0]))) {
					accept(candM, score(retrieval.IDs(lists[1])))
				}
			} else {
				// A no-op arm or budget for at most one query: fall back
				// to the sequential walk over the prebuilt pair.
				trySequential([]arm{{candP, okP}, {candM, okM}})
			}
		} else {
			candP, okP := buildCandidate(1)
			candM, okM := buildCandidate(-1)
			trySequential([]arm{{candP, okP}, {candM, okM}})
		}
		pi++
		res.Trajectory = append(res.Trajectory, tCur)
		telTraj.Push(tCur)
		stepSp.SetFloat("T", tCur)
		stepSp.End()
		retrParent = qsp
	}

	res.Adv = adv
	res.Queries = queries
	res.Shed = shedTotal
	qsp.SetInt("support", int64(len(support)))
	qsp.SetInt("round_queries", int64(res.Queries))
	qsp.SetInt("skipped", int64(res.Skipped))
	qsp.SetInt("shed", int64(res.Shed))
	qsp.SetInt("batched_pairs", int64(res.BatchedPairs))
	return res, nil
}

// supportIndices returns the flat indices where ℐ⊙𝓕⊙θ ≠ 0 (Eq. 4).
func supportIndices(m *Masks) []int {
	composed := m.Compose().Data()
	var out []int
	for i, v := range composed {
		if v != 0 {
			out = append(out, i)
		}
	}
	return out
}

// maskIndices returns the flat indices where ℐ⊙𝓕 ≠ 0 regardless of θ.
func maskIndices(m *Masks) []int {
	p, f := m.Pixel.Data(), m.Frame.Data()
	var out []int
	for i := range p {
		if p[i] != 0 && f[i] != 0 {
			out = append(out, i)
		}
	}
	return out
}
