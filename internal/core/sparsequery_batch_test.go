package core

import (
	"math/rand"
	"testing"

	"duo/internal/attack"
	"duo/internal/retrieval"
	"duo/internal/video"
)

// retrieverOnly hides every optional victim interface (BatchRetriever,
// FallibleRetriever) so SparseQuery must take the one-query-at-a-time path.
type retrieverOnly struct{ r retrieval.Retriever }

func (w retrieverOnly) Retrieve(v *video.Video, m int) []retrieval.Result {
	return w.r.Retrieve(v, m)
}

func runSparseQuery(t *testing.T, f *fixture, victim retrieval.Retriever, seed int64, cfg QueryConfig) *QueryResult {
	t.Helper()
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &attack.Context{Victim: victim, M: f.m, Rng: rand.New(rand.NewSource(seed))}
	qr, err := SparseQuery(ctx, f.origin, f.target, masks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return qr
}

func expectSameResult(t *testing.T, name string, a, b *QueryResult) {
	t.Helper()
	if a.Queries != b.Queries {
		t.Fatalf("%s: queries %d vs %d", name, a.Queries, b.Queries)
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatalf("%s: trajectory length %d vs %d", name, len(a.Trajectory), len(b.Trajectory))
	}
	for i := range a.Trajectory {
		if a.Trajectory[i] != b.Trajectory[i] {
			t.Fatalf("%s: trajectory[%d] = %v vs %v", name, i, a.Trajectory[i], b.Trajectory[i])
		}
	}
	ad, bd := a.Adv.Data.Data(), b.Adv.Data.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			t.Fatalf("%s: adversarial video differs at element %d: %v vs %v", name, i, ad[i], bd[i])
		}
	}
}

// TestSparseQueryHiddenBatcherEquivalence: the reference-query batching that
// kicks in automatically against a BatchRetriever must be invisible — same
// adversarial video, same trajectory, same bill as a victim that only
// exposes Retrieve.
func TestSparseQueryHiddenBatcherEquivalence(t *testing.T) {
	f := getFixture(t)
	cfg := testQueryConfig()
	batched := runSparseQuery(t, f, f.victim, 7, cfg)
	plain := runSparseQuery(t, f, retrieverOnly{f.victim}, 7, cfg)
	expectSameResult(t, "hidden batcher", batched, plain)
	if batched.BatchedPairs != 0 {
		t.Errorf("BatchPairs off but %d pairs batched", batched.BatchedPairs)
	}
}

// TestSparseQueryBatchPairsDeterministic: with pair batching on, two runs
// from the same seed are bitwise-identical.
func TestSparseQueryBatchPairsDeterministic(t *testing.T) {
	f := getFixture(t)
	cfg := testQueryConfig()
	cfg.BatchPairs = true
	a := runSparseQuery(t, f, f.victim, 11, cfg)
	b := runSparseQuery(t, f, f.victim, 11, cfg)
	expectSameResult(t, "batch-pairs determinism", a, b)
	if a.BatchedPairs == 0 {
		t.Error("no iterations used the batched pair path")
	}
}

// TestSparseQueryBatchPairsBilling: the victim's own counter must agree
// exactly with the attack's bookkeeping, and the budget must hold.
func TestSparseQueryBatchPairsBilling(t *testing.T) {
	f := getFixture(t)
	cfg := testQueryConfig()
	cfg.BatchPairs = true
	before := f.victim.QueryCount()
	qr := runSparseQuery(t, f, f.victim, 13, cfg)
	served := f.victim.QueryCount() - before
	if served != int64(qr.Queries) {
		t.Errorf("victim served %d queries, attack billed %d", served, qr.Queries)
	}
	if qr.Queries > cfg.MaxQueries {
		t.Errorf("queries %d exceeded budget %d", qr.Queries, cfg.MaxQueries)
	}
}

// TestSparseQueryBatchPairsTrajectoryMonotone: Eq. (3) acceptance keeps 𝕋
// non-increasing through the batched path too.
func TestSparseQueryBatchPairsTrajectoryMonotone(t *testing.T) {
	f := getFixture(t)
	cfg := testQueryConfig()
	cfg.BatchPairs = true
	qr := runSparseQuery(t, f, f.victim, 17, cfg)
	for i := 1; i < len(qr.Trajectory); i++ {
		if qr.Trajectory[i] > qr.Trajectory[i-1]+1e-12 {
			t.Fatalf("𝕋 increased at step %d: %g → %g", i, qr.Trajectory[i-1], qr.Trajectory[i])
		}
	}
}

// TestSparseQueryBatchPairsPlainVictimFallsBack: a victim without
// RetrieveBatch ignores the flag and still works.
func TestSparseQueryBatchPairsPlainVictimFallsBack(t *testing.T) {
	f := getFixture(t)
	cfg := testQueryConfig()
	cfg.BatchPairs = true
	qr := runSparseQuery(t, f, retrieverOnly{f.victim}, 19, cfg)
	if qr.BatchedPairs != 0 {
		t.Errorf("plain victim reported %d batched pairs", qr.BatchedPairs)
	}
	if qr.Queries > cfg.MaxQueries {
		t.Errorf("queries %d exceeded budget %d", qr.Queries, cfg.MaxQueries)
	}
}

// TestSparseQueryBatchPairsDCT exercises the batched pair path with the
// DCT basis (candidate construction touches the rng before the pair is
// built, so the stream must stay aligned between runs).
func TestSparseQueryBatchPairsDCT(t *testing.T) {
	f := getFixture(t)
	cfg := testQueryConfig()
	cfg.BatchPairs = true
	cfg.Basis = BasisDCT
	a := runSparseQuery(t, f, f.victim, 23, cfg)
	b := runSparseQuery(t, f, f.victim, 23, cfg)
	expectSameResult(t, "batch-pairs dct", a, b)
}
