package core

import (
	"errors"
	"testing"

	"duo/internal/retrieval"
	"duo/internal/video"
)

var errFlakyVictim = errors.New("node unreachable")

// flakyVictim wraps the fixture's engine with a scripted failure pattern,
// standing in for a distributed cluster whose RetrieveErr can fail.
// SparseQuery is single-goroutine, so no locking is needed.
type flakyVictim struct {
	inner *retrieval.Engine
	calls int
	// failFrom/failTo fail calls in [failFrom, failTo] (1-based).
	failFrom, failTo int
	// failEvery additionally fails every k-th call (0 disables).
	failEvery int
}

var _ retrieval.FallibleRetriever = (*flakyVictim)(nil)

func (f *flakyVictim) failing() bool {
	if f.failFrom > 0 && f.calls >= f.failFrom && f.calls <= f.failTo {
		return true
	}
	return f.failEvery > 0 && f.calls%f.failEvery == 0
}

func (f *flakyVictim) RetrieveErr(v *video.Video, m int) ([]retrieval.Result, error) {
	f.calls++
	if f.failing() {
		return nil, errFlakyVictim
	}
	return f.inner.Retrieve(v, m), nil
}

func (f *flakyVictim) Retrieve(v *video.Video, m int) []retrieval.Result {
	rs, _ := f.RetrieveErr(v, m)
	return rs
}

func TestSparseQueryRetriesFlakyVictim(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	// Every 7th victim query fails once; the default retries absorb it.
	victim := &flakyVictim{inner: f.victim, failEvery: 7}
	ctx := newCtx(f, 21)
	ctx.Victim = victim
	cfg := testQueryConfig()
	qr, err := SparseQuery(ctx, f.origin, f.target, masks, cfg)
	if err != nil {
		t.Fatalf("flaky victim broke SparseQuery: %v", err)
	}
	if qr.Queries > cfg.MaxQueries {
		t.Errorf("queries %d exceeded budget %d (retries must count)", qr.Queries, cfg.MaxQueries)
	}
	if qr.Skipped != 0 {
		t.Errorf("skipped %d candidates; single transient failures should be absorbed by retries", qr.Skipped)
	}
	for i := 1; i < len(qr.Trajectory); i++ {
		if qr.Trajectory[i] > qr.Trajectory[i-1]+1e-12 {
			t.Fatalf("trajectory increased at %d: %g → %g (partial list fed into 𝕋?)",
				i, qr.Trajectory[i-1], qr.Trajectory[i])
		}
	}
}

func TestSparseQuerySkipsWhenRetriesExhausted(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	// Calls 1–3 are the reference lists and 𝕋⁰; calls 4–9 fail, outlasting
	// the default 2 retries, so at least one candidate step is skipped.
	victim := &flakyVictim{inner: f.victim, failFrom: 4, failTo: 9}
	ctx := newCtx(f, 22)
	ctx.Victim = victim
	cfg := testQueryConfig()
	qr, err := SparseQuery(ctx, f.origin, f.target, masks, cfg)
	if err != nil {
		t.Fatalf("outage broke SparseQuery: %v", err)
	}
	if qr.Skipped == 0 {
		t.Error("no candidate was skipped despite a 6-call outage")
	}
	if qr.Queries > cfg.MaxQueries {
		t.Errorf("queries %d exceeded budget %d", qr.Queries, cfg.MaxQueries)
	}
}

func TestSparseQueryFailsWhenVictimDead(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	// Every call fails: the reference lists can never be retrieved and the
	// round must abort with the victim's error, not run on garbage.
	victim := &flakyVictim{inner: f.victim, failFrom: 1, failTo: 1 << 30}
	ctx := newCtx(f, 23)
	ctx.Victim = victim
	if _, err := SparseQuery(ctx, f.origin, f.target, masks, testQueryConfig()); !errors.Is(err, errFlakyVictim) {
		t.Fatalf("err = %v, want wrapped %v", err, errFlakyVictim)
	}
}

func TestSparseQueryNoRetriesWhenDisabled(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	victim := &flakyVictim{inner: f.victim, failEvery: 9}
	ctx := newCtx(f, 24)
	ctx.Victim = victim
	cfg := testQueryConfig()
	cfg.QueryRetries = -1 // disabled: every failure skips its candidate
	qr, err := SparseQuery(ctx, f.origin, f.target, masks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Skipped == 0 {
		t.Error("retries disabled but no candidate was skipped under periodic failures")
	}
}
