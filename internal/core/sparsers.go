package core

import (
	"errors"
	"math"
)

func init() {
	RegisterOptimizer(StrategySparseRS, func() BlackBoxOptimizer { return sparseRS{} })
}

// StrategySparseRS selects the Sparse-RS random-search strategy.
const StrategySparseRS = "sparsers"

const (
	// sparseRSAlphaInit is α_init: the fraction of the support resampled
	// per iteration at the start of the schedule.
	sparseRSAlphaInit = 0.8
	// sparseRSMaxNoop bounds consecutive no-op candidates (every sampled
	// vertex value already present bit-for-bit): the strategy bails out
	// rather than spin RNG without spending budget. In practice only a
	// fully saturated box hits this.
	sparseRSMaxNoop = 64
)

// sparseRSMilestones are the budget fractions at which α halves — the
// piecewise-constant decay schedule of Sparse-RS (Croce et al., 2022,
// arXiv 2006.12834), rescaled from their 10k-query budgets to this repo's
// smaller ones. Early iterations resample most of the support (global
// exploration); late iterations flip a few elements at a time (local
// refinement).
var sparseRSMilestones = []float64{0.02, 0.06, 0.15, 0.3, 0.5, 0.75}

// sparseRSAlpha returns the resampling fraction for the current budget
// position.
func sparseRSAlpha(used, budget int) float64 {
	frac := float64(used) / float64(budget)
	alpha := sparseRSAlphaInit
	for _, m := range sparseRSMilestones {
		if frac >= m {
			alpha /= 2
		}
	}
	return alpha
}

// sparseRS adapts Sparse-RS random search to DUO's masked setting: the
// sparse support is fixed by SparseTransfer (ℐ⊙𝓕⊙θ), so instead of moving
// the perturbed set, each iteration resamples the VALUES of a random
// α-fraction of the support to vertices of the ±τ box (Sparse-RS samples
// extreme values — box vertices maximize per-query signal), keeping the
// candidate iff 𝕋 does not increase. α follows the paper's
// piecewise-halving schedule, so the walk anneals from global resampling
// to near-coordinate moves.
type sparseRS struct{}

func (sparseRS) Name() string { return StrategySparseRS }

//duolint:hot
func (sparseRS) Optimize(o *Oracle) error {
	rng := o.Rng()
	support := o.Support()
	base := o.Base().Data.Data()
	tau := o.Tau()
	noop := 0
	step := 0
	var order []int
	for o.Remaining() > 0 && noop < sparseRSMaxNoop {
		alpha := sparseRSAlpha(o.Used(), o.Budget())
		k := int(math.Round(alpha * float64(len(support))))
		if k < 1 {
			k = 1
		}
		if k > len(support) {
			k = len(support)
		}
		sp := o.StepStart()
		sp.SetInt("step", int64(step))
		sp.SetFloat("alpha", alpha)
		sp.SetInt("resampled", int64(k))

		// Resample k support elements of the current best to random ±τ
		// vertices (clamped into the pixel range by SetStep).
		cand := o.NewCandidate()
		order = permInto(rng, order, len(support))
		changed := false
		for _, j := range order[:k] {
			idx := support[j]
			mag := tau
			if rng.Intn(2) == 1 {
				mag = -tau
			}
			if o.SetStep(cand, idx, base[idx]+mag) {
				changed = true
			}
		}

		if changed {
			noop = 0
			tNew, err := o.Score(cand)
			switch {
			case errors.Is(err, ErrBudgetExhausted):
				// Backstop only — the Remaining() loop guard spends the
				// final query before this can fire.
			case err != nil:
				o.Skip()
			default:
				o.Accept(cand, tNew)
			}
		} else {
			noop++
		}
		o.Release(cand)
		o.Record()
		sp.SetFloat("T", o.CurrentT())
		o.StepEnd(sp)
		step++
	}
	return nil
}
