// Package core implements the paper's contribution: the DUO attack
// pipeline. SparseTransfer (Algorithm 1) derives sparse initial
// perturbations on a stolen surrogate by alternating a gradient step on the
// magnitude θ, an ℓp-box-ADMM step on the pixel mask ℐ, and a continuous
// relaxation step on the frame mask 𝓕. SparseQuery (Algorithm 2) then
// rectifies the perturbation against the black-box victim with masked
// coordinate descent on the rank-similarity objective 𝕋 (Eq. 2). Run loops
// the two (iter_numH) to escape local optima.
package core

import (
	"fmt"
	"math"

	"duo/internal/admm"
	"duo/internal/models"
	"duo/internal/opt"
	"duo/internal/tensor"
	"duo/internal/trace"
	"duo/internal/video"
)

// Mode selects the attack goal: targeted attacks steer the retrieval list
// toward a chosen target video's list; untargeted attacks (§I: "our method
// can be easily extended") only push the list away from the original's.
type Mode int

const (
	// Targeted is the paper's main setting (the default).
	Targeted Mode = iota + 1
	// Untargeted maximizes the distance from the original's own features
	// and list, with no target video.
	Untargeted
)

// NormConstraint selects how θ is projected onto the perturbation budget
// (Table IX evaluates both).
type NormConstraint int

const (
	// NormLInf clamps every element of θ to [−τ, τ] (the default, Eq. 1).
	NormLInf NormConstraint = iota + 1
	// NormL2 rescales θ onto the L2 ball of radius τ·√k, the ℓ2 variant
	// of Table IX.
	NormL2
)

// TransferConfig parameterizes SparseTransfer.
type TransferConfig struct {
	// K is the pixel budget: 1ᵀℐ = k perturbed elements.
	K int
	// N is the frame budget: ‖𝓕‖₂,₀ = n perturbed frames.
	N int
	// Tau bounds the per-element magnitude: ‖θ‖∞ ≤ τ (pixel units).
	Tau float64
	// Lambda is the L2 regularization weight (e⁻⁵ in §V-B).
	Lambda float64
	// OuterIters bounds the alternating-minimization loop.
	OuterIters int
	// ThetaSteps is the number of gradient-descent steps per θ update.
	ThetaSteps int
	// Schedule is the θ-step learning-rate schedule (§V-B: 0.1, ×0.9/50).
	Schedule opt.StepDecay
	// Norm selects the projection (ℓ∞ default, ℓ2 for Table IX).
	Norm NormConstraint
	// UseADMM toggles the ℓp-box ADMM ℐ-step; false falls back to plain
	// top-k selection (the DESIGN.md §6 ablation).
	UseADMM bool
	// Tol is the relative-loss convergence tolerance.
	Tol float64
	// Mode selects Targeted (zero value and default) or Untargeted.
	Mode Mode
}

// DefaultTransferConfig returns the paper's settings mapped to a video
// geometry. The paper's absolute budgets are k = 40K of 602,112 elements
// (≈6.6%), n = 4 of 16 frames, τ = 30. Scaled-down clips have far less
// pixel redundancy, so preserving the paper's *qualitative* operating
// point (the attack succeeds and AP@m rises then saturates in each budget)
// requires proportionally larger fractions: k = 15% of elements, n = half
// the frames, τ = 40. EXPERIMENTS.md documents the mapping.
func DefaultTransferConfig(g models.Geometry) TransferConfig {
	elems := g.Frames * g.Channels * g.Height * g.Width
	n := g.Frames / 2
	if n < 1 {
		n = 1
	}
	return TransferConfig{
		K:          int(float64(elems) * 0.15),
		N:          n,
		Tau:        40,
		Lambda:     math.Exp(-5),
		OuterIters: 4,
		ThetaSteps: 20,
		Schedule:   opt.PaperSchedule(),
		Norm:       NormLInf,
		UseADMM:    true,
		Tol:        1e-4,
	}
}

func (c TransferConfig) validate(elems, frames int) error {
	switch {
	case c.K <= 0 || c.K > elems:
		return fmt.Errorf("core: pixel budget k=%d out of range (0, %d]", c.K, elems)
	case c.N <= 0 || c.N > frames:
		return fmt.Errorf("core: frame budget n=%d out of range (0, %d]", c.N, frames)
	case c.Tau <= 0:
		return fmt.Errorf("core: τ=%g must be positive", c.Tau)
	case c.OuterIters <= 0 || c.ThetaSteps <= 0:
		return fmt.Errorf("core: non-positive iteration counts")
	}
	return nil
}

// Masks is SparseTransfer's output: the "prior knowledge" {ℐ, 𝓕, θ} that
// SparseQuery consumes.
type Masks struct {
	// Pixel is ℐ ∈ {0,1}^{N×C×H×W} with exactly K ones.
	Pixel *tensor.Tensor
	// Frame is 𝓕 ∈ {0,1}^{N×C×H×W}, constant within each frame, with N
	// active frames.
	Frame *tensor.Tensor
	// Theta is the magnitude θ with ‖θ‖∞ ≤ τ.
	Theta *tensor.Tensor
	// Loss is the final surrogate loss value (Eq. 1).
	Loss float64
	// Iterations is the number of outer alternating iterations run.
	Iterations int
	// Converged reports whether the loss change fell below Tol.
	Converged bool
}

// Compose returns the composed perturbation φ = ℐ ⊙ 𝓕 ⊙ θ.
func (m *Masks) Compose() *tensor.Tensor {
	return m.Theta.Mul(m.Pixel).MulInPlace(m.Frame)
}

// ActiveFrames returns the indices of frames selected by 𝓕.
func (m *Masks) ActiveFrames() []int {
	var out []int
	for f := 0; f < m.Frame.Dim(0); f++ {
		if m.Frame.Slice(f).Max() > 0 {
			out = append(out, f)
		}
	}
	return out
}

// SparseTransfer runs Algorithm 1 on the surrogate s: given the original
// video v and target vt it returns sparse masks and magnitudes minimizing
// Eq. (1). In Untargeted mode vt may be nil and the objective flips to
// maximizing the feature distance from v itself.
func SparseTransfer(s models.Model, v, vt *video.Video, cfg TransferConfig) (*Masks, error) {
	return sparseTransfer(nil, nil, s, v, vt, cfg)
}

// sparseTransfer is SparseTransfer with span recording: one sparsetransfer
// span under parent, with one transfer.theta / transfer.pixel /
// transfer.frame child per outer iteration and a final transfer.polish.
// The stage structure mirrors Algorithm 1's alternation, so duotrace can
// attribute surrogate-side cost per stage. A nil tracer records nothing.
func sparseTransfer(tr *trace.Tracer, parent *trace.Span, s models.Model, v, vt *video.Video, cfg TransferConfig) (*Masks, error) {
	shape := v.Data.Shape()
	elems := v.Data.Len()
	frames := v.Frames()
	if err := cfg.validate(elems, frames); err != nil {
		return nil, err
	}
	untargeted := cfg.Mode == Untargeted
	if untargeted {
		vt = v
	} else if vt == nil {
		return nil, fmt.Errorf("core: targeted SparseTransfer needs a target video")
	}
	if !v.Data.SameShape(vt.Data) {
		return nil, fmt.Errorf("core: original %v and target %v shapes differ", v.Data.Shape(), vt.Data.Shape())
	}

	sp := tr.Start(parent, "sparsetransfer")
	defer sp.End()

	// Line 1: ℐ = 1, 𝓕 = 1, θ = 0.
	m := &Masks{
		Pixel: tensor.New(shape...).ApplyInPlace(func(float64) float64 { return 1 }),
		Frame: tensor.New(shape...).ApplyInPlace(func(float64) float64 { return 1 }),
		Theta: tensor.New(shape...),
	}
	if untargeted {
		// θ = 0 is a stationary point of the untargeted objective (the
		// gradient of −‖Fea(v+0)−Fea(v)‖² vanishes), so seed θ with a
		// deterministic ±1 checkerboard to break the symmetry.
		td := m.Theta.Data()
		for i := range td {
			if i%2 == 0 {
				td[i] = 1
			} else {
				td[i] = -1
			}
		}
	}

	targetFeat := models.Embed(s, vt)
	perFrame := elems / frames

	// frameScores is the continuous relaxation 𝒞 (line 5), updated with
	// momentum from per-frame gradient energy (the dependence-guided
	// update of [47]).
	frameScores := make([]float64, frames)

	prevLoss := math.Inf(1)
	step := 0
	regScale := 1 / (video.PixelMax * video.PixelMax)
	var lastGrad *tensor.Tensor

	// sign is +1 to approach the target's features (targeted) or −1 to
	// flee the original's (untargeted).
	sign := 1.0
	if untargeted {
		sign = -1
	}
	evalLoss := func() (float64, *tensor.Tensor) {
		adv := v.Add(m.Compose())
		feat, cache := s.Forward(adv.Data)
		diff := feat.Sub(targetFeat)
		// The regularizer is computed in normalized [0,1] pixel units so
		// that λ=e⁻⁵ weighs it comparably to the unit-scale feature
		// distance (as in the reference implementation).
		loss := sign*diff.SquaredL2() + cfg.Lambda*m.Compose().SquaredL2()*regScale
		// dL/dfeat = ±2(feat − target); backprop to pixels.
		grad := s.Backward(cache, diff.Scale(2*sign))
		return loss, grad
	}

	// Normalized fixed-size steps can oscillate across a narrow valley on
	// the scaled-down surrogates, so we track the best θ visited and
	// return it (a cheap trust-region fallback).
	bestLoss := math.Inf(1)
	var bestTheta *tensor.Tensor
	noteTheta := func(loss float64) {
		if loss < bestLoss {
			bestLoss = loss
			bestTheta = m.Theta.Clone()
		}
	}

	for it := 0; it < cfg.OuterIters; it++ {
		m.Iterations = it + 1

		// Line 3: update θ by gradient descent under S, masked and
		// projected onto the τ budget. The raw input gradient's scale
		// depends on the surrogate's depth, so the step is normalized by
		// ‖·‖∞ and scaled by lr·τ (the same normalization MI-FGSM-family
		// attacks use) to make the schedule meaningful across models.
		thetaSp := tr.Start(sp, "transfer.theta")
		thetaSp.SetInt("iter", int64(it))
		var loss float64
		for t := 0; t < cfg.ThetaSteps; t++ {
			var grad *tensor.Tensor
			loss, grad = evalLoss()
			noteTheta(loss)
			lastGrad = grad
			lr := cfg.Schedule.At(step)
			step++
			// dL/dθ = (dL/dv_adv + 2λθ) ⊙ ℐ ⊙ 𝓕.
			upd := grad.Add(m.Theta.Scale(2 * cfg.Lambda * regScale)).MulInPlace(m.Pixel).MulInPlace(m.Frame)
			if ni := upd.LInf(); ni > 1e-12 {
				m.Theta.AddScaled(-lr*cfg.Tau/ni, upd)
			}
			projectTheta(m.Theta, cfg)
		}
		thetaSp.SetInt("steps", int64(cfg.ThetaSteps))
		thetaSp.SetFloat("loss", loss)
		thetaSp.End()

		// Line 4: update ℐ with ℓp-box ADMM on the linearized objective:
		// select the k elements with the highest expected loss reduction
		// |θ ⊙ ∇L| (cost c = −score).
		pixelSp := tr.Start(sp, "transfer.pixel")
		pixelSp.SetInt("iter", int64(it))
		score := m.Theta.Mul(lastGrad).ApplyInPlace(math.Abs)
		// Break exact ties (e.g. zero scores) toward elements with larger
		// magnitudes so the selection stays meaningful early on.
		scoreData := score.Data()
		thetaData := m.Theta.Data()
		for i := range scoreData {
			scoreData[i] += 1e-9 * math.Abs(thetaData[i])
		}
		var pixelSel []bool
		if cfg.UseADMM {
			cost := make([]float64, elems)
			for i, sv := range scoreData {
				cost[i] = -sv
			}
			res, err := admm.MinimizeCardinality(cost, cfg.K, admm.DefaultConfig())
			if err != nil {
				pixelSp.End()
				return nil, fmt.Errorf("core: ℐ-step: %w", err)
			}
			pixelSel = res.X
		} else {
			pixelSel = admm.TopKByScore(negate(scoreData), cfg.K)
		}
		pd := m.Pixel.Data()
		for i := range pd {
			if pixelSel[i] {
				pd[i] = 1
			} else {
				pd[i] = 0
			}
		}
		pixelSp.SetInt("k", int64(cfg.K))
		if cfg.UseADMM {
			pixelSp.SetStr("method", "admm")
		} else {
			pixelSp.SetStr("method", "topk")
		}
		pixelSp.End()

		// Lines 5–7: relax 𝓕 to 𝒞, update 𝒞 from per-frame energy with
		// momentum, then keep the top-n frames by ‖𝒞‖₂.
		frameSp := tr.Start(sp, "transfer.frame")
		frameSp.SetInt("iter", int64(it))
		masked := m.Theta.Mul(m.Pixel)
		gradMasked := lastGrad.Mul(m.Pixel)
		for f := 0; f < frames; f++ {
			energy := 0.0
			mo := masked.Data()[f*perFrame : (f+1)*perFrame]
			go_ := gradMasked.Data()[f*perFrame : (f+1)*perFrame]
			for i := range mo {
				energy += math.Abs(mo[i] * go_[i])
			}
			frameScores[f] = 0.5*frameScores[f] + 0.5*energy
		}
		top := tensor.TopK(frameScores, cfg.N)
		m.Frame.Zero()
		for _, f := range top {
			m.Frame.Slice(f).Fill(1)
		}
		frameSp.SetInt("n", int64(cfg.N))
		frameSp.End()

		m.Loss = loss
		if math.Abs(prevLoss-loss) < cfg.Tol*(1+math.Abs(prevLoss)) {
			m.Converged = true
			break
		}
		prevLoss = loss
	}

	// Final polish of θ on the fixed masks so magnitudes reflect the final
	// support.
	polishSp := tr.Start(sp, "transfer.polish")
	for t := 0; t < cfg.ThetaSteps; t++ {
		loss, grad := evalLoss()
		noteTheta(loss)
		m.Loss = loss
		lr := cfg.Schedule.At(step)
		step++
		upd := grad.Add(m.Theta.Scale(2 * cfg.Lambda * regScale)).MulInPlace(m.Pixel).MulInPlace(m.Frame)
		if ni := upd.LInf(); ni > 1e-12 {
			m.Theta.AddScaled(-lr*cfg.Tau/ni, upd)
		}
		projectTheta(m.Theta, cfg)
	}
	if loss, _ := evalLoss(); true {
		noteTheta(loss)
	}
	polishSp.End()
	if bestTheta != nil {
		m.Theta = bestTheta
		m.Loss = bestLoss
	}
	sp.SetInt("iterations", int64(m.Iterations))
	if m.Converged {
		sp.SetInt("converged", 1)
	} else {
		sp.SetInt("converged", 0)
	}
	sp.SetFloat("loss", m.Loss)
	// Quantize θ to whole pixel levels: videos are 8-bit, so sub-0.5
	// magnitudes cannot survive encoding. Quantization is also what keeps
	// the *effective* Spa well below k — elements whose optimal magnitude
	// is negligible drop out of the support entirely.
	m.Theta.ApplyInPlace(math.Round)
	return m, nil
}

// projectTheta enforces the norm constraint of Eq. (1) on θ.
//
// The ℓ∞ variant clamps every element to ±τ. The ℓ2 variant (Table IX)
// bounds the total perturbation energy instead: ‖θ‖₂ ≤ τ·√k/2, i.e. the
// energy of an ℓ∞-budget perturbation at 50% average saturation.
// Individual elements may exceed τ under ℓ2 (pixel-range feasibility is
// enforced when the perturbation is applied), which is what distinguishes
// the two rows of Table IX.
func projectTheta(theta *tensor.Tensor, cfg TransferConfig) {
	switch cfg.Norm {
	case NormL2:
		radius := cfg.Tau * math.Sqrt(float64(cfg.K)) / 2
		if n := theta.L2(); n > radius {
			theta.ScaleInPlace(radius / n)
		}
	default: // NormLInf
		theta.ClampInPlace(-cfg.Tau, cfg.Tau)
	}
}

func negate(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = -v
	}
	return out
}
