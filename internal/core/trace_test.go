package core

import (
	"bytes"
	"testing"

	"duo/internal/parallel"
	"duo/internal/trace"
)

// tracedRun executes a small two-round attack under a fresh tracer and
// returns the tracer plus the run's result.
func tracedRun(t *testing.T, f *fixture, workers int) (*trace.Tracer, *Result) {
	t.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	cfg := Config{
		Transfer: testTransferConfig(f.geom),
		Query:    testQueryConfig(),
		IterNumH: 2,
	}
	cfg.Query.MaxQueries = 40
	ctx := newCtx(f, 21)
	tr := trace.New("core-test")
	ctx.Trace = tr
	res, err := Run(ctx, f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func TestRunRecordsSpanTree(t *testing.T) {
	f := getFixture(t)
	tr, res := tracedRun(t, f, 2)

	recs := tr.Records()
	if len(recs) == 0 {
		t.Fatal("no spans recorded")
	}
	byID := make(map[uint64]trace.Record, len(recs))
	byName := make(map[string][]trace.Record)
	for _, r := range recs {
		byID[r.ID] = r
		byName[r.Name] = append(byName[r.Name], r)
	}

	if n := len(byName["attack.run"]); n != 1 {
		t.Fatalf("attack.run spans = %d, want 1", n)
	}
	run := byName["attack.run"][0]
	if got, ok := run.Int("queries_total"); !ok || got != int64(res.Queries) {
		t.Errorf("attack.run queries_total = %d, want %d", got, res.Queries)
	}
	if n := len(byName["round"]); n != 2 {
		t.Fatalf("round spans = %d, want 2", n)
	}
	for i, r := range byName["round"] {
		if r.Parent != run.ID {
			t.Errorf("round %d parent = %d, want attack.run %d", i, r.Parent, run.ID)
		}
	}
	for _, stage := range []string{"sparsetransfer", "sparsequery"} {
		if n := len(byName[stage]); n != 2 {
			t.Fatalf("%s spans = %d, want 2 (one per round)", stage, n)
		}
		for _, s := range byName[stage] {
			if byID[s.Parent].Name != "round" {
				t.Errorf("%s parent is %q, want round", stage, byID[s.Parent].Name)
			}
		}
	}
	if len(byName["transfer.theta"]) == 0 || len(byName["transfer.pixel"]) == 0 || len(byName["transfer.frame"]) == 0 {
		t.Error("missing SparseTransfer stage spans")
	}
	if len(byName["query.step"]) == 0 {
		t.Error("no query.step spans recorded")
	}

	// Query-budget attribution: the bare `queries` attribute lives only on
	// leaf retrieve spans and must sum to exactly the billed query count.
	total := int64(0)
	for _, r := range recs {
		if _, ok := r.Attrs["queries"]; !ok {
			continue
		}
		if r.Name != "retrieve" {
			t.Errorf("span %q carries a `queries` attr; that key is reserved for retrieve leaves", r.Name)
		}
		n, _ := r.Int("queries")
		total += n
	}
	if total != int64(res.Queries) {
		t.Errorf("Σ retrieve queries attrs = %d, want billed %d", total, res.Queries)
	}
	for _, r := range byName["retrieve"] {
		switch p := byID[r.Parent].Name; p {
		case "sparsequery", "query.step":
		default:
			t.Errorf("retrieve parent is %q, want sparsequery or query.step", p)
		}
	}

	// Spans End in deterministic order, so Start/End ticks are a strict
	// 1..2n permutation of the logical clock.
	seen := make(map[int64]bool, 2*len(recs))
	for _, r := range recs {
		if r.Start <= 0 || r.End <= r.Start {
			t.Fatalf("span %q has ticks [%d,%d]", r.Name, r.Start, r.End)
		}
		seen[r.Start] = true
		seen[r.End] = true
	}
	if len(seen) != 2*len(recs) {
		t.Errorf("clock ticks collide: %d distinct over %d spans", len(seen), len(recs))
	}
}

func TestRunTraceIdenticalAcrossWorkerCounts(t *testing.T) {
	f := getFixture(t)
	var dumps [][]byte
	for _, w := range []int{1, 4} {
		tr, _ := tracedRun(t, f, w)
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, buf.Bytes())
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Error("trace JSONL differs between workers=1 and workers=4")
	}
}

func TestRunTracingDoesNotPerturbAttack(t *testing.T) {
	f := getFixture(t)
	cfg := Config{Transfer: testTransferConfig(f.geom), Query: testQueryConfig(), IterNumH: 1}
	plain, err := Run(newCtx(f, 9), f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(f, 9)
	ctx.Trace = trace.New("perturb-check")
	traced, err := Run(ctx, f.surr, f.origin, f.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Adv.Data.Equal(traced.Adv.Data, 0) {
		t.Error("enabling tracing changed the adversarial video")
	}
	if plain.Queries != traced.Queries {
		t.Errorf("enabling tracing changed billing: %d vs %d", plain.Queries, traced.Queries)
	}
}
