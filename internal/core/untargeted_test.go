package core

import (
	"testing"

	"duo/internal/metrics"
	"duo/internal/models"
	"duo/internal/retrieval"
)

func untargetedConfig(g models.Geometry) Config {
	cfg := UntargetedConfig(g)
	cfg.Transfer.OuterIters = 2
	cfg.Transfer.ThetaSteps = 8
	cfg.Query.MaxQueries = 60
	cfg.Query.Tau = cfg.Transfer.Tau
	return cfg
}

func TestUntargetedTransferFleesOriginal(t *testing.T) {
	f := getFixture(t)
	cfg := untargetedConfig(f.geom).Transfer
	masks, err := SparseTransfer(f.surr, f.origin, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	of := models.Embed(f.surr, f.origin)
	adv := f.origin.Add(masks.Compose())
	dist := models.Embed(f.surr, adv).Distance(of)
	if dist <= 0 {
		t.Errorf("untargeted transfer did not move features (distance %g)", dist)
	}
	// Budgets still hold.
	phi := masks.Compose()
	if phi.L0() > cfg.K || phi.L20() > cfg.N || phi.LInf() > cfg.Tau+1e-9 {
		t.Errorf("budget violated: L0 %d, L20 %d, LInf %g", phi.L0(), phi.L20(), phi.LInf())
	}
}

func TestTargetedTransferRejectsNilTarget(t *testing.T) {
	f := getFixture(t)
	cfg := testTransferConfig(f.geom)
	if _, err := SparseTransfer(f.surr, f.origin, nil, cfg); err == nil {
		t.Error("nil target accepted in targeted mode")
	}
}

func TestUntargetedQueryObjectiveDecreases(t *testing.T) {
	f := getFixture(t)
	cfg := untargetedConfig(f.geom)
	masks, err := SparseTransfer(f.surr, f.origin, nil, cfg.Transfer)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := SparseQuery(newCtx(f, 21), f.origin, nil, masks, cfg.Query)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(qr.Trajectory); i++ {
		if qr.Trajectory[i] > qr.Trajectory[i-1]+1e-12 {
			t.Fatalf("untargeted 𝕋 increased at %d", i)
		}
	}
}

func TestTargetedQueryRejectsNilTarget(t *testing.T) {
	f := getFixture(t)
	masks, _ := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if _, err := SparseQuery(newCtx(f, 22), f.origin, nil, masks, testQueryConfig()); err == nil {
		t.Error("nil target accepted in targeted query")
	}
}

func TestUntargetedRunReducesSelfSimilarity(t *testing.T) {
	f := getFixture(t)
	cfg := untargetedConfig(f.geom)
	cfg.IterNumH = 2
	res, err := Run(newCtx(f, 23), f.surr, f.origin, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The adversarial list must co-occur with the original's no more than
	// the original itself does (ℍ(orig, orig) = 1).
	origList := retrieval.IDs(f.victim.Retrieve(f.origin, f.m))
	advList := retrieval.IDs(f.victim.Retrieve(res.Adv, f.m))
	h := metrics.CoOccurrence(advList, origList)
	if h > 1 {
		t.Errorf("ℍ = %g out of range", h)
	}
	if res.Spa() == 0 {
		t.Error("untargeted run produced no perturbation")
	}
}

func TestRunRejectsMixedModes(t *testing.T) {
	f := getFixture(t)
	cfg := untargetedConfig(f.geom)
	cfg.Query.Mode = Targeted
	if _, err := Run(newCtx(f, 24), f.surr, f.origin, f.target, cfg); err == nil {
		t.Error("mixed modes accepted")
	}
}

func TestSparseQueryDCTBasis(t *testing.T) {
	f := getFixture(t)
	masks, err := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testQueryConfig()
	cfg.Basis = BasisDCT
	qr, err := SparseQuery(newCtx(f, 31), f.origin, f.target, masks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Invariants hold for the DCT basis too.
	delta := qr.Adv.Data.Sub(f.origin.Data)
	if got := delta.LInf(); got > cfg.Tau+1e-9 {
		t.Errorf("DCT basis broke the τ bound: %g", got)
	}
	base := f.origin.Add(masks.Compose().Clamp(-cfg.Tau, cfg.Tau))
	pm, fm := masks.Pixel.Data(), masks.Frame.Data()
	for i := range pm {
		if pm[i]*fm[i] == 0 && qr.Adv.Data.Data()[i] != base.Data.Data()[i] {
			t.Fatalf("DCT step escaped the mask at %d", i)
		}
	}
	for i := 1; i < len(qr.Trajectory); i++ {
		if qr.Trajectory[i] > qr.Trajectory[i-1]+1e-12 {
			t.Fatalf("DCT 𝕋 increased at %d", i)
		}
	}
	if qr.Queries > cfg.MaxQueries {
		t.Errorf("queries %d over budget", qr.Queries)
	}
}

func TestSparseQueryDCTDiffersFromCartesian(t *testing.T) {
	f := getFixture(t)
	masks, _ := SparseTransfer(f.surr, f.origin, f.target, testTransferConfig(f.geom))
	cart, err := SparseQuery(newCtx(f, 32), f.origin, f.target, masks, testQueryConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testQueryConfig()
	cfg.Basis = BasisDCT
	dct, err := SparseQuery(newCtx(f, 32), f.origin, f.target, masks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cart.Adv.Data.Equal(dct.Adv.Data, 0) {
		t.Error("DCT and Cartesian bases produced identical results")
	}
}
