// Package dataset generates the synthetic video corpora that stand in for
// UCF101 and HMDB51 (see DESIGN.md §2). Each category is a distinct
// procedural spatio-temporal process — a moving Gaussian blob with
// category-specific direction, speed, size, colour, and background texture —
// so that category membership is recoverable from both spatial and temporal
// features, as action classes are in the real datasets.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"duo/internal/video"
)

// Config parameterizes corpus generation.
type Config struct {
	// Name labels the corpus ("UCF101Sim", "HMDB51Sim").
	Name string
	// Categories is the number of action classes.
	Categories int
	// TrainPerCategory and TestPerCategory set the split sizes. The paper's
	// datasets are both ≈70/30 train/test.
	TrainPerCategory int
	TestPerCategory  int
	// Frames, Channels, Height, Width set clip geometry.
	Frames   int
	Channels int
	Height   int
	Width    int
	// Seed makes generation deterministic.
	Seed int64
	// Hardness ∈ [0, 1) controls how separable the categories are: 0
	// (default) gives well-separated classes; higher values shrink
	// inter-category parameter differences and raise instance noise,
	// pushing trained-victim mAPs toward the paper's 20–60% range.
	Hardness float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Categories <= 1:
		return fmt.Errorf("dataset: need ≥2 categories, got %d", c.Categories)
	case c.TrainPerCategory <= 0 || c.TestPerCategory <= 0:
		return fmt.Errorf("dataset: non-positive split sizes %d/%d", c.TrainPerCategory, c.TestPerCategory)
	case c.Frames <= 0 || c.Channels <= 0 || c.Height <= 0 || c.Width <= 0:
		return fmt.Errorf("dataset: bad geometry %d×%d×%d×%d", c.Frames, c.Channels, c.Height, c.Width)
	case c.Hardness < 0 || c.Hardness >= 1:
		return fmt.Errorf("dataset: hardness %g out of [0, 1)", c.Hardness)
	}
	return nil
}

// Corpus is a generated train/test video collection.
type Corpus struct {
	Name       string
	Categories int
	Train      []*video.Video
	Test       []*video.Video
}

// category holds the generative parameters of one action class.
type category struct {
	angle    float64 // motion direction
	speed    float64 // pixels per frame
	sigma    float64 // blob radius
	texFreqX float64 // background texture frequency
	texFreqY float64
	texPhase float64
	base     [3]float64 // per-channel background level
	blobAmp  [3]float64 // per-channel blob intensity
	wobble   float64    // temporal oscillation of the blob radius
}

func newCategory(rng *rand.Rand) category {
	var c category
	c.angle = rng.Float64() * 2 * math.Pi
	c.speed = 0.5 + rng.Float64()*2.5
	c.sigma = 1.0 + rng.Float64()*2.0
	c.texFreqX = 0.3 + rng.Float64()*1.2
	c.texFreqY = 0.3 + rng.Float64()*1.2
	c.texPhase = rng.Float64() * 2 * math.Pi
	for ch := 0; ch < 3; ch++ {
		c.base[ch] = 60 + rng.Float64()*80
		c.blobAmp[ch] = 60 + rng.Float64()*120
	}
	c.wobble = rng.Float64() * 0.5
	return c
}

// blendToward pulls a category's generative parameters toward base by
// hardness h (0 = unchanged, →1 = indistinguishable from base).
func (c category) blendToward(base category, h float64) category {
	if h <= 0 {
		return c
	}
	mix := func(a, b float64) float64 { return b + (a-b)*(1-h) }
	c.angle = mix(c.angle, base.angle)
	c.speed = mix(c.speed, base.speed)
	c.sigma = mix(c.sigma, base.sigma)
	c.texFreqX = mix(c.texFreqX, base.texFreqX)
	c.texFreqY = mix(c.texFreqY, base.texFreqY)
	c.texPhase = mix(c.texPhase, base.texPhase)
	for i := range c.base {
		c.base[i] = mix(c.base[i], base.base[i])
		c.blobAmp[i] = mix(c.blobAmp[i], base.blobAmp[i])
	}
	c.wobble = mix(c.wobble, base.wobble)
	return c
}

// Generate builds a corpus from cfg. Generation is deterministic in
// cfg.Seed.
func Generate(cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The blend base is only drawn when needed so that Hardness=0 corpora
	// keep the exact RNG stream (and content) of earlier releases.
	var base category
	if cfg.Hardness > 0 {
		base = newCategory(rng)
	}
	cats := make([]category, cfg.Categories)
	for i := range cats {
		cats[i] = newCategory(rng).blendToward(base, cfg.Hardness)
	}
	corpus := &Corpus{Name: cfg.Name, Categories: cfg.Categories}
	for label, cat := range cats {
		for i := 0; i < cfg.TrainPerCategory; i++ {
			id := fmt.Sprintf("%s/train/c%02d-%03d", cfg.Name, label, i)
			corpus.Train = append(corpus.Train, renderClip(rng, cfg, cat, label, id))
		}
		for i := 0; i < cfg.TestPerCategory; i++ {
			id := fmt.Sprintf("%s/test/c%02d-%03d", cfg.Name, label, i)
			corpus.Test = append(corpus.Test, renderClip(rng, cfg, cat, label, id))
		}
	}
	return corpus, nil
}

// renderClip draws one instance of a category: same generative process,
// instance-specific start position, phase, and pixel noise.
func renderClip(rng *rand.Rand, cfg Config, cat category, label int, id string) *video.Video {
	v := video.New(cfg.Frames, cfg.Channels, cfg.Height, cfg.Width)
	v.Label, v.ID = label, id

	x0 := rng.Float64() * float64(cfg.Width)
	y0 := rng.Float64() * float64(cfg.Height)
	phase := rng.Float64() * 2 * math.Pi
	noise := (2.0 + rng.Float64()*3.0) * (1 + 5*cfg.Hardness)

	vx := math.Cos(cat.angle) * cat.speed
	vy := math.Sin(cat.angle) * cat.speed
	w, h := float64(cfg.Width), float64(cfg.Height)

	d := v.Data.Data()
	idx := 0
	for f := 0; f < cfg.Frames; f++ {
		// Blob centre wraps around frame borders.
		cx := math.Mod(x0+vx*float64(f)+8*w, w)
		cy := math.Mod(y0+vy*float64(f)+8*h, h)
		sigma := cat.sigma * (1 + cat.wobble*math.Sin(phase+0.7*float64(f)))
		inv2s2 := 1 / (2 * sigma * sigma)
		for ch := 0; ch < cfg.Channels; ch++ {
			base := cat.base[ch%3]
			amp := cat.blobAmp[ch%3]
			for y := 0; y < cfg.Height; y++ {
				for x := 0; x < cfg.Width; x++ {
					// Toroidal distance to blob centre.
					dx := math.Abs(float64(x) - cx)
					if dx > w/2 {
						dx = w - dx
					}
					dy := math.Abs(float64(y) - cy)
					if dy > h/2 {
						dy = h - dy
					}
					blob := amp * math.Exp(-(dx*dx+dy*dy)*inv2s2)
					tex := 12 * math.Sin(cat.texFreqX*float64(x)+cat.texPhase) * math.Cos(cat.texFreqY*float64(y))
					d[idx] = base + blob + tex + rng.NormFloat64()*noise
					idx++
				}
			}
		}
	}
	v.Clip()
	return v
}

// ByLabel groups videos by their category label.
func ByLabel(vs []*video.Video) map[int][]*video.Video {
	out := make(map[int][]*video.Video)
	for _, v := range vs {
		out[v.Label] = append(out[v.Label], v)
	}
	return out
}

// AttackPair is an (original, target) evaluation pair with distinct labels.
type AttackPair struct {
	Original *video.Video
	Target   *video.Video
}

// SamplePairs draws n attack pairs from vs with distinct labels,
// deterministically in rng (§V-A: "randomly choose ten pairs").
func SamplePairs(rng *rand.Rand, vs []*video.Video, n int) []AttackPair {
	pairs := make([]AttackPair, 0, n)
	if len(vs) < 2 {
		return pairs
	}
	for len(pairs) < n {
		a := vs[rng.Intn(len(vs))]
		b := vs[rng.Intn(len(vs))]
		if a.Label == b.Label {
			continue
		}
		pairs = append(pairs, AttackPair{Original: a, Target: b})
	}
	return pairs
}

// PaperUCF101 and PaperHMDB51 document the real datasets' shapes (Table I);
// scale presets derive category/split counts from these ratios.
var (
	PaperUCF101 = Config{Name: "UCF101", Categories: 101, TrainPerCategory: 92, TestPerCategory: 40,
		Frames: 16, Channels: 3, Height: 112, Width: 112}
	PaperHMDB51 = Config{Name: "HMDB51", Categories: 51, TrainPerCategory: 96, TestPerCategory: 41,
		Frames: 16, Channels: 3, Height: 112, Width: 112}
)
