package dataset

import (
	"bytes"
	"math/rand"
	"testing"

	"duo/internal/video"
)

func tinyConfig() Config {
	return Config{
		Name: "TestSim", Categories: 3,
		TrainPerCategory: 4, TestPerCategory: 2,
		Frames: 4, Channels: 3, Height: 8, Width: 8,
		Seed: 42,
	}
}

func TestGenerateSizes(t *testing.T) {
	c, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Train) != 12 || len(c.Test) != 6 {
		t.Errorf("split sizes %d/%d, want 12/6", len(c.Train), len(c.Test))
	}
	if c.Categories != 3 {
		t.Errorf("categories = %d", c.Categories)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(tinyConfig())
	b, _ := Generate(tinyConfig())
	if !a.Train[5].Data.Equal(b.Train[5].Data, 0) {
		t.Error("same seed produced different corpora")
	}
	cfg := tinyConfig()
	cfg.Seed = 43
	c, _ := Generate(cfg)
	if a.Train[5].Data.Equal(c.Train[5].Data, 0) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGeneratePixelsInRange(t *testing.T) {
	c, _ := Generate(tinyConfig())
	for _, v := range append(c.Train, c.Test...) {
		if v.Data.Min() < video.PixelMin || v.Data.Max() > video.PixelMax {
			t.Fatalf("video %s pixels out of range [%g, %g]", v.ID, v.Data.Min(), v.Data.Max())
		}
	}
}

func TestGenerateLabelsAndIDs(t *testing.T) {
	c, _ := Generate(tinyConfig())
	seen := map[string]bool{}
	for _, v := range append(c.Train, c.Test...) {
		if v.Label < 0 || v.Label >= 3 {
			t.Fatalf("label %d out of range", v.Label)
		}
		if seen[v.ID] {
			t.Fatalf("duplicate ID %s", v.ID)
		}
		seen[v.ID] = true
	}
}

func TestCategoriesAreSeparable(t *testing.T) {
	// Same-category clips must be closer in raw pixel space, on average,
	// than cross-category clips; otherwise retrieval can never learn.
	c, _ := Generate(tinyConfig())
	by := ByLabel(c.Train)
	intra, inter := 0.0, 0.0
	ni, nx := 0, 0
	for l, vs := range by {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				intra += vs[i].Data.Distance(vs[j].Data)
				ni++
			}
			for l2, vs2 := range by {
				if l2 <= l {
					continue
				}
				inter += vs[i].Data.Distance(vs2[0].Data)
				nx++
			}
		}
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if intra >= inter {
		t.Errorf("categories not separable: intra %g ≥ inter %g", intra, inter)
	}
}

// separationRatio returns mean intra-category distance over mean
// inter-category distance in raw pixel space (lower = more separable).
func separationRatio(c *Corpus) float64 {
	by := ByLabel(c.Train)
	intra, inter := 0.0, 0.0
	ni, nx := 0, 0
	for l, vs := range by {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				intra += vs[i].Data.Distance(vs[j].Data)
				ni++
			}
			for l2, vs2 := range by {
				if l2 <= l {
					continue
				}
				inter += vs[i].Data.Distance(vs2[0].Data)
				nx++
			}
		}
	}
	return (intra / float64(ni)) / (inter / float64(nx))
}

func TestHardnessReducesSeparability(t *testing.T) {
	easyCfg := tinyConfig()
	hardCfg := tinyConfig()
	hardCfg.Hardness = 0.8
	easy, err := Generate(easyCfg)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Generate(hardCfg)
	if err != nil {
		t.Fatal(err)
	}
	re, rh := separationRatio(easy), separationRatio(hard)
	if rh <= re {
		t.Errorf("hardness did not reduce separability: easy %g, hard %g", re, rh)
	}
	// Raw-pixel distances may approach parity at high hardness (the
	// instance noise dominates), but must not invert badly — trained
	// feature extractors still separate these corpora (see package
	// models' tests and the victim mAPs in the experiments).
	if rh >= 1.2 {
		t.Errorf("hard corpus degenerate: ratio %g", rh)
	}
}

func TestHardnessValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Hardness = 1.0
	if _, err := Generate(cfg); err == nil {
		t.Error("hardness 1.0 accepted")
	}
	cfg.Hardness = -0.1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative hardness accepted")
	}
}

func TestHardnessZeroKeepsLegacyStream(t *testing.T) {
	// Hardness=0 must generate byte-identical corpora to the original
	// generator (the base category draw is skipped).
	a, _ := Generate(tinyConfig())
	b, _ := Generate(tinyConfig())
	if !a.Train[0].Data.Equal(b.Train[0].Data, 0) {
		t.Fatal("hardness-0 generation not stable")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Categories: 1, TrainPerCategory: 1, TestPerCategory: 1, Frames: 1, Channels: 1, Height: 1, Width: 1},
		{Categories: 2, TrainPerCategory: 0, TestPerCategory: 1, Frames: 1, Channels: 1, Height: 1, Width: 1},
		{Categories: 2, TrainPerCategory: 1, TestPerCategory: 1, Frames: 0, Channels: 1, Height: 1, Width: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestByLabel(t *testing.T) {
	c, _ := Generate(tinyConfig())
	by := ByLabel(c.Train)
	if len(by) != 3 {
		t.Fatalf("ByLabel groups = %d", len(by))
	}
	for l, vs := range by {
		if len(vs) != 4 {
			t.Errorf("label %d has %d videos, want 4", l, len(vs))
		}
	}
}

func TestSamplePairsDistinctLabels(t *testing.T) {
	c, _ := Generate(tinyConfig())
	rng := rand.New(rand.NewSource(1))
	pairs := SamplePairs(rng, c.Train, 10)
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.Original.Label == p.Target.Label {
			t.Error("pair with equal labels")
		}
	}
}

func TestSamplePairsEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := SamplePairs(rng, nil, 5); len(got) != 0 {
		t.Errorf("pairs from empty input: %d", len(got))
	}
}

func TestPersistRoundTrip(t *testing.T) {
	c, _ := Generate(tinyConfig())
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || got.Categories != c.Categories ||
		len(got.Train) != len(c.Train) || len(got.Test) != len(c.Test) {
		t.Fatal("round trip changed corpus structure")
	}
	for i := range c.Train {
		if !got.Train[i].Data.Equal(c.Train[i].Data, 0) ||
			got.Train[i].Label != c.Train[i].Label || got.Train[i].ID != c.Train[i].ID {
			t.Fatalf("train[%d] corrupted", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPaperConfigsRatio(t *testing.T) {
	// Both paper datasets are ≈70/30 train/test; presets must keep that.
	for _, cfg := range []Config{PaperUCF101, PaperHMDB51} {
		ratio := float64(cfg.TrainPerCategory) / float64(cfg.TrainPerCategory+cfg.TestPerCategory)
		if ratio < 0.65 || ratio > 0.75 {
			t.Errorf("%s train ratio %g", cfg.Name, ratio)
		}
	}
}
