package dataset

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the corpus decoder against corrupted or adversarial
// files: it must return an error or a structurally valid corpus, never
// panic.
func FuzzRead(f *testing.F) {
	// Seed with a valid corpus and a few corruptions of it.
	c, err := Generate(Config{
		Name: "FuzzSim", Categories: 2, TrainPerCategory: 2, TestPerCategory: 1,
		Frames: 2, Channels: 1, Height: 3, Width: 3, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a gob"))
	if len(valid) > 10 {
		truncated := append([]byte(nil), valid[:len(valid)/2]...)
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0xff
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded corpora must be structurally sound.
		for _, v := range append(got.Train, got.Test...) {
			if v == nil || v.Data == nil || v.Data.Rank() != 4 {
				t.Fatal("decoder produced malformed video")
			}
		}
	})
}
