package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"duo/internal/tensor"
	"duo/internal/video"
)

// videoRecord is the on-disk representation of one video.
type videoRecord struct {
	Shape []int
	Data  []float64
	Label int
	ID    string
}

// corpusRecord is the on-disk representation of a corpus.
type corpusRecord struct {
	Name       string
	Categories int
	Train      []videoRecord
	Test       []videoRecord
}

func toRecord(v *video.Video) videoRecord {
	return videoRecord{
		Shape: v.Data.Shape(),
		Data:  append([]float64(nil), v.Data.Data()...),
		Label: v.Label,
		ID:    v.ID,
	}
}

func fromRecord(r videoRecord) (*video.Video, error) {
	if len(r.Shape) != 4 {
		return nil, fmt.Errorf("dataset: record %q has rank %d, want 4", r.ID, len(r.Shape))
	}
	n := 1
	for _, d := range r.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("dataset: record %q has bad shape %v", r.ID, r.Shape)
		}
		n *= d
	}
	if n != len(r.Data) {
		return nil, fmt.Errorf("dataset: record %q: %d elements for shape %v", r.ID, len(r.Data), r.Shape)
	}
	return video.FromTensor(tensor.From(r.Data, r.Shape...), r.Label, r.ID), nil
}

// Write encodes the corpus to w with encoding/gob.
func (c *Corpus) Write(w io.Writer) error {
	rec := corpusRecord{Name: c.Name, Categories: c.Categories}
	for _, v := range c.Train {
		rec.Train = append(rec.Train, toRecord(v))
	}
	for _, v := range c.Test {
		rec.Test = append(rec.Test, toRecord(v))
	}
	if err := gob.NewEncoder(w).Encode(rec); err != nil {
		return fmt.Errorf("dataset: encode corpus: %w", err)
	}
	return nil
}

// Read decodes a corpus previously written with Write.
func Read(r io.Reader) (*Corpus, error) {
	var rec corpusRecord
	if err := gob.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("dataset: decode corpus: %w", err)
	}
	c := &Corpus{Name: rec.Name, Categories: rec.Categories}
	for _, vr := range rec.Train {
		v, err := fromRecord(vr)
		if err != nil {
			return nil, err
		}
		c.Train = append(c.Train, v)
	}
	for _, vr := range rec.Test {
		v, err := fromRecord(vr)
		if err != nil {
			return nil, err
		}
		c.Test = append(c.Test, v)
	}
	return c, nil
}

// WriteFile persists the corpus to path.
func (c *Corpus) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	if err := c.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile loads a corpus from path.
func ReadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return Read(f)
}
