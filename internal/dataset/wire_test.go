package dataset

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// gobRoundTrip encodes in and decodes it into out, failing on any error.
// videoRecord and corpusRecord are on-disk wire types: their gob layout is
// an implicit file-format ABI, and this test (enforced repo-wide by the
// gobsymmetry analyzer) pins that every field actually survives the wire.
func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode %T: %v", in, err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode %T: %v", out, err)
	}
}

func TestVideoRecordRoundTrip(t *testing.T) {
	in := videoRecord{
		Shape: []int{2, 3, 4, 5},
		Data:  []float64{1, 2.5, -3},
		Label: 7,
		ID:    "clip-7",
	}
	var got videoRecord
	gobRoundTrip(t, in, &got)
	if !reflect.DeepEqual(in, got) {
		t.Errorf("round trip changed the record:\n in  %+v\n got %+v", in, got)
	}
}

func TestCorpusRecordRoundTrip(t *testing.T) {
	in := corpusRecord{
		Name:       "UCF101Sim",
		Categories: 6,
		Train: []videoRecord{
			{Shape: []int{1, 1, 1, 1}, Data: []float64{9}, Label: 0, ID: "t0"},
		},
		Test: []videoRecord{
			{Shape: []int{1, 1, 1, 2}, Data: []float64{4, 8}, Label: 1, ID: "q0"},
		},
	}
	var got corpusRecord
	gobRoundTrip(t, in, &got)
	if !reflect.DeepEqual(in, got) {
		t.Errorf("round trip changed the record:\n in  %+v\n got %+v", in, got)
	}
}
