// Package defense implements the two defenses of §V-D — feature squeezing
// (Xu et al., NDSS'18) and a Noise2Self-style blind denoiser (Batson &
// Royer, ICML'19) — plus the stateful query-account detector discussed in
// §I. Both input-transform defenses follow the same recipe: transform the
// input, compare victim features before and after, and flag the query when
// the distance exceeds a threshold calibrated to a fixed false-positive
// rate on clean videos.
package defense

import (
	"fmt"
	"math"
	"sort"

	"duo/internal/models"
	"duo/internal/video"
)

// Detector scores how suspicious a video looks; higher means more likely
// adversarial.
type Detector interface {
	// Name identifies the defense in tables.
	Name() string
	// Score returns the feature displacement caused by the defensive
	// transform.
	Score(v *video.Video) float64
}

// FeatureSqueezer implements feature squeezing: bit-depth reduction plus
// spatial median smoothing.
type FeatureSqueezer struct {
	// Model is the victim feature extractor the defense guards.
	Model models.Model
	// Bits is the target bit depth (the reference uses 4–5).
	Bits int
	// MedianK is the median filter half-width (window 2k+1).
	MedianK int
}

var _ Detector = (*FeatureSqueezer)(nil)

// Name implements Detector.
func (*FeatureSqueezer) Name() string { return "feature squeezing" }

// Score implements Detector.
func (d *FeatureSqueezer) Score(v *video.Video) float64 {
	squeezed := SqueezeBits(v, d.Bits)
	squeezed = MedianFilter(squeezed, d.MedianK)
	return models.Embed(d.Model, v).Distance(models.Embed(d.Model, squeezed))
}

// Noise2Self implements a J-invariant blind denoiser: every pixel is
// re-predicted from its spatial neighbours (never from itself), which
// removes pixel-sparse perturbations while preserving smooth content.
type Noise2Self struct {
	// Model is the victim feature extractor the defense guards.
	Model models.Model
}

var _ Detector = (*Noise2Self)(nil)

// Name implements Detector.
func (*Noise2Self) Name() string { return "Noise2Self" }

// Score implements Detector.
func (d *Noise2Self) Score(v *video.Video) float64 {
	den := DenoiseJInvariant(v)
	return models.Embed(d.Model, v).Distance(models.Embed(d.Model, den))
}

// SqueezeBits reduces every pixel to the given bit depth (1–8).
func SqueezeBits(v *video.Video, bits int) *video.Video {
	if bits < 1 {
		bits = 1
	}
	if bits > 8 {
		bits = 8
	}
	levels := math.Pow(2, float64(bits)) - 1
	out := v.Clone()
	out.Data.ApplyInPlace(func(x float64) float64 {
		return math.Round(x/video.PixelMax*levels) / levels * video.PixelMax
	})
	return out
}

// MedianFilter applies a (2k+1)×(2k+1) spatial median per frame/channel.
func MedianFilter(v *video.Video, k int) *video.Video {
	if k <= 0 {
		return v.Clone()
	}
	out := v.Clone()
	N, C, H, W := v.Frames(), v.Channels(), v.Height(), v.Width()
	src, dst := v.Data.Data(), out.Data.Data()
	buf := make([]float64, 0, (2*k+1)*(2*k+1))
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			base := (n*C + c) * H * W
			for y := 0; y < H; y++ {
				for x := 0; x < W; x++ {
					buf = buf[:0]
					for dy := -k; dy <= k; dy++ {
						yy := y + dy
						if yy < 0 || yy >= H {
							continue
						}
						for dx := -k; dx <= k; dx++ {
							xx := x + dx
							if xx < 0 || xx >= W {
								continue
							}
							buf = append(buf, src[base+yy*W+xx])
						}
					}
					sort.Float64s(buf)
					dst[base+y*W+x] = buf[len(buf)/2]
				}
			}
		}
	}
	return out
}

// DenoiseJInvariant replaces every pixel by the mean of its 4-neighbourhood
// (excluding itself), the J-invariant predictor at the heart of Noise2Self.
func DenoiseJInvariant(v *video.Video) *video.Video {
	out := v.Clone()
	N, C, H, W := v.Frames(), v.Channels(), v.Height(), v.Width()
	src, dst := v.Data.Data(), out.Data.Data()
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			base := (n*C + c) * H * W
			for y := 0; y < H; y++ {
				for x := 0; x < W; x++ {
					sum, cnt := 0.0, 0
					if y > 0 {
						sum += src[base+(y-1)*W+x]
						cnt++
					}
					if y < H-1 {
						sum += src[base+(y+1)*W+x]
						cnt++
					}
					if x > 0 {
						sum += src[base+y*W+x-1]
						cnt++
					}
					if x < W-1 {
						sum += src[base+y*W+x+1]
						cnt++
					}
					dst[base+y*W+x] = sum / float64(cnt)
				}
			}
		}
	}
	return out
}

// CalibrateThreshold returns the detection threshold giving at most the
// requested false-positive rate on clean videos (e.g. fpr=0.05 keeps 95%
// of clean traffic unflagged).
func CalibrateThreshold(d Detector, clean []*video.Video, fpr float64) (float64, error) {
	if len(clean) == 0 {
		return 0, fmt.Errorf("defense: no clean videos to calibrate on")
	}
	if fpr <= 0 || fpr >= 1 {
		return 0, fmt.Errorf("defense: fpr %g out of (0,1)", fpr)
	}
	scores := make([]float64, len(clean))
	for i, v := range clean {
		scores[i] = d.Score(v)
	}
	sort.Float64s(scores)
	idx := int(math.Ceil(float64(len(scores))*(1-fpr))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(scores) {
		idx = len(scores) - 1
	}
	return scores[idx], nil
}

// DetectionRate returns the fraction of adversarial videos whose score
// exceeds the threshold (Table X).
func DetectionRate(d Detector, threshold float64, advs []*video.Video) float64 {
	if len(advs) == 0 {
		return 0
	}
	flagged := 0
	for _, v := range advs {
		if d.Score(v) > threshold {
			flagged++
		}
	}
	return float64(flagged) / float64(len(advs))
}
