package defense

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/nn/losses"
	"duo/internal/tensor"
	"duo/internal/video"
)

type fixture struct {
	corpus *dataset.Corpus
	model  models.Model
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		c, err := dataset.Generate(dataset.Config{
			Name: "DefSim", Categories: 3, TrainPerCategory: 5, TestPerCategory: 3,
			Frames: 8, Channels: 3, Height: 12, Width: 12, Seed: 51,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(52))
		m := models.NewC3D(rng, models.GeometryOf(c.Train[0]), 16)
		tc := models.DefaultTrainConfig()
		tc.Epochs = 2
		if _, err := models.Train(m, losses.Triplet{Margin: 0.2}, c.Train, tc); err != nil {
			panic(err)
		}
		fix = &fixture{corpus: c, model: m}
	})
	return fix
}

func TestSqueezeBitsQuantizes(t *testing.T) {
	v := video.New(1, 1, 1, 3)
	v.Data.Set(100, 0, 0, 0, 0)
	v.Data.Set(101, 0, 0, 0, 1)
	v.Data.Set(255, 0, 0, 0, 2)
	s := SqueezeBits(v, 2) // 4 levels: 0, 85, 170, 255
	if s.Data.At(0, 0, 0, 0) != s.Data.At(0, 0, 0, 1) {
		t.Error("nearby values not merged by quantization")
	}
	if s.Data.At(0, 0, 0, 2) != 255 {
		t.Errorf("max level = %g", s.Data.At(0, 0, 0, 2))
	}
	// Bits out of range are clamped, not fatal.
	_ = SqueezeBits(v, 0)
	_ = SqueezeBits(v, 99)
}

func TestSqueezeBitsIdempotent(t *testing.T) {
	f := getFixture(t)
	v := f.corpus.Train[0]
	once := SqueezeBits(v, 3)
	twice := SqueezeBits(once, 3)
	if !once.Data.Equal(twice.Data, 1e-9) {
		t.Error("squeeze not idempotent")
	}
}

func TestMedianFilterRemovesImpulse(t *testing.T) {
	v := video.New(1, 1, 5, 5)
	v.Data.ApplyInPlace(func(float64) float64 { return 100 })
	v.Data.Set(255, 0, 0, 2, 2) // single impulse
	fil := MedianFilter(v, 1)
	if fil.Data.At(0, 0, 2, 2) != 100 {
		t.Errorf("impulse survived: %g", fil.Data.At(0, 0, 2, 2))
	}
	if got := MedianFilter(v, 0); !got.Data.Equal(v.Data, 0) {
		t.Error("k=0 should be identity")
	}
}

func TestDenoiseRemovesSparseNoise(t *testing.T) {
	v := video.New(1, 1, 6, 6)
	v.Data.ApplyInPlace(func(float64) float64 { return 50 })
	noisy := v.Clone()
	noisy.Data.Set(255, 0, 0, 3, 3)
	den := DenoiseJInvariant(noisy)
	// The spike's position is re-predicted from clean neighbours.
	if den.Data.At(0, 0, 3, 3) != 50 {
		t.Errorf("spike survived: %g", den.Data.At(0, 0, 3, 3))
	}
}

// sparseAdversarial plants a sparse high-magnitude perturbation, mimicking
// a sparse AE.
func sparseAdversarial(rng *rand.Rand, v *video.Video, k int, tau float64) *video.Video {
	adv := v.Clone()
	d := adv.Data.Data()
	for _, i := range rng.Perm(len(d))[:k] {
		if rng.Intn(2) == 0 {
			d[i] += tau
		} else {
			d[i] -= tau
		}
	}
	adv.Clip()
	return adv
}

func TestCalibrationBoundsFalsePositives(t *testing.T) {
	f := getFixture(t)
	det := &FeatureSqueezer{Model: f.model, Bits: 4, MedianK: 1}
	thr, err := CalibrateThreshold(det, f.corpus.Train, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// By construction, ≤ ~10% of the calibration set exceeds the
	// threshold.
	fp := DetectionRate(det, thr, f.corpus.Train)
	if fp > 0.15 {
		t.Errorf("false-positive rate %g after calibrating to 0.1", fp)
	}
}

func TestCalibrationErrors(t *testing.T) {
	f := getFixture(t)
	det := &Noise2Self{Model: f.model}
	if _, err := CalibrateThreshold(det, nil, 0.05); err == nil {
		t.Error("empty calibration set accepted")
	}
	if _, err := CalibrateThreshold(det, f.corpus.Train, 0); err == nil {
		t.Error("fpr=0 accepted")
	}
	if _, err := CalibrateThreshold(det, f.corpus.Train, 1); err == nil {
		t.Error("fpr=1 accepted")
	}
}

func TestDetectorsFlagCrudeSparseAEs(t *testing.T) {
	// A crude sparse perturbation with extreme magnitude must be caught
	// far more often than clean videos.
	f := getFixture(t)
	rng := rand.New(rand.NewSource(53))
	dets := []Detector{
		&FeatureSqueezer{Model: f.model, Bits: 3, MedianK: 1},
		&Noise2Self{Model: f.model},
	}
	var advs []*video.Video
	for _, v := range f.corpus.Test {
		advs = append(advs, sparseAdversarial(rng, v, v.Data.Len()/10, 200))
	}
	for _, det := range dets {
		thr, err := CalibrateThreshold(det, f.corpus.Train, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		rate := DetectionRate(det, thr, advs)
		fpRate := DetectionRate(det, thr, f.corpus.Train)
		if rate < 0.4 {
			t.Errorf("%s: detection rate %g for crude AEs, want ≥ 0.4", det.Name(), rate)
		}
		if rate <= fpRate {
			t.Errorf("%s: AE rate %g not above clean FP rate %g", det.Name(), rate, fpRate)
		}
	}
}

func TestDetectionRateEmptyInput(t *testing.T) {
	f := getFixture(t)
	det := &Noise2Self{Model: f.model}
	if got := DetectionRate(det, 1, nil); got != 0 {
		t.Errorf("rate on empty set = %g", got)
	}
}

func TestStatefulDetectorFlagsRepeatedQueries(t *testing.T) {
	f := getFixture(t)
	det := NewStatefulDetector(10, 5, 5)
	base := f.corpus.Test[0]
	flagged := false
	// A query attack: many near-identical queries from one account.
	rng := rand.New(rand.NewSource(54))
	for i := 0; i < 10; i++ {
		q := base.Clone()
		q.Data.AddInPlace(tensor.RandNormal(rng, 0, 0.5, base.Data.Shape()...))
		q.Clip()
		if det.Observe("attacker", q) {
			flagged = true
		}
	}
	if !flagged {
		t.Error("attack account never flagged")
	}
	if got := det.FlaggedAccounts(); len(got) != 1 || got[0] != "attacker" {
		t.Errorf("FlaggedAccounts = %v", got)
	}
}

func TestStatefulDetectorIgnoresDiverseTraffic(t *testing.T) {
	f := getFixture(t)
	det := NewStatefulDetector(10, 5, 5)
	for i, v := range f.corpus.Train {
		if det.Observe("honest", v) {
			t.Fatalf("honest account flagged at query %d", i)
		}
	}
}

func TestStatefulDetectorEvadedByAccountRotation(t *testing.T) {
	// §I: rotating accounts evades stateful detection — each account's
	// window never fills with near-duplicates.
	f := getFixture(t)
	det := NewStatefulDetector(10, 5, 5)
	base := f.corpus.Test[0]
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 20; i++ {
		q := base.Clone()
		q.Data.AddInPlace(tensor.RandNormal(rng, 0, 0.5, base.Data.Shape()...))
		q.Clip()
		account := fmt.Sprintf("sybil-%d", i%7) // rotate 7 accounts
		if det.Observe(account, q) {
			// With window MinQueries=5 and only ~3 queries per account,
			// no account should be flagged.
			t.Fatalf("rotated account %s flagged", account)
		}
	}
}
