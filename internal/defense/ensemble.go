package defense

import (
	"sort"

	"duo/internal/retrieval"
	"duo/internal/video"
)

// Ensemble is the defense the paper proposes in §V-D: a retrieval service
// backed by several independently trained backbones whose rankings are
// fused, so that an adversarial example crafted against any one feature
// space (or a surrogate of it) has to fool all of them at once.
//
// Fusion is Borda count over each member's deep ranking: member rank r in
// a list of depth D contributes D−r points to the video's fused score.
type Ensemble struct {
	members []retrieval.Retriever
	// Depth is how deep each member's ranking is consulted (≥ the
	// requested m; defaults to 3m).
	Depth int
}

var _ retrieval.Retriever = (*Ensemble)(nil)

// NewEnsemble returns an ensemble over the given member services.
func NewEnsemble(members ...retrieval.Retriever) *Ensemble {
	return &Ensemble{members: members}
}

// Members returns the number of fused backbones.
func (e *Ensemble) Members() int { return len(e.members) }

// Retrieve implements retrieval.Retriever by Borda-fusing member rankings.
func (e *Ensemble) Retrieve(v *video.Video, m int) []retrieval.Result {
	if len(e.members) == 0 || m <= 0 {
		return nil
	}
	depth := e.Depth
	if depth < m {
		depth = 3 * m
	}
	type fused struct {
		res   retrieval.Result
		score float64
	}
	byID := make(map[string]*fused)
	for _, member := range e.members {
		for rank, r := range member.Retrieve(v, depth) {
			f, ok := byID[r.ID]
			if !ok {
				f = &fused{res: r}
				byID[r.ID] = f
			}
			f.score += float64(depth - rank)
		}
	}
	all := make([]*fused, 0, len(byID))
	for _, f := range byID {
		all = append(all, f)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score { //duolint:allow floateq comparator tie-break: fusion scores are sums of small ints in float form, exact by construction
			return all[a].score > all[b].score
		}
		return all[a].res.ID < all[b].res.ID
	})
	if m > len(all) {
		m = len(all)
	}
	out := make([]retrieval.Result, m)
	for i := 0; i < m; i++ {
		out[i] = all[i].res
		// Report the fused score's rank distance rather than any single
		// member's feature distance.
		out[i].Dist = float64(i)
	}
	return out
}
