package defense

import (
	"math/rand"
	"testing"

	"duo/internal/models"
	"duo/internal/nn/losses"
	"duo/internal/retrieval"
)

func ensembleFixture(t *testing.T) (*retrieval.Engine, *retrieval.Engine, *fixture) {
	t.Helper()
	f := getFixture(t)
	// A second, independently seeded backbone over the same gallery.
	rng := rand.New(rand.NewSource(77))
	g := models.GeometryOf(f.corpus.Train[0])
	m2 := models.NewSlowFast(rng, g, 16)
	tc := models.DefaultTrainConfig()
	tc.Epochs = 2
	if _, err := models.Train(m2, losses.Triplet{Margin: 0.2}, f.corpus.Train, tc); err != nil {
		t.Fatal(err)
	}
	return retrieval.NewEngine(f.model, f.corpus.Train), retrieval.NewEngine(m2, f.corpus.Train), f
}

func TestEnsembleSingleMemberMatchesEngine(t *testing.T) {
	e1, _, f := ensembleFixture(t)
	ens := NewEnsemble(e1)
	q := f.corpus.Test[0]
	a := retrieval.IDs(e1.Retrieve(q, 5))
	b := retrieval.IDs(ens.Retrieve(q, 5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("single-member ensemble differs at %d: %v vs %v", i, a, b)
		}
	}
}

func TestEnsembleFusesMembers(t *testing.T) {
	e1, e2, f := ensembleFixture(t)
	ens := NewEnsemble(e1, e2)
	if ens.Members() != 2 {
		t.Fatalf("members = %d", ens.Members())
	}
	q := f.corpus.Test[1]
	rs := ens.Retrieve(q, 6)
	if len(rs) != 6 {
		t.Fatalf("got %d results", len(rs))
	}
	// Fused dist is the fused rank.
	for i, r := range rs {
		if r.Dist != float64(i) {
			t.Errorf("fused rank %d has Dist %g", i, r.Dist)
		}
	}
	// Determinism.
	again := retrieval.IDs(ens.Retrieve(q, 6))
	for i, id := range retrieval.IDs(rs) {
		if id != again[i] {
			t.Fatal("ensemble retrieval not deterministic")
		}
	}
}

func TestEnsembleRetrievalQuality(t *testing.T) {
	e1, e2, f := ensembleFixture(t)
	ens := NewEnsemble(e1, e2)
	single := retrieval.EvaluateMAP(e1, f.corpus.Test, 6)
	fused := retrieval.EvaluateMAP(ens, f.corpus.Test, 6)
	// Fusion must not destroy retrieval quality (it usually helps).
	if fused < single-0.15 {
		t.Errorf("ensemble mAP %g far below single %g", fused, single)
	}
}

func TestEnsembleEmptyAndZeroM(t *testing.T) {
	_, _, f := ensembleFixture(t)
	if got := NewEnsemble().Retrieve(f.corpus.Test[0], 5); got != nil {
		t.Error("empty ensemble returned results")
	}
	e1, _, _ := ensembleFixture(t)
	if got := NewEnsemble(e1).Retrieve(f.corpus.Test[0], 0); len(got) != 0 {
		t.Error("m=0 returned results")
	}
}
