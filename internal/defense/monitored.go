package defense

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"duo/internal/retrieval"
	"duo/internal/video"
)

// ErrAccountBlocked is returned when a flagged account queries the
// monitored service.
var ErrAccountBlocked = errors.New("defense: account blocked by stateful detector")

// MonitoredService wraps a retrieval service with the stateful
// query-account monitoring of Chen et al. [13]: every query is attributed
// to an account, the StatefulDetector watches each account's recent query
// window, and accounts that look like query-based attackers are refused
// further service.
type MonitoredService struct {
	inner    retrieval.Retriever
	detector *StatefulDetector

	mu      sync.Mutex
	blocked map[string]bool
	refused int
	served  int
}

// NewMonitoredService wraps inner with the detector.
func NewMonitoredService(inner retrieval.Retriever, detector *StatefulDetector) *MonitoredService {
	return &MonitoredService{inner: inner, detector: detector, blocked: make(map[string]bool)}
}

// RetrieveAs serves a query attributed to an account, or refuses it if the
// account is (or just became) flagged.
func (s *MonitoredService) RetrieveAs(account string, v *video.Video, m int) ([]retrieval.Result, error) {
	s.mu.Lock()
	if s.blocked[account] {
		s.refused++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAccountBlocked, account)
	}
	flagged := s.detector.Observe(account, v)
	if flagged {
		s.blocked[account] = true
		s.refused++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAccountBlocked, account)
	}
	s.served++
	s.mu.Unlock()
	return s.inner.Retrieve(v, m), nil
}

// BlockedAccounts returns the accounts refused so far.
func (s *MonitoredService) BlockedAccounts() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.blocked))
	for a := range s.blocked {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Stats reports served and refused query counts.
func (s *MonitoredService) Stats() (served, refused int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.refused
}

// SingleAccount adapts the monitored service to the plain Retriever
// interface under one fixed account — the naive attacker. Refused queries
// return an empty list (the service hangs up).
type SingleAccount struct {
	Service *MonitoredService
	Account string
}

var _ retrieval.Retriever = (*SingleAccount)(nil)

// Retrieve implements retrieval.Retriever.
func (a *SingleAccount) Retrieve(v *video.Video, m int) []retrieval.Result {
	rs, err := a.Service.RetrieveAs(a.Account, v, m)
	if err != nil {
		return nil
	}
	return rs
}

// AccountRotator is the evasion §I describes ("the adversary can easily
// evade such detection by using different query accounts which are fairly
// easy to create/purchase"): it spreads queries across throwaway accounts,
// switching to a fresh one every QueriesPerAccount queries or immediately
// after a block.
type AccountRotator struct {
	Service *MonitoredService
	// QueriesPerAccount is how many queries each sybil account issues
	// before rotating (keep below the detector's MinQueries to stay
	// invisible).
	QueriesPerAccount int

	mu      sync.Mutex
	account int
	used    int
	rotated int
}

var _ retrieval.Retriever = (*AccountRotator)(nil)

// Retrieve implements retrieval.Retriever, rotating accounts as needed.
func (r *AccountRotator) Retrieve(v *video.Video, m int) []retrieval.Result {
	r.mu.Lock()
	per := r.QueriesPerAccount
	if per < 1 {
		per = 1
	}
	if r.used >= per {
		r.account++
		r.rotated++
		r.used = 0
	}
	name := fmt.Sprintf("sybil-%06d", r.account)
	r.used++
	r.mu.Unlock()

	rs, err := r.Service.RetrieveAs(name, v, m)
	if err != nil {
		// Blocked mid-window: burn the account and retry once with a
		// fresh one.
		r.mu.Lock()
		r.account++
		r.rotated++
		r.used = 1
		name = fmt.Sprintf("sybil-%06d", r.account)
		r.mu.Unlock()
		rs, err = r.Service.RetrieveAs(name, v, m)
		if err != nil {
			return nil
		}
	}
	return rs
}

// AccountsUsed returns how many sybil accounts have been consumed.
func (r *AccountRotator) AccountsUsed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.account + 1
}
