package defense

import (
	"errors"
	"math/rand"
	"testing"

	"duo/internal/retrieval"
	"duo/internal/tensor"
)

func monitoredFixture(t *testing.T) (*MonitoredService, *fixture) {
	t.Helper()
	f := getFixture(t)
	eng := retrieval.NewEngine(f.model, f.corpus.Train)
	det := NewStatefulDetector(10, 5, 5)
	return NewMonitoredService(eng, det), f
}

func TestMonitoredServesHonestTraffic(t *testing.T) {
	svc, f := monitoredFixture(t)
	for i, v := range f.corpus.Train {
		rs, err := svc.RetrieveAs("honest", v, 5)
		if err != nil {
			t.Fatalf("honest query %d refused: %v", i, err)
		}
		if len(rs) != 5 {
			t.Fatalf("got %d results", len(rs))
		}
	}
	served, refused := svc.Stats()
	if served != len(f.corpus.Train) || refused != 0 {
		t.Errorf("stats = %d served, %d refused", served, refused)
	}
}

func TestMonitoredBlocksQueryAttack(t *testing.T) {
	svc, f := monitoredFixture(t)
	base := f.corpus.Test[0]
	rng := rand.New(rand.NewSource(61))
	var blockedErr error
	for i := 0; i < 15; i++ {
		q := base.Clone()
		q.Data.AddInPlace(tensor.RandNormal(rng, 0, 0.5, base.Data.Shape()...))
		q.Clip()
		if _, err := svc.RetrieveAs("attacker", q, 5); err != nil {
			blockedErr = err
			break
		}
	}
	if blockedErr == nil {
		t.Fatal("query attack never blocked")
	}
	if !errors.Is(blockedErr, ErrAccountBlocked) {
		t.Errorf("error %v does not wrap ErrAccountBlocked", blockedErr)
	}
	if got := svc.BlockedAccounts(); len(got) != 1 || got[0] != "attacker" {
		t.Errorf("BlockedAccounts = %v", got)
	}
	// Once blocked, always refused.
	if _, err := svc.RetrieveAs("attacker", base, 5); err == nil {
		t.Error("blocked account served again")
	}
}

func TestSingleAccountGoesSilentWhenBlocked(t *testing.T) {
	svc, f := monitoredFixture(t)
	naive := &SingleAccount{Service: svc, Account: "naive"}
	base := f.corpus.Test[1]
	rng := rand.New(rand.NewSource(62))
	empty := 0
	for i := 0; i < 15; i++ {
		q := base.Clone()
		q.Data.AddInPlace(tensor.RandNormal(rng, 0, 0.5, base.Data.Shape()...))
		q.Clip()
		if len(naive.Retrieve(q, 5)) == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Error("naive single-account attacker was never cut off")
	}
}

func TestAccountRotatorEvadesDetection(t *testing.T) {
	svc, f := monitoredFixture(t)
	rot := &AccountRotator{Service: svc, QueriesPerAccount: 4} // below MinQueries=5
	base := f.corpus.Test[2]
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 40; i++ {
		q := base.Clone()
		q.Data.AddInPlace(tensor.RandNormal(rng, 0, 0.5, base.Data.Shape()...))
		q.Clip()
		if len(rot.Retrieve(q, 5)) == 0 {
			t.Fatalf("rotated query %d refused", i)
		}
	}
	if got := svc.BlockedAccounts(); len(got) != 0 {
		t.Errorf("rotator accounts blocked: %v", got)
	}
	if rot.AccountsUsed() < 40/4 {
		t.Errorf("only %d accounts used for 40 queries", rot.AccountsUsed())
	}
}

func TestAccountRotatorRecoversFromBlock(t *testing.T) {
	svc, f := monitoredFixture(t)
	// Rotate too slowly (window fills) so blocks happen, and verify the
	// rotator still gets answers by burning accounts.
	rot := &AccountRotator{Service: svc, QueriesPerAccount: 20}
	base := f.corpus.Test[0]
	rng := rand.New(rand.NewSource(64))
	failures := 0
	for i := 0; i < 30; i++ {
		q := base.Clone()
		q.Data.AddInPlace(tensor.RandNormal(rng, 0, 0.5, base.Data.Shape()...))
		q.Clip()
		if len(rot.Retrieve(q, 5)) == 0 {
			failures++
		}
	}
	if failures > 0 {
		t.Errorf("%d queries went unanswered despite rotation-on-block", failures)
	}
	if _, refused := svc.Stats(); refused == 0 {
		t.Error("expected at least one refusal before rotation kicked in")
	}
}
