package defense

import (
	"sort"
	"sync"

	"duo/internal/video"
)

// StatefulDetector is the stateful query-account monitor of Chen et al.
// (Asia CCS'20), reference [13] of the paper: it keeps a per-account window
// of recent query fingerprints and flags an account whose queries are
// mutually near-duplicates — the signature of a query-based attack
// iterating on one video. §I notes attackers evade it by rotating
// accounts, which the tests demonstrate.
type StatefulDetector struct {
	// Window is how many recent queries per account are retained.
	Window int
	// Threshold is the mean pairwise fingerprint distance below which the
	// window is considered near-duplicate.
	Threshold float64
	// MinQueries is the minimum window fill before flagging.
	MinQueries int

	mu      sync.Mutex
	history map[string][][]float64
}

// NewStatefulDetector returns a detector with the given window, duplicate
// threshold (in mean per-element pixel distance), and minimum fill.
func NewStatefulDetector(window int, threshold float64, minQueries int) *StatefulDetector {
	if window < 2 {
		window = 2
	}
	if minQueries < 2 {
		minQueries = 2
	}
	return &StatefulDetector{
		Window:     window,
		Threshold:  threshold,
		MinQueries: minQueries,
		history:    make(map[string][][]float64),
	}
}

// fingerprint summarizes a video as per-frame mean intensities: cheap,
// order-preserving under small perturbations, and storage-bounded.
func fingerprint(v *video.Video) []float64 {
	fp := make([]float64, v.Frames())
	for f := 0; f < v.Frames(); f++ {
		fp[f] = v.Data.Slice(f).Mean()
	}
	return fp
}

func fpDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// Observe records a query from the account and reports whether the account
// is now flagged as attacking.
func (d *StatefulDetector) Observe(account string, v *video.Video) bool {
	fp := fingerprint(v)
	d.mu.Lock()
	defer d.mu.Unlock()
	h := append(d.history[account], fp)
	if len(h) > d.Window {
		h = h[len(h)-d.Window:]
	}
	d.history[account] = h
	if len(h) < d.MinQueries {
		return false
	}
	// Mean pairwise distance across the window.
	total, pairs := 0.0, 0
	for i := range h {
		for j := i + 1; j < len(h); j++ {
			total += fpDistance(h[i], h[j])
			pairs++
		}
	}
	return total/float64(pairs) < d.Threshold
}

// FlaggedAccounts returns the accounts currently flagged.
func (d *StatefulDetector) FlaggedAccounts() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for acct, h := range d.history {
		if len(h) < d.MinQueries {
			continue
		}
		total, pairs := 0.0, 0
		for i := range h {
			for j := i + 1; j < len(h); j++ {
				total += fpDistance(h[i], h[j])
				pairs++
			}
		}
		if total/float64(pairs) < d.Threshold {
			out = append(out, acct)
		}
	}
	sort.Strings(out)
	return out
}
