package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"duo/internal/attack"
	"duo/internal/baseline"
	"duo/internal/core"
	"duo/internal/dataset"
	"duo/internal/metrics"
	"duo/internal/models"
	"duo/internal/retrieval"
)

// AttackNames lists the Table II rows in paper order.
func AttackNames() []string {
	return []string{
		"w/o attack",
		"TIMI-C3D", "TIMI-Res18",
		"HEU-Nes", "HEU-Sim",
		"Vanilla",
		"DUO-C3D", "DUO-Res18",
	}
}

// Budget collects every tunable the sweep tables vary.
type Budget struct {
	// K is the pixel budget (Table V), N the frame budget (Table VI), Tau
	// the magnitude budget (Table VII), IterNumH the pipeline loops
	// (Table VIII).
	K        int
	N        int
	Tau      float64
	IterNumH int
	// Queries is the victim query budget per attack run.
	Queries int
	// Norm selects ℓ∞ (default) or ℓ2 projection (Table IX).
	Norm core.NormConstraint
	// UseADMM/UseNDCG/UseDCT drive the DESIGN.md §6 ablations.
	UseADMM bool
	UseNDCG bool
	// UseDCT switches SparseQuery to the low-frequency DCT basis.
	UseDCT bool
	// TransferOnly skips SparseQuery (Table IX evaluates SparseTransfer
	// alone).
	TransferOnly bool
}

// DefaultBudget derives the paper's default budgets for a scenario.
func (s *Scenario) DefaultBudget() Budget {
	t := core.DefaultTransferConfig(s.Geometry())
	return Budget{
		K: t.K, N: t.N, Tau: t.Tau,
		IterNumH: 2,
		Queries:  s.P.Queries,
		Norm:     core.NormLInf,
		UseADMM:  true,
		UseNDCG:  true,
	}
}

// CellStats are the per-table-cell aggregates (averaged over pairs).
type CellStats struct {
	APm     float64 // percent
	Spa     float64
	PScore  float64
	Queries float64
	// Trajectories holds each pair's 𝕋 series (used by Fig. 5).
	Trajectories [][]float64
	// Outcomes holds each pair's raw outcome (used by Table X).
	Outcomes []*attack.Outcome
}

// runPairs executes an attack over all pairs concurrently (model forwards
// are pure and the retrieval engines are safe for concurrent queries) and
// reduces the outcomes into CellStats. Each pair gets its own seeded RNG,
// so results are identical to a sequential run.
func (s *Scenario) runPairs(victim retrieval.Retriever, pairs []dataset.AttackPair,
	run func(ctx *attack.Context, pair dataset.AttackPair) (*attack.Outcome, error)) (*CellStats, error) {
	outs := make([]*attack.Outcome, len(pairs))
	errs := make([]error, len(pairs))
	var wg sync.WaitGroup
	for pi := range pairs {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(s.Opts.Seed + int64(pi)*997))
			ctx := &attack.Context{Victim: victim, M: s.P.M, Rng: rng, Telemetry: s.Opts.Telemetry}
			outs[pi], errs[pi] = run(ctx, pairs[pi])
		}(pi)
	}
	wg.Wait()
	cs := &CellStats{}
	for pi, out := range outs {
		if errs[pi] != nil {
			return nil, errs[pi]
		}
		cs.APm += out.APAtM(victim, pairs[pi].Target, s.P.M) * 100
		cs.Spa += float64(out.Spa())
		cs.PScore += out.PScore()
		cs.Queries += float64(out.Queries)
		cs.Trajectories = append(cs.Trajectories, out.Trajectory)
		cs.Outcomes = append(cs.Outcomes, out)
	}
	n := float64(len(pairs))
	cs.APm /= n
	cs.Spa /= n
	cs.PScore /= n
	cs.Queries /= n
	return cs, nil
}

// runAttackCell runs one attack over all pairs against one victim and
// averages the paper's three measures.
func (s *Scenario) runAttackCell(name, ds, victimArch string, pairs []dataset.AttackPair, b Budget) (*CellStats, error) {
	victim, err := s.Victim(ds, victimArch, DefaultVictimLoss)
	if err != nil {
		return nil, err
	}
	// Resolve surrogates up front (cached, and not safe to build
	// concurrently with themselves).
	var surr models.Model
	switch name {
	case "TIMI-C3D", "TIMI-Res18", "DUO-C3D", "DUO-Res18":
		surr, err = s.surrogateFor(ds, victimArch, name)
		if err != nil {
			return nil, err
		}
	}
	return s.runPairs(victim, pairs, func(ctx *attack.Context, pair dataset.AttackPair) (*attack.Outcome, error) {
		switch name {
		case "w/o attack":
			return attack.NewOutcome(pair.Original, pair.Original.Clone(), 0, nil), nil
		case "TIMI-C3D", "TIMI-Res18":
			return baseline.RunTIMI(surr, pair.Original, pair.Target, baseline.DefaultTIMIConfig())
		case "HEU-Nes", "HEU-Sim":
			sel := baseline.SelectionSaliency
			if name == "HEU-Sim" {
				sel = baseline.SelectionRandom
			}
			cfg := baseline.DefaultHEUConfig(sel, b.K, b.N, b.Tau)
			cfg.MaxQueries = b.Queries
			return baseline.RunHEU(ctx, pair.Original, pair.Target, cfg)
		case "Vanilla":
			cfg := baseline.VanillaConfig{Spa: b.K, Frames: b.N, Tau: b.Tau, MaxQueries: b.Queries, Eta: 0.5}
			return baseline.RunVanilla(ctx, pair.Original, pair.Target, cfg)
		case "DUO-C3D", "DUO-Res18":
			return s.runDUO(ctx, surr, pair, b)
		default:
			return nil, fmt.Errorf("experiments: unknown attack %q", name)
		}
	})
}

// runDUOCell runs DUO over pairs with an explicit victim engine and
// surrogate (used by the sweep tables that vary one of the two).
func (s *Scenario) runDUOCell(victim *retrieval.Engine, surr models.Model, pairs []dataset.AttackPair, b Budget) (*CellStats, error) {
	return s.runPairs(victim, pairs, func(ctx *attack.Context, pair dataset.AttackPair) (*attack.Outcome, error) {
		return s.runDUO(ctx, surr, pair, b)
	})
}

// surrogateFor resolves the surrogate backbone an attack variant uses.
func (s *Scenario) surrogateFor(ds, victimArch, attackName string) (models.Model, error) {
	arch := "C3D"
	switch attackName {
	case "TIMI-Res18", "DUO-Res18":
		arch = "Resnet18"
	}
	return s.Surrogate(ds, victimArch, DefaultVictimLoss, arch, s.P.StealCap, s.P.FeatDim)
}

// runDUO assembles a core.Config from a Budget and runs the pipeline.
func (s *Scenario) runDUO(ctx *attack.Context, surr models.Model, pair dataset.AttackPair, b Budget) (*attack.Outcome, error) {
	tcfg := core.DefaultTransferConfig(s.Geometry())
	tcfg.K = b.K
	tcfg.N = b.N
	tcfg.Tau = b.Tau
	tcfg.Norm = b.Norm
	tcfg.UseADMM = b.UseADMM
	tcfg.OuterIters = 3
	tcfg.ThetaSteps = 15

	if b.TransferOnly {
		masks, err := core.SparseTransfer(surr, pair.Original, pair.Target, tcfg)
		if err != nil {
			return nil, err
		}
		adv := pair.Original.Add(masks.Compose())
		return attack.NewOutcome(pair.Original, adv, 0, nil), nil
	}

	qcfg := core.DefaultQueryConfig()
	qcfg.MaxQueries = b.Queries
	qcfg.Tau = b.Tau
	if !b.UseNDCG {
		qcfg.Sim = metrics.PlainOverlap
	}
	if b.UseDCT {
		qcfg.Basis = core.BasisDCT
	}
	cfg := core.Config{Transfer: tcfg, Query: qcfg, IterNumH: b.IterNumH}
	res, err := core.Run(ctx, surr, pair.Original, pair.Target, cfg)
	if err != nil {
		return nil, err
	}
	return res.Outcome, nil
}

// fmtF renders a float with two decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtI renders a float as a rounded integer.
func fmtI(v float64) string { return fmt.Sprintf("%.0f", v) }
