package experiments

import "fmt"

// ablationVictim fixes the backbone the ablations attack.
const ablationVictim = "I3D"

// runAblation renders a two-row comparison of a DUO design choice.
func runAblation(o Options, id, title string, variants []string, mutate func(*Budget, int)) (*Table, error) {
	s := NewScenario(o)
	ds := o.datasets()[0]
	pairs, err := s.Pairs(ds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"Variant", "AP@m", "Spa", "PScore", "Queries"},
	}
	for vi, name := range variants {
		b := s.DefaultBudget()
		mutate(&b, vi)
		cs, err := s.runAttackCell("DUO-C3D", ds, ablationVictim, pairs, b)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", id, name, err)
		}
		t.Rows = append(t.Rows, []string{name, fmtF(cs.APm), fmtI(cs.Spa), fmtF(cs.PScore), fmtI(cs.Queries)})
	}
	return t, nil
}

// AblationADMM compares the ℓp-box ADMM ℐ-step against plain top-k
// selection (DESIGN.md §6).
func AblationADMM(o Options) (*Table, error) {
	return runAblation(o, "ablation-admm",
		"ℐ-step: ℓp-box ADMM vs plain top-k selection",
		[]string{"ADMM", "top-k"},
		func(b *Budget, vi int) { b.UseADMM = vi == 0 })
}

// AblationNDCG compares the NDCG-weighted ℍ against plain set overlap in
// the SparseQuery objective (DESIGN.md §6).
func AblationNDCG(o Options) (*Table, error) {
	return runAblation(o, "ablation-ndcg",
		"𝕋 similarity: NDCG-weighted ℍ vs plain overlap",
		[]string{"NDCG", "plain-overlap"},
		func(b *Budget, vi int) { b.UseNDCG = vi == 0 })
}

// AblationDCT compares the paper's Cartesian SparseQuery basis against the
// low-frequency DCT basis of SimBA-DCT (an extension beyond the paper).
func AblationDCT(o Options) (*Table, error) {
	t, err := runAblation(o, "ablation-dct",
		"SparseQuery basis: Cartesian (paper) vs low-frequency DCT",
		[]string{"Cartesian", "DCT"},
		func(b *Budget, vi int) { b.UseDCT = vi == 1 })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"DCT steps move whole masked frequency patterns per query: fewer, smoother directions at the same budget")
	return t, nil
}

// AblationMask compares DUO's masked SimBA query stage against an unmasked
// (dense) SimBA with the same query budget: the masked variant keeps Spa
// low at comparable AP@m (DESIGN.md §6).
func AblationMask(o Options) (*Table, error) {
	s := NewScenario(o)
	ds := o.datasets()[0]
	pairs, err := s.Pairs(ds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-mask",
		Title:   "SparseQuery support: masked (DUO) vs unmasked (dense SimBA)",
		Headers: []string{"Variant", "AP@m", "Spa", "PScore", "Queries"},
		Notes: []string{
			"the dense variant is Vanilla with the full video as support: similar query budget, far higher Spa potential",
		},
	}
	b := s.DefaultBudget()
	masked, err := s.runAttackCell("DUO-C3D", ds, ablationVictim, pairs, b)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"masked (DUO)", fmtF(masked.APm), fmtI(masked.Spa), fmtF(masked.PScore), fmtI(masked.Queries)})

	dense := b
	dense.K = s.P.Frames * 3 * s.P.Height * s.P.Width // whole video
	dense.N = s.P.Frames
	denseCS, err := s.runAttackCell("Vanilla", ds, ablationVictim, pairs, dense)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"unmasked (dense SimBA)", fmtF(denseCS.APm), fmtI(denseCS.Spa), fmtF(denseCS.PScore), fmtI(denseCS.Queries)})
	return t, nil
}
