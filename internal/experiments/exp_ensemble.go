package experiments

import (
	"fmt"
	"math/rand"

	"duo/internal/attack"
	"duo/internal/defense"
	"duo/internal/retrieval"
)

// EnsembleDefense evaluates the paper's §V-D proposal ("ensemble models
// built from multiple backbones would be more robust against most AE
// attacks"): DUO-C3D, with its surrogate stolen from the single I3D
// service, is launched against (a) that single-backbone victim and (b) a
// Borda-fused ensemble of three backbones over the same gallery.
func EnsembleDefense(o Options) (*Table, error) {
	s := NewScenario(o)
	ds := o.datasets()[0]
	pairs, err := s.Pairs(ds)
	if err != nil {
		return nil, err
	}
	b := s.DefaultBudget()

	single, err := s.Victim(ds, "I3D", DefaultVictimLoss)
	if err != nil {
		return nil, err
	}
	members := []retrieval.Retriever{single}
	for _, arch := range []string{"SlowFast", "TPN"} {
		eng, err := s.Victim(ds, arch, DefaultVictimLoss)
		if err != nil {
			return nil, err
		}
		members = append(members, eng)
	}
	ensemble := defense.NewEnsemble(members...)

	surr, err := s.Surrogate(ds, "I3D", DefaultVictimLoss, "C3D", s.P.StealCap, s.P.FeatDim)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ensemble",
		Title:   "§V-D proposed defense: single-backbone victim vs 3-backbone ensemble",
		Headers: []string{"Victim", "AP@m w/o", "AP@m DUO-C3D", "Gain"},
		Notes: []string{
			"paper conjecture: the ensemble's AP@m gain under attack is smaller than the single backbone's",
		},
	}

	for _, row := range []struct {
		name   string
		victim retrieval.Retriever
	}{
		{"I3D (single)", single},
		{"I3D+SlowFast+TPN (ensemble)", ensemble},
	} {
		woSum, advSum := 0.0, 0.0
		for pi, pair := range pairs {
			rng := rand.New(rand.NewSource(s.Opts.Seed + int64(pi)*997))
			ctx := &attack.Context{Victim: row.victim, M: s.P.M, Rng: rng}
			out, err := s.runDUO(ctx, surr, pair, b)
			if err != nil {
				return nil, fmt.Errorf("ensemble/%s: %w", row.name, err)
			}
			wo := attack.NewOutcome(pair.Original, pair.Original.Clone(), 0, nil)
			woSum += wo.APAtM(row.victim, pair.Target, s.P.M) * 100
			advSum += out.APAtM(row.victim, pair.Target, s.P.M) * 100
		}
		n := float64(len(pairs))
		t.Rows = append(t.Rows, []string{
			row.name, fmtF(woSum / n), fmtF(advSum / n), fmtF((advSum - woSum) / n),
		})
	}
	return t, nil
}
