package experiments

import (
	"fmt"

	"duo/internal/retrieval"
	"duo/internal/surrogate"
)

// Fig3VictimMAP reproduces Fig. 3: mAPs of every victim backbone × loss
// function on both datasets.
func Fig3VictimMAP(o Options) (*Table, error) {
	s := NewScenario(o)
	t := &Table{
		ID:      "fig3",
		Title:   "mAPs on different (victim) video retrieval systems",
		Headers: append([]string{"Dataset", "Loss"}, o.victimArchs()...),
		Notes: []string{
			"paper shape: loss choice matters more on the smaller dataset; best combo is dataset-dependent",
		},
	}
	for _, ds := range o.datasets() {
		c, err := s.Corpus(ds)
		if err != nil {
			return nil, err
		}
		for _, loss := range VictimLossNames() {
			row := []string{ds, loss}
			for _, arch := range o.victimArchs() {
				eng, err := s.Victim(ds, arch, loss)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtF(retrieval.EvaluateMAP(eng, c.Test, s.P.M)*100))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig4SurrogateMAP reproduces Fig. 4: surrogate retrieval mAP as a function
// of (a) the stolen dataset size and (b) the output feature size.
func Fig4SurrogateMAP(o Options) (*Table, error) {
	s := NewScenario(o)
	t := &Table{
		ID:      "fig4",
		Title:   "surrogate mAP vs # of stolen samples and output feature size",
		Headers: []string{"Dataset", "Sweep", "Value", "mAP", "VictimAgreement"},
		Notes: []string{
			"paper shape: mAP grows with the stolen dataset size; the feature size has little impact",
		},
	}
	const victimArch = "SlowFast"
	sizes := stealSizes(s.P.StealCap)
	feats := featSizes(s.P.FeatDim)
	for _, ds := range o.datasets() {
		c, err := s.Corpus(ds)
		if err != nil {
			return nil, err
		}
		victim, err := s.Victim(ds, victimArch, DefaultVictimLoss)
		if err != nil {
			return nil, err
		}
		for _, sz := range sizes {
			m, err := s.Surrogate(ds, victimArch, DefaultVictimLoss, "C3D", sz, s.P.FeatDim)
			if err != nil {
				return nil, err
			}
			eng := retrieval.NewEngine(m, c.Train)
			t.Rows = append(t.Rows, []string{
				ds, "samples", fmt.Sprint(sz),
				fmtF(retrieval.EvaluateMAP(eng, c.Test, s.P.M) * 100),
				fmtF(surrogate.Agreement(victim, m, c.Train, c.Test, s.P.M) * 100),
			})
		}
		for _, fd := range feats {
			m, err := s.Surrogate(ds, victimArch, DefaultVictimLoss, "C3D", s.P.StealCap, fd)
			if err != nil {
				return nil, err
			}
			eng := retrieval.NewEngine(m, c.Train)
			t.Rows = append(t.Rows, []string{
				ds, "featdim", fmt.Sprint(fd),
				fmtF(retrieval.EvaluateMAP(eng, c.Test, s.P.M) * 100),
				fmtF(surrogate.Agreement(victim, m, c.Train, c.Test, s.P.M) * 100),
			})
		}
	}
	return t, nil
}

// stealSizes scales the paper's surrogate dataset sizes
// [165, 1111, 3616, 8421] to the scenario's cap.
func stealSizes(total int) []int {
	sizes := []int{total / 8, total / 4, total / 2, total}
	for i := range sizes {
		if sizes[i] < 2 {
			sizes[i] = 2 + i
		}
	}
	return sizes
}

// featSizes scales the paper's output feature sizes [256, 512, 768, 1024].
func featSizes(base int) []int {
	return []int{base / 2, base, base * 3 / 2, base * 2}
}

// Fig5QueryCurves reproduces Fig. 5: the objective 𝕋 as a function of the
// number of queries, for the query-based attacks.
func Fig5QueryCurves(o Options) (*Table, error) {
	s := NewScenario(o)
	const victimArch = "TPN"
	ds := o.datasets()[0]
	pairs, err := s.Pairs(ds)
	if err != nil {
		return nil, err
	}
	b := s.DefaultBudget()
	// Fig. 5 traces a single SparseQuery stage, so the pipeline is not
	// looped here (looping restarts 𝕋 from the new base video).
	b.IterNumH = 1
	attacks := []string{"Vanilla", "HEU-Nes", "DUO-C3D", "DUO-Res18"}

	t := &Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("objective 𝕋 vs # of queries (%s, victim %s)", ds, victimArch),
		Headers: append([]string{"Queries"}, attacks...),
		Notes: []string{
			"paper shape: 𝕋 decreases with queries for every attack; DUO reaches lower 𝕋 than Vanilla",
		},
	}

	curves := make([][]float64, len(attacks))
	for ai, name := range attacks {
		cs, err := s.runAttackCell(name, ds, victimArch, pairs, b)
		if err != nil {
			return nil, err
		}
		curves[ai] = meanTrajectory(cs.Trajectories)
	}
	// Sample each curve at 5 checkpoints of the query budget.
	maxLen := 0
	for _, c := range curves {
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	if maxLen == 0 {
		return nil, fmt.Errorf("experiments: fig5: no trajectories recorded")
	}
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		idx := int(frac * float64(maxLen-1))
		row := []string{fmt.Sprint(idx)}
		for _, c := range curves {
			j := idx
			if j >= len(c) {
				j = len(c) - 1
			}
			if j < 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.4f", c[j]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// meanTrajectory averages trajectories of unequal length (shorter series
// hold their last value, mirroring a converged attack).
func meanTrajectory(ts [][]float64) []float64 {
	maxLen := 0
	for _, t := range ts {
		if len(t) > maxLen {
			maxLen = len(t)
		}
	}
	if maxLen == 0 {
		return nil
	}
	out := make([]float64, maxLen)
	for i := range out {
		sum, n := 0.0, 0
		for _, t := range ts {
			if len(t) == 0 {
				continue
			}
			j := i
			if j >= len(t) {
				j = len(t) - 1
			}
			sum += t[j]
			n++
		}
		if n > 0 {
			out[i] = sum / float64(n)
		}
	}
	return out
}
