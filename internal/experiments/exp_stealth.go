package experiments

import (
	"fmt"

	"duo/internal/video"
)

// StealthComparison extends Table II with visual-quality metrics: per
// attack, the PSNR and global SSIM of the adversarial video against the
// original, next to the paper's sparsity measures Spa and PScore. The two
// families capture different stealth notions — sparsity (how many pixels
// change) versus amplitude (how much each pixel changes) — and the table
// reports both without conflating them.
func StealthComparison(o Options) (*Table, error) {
	s := NewScenario(o)
	ds := o.datasets()[0]
	victimArch := o.victimArchs()[0]
	pairs, err := s.Pairs(ds)
	if err != nil {
		return nil, err
	}
	b := s.DefaultBudget()

	t := &Table{
		ID:      "stealth",
		Title:   fmt.Sprintf("visual stealthiness per attack (%s, victim %s)", ds, victimArch),
		Headers: []string{"Attack", "Spa", "PScore", "PSNR(dB)", "SSIM"},
		Notes: []string{
			"the paper argues stealth via sparsity (Spa, PScore): sparse attacks touch ~7× fewer elements",
			"PSNR/global-SSIM instead reward low per-pixel amplitude, which favors dense TIMI — the two stealth notions (few pixels vs faint pixels) measure different things and are reported side by side",
		},
	}
	attacks := []string{"TIMI-C3D", "HEU-Nes", "Vanilla", "DUO-C3D"}
	for _, name := range attacks {
		cs, err := s.runAttackCell(name, ds, victimArch, pairs, b)
		if err != nil {
			return nil, fmt.Errorf("stealth/%s: %w", name, err)
		}
		psnr, ssim := 0.0, 0.0
		for pi, out := range cs.Outcomes {
			psnr += video.PSNR(pairs[pi].Original, out.Adv)
			ssim += video.SSIM(pairs[pi].Original, out.Adv)
		}
		n := float64(len(cs.Outcomes))
		t.Rows = append(t.Rows, []string{
			name, fmtI(cs.Spa), fmtF(cs.PScore), fmtF(psnr / n), fmt.Sprintf("%.4f", ssim/n),
		})
	}
	return t, nil
}
