package experiments

import (
	"fmt"

	"duo/internal/core"
	"duo/internal/defense"
	"duo/internal/video"
)

// Table9Transfer reproduces Table IX: the transferability of
// SparseTransfer-only adversarial examples under ℓ2 and ℓ∞ constraints,
// compared with TIMI, across victim backbones (UCF101 in the paper).
func Table9Transfer(o Options) (*Table, error) {
	s := NewScenario(o)
	ds := o.datasets()[0]
	pairs, err := s.Pairs(ds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table9",
		Title:   fmt.Sprintf("transferability of SparseTransfer AEs (%s)", ds),
		Headers: []string{"Victim", "Attack", "AP@m", "Spa", "PScore"},
		Notes: []string{
			"paper shape: SparseTransfer matches or beats TIMI's AP@m at ~100-200× lower Spa",
		},
	}
	type variant struct {
		name string
		run  func(arch string) (*CellStats, error)
	}
	variants := []variant{
		{"TIMI-C3D (n=all)", func(arch string) (*CellStats, error) {
			return s.runAttackCell("TIMI-C3D", ds, arch, pairs, s.DefaultBudget())
		}},
		{"TIMI-Res18 (n=all)", func(arch string) (*CellStats, error) {
			return s.runAttackCell("TIMI-Res18", ds, arch, pairs, s.DefaultBudget())
		}},
		{"DUO-C3D (l2)", func(arch string) (*CellStats, error) {
			b := s.DefaultBudget()
			b.TransferOnly = true
			b.Norm = core.NormL2
			return s.runAttackCell("DUO-C3D", ds, arch, pairs, b)
		}},
		{"DUO-Res18 (l2)", func(arch string) (*CellStats, error) {
			b := s.DefaultBudget()
			b.TransferOnly = true
			b.Norm = core.NormL2
			return s.runAttackCell("DUO-Res18", ds, arch, pairs, b)
		}},
		{"DUO-C3D (linf)", func(arch string) (*CellStats, error) {
			b := s.DefaultBudget()
			b.TransferOnly = true
			return s.runAttackCell("DUO-C3D", ds, arch, pairs, b)
		}},
		{"DUO-Res18 (linf)", func(arch string) (*CellStats, error) {
			b := s.DefaultBudget()
			b.TransferOnly = true
			return s.runAttackCell("DUO-Res18", ds, arch, pairs, b)
		}},
	}
	for _, arch := range o.victimArchs() {
		for _, v := range variants {
			cs, err := v.run(arch)
			if err != nil {
				return nil, fmt.Errorf("table9 %s/%s: %w", arch, v.name, err)
			}
			t.Rows = append(t.Rows, []string{arch, v.name, fmtF(cs.APm), fmtI(cs.Spa), fmtF(cs.PScore)})
		}
	}
	return t, nil
}

// Table10Defenses reproduces Table X: the detection rate of feature
// squeezing and Noise2Self against each attack's adversarial examples
// (victim: I3D, as in the paper).
func Table10Defenses(o Options) (*Table, error) {
	s := NewScenario(o)
	const victimArch = "I3D"
	t := &Table{
		ID:      "table10",
		Title:   "attack detection rate (%) of two defenses",
		Headers: []string{"Dataset", "Attack", "feature squeezing", "Noise2Self"},
		Notes: []string{
			"paper shape: sparse attacks (DUO, HEU) evade feature squeezing far better than Vanilla; thresholds calibrated at 5% clean FPR",
		},
	}
	b := s.DefaultBudget()
	attacks := []string{"Vanilla", "TIMI-C3D", "TIMI-Res18", "HEU-Nes", "HEU-Sim", "DUO-C3D", "DUO-Res18"}
	for _, ds := range o.datasets() {
		c, err := s.Corpus(ds)
		if err != nil {
			return nil, err
		}
		victim, err := s.Victim(ds, victimArch, DefaultVictimLoss)
		if err != nil {
			return nil, err
		}
		pairs, err := s.Pairs(ds)
		if err != nil {
			return nil, err
		}

		fs := &defense.FeatureSqueezer{Model: victim.Model(), Bits: 4, MedianK: 1}
		n2s := &defense.Noise2Self{Model: victim.Model()}
		fsThr, err := defense.CalibrateThreshold(fs, c.Train, 0.05)
		if err != nil {
			return nil, err
		}
		n2sThr, err := defense.CalibrateThreshold(n2s, c.Train, 0.05)
		if err != nil {
			return nil, err
		}

		for _, name := range attacks {
			cs, err := s.runAttackCell(name, ds, victimArch, pairs, b)
			if err != nil {
				return nil, fmt.Errorf("table10 %s/%s: %w", ds, name, err)
			}
			advs := make([]*video.Video, 0, len(cs.Outcomes))
			for _, out := range cs.Outcomes {
				advs = append(advs, out.Adv)
			}
			t.Rows = append(t.Rows, []string{
				ds, name,
				fmtF(defense.DetectionRate(fs, fsThr, advs) * 100),
				fmtF(defense.DetectionRate(n2s, n2sThr, advs) * 100),
			})
		}
	}
	return t, nil
}
