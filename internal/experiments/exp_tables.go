package experiments

import (
	"fmt"
)

// Table2AttackComparison reproduces Table II: AP@m / Spa / PScore for every
// attack on every victim backbone and both datasets.
func Table2AttackComparison(o Options) (*Table, error) {
	s := NewScenario(o)
	t := &Table{
		ID:      "table2",
		Title:   "attack performance of different AE attacks",
		Headers: []string{"Dataset", "Victim", "Attack", "AP@m", "Spa", "PScore"},
		Notes: []string{
			"paper shape: every attack's AP@m ≥ w/o attack; DUO leads the sparse attacks; TIMI's Spa is orders of magnitude above the sparse attacks'",
			"known deviation: at this scale TIMI's AP@m can exceed DUO's because the tiny stolen surrogate approximates the tiny victim far better than at paper scale, making dense transfer unusually strong (see EXPERIMENTS.md)",
		},
	}
	b := s.DefaultBudget()
	for _, ds := range o.datasets() {
		pairs, err := s.Pairs(ds)
		if err != nil {
			return nil, err
		}
		for _, arch := range o.victimArchs() {
			for _, name := range AttackNames() {
				cs, err := s.runAttackCell(name, ds, arch, pairs, b)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", ds, arch, name, err)
				}
				spa, pscore := fmtI(cs.Spa), fmtF(cs.PScore)
				if name == "w/o attack" {
					spa, pscore = "-", "-"
				}
				t.Rows = append(t.Rows, []string{ds, arch, name, fmtF(cs.APm), spa, pscore})
			}
		}
	}
	return t, nil
}

// sweepVictim is the backbone the parameter-sweep tables fix (the paper's
// sweep tables reuse the I3D victim).
const sweepVictim = "I3D"

// duoVariants are the two DUO rows of every sweep table.
var duoVariants = []string{"DUO-C3D", "DUO-Res18"}

// runSweep renders a sweep table: for each dataset × DUO variant × swept
// value it reports AP@m / Spa / PScore.
func runSweep(o Options, id, title, param string, values []string, mutate func(*Budget, int)) (*Table, error) {
	s := NewScenario(o)
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"Dataset", "Attack", param, "AP@m", "Spa", "PScore"},
	}
	for _, ds := range o.datasets() {
		pairs, err := s.Pairs(ds)
		if err != nil {
			return nil, err
		}
		for _, name := range duoVariants {
			for vi, val := range values {
				b := s.DefaultBudget()
				mutate(&b, vi)
				cs, err := s.runAttackCell(name, ds, sweepVictim, pairs, b)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s=%s: %w", ds, name, param, val, err)
				}
				t.Rows = append(t.Rows, []string{ds, name, val, fmtF(cs.APm), fmtI(cs.Spa), fmtF(cs.PScore)})
			}
		}
	}
	return t, nil
}

// Table3SurrogateSize reproduces Table III: DUO with different surrogate
// dataset sizes.
func Table3SurrogateSize(o Options) (*Table, error) {
	s := NewScenario(o)
	sizes := stealSizes(s.P.StealCap)
	t := &Table{
		ID:      "table3",
		Title:   "DUO with different sizes of the surrogate dataset",
		Headers: []string{"Dataset", "Attack", "Samples", "AP@m", "Spa", "PScore"},
		Notes: []string{
			"paper shape: the surrogate dataset size barely moves AP@m — a handful of samples suffices",
		},
	}
	b := s.DefaultBudget()
	for _, ds := range o.datasets() {
		pairs, err := s.Pairs(ds)
		if err != nil {
			return nil, err
		}
		for _, name := range duoVariants {
			arch := "C3D"
			if name == "DUO-Res18" {
				arch = "Resnet18"
			}
			for _, sz := range sizes {
				// Build (and cache) the surrogate at this cap, then run DUO
				// with it by temporarily overriding the scenario cap.
				surr, err := s.Surrogate(ds, sweepVictim, DefaultVictimLoss, arch, sz, s.P.FeatDim)
				if err != nil {
					return nil, err
				}
				victim, err := s.Victim(ds, sweepVictim, DefaultVictimLoss)
				if err != nil {
					return nil, err
				}
				cs, err := s.runDUOCell(victim, surr, pairs, b)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{ds, name, fmt.Sprint(sz), fmtF(cs.APm), fmtI(cs.Spa), fmtF(cs.PScore)})
			}
		}
	}
	return t, nil
}

// Table4VictimLoss reproduces Table IV: DUO against victims trained with
// different loss functions.
func Table4VictimLoss(o Options) (*Table, error) {
	s := NewScenario(o)
	t := &Table{
		ID:      "table4",
		Title:   "DUO vs victim models trained with different loss functions",
		Headers: []string{"Dataset", "Attack", "VictimLoss", "AP@m", "Spa", "PScore"},
		Notes: []string{
			"paper shape: ArcFaceLoss victims are the most robust (lowest AP@m)",
		},
	}
	b := s.DefaultBudget()
	for _, ds := range o.datasets() {
		pairs, err := s.Pairs(ds)
		if err != nil {
			return nil, err
		}
		for _, name := range duoVariants {
			arch := "C3D"
			if name == "DUO-Res18" {
				arch = "Resnet18"
			}
			for _, lossName := range VictimLossNames() {
				victim, err := s.Victim(ds, sweepVictim, lossName)
				if err != nil {
					return nil, err
				}
				surr, err := s.Surrogate(ds, sweepVictim, lossName, arch, s.P.StealCap, s.P.FeatDim)
				if err != nil {
					return nil, err
				}
				cs, err := s.runDUOCell(victim, surr, pairs, b)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{ds, name, lossName, fmtF(cs.APm), fmtI(cs.Spa), fmtF(cs.PScore)})
			}
		}
	}
	return t, nil
}

// Table5KSweep reproduces Table V: the pixel budget k sweep. The paper
// sweeps 20K–50K of 602,112 elements (0.5×–1.25× its default k); we sweep
// the same multiples of the scaled default.
func Table5KSweep(o Options) (*Table, error) {
	s := NewScenario(o)
	base := s.DefaultBudget().K
	ks := []int{base / 2, base * 3 / 4, base, base * 5 / 4}
	elems := s.P.Frames * 3 * s.P.Height * s.P.Width
	labels := make([]string, len(ks))
	for i := range ks {
		if ks[i] < 1 {
			ks[i] = i + 1
		}
		if ks[i] > elems {
			ks[i] = elems
		}
		labels[i] = fmt.Sprint(ks[i])
	}
	t, err := runSweep(o, "table5", "DUO with n fixed and k swept (paper: 20K–50K)", "k",
		labels, func(b *Budget, vi int) { b.K = ks[vi] })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper shape: AP@m rises with k then saturates; Spa rises with k")
	return t, nil
}

// Table6NSweep reproduces Table VI: the frame budget n sweep (2–5).
func Table6NSweep(o Options) (*Table, error) {
	s := NewScenario(o)
	// The paper sweeps n = 2..5 of 16 frames (0.5×–1.25× its default n);
	// sweep the same multiples of the scaled default.
	base := s.DefaultBudget().N
	var ns []int
	for _, factor := range []float64{0.5, 0.75, 1.0, 1.25} {
		n := int(float64(base) * factor)
		if n < 1 {
			n = 1
		}
		if n > s.P.Frames {
			n = s.P.Frames
		}
		ns = append(ns, n)
	}
	labels := make([]string, len(ns))
	for i, n := range ns {
		labels[i] = fmt.Sprint(n)
	}
	t, err := runSweep(o, "table6", "DUO with k fixed and n swept (paper: 2–5)", "n",
		labels, func(b *Budget, vi int) { b.N = ns[vi] })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper shape: AP@m rises with n then flattens; Spa rises with n")
	return t, nil
}

// Table7TauSweep reproduces Table VII: the magnitude budget τ sweep.
func Table7TauSweep(o Options) (*Table, error) {
	taus := []float64{20, 30, 40, 50}
	labels := make([]string, len(taus))
	for i, tau := range taus {
		labels[i] = fmt.Sprint(tau)
	}
	t, err := runSweep(o, "table7", "DUO with different perturbation budgets τ", "tau",
		labels, func(b *Budget, vi int) { b.Tau = taus[vi] })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper shape: AP@m and PScore rise with τ; Spa barely moves")
	return t, nil
}

// Table8IterNumH reproduces Table VIII: the pipeline-loop count sweep.
func Table8IterNumH(o Options) (*Table, error) {
	iters := []int{1, 2, 3, 4}
	labels := []string{"1", "2", "3", "4"}
	t, err := runSweep(o, "table8", "DUO with different iter_numH", "iter_numH",
		labels, func(b *Budget, vi int) { b.IterNumH = iters[vi] })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper shape: AP@m, Spa, and PScore all rise with iter_numH")
	return t, nil
}
