// Package experiments reproduces every table and figure of the paper's
// evaluation (§V) on the scaled-down substrate: each experiment returns a
// Table whose rows mirror the paper's layout so shapes can be compared
// side-by-side (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"duo/internal/telemetry"
)

// Scale selects the experiment size preset (DESIGN.md §5).
type Scale int

const (
	// Tiny is the unit/integration-test preset.
	Tiny Scale = iota + 1
	// Small is the bench/example preset.
	Small
)

// Params are the concrete sizes a Scale expands to.
type Params struct {
	Categories  int
	TrainPerCat int
	TestPerCat  int
	Frames      int
	Height      int
	Width       int
	FeatDim     int
	M           int // retrieval list length
	Pairs       int // attack (v, v_t) pairs per cell
	VictimEpoch int
	Queries     int // query budget per attack
	StealCap    int // surrogate dataset size
}

// ParamsFor expands a scale preset.
func ParamsFor(s Scale) Params {
	switch s {
	case Small:
		return Params{
			Categories: 6, TrainPerCat: 8, TestPerCat: 4,
			Frames: 16, Height: 16, Width: 16,
			FeatDim: 32, M: 10, Pairs: 5,
			VictimEpoch: 5, Queries: 600, StealCap: 48,
		}
	default: // Tiny
		return Params{
			Categories: 4, TrainPerCat: 6, TestPerCat: 3,
			Frames: 8, Height: 12, Width: 12,
			FeatDim: 16, M: 8, Pairs: 3,
			VictimEpoch: 3, Queries: 300, StealCap: 24,
		}
	}
}

// Options configure an experiment run.
type Options struct {
	// Scale picks the size preset.
	Scale Scale
	// Seed drives every random choice (fully deterministic runs).
	Seed int64
	// Datasets restricts the corpora swept (nil = both paper datasets).
	Datasets []string
	// VictimArchs restricts the victim backbones swept (nil = all four).
	VictimArchs []string
	// Telemetry optionally aggregates instrumentation across every victim
	// engine and attack run of the experiment (write-only; results are
	// identical with or without it). Nil — the default — disables it.
	Telemetry *telemetry.Registry
}

// DefaultOptions returns Tiny-scale, seed-1 options.
func DefaultOptions() Options { return Options{Scale: Tiny, Seed: 1} }

func (o Options) datasets() []string {
	if len(o.Datasets) > 0 {
		return o.Datasets
	}
	return DatasetNames()
}

func (o Options) victimArchs() []string {
	if len(o.VictimArchs) > 0 {
		return o.VictimArchs
	}
	return []string{"TPN", "SlowFast", "I3D", "Resnet34"}
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("table2", "fig5", ...).
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Headers name the columns.
	Headers []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes records shape expectations or caveats.
	Notes []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(Options) (*Table, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig3":          Fig3VictimMAP,
	"fig4":          Fig4SurrogateMAP,
	"fig5":          Fig5QueryCurves,
	"table2":        Table2AttackComparison,
	"table3":        Table3SurrogateSize,
	"table4":        Table4VictimLoss,
	"table5":        Table5KSweep,
	"table6":        Table6NSweep,
	"table7":        Table7TauSweep,
	"table8":        Table8IterNumH,
	"table9":        Table9Transfer,
	"table10":       Table10Defenses,
	"ablation-admm": AblationADMM,
	"ablation-dct":  AblationDCT,
	"ensemble":      EnsembleDefense,
	"stealth":       StealthComparison,
	"ablation-ndcg": AblationNDCG,
	"ablation-mask": AblationMask,
}

// IDs returns every registered experiment id, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes an experiment by id.
func Run(id string, o Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(o)
}
