package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// fastOpts restricts experiments to one dataset and one victim so tests
// stay quick while exercising the full pipeline.
func fastOpts() Options {
	o := DefaultOptions()
	o.Datasets = []string{UCF101Sim}
	o.VictimArchs = []string{"I3D"}
	return o
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("table99", DefaultOptions()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5",
		"table2", "table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10",
		"ablation-admm", "ablation-dct", "ablation-mask", "ablation-ndcg",
		"ensemble", "stealth",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v", got)
	}
	have := map[string]bool{}
	for _, id := range got {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestParamsForScales(t *testing.T) {
	tiny, small := ParamsFor(Tiny), ParamsFor(Small)
	if small.Frames <= tiny.Frames || small.Categories <= tiny.Categories {
		t.Error("Small preset not larger than Tiny")
	}
	if tiny.Queries <= 0 || tiny.Pairs <= 0 {
		t.Error("Tiny preset has empty budgets")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Headers: []string{"A", "B"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "a note") {
		t.Errorf("String() = %q", s)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| A | B |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown() = %q", md)
	}
}

func TestScenarioCachesVictims(t *testing.T) {
	s := NewScenario(fastOpts())
	a, err := s.Victim(UCF101Sim, "I3D", DefaultVictimLoss)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Victim(UCF101Sim, "I3D", DefaultVictimLoss)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("victim not cached")
	}
}

func TestScenarioUnknownDataset(t *testing.T) {
	s := NewScenario(fastOpts())
	if _, err := s.Corpus("Kinetics"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3VictimMAP(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // 1 dataset × 3 losses
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		v := parseCell(t, row[2])
		if v < 0 || v > 100 {
			t.Errorf("mAP %g out of range", v)
		}
		// Trained retrieval must beat chance (25% with 4 categories).
		if v < 25 {
			t.Errorf("mAP %g below chance", v)
		}
	}
}

func TestTable2HeadlineShape(t *testing.T) {
	tab, err := Table2AttackComparison(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(AttackNames()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	cells := map[string][]string{}
	for _, row := range tab.Rows {
		cells[row[2]] = row
	}
	woAP := parseCell(t, cells["w/o attack"][3])
	duoAP := parseCell(t, cells["DUO-C3D"][3])
	duoSpa := parseCell(t, cells["DUO-C3D"][4])
	timiAP := parseCell(t, cells["TIMI-C3D"][3])
	timiSpa := parseCell(t, cells["TIMI-C3D"][4])

	if duoAP < woAP {
		t.Errorf("DUO AP@m %g below w/o attack %g", duoAP, woAP)
	}
	vanAP := parseCell(t, cells["Vanilla"][3])
	heuAP := parseCell(t, cells["HEU-Nes"][3])
	if duoAP <= vanAP {
		t.Errorf("paper shape violated: DUO AP@m %g ≤ Vanilla %g", duoAP, vanAP)
	}
	if duoAP <= heuAP {
		t.Errorf("paper shape violated: DUO AP@m %g ≤ HEU-Nes %g", duoAP, heuAP)
	}
	// The stealth headline: TIMI's dense perturbation is orders of
	// magnitude larger, while DUO stays within striking distance of (or
	// above) TIMI's AP@m.
	if timiSpa < 4*duoSpa {
		t.Errorf("paper shape violated: TIMI Spa %g not ≫ DUO Spa %g", timiSpa, duoSpa)
	}
	if duoAP < 0.6*timiAP {
		t.Errorf("DUO AP@m %g fell far below TIMI %g", duoAP, timiAP)
	}
	// Every attack's AP@m must not regress below the no-attack baseline.
	for _, name := range AttackNames() {
		if ap := parseCell(t, cells[name][3]); ap < woAP-1e-9 {
			t.Errorf("%s: AP@m %g regressed below w/o %g", name, ap, woAP)
		}
	}
}

func TestTable5KSweepShape(t *testing.T) {
	tab, err := Table5KSweep(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 1 ds × 2 DUO variants × 4 k values
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// For DUO-C3D, AP@m at the largest k must not be materially below the
	// smallest k (the paper's rise-then-saturate shape).
	var lo, hi float64
	for _, row := range tab.Rows {
		if row[1] != "DUO-C3D" {
			continue
		}
		v := parseCell(t, row[3])
		if lo == 0 {
			lo = v
		}
		hi = v
	}
	if hi+5 < lo {
		t.Errorf("AP@m fell sharply with k: %g → %g", lo, hi)
	}
}

func TestFig5TrajectoriesDecrease(t *testing.T) {
	tab, err := Fig5QueryCurves(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Every attack column must be non-increasing from first to last row.
	for col := 1; col < len(tab.Headers); col++ {
		first := parseCell(t, tab.Rows[0][col])
		last := parseCell(t, tab.Rows[len(tab.Rows)-1][col])
		if last > first+1e-9 {
			t.Errorf("%s: 𝕋 increased %g → %g", tab.Headers[col], first, last)
		}
	}
}

func TestTable10RatesInRange(t *testing.T) {
	tab, err := Table10Defenses(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 { // 1 ds × 7 attacks
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, col := range []int{2, 3} {
			v := parseCell(t, row[col])
			if v < 0 || v > 100 {
				t.Errorf("detection rate %g out of range", v)
			}
		}
	}
}

func TestAblationADMMRuns(t *testing.T) {
	tab, err := AblationADMM(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "ADMM" || tab.Rows[1][0] != "top-k" {
		t.Errorf("variant labels: %v", tab.Rows)
	}
}

func TestSmallScalePresetWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// One cheap experiment at Small scale proves the bench preset is
	// sound end to end (geometry, budgets, training settings).
	o := Options{Scale: Small, Seed: 1,
		Datasets: []string{UCF101Sim}, VictimArchs: []string{"C3D"}}
	tab, err := Fig3VictimMAP(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if v := parseCell(t, row[2]); v < 100.0/6 {
			t.Errorf("Small-scale mAP %g below chance", v)
		}
	}
}
