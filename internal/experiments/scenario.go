package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/nn/losses"
	"duo/internal/retrieval"
	"duo/internal/surrogate"
)

// Dataset names used throughout the tables.
const (
	UCF101Sim = "UCF101Sim"
	HMDB51Sim = "HMDB51Sim"
)

// DatasetNames lists the two synthetic corpora in paper order.
func DatasetNames() []string { return []string{UCF101Sim, HMDB51Sim} }

// DefaultVictimLoss is the loss the attack tables train victims with
// (the paper fixes ArcFace outside Table IV / Fig. 3).
const DefaultVictimLoss = "ArcFaceLoss"

// VictimLossNames lists the three victim losses of Fig. 3 / Table IV.
func VictimLossNames() []string { return []string{"ArcFaceLoss", "LiftedLoss", "AngularLoss"} }

// Scenario lazily builds and caches the expensive artifacts experiments
// share: corpora, trained victim engines, and stolen surrogates. It is safe
// for sequential use (experiments run one at a time).
type Scenario struct {
	Opts Options
	P    Params

	mu         sync.Mutex
	corpora    map[string]*dataset.Corpus
	victims    map[string]*retrieval.Engine
	surrogates map[string]models.Model
}

// NewScenario returns an empty scenario for the options.
func NewScenario(o Options) *Scenario {
	return &Scenario{
		Opts:       o,
		P:          ParamsFor(o.Scale),
		corpora:    make(map[string]*dataset.Corpus),
		victims:    make(map[string]*retrieval.Engine),
		surrogates: make(map[string]models.Model),
	}
}

// Geometry returns the clip geometry of the scenario.
func (s *Scenario) Geometry() models.Geometry {
	return models.Geometry{Frames: s.P.Frames, Channels: 3, Height: s.P.Height, Width: s.P.Width}
}

// Corpus returns (building on first use) the named synthetic corpus.
// HMDB51Sim is roughly half UCF101Sim's size, mirroring Table I's ratio.
func (s *Scenario) Corpus(name string) (*dataset.Corpus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.corpora[name]; ok {
		return c, nil
	}
	cfg := dataset.Config{
		Name:             name,
		Categories:       s.P.Categories,
		TrainPerCategory: s.P.TrainPerCat,
		TestPerCategory:  s.P.TestPerCat,
		Frames:           s.P.Frames,
		Channels:         3,
		Height:           s.P.Height,
		Width:            s.P.Width,
		Seed:             s.Opts.Seed,
		// Imperfectly separable categories push trained-victim mAPs and
		// no-attack AP@m toward the paper's ranges (Fig. 3 / Table II).
		Hardness: 0.6,
	}
	switch name {
	case UCF101Sim:
		// full preset
	case HMDB51Sim:
		cfg.Categories = max(2, s.P.Categories/2)
		cfg.Seed = s.Opts.Seed + 1000
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	c, err := dataset.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus %s: %w", name, err)
	}
	s.corpora[name] = c
	return c, nil
}

// buildLoss instantiates a metric loss by its table name.
func (s *Scenario) buildLoss(name string, rng *rand.Rand, classes int) (losses.MetricLoss, error) {
	switch name {
	case "ArcFaceLoss":
		return losses.NewArcFace(rng, classes, s.P.FeatDim), nil
	case "LiftedLoss":
		return losses.Lifted{Margin: 1.0}, nil
	case "AngularLoss":
		return losses.Angular{AlphaDeg: 40}, nil
	case "Triplet":
		return losses.Triplet{Margin: 0.2}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown loss %q", name)
	}
}

// Victim returns (training on first use) a victim retrieval engine for the
// dataset, backbone, and loss.
func (s *Scenario) Victim(ds, arch, lossName string) (*retrieval.Engine, error) {
	key := ds + "|" + arch + "|" + lossName
	s.mu.Lock()
	if e, ok := s.victims[key]; ok {
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()

	c, err := s.Corpus(ds)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Opts.Seed + int64(len(key))*7919))
	m, err := models.Build(arch, rng, s.Geometry(), s.P.FeatDim)
	if err != nil {
		return nil, err
	}
	loss, err := s.buildLoss(lossName, rng, c.Categories)
	if err != nil {
		return nil, err
	}
	tc := models.DefaultTrainConfig()
	tc.Epochs = s.P.VictimEpoch
	tc.Seed = s.Opts.Seed
	if _, err := models.Train(m, loss, c.Train, tc); err != nil {
		return nil, fmt.Errorf("experiments: train victim %s: %w", key, err)
	}
	eng := retrieval.NewEngine(m, c.Train)
	eng.SetTelemetry(s.Opts.Telemetry)

	s.mu.Lock()
	s.victims[key] = eng
	s.mu.Unlock()
	return eng, nil
}

// Surrogate steals a surrogate of the given backbone against the victim,
// capped at stealCap samples, with output feature size featDim.
func (s *Scenario) Surrogate(ds, victimArch, victimLoss, surrArch string, stealCap, featDim int) (models.Model, error) {
	key := fmt.Sprintf("%s|%s|%s|%s|%d|%d", ds, victimArch, victimLoss, surrArch, stealCap, featDim)
	s.mu.Lock()
	if m, ok := s.surrogates[key]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()

	victim, err := s.Victim(ds, victimArch, victimLoss)
	if err != nil {
		return nil, err
	}
	c, err := s.Corpus(ds)
	if err != nil {
		return nil, err
	}
	scfg := surrogate.DefaultStealConfig()
	scfg.M = s.P.M
	scfg.MaxSamples = stealCap
	scfg.Rounds = max(2, stealCap/4)
	scfg.Seed = s.Opts.Seed
	samples, err := surrogate.Steal(victim, surrogate.CorpusLookup(c.Train), c.Test, scfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: steal for %s: %w", key, err)
	}
	rng := rand.New(rand.NewSource(s.Opts.Seed + int64(len(key))*104729))
	m, err := models.Build(surrArch, rng, s.Geometry(), featDim)
	if err != nil {
		return nil, err
	}
	tcfg := surrogate.DefaultTrainConfig()
	tcfg.Seed = s.Opts.Seed
	if _, err := surrogate.Train(m, samples, tcfg); err != nil {
		return nil, fmt.Errorf("experiments: train surrogate %s: %w", key, err)
	}

	s.mu.Lock()
	s.surrogates[key] = m
	s.mu.Unlock()
	return m, nil
}

// Pairs draws the attack evaluation pairs for a dataset (the paper's "ten
// pairs", scaled).
func (s *Scenario) Pairs(ds string) ([]dataset.AttackPair, error) {
	c, err := s.Corpus(ds)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Opts.Seed + 31337))
	return dataset.SamplePairs(rng, c.Train, s.P.Pairs), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
