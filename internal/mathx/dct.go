package mathx

import "math"

// DCTVector returns the k-th orthonormal 1-D DCT-II basis vector of
// length n: v_i = s(k)·cos(π·(i+½)·k/n), with s(0)=√(1/n), s(k>0)=√(2/n).
func DCTVector(n, k int) []float64 {
	v := make([]float64, n)
	scale := math.Sqrt(2 / float64(n))
	if k == 0 {
		scale = math.Sqrt(1 / float64(n))
	}
	for i := range v {
		v[i] = scale * math.Cos(math.Pi*(float64(i)+0.5)*float64(k)/float64(n))
	}
	return v
}

// DCTBasis2D returns the (u,v)-th orthonormal 2-D DCT basis function over
// an h×w grid as the outer product of the 1-D bases. Low (u,v) indices are
// low spatial frequencies.
func DCTBasis2D(h, w, u, v int) [][]float64 {
	row := DCTVector(h, u)
	col := DCTVector(w, v)
	out := make([][]float64, h)
	for y := range out {
		out[y] = make([]float64, w)
		for x := range out[y] {
			out[y][x] = row[y] * col[x]
		}
	}
	return out
}
