// Package mathx provides small numeric helpers shared across models,
// losses, and metrics: numerically stable softmax/logsumexp and summary
// statistics.
package mathx

import "math"

// Softmax returns the softmax of x, computed stably by shifting by max(x).
func Softmax(x []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	sum := 0.0
	for i, v := range x {
		e := math.Exp(v - m)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LogSumExp returns log(Σ exp(xᵢ)), computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	sum := 0.0
	for _, v := range x {
		sum += math.Exp(v - m)
	}
	return m + math.Log(sum)
}

// Mean returns the arithmetic mean of x, or 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x, or 0 for fewer than
// two samples.
func Std(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sigmoid returns 1/(1+exp(-x)).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Relu returns max(0, x).
func Relu(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Hinge returns max(0, x), the positive-part operator [x]₊ used by margin
// losses.
func Hinge(x float64) float64 { return Relu(x) }
