package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %g", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
}

func TestSoftmaxStableForLargeInputs(t *testing.T) {
	p := Softmax([]float64{1000, 1000, 1000})
	for _, v := range p {
		if math.IsNaN(v) || math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("softmax unstable: %v", p)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{0, 0})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("LogSumExp = %g, want log 2", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %g", got)
	}
	// Shift invariance: lse(x+c) = lse(x)+c.
	a := LogSumExp([]float64{1, 2, 3})
	b := LogSumExp([]float64{101, 102, 103})
	if math.Abs(b-a-100) > 1e-9 {
		t.Errorf("shift invariance broken: %g vs %g", a, b)
	}
}

func TestMeanStd(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Std([]float64{2, 4}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Std = %g", got)
	}
	if got := Std([]float64{5}); got != 0 {
		t.Errorf("Std single = %g", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestSigmoid(t *testing.T) {
	if math.Abs(Sigmoid(0)-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %g", Sigmoid(0))
	}
	if Sigmoid(100) < 0.999 || Sigmoid(-100) > 0.001 {
		t.Error("Sigmoid saturation wrong")
	}
	// Stability at extreme negatives.
	if v := Sigmoid(-1e6); math.IsNaN(v) || v != 0 {
		if v > 1e-300 {
			t.Errorf("Sigmoid(-1e6) = %g", v)
		}
	}
}

func TestPropSoftmaxProbabilities(t *testing.T) {
	f := func(x []float64) bool {
		if len(x) == 0 {
			return true
		}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				x[i] = 0
			}
			x[i] = math.Mod(x[i], 500)
		}
		p := Softmax(x)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSigmoidSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 50)
		return math.Abs(Sigmoid(x)+Sigmoid(-x)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDCTVectorOrthonormal(t *testing.T) {
	const n = 8
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			va, vb := DCTVector(n, a), DCTVector(n, b)
			dot := 0.0
			for i := range va {
				dot += va[i] * vb[i]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-12 {
				t.Fatalf("⟨v%d, v%d⟩ = %g, want %g", a, b, dot, want)
			}
		}
	}
}

func TestDCTVectorDCIsConstant(t *testing.T) {
	v := DCTVector(5, 0)
	for _, x := range v[1:] {
		if math.Abs(x-v[0]) > 1e-12 {
			t.Fatalf("DC vector not constant: %v", v)
		}
	}
}

func TestDCTBasis2DOrthonormal(t *testing.T) {
	// Unit norm and orthogonality of a couple of 2-D bases.
	dot := func(a, b [][]float64) float64 {
		s := 0.0
		for y := range a {
			for x := range a[y] {
				s += a[y][x] * b[y][x]
			}
		}
		return s
	}
	b00 := DCTBasis2D(4, 6, 0, 0)
	b12 := DCTBasis2D(4, 6, 1, 2)
	if math.Abs(dot(b00, b00)-1) > 1e-12 || math.Abs(dot(b12, b12)-1) > 1e-12 {
		t.Error("2-D DCT bases not unit norm")
	}
	if math.Abs(dot(b00, b12)) > 1e-12 {
		t.Error("2-D DCT bases not orthogonal")
	}
}
