package metrics

import (
	"math"
	"testing"
)

// The similarity and precision measures sit on the attack's hot path with
// lists that come straight from retrieval engines — including degenerate
// ones (empty victims, truncated partial results, galleries with duplicate
// IDs). These table-driven cases pin down the boundary behavior.

func TestPrecAtEdgeCases(t *testing.T) {
	ab := []string{"a", "b"}
	abc := []string{"a", "b", "c"}
	cases := []struct {
		name string
		a, b []string
		i    int
		want float64
	}{
		{"i zero", abc, abc, 0, 0},
		{"i negative", abc, abc, -3, 0},
		{"i beyond a", ab, abc, 3, 0},
		{"i beyond b", abc, ab, 3, 0},
		{"both empty", nil, nil, 1, 0},
		{"empty a", nil, abc, 1, 0},
		{"empty b", abc, nil, 1, 0},
		{"i equals both lengths", abc, abc, 3, 1},
		// Duplicates in a each count against b's top-i set; duplicates in
		// b collapse into the set, so they widen nothing.
		{"duplicates in a", []string{"a", "a", "x"}, abc, 3, 2.0 / 3},
		{"duplicates in b", abc, []string{"a", "a", "a"}, 3, 1.0 / 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := PrecAt(c.a, c.b, c.i); got != c.want {
				t.Errorf("PrecAt(%v, %v, %d) = %g, want %g", c.a, c.b, c.i, got, c.want)
			}
		})
	}
}

func TestAPAtMEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		a, b []string
		want float64
	}{
		{"both empty", nil, nil, 0},
		{"empty a", nil, []string{"x"}, 0},
		{"empty b", []string{"x"}, nil, 0},
		{"singleton match", []string{"x"}, []string{"x"}, 1},
		{"singleton miss", []string{"x"}, []string{"y"}, 0},
		// The shorter list sets the prefix length m.
		{"length mismatch", []string{"a", "b", "c"}, []string{"a"}, 1},
		{"all duplicates identical", []string{"a", "a"}, []string{"a", "a"}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := APAtM(c.a, c.b); got != c.want {
				t.Errorf("APAtM(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestMAPEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		rel  [][]bool
		want float64
	}{
		{"no queries", nil, 0},
		{"one empty query", [][]bool{{}}, 0},
		// Empty rows contribute nothing but still divide: a query the
		// retriever answered with nothing scores zero, it is not dropped.
		{"empty row averaged in", [][]bool{{true}, {}}, 0.5},
		{"single hit", [][]bool{{true}}, 1},
		{"single miss", [][]bool{{false}}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := MAP(c.rel); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("MAP(%v) = %g, want %g", c.rel, got, c.want)
			}
		})
	}
}

func TestListSimilarityEdgeCases(t *testing.T) {
	sims := []struct {
		name string
		sim  ListSimilarity
	}{{"CoOccurrence", CoOccurrence}, {"PlainOverlap", PlainOverlap}}
	cases := []struct {
		name string
		a, b []string
		want float64
	}{
		{"both empty", nil, nil, 0},
		{"empty a", nil, []string{"x"}, 0},
		{"empty b", []string{"x"}, nil, 0},
		{"identical", []string{"a", "b"}, []string{"a", "b"}, 1},
		{"disjoint", []string{"a", "b"}, []string{"c", "d"}, 0},
		// Duplicate hits in a keep the score normalized to [0, 1].
		{"duplicate full hit", []string{"a", "a"}, []string{"a"}, 1},
		{"duplicate no hit", []string{"a", "a"}, []string{"b"}, 0},
	}
	for _, s := range sims {
		for _, c := range cases {
			t.Run(s.name+"/"+c.name, func(t *testing.T) {
				got := s.sim(c.a, c.b)
				if got != c.want {
					t.Errorf("%s(%v, %v) = %g, want %g", s.name, c.a, c.b, got, c.want)
				}
				if got < 0 || got > 1 {
					t.Errorf("%s(%v, %v) = %g outside [0, 1]", s.name, c.a, c.b, got)
				}
			})
		}
	}
}

func TestObjectiveEdgeCases(t *testing.T) {
	// Empty lists zero both similarity terms, so 𝕋 collapses to η.
	if got := Objective(CoOccurrence, nil, nil, nil, 0.5); got != 0.5 {
		t.Errorf("Objective on empty lists = %g, want η = 0.5", got)
	}
	// A perfect adversarial list (matches target, disjoint from original)
	// reaches the minimum η − 1.
	adv := []string{"t1", "t2"}
	if got := Objective(CoOccurrence, adv, []string{"o1", "o2"}, adv, 0.5); math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("Objective at optimum = %g, want η − 1 = -0.5", got)
	}
}
