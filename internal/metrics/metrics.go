// Package metrics implements the paper's evaluation measures (§V-A):
// mAP for retrieval quality, AP@m for targeted-attack success, the sparsity
// measure Spa and perceptibility score PScore (provided by package video),
// the NDCG-weighted list similarity ℍ, and the SparseQuery objective 𝕋 of
// Eq. (2).
package metrics

import (
	"math"
	"sync"
)

// memberPool recycles the membership sets the list-similarity functions
// build per call. Those functions sit on the attack's per-query objective
// path (two ℍ evaluations per victim round-trip), so a fresh map per call
// would dominate the oracle's steady-state allocations. Maps are cleared on
// release, and the pool keeps the functions safe for concurrent callers.
var memberPool = sync.Pool{New: func() any { return make(map[string]bool, 64) }}

// membership returns a pooled set containing ids.
func membership(ids []string) map[string]bool {
	m := memberPool.Get().(map[string]bool)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// releaseMembership clears a pooled set and returns it to the pool.
func releaseMembership(m map[string]bool) {
	clear(m)
	memberPool.Put(m)
}

// PrecAt returns prec_i: the fraction of the top-i entries of list a that
// also appear in the top-i entries of list b.
func PrecAt(a, b []string, i int) float64 {
	if i <= 0 || i > len(a) || i > len(b) {
		return 0
	}
	inB := make(map[string]bool, i)
	for _, id := range b[:i] {
		inB[id] = true
	}
	hits := 0
	for _, id := range a[:i] {
		if inB[id] {
			hits++
		}
	}
	return float64(hits) / float64(i)
}

// APAtM returns AP@m = Σᵢ prec_i / m over the common prefix length of the
// two retrieval lists. It measures how close the adversarial video's
// retrieval list is to the target's.
func APAtM(a, b []string) float64 {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	if m == 0 {
		return 0
	}
	sum := 0.0
	for i := 1; i <= m; i++ {
		sum += PrecAt(a, b, i)
	}
	return sum / float64(m)
}

// MAP returns the paper's mean average precision over queries. rel[q][i]
// reports whether the i-th retrieved item for query q is correct (same
// category); per query the score is (1/N)·Σ_{i=1..N} ctop(i)/i with N the
// list length.
func MAP(rel [][]bool) float64 {
	if len(rel) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range rel {
		if len(r) == 0 {
			continue
		}
		ctop := 0
		sum := 0.0
		for i, ok := range r {
			if ok {
				ctop++
			}
			sum += float64(ctop) / float64(i+1)
		}
		total += sum / float64(len(r))
	}
	return total / float64(len(rel))
}

// CoOccurrence returns the NDCG-weighted co-occurrence similarity
// ℍ(R(a), R(b)) derived from [10]: each position i of list a contributes
// weight 1/log₂(i+2) if its entry appears anywhere in list b, normalized so
// identical lists score 1.
func CoOccurrence(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inB := membership(b)
	num, den := 0.0, 0.0
	for i, id := range a {
		w := 1 / math.Log2(float64(i)+2)
		den += w
		if inB[id] {
			num += w
		}
	}
	releaseMembership(inB)
	return num / den
}

// PlainOverlap returns the unweighted fraction of list a's entries that
// appear in list b. It is the ablation comparator for CoOccurrence.
func PlainOverlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inB := membership(b)
	hits := 0
	for _, id := range a {
		if inB[id] {
			hits++
		}
	}
	releaseMembership(inB)
	return float64(hits) / float64(len(a))
}

// ListSimilarity is the ℍ function plugged into the objective; it lets the
// ablation swap the NDCG weighting for plain overlap.
type ListSimilarity func(a, b []string) float64

// Objective computes 𝕋(v_adv, v, v_t) of Eq. (2):
//
//	𝕋 = ℍ(R(v_adv), R(v)) − ℍ(R(v_adv), R(v_t)) + η
//
// Lower is better for the attacker: the adversarial list should co-occur
// with the target's list and not with the original's.
func Objective(sim ListSimilarity, advList, origList, targetList []string, eta float64) float64 {
	return sim(advList, origList) - sim(advList, targetList) + eta
}
