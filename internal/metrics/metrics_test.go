package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ids(xs ...string) []string { return xs }

func TestPrecAt(t *testing.T) {
	a := ids("x", "y", "z")
	b := ids("y", "x", "w")
	if got := PrecAt(a, b, 1); got != 0 {
		t.Errorf("prec_1 = %g, want 0 (x not in {y})", got)
	}
	if got := PrecAt(a, b, 2); got != 1 {
		t.Errorf("prec_2 = %g, want 1 ({x,y} ⊆ {y,x})", got)
	}
	if got := PrecAt(a, b, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("prec_3 = %g, want 2/3", got)
	}
	if got := PrecAt(a, b, 0); got != 0 {
		t.Errorf("prec_0 = %g", got)
	}
	if got := PrecAt(a, b, 9); got != 0 {
		t.Errorf("prec beyond length = %g", got)
	}
}

func TestAPAtMIdenticalLists(t *testing.T) {
	a := ids("a", "b", "c", "d")
	if got := APAtM(a, a); got != 1 {
		t.Errorf("AP@m identical = %g", got)
	}
}

func TestAPAtMDisjointLists(t *testing.T) {
	if got := APAtM(ids("a", "b"), ids("c", "d")); got != 0 {
		t.Errorf("AP@m disjoint = %g", got)
	}
}

func TestAPAtMEmpty(t *testing.T) {
	if got := APAtM(nil, ids("a")); got != 0 {
		t.Errorf("AP@m empty = %g", got)
	}
}

func TestAPAtMOrderMatters(t *testing.T) {
	target := ids("a", "b", "c", "d")
	good := ids("a", "b", "x", "y") // agrees early
	bad := ids("x", "y", "a", "b")  // agrees late
	if APAtM(good, target) <= APAtM(bad, target) {
		t.Error("early agreement should score higher")
	}
}

func TestMAPPerfectAndWorst(t *testing.T) {
	all := [][]bool{{true, true, true}}
	if got := MAP(all); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect mAP = %g", got)
	}
	none := [][]bool{{false, false, false}}
	if got := MAP(none); got != 0 {
		t.Errorf("worst mAP = %g", got)
	}
	if got := MAP(nil); got != 0 {
		t.Errorf("empty mAP = %g", got)
	}
}

func TestMAPRankSensitivity(t *testing.T) {
	early := [][]bool{{true, false, false}}
	late := [][]bool{{false, false, true}}
	if MAP(early) <= MAP(late) {
		t.Error("mAP must reward early correct items")
	}
}

func TestCoOccurrenceBounds(t *testing.T) {
	a := ids("a", "b", "c")
	if got := CoOccurrence(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self co-occurrence = %g", got)
	}
	if got := CoOccurrence(a, ids("x", "y")); got != 0 {
		t.Errorf("disjoint co-occurrence = %g", got)
	}
	if got := CoOccurrence(nil, a); got != 0 {
		t.Errorf("empty co-occurrence = %g", got)
	}
}

func TestCoOccurrenceRankWeighting(t *testing.T) {
	b := ids("a")
	// "a" first vs "a" last: first must weigh more.
	first := CoOccurrence(ids("a", "x", "y"), b)
	last := CoOccurrence(ids("x", "y", "a"), b)
	if first <= last {
		t.Errorf("rank weighting broken: first %g ≤ last %g", first, last)
	}
}

func TestPlainOverlapIgnoresRank(t *testing.T) {
	b := ids("a")
	first := PlainOverlap(ids("a", "x", "y"), b)
	last := PlainOverlap(ids("x", "y", "a"), b)
	if first != last {
		t.Errorf("plain overlap should ignore rank: %g vs %g", first, last)
	}
}

func TestObjectiveDirection(t *testing.T) {
	orig := ids("o1", "o2", "o3")
	target := ids("t1", "t2", "t3")
	// Adversarial list equal to original: worst case (highest 𝕋).
	atOrig := Objective(CoOccurrence, orig, orig, target, 0.5)
	// Adversarial list equal to target: best case (lowest 𝕋).
	atTarget := Objective(CoOccurrence, target, orig, target, 0.5)
	if atTarget >= atOrig {
		t.Errorf("objective not decreasing toward target: %g vs %g", atTarget, atOrig)
	}
	if math.Abs(atOrig-1.5) > 1e-12 { // 1 − 0 + 0.5
		t.Errorf("𝕋 at original = %g, want 1.5", atOrig)
	}
	if math.Abs(atTarget-(-0.5)) > 1e-12 { // 0 − 1 + 0.5
		t.Errorf("𝕋 at target = %g, want −0.5", atTarget)
	}
}

func TestPropAPAtMSymmetricPrefix(t *testing.T) {
	// AP@m over identical prefixes is 1 regardless of list content.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%8) + 1
		list := make([]string, m)
		for i := range list {
			list[i] = fmt.Sprintf("v%d", rng.Intn(1000))
		}
		return math.Abs(APAtM(list, list)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCoOccurrenceInUnitInterval(t *testing.T) {
	f := func(seed int64, n, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(m int) []string {
			l := make([]string, m)
			for i := range l {
				l[i] = fmt.Sprintf("v%d", rng.Intn(6))
			}
			return l
		}
		a, b := mk(int(n%6)+1), mk(int(k%6)+1)
		h := CoOccurrence(a, b)
		return h >= 0 && h <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropObjectiveBounds(t *testing.T) {
	// 𝕋 ∈ [η−1, η+1] since ℍ ∈ [0,1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []string {
			l := make([]string, 4)
			for i := range l {
				l[i] = fmt.Sprintf("v%d", rng.Intn(8))
			}
			return l
		}
		eta := 0.5
		tv := Objective(CoOccurrence, mk(), mk(), mk(), eta)
		return tv >= eta-1-1e-12 && tv <= eta+1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecallAtK(t *testing.T) {
	rel := [][]bool{
		{false, true, false}, // hit at rank 2
		{false, false, false},
		{true},
	}
	if got := RecallAtK(rel, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("recall@1 = %g", got)
	}
	if got := RecallAtK(rel, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall@2 = %g", got)
	}
	if got := RecallAtK(nil, 3); got != 0 {
		t.Errorf("recall on empty = %g", got)
	}
	if got := RecallAtK(rel, 0); got != 0 {
		t.Errorf("recall@0 = %g", got)
	}
}

func TestMRR(t *testing.T) {
	rel := [][]bool{
		{true},                // rr = 1
		{false, false, true},  // rr = 1/3
		{false, false, false}, // rr = 0
	}
	want := (1.0 + 1.0/3) / 3
	if got := MRR(rel); math.Abs(got-want) > 1e-12 {
		t.Errorf("MRR = %g, want %g", got, want)
	}
	if got := MRR(nil); got != 0 {
		t.Errorf("MRR empty = %g", got)
	}
}

func TestPropRecallMonotoneInK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := make([][]bool, 5)
		for q := range rel {
			rel[q] = make([]bool, 6)
			for i := range rel[q] {
				rel[q][i] = rng.Intn(3) == 0
			}
		}
		prev := 0.0
		for k := 1; k <= 6; k++ {
			cur := RecallAtK(rel, k)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
