package metrics

// RecallAtK returns the fraction of queries whose top-k retrieval contains
// at least one correct item. rel[q][i] reports whether the i-th retrieved
// item for query q is correct; only the first k positions are consulted.
func RecallAtK(rel [][]bool, k int) float64 {
	if len(rel) == 0 || k <= 0 {
		return 0
	}
	hit := 0
	for _, r := range rel {
		limit := k
		if limit > len(r) {
			limit = len(r)
		}
		for i := 0; i < limit; i++ {
			if r[i] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(rel))
}

// MRR returns the mean reciprocal rank of the first correct item per
// query (0 for queries with no correct item in the list).
func MRR(rel [][]bool) float64 {
	if len(rel) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range rel {
		for i, ok := range r {
			if ok {
				total += 1 / float64(i+1)
				break
			}
		}
	}
	return total / float64(len(rel))
}
