// Package models builds the video feature extractors used as victims and
// surrogates: scaled-down analogues of I3D, TPN, SlowFast, ResNet34 (victim
// side) and C3D, ResNet18 (surrogate side). Each keeps the distinguishing
// structure of its namesake — see DESIGN.md §2 for the substitution
// rationale.
package models

import (
	"fmt"
	"math/rand"
	"sort"

	"duo/internal/nn"
	"duo/internal/telemetry"
	"duo/internal/tensor"
	"duo/internal/video"
)

// Geometry is the video clip geometry a model is built for.
type Geometry struct {
	Frames, Channels, Height, Width int
}

// GeometryOf returns the geometry of a video.
func GeometryOf(v *video.Video) Geometry {
	return Geometry{Frames: v.Frames(), Channels: v.Channels(), Height: v.Height(), Width: v.Width()}
}

// Model is a differentiable video → feature-vector map.
type Model interface {
	// Name returns the architecture name as used in the paper's tables.
	Name() string
	// FeatureDim returns the output embedding dimension.
	FeatureDim() int
	// Forward maps an [N,C,H,W] video tensor to a [FeatureDim] embedding.
	Forward(x *tensor.Tensor) (*tensor.Tensor, nn.Cache)
	// Backward propagates an embedding gradient back to the input pixels,
	// accumulating parameter gradients along the way.
	Backward(c nn.Cache, grad *tensor.Tensor) *tensor.Tensor
	// Params returns all trainable parameters.
	Params() []*nn.Param
}

// netModel wraps an nn.Layer network as a Model.
type netModel struct {
	name string
	dim  int
	net  nn.Layer
}

var _ Model = (*netModel)(nil)

func (m *netModel) Name() string        { return m.name }
func (m *netModel) FeatureDim() int     { return m.dim }
func (m *netModel) Params() []*nn.Param { return m.net.Params() }

func (m *netModel) Forward(x *tensor.Tensor) (*tensor.Tensor, nn.Cache) {
	return m.net.Forward(x)
}

func (m *netModel) Backward(c nn.Cache, grad *tensor.Tensor) *tensor.Tensor {
	return m.net.Backward(c, grad)
}

// Instrument returns a model whose layer graph records per-layer
// forward/backward wall times into r under "model.<name>"; a nil registry
// returns m unchanged. The instrumented model shares the original's
// parameters and computes bitwise-identical embeddings and gradients (see
// nn.Instrument), so it can replace the original anywhere.
func Instrument(m Model, r *telemetry.Registry) Model {
	nm, ok := m.(*netModel)
	if !ok || r == nil {
		return m
	}
	return &netModel{name: nm.name, dim: nm.dim, net: nn.Instrument(nm.net, r, "model."+nm.name)}
}

// Embed runs a forward pass and returns only the embedding.
func Embed(m Model, v *video.Video) *tensor.Tensor {
	e, _ := m.Forward(v.Data)
	return e
}

// pixelScale normalizes [0,255] pixels to ≈[0,1] at model entry.
const pixelScale = 1.0 / video.PixelMax

// width is the base channel width of the scaled-down backbones.
const width = 6

// probeDim runs a dummy forward to determine the flattened feature size of
// a partial network, so head layers can be sized without hand-computing
// conv arithmetic.
func probeDim(net nn.Layer, g Geometry) int {
	y, _ := net.Forward(tensor.New(g.Frames, g.Channels, g.Height, g.Width))
	return y.Len()
}

// NewC3D builds the C3D analogue: plain stacked 3-D convolutions
// (Tran et al., ICCV'15). It is the paper's default surrogate backbone.
func NewC3D(rng *rand.Rand, g Geometry, featDim int) Model {
	trunk := nn.NewSequential(
		nn.Scale{Factor: pixelScale},
		nn.SwapCT{},
		nn.NewConv3DFull(rng, g.Channels, width, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1}),
		nn.ReLU{},
		nn.NewConv3D(rng, width, 2*width, 3, 2),
		nn.ReLU{},
		nn.GlobalAvgPool{},
	)
	head := nn.NewLinear(rng, probeDim(trunk, g), featDim)
	return &netModel{name: "C3D", dim: featDim, net: nn.NewSequential(trunk, head)}
}

// NewI3D builds the I3D analogue: inflated 3-D convolutions with an early
// max-pool stage (Carreira & Zisserman, CVPR'17).
func NewI3D(rng *rand.Rand, g Geometry, featDim int) Model {
	trunk := nn.NewSequential(
		nn.Scale{Factor: pixelScale},
		nn.SwapCT{},
		nn.NewConv3DFull(rng, g.Channels, width, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1}),
		nn.ReLU{},
		nn.MaxPool3D{KT: 1, KH: 2, KW: 2},
		nn.NewConv3DFull(rng, width, 2*width, [3]int{3, 3, 3}, [3]int{2, 1, 1}, [3]int{1, 1, 1}),
		nn.ReLU{},
		nn.GlobalAvgPool{},
	)
	head := nn.NewLinear(rng, probeDim(trunk, g), featDim)
	return &netModel{name: "I3D", dim: featDim, net: nn.NewSequential(trunk, head)}
}

// NewTPN builds the TPN analogue: a temporal pyramid of parallel branches
// processing the clip at temporal rates 1, 2, and 4 (Yang et al., CVPR'20).
func NewTPN(rng *rand.Rand, g Geometry, featDim int) Model {
	branch := func(rate int) nn.Layer {
		return nn.NewSequential(
			nn.SwapCT{},
			nn.AvgPoolTime{K: rate},
			nn.NewConv3DFull(rng, g.Channels, width, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1}),
			nn.ReLU{},
			nn.GlobalAvgPool{},
		)
	}
	trunk := nn.NewSequential(
		nn.Scale{Factor: pixelScale},
		&nn.Parallel{Branches: []nn.Layer{branch(1), branch(2), branch(4)}},
	)
	head := nn.NewLinear(rng, probeDim(trunk, g), featDim)
	return &netModel{name: "TPN", dim: featDim, net: nn.NewSequential(trunk, head)}
}

// NewSlowFast builds the SlowFast analogue: a slow pathway over subsampled
// frames with more channels, fused with a fast pathway over all frames with
// fewer channels (Feichtenhofer et al., ICCV'19).
func NewSlowFast(rng *rand.Rand, g Geometry, featDim int) Model {
	slow := nn.NewSequential(
		nn.SubsampleTime{K: 4},
		nn.SwapCT{},
		nn.NewConv3DFull(rng, g.Channels, 2*width, [3]int{1, 3, 3}, [3]int{1, 2, 2}, [3]int{0, 1, 1}),
		nn.ReLU{},
		nn.GlobalAvgPool{},
	)
	fast := nn.NewSequential(
		nn.SwapCT{},
		nn.NewConv3DFull(rng, g.Channels, width/2, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1}),
		nn.ReLU{},
		nn.GlobalAvgPool{},
	)
	trunk := nn.NewSequential(
		nn.Scale{Factor: pixelScale},
		&nn.Parallel{Branches: []nn.Layer{slow, fast}},
	)
	head := nn.NewLinear(rng, probeDim(trunk, g), featDim)
	return &netModel{name: "SlowFast", dim: featDim, net: nn.NewSequential(trunk, head)}
}

// newResNet builds a per-frame residual 2-D CNN with temporal average
// pooling; blocks controls depth (2 for the ResNet18 analogue, 4 for the
// ResNet34 analogue).
func newResNet(rng *rand.Rand, g Geometry, featDim, blocks int, name string) Model {
	resBlock := func() nn.Layer {
		return &nn.Residual{Inner: nn.NewSequential(
			nn.NewConv2D(rng, width, width, 3, 1),
			nn.ReLU{},
			nn.NewConv2D(rng, width, width, 3, 1),
		)}
	}
	frame := []nn.Layer{nn.NewConv2D(rng, g.Channels, width, 3, 2), nn.ReLU{}}
	for i := 0; i < blocks; i++ {
		frame = append(frame, resBlock(), nn.ReLU{})
	}
	trunk := nn.NewSequential(
		nn.Scale{Factor: pixelScale},
		&nn.TimeDistributed{Inner: nn.NewSequential(frame...)},
		nn.SwapCT{}, // [N,w,h,w'] → [w,N,h,w'] so channels lead
		nn.GlobalAvgPool{},
	)
	head := nn.NewLinear(rng, probeDim(trunk, g), featDim)
	return &netModel{name: name, dim: featDim, net: nn.NewSequential(trunk, head)}
}

// NewResNet18 builds the ResNet18 analogue (surrogate side).
func NewResNet18(rng *rand.Rand, g Geometry, featDim int) Model {
	return newResNet(rng, g, featDim, 2, "Resnet18")
}

// NewResNet34 builds the ResNet34 analogue (victim side).
func NewResNet34(rng *rand.Rand, g Geometry, featDim int) Model {
	return newResNet(rng, g, featDim, 4, "Resnet34")
}

// NewCNNLSTM builds the paper's §III-A reference retrieval model (Fig. 1):
// a stacked CNN extracts per-frame spatial features, an LSTM integrates
// them temporally, and fully-connected layers flatten the result into the
// embedding.
func NewCNNLSTM(rng *rand.Rand, g Geometry, featDim int) Model {
	frame := nn.NewSequential(
		nn.NewConv2D(rng, g.Channels, width, 3, 2),
		nn.NewChannelNorm(width),
		nn.ReLU{},
		nn.NewConv2D(rng, width, width, 3, 2),
		nn.NewChannelNorm(width),
		nn.ReLU{},
		nn.Flatten{},
	)
	spatial := nn.NewSequential(
		nn.Scale{Factor: pixelScale},
		&nn.TimeDistributed{Inner: frame},
	)
	perFrame := probeDim(spatial, g) / g.Frames
	hidden := featDim
	if hidden > 2*width*width {
		hidden = 2 * width * width
	}
	net := nn.NewSequential(
		spatial,
		nn.NewLSTM(rng, perFrame, hidden),
		nn.NewLinear(rng, hidden, featDim),
	)
	return &netModel{name: "CNNLSTM", dim: featDim, net: net}
}

// Builder constructs a model for a geometry and feature dimension.
type Builder func(rng *rand.Rand, g Geometry, featDim int) Model

// builders is the model registry.
var builders = map[string]Builder{
	"C3D":      NewC3D,
	"CNNLSTM":  NewCNNLSTM,
	"I3D":      NewI3D,
	"TPN":      NewTPN,
	"SlowFast": NewSlowFast,
	"Resnet18": NewResNet18,
	"Resnet34": NewResNet34,
}

// VictimNames lists the paper's four victim backbones in table order.
func VictimNames() []string { return []string{"TPN", "SlowFast", "I3D", "Resnet34"} }

// SurrogateNames lists the paper's two surrogate backbones.
func SurrogateNames() []string { return []string{"C3D", "Resnet18"} }

// Names returns every registered architecture, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs a registered architecture by name.
func Build(name string, rng *rand.Rand, g Geometry, featDim int) (Model, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown architecture %q (have %v)", name, Names())
	}
	return b(rng, g, featDim), nil
}
