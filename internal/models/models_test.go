package models

import (
	"math"
	"math/rand"
	"testing"

	"duo/internal/dataset"
	"duo/internal/nn/losses"
	"duo/internal/tensor"
)

var tinyGeom = Geometry{Frames: 8, Channels: 3, Height: 12, Width: 12}

func TestAllArchitecturesForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandUniform(rng, 0, 255, tinyGeom.Frames, tinyGeom.Channels, tinyGeom.Height, tinyGeom.Width)
	for _, name := range Names() {
		m, err := Build(name, rng, tinyGeom, 16)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := m.Forward(x)
		if e.Rank() != 1 || e.Dim(0) != 16 {
			t.Errorf("%s: embedding shape %v, want [16]", name, e.Shape())
		}
		if m.FeatureDim() != 16 {
			t.Errorf("%s: FeatureDim = %d", name, m.FeatureDim())
		}
		if m.Name() != name {
			t.Errorf("Build(%q).Name() = %q", name, m.Name())
		}
		for _, v := range e.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: embedding has NaN/Inf", name)
			}
		}
	}
}

func TestBuildUnknownArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build("AlexNet", rng, tinyGeom, 8); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestArchitecturesAreDistinct(t *testing.T) {
	// Different architectures built from the same seed must produce
	// different embeddings for the same input: they are distinct maps.
	x := tensor.RandUniform(rand.New(rand.NewSource(2)), 0, 255,
		tinyGeom.Frames, tinyGeom.Channels, tinyGeom.Height, tinyGeom.Width)
	var prev *tensor.Tensor
	for _, name := range Names() {
		m, _ := Build(name, rand.New(rand.NewSource(3)), tinyGeom, 16)
		e, _ := m.Forward(x)
		if prev != nil && e.Equal(prev, 1e-9) {
			t.Errorf("%s produced identical embedding to previous architecture", name)
		}
		prev = e
	}
}

func TestInputGradientFlowsToAllFrames(t *testing.T) {
	// Backward must reach every frame's pixels (needed by SparseTransfer).
	rng := rand.New(rand.NewSource(4))
	for _, name := range []string{"C3D", "SlowFast", "TPN", "Resnet18", "CNNLSTM"} {
		m, _ := Build(name, rng, tinyGeom, 8)
		x := tensor.RandUniform(rng, 0, 255, tinyGeom.Frames, tinyGeom.Channels, tinyGeom.Height, tinyGeom.Width)
		e, c := m.Forward(x)
		g := tensor.RandNormal(rng, 0, 1, e.Shape()...)
		dx := m.Backward(c, g)
		if !dx.SameShape(x) {
			t.Fatalf("%s: input grad shape %v", name, dx.Shape())
		}
		for f := 0; f < tinyGeom.Frames; f++ {
			if dx.Slice(f).L2() == 0 {
				t.Errorf("%s: zero gradient at frame %d", name, f)
			}
		}
	}
}

func TestModelGradcheckAgainstNumeric(t *testing.T) {
	// Spot-check C3D's input gradient against finite differences on a few
	// random coordinates (full checks live in package nn).
	rng := rand.New(rand.NewSource(5))
	g := Geometry{Frames: 4, Channels: 1, Height: 6, Width: 6}
	m := NewC3D(rng, g, 4)
	x := tensor.RandUniform(rng, 0, 255, g.Frames, g.Channels, g.Height, g.Width)
	w := tensor.RandNormal(rng, 0, 1, 4)
	e, c := m.Forward(x)
	_ = e
	dx := m.Backward(c, w)
	lossAt := func() float64 {
		y, _ := m.Forward(x)
		return y.Dot(w)
	}
	const h = 1e-4
	for trial := 0; trial < 10; trial++ {
		i := rng.Intn(x.Len())
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := lossAt()
		x.Data()[i] = orig - h
		down := lossAt()
		x.Data()[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-dx.Data()[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("grad[%d]: analytic %g vs numeric %g", i, dx.Data()[i], num)
		}
	}
}

func trainTinyCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{
		Name: "TrainSim", Categories: 3, TrainPerCategory: 5, TestPerCategory: 2,
		Frames: tinyGeom.Frames, Channels: tinyGeom.Channels,
		Height: tinyGeom.Height, Width: tinyGeom.Width, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTrainReducesLoss(t *testing.T) {
	c := trainTinyCorpus(t)
	rng := rand.New(rand.NewSource(6))
	m := NewC3D(rng, tinyGeom, 8)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	hist, err := Train(m, losses.Triplet{Margin: 0.2}, c.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("history length %d", len(hist))
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Errorf("loss did not decrease: %v", hist)
	}
}

func TestTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewC3D(rng, tinyGeom, 8)
	if _, err := Train(m, losses.Triplet{Margin: 0.2}, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	c := trainTinyCorpus(t)
	oneClass := dataset.ByLabel(c.Train)[0]
	if _, err := Train(m, losses.Triplet{Margin: 0.2}, oneClass, DefaultTrainConfig()); err == nil {
		t.Error("single-category training set accepted")
	}
}

func TestTrainImprovesSeparation(t *testing.T) {
	// After training, same-class embeddings should be relatively closer
	// than before (the retrieval property everything else depends on).
	c := trainTinyCorpus(t)
	rng := rand.New(rand.NewSource(8))
	m := NewSlowFast(rng, tinyGeom, 8)

	ratio := func() float64 {
		by := dataset.ByLabel(c.Test)
		intra, inter := 0.0, 0.0
		ni, nx := 0, 0
		embs := map[int][]*tensor.Tensor{}
		for l, vs := range by {
			for _, v := range vs {
				embs[l] = append(embs[l], Embed(m, v))
			}
		}
		for l, es := range embs {
			for i := range es {
				for j := i + 1; j < len(es); j++ {
					intra += es[i].Distance(es[j])
					ni++
				}
				for l2, es2 := range embs {
					if l2 == l {
						continue
					}
					inter += es[i].Distance(es2[0])
					nx++
				}
			}
		}
		return (intra / float64(ni)) / (inter / float64(nx))
	}

	before := ratio()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	if _, err := Train(m, losses.Triplet{Margin: 0.2}, c.Train, cfg); err != nil {
		t.Fatal(err)
	}
	after := ratio()
	// The random init already separates categories (the synthetic classes
	// are pixel-separable), so training need not shrink the ratio — but it
	// must keep embeddings clustered by category.
	if after > 0.5 {
		t.Errorf("intra/inter ratio after training = %g (> 0.5); before = %g", after, before)
	}
	if after > 3*before {
		t.Errorf("training destroyed separation: %g → %g", before, after)
	}
}

func TestCNNLSTMTrainable(t *testing.T) {
	// The Fig. 1 reference model (CNN + LSTM) must train like the rest.
	c := trainTinyCorpus(t)
	rng := rand.New(rand.NewSource(9))
	m := NewCNNLSTM(rng, tinyGeom, 8)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	hist, err := Train(m, losses.Triplet{Margin: 0.2}, c.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Errorf("CNNLSTM loss did not decrease: %v", hist)
	}
}

func TestVictimAndSurrogateNameLists(t *testing.T) {
	for _, n := range append(VictimNames(), SurrogateNames()...) {
		if _, err := Build(n, rand.New(rand.NewSource(1)), tinyGeom, 8); err != nil {
			t.Errorf("listed architecture %q not buildable: %v", n, err)
		}
	}
}

func TestPretrainBeatsChance(t *testing.T) {
	c := trainTinyCorpus(t)
	rng := rand.New(rand.NewSource(14))
	m := NewC3D(rng, tinyGeom, 8)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	acc, err := Pretrain(m, c.Train, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 1.0/3+0.1 {
		t.Errorf("pretraining accuracy %g barely above chance", acc)
	}
}

func TestPretrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := NewC3D(rng, tinyGeom, 8)
	if _, err := Pretrain(m, nil, 1, DefaultTrainConfig()); err == nil {
		t.Error("1-class pretraining accepted")
	}
}
