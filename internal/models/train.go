package models

import (
	"fmt"
	"math/rand"
	"sort"

	"duo/internal/nn"
	"duo/internal/nn/losses"
	"duo/internal/opt"
	"duo/internal/tensor"
	"duo/internal/video"
)

// TrainConfig controls metric-learning training.
type TrainConfig struct {
	// Epochs is the number of passes; each epoch runs StepsPerEpoch
	// PK-sampled batches.
	Epochs int
	// StepsPerEpoch is the number of optimizer steps per epoch.
	StepsPerEpoch int
	// CategoriesPerBatch (P) and SamplesPerCategory (K) define PK batch
	// sampling: every batch holds P×K videos with guaranteed positives.
	CategoriesPerBatch int
	SamplesPerCategory int
	// LR is the Adam learning rate.
	LR float64
	// Seed drives batch sampling.
	Seed int64
}

// DefaultTrainConfig returns a configuration adequate for the scaled-down
// corpora used in tests and benches.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:             6,
		StepsPerEpoch:      12,
		CategoriesPerBatch: 3,
		SamplesPerCategory: 2,
		LR:                 0.01,
		Seed:               1,
	}
}

// Train fits m (and any loss parameters) to the labelled videos with the
// given metric loss, returning the mean loss per epoch.
func Train(m Model, loss losses.MetricLoss, vids []*video.Video, cfg TrainConfig) ([]float64, error) {
	if len(vids) == 0 {
		return nil, fmt.Errorf("models: no training videos")
	}
	byLabel := map[int][]*video.Video{}
	for _, v := range vids {
		byLabel[v.Label] = append(byLabel[v.Label], v)
	}
	if len(byLabel) < 2 {
		return nil, fmt.Errorf("models: need ≥2 categories to train a metric loss, got %d", len(byLabel))
	}
	labels := make([]int, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Ints(labels) // deterministic order regardless of map iteration

	rng := rand.New(rand.NewSource(cfg.Seed))
	optimizer := opt.NewAdam(cfg.LR)
	params := append(append([]*nn.Param(nil), m.Params()...), loss.Params()...)

	p := cfg.CategoriesPerBatch
	if p > len(labels) {
		p = len(labels)
	}
	if p < 2 {
		p = 2
	}
	k := cfg.SamplesPerCategory
	if k < 1 {
		k = 1
	}

	history := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		total := 0.0
		for step := 0; step < cfg.StepsPerEpoch; step++ {
			// PK sampling: p categories, k instances each.
			perm := rng.Perm(len(labels))[:p]
			var batch []*video.Video
			for _, li := range perm {
				pool := byLabel[labels[li]]
				for s := 0; s < k; s++ {
					batch = append(batch, pool[rng.Intn(len(pool))])
				}
			}

			caches := make([]nn.Cache, len(batch))
			embs := make([]*tensor.Tensor, len(batch))
			lbls := make([]int, len(batch))
			for i, v := range batch {
				embs[i], caches[i] = m.Forward(v.Data)
				lbls[i] = v.Label
			}

			lv, grads := loss.Loss(embs, lbls)
			total += lv

			opt.ZeroGrads(params)
			for i := range batch {
				m.Backward(caches[i], grads[i])
			}
			optimizer.Step(params)
		}
		history = append(history, total/float64(cfg.StepsPerEpoch))
	}
	return history, nil
}

// Pretrain runs a classification pre-training stage — the analogue of the
// Kinetics pre-training the paper's victim backbones ship with — by
// fitting the model under a softmax cross-entropy head, then returns the
// final training accuracy of that head.
func Pretrain(m Model, vids []*video.Video, classes int, cfg TrainConfig) (float64, error) {
	if classes < 2 {
		return 0, fmt.Errorf("models: pretraining needs ≥2 classes, got %d", classes)
	}
	head := losses.NewCrossEntropy(rand.New(rand.NewSource(cfg.Seed+1)), classes, m.FeatureDim())
	if _, err := Train(m, head, vids, cfg); err != nil {
		return 0, err
	}
	embs := make([]*tensor.Tensor, len(vids))
	labels := make([]int, len(vids))
	for i, v := range vids {
		embs[i] = Embed(m, v)
		labels[i] = v.Label
	}
	return head.Accuracy(embs, labels), nil
}
