package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"duo/internal/parallel"
	"duo/internal/tensor"
)

func BenchmarkConv3DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv3DFull(rng, 3, 6, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1})
	x := tensor.RandNormal(rng, 0, 1, 3, 16, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = l.Forward(x)
	}
}

func BenchmarkConv3DBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv3DFull(rng, 3, 6, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1})
	x := tensor.RandNormal(rng, 0, 1, 3, 16, 16, 16)
	y, cache := l.Forward(x)
	g := tensor.RandNormal(rng, 0, 1, y.Shape()...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Backward(cache, g)
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv2D(rng, 3, 6, 3, 2)
	x := tensor.RandNormal(rng, 0, 1, 3, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = l.Forward(x)
	}
}

func BenchmarkLinearForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(rng, 768, 128)
	x := tensor.RandNormal(rng, 0, 1, 768)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = l.Forward(x)
	}
}

// BenchmarkConvForwardParallel measures the filter-sharded Conv3D forward
// at several worker counts (workers=1 is the sequential path).
func BenchmarkConvForwardParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	l := NewConv3DFull(rng, 3, 8, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1})
	x := tensor.RandNormal(rng, 0, 1, 3, 16, 16, 16)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = l.Forward(x)
			}
		})
	}
}

// BenchmarkConvBackwardParallel measures the two-pass parallel Conv3D
// backward against the sequential scatter (workers=1).
func BenchmarkConvBackwardParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	l := NewConv3DFull(rng, 3, 8, [3]int{3, 3, 3}, [3]int{1, 2, 2}, [3]int{1, 1, 1})
	x := tensor.RandNormal(rng, 0, 1, 3, 16, 16, 16)
	y, cache := l.Forward(x)
	g := tensor.RandNormal(rng, 0, 1, y.Shape()...)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = l.Backward(cache, g)
			}
		})
	}
}

func BenchmarkMaxPool3D(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	l := MaxPool3D{KT: 2, KH: 2, KW: 2}
	x := tensor.RandNormal(rng, 0, 1, 6, 16, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = l.Forward(x)
	}
}
