package nn

import (
	"fmt"
	"math/rand"

	"duo/internal/parallel"
	"duo/internal/tensor"
)

// Conv2D is a 2-D convolution over [C, H, W] inputs (channel-first).
// Weights have shape [F, C, KH, KW]; zero padding.
type Conv2D struct {
	InC, OutC int
	KH, KW    int
	SH, SW    int
	PH, PW    int
	W         *Param
	B         *Param
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a He-initialized 2-D convolution with square kernel k,
// stride s, and "same"-style padding k/2.
func NewConv2D(rng *rand.Rand, inC, outC, k, s int) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	HeInit(rng, w, inC*k*k)
	return &Conv2D{
		InC: inC, OutC: outC,
		KH: k, KW: k, SH: s, SW: s, PH: k / 2, PW: k / 2,
		W: NewParam(fmt.Sprintf("conv2d%dx%d.W", outC, inC), w),
		B: NewParam(fmt.Sprintf("conv2d%dx%d.B", outC, inC), tensor.New(outC)),
	}
}

type conv2dCache struct{ x *tensor.Tensor }

// OutShape returns the output shape for an input of shape [C,H,W].
func (l *Conv2D) OutShape(in []int) []int {
	return []int{l.OutC, outDim(in[1], l.KH, l.SH, l.PH), outDim(in[2], l.KW, l.SW, l.PW)}
}

// Forward implements Layer. Filters are sharded across workers when the
// arithmetic is worth it; every output element has a single writer, so the
// result is bitwise-identical at every worker count.
//
//duolint:hot
func (l *Conv2D) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() != 3 || x.Dim(0) != l.InC {
		panic(fmt.Sprintf("nn: Conv2D(in=%d) got input shape %v", l.InC, x.Shape()))
	}
	in := x.Shape()
	H, W := in[1], in[2]
	os := l.OutShape(in)
	Ho, Wo := os[1], os[2]
	if Ho <= 0 || Wo <= 0 {
		panic(fmt.Sprintf("nn: Conv2D produces empty output for input %v", in))
	}
	out := tensor.New(os...)
	xd, od := x.Data(), out.Data()
	wd, bd := l.W.Value.Data(), l.B.Value.Data()
	xsC, xsH := H*W, W
	wsF, wsC := l.InC*l.KH*l.KW, l.KH*l.KW

	computeF := func(f int) {
		wf := wd[f*wsF : (f+1)*wsF]
		oi := f * Ho * Wo
		for ho := 0; ho < Ho; ho++ {
			h0 := ho*l.SH - l.PH
			for wo := 0; wo < Wo; wo++ {
				w0 := wo*l.SW - l.PW
				acc := bd[f]
				for c := 0; c < l.InC; c++ {
					for kh := 0; kh < l.KH; kh++ {
						hi := h0 + kh
						if hi < 0 || hi >= H {
							continue
						}
						xrow := xd[c*xsC+hi*xsH:]
						wrow := wf[c*wsC+kh*l.KW:]
						for kw := 0; kw < l.KW; kw++ {
							wi := w0 + kw
							if wi < 0 || wi >= W {
								continue
							}
							acc += xrow[wi] * wrow[kw]
						}
					}
				}
				od[oi] = acc
				oi++
			}
		}
	}
	workers := parallel.Workers()
	if workers > 1 && l.OutC > 1 && Ho*Wo*l.InC*l.KH*l.KW >= parallelThreshold {
		parallel.ForN(workers, l.OutC, func(_, fs, fe int) {
			for f := fs; f < fe; f++ {
				computeF(f)
			}
		})
	} else {
		for f := 0; f < l.OutC; f++ {
			computeF(f)
		}
	}
	return out, &conv2dCache{x: x.Clone()}
}

// Backward implements Layer. With one worker it runs the reference scatter
// pass; with more it splits into a per-filter pass (wg, bg — disjoint
// slices) and a per-input-element gather pass (dx), both reproducing the
// scatter's floating-point accumulation order exactly (DESIGN.md §9).
//
//duolint:hot
func (l *Conv2D) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	cc := c.(*conv2dCache)
	x := cc.x
	in := x.Shape()
	H, W := in[1], in[2]
	os := l.OutShape(in)
	Ho, Wo := os[1], os[2]

	dx := tensor.New(in...)
	xd, dxd := x.Data(), dx.Data()
	gd := gradOut.Data()
	wd, wg, bg := l.W.Value.Data(), l.W.Grad.Data(), l.B.Grad.Data()
	xsC, xsH := H*W, W
	wsF, wsC := l.InC*l.KH*l.KW, l.KH*l.KW

	workers := parallel.Workers()
	if workers <= 1 {
		gi := 0
		for f := 0; f < l.OutC; f++ {
			wf := wd[f*wsF : (f+1)*wsF]
			wgf := wg[f*wsF : (f+1)*wsF]
			for ho := 0; ho < Ho; ho++ {
				h0 := ho*l.SH - l.PH
				for wo := 0; wo < Wo; wo++ {
					w0 := wo*l.SW - l.PW
					g := gd[gi]
					gi++
					if g == 0 {
						continue
					}
					bg[f] += g
					for c := 0; c < l.InC; c++ {
						for kh := 0; kh < l.KH; kh++ {
							hi := h0 + kh
							if hi < 0 || hi >= H {
								continue
							}
							base := c*xsC + hi*xsH
							wbase := c*wsC + kh*l.KW
							for kw := 0; kw < l.KW; kw++ {
								wi := w0 + kw
								if wi < 0 || wi >= W {
									continue
								}
								wgf[wbase+kw] += g * xd[base+wi]
								dxd[base+wi] += g * wf[wbase+kw]
							}
						}
					}
				}
			}
		}
		return dx
	}

	// Pass 1 — weight and bias gradients, sharded over filters. wg[f] and
	// bg[f] are touched only by filter f, and the per-filter accumulation
	// order matches the scatter above.
	parallel.ForN(workers, l.OutC, func(_, fs, fe int) {
		for f := fs; f < fe; f++ {
			wgf := wg[f*wsF : (f+1)*wsF]
			gi := f * Ho * Wo
			for ho := 0; ho < Ho; ho++ {
				h0 := ho*l.SH - l.PH
				for wo := 0; wo < Wo; wo++ {
					w0 := wo*l.SW - l.PW
					g := gd[gi]
					gi++
					if g == 0 {
						continue
					}
					bg[f] += g
					for c := 0; c < l.InC; c++ {
						for kh := 0; kh < l.KH; kh++ {
							hi := h0 + kh
							if hi < 0 || hi >= H {
								continue
							}
							base := c*xsC + hi*xsH
							wbase := c*wsC + kh*l.KW
							for kw := 0; kw < l.KW; kw++ {
								wi := w0 + kw
								if wi < 0 || wi >= W {
									continue
								}
								wgf[wbase+kw] += g * xd[base+wi]
							}
						}
					}
				}
			}
		}
	})

	// Pass 2 — input gradient, sharded over input elements. Each dx element
	// gathers its contributions in ascending (f, ho, wo) order: exactly the
	// order the sequential scatter delivers them (kh/kw run descending
	// because ho/wo grow as the kernel offset shrinks).
	parallel.ForN(workers, len(dxd), func(_, s, e int) {
		for idx := s; idx < e; idx++ {
			c := idx / xsC
			rem := idx % xsC
			hi := rem / W
			wi := rem % W
			wc := c * wsC
			sum := 0.0
			for f := 0; f < l.OutC; f++ {
				gf := gd[f*Ho*Wo:]
				wf := wd[f*wsF+wc:]
				for kh := l.KH - 1; kh >= 0; kh-- {
					hoS := hi + l.PH - kh
					if hoS < 0 || hoS%l.SH != 0 {
						continue
					}
					ho := hoS / l.SH
					if ho >= Ho {
						continue
					}
					for kw := l.KW - 1; kw >= 0; kw-- {
						woS := wi + l.PW - kw
						if woS < 0 || woS%l.SW != 0 {
							continue
						}
						wo := woS / l.SW
						if wo >= Wo {
							continue
						}
						g := gf[ho*Wo+wo]
						if g == 0 {
							continue
						}
						sum += g * wf[kh*l.KW+kw]
					}
				}
			}
			dxd[idx] = sum
		}
	})
	return dx
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }
