package nn

import (
	"fmt"
	"math/rand"

	"duo/internal/parallel"
	"duo/internal/tensor"
)

// parallelThreshold is the per-filter multiply-accumulate count above which
// convolution forward passes shard their filters across workers. It is a
// var so tests can lower it to force the parallel path on tiny layers.
var parallelThreshold = 20000

// Conv3D is a 3-D convolution over [C, T, H, W] inputs (channel-first,
// T = temporal depth). Weights have shape [F, C, KT, KH, KW]; zero padding.
type Conv3D struct {
	InC, OutC  int
	KT, KH, KW int
	ST, SH, SW int // strides
	PT, PH, PW int // zero padding
	W          *Param
	B          *Param
}

var _ Layer = (*Conv3D)(nil)

// NewConv3D returns a He-initialized 3-D convolution with cubic kernel k,
// stride s in every dimension, and "same"-style padding k/2.
func NewConv3D(rng *rand.Rand, inC, outC, k, s int) *Conv3D {
	return NewConv3DFull(rng, inC, outC, [3]int{k, k, k}, [3]int{s, s, s}, [3]int{k / 2, k / 2, k / 2})
}

// NewConv3DFull returns a He-initialized 3-D convolution with explicit
// per-dimension kernel, stride, and padding.
func NewConv3DFull(rng *rand.Rand, inC, outC int, kernel, stride, pad [3]int) *Conv3D {
	w := tensor.New(outC, inC, kernel[0], kernel[1], kernel[2])
	HeInit(rng, w, inC*kernel[0]*kernel[1]*kernel[2])
	return &Conv3D{
		InC: inC, OutC: outC,
		KT: kernel[0], KH: kernel[1], KW: kernel[2],
		ST: stride[0], SH: stride[1], SW: stride[2],
		PT: pad[0], PH: pad[1], PW: pad[2],
		W: NewParam(fmt.Sprintf("conv3d%dx%d.W", outC, inC), w),
		B: NewParam(fmt.Sprintf("conv3d%dx%d.B", outC, inC), tensor.New(outC)),
	}
}

func outDim(in, k, s, p int) int { return (in+2*p-k)/s + 1 }

type conv3dCache struct{ x *tensor.Tensor }

// OutShape returns the output shape for an input of shape [C,T,H,W].
func (l *Conv3D) OutShape(in []int) []int {
	return []int{l.OutC, outDim(in[1], l.KT, l.ST, l.PT), outDim(in[2], l.KH, l.SH, l.PH), outDim(in[3], l.KW, l.SW, l.PW)}
}

// Forward implements Layer. Filters are sharded across workers when there
// is enough arithmetic to amortize the fan-out; output planes are disjoint
// per filter, so the result is bitwise-identical at every worker count.
//
//duolint:hot
func (l *Conv3D) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() != 4 || x.Dim(0) != l.InC {
		panic(fmt.Sprintf("nn: Conv3D(in=%d) got input shape %v", l.InC, x.Shape()))
	}
	in := x.Shape()
	T, H, W := in[1], in[2], in[3]
	os := l.OutShape(in)
	To, Ho, Wo := os[1], os[2], os[3]
	if To <= 0 || Ho <= 0 || Wo <= 0 {
		panic(fmt.Sprintf("nn: Conv3D produces empty output for input %v", in))
	}
	out := tensor.New(os...)
	xd := x.Data()
	od := out.Data()
	wd := l.W.Value.Data()
	bd := l.B.Value.Data()

	// Flat strides for x[C,T,H,W] and w[F,C,KT,KH,KW].
	xsC, xsT, xsH := T*H*W, H*W, W
	wsF := l.InC * l.KT * l.KH * l.KW
	wsC, wsT, wsH := l.KT*l.KH*l.KW, l.KH*l.KW, l.KW

	perF := To * Ho * Wo
	// computeF fills the output plane of one filter; planes are disjoint,
	// so filters can run concurrently.
	computeF := func(f int) {
		wf := wd[f*wsF : (f+1)*wsF]
		oi := f * perF
		for to := 0; to < To; to++ {
			t0 := to*l.ST - l.PT
			for ho := 0; ho < Ho; ho++ {
				h0 := ho*l.SH - l.PH
				for wo := 0; wo < Wo; wo++ {
					w0 := wo*l.SW - l.PW
					acc := bd[f]
					for c := 0; c < l.InC; c++ {
						for kt := 0; kt < l.KT; kt++ {
							ti := t0 + kt
							if ti < 0 || ti >= T {
								continue
							}
							for kh := 0; kh < l.KH; kh++ {
								hi := h0 + kh
								if hi < 0 || hi >= H {
									continue
								}
								xrow := xd[c*xsC+ti*xsT+hi*xsH:]
								wrow := wf[c*wsC+kt*wsT+kh*wsH:]
								for kw := 0; kw < l.KW; kw++ {
									wi := w0 + kw
									if wi < 0 || wi >= W {
										continue
									}
									acc += xrow[wi] * wrow[kw]
								}
							}
						}
					}
					od[oi] = acc
					oi++
				}
			}
		}
	}
	workers := parallel.Workers()
	work := perF * l.InC * l.KT * l.KH * l.KW
	if workers > 1 && l.OutC > 1 && work >= parallelThreshold {
		parallel.ForN(workers, l.OutC, func(_, fs, fe int) {
			for f := fs; f < fe; f++ {
				computeF(f)
			}
		})
	} else {
		for f := 0; f < l.OutC; f++ {
			computeF(f)
		}
	}
	return out, &conv3dCache{x: x.Clone()}
}

// Backward implements Layer. With one worker it runs the reference scatter
// pass; with more it splits into a per-filter pass (wg, bg) and a
// per-input-element gather pass (dx), both reproducing the scatter's
// floating-point accumulation order exactly (DESIGN.md §9).
//
//duolint:hot
func (l *Conv3D) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	cc := c.(*conv3dCache)
	x := cc.x
	in := x.Shape()
	T, H, W := in[1], in[2], in[3]
	os := l.OutShape(in)
	To, Ho, Wo := os[1], os[2], os[3]

	dx := tensor.New(in...)
	xd := x.Data()
	dxd := dx.Data()
	gd := gradOut.Data()
	wd := l.W.Value.Data()
	wg := l.W.Grad.Data()
	bg := l.B.Grad.Data()

	xsC, xsT, xsH := T*H*W, H*W, W
	wsF := l.InC * l.KT * l.KH * l.KW
	wsC, wsT, wsH := l.KT*l.KH*l.KW, l.KH*l.KW, l.KW
	perF := To * Ho * Wo

	workers := parallel.Workers()
	if workers <= 1 {
		gi := 0
		for f := 0; f < l.OutC; f++ {
			wf := wd[f*wsF : (f+1)*wsF]
			wgf := wg[f*wsF : (f+1)*wsF]
			for to := 0; to < To; to++ {
				t0 := to*l.ST - l.PT
				for ho := 0; ho < Ho; ho++ {
					h0 := ho*l.SH - l.PH
					for wo := 0; wo < Wo; wo++ {
						w0 := wo*l.SW - l.PW
						g := gd[gi]
						gi++
						if g == 0 {
							continue
						}
						bg[f] += g
						for c := 0; c < l.InC; c++ {
							for kt := 0; kt < l.KT; kt++ {
								ti := t0 + kt
								if ti < 0 || ti >= T {
									continue
								}
								for kh := 0; kh < l.KH; kh++ {
									hi := h0 + kh
									if hi < 0 || hi >= H {
										continue
									}
									base := c*xsC + ti*xsT + hi*xsH
									wbase := c*wsC + kt*wsT + kh*wsH
									for kw := 0; kw < l.KW; kw++ {
										wi := w0 + kw
										if wi < 0 || wi >= W {
											continue
										}
										wgf[wbase+kw] += g * xd[base+wi]
										dxd[base+wi] += g * wf[wbase+kw]
									}
								}
							}
						}
					}
				}
			}
		}
		return dx
	}

	// Pass 1 — weight and bias gradients, sharded over filters (wg[f] and
	// bg[f] have a single writer, per-filter order matches the scatter).
	parallel.ForN(workers, l.OutC, func(_, fs, fe int) {
		for f := fs; f < fe; f++ {
			wgf := wg[f*wsF : (f+1)*wsF]
			gi := f * perF
			for to := 0; to < To; to++ {
				t0 := to*l.ST - l.PT
				for ho := 0; ho < Ho; ho++ {
					h0 := ho*l.SH - l.PH
					for wo := 0; wo < Wo; wo++ {
						w0 := wo*l.SW - l.PW
						g := gd[gi]
						gi++
						if g == 0 {
							continue
						}
						bg[f] += g
						for c := 0; c < l.InC; c++ {
							for kt := 0; kt < l.KT; kt++ {
								ti := t0 + kt
								if ti < 0 || ti >= T {
									continue
								}
								for kh := 0; kh < l.KH; kh++ {
									hi := h0 + kh
									if hi < 0 || hi >= H {
										continue
									}
									base := c*xsC + ti*xsT + hi*xsH
									wbase := c*wsC + kt*wsT + kh*wsH
									for kw := 0; kw < l.KW; kw++ {
										wi := w0 + kw
										if wi < 0 || wi >= W {
											continue
										}
										wgf[wbase+kw] += g * xd[base+wi]
									}
								}
							}
						}
					}
				}
			}
		}
	})

	// Pass 2 — input gradient, sharded over input elements. Contributions
	// gather in ascending (f, to, ho, wo) order — the scatter's delivery
	// order — by running the kernel offsets descending.
	parallel.ForN(workers, len(dxd), func(_, s, e int) {
		for idx := s; idx < e; idx++ {
			c := idx / xsC
			rem := idx % xsC
			ti := rem / xsT
			rem %= xsT
			hi := rem / W
			wi := rem % W
			wc := c * wsC
			sum := 0.0
			for f := 0; f < l.OutC; f++ {
				gf := gd[f*perF:]
				wf := wd[f*wsF+wc:]
				for kt := l.KT - 1; kt >= 0; kt-- {
					toS := ti + l.PT - kt
					if toS < 0 || toS%l.ST != 0 {
						continue
					}
					to := toS / l.ST
					if to >= To {
						continue
					}
					for kh := l.KH - 1; kh >= 0; kh-- {
						hoS := hi + l.PH - kh
						if hoS < 0 || hoS%l.SH != 0 {
							continue
						}
						ho := hoS / l.SH
						if ho >= Ho {
							continue
						}
						for kw := l.KW - 1; kw >= 0; kw-- {
							woS := wi + l.PW - kw
							if woS < 0 || woS%l.SW != 0 {
								continue
							}
							wo := woS / l.SW
							if wo >= Wo {
								continue
							}
							g := gf[(to*Ho+ho)*Wo+wo]
							if g == 0 {
								continue
							}
							sum += g * wf[kt*wsT+kh*wsH+kw]
						}
					}
				}
			}
			dxd[idx] = sum
		}
	})
	return dx
}

// Params implements Layer.
func (l *Conv3D) Params() []*Param { return []*Param{l.W, l.B} }
