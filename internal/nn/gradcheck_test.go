package nn

import (
	"math"
	"math/rand"
	"testing"

	"duo/internal/parallel"
	"duo/internal/tensor"
)

// lossOf runs x through l and returns a scalar loss (weighted sum of the
// output) so numeric and analytic gradients can be compared.
func lossOf(l Layer, x, w *tensor.Tensor) float64 {
	y, _ := l.Forward(x)
	return y.Dot(w)
}

// checkGrads verifies Backward against central finite differences at
// worker counts 1, 2, and 7, so the parallel backward paths are gradient-
// checked exactly like the sequential reference. The forward fan-out gate
// is lowered so even these tiny layers take the sharded code path.
func checkGrads(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	prevThreshold := parallelThreshold
	parallelThreshold = 0
	defer func() { parallelThreshold = prevThreshold }()
	for _, workers := range []int{1, 2, 7} {
		prev := parallel.SetWorkers(workers)
		checkGradsAt(t, l, x, tol, workers)
		parallel.SetWorkers(prev)
		if t.Failed() {
			return
		}
	}
}

// checkGradsAt is one gradcheck run at the active worker count.
func checkGradsAt(t *testing.T, l Layer, x *tensor.Tensor, tol float64, workers int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	y, cache := l.Forward(x)
	w := tensor.RandNormal(rng, 0, 1, y.Shape()...) // dLoss/dy
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	dx := l.Backward(cache, w)

	const h = 1e-5
	// Input gradient.
	for i := 0; i < x.Len(); i++ {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := lossOf(l, x, w)
		x.Data()[i] = orig - h
		down := lossOf(l, x, w)
		x.Data()[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-dx.Data()[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("workers=%d: input grad[%d]: analytic %g vs numeric %g", workers, i, dx.Data()[i], num)
		}
	}
	// Parameter gradients.
	for _, p := range l.Params() {
		for i := 0; i < p.Value.Len(); i++ {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + h
			up := lossOf(l, x, w)
			p.Value.Data()[i] = orig - h
			down := lossOf(l, x, w)
			p.Value.Data()[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-p.Grad.Data()[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("workers=%d: %s grad[%d]: analytic %g vs numeric %g", workers, p.Name, i, p.Grad.Data()[i], num)
			}
		}
	}
}

func TestLinearGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 5, 3)
	x := tensor.RandNormal(rng, 0, 1, 5)
	checkGrads(t, l, x, 1e-6)
}

func TestConv2DGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv2D(rng, 2, 3, 3, 2)
	x := tensor.RandNormal(rng, 0, 1, 2, 5, 5)
	checkGrads(t, l, x, 1e-5)
}

func TestConv3DGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv3D(rng, 2, 2, 3, 2)
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 4, 4)
	checkGrads(t, l, x, 1e-5)
}

func TestConv3DAsymmetricGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewConv3DFull(rng, 1, 2, [3]int{1, 3, 3}, [3]int{1, 2, 2}, [3]int{0, 1, 1})
	x := tensor.RandNormal(rng, 0, 1, 1, 3, 5, 5)
	checkGrads(t, l, x, 1e-5)
}

func TestReLUGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Keep values away from the kink at 0 so finite differences are valid.
	x := tensor.RandNormal(rng, 0, 1, 10).ApplyInPlace(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return 0.1
		}
		return v
	})
	checkGrads(t, ReLU{}, x, 1e-6)
}

func TestMaxPool3DGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := MaxPool3D{KT: 2, KH: 2, KW: 2}
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 4, 4)
	checkGrads(t, l, x, 1e-5)
}

func TestAvgPoolTimeGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := AvgPoolTime{K: 2}
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 3, 3)
	checkGrads(t, l, x, 1e-6)
}

func TestGlobalAvgPoolGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := tensor.RandNormal(rng, 0, 1, 3, 2, 4)
	checkGrads(t, GlobalAvgPool{}, x, 1e-6)
}

func TestSwapCTGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandNormal(rng, 0, 1, 3, 2, 2, 2)
	checkGrads(t, SwapCT{}, x, 1e-6)
}

func TestTimeDistributedGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := &TimeDistributed{Inner: NewConv2D(rng, 1, 2, 3, 1)}
	x := tensor.RandNormal(rng, 0, 1, 3, 1, 4, 4)
	checkGrads(t, l, x, 1e-5)
}

func TestResidualIdentityGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := &Residual{Inner: NewConv2D(rng, 2, 2, 3, 1)}
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 4)
	checkGrads(t, l, x, 1e-5)
}

func TestResidualProjGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := &Residual{
		Inner: NewConv2D(rng, 2, 3, 3, 1),
		Proj:  NewConv2D(rng, 2, 3, 1, 1),
	}
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 4)
	checkGrads(t, l, x, 1e-5)
}

func TestParallelGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := &Parallel{Branches: []Layer{
		NewSequential(Flatten{}, NewLinear(rng, 8, 3)),
		NewSequential(Flatten{}, NewLinear(rng, 8, 2)),
	}}
	x := tensor.RandNormal(rng, 0, 1, 2, 4)
	checkGrads(t, l, x, 1e-6)
}

func TestSubsampleTimeGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := SubsampleTime{K: 2}
	x := tensor.RandNormal(rng, 0, 1, 5, 2, 2)
	checkGrads(t, l, x, 1e-6)
}

func TestSequentialGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := NewSequential(
		NewConv2D(rng, 1, 2, 3, 1),
		ReLU{},
		Flatten{},
		NewLinear(rng, 2*4*4, 3),
	)
	x := tensor.RandNormal(rng, 0, 1, 1, 4, 4)
	checkGrads(t, l, x, 1e-5)
}

func TestScaleGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := tensor.RandNormal(rng, 0, 1, 6)
	checkGrads(t, Scale{Factor: 0.25}, x, 1e-8)
}

func TestLSTMGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := NewLSTM(rng, 3, 4)
	x := tensor.RandNormal(rng, 0, 1, 5, 3) // 5 timesteps
	checkGrads(t, l, x, 1e-5)
}

func TestLSTMSingleStepGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l := NewLSTM(rng, 2, 3)
	x := tensor.RandNormal(rng, 0, 1, 1, 2)
	checkGrads(t, l, x, 1e-5)
}

func TestChannelNormGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := NewChannelNorm(3)
	x := tensor.RandNormal(rng, 2, 1.5, 3, 4, 4)
	checkGrads(t, l, x, 1e-5)
}

// Coverage audit (pool.go, norm.go, lstm.go): MaxPool3D, AvgPoolTime,
// GlobalAvgPool, ChannelNorm, and LSTM all had gradchecks; Flatten was the
// one layer with none of its own (it was only exercised inside Sequential
// stacks).
func TestFlattenGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 4)
	checkGrads(t, Flatten{}, x, 1e-8)
}

// TestMaxPool3DKernelLargerThanInputGradcheck covers the kernel-clamp path
// (kernel bigger than the pooled dimensions collapses them to size 1).
func TestMaxPool3DKernelLargerThanInputGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	l := MaxPool3D{KT: 4, KH: 4, KW: 4}
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 3, 3)
	checkGrads(t, l, x, 1e-5)
}

// TestAvgPoolTimeKernelLargerThanInputGradcheck covers AvgPoolTime's
// window clamp (K larger than the temporal extent).
func TestAvgPoolTimeKernelLargerThanInputGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	l := AvgPoolTime{K: 5}
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 2, 2)
	checkGrads(t, l, x, 1e-6)
}
