package nn

import (
	"math"
	"math/rand"

	"duo/internal/tensor"
)

// HeInit fills t with He (Kaiming) normal initialization for the given
// fan-in, appropriate for ReLU networks.
func HeInit(rng *rand.Rand, t *tensor.Tensor, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	t.FillNormal(rng, 0, std)
}

// XavierInit fills t with Glorot uniform initialization.
func XavierInit(rng *rand.Rand, t *tensor.Tensor, fanIn, fanOut int) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	t.FillUniform(rng, -limit, limit)
}
