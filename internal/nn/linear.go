package nn

import (
	"fmt"
	"math/rand"

	"duo/internal/tensor"
)

// Linear is a fully-connected layer: y = W·x + b for rank-1 inputs.
type Linear struct {
	In, Out int
	W       *Param // shape [Out, In]
	B       *Param // shape [Out]
}

var _ Layer = (*Linear)(nil)

// NewLinear returns a Linear layer with He-initialized weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	w := tensor.New(out, in)
	HeInit(rng, w, in)
	return &Linear{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("linear%dx%d.W", out, in), w),
		B:   NewParam(fmt.Sprintf("linear%dx%d.B", out, in), tensor.New(out)),
	}
}

type linearCache struct{ x *tensor.Tensor }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() != 1 || x.Dim(0) != l.In {
		panic(fmt.Sprintf("nn: Linear(%d→%d) got input shape %v", l.In, l.Out, x.Shape()))
	}
	y := l.W.Value.MatVec(x)
	y.AddInPlace(l.B.Value)
	return y, &linearCache{x: x.Clone()}
}

// Backward implements Layer.
func (l *Linear) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	lc := c.(*linearCache)
	// dW[o,i] += g[o] * x[i]; db[o] += g[o]; dx[i] = Σ_o W[o,i] g[o].
	g := gradOut.Data()
	x := lc.x.Data()
	wd := l.W.Value.Data()
	wg := l.W.Grad.Data()
	bg := l.B.Grad.Data()
	dx := tensor.New(l.In)
	dxd := dx.Data()
	for o := 0; o < l.Out; o++ {
		go_ := g[o]
		bg[o] += go_
		row := wd[o*l.In : (o+1)*l.In]
		grow := wg[o*l.In : (o+1)*l.In]
		for i := 0; i < l.In; i++ {
			grow[i] += go_ * x[i]
			dxd[i] += row[i] * go_
		}
	}
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
