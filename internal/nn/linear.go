package nn

import (
	"fmt"
	"math/rand"

	"duo/internal/parallel"
	"duo/internal/tensor"
)

// Linear is a fully-connected layer: y = W·x + b for rank-1 inputs.
type Linear struct {
	In, Out int
	W       *Param // shape [Out, In]
	B       *Param // shape [Out]
}

var _ Layer = (*Linear)(nil)

// NewLinear returns a Linear layer with He-initialized weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	w := tensor.New(out, in)
	HeInit(rng, w, in)
	return &Linear{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("linear%dx%d.W", out, in), w),
		B:   NewParam(fmt.Sprintf("linear%dx%d.B", out, in), tensor.New(out)),
	}
}

type linearCache struct{ x *tensor.Tensor }

// Forward implements Layer. Output rows are sharded across workers; each
// row's dot product runs in the same ascending-index order as MatVec, so
// the result is bitwise-identical at every worker count.
func (l *Linear) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() != 1 || x.Dim(0) != l.In {
		panic(fmt.Sprintf("nn: Linear(%d→%d) got input shape %v", l.In, l.Out, x.Shape()))
	}
	workers := parallel.Workers()
	if workers <= 1 {
		y := l.W.Value.MatVec(x)
		y.AddInPlace(l.B.Value)
		return y, &linearCache{x: x.Clone()}
	}
	y := tensor.New(l.Out)
	yd, xd := y.Data(), x.Data()
	wd, bd := l.W.Value.Data(), l.B.Value.Data()
	parallel.ForN(workers, l.Out, func(_, os, oe int) {
		for o := os; o < oe; o++ {
			row := wd[o*l.In : (o+1)*l.In]
			s := 0.0
			for k, rv := range row {
				s += rv * xd[k]
			}
			yd[o] = s + bd[o]
		}
	})
	return y, &linearCache{x: x.Clone()}
}

// Backward implements Layer. With one worker it runs the reference scatter
// loop; with more it shards the weight/bias gradients over output rows
// (single writer per row) and gathers dx per input element in the same
// ascending-o order the scatter accumulates, keeping the result
// bitwise-identical (DESIGN.md §9).
func (l *Linear) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	lc := c.(*linearCache)
	// dW[o,i] += g[o] * x[i]; db[o] += g[o]; dx[i] = Σ_o W[o,i] g[o].
	g := gradOut.Data()
	x := lc.x.Data()
	wd := l.W.Value.Data()
	wg := l.W.Grad.Data()
	bg := l.B.Grad.Data()
	dx := tensor.New(l.In)
	dxd := dx.Data()
	workers := parallel.Workers()
	if workers <= 1 {
		for o := 0; o < l.Out; o++ {
			go_ := g[o]
			bg[o] += go_
			row := wd[o*l.In : (o+1)*l.In]
			grow := wg[o*l.In : (o+1)*l.In]
			for i := 0; i < l.In; i++ {
				grow[i] += go_ * x[i]
				dxd[i] += row[i] * go_
			}
		}
		return dx
	}
	parallel.ForN(workers, l.Out, func(_, os, oe int) {
		for o := os; o < oe; o++ {
			go_ := g[o]
			bg[o] += go_
			grow := wg[o*l.In : (o+1)*l.In]
			for i := 0; i < l.In; i++ {
				grow[i] += go_ * x[i]
			}
		}
	})
	parallel.ForN(workers, l.In, func(_, is, ie int) {
		for i := is; i < ie; i++ {
			s := 0.0
			for o := 0; o < l.Out; o++ {
				s += wd[o*l.In+i] * g[o]
			}
			dxd[i] = s
		}
	})
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
