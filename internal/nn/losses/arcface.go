package losses

import (
	"math"
	"math/rand"

	"duo/internal/mathx"
	"duo/internal/nn"
	"duo/internal/tensor"
)

// ArcFace is the additive angular margin loss (Deng et al., CVPR'19). It
// holds a learnable class-center matrix W ∈ R^{classes×dim}; each sample's
// embedding and its class centers are L2-normalized, the target class's
// angle is penalized by an additive margin m, logits are scaled by s, and
// softmax cross-entropy is applied.
type ArcFace struct {
	Classes int
	Dim     int
	ScaleS  float64
	MarginM float64
	W       *nn.Param
}

var _ MetricLoss = (*ArcFace)(nil)

// NewArcFace returns an ArcFace loss with Xavier-initialized class centers
// and the reference hyper-parameters s=16, m=0.3 (scaled down from the
// paper's face-recognition defaults to suit low-dimensional embeddings).
func NewArcFace(rng *rand.Rand, classes, dim int) *ArcFace {
	w := tensor.New(classes, dim)
	nn.XavierInit(rng, w, dim, classes)
	return &ArcFace{Classes: classes, Dim: dim, ScaleS: 16, MarginM: 0.3, W: nn.NewParam("arcface.W", w)}
}

// Name implements MetricLoss.
func (*ArcFace) Name() string { return "ArcFaceLoss" }

// Params implements MetricLoss.
func (a *ArcFace) Params() []*nn.Param { return []*nn.Param{a.W} }

// Loss implements MetricLoss.
func (a *ArcFace) Loss(embs []*tensor.Tensor, labels []int) (float64, []*tensor.Tensor) {
	grads := zeroGrads(embs)
	wgrad := tensor.New(a.W.Value.Shape()...)
	loss := 0.0
	const eps = 1e-7

	for s := range embs {
		x := embs[s]
		y := labels[s]
		nx := math.Max(x.L2(), eps)
		xhat := x.Scale(1 / nx)

		// cos θ_c for every class, with normalized rows of W.
		cos := make([]float64, a.Classes)
		wnorm := make([]float64, a.Classes)
		what := make([]*tensor.Tensor, a.Classes)
		for c := 0; c < a.Classes; c++ {
			row := tensor.From(a.W.Value.Data()[c*a.Dim:(c+1)*a.Dim], a.Dim)
			nw := math.Max(row.L2(), eps)
			wnorm[c] = nw
			what[c] = row.Scale(1 / nw)
			cos[c] = mathx.Clamp(what[c].Dot(xhat), -1+eps, 1-eps)
		}

		// Logits: s·cos(θ_y + m) for the target, s·cosθ_c otherwise.
		logits := make([]float64, a.Classes)
		dTargetdCos := 1.0
		for c := 0; c < a.Classes; c++ {
			if c == y {
				sin := math.Sqrt(1 - cos[c]*cos[c])
				logits[c] = a.ScaleS * (cos[c]*math.Cos(a.MarginM) - sin*math.Sin(a.MarginM))
				// d cos(θ+m)/d cosθ = cos m + sin m · cosθ / sinθ.
				dTargetdCos = math.Cos(a.MarginM) + math.Sin(a.MarginM)*cos[c]/math.Max(sin, eps)
			} else {
				logits[c] = a.ScaleS * cos[c]
			}
		}
		p := mathx.Softmax(logits)
		// Cross-entropy computed as lse(logits) − logits[y]: exact and
		// stable even when the softmax saturates.
		loss += mathx.LogSumExp(logits) - logits[y]

		// dL/dlogit_c = p_c − 1{c=y}; chain to cos, then to x and W.
		for c := 0; c < a.Classes; c++ {
			dLdLogit := p[c]
			if c == y {
				dLdLogit -= 1
			}
			dLdCos := dLdLogit * a.ScaleS
			if c == y {
				dLdCos *= dTargetdCos
			}
			// d cosθ/dx = (ŵ − cosθ·x̂)/‖x‖.
			gx := what[c].Clone().AddScaled(-cos[c], xhat).ScaleInPlace(dLdCos / nx)
			grads[s].AddInPlace(gx)
			// d cosθ/dw = (x̂ − cosθ·ŵ)/‖w‖.
			gw := xhat.Clone().AddScaled(-cos[c], what[c]).ScaleInPlace(dLdCos / wnorm[c])
			dst := wgrad.Data()[c*a.Dim : (c+1)*a.Dim]
			for i, v := range gw.Data() {
				dst[i] += v
			}
		}
	}
	inv := 1 / float64(len(embs))
	loss *= inv
	for _, g := range grads {
		g.ScaleInPlace(inv)
	}
	a.W.Grad.AddScaled(inv, wgrad)
	return loss, grads
}
