package losses

import (
	"math/rand"

	"duo/internal/mathx"
	"duo/internal/nn"
	"duo/internal/tensor"
)

// CrossEntropy is a plain softmax classification head: logits = W·x + b
// over a learnable class matrix, with softmax cross-entropy. It implements
// the classification pre-training stage real video backbones go through
// (Kinetics pre-training in the paper's victims) before metric fine-tuning.
type CrossEntropy struct {
	Classes int
	Dim     int
	W       *nn.Param // [Classes, Dim]
	B       *nn.Param // [Classes]
}

var _ MetricLoss = (*CrossEntropy)(nil)

// NewCrossEntropy returns a cross-entropy head with Xavier-initialized
// class weights.
func NewCrossEntropy(rng *rand.Rand, classes, dim int) *CrossEntropy {
	w := tensor.New(classes, dim)
	nn.XavierInit(rng, w, dim, classes)
	return &CrossEntropy{
		Classes: classes, Dim: dim,
		W: nn.NewParam("crossentropy.W", w),
		B: nn.NewParam("crossentropy.B", tensor.New(classes)),
	}
}

// Name implements MetricLoss.
func (*CrossEntropy) Name() string { return "CrossEntropy" }

// Params implements MetricLoss.
func (l *CrossEntropy) Params() []*nn.Param { return []*nn.Param{l.W, l.B} }

// Loss implements MetricLoss.
func (l *CrossEntropy) Loss(embs []*tensor.Tensor, labels []int) (float64, []*tensor.Tensor) {
	grads := zeroGrads(embs)
	wgrad := tensor.New(l.Classes, l.Dim)
	bgrad := tensor.New(l.Classes)
	loss := 0.0

	wd := l.W.Value.Data()
	for s, x := range embs {
		y := labels[s]
		logits := make([]float64, l.Classes)
		for c := 0; c < l.Classes; c++ {
			row := wd[c*l.Dim : (c+1)*l.Dim]
			acc := l.B.Value.Data()[c]
			for i, xv := range x.Data() {
				acc += row[i] * xv
			}
			logits[c] = acc
		}
		loss += mathx.LogSumExp(logits) - logits[y]
		p := mathx.Softmax(logits)
		for c := 0; c < l.Classes; c++ {
			d := p[c]
			if c == y {
				d -= 1
			}
			bgrad.Data()[c] += d
			row := wd[c*l.Dim : (c+1)*l.Dim]
			wrow := wgrad.Data()[c*l.Dim : (c+1)*l.Dim]
			for i, xv := range x.Data() {
				wrow[i] += d * xv
				grads[s].Data()[i] += d * row[i]
			}
		}
	}
	inv := 1 / float64(len(embs))
	loss *= inv
	for _, g := range grads {
		g.ScaleInPlace(inv)
	}
	l.W.Grad.AddScaled(inv, wgrad)
	l.B.Grad.AddScaled(inv, bgrad)
	return loss, grads
}

// Accuracy returns the fraction of embeddings the head classifies
// correctly (a pre-training diagnostic).
func (l *CrossEntropy) Accuracy(embs []*tensor.Tensor, labels []int) float64 {
	if len(embs) == 0 {
		return 0
	}
	wd := l.W.Value.Data()
	hits := 0
	for s, x := range embs {
		best, bi := 0.0, -1
		for c := 0; c < l.Classes; c++ {
			row := wd[c*l.Dim : (c+1)*l.Dim]
			acc := l.B.Value.Data()[c]
			for i, xv := range x.Data() {
				acc += row[i] * xv
			}
			if bi < 0 || acc > best {
				best, bi = acc, c
			}
		}
		if bi == labels[s] {
			hits++
		}
	}
	return float64(hits) / float64(len(embs))
}
