// Package losses implements the metric-learning objectives the paper trains
// victim and surrogate models with: Triplet (margin), ArcFace, Lifted
// Structure, and Angular loss, plus the ranked-list loss used for model
// stealing (§IV-B-1).
//
// Each loss consumes a batch of embeddings with integer labels and returns
// the scalar loss together with the gradient with respect to every
// embedding; the caller backpropagates those gradients through the
// feature-extractor network.
package losses

import (
	"math"

	"duo/internal/mathx"
	"duo/internal/nn"
	"duo/internal/tensor"
)

// MetricLoss scores a batch of embeddings against labels.
type MetricLoss interface {
	// Name returns the loss's identifier as used in experiment tables.
	Name() string
	// Loss returns the scalar loss and per-embedding gradients.
	Loss(embs []*tensor.Tensor, labels []int) (float64, []*tensor.Tensor)
	// Params returns learnable loss parameters (e.g. the ArcFace class
	// weight matrix); nil when the loss is parameter-free.
	Params() []*nn.Param
}

func zeroGrads(embs []*tensor.Tensor) []*tensor.Tensor {
	gs := make([]*tensor.Tensor, len(embs))
	for i, e := range embs {
		gs[i] = tensor.New(e.Shape()...)
	}
	return gs
}

// Triplet is the margin-based triplet loss Σ [D(a,p) − D(a,n) + γ]₊ with
// squared Euclidean D, summed over every in-batch triplet.
type Triplet struct{ Margin float64 }

var _ MetricLoss = Triplet{}

// Name implements MetricLoss.
func (Triplet) Name() string { return "Triplet" }

// Params implements MetricLoss.
func (Triplet) Params() []*nn.Param { return nil }

// Loss implements MetricLoss.
func (l Triplet) Loss(embs []*tensor.Tensor, labels []int) (float64, []*tensor.Tensor) {
	grads := zeroGrads(embs)
	loss := 0.0
	count := 0
	for a := range embs {
		for p := range embs {
			if p == a || labels[p] != labels[a] {
				continue
			}
			for n := range embs {
				if labels[n] == labels[a] {
					continue
				}
				dap := embs[a].SquaredDistance(embs[p])
				dan := embs[a].SquaredDistance(embs[n])
				v := dap - dan + l.Margin
				if v <= 0 {
					continue
				}
				loss += v
				count++
				// d(dap)/da = 2(a-p); d(dan)/da = 2(a-n).
				grads[a].AddScaled(2, embs[a].Sub(embs[p])).AddScaled(-2, embs[a].Sub(embs[n]))
				grads[p].AddScaled(-2, embs[a].Sub(embs[p]))
				grads[n].AddScaled(2, embs[a].Sub(embs[n]))
			}
		}
	}
	if count > 0 {
		inv := 1 / float64(count)
		loss *= inv
		for _, g := range grads {
			g.ScaleInPlace(inv)
		}
	}
	return loss, grads
}

// RankedList is the surrogate-stealing objective of §IV-B-1: given an
// anchor embedding and list embeddings in the victim's rank order, it
// enforces D(a, e_i) + γ ≤ D(a, e_j) for every ranked pair i < j.
//
// The paper prints the objective as arg max Σ_{j>i}[D(v,v_j)−D(v,v_i)+γ]₊;
// maximizing that hinge is equivalent to the standard formulation of
// minimizing Σ_{j>i}[D(v,v_i)−D(v,v_j)+γ]₊, which is what we implement.
type RankedList struct{ Margin float64 }

// Loss returns the loss and the gradients with respect to the anchor and
// every ranked embedding.
func (l RankedList) Loss(anchor *tensor.Tensor, ranked []*tensor.Tensor) (float64, *tensor.Tensor, []*tensor.Tensor) {
	ga := tensor.New(anchor.Shape()...)
	gs := zeroGrads(ranked)
	loss := 0.0
	count := 0
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			di := anchor.SquaredDistance(ranked[i])
			dj := anchor.SquaredDistance(ranked[j])
			v := di - dj + l.Margin
			if v <= 0 {
				continue
			}
			loss += v
			count++
			ga.AddScaled(2, anchor.Sub(ranked[i])).AddScaled(-2, anchor.Sub(ranked[j]))
			gs[i].AddScaled(-2, anchor.Sub(ranked[i]))
			gs[j].AddScaled(2, anchor.Sub(ranked[j]))
		}
	}
	if count > 0 {
		inv := 1 / float64(count)
		loss *= inv
		ga.ScaleInPlace(inv)
		for _, g := range gs {
			g.ScaleInPlace(inv)
		}
	}
	return loss, ga, gs
}

// Lifted is the lifted-structure loss (Oh Song et al., CVPR'16):
// for every positive pair (i,j),
//
//	ℓ = [ log( Σ_{k∈N(i)} e^{γ−D_ik} + Σ_{l∈N(j)} e^{γ−D_jl} ) + D_ij ]₊
//
// with Euclidean D, and the total loss is Σ ℓ² / (2|P|).
type Lifted struct{ Margin float64 }

var _ MetricLoss = Lifted{}

// Name implements MetricLoss.
func (Lifted) Name() string { return "LiftedLoss" }

// Params implements MetricLoss.
func (Lifted) Params() []*nn.Param { return nil }

// Loss implements MetricLoss.
func (l Lifted) Loss(embs []*tensor.Tensor, labels []int) (float64, []*tensor.Tensor) {
	grads := zeroGrads(embs)
	loss := 0.0
	pairs := 0

	dist := func(i, j int) float64 { return math.Max(embs[i].Distance(embs[j]), 1e-8) }
	// dD_ij/de_i = (e_i - e_j)/D_ij.
	addDistGrad := func(i, j int, w float64) {
		d := dist(i, j)
		grads[i].AddScaled(w/d, embs[i].Sub(embs[j]))
		grads[j].AddScaled(-w/d, embs[i].Sub(embs[j]))
	}

	for i := range embs {
		for j := i + 1; j < len(embs); j++ {
			if labels[i] != labels[j] {
				continue
			}
			pairs++
			// logsumexp over negatives of i and j.
			var terms []float64
			type negTerm struct{ a, b int }
			var whose []negTerm
			for k := range embs {
				if labels[k] != labels[i] {
					terms = append(terms, l.Margin-dist(i, k))
					whose = append(whose, negTerm{i, k})
				}
			}
			for k := range embs {
				if labels[k] != labels[j] {
					terms = append(terms, l.Margin-dist(j, k))
					whose = append(whose, negTerm{j, k})
				}
			}
			if len(terms) == 0 {
				continue
			}
			lse := mathx.LogSumExp(terms)
			inner := lse + dist(i, j)
			if inner <= 0 {
				continue
			}
			loss += inner * inner
			// d(inner²)/d· = 2·inner · d(inner)/d·.
			w := 2 * inner
			addDistGrad(i, j, w)
			// d lse / d D_ak = -softmax weight of that term.
			sm := mathx.Softmax(terms)
			for t, nt := range whose {
				addDistGrad(nt.a, nt.b, -w*sm[t])
			}
		}
	}
	if pairs > 0 {
		inv := 1 / (2 * float64(pairs))
		loss *= inv
		for _, g := range grads {
			g.ScaleInPlace(inv)
		}
	}
	return loss, grads
}

// Angular is the angular loss (Wang et al., ICCV'17) in its hinge form:
// for each triplet (a, p, n),
//
//	ℓ = [ ‖a−p‖² − 4·tan²(α)·‖n − (a+p)/2‖² ]₊
//
// averaged over active triplets.
type Angular struct {
	// AlphaDeg is the angle bound α in degrees (the reference
	// implementation uses 36–55°).
	AlphaDeg float64
}

var _ MetricLoss = Angular{}

// Name implements MetricLoss.
func (Angular) Name() string { return "AngularLoss" }

// Params implements MetricLoss.
func (Angular) Params() []*nn.Param { return nil }

// Loss implements MetricLoss.
func (l Angular) Loss(embs []*tensor.Tensor, labels []int) (float64, []*tensor.Tensor) {
	grads := zeroGrads(embs)
	tan := math.Tan(l.AlphaDeg * math.Pi / 180)
	c := 4 * tan * tan
	loss := 0.0
	count := 0
	for a := range embs {
		for p := range embs {
			if p == a || labels[p] != labels[a] {
				continue
			}
			for n := range embs {
				if labels[n] == labels[a] {
					continue
				}
				ap := embs[a].Sub(embs[p])
				mid := embs[a].Add(embs[p]).Scale(0.5)
				nm := embs[n].Sub(mid)
				v := ap.SquaredL2() - c*nm.SquaredL2()
				if v <= 0 {
					continue
				}
				loss += v
				count++
				// d‖a−p‖²/da = 2(a−p); d‖n−(a+p)/2‖²/da = −(n−mid).
				grads[a].AddScaled(2, ap).AddScaled(c, nm)
				grads[p].AddScaled(-2, ap).AddScaled(c, nm)
				grads[n].AddScaled(-2*c, nm)
			}
		}
	}
	if count > 0 {
		inv := 1 / float64(count)
		loss *= inv
		for _, g := range grads {
			g.ScaleInPlace(inv)
		}
	}
	return loss, grads
}
