package losses

import (
	"math"
	"math/rand"
	"testing"

	"duo/internal/tensor"
)

func randEmbs(seed int64, n, dim int) ([]*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	embs := make([]*tensor.Tensor, n)
	labels := make([]int, n)
	for i := range embs {
		embs[i] = tensor.RandNormal(rng, 0, 1, dim)
		labels[i] = i % 2
	}
	return embs, labels
}

// checkLossGrads compares analytic per-embedding gradients against central
// finite differences.
func checkLossGrads(t *testing.T, l MetricLoss, embs []*tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	_, grads := l.Loss(embs, labels)
	const h = 1e-5
	for s := range embs {
		for i := 0; i < embs[s].Len(); i++ {
			orig := embs[s].Data()[i]
			embs[s].Data()[i] = orig + h
			up, _ := l.Loss(embs, labels)
			embs[s].Data()[i] = orig - h
			down, _ := l.Loss(embs, labels)
			embs[s].Data()[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-grads[s].Data()[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: emb[%d] grad[%d]: analytic %g vs numeric %g",
					l.Name(), s, i, grads[s].Data()[i], num)
			}
		}
	}
}

func TestTripletZeroWhenSeparated(t *testing.T) {
	// Same-class embeddings identical, other class far away: loss must be 0.
	a := tensor.From([]float64{0, 0}, 2)
	b := tensor.From([]float64{0, 0}, 2)
	c := tensor.From([]float64{100, 100}, 2)
	loss, grads := Triplet{Margin: 0.2}.Loss([]*tensor.Tensor{a, b, c}, []int{0, 0, 1})
	if loss != 0 {
		t.Errorf("loss = %g, want 0", loss)
	}
	for _, g := range grads {
		if g.L2() != 0 {
			t.Error("nonzero grad for inactive triplets")
		}
	}
}

func TestTripletPositiveWhenViolated(t *testing.T) {
	// Negative closer than positive: loss must be positive.
	a := tensor.From([]float64{0, 0}, 2)
	p := tensor.From([]float64{3, 0}, 2)
	n := tensor.From([]float64{1, 0}, 2)
	loss, _ := Triplet{Margin: 0.2}.Loss([]*tensor.Tensor{a, p, n}, []int{0, 0, 1})
	if loss <= 0 {
		t.Errorf("loss = %g, want > 0", loss)
	}
}

func TestTripletGradcheck(t *testing.T) {
	embs, labels := randEmbs(1, 4, 3)
	checkLossGrads(t, Triplet{Margin: 0.5}, embs, labels, 1e-4)
}

func TestLiftedGradcheck(t *testing.T) {
	embs, labels := randEmbs(2, 4, 3)
	checkLossGrads(t, Lifted{Margin: 1.0}, embs, labels, 1e-4)
}

func TestAngularGradcheck(t *testing.T) {
	embs, labels := randEmbs(3, 4, 3)
	checkLossGrads(t, Angular{AlphaDeg: 40}, embs, labels, 1e-4)
}

func TestArcFaceGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	af := NewArcFace(rng, 3, 4)
	embs := make([]*tensor.Tensor, 3)
	labels := []int{0, 1, 2}
	for i := range embs {
		embs[i] = tensor.RandNormal(rng, 0, 1, 4)
	}
	checkLossGrads(t, af, embs, labels, 1e-3)
}

func TestArcFaceWeightGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	af := NewArcFace(rng, 2, 3)
	embs := []*tensor.Tensor{tensor.RandNormal(rng, 0, 1, 3), tensor.RandNormal(rng, 0, 1, 3)}
	labels := []int{0, 1}
	af.W.ZeroGrad()
	_, _ = af.Loss(embs, labels)
	analytic := af.W.Grad.Clone()
	const h = 1e-5
	for i := 0; i < af.W.Value.Len(); i++ {
		orig := af.W.Value.Data()[i]
		af.W.Value.Data()[i] = orig + h
		up, _ := af.Loss(embs, labels)
		af.W.Value.Data()[i] = orig - h
		down, _ := af.Loss(embs, labels)
		af.W.Value.Data()[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-analytic.Data()[i]) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("W grad[%d]: analytic %g vs numeric %g", i, analytic.Data()[i], num)
		}
	}
}

func TestArcFaceLossDecreasesWithTraining(t *testing.T) {
	// A few SGD steps on embeddings must reduce the loss.
	rng := rand.New(rand.NewSource(6))
	af := NewArcFace(rng, 2, 4)
	embs := []*tensor.Tensor{
		tensor.RandNormal(rng, 0, 1, 4), tensor.RandNormal(rng, 0, 1, 4),
		tensor.RandNormal(rng, 0, 1, 4), tensor.RandNormal(rng, 0, 1, 4),
	}
	labels := []int{0, 0, 1, 1}
	first, _ := af.Loss(embs, labels)
	cur := first
	for step := 0; step < 50; step++ {
		af.W.ZeroGrad()
		var grads []*tensor.Tensor
		cur, grads = af.Loss(embs, labels)
		for i := range embs {
			embs[i].AddScaled(-0.1, grads[i])
		}
		af.W.Value.AddScaled(-0.1, af.W.Grad)
	}
	if cur >= first {
		t.Errorf("loss did not decrease: %g → %g", first, cur)
	}
}

func TestRankedListZeroWhenOrdered(t *testing.T) {
	a := tensor.From([]float64{0}, 1)
	// Ranked list in increasing distance with gaps larger than margin.
	r := []*tensor.Tensor{
		tensor.From([]float64{1}, 1),
		tensor.From([]float64{5}, 1),
		tensor.From([]float64{10}, 1),
	}
	loss, ga, _ := RankedList{Margin: 0.2}.Loss(a, r)
	if loss != 0 {
		t.Errorf("loss = %g, want 0", loss)
	}
	if ga.L2() != 0 {
		t.Error("nonzero anchor grad for ordered list")
	}
}

func TestRankedListPenalizesInversions(t *testing.T) {
	a := tensor.From([]float64{0}, 1)
	// Item ranked first is farther than item ranked second: inversion.
	r := []*tensor.Tensor{
		tensor.From([]float64{10}, 1),
		tensor.From([]float64{1}, 1),
	}
	loss, _, _ := RankedList{Margin: 0.2}.Loss(a, r)
	if loss <= 0 {
		t.Errorf("loss = %g, want > 0", loss)
	}
}

func TestRankedListGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := tensor.RandNormal(rng, 0, 1, 3)
	r := []*tensor.Tensor{
		tensor.RandNormal(rng, 0, 1, 3),
		tensor.RandNormal(rng, 0, 1, 3),
		tensor.RandNormal(rng, 0, 1, 3),
	}
	l := RankedList{Margin: 0.5}
	_, ga, gs := l.Loss(a, r)
	const h = 1e-5
	lossAt := func() float64 { v, _, _ := l.Loss(a, r); return v }
	for i := 0; i < a.Len(); i++ {
		orig := a.Data()[i]
		a.Data()[i] = orig + h
		up := lossAt()
		a.Data()[i] = orig - h
		down := lossAt()
		a.Data()[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-ga.Data()[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("anchor grad[%d]: %g vs %g", i, ga.Data()[i], num)
		}
	}
	for s := range r {
		for i := 0; i < r[s].Len(); i++ {
			orig := r[s].Data()[i]
			r[s].Data()[i] = orig + h
			up := lossAt()
			r[s].Data()[i] = orig - h
			down := lossAt()
			r[s].Data()[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-gs[s].Data()[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("ranked[%d] grad[%d]: %g vs %g", s, i, gs[s].Data()[i], num)
			}
		}
	}
}

func TestLossNames(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []struct {
		l    MetricLoss
		want string
	}{
		{Triplet{}, "Triplet"},
		{Lifted{}, "LiftedLoss"},
		{Angular{}, "AngularLoss"},
		{NewArcFace(rng, 2, 2), "ArcFaceLoss"},
	}
	for _, c := range cases {
		if c.l.Name() != c.want {
			t.Errorf("Name() = %q, want %q", c.l.Name(), c.want)
		}
	}
}

func TestSingleClassBatchNoNaN(t *testing.T) {
	// All labels equal: no negatives, losses must return 0 without NaN.
	embs, _ := randEmbs(9, 3, 2)
	labels := []int{0, 0, 0}
	for _, l := range []MetricLoss{Triplet{Margin: 0.2}, Lifted{Margin: 1}, Angular{AlphaDeg: 40}} {
		loss, grads := l.Loss(embs, labels)
		if math.IsNaN(loss) || loss != 0 {
			t.Errorf("%s: loss = %g, want 0", l.Name(), loss)
		}
		for _, g := range grads {
			if g.L2() != 0 {
				t.Errorf("%s: nonzero grad", l.Name())
			}
		}
	}
}

func TestCrossEntropyGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ce := NewCrossEntropy(rng, 3, 4)
	embs := make([]*tensor.Tensor, 3)
	labels := []int{0, 1, 2}
	for i := range embs {
		embs[i] = tensor.RandNormal(rng, 0, 1, 4)
	}
	checkLossGrads(t, ce, embs, labels, 1e-4)
}

func TestCrossEntropyWeightGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ce := NewCrossEntropy(rng, 2, 3)
	embs := []*tensor.Tensor{tensor.RandNormal(rng, 0, 1, 3), tensor.RandNormal(rng, 0, 1, 3)}
	labels := []int{0, 1}
	for _, p := range ce.Params() {
		p.ZeroGrad()
	}
	_, _ = ce.Loss(embs, labels)
	analyticW := ce.W.Grad.Clone()
	analyticB := ce.B.Grad.Clone()
	const h = 1e-5
	check := func(val, grad *tensor.Tensor, name string) {
		for i := 0; i < val.Len(); i++ {
			orig := val.Data()[i]
			val.Data()[i] = orig + h
			up, _ := ce.Loss(embs, labels)
			val.Data()[i] = orig - h
			down, _ := ce.Loss(embs, labels)
			val.Data()[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-grad.Data()[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", name, i, grad.Data()[i], num)
			}
		}
	}
	check(ce.W.Value, analyticW, "W")
	check(ce.B.Value, analyticB, "B")
}

func TestCrossEntropyTrainsToPerfectAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ce := NewCrossEntropy(rng, 2, 4)
	// Two linearly separable clusters.
	var embs []*tensor.Tensor
	var labels []int
	for i := 0; i < 10; i++ {
		a := tensor.RandNormal(rng, -2, 0.3, 4)
		b := tensor.RandNormal(rng, 2, 0.3, 4)
		embs = append(embs, a, b)
		labels = append(labels, 0, 1)
	}
	for step := 0; step < 60; step++ {
		for _, p := range ce.Params() {
			p.ZeroGrad()
		}
		_, _ = ce.Loss(embs, labels)
		ce.W.Value.AddScaled(-0.5, ce.W.Grad)
		ce.B.Value.AddScaled(-0.5, ce.B.Grad)
	}
	if acc := ce.Accuracy(embs, labels); acc < 0.99 {
		t.Errorf("accuracy = %g after training separable data", acc)
	}
	if got := ce.Accuracy(nil, nil); got != 0 {
		t.Errorf("empty accuracy = %g", got)
	}
}
