package nn

import (
	"fmt"
	"math"
	"math/rand"

	"duo/internal/tensor"
)

// LSTM is a single-layer long short-term memory over a sequence of feature
// vectors: input [T, In] → final hidden state [Hidden]. It implements the
// temporal-feature stage of the paper's reference retrieval model (Fig. 1:
// "a long short-term memory and a stacked convolution neural network").
//
// Gate layout inside the packed weight matrices is [input, forget, cell,
// output] (each Hidden rows).
type LSTM struct {
	In, Hidden int
	// Wx maps the input to the four gates: shape [4·Hidden, In].
	Wx *Param
	// Wh maps the previous hidden state to the gates: [4·Hidden, Hidden].
	Wh *Param
	// B is the gate bias: [4·Hidden]. The forget-gate slice is
	// initialized to 1, the standard trick for gradient flow.
	B *Param
}

var _ Layer = (*LSTM)(nil)

// NewLSTM returns an LSTM with Xavier-initialized weights and forget-gate
// bias 1.
func NewLSTM(rng *rand.Rand, in, hidden int) *LSTM {
	wx := tensor.New(4*hidden, in)
	XavierInit(rng, wx, in, hidden)
	wh := tensor.New(4*hidden, hidden)
	XavierInit(rng, wh, hidden, hidden)
	b := tensor.New(4 * hidden)
	for i := hidden; i < 2*hidden; i++ {
		b.Data()[i] = 1 // forget gate
	}
	return &LSTM{
		In: in, Hidden: hidden,
		Wx: NewParam(fmt.Sprintf("lstm%dx%d.Wx", hidden, in), wx),
		Wh: NewParam(fmt.Sprintf("lstm%dx%d.Wh", hidden, in), wh),
		B:  NewParam(fmt.Sprintf("lstm%dx%d.B", hidden, in), b),
	}
}

// lstmStep caches one timestep's activations for BPTT.
type lstmStep struct {
	x          *tensor.Tensor // input [In]
	hPrev      *tensor.Tensor // hidden before this step [H]
	cPrev      *tensor.Tensor // cell before this step [H]
	i, f, g, o []float64      // gate activations [H] each
	c          *tensor.Tensor // cell after this step
	tanhC      []float64      // tanh(c) after this step
}

type lstmCache struct{ steps []*lstmStep }

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Forward implements Layer: x has shape [T, In]; the output is the final
// hidden state [Hidden].
func (l *LSTM) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: LSTM(in=%d) got input shape %v", l.In, x.Shape()))
	}
	T := x.Dim(0)
	H := l.Hidden
	h := tensor.New(H)
	c := tensor.New(H)
	cache := &lstmCache{steps: make([]*lstmStep, T)}

	wx, wh, b := l.Wx.Value.Data(), l.Wh.Value.Data(), l.B.Value.Data()

	for t := 0; t < T; t++ {
		xt := x.Slice(t)
		step := &lstmStep{
			x: xt.Clone(), hPrev: h.Clone(), cPrev: c.Clone(),
			i: make([]float64, H), f: make([]float64, H),
			g: make([]float64, H), o: make([]float64, H),
			tanhC: make([]float64, H),
		}
		// Gates: z = Wx·x + Wh·h + b, packed as [i f g o].
		newC := tensor.New(H)
		newH := tensor.New(H)
		for gate := 0; gate < 4; gate++ {
			for j := 0; j < H; j++ {
				row := gate*H + j
				acc := b[row]
				wxRow := wx[row*l.In : (row+1)*l.In]
				for k, xv := range xt.Data() {
					acc += wxRow[k] * xv
				}
				whRow := wh[row*H : (row+1)*H]
				for k, hv := range step.hPrev.Data() {
					acc += whRow[k] * hv
				}
				switch gate {
				case 0:
					step.i[j] = sigmoid(acc)
				case 1:
					step.f[j] = sigmoid(acc)
				case 2:
					step.g[j] = math.Tanh(acc)
				case 3:
					step.o[j] = sigmoid(acc)
				}
			}
		}
		for j := 0; j < H; j++ {
			cv := step.f[j]*step.cPrev.Data()[j] + step.i[j]*step.g[j]
			newC.Data()[j] = cv
			step.tanhC[j] = math.Tanh(cv)
			newH.Data()[j] = step.o[j] * step.tanhC[j]
		}
		step.c = newC.Clone()
		h, c = newH, newC
		cache.steps[t] = step
	}
	return h, cache
}

// Backward implements Layer with full backpropagation through time.
func (l *LSTM) Backward(cacheI Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	cache := cacheI.(*lstmCache)
	T := len(cache.steps)
	H := l.Hidden
	dx := tensor.New(T, l.In)

	wx, wh := l.Wx.Value.Data(), l.Wh.Value.Data()
	gwx, gwh, gb := l.Wx.Grad.Data(), l.Wh.Grad.Data(), l.B.Grad.Data()

	dh := gradOut.Clone().Data()
	dc := make([]float64, H)

	for t := T - 1; t >= 0; t-- {
		st := cache.steps[t]
		dhPrev := make([]float64, H)
		dcPrev := make([]float64, H)
		// Per-gate pre-activation gradients.
		dz := make([]float64, 4*H)
		for j := 0; j < H; j++ {
			// h = o · tanh(c)
			do := dh[j] * st.tanhC[j]
			dcj := dc[j] + dh[j]*st.o[j]*(1-st.tanhC[j]*st.tanhC[j])
			// c = f·cPrev + i·g
			di := dcj * st.g[j]
			df := dcj * st.cPrev.Data()[j]
			dg := dcj * st.i[j]
			dcPrev[j] = dcj * st.f[j]
			// Chain through the gate nonlinearities.
			dz[0*H+j] = di * st.i[j] * (1 - st.i[j])
			dz[1*H+j] = df * st.f[j] * (1 - st.f[j])
			dz[2*H+j] = dg * (1 - st.g[j]*st.g[j])
			dz[3*H+j] = do * st.o[j] * (1 - st.o[j])
		}
		// Accumulate parameter gradients and input/hidden gradients.
		dxt := dx.Slice(t).Data()
		for row := 0; row < 4*H; row++ {
			d := dz[row]
			if d == 0 {
				continue
			}
			gb[row] += d
			wxRow := wx[row*l.In : (row+1)*l.In]
			gwxRow := gwx[row*l.In : (row+1)*l.In]
			for k, xv := range st.x.Data() {
				gwxRow[k] += d * xv
				dxt[k] += d * wxRow[k]
			}
			whRow := wh[row*H : (row+1)*H]
			gwhRow := gwh[row*H : (row+1)*H]
			for k, hv := range st.hPrev.Data() {
				gwhRow[k] += d * hv
				dhPrev[k] += d * whRow[k]
			}
		}
		dh = dhPrev
		dc = dcPrev
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
