// Package nn is a minimal from-scratch neural-network layer library with
// manual reverse-mode differentiation. It provides the convolutional video
// backbones (C3D, I3D, TPN, SlowFast, ResNet analogues) that stand in for
// the paper's PyTorch models.
//
// Every Layer's Forward returns an output and an opaque Cache capturing the
// state needed by Backward. Caches are per-call, so several forward passes
// can be in flight at once (needed by batch metric losses, which backprop a
// whole batch of embeddings through shared weights).
package nn

import (
	"fmt"

	"duo/internal/tensor"
)

// Cache carries per-forward state from Forward to Backward.
type Cache interface{}

// Param is a trainable tensor with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and a matching zero gradient.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad resets the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module.
//
// Forward computes the output for x and a cache for the backward pass.
// Backward consumes that cache and the gradient of the loss with respect to
// the layer output, accumulates parameter gradients, and returns the
// gradient with respect to the layer input.
type Layer interface {
	Forward(x *tensor.Tensor) (*tensor.Tensor, Cache)
	Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers, feeding each one's output to the next.
type Sequential struct {
	Layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential returns a Sequential over the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

type seqCache struct{ caches []Cache }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	caches := make([]Cache, len(s.Layers))
	for i, l := range s.Layers {
		x, caches[i] = l.Forward(x)
	}
	return x, &seqCache{caches: caches}
}

// Backward implements Layer.
func (s *Sequential) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	sc, ok := c.(*seqCache)
	if !ok {
		panic(fmt.Sprintf("nn: Sequential.Backward got cache of type %T", c))
	}
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(sc.caches[i], gradOut)
	}
	return gradOut
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ReLU applies max(0, x) elementwise.
type ReLU struct{}

var _ Layer = ReLU{}

type reluCache struct{ mask []bool }

// Forward implements Layer.
func (ReLU) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	out := x.Clone()
	mask := make([]bool, out.Len())
	d := out.Data()
	for i, v := range d {
		if v > 0 {
			mask[i] = true
		} else {
			d[i] = 0
		}
	}
	return out, &reluCache{mask: mask}
}

// Backward implements Layer.
func (ReLU) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	rc := c.(*reluCache)
	grad := gradOut.Clone()
	d := grad.Data()
	for i := range d {
		if !rc.mask[i] {
			d[i] = 0
		}
	}
	return grad
}

// Params implements Layer.
func (ReLU) Params() []*Param { return nil }

// Flatten reshapes any input to rank 1. Backward restores the input shape.
type Flatten struct{}

var _ Layer = Flatten{}

type flattenCache struct{ shape []int }

// Forward implements Layer.
func (Flatten) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	return x.Flatten().Clone(), &flattenCache{shape: x.Shape()}
}

// Backward implements Layer.
func (Flatten) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	fc := c.(*flattenCache)
	return gradOut.Reshape(fc.shape...).Clone()
}

// Params implements Layer.
func (Flatten) Params() []*Param { return nil }

// Scale multiplies the input by a fixed constant (no parameters). It is
// used to normalize pixel ranges at model entry.
type Scale struct{ Factor float64 }

var _ Layer = Scale{}

// Forward implements Layer.
func (s Scale) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	return x.Scale(s.Factor), nil
}

// Backward implements Layer.
func (s Scale) Backward(_ Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Scale(s.Factor)
}

// Params implements Layer.
func (Scale) Params() []*Param { return nil }
