package nn

import (
	"math"
	"math/rand"
	"testing"

	"duo/internal/tensor"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 2)
	y, _ := l.Forward(tensor.New(4))
	if y.Rank() != 1 || y.Dim(0) != 2 {
		t.Errorf("output shape %v", y.Shape())
	}
}

func TestLinearKnownValues(t *testing.T) {
	l := &Linear{In: 2, Out: 1,
		W: NewParam("W", tensor.From([]float64{2, 3}, 1, 2)),
		B: NewParam("B", tensor.From([]float64{1}, 1)),
	}
	y, _ := l.Forward(tensor.From([]float64{10, 100}, 2))
	if y.At(0) != 321 {
		t.Errorf("y = %g, want 321", y.At(0))
	}
}

func TestConv2DOutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2D(rng, 3, 8, 3, 2) // pad 1
	y, _ := l.Forward(tensor.New(3, 12, 12))
	want := []int{8, 6, 6}
	got := y.Shape()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out shape %v, want %v", got, want)
		}
	}
}

func TestConv3DOutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv3D(rng, 3, 4, 3, 2)
	y, _ := l.Forward(tensor.New(3, 8, 12, 12))
	want := []int{4, 4, 6, 6}
	for i, w := range want {
		if y.Dim(i) != w {
			t.Fatalf("out shape %v, want %v", y.Shape(), want)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A single 1x1 kernel with weight 1 and bias 0 must be the identity.
	l := &Conv2D{InC: 1, OutC: 1, KH: 1, KW: 1, SH: 1, SW: 1,
		W: NewParam("W", tensor.From([]float64{1}, 1, 1, 1, 1)),
		B: NewParam("B", tensor.New(1)),
	}
	x := tensor.From([]float64{1, 2, 3, 4}, 1, 2, 2)
	y, _ := l.Forward(x)
	if !y.Equal(x, 0) {
		t.Errorf("identity conv: %v", y)
	}
}

func TestMaxPoolValues(t *testing.T) {
	l := MaxPool3D{KT: 1, KH: 2, KW: 2}
	x := tensor.From([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	y, _ := l.Forward(x)
	if y.Len() != 1 || y.Data()[0] != 4 {
		t.Errorf("maxpool = %v", y)
	}
}

func TestGlobalAvgPoolValues(t *testing.T) {
	x := tensor.From([]float64{1, 3, 10, 30}, 2, 2)
	y, _ := GlobalAvgPool{}.Forward(x)
	if y.At(0) != 2 || y.At(1) != 20 {
		t.Errorf("gap = %v", y)
	}
}

func TestSwapCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandNormal(rng, 0, 1, 3, 2, 4, 5)
	y, _ := SwapCT{}.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 3 {
		t.Fatalf("swap shape %v", y.Shape())
	}
	z, _ := SwapCT{}.Forward(y)
	if !z.Equal(x, 0) {
		t.Error("SwapCT twice is not identity")
	}
	// Element correspondence.
	if x.At(1, 0, 2, 3) != y.At(0, 1, 2, 3) {
		t.Error("SwapCT misplaces elements")
	}
}

func TestSubsampleTimeKeepsEveryKth(t *testing.T) {
	x := tensor.From([]float64{0, 1, 2, 3, 4}, 5, 1)
	y, _ := SubsampleTime{K: 2}.Forward(x)
	if y.Dim(0) != 3 || y.At(0, 0) != 0 || y.At(1, 0) != 2 || y.At(2, 0) != 4 {
		t.Errorf("subsample = %v", y)
	}
}

func TestParamZeroGrad(t *testing.T) {
	p := NewParam("p", tensor.From([]float64{1, 2}, 2))
	p.Grad.Fill(5)
	p.ZeroGrad()
	if p.Grad.Sum() != 0 {
		t.Error("ZeroGrad did not clear gradient")
	}
}

func TestSequentialParamsCollectsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSequential(NewLinear(rng, 2, 2), ReLU{}, NewLinear(rng, 2, 1))
	if got := len(s.Params()); got != 4 {
		t.Errorf("Params() len = %d, want 4 (2 layers × W,B)", got)
	}
}

func TestMultipleForwardsIndependentCaches(t *testing.T) {
	// Two in-flight forwards through the same layer must backprop correctly
	// with their own caches (needed by batch metric losses).
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(rng, 3, 2)
	x1 := tensor.RandNormal(rng, 0, 1, 3)
	x2 := tensor.RandNormal(rng, 0, 1, 3)
	_, c1 := l.Forward(x1)
	_, c2 := l.Forward(x2)
	g := tensor.From([]float64{1, 0}, 2)
	dx1 := l.Backward(c1, g)
	dx2 := l.Backward(c2, g)
	// dx depends only on W, so both must equal W row 0.
	w0 := tensor.From(l.W.Value.Data()[:3], 3)
	if !dx1.Equal(w0, 1e-12) || !dx2.Equal(w0, 1e-12) {
		t.Error("independent caches broken")
	}
	// Param grads accumulate across both backward passes:
	// dW[0,i] = x1[i] + x2[i].
	wantG := x1.Add(x2)
	gotG := tensor.From(l.W.Grad.Data()[:3], 3)
	if !gotG.Equal(wantG, 1e-12) {
		t.Errorf("accumulated grad = %v, want %v", gotG, wantG)
	}
}

func TestLSTMShapesAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	l := NewLSTM(rng, 4, 6)
	x := tensor.RandNormal(rng, 0, 1, 8, 4)
	y1, _ := l.Forward(x)
	y2, _ := l.Forward(x)
	if y1.Rank() != 1 || y1.Dim(0) != 6 {
		t.Fatalf("LSTM output shape %v", y1.Shape())
	}
	if !y1.Equal(y2, 0) {
		t.Error("LSTM forward not deterministic")
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewLSTM(rng, 2, 3)
	b := l.B.Value.Data()
	for j := 3; j < 6; j++ { // forget-gate slice
		if b[j] != 1 {
			t.Errorf("forget bias[%d] = %g, want 1", j, b[j])
		}
	}
	if b[0] != 0 || b[6] != 0 {
		t.Error("non-forget biases should start at 0")
	}
}

func TestLSTMIsOrderSensitive(t *testing.T) {
	// Reversing the input sequence must change the final hidden state —
	// the layer actually integrates temporal order.
	rng := rand.New(rand.NewSource(22))
	l := NewLSTM(rng, 3, 4)
	x := tensor.RandNormal(rng, 0, 1, 6, 3)
	rev := tensor.New(6, 3)
	for t2 := 0; t2 < 6; t2++ {
		rev.Slice(t2).CopyFrom(x.Slice(5 - t2))
	}
	a, _ := l.Forward(x)
	bwd, _ := l.Forward(rev)
	if a.Equal(bwd, 1e-9) {
		t.Error("LSTM ignores temporal order")
	}
}

func TestChannelNormStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	l := NewChannelNorm(2)
	x := tensor.RandNormal(rng, 5, 3, 2, 8, 8)
	y, _ := l.Forward(x)
	for c := 0; c < 2; c++ {
		plane := y.Slice(c)
		if m := plane.Mean(); math.Abs(m) > 1e-9 {
			t.Errorf("channel %d mean = %g, want 0", c, m)
		}
		variance := 0.0
		for _, v := range plane.Data() {
			variance += v * v
		}
		variance /= float64(plane.Len())
		if math.Abs(variance-1) > 1e-3 {
			t.Errorf("channel %d var = %g, want 1", c, variance)
		}
	}
}

func TestChannelNormGainBias(t *testing.T) {
	l := NewChannelNorm(1)
	l.Gain.Value.Set(2, 0)
	l.Bias.Value.Set(10, 0)
	x := tensor.From([]float64{-1, 1}, 1, 2)
	y, _ := l.Forward(x)
	// Normalized to ±1, then ×2 + 10.
	if math.Abs(y.At(0, 0)-8) > 1e-3 || math.Abs(y.At(0, 1)-12) > 1e-3 {
		t.Errorf("y = %v", y)
	}
}
