package nn

import (
	"fmt"
	"math"

	"duo/internal/tensor"
)

// ChannelNorm normalizes each channel's plane (all dimensions after the
// first) to zero mean and unit variance, then applies a learnable
// per-channel gain and bias. It is the batch-free normalization suited to
// this repository's sample-at-a-time training (batch statistics would be
// degenerate with batch size 1).
type ChannelNorm struct {
	C    int
	Eps  float64
	Gain *Param // [C], initialized to 1
	Bias *Param // [C], initialized to 0
}

var _ Layer = (*ChannelNorm)(nil)

// NewChannelNorm returns a ChannelNorm over c channels.
func NewChannelNorm(c int) *ChannelNorm {
	gain := tensor.New(c)
	gain.Fill(1)
	return &ChannelNorm{
		C:    c,
		Eps:  1e-5,
		Gain: NewParam(fmt.Sprintf("channelnorm%d.gain", c), gain),
		Bias: NewParam(fmt.Sprintf("channelnorm%d.bias", c), tensor.New(c)),
	}
}

type channelNormCache struct {
	inShape []int
	xhat    *tensor.Tensor // normalized input
	invStd  []float64      // per channel
}

// Forward implements Layer.
func (l *ChannelNorm) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() < 2 || x.Dim(0) != l.C {
		panic(fmt.Sprintf("nn: ChannelNorm(%d) got input shape %v", l.C, x.Shape()))
	}
	out := x.Clone()
	xhat := tensor.New(x.Shape()...)
	invStd := make([]float64, l.C)
	g, b := l.Gain.Value.Data(), l.Bias.Value.Data()
	for c := 0; c < l.C; c++ {
		plane := x.Slice(c)
		mu := plane.Mean()
		variance := 0.0
		for _, v := range plane.Data() {
			d := v - mu
			variance += d * d
		}
		variance /= float64(plane.Len())
		inv := 1 / math.Sqrt(variance+l.Eps)
		invStd[c] = inv
		xh := xhat.Slice(c).Data()
		dst := out.Slice(c).Data()
		for i, v := range plane.Data() {
			xh[i] = (v - mu) * inv
			dst[i] = g[c]*xh[i] + b[c]
		}
	}
	return out, &channelNormCache{inShape: x.Shape(), xhat: xhat, invStd: invStd}
}

// Backward implements Layer.
func (l *ChannelNorm) Backward(cacheI Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	cache := cacheI.(*channelNormCache)
	dx := tensor.New(cache.inShape...)
	g := l.Gain.Value.Data()
	gg, gb := l.Gain.Grad.Data(), l.Bias.Grad.Data()
	for c := 0; c < l.C; c++ {
		dy := gradOut.Slice(c).Data()
		xh := cache.xhat.Slice(c).Data()
		n := float64(len(dy))
		var sumDy, sumDyXh float64
		for i, d := range dy {
			sumDy += d
			sumDyXh += d * xh[i]
			gg[c] += d * xh[i]
			gb[c] += d
		}
		// dL/dx = g·invStd · (dy − mean(dy) − x̂·mean(dy·x̂)).
		k := g[c] * cache.invStd[c]
		meanDy := sumDy / n
		meanDyXh := sumDyXh / n
		dst := dx.Slice(c).Data()
		for i, d := range dy {
			dst[i] = k * (d - meanDy - xh[i]*meanDyXh)
		}
	}
	return dx
}

// Params implements Layer.
func (l *ChannelNorm) Params() []*Param { return []*Param{l.Gain, l.Bias} }
