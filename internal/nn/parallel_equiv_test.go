package nn

import (
	"math/rand"
	"testing"

	"duo/internal/parallel"
	"duo/internal/tensor"
)

// forceParallelThreshold lowers the forward fan-out gate so tiny test
// layers exercise the sharded path, restoring it afterwards.
func forceParallelThreshold(t *testing.T) {
	t.Helper()
	prev := parallelThreshold
	parallelThreshold = 0
	t.Cleanup(func() { parallelThreshold = prev })
}

// sparsifyGrad zeroes a fraction of the upstream gradient so the g==0
// skip branch — which the parallel backward must replicate exactly — is
// exercised.
func sparsifyGrad(rng *rand.Rand, g *tensor.Tensor) {
	d := g.Data()
	for i := range d {
		if rng.Intn(3) == 0 {
			d[i] = 0
		}
	}
}

// layerOutputs runs forward+backward at the given worker count and
// returns (y, dx, param grads) for bitwise comparison.
func layerOutputs(l Layer, x, g *tensor.Tensor, workers int) (y, dx *tensor.Tensor, grads []*tensor.Tensor) {
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	y, cache := l.Forward(x)
	dx = l.Backward(cache, g)
	for _, p := range l.Params() {
		grads = append(grads, p.Grad.Clone())
	}
	return y, dx, grads
}

// expectBitwiseEqual fails on the first float that differs between the
// sequential (workers=1) and parallel runs.
func expectBitwiseEqual(t *testing.T, name string, workers int, want, got *tensor.Tensor) {
	t.Helper()
	wd, gd := want.Data(), got.Data()
	if len(wd) != len(gd) {
		t.Fatalf("%s workers=%d: length %d vs %d", name, workers, len(gd), len(wd))
	}
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("%s workers=%d: element %d = %v, sequential %v (not bitwise identical)",
				name, workers, i, gd[i], wd[i])
		}
	}
}

// checkLayerEquivalence compares forward output, input gradient, and every
// parameter gradient at worker counts 2 and 7 against the sequential
// reference.
func checkLayerEquivalence(t *testing.T, name string, l Layer, x *tensor.Tensor, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	yRef, cache := func() (*tensor.Tensor, Cache) {
		prev := parallel.SetWorkers(1)
		defer parallel.SetWorkers(prev)
		return l.Forward(x)
	}()
	g := tensor.RandNormal(rng, 0, 1, yRef.Shape()...)
	sparsifyGrad(rng, g)
	_ = cache

	wantY, wantDX, wantGrads := layerOutputs(l, x, g, 1)
	for _, w := range []int{2, 7} {
		gotY, gotDX, gotGrads := layerOutputs(l, x, g, w)
		expectBitwiseEqual(t, name+" forward", w, wantY, gotY)
		expectBitwiseEqual(t, name+" dx", w, wantDX, gotDX)
		for i := range wantGrads {
			expectBitwiseEqual(t, name+" "+l.Params()[i].Name, w, wantGrads[i], gotGrads[i])
		}
	}
}

func TestConv2DParallelEquivalence(t *testing.T) {
	forceParallelThreshold(t)
	rng := rand.New(rand.NewSource(31))
	// OutC=3 doesn't divide 2, and 7 workers exceed the filter count; the
	// 9×9 input doesn't shard evenly either.
	l := NewConv2D(rng, 2, 3, 3, 2)
	x := tensor.RandNormal(rng, 0, 1, 2, 9, 9)
	checkLayerEquivalence(t, "conv2d", l, x, 101)
}

func TestConv2DParallelEquivalenceStride1(t *testing.T) {
	forceParallelThreshold(t)
	rng := rand.New(rand.NewSource(32))
	l := NewConv2D(rng, 3, 5, 3, 1)
	x := tensor.RandNormal(rng, 0, 1, 3, 7, 5)
	checkLayerEquivalence(t, "conv2d-s1", l, x, 102)
}

func TestConv3DParallelEquivalence(t *testing.T) {
	forceParallelThreshold(t)
	rng := rand.New(rand.NewSource(33))
	l := NewConv3D(rng, 2, 3, 3, 2)
	x := tensor.RandNormal(rng, 0, 1, 2, 5, 5, 5)
	checkLayerEquivalence(t, "conv3d", l, x, 103)
}

func TestConv3DParallelEquivalenceAsymmetric(t *testing.T) {
	forceParallelThreshold(t)
	rng := rand.New(rand.NewSource(34))
	l := NewConv3DFull(rng, 1, 2, [3]int{1, 3, 3}, [3]int{1, 2, 2}, [3]int{0, 1, 1})
	x := tensor.RandNormal(rng, 0, 1, 1, 3, 7, 7)
	checkLayerEquivalence(t, "conv3d-asym", l, x, 104)
}

func TestConv3DParallelEquivalenceSingleFrame(t *testing.T) {
	// Degenerate temporal depth (one frame): shards far outnumber the
	// useful temporal extent.
	forceParallelThreshold(t)
	rng := rand.New(rand.NewSource(35))
	l := NewConv3DFull(rng, 2, 2, [3]int{1, 3, 3}, [3]int{1, 1, 1}, [3]int{0, 1, 1})
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 6, 6)
	checkLayerEquivalence(t, "conv3d-1frame", l, x, 105)
}

func TestLinearParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	// 5 outputs across 2 and 7 workers: uneven shards and empty shards.
	l := NewLinear(rng, 13, 5)
	x := tensor.RandNormal(rng, 0, 1, 13)
	checkLayerEquivalence(t, "linear", l, x, 106)
}

func TestLinearParallelEquivalenceWide(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	l := NewLinear(rng, 64, 31)
	x := tensor.RandNormal(rng, 0, 1, 64)
	checkLayerEquivalence(t, "linear-wide", l, x, 107)
}

// TestParallelGradAccumulation checks that the parallel backward
// accumulates into non-zero parameter gradients exactly like the
// sequential one (two consecutive backward passes without ZeroGrad).
func TestParallelGradAccumulation(t *testing.T) {
	forceParallelThreshold(t)
	rng := rand.New(rand.NewSource(38))
	mk := func() (*Conv2D, *tensor.Tensor, *tensor.Tensor) {
		r := rand.New(rand.NewSource(40))
		l := NewConv2D(r, 2, 3, 3, 1)
		x := tensor.RandNormal(r, 0, 1, 2, 6, 6)
		return l, x, nil
	}
	lSeq, x, _ := mk()
	lPar, _, _ := mk()
	ySeq, cSeq := func() (*tensor.Tensor, Cache) {
		prev := parallel.SetWorkers(1)
		defer parallel.SetWorkers(prev)
		return lSeq.Forward(x)
	}()
	g := tensor.RandNormal(rng, 0, 1, ySeq.Shape()...)

	prev := parallel.SetWorkers(1)
	lSeq.Backward(cSeq, g)
	lSeq.Backward(cSeq, g) // accumulate twice
	parallel.SetWorkers(7)
	_, cPar := lPar.Forward(x)
	lPar.Backward(cPar, g)
	lPar.Backward(cPar, g)
	parallel.SetWorkers(prev)

	for i := range lSeq.Params() {
		expectBitwiseEqual(t, "accumulated "+lSeq.Params()[i].Name, 7,
			lSeq.Params()[i].Grad, lPar.Params()[i].Grad)
	}
}
