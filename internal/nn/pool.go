package nn

import (
	"fmt"
	"math"

	"duo/internal/tensor"
)

// MaxPool3D applies max pooling with kernel K and stride K (non-overlapping)
// over the [T,H,W] dimensions of a [C,T,H,W] input. Dimensions smaller than
// the kernel are pooled fully.
type MaxPool3D struct {
	KT, KH, KW int
}

var _ Layer = MaxPool3D{}

type maxPoolCache struct {
	inShape []int
	argmax  []int // flat input index of each output element's max
}

func poolOut(in, k int) int {
	if in < k {
		return 1
	}
	return in / k
}

// Forward implements Layer.
func (l MaxPool3D) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool3D got input shape %v", x.Shape()))
	}
	in := x.Shape()
	C, T, H, W := in[0], in[1], in[2], in[3]
	kt, kh, kw := min(l.KT, T), min(l.KH, H), min(l.KW, W)
	To, Ho, Wo := poolOut(T, kt), poolOut(H, kh), poolOut(W, kw)
	out := tensor.New(C, To, Ho, Wo)
	arg := make([]int, out.Len())
	xd, od := x.Data(), out.Data()
	xsC, xsT, xsH := T*H*W, H*W, W

	oi := 0
	for c := 0; c < C; c++ {
		for to := 0; to < To; to++ {
			for ho := 0; ho < Ho; ho++ {
				for wo := 0; wo < Wo; wo++ {
					best := math.Inf(-1)
					bi := -1
					for dt := 0; dt < kt; dt++ {
						for dh := 0; dh < kh; dh++ {
							for dw := 0; dw < kw; dw++ {
								idx := c*xsC + (to*kt+dt)*xsT + (ho*kh+dh)*xsH + wo*kw + dw
								if xd[idx] > best {
									best = xd[idx]
									bi = idx
								}
							}
						}
					}
					od[oi] = best
					arg[oi] = bi
					oi++
				}
			}
		}
	}
	return out, &maxPoolCache{inShape: in, argmax: arg}
}

// Backward implements Layer.
func (l MaxPool3D) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	mc := c.(*maxPoolCache)
	dx := tensor.New(mc.inShape...)
	dxd := dx.Data()
	for oi, g := range gradOut.Data() {
		dxd[mc.argmax[oi]] += g
	}
	return dx
}

// Params implements Layer.
func (MaxPool3D) Params() []*Param { return nil }

// AvgPoolTime averages the temporal (T) dimension of a [C,T,H,W] input with
// window/stride k, producing [C,T/k,H,W]. Used by the temporal-pyramid and
// slow-pathway models.
type AvgPoolTime struct{ K int }

var _ Layer = AvgPoolTime{}

type avgPoolTimeCache struct {
	inShape []int
	k       int
}

// Forward implements Layer.
func (l AvgPoolTime) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: AvgPoolTime got input shape %v", x.Shape()))
	}
	in := x.Shape()
	C, T, H, W := in[0], in[1], in[2], in[3]
	k := min(l.K, T)
	To := poolOut(T, k)
	out := tensor.New(C, To, H, W)
	xd, od := x.Data(), out.Data()
	xsC, xsT := T*H*W, H*W
	osC := To * H * W
	inv := 1 / float64(k)
	for c := 0; c < C; c++ {
		for to := 0; to < To; to++ {
			for dt := 0; dt < k; dt++ {
				src := xd[c*xsC+(to*k+dt)*xsT : c*xsC+(to*k+dt+1)*xsT]
				dst := od[c*osC+to*xsT : c*osC+(to+1)*xsT]
				for i, v := range src {
					dst[i] += v * inv
				}
			}
		}
	}
	return out, &avgPoolTimeCache{inShape: in, k: k}
}

// Backward implements Layer.
func (l AvgPoolTime) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	ac := c.(*avgPoolTimeCache)
	in := ac.inShape
	C, T, H, W := in[0], in[1], in[2], in[3]
	k := ac.k
	To := poolOut(T, k)
	dx := tensor.New(in...)
	dxd, gd := dx.Data(), gradOut.Data()
	xsC, xsT := T*H*W, H*W
	osC := To * H * W
	inv := 1 / float64(k)
	for c := 0; c < C; c++ {
		for to := 0; to < To; to++ {
			g := gd[c*osC+to*xsT : c*osC+(to+1)*xsT]
			for dt := 0; dt < k; dt++ {
				dst := dxd[c*xsC+(to*k+dt)*xsT : c*xsC+(to*k+dt+1)*xsT]
				for i, v := range g {
					dst[i] += v * inv
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (AvgPoolTime) Params() []*Param { return nil }

// GlobalAvgPool averages away every dimension after the first, mapping
// [C, ...] to [C].
type GlobalAvgPool struct{}

var _ Layer = GlobalAvgPool{}

type gapCache struct{ inShape []int }

// Forward implements Layer.
func (GlobalAvgPool) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: GlobalAvgPool got input shape %v", x.Shape()))
	}
	C := x.Dim(0)
	out := tensor.New(C)
	for c := 0; c < C; c++ {
		out.Set(x.Slice(c).Mean(), c)
	}
	return out, &gapCache{inShape: x.Shape()}
}

// Backward implements Layer.
func (GlobalAvgPool) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	gc := c.(*gapCache)
	dx := tensor.New(gc.inShape...)
	C := gc.inShape[0]
	per := dx.Len() / C
	inv := 1 / float64(per)
	for ch := 0; ch < C; ch++ {
		g := gradOut.At(ch) * inv
		dx.Slice(ch).Fill(g)
	}
	return dx
}

// Params implements Layer.
func (GlobalAvgPool) Params() []*Param { return nil }
