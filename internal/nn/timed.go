package nn

import (
	"fmt"
	"strings"

	"duo/internal/telemetry"
	"duo/internal/tensor"
)

// Timed wraps a Layer and records the wall time of every Forward and
// Backward call into a pair of latency histograms. It is numerically
// transparent: the wrapped layer sees the exact tensors it would have seen
// unwrapped, so outputs, caches, and gradients are bitwise-identical
// (timed_test.go pins this down).
type Timed struct {
	// Inner is the wrapped layer.
	Inner Layer

	forwardNs  *telemetry.Histogram
	backwardNs *telemetry.Histogram
}

var _ Layer = (*Timed)(nil)

// NewTimed wraps inner so its passes record under name.forward_ns and
// name.backward_ns in r; a nil registry yields a pass-through wrapper.
func NewTimed(inner Layer, r *telemetry.Registry, name string) *Timed {
	return &Timed{
		Inner:      inner,
		forwardNs:  r.Latency(name + ".forward_ns"),
		backwardNs: r.Latency(name + ".backward_ns"),
	}
}

// Forward implements Layer.
func (t *Timed) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	sw := t.forwardNs.Start()
	y, c := t.Inner.Forward(x)
	sw.Stop()
	return y, c
}

// Backward implements Layer.
func (t *Timed) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	sw := t.backwardNs.Start()
	g := t.Inner.Backward(c, gradOut)
	sw.Stop()
	return g
}

// Params implements Layer.
func (t *Timed) Params() []*Param { return t.Inner.Params() }

// layerName returns a short stable name for a layer type: "*nn.Conv3D" and
// "nn.ReLU" both render as their bare type name.
func layerName(l Layer) string {
	name := strings.TrimPrefix(fmt.Sprintf("%T", l), "*")
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// Instrument wraps a layer graph with per-layer Timed instrumentation
// under the given name prefix. Sequentials are entered recursively so each
// stage reports its own forward/backward histograms (named
// prefix.<index>_<LayerType>); the Sequential itself also reports, giving
// the end-to-end pass time. A nil registry returns l unchanged.
func Instrument(l Layer, r *telemetry.Registry, prefix string) Layer {
	if r == nil {
		return l
	}
	if s, ok := l.(*Sequential); ok {
		wrapped := make([]Layer, len(s.Layers))
		for i, inner := range s.Layers {
			wrapped[i] = Instrument(inner, r, fmt.Sprintf("%s.%d_%s", prefix, i, layerName(inner)))
		}
		return NewTimed(NewSequential(wrapped...), r, prefix)
	}
	return NewTimed(l, r, prefix)
}
