package nn

import (
	"math/rand"
	"strings"
	"testing"

	"duo/internal/telemetry"
	"duo/internal/tensor"
)

// buildTimedTestNet returns a small but representative network (nested
// Sequential, parameterized and parameter-free layers) and an input.
func buildTimedTestNet() (Layer, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(7))
	inner := NewSequential(Scale{Factor: 0.5}, ReLU{})
	net := NewSequential(inner, Flatten{}, NewLinear(rng, 2*3*4, 5))
	x := tensor.New(2, 3, 4)
	d := x.Data()
	for i := range d {
		d[i] = float64(i%7) - 3
	}
	return net, x
}

// TestInstrumentIsNumericallyTransparent: wrapping a network with Timed
// layers must not change its outputs, input gradients, or parameter
// gradients by a single bit.
func TestInstrumentIsNumericallyTransparent(t *testing.T) {
	net, x := buildTimedTestNet()

	wantY, cache := net.Forward(x)
	gradOut := tensor.New(wantY.Shape()...)
	for i := range gradOut.Data() {
		gradOut.Data()[i] = float64(i) - 2
	}
	wantGrad := net.Backward(cache, gradOut)
	wantParamGrads := make([][]float64, 0)
	for _, p := range net.Params() {
		wantParamGrads = append(wantParamGrads, append([]float64(nil), p.Grad.Data()...))
		p.ZeroGrad()
	}

	r := telemetry.New()
	timed := Instrument(net, r, "model.test")
	gotY, cache := timed.Forward(x)
	gotGrad := timed.Backward(cache, gradOut)

	if !equalData(wantY.Data(), gotY.Data()) {
		t.Error("instrumented forward differs from plain forward")
	}
	if !equalData(wantGrad.Data(), gotGrad.Data()) {
		t.Error("instrumented backward differs from plain backward")
	}
	for i, p := range timed.Params() {
		if !equalData(wantParamGrads[i], p.Grad.Data()) {
			t.Errorf("param %d (%s) gradient differs under instrumentation", i, p.Name)
		}
	}
}

// TestInstrumentRecordsPerLayerTimings: every layer (and the enclosing
// Sequential) reports one forward and one backward observation per pass.
func TestInstrumentRecordsPerLayerTimings(t *testing.T) {
	net, x := buildTimedTestNet()
	r := telemetry.New()
	timed := Instrument(net, r, "model.test")

	y, cache := timed.Forward(x)
	timed.Backward(cache, tensor.New(y.Shape()...))

	s := r.Snapshot()
	sawLayer := false
	for name, st := range s.Histograms {
		if !strings.HasPrefix(name, "model.test") {
			t.Errorf("unexpected histogram %q", name)
			continue
		}
		if st.Count != 1 {
			t.Errorf("%s count = %d, want 1 per pass", name, st.Count)
		}
		if strings.Contains(name, "2_Linear") {
			sawLayer = true
		}
	}
	if want := "model.test.forward_ns"; s.Histograms[want].Count != 1 {
		t.Errorf("missing end-to-end histogram %s: have %v", want, len(s.Histograms))
	}
	if !sawLayer {
		t.Error("no per-layer histogram for the Linear stage recorded")
	}
}

// TestInstrumentNilRegistryIsIdentity: without a registry the layer graph
// is returned untouched — no wrappers, no overhead.
func TestInstrumentNilRegistryIsIdentity(t *testing.T) {
	net, _ := buildTimedTestNet()
	if got := Instrument(net, nil, "model.test"); got != net {
		t.Error("Instrument(nil registry) must return the layer unchanged")
	}
}

func equalData(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
