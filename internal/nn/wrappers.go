package nn

import (
	"fmt"

	"duo/internal/tensor"
)

// SwapCT swaps the first two dimensions of a rank-4 tensor. It converts a
// video in [N, C, H, W] frame-major layout to the [C, T, H, W] channel-major
// layout that Conv3D expects (and back).
type SwapCT struct{}

var _ Layer = SwapCT{}

func swap01(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: SwapCT got input shape %v", x.Shape()))
	}
	s := x.Shape()
	A, B, H, W := s[0], s[1], s[2], s[3]
	out := tensor.New(B, A, H, W)
	xd, od := x.Data(), out.Data()
	hw := H * W
	for a := 0; a < A; a++ {
		for b := 0; b < B; b++ {
			copy(od[(b*A+a)*hw:(b*A+a+1)*hw], xd[(a*B+b)*hw:(a*B+b+1)*hw])
		}
	}
	return out
}

// Forward implements Layer.
func (SwapCT) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) { return swap01(x), nil }

// Backward implements Layer.
func (SwapCT) Backward(_ Cache, gradOut *tensor.Tensor) *tensor.Tensor { return swap01(gradOut) }

// Params implements Layer.
func (SwapCT) Params() []*Param { return nil }

// TimeDistributed applies Inner independently to every slice along the
// first dimension and stacks the results. With [N, C, H, W] video input and
// a Conv2D inner layer it implements per-frame 2-D convolution.
type TimeDistributed struct{ Inner Layer }

var _ Layer = (*TimeDistributed)(nil)

type timeDistCache struct {
	caches []Cache
	n      int
}

// Forward implements Layer.
func (l *TimeDistributed) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: TimeDistributed got input shape %v", x.Shape()))
	}
	n := x.Dim(0)
	caches := make([]Cache, n)
	var out *tensor.Tensor
	for i := 0; i < n; i++ {
		y, c := l.Inner.Forward(x.Slice(i))
		caches[i] = c
		if out == nil {
			out = tensor.New(append([]int{n}, y.Shape()...)...)
		}
		out.Slice(i).CopyFrom(y)
	}
	return out, &timeDistCache{caches: caches, n: n}
}

// Backward implements Layer.
func (l *TimeDistributed) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	tc := c.(*timeDistCache)
	var dx *tensor.Tensor
	for i := 0; i < tc.n; i++ {
		di := l.Inner.Backward(tc.caches[i], gradOut.Slice(i))
		if dx == nil {
			dx = tensor.New(append([]int{tc.n}, di.Shape()...)...)
		}
		dx.Slice(i).CopyFrom(di)
	}
	return dx
}

// Params implements Layer.
func (l *TimeDistributed) Params() []*Param { return l.Inner.Params() }

// Residual computes Inner(x) + Proj(x). Proj may be nil, in which case the
// skip connection is the identity and Inner's output shape must match x.
type Residual struct {
	Inner Layer
	Proj  Layer
}

var _ Layer = (*Residual)(nil)

type residualCache struct {
	inner Cache
	proj  Cache
}

// Forward implements Layer.
func (l *Residual) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	y, ic := l.Inner.Forward(x)
	var pc Cache
	skip := x
	if l.Proj != nil {
		skip, pc = l.Proj.Forward(x)
	}
	return y.Add(skip), &residualCache{inner: ic, proj: pc}
}

// Backward implements Layer.
func (l *Residual) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	rc := c.(*residualCache)
	dx := l.Inner.Backward(rc.inner, gradOut)
	if l.Proj != nil {
		dx = dx.Add(l.Proj.Backward(rc.proj, gradOut))
	} else {
		dx = dx.Add(gradOut)
	}
	return dx
}

// Params implements Layer.
func (l *Residual) Params() []*Param {
	ps := l.Inner.Params()
	if l.Proj != nil {
		ps = append(ps, l.Proj.Params()...)
	}
	return ps
}

// Parallel feeds the same input to every branch and concatenates their
// rank-1 outputs. It implements the fusion stage of the two-pathway
// (SlowFast) and temporal-pyramid (TPN) models.
type Parallel struct{ Branches []Layer }

var _ Layer = (*Parallel)(nil)

type parallelCache struct {
	caches []Cache
	sizes  []int
}

// Forward implements Layer.
func (l *Parallel) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	caches := make([]Cache, len(l.Branches))
	sizes := make([]int, len(l.Branches))
	var parts []*tensor.Tensor
	total := 0
	for i, br := range l.Branches {
		y, c := br.Forward(x)
		if y.Rank() != 1 {
			panic(fmt.Sprintf("nn: Parallel branch %d output rank %d, want 1", i, y.Rank()))
		}
		caches[i] = c
		sizes[i] = y.Len()
		total += y.Len()
		parts = append(parts, y)
	}
	out := tensor.New(total)
	off := 0
	for _, p := range parts {
		copy(out.Data()[off:off+p.Len()], p.Data())
		off += p.Len()
	}
	return out, &parallelCache{caches: caches, sizes: sizes}
}

// Backward implements Layer.
func (l *Parallel) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	pc := c.(*parallelCache)
	var dx *tensor.Tensor
	off := 0
	for i, br := range l.Branches {
		g := tensor.From(gradOut.Data()[off:off+pc.sizes[i]], pc.sizes[i])
		off += pc.sizes[i]
		di := br.Backward(pc.caches[i], g)
		if dx == nil {
			dx = di
		} else {
			dx.AddInPlace(di)
		}
	}
	return dx
}

// Params implements Layer.
func (l *Parallel) Params() []*Param {
	var ps []*Param
	for _, br := range l.Branches {
		ps = append(ps, br.Params()...)
	}
	return ps
}

// SubsampleTime keeps every K-th slice along the first dimension of a video
// tensor ([N, C, H, W] → [ceil(N/K), C, H, W]). The slow pathway of the
// SlowFast analogue uses it to thin the frame rate.
type SubsampleTime struct{ K int }

var _ Layer = SubsampleTime{}

type subsampleCache struct {
	inShape []int
	kept    []int
}

// Forward implements Layer.
func (l SubsampleTime) Forward(x *tensor.Tensor) (*tensor.Tensor, Cache) {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: SubsampleTime got input shape %v", x.Shape()))
	}
	n := x.Dim(0)
	k := l.K
	if k < 1 {
		k = 1
	}
	var kept []int
	for i := 0; i < n; i += k {
		kept = append(kept, i)
	}
	rest := x.Shape()[1:]
	out := tensor.New(append([]int{len(kept)}, rest...)...)
	for j, i := range kept {
		out.Slice(j).CopyFrom(x.Slice(i))
	}
	return out, &subsampleCache{inShape: x.Shape(), kept: kept}
}

// Backward implements Layer.
func (l SubsampleTime) Backward(c Cache, gradOut *tensor.Tensor) *tensor.Tensor {
	sc := c.(*subsampleCache)
	dx := tensor.New(sc.inShape...)
	for j, i := range sc.kept {
		dx.Slice(i).CopyFrom(gradOut.Slice(j))
	}
	return dx
}

// Params implements Layer.
func (SubsampleTime) Params() []*Param { return nil }
