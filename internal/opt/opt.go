// Package opt implements the optimizers used for victim/surrogate training
// (Adam, per [44] in the paper) and for the SparseTransfer θ-step (SGD with
// the paper's step-decay schedule: lr 0.1, ×0.9 every 50 steps, §V-B).
package opt

import (
	"math"

	"duo/internal/nn"
	"duo/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using each parameter's current .Grad and
	// then leaves the gradients untouched (callers zero them).
	Step(params []*nn.Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*nn.Param]*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*nn.Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			p.Value.AddScaled(-o.LR, p.Grad)
			continue
		}
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			o.velocity[p] = v
		}
		v.ScaleInPlace(o.Momentum).AddScaled(1, p.Grad)
		p.Value.AddScaled(-o.LR, v)
	}
}

// Adam is the Adam optimizer (Kingma & Ba, ICLR'15).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t int
	m map[*nn.Param]*tensor.Tensor
	v map[*nn.Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param]*tensor.Tensor),
		v: make(map[*nn.Param]*tensor.Tensor),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*nn.Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			o.m[p] = m
			o.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := o.v[p]
		md, vd, gd, pd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		for i, g := range gd {
			md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
			vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			pd[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// StepDecay is a learning-rate schedule that multiplies the base rate by
// Factor every Every steps (the paper uses base 0.1, factor 0.9, every 50).
type StepDecay struct {
	Base   float64
	Factor float64
	Every  int
}

// At returns the learning rate for 0-indexed step k.
func (s StepDecay) At(k int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(k/s.Every))
}

// PaperSchedule is the SparseQuery/SparseTransfer schedule from §V-B.
func PaperSchedule() StepDecay { return StepDecay{Base: 0.1, Factor: 0.9, Every: 50} }

// ZeroGrads clears the gradients of every parameter.
func ZeroGrads(params []*nn.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}
