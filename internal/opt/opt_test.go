package opt

import (
	"math"
	"math/rand"
	"testing"

	"duo/internal/nn"
	"duo/internal/tensor"
)

// quadratic returns the loss x² summed and sets the gradient 2x.
func quadratic(p *nn.Param) float64 {
	loss := 0.0
	p.ZeroGrad()
	for i, v := range p.Value.Data() {
		loss += v * v
		p.Grad.Data()[i] = 2 * v
	}
	return loss
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := nn.NewParam("x", tensor.From([]float64{3, -4}, 2))
	o := NewSGD(0.1, 0)
	for i := 0; i < 100; i++ {
		quadratic(p)
		o.Step([]*nn.Param{p})
	}
	if quadratic(p) > 1e-6 {
		t.Errorf("SGD did not converge: loss %g", quadratic(p))
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := nn.NewParam("x", tensor.From([]float64{3, -4}, 2))
	o := NewSGD(0.05, 0.9)
	for i := 0; i < 200; i++ {
		quadratic(p)
		o.Step([]*nn.Param{p})
	}
	if quadratic(p) > 1e-6 {
		t.Errorf("momentum SGD did not converge: loss %g", quadratic(p))
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := nn.NewParam("x", tensor.From([]float64{3, -4}, 2))
	o := NewAdam(0.2)
	for i := 0; i < 300; i++ {
		quadratic(p)
		o.Step([]*nn.Param{p})
	}
	if quadratic(p) > 1e-4 {
		t.Errorf("Adam did not converge: loss %g", quadratic(p))
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ lr.
	p := nn.NewParam("x", tensor.From([]float64{1}, 1))
	o := NewAdam(0.1)
	p.Grad.Set(5, 0)
	o.Step([]*nn.Param{p})
	if math.Abs(1-p.Value.At(0)-0.1) > 1e-6 {
		t.Errorf("first Adam step = %g, want ≈ 0.1", 1-p.Value.At(0))
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := PaperSchedule()
	if got := s.At(0); got != 0.1 {
		t.Errorf("At(0) = %g", got)
	}
	if got := s.At(49); got != 0.1 {
		t.Errorf("At(49) = %g", got)
	}
	if got := s.At(50); math.Abs(got-0.09) > 1e-12 {
		t.Errorf("At(50) = %g, want 0.09", got)
	}
	if got := s.At(100); math.Abs(got-0.081) > 1e-12 {
		t.Errorf("At(100) = %g, want 0.081", got)
	}
	// Degenerate Every never divides by zero.
	flat := StepDecay{Base: 1, Factor: 0.5, Every: 0}
	if flat.At(1000) != 1 {
		t.Error("Every=0 should be constant")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := nn.NewParam("x", tensor.RandNormal(rng, 0, 1, 3))
	p.Grad.Fill(2)
	ZeroGrads([]*nn.Param{p})
	if p.Grad.Sum() != 0 {
		t.Error("ZeroGrads left gradient nonzero")
	}
}

func TestSGDDistinctParamsIndependentVelocity(t *testing.T) {
	a := nn.NewParam("a", tensor.From([]float64{1}, 1))
	b := nn.NewParam("b", tensor.From([]float64{1}, 1))
	o := NewSGD(0.1, 0.9)
	a.Grad.Set(1, 0)
	b.Grad.Set(0, 0)
	o.Step([]*nn.Param{a, b})
	if b.Value.At(0) != 1 {
		t.Error("param with zero grad moved")
	}
	if a.Value.At(0) >= 1 {
		t.Error("param with grad did not move")
	}
}
