// Package parallel is the shared parallel-for substrate of the retrieval
// and training hot paths. It deliberately exposes only deterministic
// building blocks: work over [0, n) is split into contiguous shards whose
// bounds depend on nothing but (n, workers), so a caller that keeps
// per-shard partial results and combines them in shard order gets the same
// floating-point answer on every run. No primitive here ever reduces
// across shards itself — racing accumulation is exactly what the package
// exists to prevent (see DESIGN.md §9 for the determinism contract).
//
// The worker count defaults to GOMAXPROCS, can be pinned for a process via
// the DUO_PARALLEL environment variable, and can be pinned programmatically
// (tests, cmd/duobench -workers) with SetWorkers.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable that overrides the default worker
// count (a positive integer; anything else is ignored).
const EnvVar = "DUO_PARALLEL"

// pinned holds the SetWorkers override (0 = none).
var pinned atomic.Int64

// envWorkers is the DUO_PARALLEL override, read once at startup.
var envWorkers = func() int {
	if s := os.Getenv(EnvVar); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}()

// Workers returns the active worker count: the SetWorkers pin if present,
// else DUO_PARALLEL, else GOMAXPROCS. Always ≥ 1.
func Workers() int {
	if n := pinned.Load(); n > 0 {
		return int(n)
	}
	if envWorkers > 0 {
		return envWorkers
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// SetWorkers pins the worker count for the whole process and returns the
// previous pin (0 when none was set). n ≤ 0 removes the pin, restoring the
// DUO_PARALLEL/GOMAXPROCS default. Safe for concurrent use; callers that
// need a stable count across several calls should capture Workers() once
// and use ForN.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(pinned.Swap(int64(n)))
}

// CapWorkers bounds a worker count so that every shard receives at least
// minPerShard items: the largest w' ≤ w with n/w' ≥ minPerShard (always
// ≥ 1). Scans whose per-item cost is tiny — the PQ code scan does a
// handful of table lookups per row — use it to avoid paying goroutine
// fan-out latency on small inputs. The cap is a pure function of
// (w, n, minPerShard), and callers remain bound by the determinism
// contract regardless: sharded results must be bitwise-identical at every
// worker count, capped or not.
func CapWorkers(w, n, minPerShard int) int {
	if minPerShard < 1 {
		minPerShard = 1
	}
	if max := n / minPerShard; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Bounds returns the half-open [start, end) range of shard s when n items
// are split into w contiguous shards: every shard gets n/w items and the
// first n%w shards one extra. The bounds are a pure function of (n, w, s),
// which is what makes per-shard reductions reproducible run to run.
func Bounds(n, w, s int) (start, end int) {
	base, rem := n/w, n%w
	start = s * base
	if s < rem {
		start += s
	} else {
		start += rem
	}
	end = start + base
	if s < rem {
		end++
	}
	return start, end
}

// For splits [0, n) into min(Workers(), n) contiguous shards and runs body
// once per shard, concurrently, waiting for all shards to finish. body
// receives its shard index and [start, end) bounds; shard 0 runs on the
// calling goroutine.
func For(n int, body func(shard, start, end int)) {
	ForN(Workers(), n, body)
}

// ForN is For with an explicit worker count, for callers that must hold
// the shard layout fixed across several passes (or pin w=1 to stay on the
// calling goroutine, e.g. inside an already-parallel outer loop).
func ForN(w, n int, body func(shard, start, end int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for s := 1; s < w; s++ {
		go func(s int) {
			defer wg.Done()
			start, end := Bounds(n, w, s)
			body(s, start, end)
		}(s)
	}
	start, end := Bounds(n, w, 0)
	body(0, start, end)
	wg.Wait()
}
