package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBoundsPartitionExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 100, 101} {
		for _, w := range []int{1, 2, 3, 7, 16} {
			covered := 0
			prevEnd := 0
			for s := 0; s < w; s++ {
				start, end := Bounds(n, w, s)
				if start != prevEnd {
					t.Fatalf("n=%d w=%d shard %d starts at %d, want %d", n, w, s, start, prevEnd)
				}
				if end < start {
					t.Fatalf("n=%d w=%d shard %d has end %d < start %d", n, w, s, end, start)
				}
				covered += end - start
				prevEnd = end
			}
			if prevEnd != n || covered != n {
				t.Fatalf("n=%d w=%d covered %d items ending at %d", n, w, covered, prevEnd)
			}
		}
	}
}

func TestBoundsBalanced(t *testing.T) {
	// No shard may be more than one item larger than another.
	for _, n := range []int{5, 17, 100} {
		for _, w := range []int{2, 3, 7} {
			lo, hi := n, 0
			for s := 0; s < w; s++ {
				start, end := Bounds(n, w, s)
				if sz := end - start; sz < lo {
					lo = sz
				} else if sz > hi {
					hi = sz
				}
				if sz := end - start; sz > hi {
					hi = sz
				}
			}
			if hi-lo > 1 {
				t.Fatalf("n=%d w=%d shard sizes range [%d,%d]", n, w, lo, hi)
			}
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		for _, n := range []int{0, 1, 3, 7, 8, 50} {
			var mu sync.Mutex
			seen := make([]int, n)
			ForN(w, n, func(_, start, end int) {
				mu.Lock()
				defer mu.Unlock()
				for i := start; i < end; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("w=%d n=%d index %d visited %d times", w, n, i, c)
				}
			}
		}
	}
}

func TestForNMoreWorkersThanItems(t *testing.T) {
	var calls atomic.Int64
	ForN(7, 3, func(shard, start, end int) {
		calls.Add(1)
		if end-start != 1 {
			t.Errorf("shard %d got [%d,%d), want single item", shard, start, end)
		}
	})
	if calls.Load() != 3 {
		t.Fatalf("got %d shard calls, want 3", calls.Load())
	}
}

func TestSetWorkersPinAndRestore(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers()=%d after SetWorkers(5)", got)
	}
	if back := SetWorkers(0); back != 5 {
		t.Fatalf("SetWorkers(0) returned %d, want previous pin 5", back)
	}
	if got := Workers(); got < 1 {
		t.Fatalf("Workers()=%d after unpin, want ≥1", got)
	}
}

func TestForRunsShardZeroOnCaller(t *testing.T) {
	// Deterministic shard bounds: the same (n, w) must produce the same
	// layout every call, so per-shard reductions are stable.
	for s := 0; s < 3; s++ {
		a0, b0 := Bounds(10, 3, s)
		a1, b1 := Bounds(10, 3, s)
		if a0 != a1 || b0 != b1 {
			t.Fatalf("Bounds not stable for shard %d", s)
		}
	}
}

func TestCapWorkers(t *testing.T) {
	cases := []struct{ w, n, min, want int }{
		{8, 100, 10, 8},   // plenty of rows per shard: keep w
		{8, 100, 25, 4},   // capped so each shard keeps ≥ min rows
		{8, 100, 1000, 1}, // tiny input: collapse to one worker
		{8, 0, 10, 1},     // empty input still yields a valid count
		{0, 100, 10, 1},   // nonpositive w is clamped up
		{-3, 100, 10, 1},  // negative w is clamped up
		{8, 100, 0, 8},    // min < 1 treated as 1
		{4, 4, 1, 4},      // exact fit
	}
	for _, c := range cases {
		if got := CapWorkers(c.w, c.n, c.min); got != c.want {
			t.Errorf("CapWorkers(%d, %d, %d) = %d, want %d", c.w, c.n, c.min, got, c.want)
		}
	}
}

func TestCapWorkersPreservesMinShardWidth(t *testing.T) {
	// Whatever the inputs, every shard produced under the capped count must
	// hold at least min rows (or the whole input when n < min).
	for _, c := range []struct{ w, n, min int }{
		{16, 1000, 64}, {7, 129, 10}, {3, 2, 5}, {12, 4096, 1024},
	} {
		w := CapWorkers(c.w, c.n, c.min)
		for s := 0; s < w; s++ {
			lo, hi := Bounds(c.n, w, s)
			width := hi - lo
			if c.n >= c.min && width < c.min {
				t.Errorf("CapWorkers(%d,%d,%d)=%d: shard %d has width %d < %d",
					c.w, c.n, c.min, w, s, width, c.min)
			}
		}
	}
}
