package retrieval

import (
	"testing"
)

// This file pins the zero-allocation contracts that duolint's allocinloop
// rule cannot see across package boundaries: the scan kernels promise that
// with a warm scratch and a warm destination buffer a steady-state query
// performs zero heap allocations, and these tests hold that promise at
// exactly 0 allocs/op so a regression fails CI instead of showing up as a
// benchmark drift.

// TestScanTopMIntoZeroAllocs pins scanTopMInto at zero steady-state
// allocations: warm dst, warm scratch, single worker (the sequential fast
// path — the parallel path necessarily allocates its fan-out closure).
func TestScanTopMIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs exact allocation counts")
	}
	e, q := benchIndex(256, 32)
	sc := new(scanScratch)
	dst := make([]Result, 0, 10)
	got := allocsStable(func() {
		dst = scanTopMInto(dst, q, e.ids, e.labels, e.feats, 10, 1, sc)
	})
	if got != 0 {
		t.Errorf("scanTopMInto with warm dst+scratch: %.1f allocs/op, want 0", got)
	}
	if len(dst) != 10 {
		t.Fatalf("scanTopMInto returned %d results, want 10", len(dst))
	}
}

// TestPQAdcSelectZeroAllocs pins the PQ query core at zero steady-state
// allocations: a warm pqScratch (lookup table, candidate heaps, re-rank
// buffer, reusable ADC closure) makes adcSelect allocation-free with
// telemetry disabled, which is the documented contract on the method.
func TestPQAdcSelectZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs exact allocation counts")
	}
	e, q := benchIndex(256, 32)
	ix, err := NewPQIndex(e.ids, e.labels, e.feats, PQConfig{
		Subspaces:   8,
		Centroids:   16,
		Seed:        7,
		RerankDepth: 32,
	})
	if err != nil {
		t.Fatalf("NewPQIndex: %v", err)
	}
	defer ix.Close()
	feat := q.Data()
	sc := new(pqScratch)
	got := allocsStable(func() {
		_ = ix.adcSelect(feat, 10, 1, sc)
	})
	if got != 0 {
		t.Errorf("adcSelect with warm scratch: %.1f allocs/op, want 0", got)
	}
}
