package retrieval

import (
	"fmt"
	"math/rand"
	"testing"

	"duo/internal/telemetry"
	"duo/internal/tensor"
)

// benchIndex builds a 1k-video synthetic index with dense 64-d features,
// isolating the gallery scan (the Retrieve hot loop) from feature
// extraction.
func benchIndex(n, dim int) (*Engine, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(11))
	e := &Engine{}
	for i := 0; i < n; i++ {
		e.ids = append(e.ids, fmt.Sprintf("v%05d", i))
		e.labels = append(e.labels, i%10)
		e.feats = append(e.feats, tensor.RandNormal(rng, 0, 1, dim))
	}
	return e, tensor.RandNormal(rng, 0, 1, dim)
}

// BenchmarkRetrieveSequential is the pre-parallel baseline: full sort of
// the gallery per query (the original `nearest` path).
func BenchmarkRetrieveSequential(b *testing.B) {
	e, q := benchIndex(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nearest(q, e.ids, e.labels, e.feats, 10)
	}
}

// BenchmarkRetrieveParallel measures the sharded top-m scan (with pooled
// scratch, as Engine.Retrieve runs it) at several worker counts on a
// 1k-video gallery.
func BenchmarkRetrieveParallel(b *testing.B) {
	e, q := benchIndex(1000, 64)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = e.scan(q, 10, w)
			}
		})
	}
}

// BenchmarkShardNearest measures the per-node scan of the distributed path
// (single-threaded by design, pooled scratch).
func BenchmarkShardNearest(b *testing.B) {
	e, q := benchIndex(1000, 64)
	s := &Shard{ids: e.ids, labels: e.labels, feats: e.feats}
	feat := q.Data()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Nearest(feat, 10)
	}
}

// TestDisabledTelemetryAddsNoAllocations is the zero-overhead contract on
// the Retrieve hot path: with no registry wired, the instrumented timedScan
// must allocate exactly as much as the raw scan — nothing for telemetry.
func TestDisabledTelemetryAddsNoAllocations(t *testing.T) {
	e, q := benchIndex(256, 32)
	baseline := testing.AllocsPerRun(200, func() { _ = e.scan(q, 10, 1) })
	instrumented := testing.AllocsPerRun(200, func() { _ = e.timedScan(q, 10, 1) })
	if instrumented != baseline {
		t.Errorf("disabled telemetry changed allocations: scan %.1f, timedScan %.1f allocs/op",
			baseline, instrumented)
	}
}

// TestEnabledTelemetryAddsNoAllocations: even with a live registry the
// per-query records are allocation-free (instruments resolve at wiring).
func TestEnabledTelemetryAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs exact allocation counts")
	}
	e, q := benchIndex(256, 32)
	baseline := testing.AllocsPerRun(200, func() { _ = e.scan(q, 10, 1) })
	e.SetTelemetry(telemetry.New())
	instrumented := testing.AllocsPerRun(200, func() { _ = e.timedScan(q, 10, 1) })
	if instrumented != baseline {
		t.Errorf("enabled telemetry allocated on the hot path: scan %.1f, timedScan %.1f allocs/op",
			baseline, instrumented)
	}
}

// BenchmarkRetrieveTelemetry quantifies the telemetry overhead on the
// engine scan, disabled (nil registry — must be free) and enabled.
func BenchmarkRetrieveTelemetry(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "disabled"
		if enabled {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			e, q := benchIndex(1000, 64)
			if enabled {
				e.SetTelemetry(telemetry.New())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = e.timedScan(q, 10, 1)
			}
		})
	}
}
