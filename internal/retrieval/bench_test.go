package retrieval

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"

	"duo/internal/telemetry"
	"duo/internal/tensor"
)

// benchIndex builds a 1k-video synthetic index with dense 64-d features,
// isolating the gallery scan (the Retrieve hot loop) from feature
// extraction.
func benchIndex(n, dim int) (*Engine, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(11))
	e := &Engine{}
	for i := 0; i < n; i++ {
		e.ids = append(e.ids, fmt.Sprintf("v%05d", i))
		e.labels = append(e.labels, i%10)
		e.feats = append(e.feats, tensor.RandNormal(rng, 0, 1, dim))
	}
	return e, tensor.RandNormal(rng, 0, 1, dim)
}

// BenchmarkRetrieveSequential is the pre-parallel baseline: full sort of
// the gallery per query (the original `nearest` path).
func BenchmarkRetrieveSequential(b *testing.B) {
	e, q := benchIndex(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nearest(q, e.ids, e.labels, e.feats, 10)
	}
}

// BenchmarkRetrieveParallel measures the sharded top-m scan (with pooled
// scratch, as Engine.Retrieve runs it) at several worker counts on a
// 1k-video gallery.
func BenchmarkRetrieveParallel(b *testing.B) {
	e, q := benchIndex(1000, 64)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = e.scan(q, 10, w)
			}
		})
	}
}

// BenchmarkShardNearest measures the per-node scan of the distributed path
// (single-threaded by design, pooled scratch).
func BenchmarkShardNearest(b *testing.B) {
	e, q := benchIndex(1000, 64)
	s := &Shard{ids: e.ids, labels: e.labels, feats: e.feats}
	feat := q.Data()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Nearest(feat, 10)
	}
}

// allocsStable measures allocs/op with the garbage collector paused. The
// scan path draws scratch from a sync.Pool, and a GC landing inside the
// measurement window empties the pool (charging spurious refill
// allocations) while the background mark phase allocates on its own
// account — both inflate AllocsPerRun nondeterministically, especially
// under -race. With GC off and the pool pre-warmed the count is exact.
func allocsStable(f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC() // start from a collected heap so disabling GC is safe
	f()          // warm the scratch pool
	return testing.AllocsPerRun(200, f)
}

// TestDisabledTelemetryAddsNoAllocations is the zero-overhead contract on
// the Retrieve hot path: with no registry wired, the instrumented timedScan
// must allocate exactly as much as the raw scan — nothing for telemetry.
func TestDisabledTelemetryAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		// Under the race detector sync.Pool randomly drops Puts, so the
		// pooled scratch misses ~25% of the time and the truncated
		// allocs/op flips between 6 and 7 on both paths — the exact
		// comparison is meaningless. The non-race CI step pins it.
		t.Skip("race instrumentation perturbs exact allocation counts")
	}
	e, q := benchIndex(256, 32)
	baseline := allocsStable(func() { _ = e.scan(q, 10, 1) })
	instrumented := allocsStable(func() { _ = e.timedScan(q, 10, 1) })
	if instrumented != baseline {
		t.Errorf("disabled telemetry changed allocations: scan %.1f, timedScan %.1f allocs/op",
			baseline, instrumented)
	}
}

// TestEnabledTelemetryAddsNoAllocations: even with a live registry the
// per-query records are allocation-free (instruments resolve at wiring).
func TestEnabledTelemetryAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs exact allocation counts")
	}
	e, q := benchIndex(256, 32)
	baseline := allocsStable(func() { _ = e.scan(q, 10, 1) })
	e.SetTelemetry(telemetry.New())
	instrumented := allocsStable(func() { _ = e.timedScan(q, 10, 1) })
	if instrumented != baseline {
		t.Errorf("enabled telemetry allocated on the hot path: scan %.1f, timedScan %.1f allocs/op",
			baseline, instrumented)
	}
}

// BenchmarkRetrieveTelemetry quantifies the telemetry overhead on the
// engine scan, disabled (nil registry — must be free) and enabled.
func BenchmarkRetrieveTelemetry(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "disabled"
		if enabled {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			e, q := benchIndex(1000, 64)
			if enabled {
				e.SetTelemetry(telemetry.New())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = e.timedScan(q, 10, 1)
			}
		})
	}
}
