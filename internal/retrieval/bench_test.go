package retrieval

import (
	"fmt"
	"math/rand"
	"testing"

	"duo/internal/tensor"
)

// benchIndex builds a 1k-video synthetic index with dense 64-d features,
// isolating the gallery scan (the Retrieve hot loop) from feature
// extraction.
func benchIndex(n, dim int) (*Engine, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(11))
	e := &Engine{}
	for i := 0; i < n; i++ {
		e.ids = append(e.ids, fmt.Sprintf("v%05d", i))
		e.labels = append(e.labels, i%10)
		e.feats = append(e.feats, tensor.RandNormal(rng, 0, 1, dim))
	}
	return e, tensor.RandNormal(rng, 0, 1, dim)
}

// BenchmarkRetrieveSequential is the pre-parallel baseline: full sort of
// the gallery per query (the original `nearest` path).
func BenchmarkRetrieveSequential(b *testing.B) {
	e, q := benchIndex(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nearest(q, e.ids, e.labels, e.feats, 10)
	}
}

// BenchmarkRetrieveParallel measures the sharded top-m scan (with pooled
// scratch, as Engine.Retrieve runs it) at several worker counts on a
// 1k-video gallery.
func BenchmarkRetrieveParallel(b *testing.B) {
	e, q := benchIndex(1000, 64)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = e.scan(q, 10, w)
			}
		})
	}
}

// BenchmarkShardNearest measures the per-node scan of the distributed path
// (single-threaded by design, pooled scratch).
func BenchmarkShardNearest(b *testing.B) {
	e, q := benchIndex(1000, 64)
	s := &Shard{ids: e.ids, labels: e.labels, feats: e.feats}
	feat := q.Data()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Nearest(feat, 10)
	}
}
