package retrieval

import (
	"errors"
	"sync"
	"time"

	"duo/internal/telemetry"
	"duo/internal/trace"
)

// ErrBreakerOpen is returned by a BreakerTransport that is failing fast
// because its node is presumed dead. Callers (and the cluster's partial
// result policies) can treat it like any other node failure, but it costs
// no network round-trip.
var ErrBreakerOpen = errors.New("retrieval: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int32

const (
	// BreakerClosed: calls flow through; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls fail fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is in flight; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a BreakerTransport. The zero value selects
// the defaults noted per field.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the breaker from closed to open (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 1s).
	Cooldown time.Duration
	// Now is the clock; tests inject a fake for deterministic state
	// transitions (default time.Now).
	Now func() time.Time
}

func (c *BreakerConfig) applyDefaults() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now //duolint:allow walltime injectable-clock default; tests pin a fake clock
	}
}

// BreakerTransport wraps a Transport with a per-node circuit breaker so a
// persistently dead node stops stalling every scatter/gather query: after
// FailureThreshold consecutive failures the breaker opens and calls fail
// fast; after Cooldown a single probe is let through (half-open) and its
// outcome re-closes or re-opens the breaker.
//
// A load shed (ErrOverloaded) is treated as proof of liveness, exactly
// like a success: the node answered — cheaply, with a refusal — so it is
// not dead, and the breaker guards deadness, not load. Tripping on sheds
// would convert a transient load spike into a self-inflicted outage
// (fast-failing an alive node for a whole cooldown). Backing off under
// overload is RetryTransport's job, not the breaker's.
type BreakerTransport struct {
	inner Transport
	cfg   BreakerConfig

	mu           sync.Mutex
	state        BreakerState
	consecutive  int
	openedAt     time.Time
	probing      bool
	shortCircuit int64

	// telShortCircuit mirrors shortCircuit; telState tracks the state the
	// automaton last settled in (not the clock-recomputed State() view);
	// telOpened counts closed/half-open → open transitions.
	telShortCircuit *telemetry.Counter
	telState        *telemetry.Gauge
	telOpened       *telemetry.Counter
}

var _ Transport = (*BreakerTransport)(nil)

// NewBreakerTransport wraps inner with a circuit breaker.
func NewBreakerTransport(inner Transport, cfg BreakerConfig) *BreakerTransport {
	cfg.applyDefaults()
	return &BreakerTransport{inner: inner, cfg: cfg}
}

// SetTelemetry wires the breaker's instruments into the registry under the
// given name prefix (e.g. "cluster.node0.breaker"); nil disables.
func (b *BreakerTransport) SetTelemetry(r *telemetry.Registry, prefix string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.telShortCircuit = r.Counter(prefix + ".short_circuits")
	b.telOpened = r.Counter(prefix + ".opened")
	b.telState = r.Gauge(prefix + ".state")
	b.telState.Set(int64(b.state))
}

// State returns the breaker's current state (recomputing open → half-open
// eligibility against the clock).
func (b *BreakerTransport) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// ShortCircuits returns how many calls failed fast without reaching the
// node.
func (b *BreakerTransport) ShortCircuits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shortCircuit
}

// admit decides whether a call may proceed; it reports whether the call is
// the half-open probe.
func (b *BreakerTransport) admit() (allowed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.shortCircuit++
			b.telShortCircuit.Inc()
			return false, false
		}
		b.state = BreakerHalfOpen
		b.telState.Set(int64(b.state))
		b.probing = true
		return true, true
	case BreakerHalfOpen:
		if b.probing {
			// A probe is already in flight; don't pile on a maybe-dead node.
			b.shortCircuit++
			b.telShortCircuit.Inc()
			return false, false
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// report records a call outcome and drives the state machine.
func (b *BreakerTransport) report(probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if err == nil || errors.Is(err, ErrOverloaded) {
		// A shed response proves the node alive, which is all the breaker
		// cares about: it resets the automaton like a success (a half-open
		// probe answered with ErrOverloaded re-closes the breaker).
		b.state = BreakerClosed
		b.telState.Set(int64(b.state))
		b.consecutive = 0
		return
	}
	if b.state == BreakerHalfOpen {
		// Failed probe: back to open for another cooldown.
		b.state = BreakerOpen
		b.telState.Set(int64(b.state))
		b.telOpened.Inc()
		b.openedAt = b.cfg.Now()
		return
	}
	b.consecutive++
	if b.consecutive >= b.cfg.FailureThreshold {
		b.state = BreakerOpen
		b.telState.Set(int64(b.state))
		b.telOpened.Inc()
		b.openedAt = b.cfg.Now()
	}
}

// Nearest implements Transport.
func (b *BreakerTransport) Nearest(feat []float64, m int) ([]Result, error) {
	return b.do(func() ([]Result, error) { return b.inner.Nearest(feat, m) })
}

// NearestTraced implements TracedTransport; a fast-fail never reaches the
// inner transport, so no context crosses the wire for it.
func (b *BreakerTransport) NearestTraced(tc trace.Context, feat []float64, m int) ([]Result, error) {
	return b.do(func() ([]Result, error) { return nearestVia(b.inner, tc, feat, m) })
}

// do runs one call through the breaker state machine.
func (b *BreakerTransport) do(call func() ([]Result, error)) ([]Result, error) {
	allowed, probe := b.admit()
	if !allowed {
		return nil, ErrBreakerOpen
	}
	rs, err := call()
	b.report(probe, err)
	return rs, err
}

// Retries forwards the inner chain's retry count when it has one, so the
// cluster's per-node retry attribution sees through the usual
// breaker-outside-retry stacking ("0" when nothing underneath counts).
func (b *BreakerTransport) Retries() int64 {
	if rr, ok := b.inner.(retryReporter); ok {
		return rr.Retries()
	}
	return 0
}

// Stats implements StatsPuller by forwarding around the breaker: a stats
// pull is an observability probe, never gated or counted by the
// automaton, so the fleet view still reads a node the breaker holds open
// — which is exactly when an operator wants to see it.
func (b *BreakerTransport) Stats(includeRings bool) (NodeStats, error) {
	return pullStats(b.inner, includeRings)
}

// Close implements Transport.
func (b *BreakerTransport) Close() error { return b.inner.Close() }
