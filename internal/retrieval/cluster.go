package retrieval

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"duo/internal/models"
	"duo/internal/parallel"
	"duo/internal/telemetry"
	"duo/internal/tensor"
	"duo/internal/trace"
	"duo/internal/video"
)

// Shard is one data node's slice of the gallery index: feature vectors with
// identity and label metadata. It answers nearest-neighbour queries over
// its slice only.
type Shard struct {
	ids     []string
	labels  []int
	feats   []*tensor.Tensor
	scratch sync.Pool
	tel     engineTel
}

// SetTelemetry wires the shard's scan instruments into the registry under
// the "shard" prefix (used by retrievald data nodes); nil disables.
func (s *Shard) SetTelemetry(r *telemetry.Registry) {
	s.tel = resolveEngineTel(r, "shard")
}

// NewShard builds a shard index for the given gallery slice under the
// extractor (indexing happens once, at ingest, exactly as in Fig. 1).
func NewShard(m models.Model, gallery []*video.Video) *Shard {
	s := &Shard{}
	for _, v := range gallery {
		s.ids = append(s.ids, v.ID)
		s.labels = append(s.labels, v.Label)
		s.feats = append(s.feats, models.Embed(m, v))
	}
	return s
}

// NewShardFromFeatures builds a shard index directly from pre-extracted
// feature rows (parallel slices), bypassing the extractor. Benchmarks and
// index-conversion tools use it to study scan behaviour on synthetic or
// re-loaded galleries.
func NewShardFromFeatures(ids []string, labels []int, feats []*tensor.Tensor) *Shard {
	return &Shard{
		ids:    append([]string(nil), ids...),
		labels: append([]int(nil), labels...),
		feats:  append([]*tensor.Tensor(nil), feats...),
	}
}

// GalleryIndex is the node-side serving surface: a model-free index that
// answers raw-feature top-m queries. The exact Shard and the
// product-quantized PQIndex both implement it, so a data node can serve
// either index format behind the same wire protocol.
type GalleryIndex interface {
	// Nearest returns the index's top-m entries for the query feature in
	// the service-wide (Dist, ID) order.
	Nearest(feat []float64, m int) []Result
	// Size returns the number of indexed entries.
	Size() int
}

var _ GalleryIndex = (*Shard)(nil)

// Size returns the number of indexed entries.
func (s *Shard) Size() int { return len(s.ids) }

// Nearest returns the shard's top-m entries for the query feature. The
// scan is single-threaded (the cluster's node fan-out is the unit of
// parallelism) but uses the pooled top-m heap, so serving a query does not
// allocate an O(shard) temporary.
func (s *Shard) Nearest(feat []float64, m int) []Result {
	s.tel.queries.Inc()
	s.tel.topM.Observe(float64(m))
	sw := s.tel.scanNs.Start()
	sc := getScratch(&s.scratch)
	rs := scanTopM(tensor.From(feat, len(feat)), s.ids, s.labels, s.feats, m, 1, sc)
	s.scratch.Put(sc)
	sw.Stop()
	s.tel.scanned.Add(int64(len(s.ids)))
	return rs
}

// Transport carries nearest-neighbour calls to a data node. The in-memory
// implementation calls the shard directly; the TCP implementation speaks a
// gob protocol to a remote node.
type Transport interface {
	// Nearest returns the node's top-m results for the query feature.
	Nearest(feat []float64, m int) ([]Result, error)
	// Close releases the transport's resources.
	Close() error
}

// TracedTransport is the optional Transport extension that carries a span
// context with the call. TCPTransport implements it by sending the
// context on the wire; the retry and breaker decorators implement it by
// forwarding, so a whole decorator chain stays traceable end to end.
type TracedTransport interface {
	NearestTraced(tc trace.Context, feat []float64, m int) ([]Result, error)
}

// retryReporter is implemented by transports that count retry attempts
// (RetryTransport, and decorators that forward to one).
type retryReporter interface {
	Retries() int64
}

// nearestVia dispatches to the transport's traced entry point when it has
// one and a span context is present, and to plain Nearest otherwise.
func nearestVia(t Transport, tc trace.Context, feat []float64, m int) ([]Result, error) {
	if tt, ok := t.(TracedTransport); ok && tc.Valid() {
		return tt.NearestTraced(tc, feat, m)
	}
	return t.Nearest(feat, m)
}

// LocalTransport serves a shard in-process.
type LocalTransport struct {
	Shard *Shard
	// Telemetry, when non-nil, is the registry this node reports from
	// Stats — typically the one its shard instruments write into.
	Telemetry *telemetry.Registry
}

var _ Transport = (*LocalTransport)(nil)
var _ StatsPuller = (*LocalTransport)(nil)

// Nearest implements Transport.
func (t *LocalTransport) Nearest(feat []float64, m int) ([]Result, error) {
	return t.Shard.Nearest(feat, m), nil
}

// Close implements Transport.
func (t *LocalTransport) Close() error { return nil }

// Stats implements StatsPuller: an in-process node always supports
// stats; without a registry it reports an empty snapshot (the merge
// identity), not an error — the node is reachable, just uninstrumented.
func (t *LocalTransport) Stats(includeRings bool) (NodeStats, error) {
	snap := t.Telemetry.Snapshot()
	if !includeRings {
		snap.Rings = map[string][]float64{}
	}
	return NodeStats{Snapshot: snap, Size: t.Shard.Size(), Addr: "local"}, nil
}

// Policy is the cluster's partial-result policy: what the coordinator does
// when some nodes fail a scatter/gather query. It trades availability
// against correctness of the merged top-m — a partial merge is still a
// valid list, but it can silently omit true global top-m entries from the
// failed shards, which corrupts rank-similarity signals like the attack
// objective 𝕋.
type Policy struct {
	kind   policyKind
	quorum int
}

type policyKind int

const (
	policyBestEffort policyKind = iota
	policyRequireAll
	policyQuorum
)

// BestEffort merges whatever the reachable nodes returned and reports the
// first node error alongside (maximum availability, possibly-partial
// top-m). This is the default and the pre-policy behaviour.
func BestEffort() Policy { return Policy{kind: policyBestEffort} }

// RequireAll returns an error unless every node answered (a correct global
// top-m or nothing).
func RequireAll() Policy { return Policy{kind: policyRequireAll} }

// Quorum returns the merged list only when at least q nodes answered, and
// an error otherwise.
func Quorum(q int) Policy { return Policy{kind: policyQuorum, quorum: q} }

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p.kind {
	case policyRequireAll:
		return "require-all"
	case policyQuorum:
		return fmt.Sprintf("quorum(%d)", p.quorum)
	}
	return "best-effort"
}

// NodeHealth is one node's entry in a Cluster.Health snapshot.
type NodeHealth struct {
	// Node is the node's index in the cluster.
	Node int
	// Successes and Failures count completed Nearest calls.
	Successes, Failures int64
	// Sheds counts calls refused with ErrOverloaded. A shed is neither a
	// success nor a failure: the node is alive but at capacity, so sheds
	// never feed ConsecutiveFailures (an overloaded node is not unhealthy,
	// it is protecting itself).
	Sheds int64
	// ConsecutiveFailures counts failures since the last success.
	ConsecutiveFailures int
	// LastError is the most recent failure message ("" if none).
	LastError string
	// Breaker is the node's circuit-breaker state, when its transport has
	// one ("" otherwise).
	Breaker string
}

// Healthy reports whether the node's last call succeeded and no breaker is
// holding it open.
func (h NodeHealth) Healthy() bool {
	return h.ConsecutiveFailures == 0 && (h.Breaker == "" || h.Breaker == BreakerClosed.String())
}

// breakerReporter is implemented by transports that expose a circuit
// breaker (BreakerTransport); the cluster surfaces its state in Health.
type breakerReporter interface {
	State() BreakerState
}

// nodeStats is the cluster's per-node health accounting.
type nodeStats struct {
	successes, failures int64
	sheds               int64
	consecutive         int
	lastErr             string
}

// Cluster is the distributed retrieval coordinator of Fig. 1: it extracts
// the query's features once, scatters the feature vector to every data
// node concurrently, and merges the nodes' top-m lists into a global top-m.
// clusterNodeTel is one node's telemetry instrument set: request/error
// counters plus a breaker-state gauge mirroring Health().
type clusterNodeTel struct {
	// ok and errs count completed Nearest calls by outcome. Fast-fails
	// (ErrBreakerOpen) are counted in fastFail INSTEAD of errs: they never
	// reached the node, so folding them into errs would double-count the
	// underlying fault that tripped the breaker. Sheds (ErrOverloaded) are
	// likewise counted in shed INSTEAD of errs: the node is alive, just at
	// capacity, and conflating load with failure would make saturation look
	// like an outage in /metrics.json.
	ok, errs, fastFail, shed *telemetry.Counter
	// breaker mirrors the node's circuit-breaker state as an integer gauge
	// (BreakerClosed=0, BreakerOpen=1, BreakerHalfOpen=2), -1 when the
	// transport has no breaker.
	breaker *telemetry.Gauge
}

type Cluster struct {
	model   models.Model
	nodes   []Transport
	queries atomic.Int64

	mu     sync.Mutex
	policy Policy
	stats  []nodeStats

	tel      engineTel
	gatherNs *telemetry.Histogram
	nodeTel  []clusterNodeTel
	reg      *telemetry.Registry // for FleetSnapshot's coordinator section
	tracer   *trace.Tracer
}

var _ FallibleRetriever = (*Cluster)(nil)
var _ BatchRetriever = (*Cluster)(nil)
var _ TracedRetriever = (*Cluster)(nil)

// NewCluster builds a coordinator over the given node transports with the
// BestEffort partial-result policy.
func NewCluster(m models.Model, nodes []Transport) *Cluster {
	return &Cluster{model: m, nodes: nodes, stats: make([]nodeStats, len(nodes))}
}

// SetPolicy selects the partial-result policy and returns the cluster for
// chaining.
func (c *Cluster) SetPolicy(p Policy) *Cluster {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.kind == policyQuorum && (p.quorum < 1 || p.quorum > len(c.nodes)) {
		// An unsatisfiable or trivial quorum is a configuration bug; clamp
		// into range rather than making every query fail.
		q := p.quorum
		if q < 1 {
			q = 1
		}
		if q > len(c.nodes) {
			q = len(c.nodes)
		}
		p.quorum = q
	}
	c.policy = p
	return c
}

// Policy returns the active partial-result policy.
func (c *Cluster) Policy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// SetTelemetry wires the cluster's instruments into the registry: the
// coordinator's query counters under "cluster", the scatter/gather latency
// histogram, and per-node request/error/fast-fail counters plus a
// breaker-state gauge under "cluster.nodeI". A nil registry disables
// instrumentation. The per-node counters are the telemetry mirror of
// Health() — chaos tests assert the two agree with the injected fault
// schedule exactly.
func (c *Cluster) SetTelemetry(r *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tel = resolveEngineTel(r, "cluster")
	c.reg = r
	c.gatherNs = r.Latency("cluster.gather_ns")
	c.nodeTel = make([]clusterNodeTel, len(c.nodes))
	for i := range c.nodes {
		prefix := fmt.Sprintf("cluster.node%d", i)
		c.nodeTel[i] = clusterNodeTel{
			ok:       r.Counter(prefix + ".ok"),
			errs:     r.Counter(prefix + ".errors"),
			fastFail: r.Counter(prefix + ".fastfail"),
			shed:     r.Counter(prefix + ".shed"),
			breaker:  r.Gauge(prefix + ".breaker_state"),
		}
		c.nodeTel[i].breaker.Set(-1)
		if br, ok := c.nodes[i].(breakerReporter); ok {
			c.nodeTel[i].breaker.Set(int64(br.State()))
		}
	}
}

// SetTrace wires the span tracer the cluster records node spans into. The
// tracer must be the one whose contexts arrive via RetrieveTraced (the
// attack run's tracer — duo.System wires both from one place); nil
// disables node spans. Returns the cluster for chaining.
func (c *Cluster) SetTrace(t *trace.Tracer) *Cluster {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
	return c
}

// Health returns a per-node health snapshot: call counters, consecutive
// failures, the last error, and circuit-breaker state when the transport
// exposes one.
func (c *Cluster) Health() []NodeHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeHealth, len(c.nodes))
	for i, st := range c.stats {
		out[i] = NodeHealth{
			Node:                i,
			Successes:           st.successes,
			Failures:            st.failures,
			Sheds:               st.sheds,
			ConsecutiveFailures: st.consecutive,
			LastError:           st.lastErr,
		}
		if br, ok := c.nodes[i].(breakerReporter); ok {
			out[i].Breaker = br.State().String()
		}
	}
	return out
}

// NewLocalCluster shards the gallery round-robin across n in-process nodes.
func NewLocalCluster(m models.Model, gallery []*video.Video, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	shards := make([][]*video.Video, n)
	for i, v := range gallery {
		shards[i%n] = append(shards[i%n], v)
	}
	nodes := make([]Transport, n)
	for i := range nodes {
		nodes[i] = &LocalTransport{Shard: NewShard(m, shards[i])}
	}
	return NewCluster(m, nodes)
}

// Nodes returns the number of data nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// QueryCount returns the number of Retrieve calls served.
func (c *Cluster) QueryCount() int64 { return c.queries.Load() }

// Retrieve implements Retriever. Under the default BestEffort policy node
// failures degrade gracefully: results from reachable nodes are still
// merged (partial availability rather than total failure, as a production
// system would behave). Under RequireAll/Quorum a policy violation yields
// nil results; failure-aware callers should use RetrieveErr.
func (c *Cluster) Retrieve(v *video.Video, m int) []Result {
	rs, _ := c.RetrieveErr(v, m)
	return rs
}

// RetrieveErr is Retrieve with error reporting, subject to the cluster's
// partial-result policy:
//
//   - BestEffort: merged results from the reachable nodes plus the first
//     node error encountered, if any.
//   - RequireAll: (nil, error) unless every node answered.
//   - Quorum(q): (nil, error) unless at least q nodes answered.
func (c *Cluster) RetrieveErr(v *video.Video, m int) ([]Result, error) {
	return c.retrieve(trace.Context{}, v, m)
}

// RetrieveTraced is RetrieveErr with a span context: one node span per
// data node is recorded under it, attributed with the node index, the
// outcome (ok / fastfail / shed / error), the result count, and a best-effort
// retry delta when the transport counts retries. The context also rides
// the wire to TCP nodes, whose server-side spans parent under the node
// span. Callers bill this exactly like RetrieveErr.
func (c *Cluster) RetrieveTraced(tc trace.Context, v *video.Video, m int) ([]Result, error) {
	return c.retrieve(tc, v, m)
}

func (c *Cluster) retrieve(tc trace.Context, v *video.Video, m int) ([]Result, error) {
	c.queries.Add(1)
	c.tel.queries.Inc()
	c.tel.topM.Observe(float64(m))
	feat := models.Embed(c.model, v).Data()

	// Ordered-concurrency contract (see package trace): node spans are
	// started here, sequentially, before the fan-out; workers only read
	// their own span's context; attributes and End happen sequentially in
	// the merge loop. The exported tree is therefore identical at every
	// worker count and interleaving. Retry deltas are read around the
	// call; under concurrent RetrieveBatch scatters they are best-effort
	// (another scatter's retries may land in this window).
	var spans []*trace.Span
	var retriesBefore []int64
	if c.tracer != nil && tc.Valid() {
		spans = make([]*trace.Span, len(c.nodes))
		retriesBefore = make([]int64, len(c.nodes))
		for i, node := range c.nodes {
			spans[i] = c.tracer.StartCtx(tc, "node")
			if rr, isRR := node.(retryReporter); isRR {
				retriesBefore[i] = rr.Retries()
			}
		}
	}

	type reply struct {
		rs  []Result
		err error
	}
	replies := make([]reply, len(c.nodes))
	sw := c.gatherNs.Start()
	var wg sync.WaitGroup
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node Transport) {
			defer wg.Done()
			var nctx trace.Context
			if spans != nil {
				nctx = spans[i].Ctx()
			}
			rs, err := nearestVia(node, nctx, feat, m)
			replies[i] = reply{rs: rs, err: err}
		}(i, node)
	}
	wg.Wait()
	sw.Stop()

	var firstErr error
	var all []Result
	ok, shed := 0, 0
	c.mu.Lock()
	policy := c.policy
	for i, r := range replies {
		st := &c.stats[i]
		var nt clusterNodeTel
		if c.nodeTel != nil {
			nt = c.nodeTel[i]
			if br, isBr := c.nodes[i].(breakerReporter); isBr {
				nt.breaker.Set(int64(br.State()))
			}
		}
		var sp *trace.Span
		if spans != nil {
			sp = spans[i]
			sp.SetInt("node", int64(i))
			sp.SetInt("results", int64(len(r.rs)))
			if rr, isRR := c.nodes[i].(retryReporter); isRR {
				if d := rr.Retries() - retriesBefore[i]; d > 0 {
					sp.SetInt("retries", d)
				}
			}
		}
		if r.err != nil {
			st.lastErr = r.err.Error()
			if errors.Is(r.err, ErrOverloaded) {
				// A shed is load, not death: it never feeds the failure or
				// consecutive-failure counters, so Health keeps reporting an
				// overloaded-but-alive node as healthy.
				st.sheds++
				shed++
				nt.shed.Inc()
				sp.SetStr("outcome", "shed")
			} else {
				st.failures++
				st.consecutive++
				if errors.Is(r.err, ErrBreakerOpen) {
					nt.fastFail.Inc()
					sp.SetStr("outcome", "fastfail")
				} else {
					nt.errs.Inc()
					sp.SetStr("outcome", "error")
				}
			}
			sp.End()
			if firstErr == nil {
				firstErr = fmt.Errorf("retrieval: node %d: %w", i, r.err)
			}
			continue
		}
		st.successes++
		st.consecutive = 0
		nt.ok.Inc()
		sp.SetStr("outcome", "ok")
		sp.End()
		ok++
		all = append(all, r.rs...)
	}
	c.mu.Unlock()

	switch policy.kind {
	case policyRequireAll:
		if ok < len(c.nodes) {
			return nil, fmt.Errorf("retrieval: require-all: %d/%d nodes answered (%d shed): %w",
				ok, len(c.nodes), shed, firstErr)
		}
	case policyQuorum:
		if ok < policy.quorum {
			return nil, fmt.Errorf("retrieval: quorum: %d/%d nodes answered (%d shed), need %d: %w",
				ok, len(c.nodes), shed, policy.quorum, firstErr)
		}
		// Quorum met: the merge is authoritative by policy choice.
		firstErr = nil
	}
	merged := mergeTopM(all, m)
	return merged, firstErr
}

// RetrieveBatch implements BatchRetriever: independent queries fan out
// concurrently, each running its own scatter/gather under the active
// partial-result policy and billing QueryCount once. Transports already
// serialize per-connection access, so concurrent scatters are safe.
func (c *Cluster) RetrieveBatch(vs []*video.Video, m int) [][]Result {
	c.tel.batchSize.Observe(float64(len(vs)))
	out := make([][]Result, len(vs))
	parallel.For(len(vs), func(_, start, end int) {
		for i := start; i < end; i++ {
			out[i] = c.Retrieve(vs[i], m)
		}
	})
	return out
}

// Close closes every node transport, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// mergeTopM merges per-node result lists into a global ascending top-m,
// with the same (distance, ID) ordering as the single-node engine. Ties
// must be broken BEFORE truncating to m: a tie straddling the cut-off
// would otherwise keep whichever entry its node happened to deliver first,
// diverging from the engine's list.
func mergeTopM(all []Result, m int) []Result {
	out := make([]Result, len(all))
	copy(out, all)
	sort.Slice(out, func(a, b int) bool { return resultLess(out[a], out[b]) })
	if m > len(out) {
		m = len(out)
	}
	if m < 0 {
		m = 0
	}
	return out[:m]
}
