package retrieval

import (
	"fmt"
	"sync"
	"sync/atomic"

	"duo/internal/models"
	"duo/internal/tensor"
	"duo/internal/video"
)

// Shard is one data node's slice of the gallery index: feature vectors with
// identity and label metadata. It answers nearest-neighbour queries over
// its slice only.
type Shard struct {
	ids    []string
	labels []int
	feats  []*tensor.Tensor
}

// NewShard builds a shard index for the given gallery slice under the
// extractor (indexing happens once, at ingest, exactly as in Fig. 1).
func NewShard(m models.Model, gallery []*video.Video) *Shard {
	s := &Shard{}
	for _, v := range gallery {
		s.ids = append(s.ids, v.ID)
		s.labels = append(s.labels, v.Label)
		s.feats = append(s.feats, models.Embed(m, v))
	}
	return s
}

// Size returns the number of indexed entries.
func (s *Shard) Size() int { return len(s.ids) }

// Nearest returns the shard's top-m entries for the query feature.
func (s *Shard) Nearest(feat []float64, m int) []Result {
	return nearest(tensor.From(feat, len(feat)), s.ids, s.labels, s.feats, m)
}

// Transport carries nearest-neighbour calls to a data node. The in-memory
// implementation calls the shard directly; the TCP implementation speaks a
// gob protocol to a remote node.
type Transport interface {
	// Nearest returns the node's top-m results for the query feature.
	Nearest(feat []float64, m int) ([]Result, error)
	// Close releases the transport's resources.
	Close() error
}

// LocalTransport serves a shard in-process.
type LocalTransport struct{ Shard *Shard }

var _ Transport = (*LocalTransport)(nil)

// Nearest implements Transport.
func (t *LocalTransport) Nearest(feat []float64, m int) ([]Result, error) {
	return t.Shard.Nearest(feat, m), nil
}

// Close implements Transport.
func (t *LocalTransport) Close() error { return nil }

// Cluster is the distributed retrieval coordinator of Fig. 1: it extracts
// the query's features once, scatters the feature vector to every data
// node concurrently, and merges the nodes' top-m lists into a global top-m.
type Cluster struct {
	model   models.Model
	nodes   []Transport
	queries atomic.Int64
}

var _ Retriever = (*Cluster)(nil)

// NewCluster builds a coordinator over the given node transports.
func NewCluster(m models.Model, nodes []Transport) *Cluster {
	return &Cluster{model: m, nodes: nodes}
}

// NewLocalCluster shards the gallery round-robin across n in-process nodes.
func NewLocalCluster(m models.Model, gallery []*video.Video, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	shards := make([][]*video.Video, n)
	for i, v := range gallery {
		shards[i%n] = append(shards[i%n], v)
	}
	nodes := make([]Transport, n)
	for i := range nodes {
		nodes[i] = &LocalTransport{Shard: NewShard(m, shards[i])}
	}
	return NewCluster(m, nodes)
}

// Nodes returns the number of data nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// QueryCount returns the number of Retrieve calls served.
func (c *Cluster) QueryCount() int64 { return c.queries.Load() }

// Retrieve implements Retriever. Node failures degrade gracefully: results
// from reachable nodes are still merged (partial availability rather than
// total failure, as a production system would behave).
func (c *Cluster) Retrieve(v *video.Video, m int) []Result {
	rs, _ := c.RetrieveErr(v, m)
	return rs
}

// RetrieveErr is Retrieve with error reporting: it returns the merged
// results plus the first node error encountered, if any.
func (c *Cluster) RetrieveErr(v *video.Video, m int) ([]Result, error) {
	c.queries.Add(1)
	feat := models.Embed(c.model, v).Data()

	type reply struct {
		rs  []Result
		err error
	}
	replies := make([]reply, len(c.nodes))
	var wg sync.WaitGroup
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node Transport) {
			defer wg.Done()
			rs, err := node.Nearest(feat, m)
			replies[i] = reply{rs: rs, err: err}
		}(i, node)
	}
	wg.Wait()

	var firstErr error
	var all []Result
	for i, r := range replies {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("retrieval: node %d: %w", i, r.err)
			}
			continue
		}
		all = append(all, r.rs...)
	}
	merged := mergeTopM(all, m)
	return merged, firstErr
}

// Close closes every node transport, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// mergeTopM merges per-node result lists into a global ascending top-m.
func mergeTopM(all []Result, m int) []Result {
	dists := make([]float64, len(all))
	for i, r := range all {
		dists[i] = r.Dist
	}
	order := tensor.ArgsortAsc(dists)
	if m > len(order) {
		m = len(order)
	}
	if m < 0 {
		m = 0
	}
	out := make([]Result, m)
	for i := 0; i < m; i++ {
		out[i] = all[order[i]]
	}
	// Stable tie handling to match the single-node engine: equal distances
	// order by ID.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist == out[j-1].Dist && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
