package retrieval

import (
	"testing"
)

func TestMergeTopMTieBreaking(t *testing.T) {
	// Two "nodes" contribute interleaved distances with ties across nodes;
	// the merge must order ties by ID exactly like the single-node engine.
	all := []Result{
		{ID: "b", Dist: 1.0}, {ID: "d", Dist: 2.0}, // node 1
		{ID: "a", Dist: 1.0}, {ID: "c", Dist: 2.0}, // node 2
		{ID: "e", Dist: 0.5},
	}
	got := mergeTopM(all, 5)
	want := []string{"e", "a", "b", "c", "d"}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("position %d: got %s, want %s (full: %v)", i, got[i].ID, id, IDs(got))
		}
	}
}

func TestMergeTopMClamps(t *testing.T) {
	all := []Result{{ID: "a", Dist: 1}, {ID: "b", Dist: 2}}
	if got := mergeTopM(all, 10); len(got) != 2 {
		t.Errorf("m beyond input: %d results", len(got))
	}
	if got := mergeTopM(all, 0); len(got) != 0 {
		t.Errorf("m=0: %d results", len(got))
	}
	if got := mergeTopM(all, -3); len(got) != 0 {
		t.Errorf("m<0: %d results", len(got))
	}
	if got := mergeTopM(nil, 4); len(got) != 0 {
		t.Errorf("empty input: %d results", len(got))
	}
}

func TestMergeTopMAllTied(t *testing.T) {
	all := []Result{
		{ID: "c", Dist: 1}, {ID: "a", Dist: 1}, {ID: "b", Dist: 1},
	}
	got := IDs(mergeTopM(all, 2))
	if got[0] != "a" || got[1] != "b" {
		t.Errorf("tied merge = %v, want [a b]", got)
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[string]Policy{
		"best-effort": BestEffort(),
		"require-all": RequireAll(),
		"quorum(2)":   Quorum(2),
	}
	for want, p := range cases {
		if p.String() != want {
			t.Errorf("%v.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestSetPolicyClampsQuorum(t *testing.T) {
	m, c := chaosSystem(t)
	cl := NewCluster(m, []Transport{
		&LocalTransport{Shard: NewShard(m, c.Train[:2])},
		&LocalTransport{Shard: NewShard(m, c.Train[2:4])},
	})
	defer cl.Close()
	cl.SetPolicy(Quorum(99))
	if _, err := cl.RetrieveErr(c.Test[0], 2); err != nil {
		t.Errorf("clamped quorum made a healthy cluster fail: %v", err)
	}
	cl.SetPolicy(Quorum(-1))
	if _, err := cl.RetrieveErr(c.Test[0], 2); err != nil {
		t.Errorf("clamped quorum made a healthy cluster fail: %v", err)
	}
}

func TestHealthInitialSnapshot(t *testing.T) {
	m, c := chaosSystem(t)
	cl := NewCluster(m, []Transport{
		&LocalTransport{Shard: NewShard(m, c.Train)},
	})
	defer cl.Close()
	h := cl.Health()
	if len(h) != 1 {
		t.Fatalf("health has %d entries", len(h))
	}
	if !h[0].Healthy() || h[0].Successes != 0 || h[0].Failures != 0 || h[0].Breaker != "" {
		t.Errorf("fresh node health = %+v", h[0])
	}
	if _, err := cl.RetrieveErr(c.Test[0], 2); err != nil {
		t.Fatal(err)
	}
	if h := cl.Health(); h[0].Successes != 1 {
		t.Errorf("successes = %d after one query", h[0].Successes)
	}
}
