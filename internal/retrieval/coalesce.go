package retrieval

import (
	"sync"
	"time"

	"duo/internal/parallel"
	"duo/internal/telemetry"
	"duo/internal/trace"
	"duo/internal/video"
)

// CoalescerConfig parameterizes a Coalescer. The zero value selects the
// defaults noted per field.
type CoalescerConfig struct {
	// MaxBatch is the window size: the MaxBatch-th concurrent query flushes
	// the window synchronously on its own goroutine (default 8). This is
	// the deterministic flush rule — a fixed arrival pattern always cuts
	// the same windows.
	MaxBatch int
	// Window, when > 0, additionally flushes pending queries every Window
	// of wall-clock time, so a trickle of traffic below MaxBatch is never
	// stranded. A wall-clock ticker is NON-deterministic by construction;
	// leave it zero in attack pipelines and tests (which flush by size or
	// by explicit Flush calls — the injected-tick equivalent) and set it
	// only on serving front doors.
	Window time.Duration
}

func (c *CoalescerConfig) applyDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
}

// coalesceTel is the coalescer's write-only instrument set.
type coalesceTel struct {
	// windows counts flushed windows; windowSize is their size histogram.
	windows    *telemetry.Counter
	windowSize *telemetry.Histogram
	// coalesced counts queries that shared a window with at least one
	// other query (size-1 per multi-query window): the dispatches saved.
	coalesced *telemetry.Counter
}

// pendingQuery is one caller parked in the current window.
type pendingQuery struct {
	tc      trace.Context
	v       *video.Video
	m       int
	wantErr bool
	done    chan queryOutcome
}

type queryOutcome struct {
	rs  []Result
	err error
}

// Coalescer is the coordinator's batching front door: concurrent Retrieve
// calls park in a window, and a full window executes as one RetrieveBatch
// against the inner retriever (per-query dispatch for calls that need
// error or span fidelity). Results are bitwise-identical to calling the
// inner retriever directly — coalescing changes scheduling, never answers
// — so golden fingerprints and the Σqueries == QueryCount trace invariant
// are preserved by construction: billing stays where it always was, in the
// inner retriever, once per query.
//
// Without a Window ticker, callers block until MaxBatch-1 peers arrive or
// someone calls Flush; a serving front door should set Window (or size the
// batch to its concurrency), and single-threaded callers should not route
// through a Coalescer at all.
type Coalescer struct {
	inner FallibleRetriever
	cfg   CoalescerConfig
	tel   coalesceTel

	mu      sync.Mutex
	pending []*pendingQuery
	closed  bool
	ticker  *time.Ticker
	stop    chan struct{}
	wg      sync.WaitGroup
}

var _ FallibleRetriever = (*Coalescer)(nil)
var _ BatchRetriever = (*Coalescer)(nil)
var _ TracedRetriever = (*Coalescer)(nil)

// NewCoalescer wraps inner with a coalescing front door.
func NewCoalescer(inner FallibleRetriever, cfg CoalescerConfig) *Coalescer {
	cfg.applyDefaults()
	co := &Coalescer{inner: inner, cfg: cfg}
	if cfg.Window > 0 {
		co.ticker = time.NewTicker(cfg.Window) //duolint:allow walltime opt-in serving-only flush tick; attack pipelines leave Window zero
		co.stop = make(chan struct{})
		co.wg.Add(1)
		go co.tickLoop()
	}
	return co
}

// SetTelemetry wires the coalescer's instruments into the registry under
// the "coalesce" prefix; nil disables.
func (co *Coalescer) SetTelemetry(r *telemetry.Registry) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.tel = coalesceTel{
		windows:    r.Counter("coalesce.windows"),
		windowSize: r.Histogram("coalesce.window_size", []float64{1, 2, 4, 8, 16, 32, 64}),
		coalesced:  r.Counter("coalesce.coalesced"),
	}
}

func (co *Coalescer) tickLoop() {
	defer co.wg.Done()
	for {
		select {
		case <-co.ticker.C:
			co.Flush()
		case <-co.stop:
			return
		}
	}
}

// enqueue parks one query and flushes the window if it just filled.
func (co *Coalescer) enqueue(tc trace.Context, v *video.Video, m int, wantErr bool) ([]Result, error) {
	q := &pendingQuery{tc: tc, v: v, m: m, wantErr: wantErr, done: make(chan queryOutcome, 1)}
	co.mu.Lock()
	if co.closed {
		// A closed coalescer degrades to a pass-through rather than
		// stranding late callers.
		co.mu.Unlock()
		return co.retrieveOne(q)
	}
	co.pending = append(co.pending, q)
	var window []*pendingQuery
	if len(co.pending) >= co.cfg.MaxBatch {
		window = co.pending
		co.pending = nil
	}
	co.mu.Unlock()
	if window != nil {
		// The filling caller executes the window synchronously: determinism
		// needs no dedicated flusher goroutine, and the caller was going to
		// block on its own result anyway.
		co.execute(window)
	}
	out := <-q.done
	return out.rs, out.err
}

// Flush executes whatever is parked right now (possibly nothing). It is
// the injectable tick for tests and the escape hatch for callers that
// know no more traffic is coming.
func (co *Coalescer) Flush() {
	co.mu.Lock()
	window := co.pending
	co.pending = nil
	co.mu.Unlock()
	if len(window) > 0 {
		co.execute(window)
	}
}

// execute answers every query of one window. Queries that need no error
// or span fidelity batch into one RetrieveBatch per distinct m (the inner
// batch fan-out already parallelizes); the rest dispatch per-query so
// error values and span attribution stay exactly as without coalescing.
func (co *Coalescer) execute(window []*pendingQuery) {
	co.tel.windows.Inc()
	co.tel.windowSize.Observe(float64(len(window)))
	if len(window) > 1 {
		co.tel.coalesced.Add(int64(len(window) - 1))
	}

	var perQuery []*pendingQuery
	batcher, canBatch := co.inner.(BatchRetriever)
	// Group batchable queries by m, preserving first-seen order (no map
	// iteration anywhere near dispatch).
	var ms []int
	groups := make(map[int][]*pendingQuery)
	for _, q := range window {
		if !canBatch || q.wantErr || q.tc.Valid() {
			perQuery = append(perQuery, q)
			continue
		}
		if _, seen := groups[q.m]; !seen {
			ms = append(ms, q.m)
		}
		groups[q.m] = append(groups[q.m], q)
	}
	for _, m := range ms {
		group := groups[m]
		if len(group) == 1 {
			perQuery = append(perQuery, group[0])
			continue
		}
		vs := make([]*video.Video, len(group))
		for i, q := range group {
			vs[i] = q.v
		}
		out := batcher.RetrieveBatch(vs, m)
		for i, q := range group {
			q.done <- queryOutcome{rs: out[i]}
		}
	}
	if len(perQuery) > 0 {
		parallel.For(len(perQuery), func(_, start, end int) {
			for i := start; i < end; i++ {
				rs, err := co.retrieveOne(perQuery[i])
				perQuery[i].done <- queryOutcome{rs: rs, err: err}
			}
		})
	}
}

// retrieveOne dispatches a single query with full fidelity.
func (co *Coalescer) retrieveOne(q *pendingQuery) ([]Result, error) {
	if q.tc.Valid() {
		if tr, ok := co.inner.(TracedRetriever); ok {
			return tr.RetrieveTraced(q.tc, q.v, q.m)
		}
	}
	return co.inner.RetrieveErr(q.v, q.m)
}

// Retrieve implements Retriever; the call parks in the current window.
func (co *Coalescer) Retrieve(v *video.Video, m int) []Result {
	rs, _ := co.enqueue(trace.Context{}, v, m, false)
	return rs
}

// RetrieveErr implements FallibleRetriever with per-query error fidelity.
func (co *Coalescer) RetrieveErr(v *video.Video, m int) ([]Result, error) {
	return co.enqueue(trace.Context{}, v, m, true)
}

// RetrieveTraced implements TracedRetriever: the span context follows the
// query through the window, so node spans attribute exactly as without
// coalescing.
func (co *Coalescer) RetrieveTraced(tc trace.Context, v *video.Video, m int) ([]Result, error) {
	return co.enqueue(tc, v, m, true)
}

// RetrieveBatch implements BatchRetriever by forwarding: an explicit batch
// IS a window already, so re-coalescing it through the front door could
// only split it (the window cap) or deadlock it (a batch larger than
// MaxBatch waiting for itself).
func (co *Coalescer) RetrieveBatch(vs []*video.Video, m int) [][]Result {
	if b, ok := co.inner.(BatchRetriever); ok {
		return b.RetrieveBatch(vs, m)
	}
	out := make([][]Result, len(vs))
	for i, v := range vs {
		out[i], _ = co.inner.RetrieveErr(v, m)
	}
	return out
}

// Close flushes stragglers, stops the window ticker, and turns the
// coalescer into a pass-through. It does NOT close the inner retriever
// (the coalescer does not own it).
func (co *Coalescer) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil
	}
	co.closed = true
	co.mu.Unlock()
	if co.ticker != nil {
		co.ticker.Stop()
		close(co.stop)
		co.wg.Wait()
	}
	co.Flush()
	return nil
}
