package retrieval

// Coalescer tests: the size-based flush rule is deterministic, coalesced
// answers are bitwise-identical to direct dispatch, error and span
// fidelity survive the window, and Flush frees stragglers.

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"duo/internal/telemetry"
	"duo/internal/trace"
	"duo/internal/video"
)

// twoClusters builds two identical deterministic clusters (one to route
// through the coalescer, one for direct expected answers) plus queries.
func twoClusters(t *testing.T, nodes int) (via, direct *Cluster, queries []*video.Video) {
	t.Helper()
	m, c := chaosSystem(t)
	return NewLocalCluster(m, c.Train, nodes), NewLocalCluster(m, c.Train, nodes), c.Test
}

func TestCoalescerWindowMatchesDirectDispatch(t *testing.T) {
	via, direct, queries := twoClusters(t, 2)
	defer via.Close()
	defer direct.Close()
	reg := telemetry.New()
	co := NewCoalescer(via, CoalescerConfig{MaxBatch: len(queries)})
	co.SetTelemetry(reg)
	defer co.Close()

	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i] = direct.Retrieve(q, 4)
	}

	// Exactly MaxBatch concurrent callers: the last arrival flushes the
	// window; nobody needs Flush or a ticker.
	got := make([][]Result, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *video.Video) {
			defer wg.Done()
			got[i] = co.Retrieve(q, 4)
		}(i, q)
	}
	wg.Wait()

	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("query %d: coalesced answer differs from direct dispatch", i)
		}
	}
	if got := reg.Counter("coalesce.windows").Value(); got != 1 {
		t.Errorf("windows = %d, want 1", got)
	}
	if got := reg.Counter("coalesce.coalesced").Value(); got != int64(len(queries)-1) {
		t.Errorf("coalesced = %d, want %d", got, len(queries)-1)
	}
	if st := reg.Histogram("coalesce.window_size", nil).Stats(); st.Count != 1 || st.Max != float64(len(queries)) {
		t.Errorf("window_size stats = %+v, want one observation of %d", st, len(queries))
	}
	// Billing stayed in the inner cluster, once per query.
	if got := via.QueryCount(); got != int64(len(queries)) {
		t.Errorf("inner QueryCount = %d, want %d", got, len(queries))
	}
}

func TestCoalescerFlushReleasesStragglers(t *testing.T) {
	via, _, queries := twoClusters(t, 1)
	defer via.Close()
	co := NewCoalescer(via, CoalescerConfig{MaxBatch: 64})
	defer co.Close()

	done := make(chan []Result, 1)
	go func() {
		rs, err := co.RetrieveErr(queries[0], 3)
		if err != nil {
			t.Error(err)
		}
		done <- rs
	}()
	// Wait for the query to park, then tick the window by hand — the
	// deterministic stand-in for a serving-side Window ticker.
	deadline := time.Now().Add(10 * time.Second) //duolint:allow walltime test watchdog only; never fires on the pass path
	for {
		co.mu.Lock()
		parked := len(co.pending)
		co.mu.Unlock()
		if parked == 1 {
			break
		}
		if time.Now().After(deadline) { //duolint:allow walltime test watchdog only; never fires on the pass path
			t.Fatal("query never parked in the window")
		}
		time.Sleep(time.Millisecond) //duolint:allow walltime polling cadence of the test watchdog only
	}
	co.Flush()
	select {
	case rs := <-done:
		if len(rs) != 3 {
			t.Errorf("straggler got %d results, want 3", len(rs))
		}
	case <-time.After(10 * time.Second): //duolint:allow walltime test watchdog only; never fires on the pass path
		t.Fatal("Flush did not release the parked query")
	}
}

func TestCoalescerWindowTickerReleasesTrickle(t *testing.T) {
	via, _, queries := twoClusters(t, 1)
	defer via.Close()
	co := NewCoalescer(via, CoalescerConfig{MaxBatch: 64, Window: 5 * time.Millisecond})
	defer co.Close()
	// A single query well below MaxBatch: only the wall-clock tick can
	// flush it. The generous timeout keeps slow CI honest.
	type out struct {
		rs  []Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		rs, err := co.RetrieveErr(queries[0], 2)
		done <- out{rs, err}
	}()
	select {
	case o := <-done:
		if o.err != nil || len(o.rs) != 2 {
			t.Errorf("ticker flush returned %d results, err %v", len(o.rs), o.err)
		}
	case <-time.After(10 * time.Second): //duolint:allow walltime test watchdog only; never fires on the pass path
		t.Fatal("window ticker never flushed a sub-batch trickle")
	}
}

func TestCoalescerPreservesErrorFidelity(t *testing.T) {
	m, c := chaosSystem(t)
	half := len(c.Train) / 2
	down := NewFaultTransport(&LocalTransport{Shard: NewShard(m, c.Train[half:])}, FaultConfig{})
	down.FailNext(1<<30, ErrInjectedFailure)
	cl := NewCluster(m, []Transport{
		&LocalTransport{Shard: NewShard(m, c.Train[:half])}, down,
	}).SetPolicy(RequireAll())
	defer cl.Close()
	co := NewCoalescer(cl, CoalescerConfig{MaxBatch: 2})
	defer co.Close()

	// Two concurrent err-aware callers fill the window; both must see the
	// policy violation exactly as direct RetrieveErr callers would.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = co.RetrieveErr(c.Test[i], 3)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !errors.Is(err, ErrInjectedFailure) {
			t.Errorf("caller %d: err = %v, want wrapped ErrInjectedFailure", i, err)
		}
	}
}

func TestCoalescerPreservesSpanAttribution(t *testing.T) {
	via, direct, queries := twoClusters(t, 2)
	defer via.Close()
	defer direct.Close()
	co := NewCoalescer(via, CoalescerConfig{MaxBatch: 2})
	defer co.Close()

	countNodeSpans := func(tr *trace.Tracer) (n int, parents map[uint64]bool) {
		parents = make(map[uint64]bool)
		for _, r := range tr.Records() {
			if r.Name == "node" {
				n++
				parents[r.Parent] = true
			}
		}
		return
	}

	trDirect := trace.New("direct")
	direct.SetTrace(trDirect)
	for i := 0; i < 2; i++ {
		sp := trDirect.Start(nil, "retrieve")
		direct.RetrieveTraced(sp.Ctx(), queries[i], 3)
		sp.End()
	}
	wantSpans, _ := countNodeSpans(trDirect)

	trVia := trace.New("via")
	via.SetTrace(trVia)
	roots := make([]*trace.Span, 2)
	for i := range roots {
		roots[i] = trVia.Start(nil, "retrieve")
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			co.RetrieveTraced(roots[i].Ctx(), queries[i], 3)
		}(i)
	}
	wg.Wait()
	for _, sp := range roots {
		sp.End()
	}
	gotSpans, gotParents := countNodeSpans(trVia)
	if gotSpans != wantSpans {
		t.Errorf("coalesced run recorded %d node spans, direct %d", gotSpans, wantSpans)
	}
	if len(gotParents) != 2 {
		t.Errorf("node spans attribute to %d parents, want 2 (one per query's root)", len(gotParents))
	}
}

func TestCoalescerClosedIsPassThrough(t *testing.T) {
	via, _, queries := twoClusters(t, 1)
	defer via.Close()
	co := NewCoalescer(via, CoalescerConfig{MaxBatch: 64})
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	// No peers, no ticker, no Flush — a closed coalescer must not strand
	// the caller.
	rs, err := co.RetrieveErr(queries[0], 2)
	if err != nil || len(rs) != 2 {
		t.Errorf("closed coalescer: %d results, err %v", len(rs), err)
	}
}
