// Package retrieval implements the DNN-based video retrieval system of
// Fig. 1: a deep feature extractor, an indexed gallery, top-m retrieval by
// L2 feature distance, and a distributed variant that shards the gallery
// across data nodes behind a scatter/gather coordinator.
package retrieval

import (
	"sort"
	"sync/atomic"

	"duo/internal/metrics"
	"duo/internal/models"
	"duo/internal/tensor"
	"duo/internal/video"
)

// Result is one retrieved gallery entry.
type Result struct {
	// ID is the gallery video's identifier.
	ID string
	// Label is the gallery video's category (used for mAP ground truth).
	Label int
	// Dist is the L2 feature distance to the query.
	Dist float64
}

// Retriever answers top-m similarity queries; it is the black-box interface
// R^m(·) the attacks interact with.
type Retriever interface {
	// Retrieve returns the m gallery entries nearest to v in feature
	// space, in ascending distance order.
	Retrieve(v *video.Video, m int) []Result
}

// FallibleRetriever is a Retriever whose queries can fail (a distributed
// service with unreachable nodes, per its partial-result policy).
// Failure-aware callers — the attack loop in particular — should prefer
// RetrieveErr over Retrieve so a degraded answer is never mistaken for a
// complete one.
type FallibleRetriever interface {
	Retriever
	// RetrieveErr is Retrieve with error reporting; a nil error means the
	// result list satisfies the service's completeness policy.
	RetrieveErr(v *video.Video, m int) ([]Result, error)
}

// Engine is a single-node retrieval system: one feature extractor plus an
// in-memory gallery index.
type Engine struct {
	model   models.Model
	ids     []string
	labels  []int
	feats   []*tensor.Tensor
	queries atomic.Int64
}

var _ Retriever = (*Engine)(nil)

// NewEngine indexes the gallery under the given extractor.
func NewEngine(m models.Model, gallery []*video.Video) *Engine {
	e := &Engine{model: m}
	for _, v := range gallery {
		e.ids = append(e.ids, v.ID)
		e.labels = append(e.labels, v.Label)
		e.feats = append(e.feats, models.Embed(m, v))
	}
	return e
}

// Model exposes the engine's feature extractor (white-box access used only
// by defenses and evaluation, never by the black-box attacks).
func (e *Engine) Model() models.Model { return e.model }

// GallerySize returns the number of indexed videos.
func (e *Engine) GallerySize() int { return len(e.ids) }

// QueryCount returns the number of Retrieve calls served; attacks use it to
// account for query budgets.
func (e *Engine) QueryCount() int64 { return e.queries.Load() }

// ResetQueryCount zeroes the query counter.
func (e *Engine) ResetQueryCount() { e.queries.Store(0) }

// Retrieve implements Retriever.
func (e *Engine) Retrieve(v *video.Video, m int) []Result {
	e.queries.Add(1)
	feat := models.Embed(e.model, v)
	return nearest(feat, e.ids, e.labels, e.feats, m)
}

// nearest scores feat against an index and returns the top-m entries,
// sorted ascending by distance with ID tie-breaking for determinism.
func nearest(feat *tensor.Tensor, ids []string, labels []int, feats []*tensor.Tensor, m int) []Result {
	res := make([]Result, len(ids))
	for i := range ids {
		res[i] = Result{ID: ids[i], Label: labels[i], Dist: feat.Distance(feats[i])}
	}
	sort.Slice(res, func(a, b int) bool {
		if res[a].Dist != res[b].Dist {
			return res[a].Dist < res[b].Dist
		}
		return res[a].ID < res[b].ID
	})
	if m > len(res) {
		m = len(res)
	}
	if m < 0 {
		m = 0
	}
	return res[:m]
}

// IDs extracts the ID sequence of a result list (the R^m(v) lists consumed
// by the attack objective).
func IDs(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// EvaluateMAP computes the paper's mAP over the given queries: an item is
// correct when its label matches the query's.
func EvaluateMAP(r Retriever, queries []*video.Video, m int) float64 {
	return Evaluate(r, queries, m).MAP
}

// Quality bundles ranking diagnostics over a query set.
type Quality struct {
	// MAP is the paper's mean average precision (§V-A).
	MAP float64
	// RecallAt1 is the fraction of queries whose top result is correct.
	RecallAt1 float64
	// MRR is the mean reciprocal rank of the first correct result.
	MRR float64
}

// Evaluate computes retrieval quality over the queries; an item is correct
// when its label matches the query's.
func Evaluate(r Retriever, queries []*video.Video, m int) Quality {
	rel := make([][]bool, 0, len(queries))
	for _, q := range queries {
		rs := r.Retrieve(q, m)
		row := make([]bool, len(rs))
		for i, res := range rs {
			row[i] = res.Label == q.Label
		}
		rel = append(rel, row)
	}
	return Quality{
		MAP:       metrics.MAP(rel),
		RecallAt1: metrics.RecallAtK(rel, 1),
		MRR:       metrics.MRR(rel),
	}
}
