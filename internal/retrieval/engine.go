// Package retrieval implements the DNN-based video retrieval system of
// Fig. 1: a deep feature extractor, an indexed gallery, top-m retrieval by
// L2 feature distance, and a distributed variant that shards the gallery
// across data nodes behind a scatter/gather coordinator.
package retrieval

import (
	"sort"
	"sync"
	"sync/atomic"

	"duo/internal/metrics"
	"duo/internal/models"
	"duo/internal/parallel"
	"duo/internal/telemetry"
	"duo/internal/tensor"
	"duo/internal/trace"
	"duo/internal/video"
)

// engineTel holds an engine's resolved telemetry instruments. The zero
// value (all nil) is the disabled state: every record is a no-op with zero
// allocations and no clock reads, so the Retrieve hot path costs nothing
// when telemetry is off (see the zero-alloc test in telemetry_test.go).
type engineTel struct {
	// queries counts Retrieve/RetrieveBatch queries served.
	queries *telemetry.Counter
	// scanNs times the gallery scan (embed excluded) per query.
	scanNs *telemetry.Histogram
	// scanned counts gallery entries scored across all queries.
	scanned *telemetry.Counter
	// batchSize records RetrieveBatch fan-out widths.
	batchSize *telemetry.Histogram
	// topM records the requested list length per query.
	topM *telemetry.Histogram
}

// resolveEngineTel resolves the named instruments under a prefix; a nil
// registry yields the all-nil (disabled) instrument set.
func resolveEngineTel(r *telemetry.Registry, prefix string) engineTel {
	return engineTel{
		queries:   r.Counter(prefix + ".queries"),
		scanNs:    r.Latency(prefix + ".scan_ns"),
		scanned:   r.Counter(prefix + ".entries_scanned"),
		batchSize: r.Histogram(prefix+".batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
		topM:      r.Histogram(prefix+".top_m", []float64{1, 5, 10, 20, 50, 100}),
	}
}

// Result is one retrieved gallery entry.
type Result struct {
	// ID is the gallery video's identifier.
	ID string
	// Label is the gallery video's category (used for mAP ground truth).
	Label int
	// Dist is the L2 feature distance to the query.
	Dist float64
}

// Retriever answers top-m similarity queries; it is the black-box interface
// R^m(·) the attacks interact with.
type Retriever interface {
	// Retrieve returns the m gallery entries nearest to v in feature
	// space, in ascending distance order.
	Retrieve(v *video.Video, m int) []Result
}

// BatchRetriever is a Retriever that can serve several independent queries
// in one call, fanning them out across workers. The answers are
// bitwise-identical to issuing each query through Retrieve, and every
// query is billed to QueryCount individually — batching buys throughput,
// never budget.
type BatchRetriever interface {
	Retriever
	// RetrieveBatch returns one top-m list per input video, with
	// out[i] == Retrieve(vs[i], m).
	RetrieveBatch(vs []*video.Video, m int) [][]Result
}

// FallibleRetriever is a Retriever whose queries can fail (a distributed
// service with unreachable nodes, per its partial-result policy).
// Failure-aware callers — the attack loop in particular — should prefer
// RetrieveErr over Retrieve so a degraded answer is never mistaken for a
// complete one.
type FallibleRetriever interface {
	Retriever
	// RetrieveErr is Retrieve with error reporting; a nil error means the
	// result list satisfies the service's completeness policy.
	RetrieveErr(v *video.Video, m int) ([]Result, error)
}

// TracedRetriever is a FallibleRetriever that can attribute one query to a
// caller's span: the Cluster implements it by recording per-node child
// spans under tc and forwarding the context over the wire to TCP nodes.
// Results and billing are identical to RetrieveErr — tracing is write-only.
type TracedRetriever interface {
	FallibleRetriever
	// RetrieveTraced is RetrieveErr under a span context.
	RetrieveTraced(tc trace.Context, v *video.Video, m int) ([]Result, error)
}

// Engine is a single-node retrieval system: one feature extractor plus an
// in-memory gallery index.
type Engine struct {
	model   models.Model
	ids     []string
	labels  []int
	feats   []*tensor.Tensor
	queries atomic.Int64
	// scratch pools the sharded-scan workspace so a steady-state query
	// allocates only its result slice (see topm.go).
	scratch sync.Pool
	tel     engineTel
}

var _ Retriever = (*Engine)(nil)
var _ BatchRetriever = (*Engine)(nil)

// NewEngine indexes the gallery under the given extractor.
func NewEngine(m models.Model, gallery []*video.Video) *Engine {
	e := &Engine{model: m}
	for _, v := range gallery {
		e.ids = append(e.ids, v.ID)
		e.labels = append(e.labels, v.Label)
		e.feats = append(e.feats, models.Embed(m, v))
	}
	return e
}

// Model exposes the engine's feature extractor (white-box access used only
// by defenses and evaluation, never by the black-box attacks).
func (e *Engine) Model() models.Model { return e.model }

// GallerySize returns the number of indexed videos.
func (e *Engine) GallerySize() int { return len(e.ids) }

// SetTelemetry wires the engine's instruments into the registry under the
// "retrieval" prefix; a nil registry disables instrumentation (the
// default). Telemetry is write-only — enabling it cannot change any
// retrieval result.
func (e *Engine) SetTelemetry(r *telemetry.Registry) {
	e.tel = resolveEngineTel(r, "retrieval")
}

// QueryCount returns the number of Retrieve calls served; attacks use it to
// account for query budgets.
func (e *Engine) QueryCount() int64 { return e.queries.Load() }

// ResetQueryCount zeroes the query counter.
func (e *Engine) ResetQueryCount() { e.queries.Store(0) }

// Retrieve implements Retriever. The gallery scan is sharded across
// parallel.Workers() with a deterministic top-m merge, so the list is
// bitwise-identical at every worker count.
func (e *Engine) Retrieve(v *video.Video, m int) []Result {
	e.queries.Add(1)
	feat := models.Embed(e.model, v)
	return e.timedScan(feat, m, parallel.Workers())
}

// RetrieveBatch implements BatchRetriever: queries fan out across workers
// (each scanning single-threaded, so the batch is the unit of parallelism)
// and each one is billed to QueryCount.
func (e *Engine) RetrieveBatch(vs []*video.Video, m int) [][]Result {
	e.queries.Add(int64(len(vs)))
	e.tel.batchSize.Observe(float64(len(vs)))
	out := make([][]Result, len(vs))
	parallel.For(len(vs), func(_, start, end int) {
		for i := start; i < end; i++ {
			out[i] = e.timedScan(models.Embed(e.model, vs[i]), m, 1)
		}
	})
	return out
}

// timedScan is the instrumented Retrieve hot path: the pooled sharded scan
// plus the per-query telemetry records. With telemetry disabled (nil
// instruments) it is bit- and allocation-identical to calling scan
// directly — the zero-overhead contract the disabled-telemetry benchmark
// pins down.
func (e *Engine) timedScan(feat *tensor.Tensor, m, workers int) []Result {
	e.tel.queries.Inc()
	e.tel.topM.Observe(float64(m))
	sw := e.tel.scanNs.Start()
	rs := e.scan(feat, m, workers)
	sw.Stop()
	e.tel.scanned.Add(int64(len(e.ids)))
	return rs
}

// scan runs the pooled sharded top-m scan over the engine's index.
func (e *Engine) scan(feat *tensor.Tensor, m, workers int) []Result {
	sc := getScratch(&e.scratch)
	defer e.scratch.Put(sc)
	return scanTopM(feat, e.ids, e.labels, e.feats, m, workers, sc)
}

// nearest scores feat against an index and returns the top-m entries,
// sorted ascending by distance with ID tie-breaking for determinism. It is
// the sequential sort-everything reference that the sharded scan
// (scanTopM) must reproduce bitwise; tests and the fuzz oracle diff the
// two paths.
func nearest(feat *tensor.Tensor, ids []string, labels []int, feats []*tensor.Tensor, m int) []Result {
	res := make([]Result, len(ids))
	for i := range ids {
		res[i] = Result{ID: ids[i], Label: labels[i], Dist: feat.Distance(feats[i])}
	}
	sort.Slice(res, func(a, b int) bool { return resultLess(res[a], res[b]) })
	if m > len(res) {
		m = len(res)
	}
	if m < 0 {
		m = 0
	}
	return res[:m]
}

// IDs extracts the ID sequence of a result list (the R^m(v) lists consumed
// by the attack objective).
func IDs(rs []Result) []string {
	return IDsInto(nil, rs)
}

// IDsInto is IDs writing into dst (grown only when its capacity is short),
// for per-query callers that keep a reusable buffer — the attack oracle
// projects every retrieval to an ID list, and a fresh slice per query
// would dominate its steady-state allocations.
func IDsInto(dst []string, rs []Result) []string {
	if cap(dst) < len(rs) || dst == nil {
		dst = make([]string, len(rs))
	}
	dst = dst[:len(rs)]
	for i, r := range rs {
		dst[i] = r.ID
	}
	return dst
}

// EvaluateMAP computes the paper's mAP over the given queries: an item is
// correct when its label matches the query's.
func EvaluateMAP(r Retriever, queries []*video.Video, m int) float64 {
	return Evaluate(r, queries, m).MAP
}

// Quality bundles ranking diagnostics over a query set.
type Quality struct {
	// MAP is the paper's mean average precision (§V-A).
	MAP float64
	// RecallAt1 is the fraction of queries whose top result is correct.
	RecallAt1 float64
	// MRR is the mean reciprocal rank of the first correct result.
	MRR float64
}

// Evaluate computes retrieval quality over the queries; an item is correct
// when its label matches the query's. Retrievers that support batching
// serve the query set with a parallel fan-out; the metrics are identical
// either way.
func Evaluate(r Retriever, queries []*video.Video, m int) Quality {
	var lists [][]Result
	if br, ok := r.(BatchRetriever); ok {
		lists = br.RetrieveBatch(queries, m)
	} else {
		lists = make([][]Result, len(queries))
		for i, q := range queries {
			lists[i] = r.Retrieve(q, m)
		}
	}
	rel := make([][]bool, 0, len(queries))
	for i, q := range queries {
		rs := lists[i]
		row := make([]bool, len(rs))
		for j, res := range rs {
			row[j] = res.Label == q.Label
		}
		rel = append(rel, row)
	}
	return Quality{
		MAP:       metrics.MAP(rel),
		RecallAt1: metrics.RecallAtK(rel, 1),
		MRR:       metrics.MRR(rel),
	}
}
