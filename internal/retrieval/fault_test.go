package retrieval

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"math/rand"

	"duo/internal/dataset"
	"duo/internal/models"
	"duo/internal/telemetry"
)

// stubTransport is a canned-answer node for fault-layer unit tests.
type stubTransport struct {
	mu    sync.Mutex
	rs    []Result
	err   error
	calls int
}

func (s *stubTransport) Nearest(feat []float64, m int) ([]Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.err != nil {
		return nil, s.err
	}
	out := s.rs
	if m >= 0 && m < len(out) {
		out = out[:m]
	}
	return out, nil
}

func (s *stubTransport) Close() error { return nil }

func (s *stubTransport) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func stubResults(n int) []Result {
	rs := make([]Result, n)
	for i := range rs {
		rs[i] = Result{ID: fmt.Sprintf("v%02d", i), Label: i % 3, Dist: float64(i)}
	}
	return rs
}

// chaosSystem builds a cheap deterministic victim: an untrained (but
// seeded) extractor over a tiny corpus — distances are arbitrary but
// stable, which is all the fault-tolerance tests need.
func chaosSystem(t *testing.T) (models.Model, *dataset.Corpus) {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{
		Name: "ChaosSim", Categories: 3, TrainPerCategory: 4, TestPerCategory: 2,
		Frames: 6, Channels: 3, Height: 8, Width: 8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := models.NewC3D(rand.New(rand.NewSource(8)), models.GeometryOf(c.Train[0]), 12)
	return m, c
}

func TestFaultTransportDeterministicSchedule(t *testing.T) {
	mk := func() *FaultTransport {
		return NewFaultTransport(&stubTransport{rs: stubResults(8)}, FaultConfig{
			Seed: 42, PDrop: 0.2, PError: 0.2, PCorrupt: 0.1, PDelay: 0.1,
			Delay: time.Nanosecond,
		})
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		_, errA := a.Nearest([]float64{1}, 4)
		_, errB := b.Nearest([]float64{1}, 4)
		if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
			t.Fatalf("call %d diverged: %v vs %v", i, errA, errB)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	st := a.Stats()
	if st.Drops == 0 || st.Errors == 0 || st.Corrupts == 0 || st.Delays == 0 {
		t.Errorf("expected every fault mode to fire over 200 calls: %+v", st)
	}
}

func TestFaultTransportModes(t *testing.T) {
	inner := &stubTransport{rs: stubResults(8)}

	drop := NewFaultTransport(inner, FaultConfig{PDrop: 1})
	if _, err := drop.Nearest(nil, 4); !errors.Is(err, ErrInjectedDrop) {
		t.Errorf("drop mode: %v", err)
	}
	if inner.callCount() != 0 {
		t.Error("drop mode reached the inner transport")
	}

	fail := NewFaultTransport(inner, FaultConfig{PError: 1})
	if _, err := fail.Nearest(nil, 4); !errors.Is(err, ErrInjectedFailure) {
		t.Errorf("error mode: %v", err)
	}

	corrupt := NewFaultTransport(inner, FaultConfig{PCorrupt: 1})
	rs, err := corrupt.Nearest(nil, 8)
	if !errors.Is(err, ErrInjectedCorrupt) {
		t.Errorf("corrupt mode: %v", err)
	}
	if len(rs) != 4 {
		t.Errorf("corrupt mode returned %d results, want truncated 4", len(rs))
	}

	var slept time.Duration
	delay := NewFaultTransport(inner, FaultConfig{
		PDelay: 1, Delay: 30 * time.Millisecond,
		Sleep: func(d time.Duration) { slept += d },
	})
	if _, err := delay.Nearest(nil, 4); err != nil {
		t.Errorf("delay mode: %v", err)
	}
	if slept != 30*time.Millisecond {
		t.Errorf("delay mode slept %v", slept)
	}
}

func TestRetryTransportRecoversWithDeterministicBackoff(t *testing.T) {
	run := func() ([]time.Duration, int64, error) {
		inner := &stubTransport{rs: stubResults(4)}
		flaky := NewFaultTransport(inner, FaultConfig{})
		flaky.FailNext(2, ErrInjectedDrop)
		var sleeps []time.Duration
		rt := NewRetryTransport(flaky, RetryConfig{
			MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
			Seed:  99,
			Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
		})
		_, err := rt.Nearest([]float64{1}, 2)
		return sleeps, rt.Retries(), err
	}
	s1, retries, err := run()
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if retries != 2 || len(s1) != 2 {
		t.Fatalf("retries = %d, sleeps = %v", retries, s1)
	}
	// Jittered capped exponential: retry k sleeps in [base·2^k/2, base·2^k).
	for k, d := range s1 {
		base := 10 * time.Millisecond << uint(k)
		if d < base/2 || d >= base {
			t.Errorf("retry %d slept %v, want in [%v, %v)", k, d, base/2, base)
		}
	}
	s2, _, _ := run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("backoff schedule not deterministic: %v vs %v", s1, s2)
		}
	}
}

func TestRetryTransportExhaustsAttempts(t *testing.T) {
	inner := &stubTransport{err: ErrInjectedFailure, rs: stubResults(2)}
	rt := NewRetryTransport(inner, RetryConfig{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	if _, err := rt.Nearest(nil, 1); !errors.Is(err, ErrInjectedFailure) {
		t.Errorf("err = %v", err)
	}
	if inner.callCount() != 3 {
		t.Errorf("inner called %d times, want 3", inner.callCount())
	}
}

func TestRetryTransportDoesNotRetryOpenBreaker(t *testing.T) {
	inner := &stubTransport{err: ErrBreakerOpen}
	rt := NewRetryTransport(inner, RetryConfig{MaxAttempts: 5, Sleep: func(time.Duration) {}})
	if _, err := rt.Nearest(nil, 1); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("err = %v", err)
	}
	if inner.callCount() != 1 {
		t.Errorf("inner called %d times, want 1 (fast-fail must not be retried)", inner.callCount())
	}
}

// fakeClock is a manually-advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestBreakerTripsFastFailsAndRecovers(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	inner := &stubTransport{rs: stubResults(4)}
	flaky := NewFaultTransport(inner, FaultConfig{})
	br := NewBreakerTransport(flaky, BreakerConfig{
		FailureThreshold: 3, Cooldown: time.Second, Now: clock.Now,
	})

	// K consecutive failures trip the breaker.
	flaky.FailNext(100, ErrInjectedFailure)
	for i := 0; i < 3; i++ {
		if _, err := br.Nearest(nil, 2); !errors.Is(err, ErrInjectedFailure) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if br.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", br.State())
	}

	// Open: calls fail fast without touching the (still dead) node.
	before := flaky.Stats().Calls
	for i := 0; i < 5; i++ {
		if _, err := br.Nearest(nil, 2); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open call %d: %v", i, err)
		}
	}
	if got := flaky.Stats().Calls; got != before {
		t.Errorf("open breaker still forwarded calls: %d → %d", before, got)
	}
	if br.ShortCircuits() != 5 {
		t.Errorf("short circuits = %d, want 5", br.ShortCircuits())
	}

	// Cooldown elapses while the node is still dead: the half-open probe
	// fails and re-opens the breaker.
	clock.Advance(time.Second)
	if br.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", br.State())
	}
	if _, err := br.Nearest(nil, 2); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("probe: %v", err)
	}
	if br.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", br.State())
	}

	// Node recovers; after another cooldown the probe succeeds and the
	// breaker closes.
	flaky.FailNext(0, nil)
	clock.Advance(time.Second)
	if _, err := br.Nearest(nil, 2); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if br.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", br.State())
	}
	if _, err := br.Nearest(nil, 2); err != nil {
		t.Errorf("closed breaker call: %v", err)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	inner := &stubTransport{rs: stubResults(2)}
	flaky := NewFaultTransport(inner, FaultConfig{})
	br := NewBreakerTransport(flaky, BreakerConfig{FailureThreshold: 3})
	// failure, failure, success, failure, failure: never 3 in a row.
	for _, fail := range []bool{true, true, false, true, true} {
		if fail {
			flaky.FailNext(1, ErrInjectedFailure)
		}
		br.Nearest(nil, 1)
	}
	if br.State() != BreakerClosed {
		t.Errorf("state = %v, want closed (failures were not consecutive)", br.State())
	}
}

// TestChaosDeadlineHungNode: a node that hangs longer than the deadline
// must not stall the scatter/gather query.
func TestChaosDeadlineHungNode(t *testing.T) {
	m, c := chaosSystem(t)

	// A "node" that accepts connections and then never responds.
	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	go func() {
		for {
			conn, err := hung.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the conn silently until test teardown
		}
	}()

	hungTr, err := DialNodeTimeout(hung.Addr().String(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	healthy := &LocalTransport{Shard: NewShard(m, c.Train)}
	cl := NewCluster(m, []Transport{healthy, hungTr})
	defer cl.Close()

	start := time.Now()
	rs, err := cl.RetrieveErr(c.Test[0], 5)
	elapsed := time.Since(start)
	if err == nil {
		t.Error("hung node did not surface an error")
	}
	if len(rs) != 5 {
		t.Errorf("got %d best-effort results from the healthy node", len(rs))
	}
	if elapsed > 5*time.Second {
		t.Errorf("query stalled %v despite the 150ms deadline", elapsed)
	}
}

// TestChaosTransientErrorsRecover: a node with transient errors is retried
// with backoff and the merged list matches the all-healthy cluster's.
func TestChaosTransientErrorsRecover(t *testing.T) {
	m, c := chaosSystem(t)
	half := len(c.Train) / 2
	shardA := NewShard(m, c.Train[:half])
	shardB := NewShard(m, c.Train[half:])

	reference := NewCluster(m, []Transport{
		&LocalTransport{Shard: shardA}, &LocalTransport{Shard: shardB},
	})
	defer reference.Close()
	want, err := reference.RetrieveErr(c.Test[0], 6)
	if err != nil {
		t.Fatal(err)
	}

	flaky := NewFaultTransport(&LocalTransport{Shard: shardB}, FaultConfig{})
	flaky.FailNext(2, ErrInjectedDrop)
	retried := NewRetryTransport(flaky, RetryConfig{
		MaxAttempts: 4, Seed: 5, Sleep: func(time.Duration) {},
	})
	cl := NewCluster(m, []Transport{&LocalTransport{Shard: shardA}, retried}).
		SetPolicy(RequireAll())
	defer cl.Close()

	got, err := cl.RetrieveErr(c.Test[0], 6)
	if err != nil {
		t.Fatalf("transient faults leaked through retry: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("merged list differs at %d: %v vs %v", i, got[i].ID, want[i].ID)
		}
	}
	if retried.Retries() != 2 {
		t.Errorf("retries = %d, want 2", retried.Retries())
	}
}

// TestChaosBreakerSkipsDeadNode: a persistently dead node trips its
// breaker and is skipped (fail-fast) until a half-open probe succeeds.
func TestChaosBreakerSkipsDeadNode(t *testing.T) {
	m, c := chaosSystem(t)
	half := len(c.Train) / 2
	clock := &fakeClock{now: time.Unix(0, 0)}

	dead := NewFaultTransport(&LocalTransport{Shard: NewShard(m, c.Train[half:])}, FaultConfig{})
	dead.FailNext(1<<30, ErrInjectedDrop)
	br := NewBreakerTransport(dead, BreakerConfig{
		FailureThreshold: 2, Cooldown: time.Minute, Now: clock.Now,
	})
	cl := NewCluster(m, []Transport{
		&LocalTransport{Shard: NewShard(m, c.Train[:half])}, br,
	})
	defer cl.Close()

	q := c.Test[0]
	// Two failed queries trip the node's breaker.
	for i := 0; i < 2; i++ {
		if _, err := cl.RetrieveErr(q, 4); err == nil {
			t.Fatal("dead node did not surface an error")
		}
	}
	if br.State() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", br.State())
	}

	// While open, queries keep answering from the live node without
	// touching the dead one.
	before := dead.Stats().Calls
	for i := 0; i < 3; i++ {
		rs, err := cl.RetrieveErr(q, 4)
		if err == nil || len(rs) == 0 {
			t.Fatalf("best-effort under open breaker: err=%v, %d results", err, len(rs))
		}
	}
	if got := dead.Stats().Calls; got != before {
		t.Errorf("open breaker forwarded %d calls to the dead node", got-before)
	}

	// Health surfaces the breaker state and failure counts.
	h := cl.Health()
	if h[1].Breaker != "open" || h[1].ConsecutiveFailures < 2 || h[1].Healthy() {
		t.Errorf("node 1 health = %+v, want open breaker with failures", h[1])
	}
	if !h[0].Healthy() || h[0].Successes == 0 {
		t.Errorf("node 0 health = %+v, want healthy", h[0])
	}

	// Node revives; after the cooldown the half-open probe succeeds and
	// the cluster is whole again.
	dead.FailNext(0, nil)
	clock.Advance(time.Minute)
	if _, err := cl.RetrieveErr(q, 4); err != nil {
		t.Fatalf("probe query after revival: %v", err)
	}
	if br.State() != BreakerClosed {
		t.Errorf("breaker = %v, want closed after successful probe", br.State())
	}
	if h := cl.Health(); !h[1].Healthy() {
		t.Errorf("revived node 1 health = %+v, want healthy", h[1])
	}
}

// TestChaosPartialResultPolicies: table-driven acceptance test — 1 of 3
// nodes fails under each policy.
func TestChaosPartialResultPolicies(t *testing.T) {
	m, c := chaosSystem(t)
	third := len(c.Train) / 3
	shards := []*Shard{
		NewShard(m, c.Train[:third]),
		NewShard(m, c.Train[third:2*third]),
		NewShard(m, c.Train[2*third:]),
	}
	q := c.Test[1]

	cases := []struct {
		name      string
		policy    Policy
		nodeDown  bool
		wantErr   bool
		wantEmpty bool
	}{
		{"best-effort/healthy", BestEffort(), false, false, false},
		{"best-effort/1-down", BestEffort(), true, true, false},
		{"require-all/healthy", RequireAll(), false, false, false},
		{"require-all/1-down", RequireAll(), true, true, true},
		{"quorum2/healthy", Quorum(2), false, false, false},
		{"quorum2/1-down", Quorum(2), true, false, false},
		{"quorum3/1-down", Quorum(3), true, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nodes := make([]Transport, len(shards))
			for i, sh := range shards {
				nodes[i] = &LocalTransport{Shard: sh}
			}
			if tc.nodeDown {
				ft := NewFaultTransport(nodes[2], FaultConfig{PError: 1})
				nodes[2] = ft
			}
			cl := NewCluster(m, nodes).SetPolicy(tc.policy)
			defer cl.Close()
			rs, err := cl.RetrieveErr(q, 5)
			if tc.wantErr && err == nil {
				t.Errorf("policy %v: expected an error", tc.policy)
			}
			if !tc.wantErr && err != nil {
				t.Errorf("policy %v: unexpected error %v", tc.policy, err)
			}
			if tc.wantEmpty && len(rs) != 0 {
				t.Errorf("policy %v: got %d results, want none", tc.policy, len(rs))
			}
			if !tc.wantEmpty && len(rs) == 0 {
				t.Errorf("policy %v: got no results", tc.policy)
			}
		})
	}
}

// TestTCPTransportSurvivesServerRestart is the regression test for gob
// codec poisoning: a transport must recover (fresh conn + codecs) after
// its server dies and comes back.
func TestTCPTransportSurvivesServerRestart(t *testing.T) {
	m, c := chaosSystem(t)
	shard := NewShard(m, c.Train[:6])
	srv, err := ServeNode("127.0.0.1:0", shard)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	tr, err := DialNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	feat := models.Embed(m, c.Test[0]).Data()
	if _, err := tr.Nearest(feat, 3); err != nil {
		t.Fatalf("healthy call: %v", err)
	}

	// Kill the server: the in-flight connection dies and the next call
	// must fail (the old transport would stay poisoned forever here).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Nearest(feat, 3); err == nil {
		t.Fatal("call against a dead server succeeded")
	}

	// Restart on the same address; the transport reconnects by itself.
	srv2, err := ServeNode(addr, shard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	rs, err := tr.Nearest(feat, 3)
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if len(rs) != 3 {
		t.Errorf("got %d results after restart", len(rs))
	}
	if tr.Reconnects() == 0 {
		t.Error("transport did not record a reconnect")
	}
}

// TestTCPTransportKeepsConnOnNodeError: a well-framed node-side error must
// not cost the connection (the stream is still in sync).
func TestTCPTransportKeepsConnOnNodeError(t *testing.T) {
	m, c := chaosSystem(t)
	srv, err := ServeNode("127.0.0.1:0", NewShard(m, c.Train[:6]))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialNode(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	feat := models.Embed(m, c.Test[0]).Data()
	if _, err := tr.Nearest(feat, -1); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, err := tr.Nearest(feat, 2); err != nil {
		t.Fatalf("call after node error: %v", err)
	}
	if tr.Reconnects() != 0 {
		t.Errorf("reconnects = %d, want 0 (app errors must not break the conn)", tr.Reconnects())
	}
}

// TestRetryTelemetryMatchesFaultSchedule scripts an exact fault schedule
// and requires the retry counters to mirror it exactly: attempts = calls +
// injected transient faults, retries = injected transient faults.
func TestRetryTelemetryMatchesFaultSchedule(t *testing.T) {
	reg := telemetry.New()
	flaky := NewFaultTransport(&stubTransport{rs: stubResults(4)}, FaultConfig{})
	rt := NewRetryTransport(flaky, RetryConfig{MaxAttempts: 4, Sleep: func(time.Duration) {}})
	rt.SetTelemetry(reg, "node.retry")

	// Schedule: call 1 → 2 transient faults then success; call 2 → clean;
	// call 3 → 1 transient fault then success. Total: 3 retries, 6 attempts.
	schedule := []int{2, 0, 1}
	for i, faults := range schedule {
		flaky.FailNext(faults, ErrInjectedDrop)
		if _, err := rt.Nearest([]float64{1}, 2); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	s := reg.Snapshot()
	wantRetries := int64(2 + 0 + 1)
	if got := s.Counters["node.retry.retries"]; got != wantRetries {
		t.Errorf("retries counter = %d, want %d (the injected fault count)", got, wantRetries)
	}
	if got := s.Counters["node.retry.attempts"]; got != int64(len(schedule))+wantRetries {
		t.Errorf("attempts counter = %d, want %d", got, int64(len(schedule))+wantRetries)
	}
	if got := rt.Retries(); got != wantRetries {
		t.Errorf("Retries() = %d disagrees with telemetry %d", got, wantRetries)
	}
}

// TestRetryTelemetryExcludesBreakerFastFail: a breaker fast-fail aborts the
// retry loop, so it must appear as one attempt and zero retries — never
// double-counted as a retried failure.
func TestRetryTelemetryExcludesBreakerFastFail(t *testing.T) {
	reg := telemetry.New()
	inner := &stubTransport{err: ErrBreakerOpen}
	rt := NewRetryTransport(inner, RetryConfig{MaxAttempts: 5, Sleep: func(time.Duration) {}})
	rt.SetTelemetry(reg, "node.retry")

	if _, err := rt.Nearest(nil, 1); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v", err)
	}
	s := reg.Snapshot()
	if got := s.Counters["node.retry.attempts"]; got != 1 {
		t.Errorf("attempts = %d, want 1 (fast-fail is not retried)", got)
	}
	if got := s.Counters["node.retry.retries"]; got != 0 {
		t.Errorf("retries = %d, want 0 (fast-fail must not count as a retry)", got)
	}
}

// TestBreakerTelemetryMatchesFaultSchedule drives the breaker through
// trip → fast-fail → failed probe → recovery with a scripted fault schedule
// and asserts every counter and the state gauge track it exactly.
func TestBreakerTelemetryMatchesFaultSchedule(t *testing.T) {
	reg := telemetry.New()
	clock := &fakeClock{now: time.Unix(0, 0)}
	flaky := NewFaultTransport(&stubTransport{rs: stubResults(4)}, FaultConfig{})
	br := NewBreakerTransport(flaky, BreakerConfig{
		FailureThreshold: 3, Cooldown: time.Minute, Now: clock.Now,
	})
	br.SetTelemetry(reg, "node.breaker")

	state := func() int64 { return reg.Snapshot().Gauges["node.breaker.state"] }
	if state() != int64(BreakerClosed) {
		t.Fatalf("initial state gauge = %d, want closed", state())
	}

	// 3 consecutive injected failures trip the breaker once.
	flaky.FailNext(3, ErrInjectedFailure)
	for i := 0; i < 3; i++ {
		br.Nearest(nil, 2)
	}
	s := reg.Snapshot()
	if s.Counters["node.breaker.opened"] != 1 {
		t.Errorf("opened = %d, want 1", s.Counters["node.breaker.opened"])
	}
	if state() != int64(BreakerOpen) {
		t.Errorf("state gauge = %d, want open", state())
	}

	// 4 calls while open: all short-circuit, none reach the node.
	for i := 0; i < 4; i++ {
		if _, err := br.Nearest(nil, 2); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open call %d: %v", i, err)
		}
	}
	s = reg.Snapshot()
	if got := s.Counters["node.breaker.short_circuits"]; got != 4 {
		t.Errorf("short_circuits = %d, want 4", got)
	}
	if got := br.ShortCircuits(); got != 4 {
		t.Errorf("ShortCircuits() = %d disagrees with telemetry", got)
	}

	// Failed half-open probe re-opens: a second opened transition.
	flaky.FailNext(1, ErrInjectedFailure)
	clock.Advance(time.Minute)
	br.Nearest(nil, 2)
	if got := reg.Snapshot().Counters["node.breaker.opened"]; got != 2 {
		t.Errorf("opened after failed probe = %d, want 2", got)
	}

	// Successful probe closes; the gauge must settle on closed.
	clock.Advance(time.Minute)
	if _, err := br.Nearest(nil, 2); err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	if state() != int64(BreakerClosed) {
		t.Errorf("state gauge = %d, want closed after recovery", state())
	}
	// No extra short-circuits were recorded along the way.
	if got := reg.Snapshot().Counters["node.breaker.short_circuits"]; got != 4 {
		t.Errorf("short_circuits drifted to %d, want 4", got)
	}
}

// TestClusterTelemetryMatchesFaultSchedule wires a cluster with one healthy
// and one dying node (behind a breaker) and checks the per-node counters
// split exactly: real failures land in .errors, breaker fast-fails in
// .fastfail, and neither is double-counted.
func TestClusterTelemetryMatchesFaultSchedule(t *testing.T) {
	m, c := chaosSystem(t)
	half := len(c.Train) / 2
	reg := telemetry.New()
	clock := &fakeClock{now: time.Unix(0, 0)}

	dead := NewFaultTransport(&LocalTransport{Shard: NewShard(m, c.Train[half:])}, FaultConfig{})
	dead.FailNext(1<<30, ErrInjectedDrop)
	br := NewBreakerTransport(dead, BreakerConfig{
		FailureThreshold: 2, Cooldown: time.Hour, Now: clock.Now,
	})
	br.SetTelemetry(reg, "cluster.node1.breaker")
	cl := NewCluster(m, []Transport{
		&LocalTransport{Shard: NewShard(m, c.Train[:half])}, br,
	})
	cl.SetTelemetry(reg)
	defer cl.Close()

	q := c.Test[0]
	// 2 queries reach the dying node and fail, tripping the breaker; the
	// next 3 fast-fail without touching it.
	for i := 0; i < 5; i++ {
		cl.RetrieveErr(q, 4)
	}

	s := reg.Snapshot()
	if got := s.Counters["cluster.node1.errors"]; got != 2 {
		t.Errorf("node1 errors = %d, want exactly the 2 injected pre-trip faults", got)
	}
	if got := s.Counters["cluster.node1.fastfail"]; got != 3 {
		t.Errorf("node1 fastfail = %d, want 3 (open-breaker calls)", got)
	}
	if got := s.Counters["cluster.node1.ok"]; got != 0 {
		t.Errorf("node1 ok = %d, want 0", got)
	}
	if got := s.Counters["cluster.node0.ok"]; got != 5 {
		t.Errorf("node0 ok = %d, want 5", got)
	}
	if got := s.Gauges["cluster.node1.breaker_state"]; got != int64(BreakerOpen) {
		t.Errorf("node1 breaker_state gauge = %d, want open", got)
	}
	if got := s.Counters["cluster.node1.breaker.short_circuits"]; got != 3 {
		t.Errorf("breaker short_circuits = %d, want 3 (must equal cluster fastfail)", got)
	}
	if got := s.Counters["cluster.queries"]; got != 5 {
		t.Errorf("cluster queries = %d, want 5", got)
	}
	// Health() and telemetry must tell the same story.
	h := cl.Health()
	if int64(h[1].Failures) != s.Counters["cluster.node1.errors"]+s.Counters["cluster.node1.fastfail"] {
		t.Errorf("health failures %d != telemetry errors+fastfail %d",
			h[1].Failures, s.Counters["cluster.node1.errors"]+s.Counters["cluster.node1.fastfail"])
	}
}

// TestRetrievePolicyNilOnViolation pins the error-swallowing Retrieve
// behaviour under strict policies: nil results, never a partial list.
func TestRetrievePolicyNilOnViolation(t *testing.T) {
	m, c := chaosSystem(t)
	down := NewFaultTransport(&LocalTransport{Shard: NewShard(m, c.Train[2:])}, FaultConfig{PError: 1})
	cl := NewCluster(m, []Transport{
		&LocalTransport{Shard: NewShard(m, c.Train[:2])}, down,
	}).SetPolicy(RequireAll())
	defer cl.Close()
	if rs := cl.Retrieve(c.Test[0], 3); rs != nil {
		t.Errorf("require-all Retrieve returned %d results on partial failure", len(rs))
	}
}
