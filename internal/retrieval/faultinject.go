package retrieval

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Injected fault errors, distinguishable from real transport errors so
// chaos tests can assert exactly which path fired.
var (
	// ErrInjectedDrop simulates a request lost on the wire (connection
	// reset before any response).
	ErrInjectedDrop = errors.New("retrieval: injected drop")
	// ErrInjectedFailure simulates a node-side error response.
	ErrInjectedFailure = errors.New("retrieval: injected failure")
	// ErrInjectedCorrupt simulates a response truncated mid-payload: the
	// caller sees a partial result list plus a decode error.
	ErrInjectedCorrupt = errors.New("retrieval: injected corrupt response")
)

// FaultConfig parameterizes a FaultTransport. Per-call fault probabilities
// are evaluated in the order drop, error, corrupt, delay, overload from a
// single seeded RNG, so a given seed always yields the same fault sequence.
type FaultConfig struct {
	// Seed drives the deterministic fault schedule (default 1).
	Seed int64
	// PDrop is the probability a call is dropped (error, inner not called).
	PDrop float64
	// PError is the probability a call fails with ErrInjectedFailure.
	PError float64
	// PCorrupt is the probability a call returns a truncated result list
	// together with ErrInjectedCorrupt.
	PCorrupt float64
	// PDelay is the probability a call is delayed by Delay before being
	// forwarded (models a slow node; combine with transport deadlines).
	PDelay float64
	// POverload is the probability a call is shed with ErrOverloaded
	// (models a node at its admission limit; inner not called). Its draw
	// comes AFTER the four original modes', so enabling overload injection
	// never perturbs an existing seeded drop/error/corrupt/delay schedule.
	POverload float64
	// Delay is the injected latency for delay faults (default 50ms).
	Delay time.Duration
	// Sleep is the delay function; tests may inject a recorder
	// (default time.Sleep).
	Sleep func(time.Duration)
}

func (c *FaultConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Delay <= 0 {
		c.Delay = 50 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep //duolint:allow walltime injectable-sleep default; tests pin a recording stub
	}
}

// FaultStats counts the faults a FaultTransport injected, by mode.
type FaultStats struct {
	Calls, Drops, Errors, Corrupts, Delays, Overloads int64
}

// FaultTransport wraps a Transport with seeded, deterministic fault
// injection for chaos tests: drop, error, corrupt-truncate, and delay
// modes, each with a configurable per-call probability, plus an explicit
// FailNext script for tests that need an exact failure pattern rather
// than a statistical one.
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu        sync.Mutex
	rng       *rand.Rand
	stats     FaultStats
	scripted  int   // fail the next N calls...
	scriptErr error // ...with this error
}

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner with the given fault schedule.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	cfg.applyDefaults()
	return &FaultTransport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// FailNext makes the next n calls fail with err (before any probabilistic
// fault is considered). It overrides the seeded schedule for exactly those
// calls, giving tests precise failure patterns.
func (t *FaultTransport) FailNext(n int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.scripted = n
	t.scriptErr = err
}

// Stats returns a snapshot of the injected-fault counters.
func (t *FaultTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// plan draws this call's fault from the script or the seeded schedule.
// It returns the fault kind ("" = none).
func (t *FaultTransport) plan() (kind string, scriptErr error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Calls++
	if t.scripted > 0 {
		t.scripted--
		return "script", t.scriptErr
	}
	// One draw per mode keeps the schedule stable when probabilities for
	// other modes change. The overload draw happens last and only when the
	// mode is enabled, so pre-overload seeds keep their exact per-call
	// draw count and with it their fault sequences.
	u1, u2, u3, u4 := t.rng.Float64(), t.rng.Float64(), t.rng.Float64(), t.rng.Float64()
	u5 := 1.0
	if t.cfg.POverload > 0 {
		u5 = t.rng.Float64()
	}
	switch {
	case u1 < t.cfg.PDrop:
		t.stats.Drops++
		return "drop", nil
	case u2 < t.cfg.PError:
		t.stats.Errors++
		return "error", nil
	case u3 < t.cfg.PCorrupt:
		t.stats.Corrupts++
		return "corrupt", nil
	case u4 < t.cfg.PDelay:
		t.stats.Delays++
		return "delay", nil
	case u5 < t.cfg.POverload:
		t.stats.Overloads++
		return "overload", nil
	}
	return "", nil
}

// Nearest implements Transport.
func (t *FaultTransport) Nearest(feat []float64, m int) ([]Result, error) {
	kind, scriptErr := t.plan()
	switch kind {
	case "script":
		if scriptErr == nil {
			scriptErr = ErrInjectedFailure
		}
		return nil, scriptErr
	case "drop":
		return nil, ErrInjectedDrop
	case "error":
		return nil, ErrInjectedFailure
	case "corrupt":
		rs, err := t.inner.Nearest(feat, m)
		if err != nil {
			return nil, err
		}
		return rs[:len(rs)/2], ErrInjectedCorrupt
	case "overload":
		return nil, ErrOverloaded
	case "delay":
		t.cfg.Sleep(t.cfg.Delay)
	}
	return t.inner.Nearest(feat, m)
}

// Close implements Transport.
func (t *FaultTransport) Close() error { return t.inner.Close() }
