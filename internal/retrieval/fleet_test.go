package retrieval

// Integration tests for the fleet observability plane: a live multi-node
// TCP cluster whose merged fleet view must equal the arithmetic sum of
// the per-node snapshots, byte-stable JSON for idle re-snapshots, and
// graceful degradation against nodes that predate the stats protocol.

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"duo/internal/telemetry"
)

// fleetCluster builds a 3-node TCP cluster with one telemetry registry
// per node (as retrievald runs it) plus a coordinator registry.
func fleetCluster(t *testing.T) (c *Cluster, sizes []int, stop func()) {
	t.Helper()
	m, corpus := chaosSystem(t)
	const n = 3
	parts := make([][]int, n)
	for i := range corpus.Train {
		parts[i%n] = append(parts[i%n], i)
	}
	var nodes []Transport
	var cleanups []func()
	for i := 0; i < n; i++ {
		reg := telemetry.New()
		var vids []int = parts[i]
		gallery := corpus.Train[:0:0]
		for _, vi := range vids {
			gallery = append(gallery, corpus.Train[vi])
		}
		shard := NewShard(m, gallery)
		shard.SetTelemetry(reg)
		sizes = append(sizes, shard.Size())
		srv, err := ServeNodeConfig("127.0.0.1:0", shard, NodeServerConfig{Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := DialNodeTimeout(srv.Addr(), 10*time.Second)
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		nodes = append(nodes, tr)
		cleanups = append(cleanups, func() { tr.Close(); srv.Close() })
	}
	cl := NewCluster(m, nodes)
	cl.SetTelemetry(telemetry.New())
	// Exercise the serving path so every node has counters to merge.
	for round := 0; round < 2; round++ {
		for _, v := range corpus.Test {
			if _, err := cl.RetrieveErr(v, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cl, sizes, func() {
		for _, f := range cleanups {
			f()
		}
	}
}

// TestFleetSnapshotMergesExactly is the acceptance check: over a live
// 3-node TCP cluster, every merged fleet counter equals the arithmetic
// sum of the per-node snapshots, and bucketed histograms merge count-
// exactly.
func TestFleetSnapshotMergesExactly(t *testing.T) {
	cl, sizes, stop := fleetCluster(t)
	defer stop()

	view, err := cl.FleetSnapshot(false)
	if err != nil {
		t.Fatal(err)
	}
	if view.Nodes != 3 || view.Reachable != 3 {
		t.Fatalf("fleet reach = %d/%d, want 3/3 (per-node: %+v)", view.Reachable, view.Nodes, view.PerNode)
	}
	wantSize := 0
	for _, s := range sizes {
		wantSize += s
	}
	if view.Size != wantSize {
		t.Errorf("fleet size = %d, want %d", view.Size, wantSize)
	}

	// Every fleet counter is the arithmetic sum of the per-node values —
	// both directions, so the merge neither drops nor invents names.
	sums := map[string]int64{}
	for _, fn := range view.PerNode {
		if fn.Snapshot == nil {
			t.Fatalf("node %d: no snapshot (%+v)", fn.Node, fn)
		}
		if fn.Addr == "" {
			t.Errorf("node %d: no address label", fn.Node)
		}
		for k, v := range fn.Snapshot.Counters {
			sums[k] += v
		}
	}
	if len(sums) == 0 {
		t.Fatal("no per-node counters: serving traffic left no telemetry")
	}
	for k, want := range sums {
		if got := view.Fleet.Counters[k]; got != want {
			t.Errorf("fleet counter %s = %d, want per-node sum %d", k, got, want)
		}
	}
	for k := range view.Fleet.Counters {
		if _, ok := sums[k]; !ok {
			t.Errorf("fleet counter %s not present on any node", k)
		}
	}

	// The scan histogram merges count-exactly across nodes.
	var histSum int64
	for _, fn := range view.PerNode {
		histSum += fn.Snapshot.Histograms["shard.scan_ns"].Count
	}
	if got := view.Fleet.Histograms["shard.scan_ns"].Count; got != histSum || histSum == 0 {
		t.Errorf("fleet scan_ns count = %d, want per-node sum %d (> 0)", got, histSum)
	}

	// The coordinator section stays separate from the node merge.
	if view.Coordinator == nil {
		t.Fatal("no coordinator section")
	}
	if got := view.Coordinator.Counters["cluster.queries"]; got == 0 {
		t.Error("coordinator section missing cluster.queries")
	}
	if _, merged := view.Fleet.Counters["cluster.queries"]; merged {
		t.Error("coordinator counters leaked into the node merge")
	}
}

// TestFleetSnapshotByteStable: two snapshots of an idle fleet marshal to
// identical JSON — the /fleet.json determinism contract.
func TestFleetSnapshotByteStable(t *testing.T) {
	cl, _, stop := fleetCluster(t)
	defer stop()

	take := func() []byte {
		t.Helper()
		view, err := cl.FleetSnapshot(false)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(view)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := take(), take()
	if string(a) != string(b) {
		t.Errorf("idle fleet snapshots differ:\n%s\nvs\n%s", a, b)
	}
}

// TestFleetSnapshotDegradesOnUnsupportedNode: a node that predates the
// stats protocol becomes an Err entry, not a failed view.
func TestFleetSnapshotDegradesOnUnsupportedNode(t *testing.T) {
	m, corpus := chaosSystem(t)
	reg := telemetry.New()
	shard := NewShard(m, corpus.Train)
	shard.SetTelemetry(reg)
	cl := NewCluster(m, []Transport{
		&LocalTransport{Shard: shard, Telemetry: reg},
		&stubTransport{rs: stubResults(4)}, // no StatsPuller
	})
	cl.Retrieve(corpus.Test[0], 4)

	view, err := cl.FleetSnapshot(false)
	if err != nil {
		t.Fatal(err)
	}
	if view.Reachable != 1 || view.Nodes != 2 {
		t.Fatalf("reach = %d/%d, want 1/2", view.Reachable, view.Nodes)
	}
	if view.PerNode[1].Err == "" || view.PerNode[1].Snapshot != nil {
		t.Errorf("unsupported node entry = %+v, want Err set and no snapshot", view.PerNode[1])
	}
	if got, want := view.Fleet.Counters["shard.queries"], view.PerNode[0].Snapshot.Counters["shard.queries"]; got != want {
		t.Errorf("fleet merge = %d, want the one reachable node's %d", got, want)
	}
}

// TestTCPStatsAgainstLegacyServer: an old server answers the probe as an
// empty scan, which the client maps to ErrStatsUnsupported — no hang, no
// connection loss.
func TestTCPStatsAgainstLegacyServer(t *testing.T) {
	addr, stop := legacyNodeServer(t)
	defer stop()
	tr, err := DialNodeTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	_, err = tr.Stats(false)
	if !errors.Is(err, ErrStatsUnsupported) {
		t.Fatalf("stats against legacy server: err = %v, want ErrStatsUnsupported", err)
	}
	// The connection survives: a scan on the same transport still works.
	if _, err := tr.Nearest([]float64{1, 2}, 1); err != nil {
		t.Errorf("scan after unsupported stats probe failed: %v", err)
	}
}

// gateIndex blocks every scan until released, so a test can hold a
// node's only in-flight slot at a deterministic point.
type gateIndex struct {
	inner   GalleryIndex
	entered chan struct{}
	release chan struct{}
}

func (g *gateIndex) Nearest(feat []float64, m int) []Result {
	g.entered <- struct{}{}
	<-g.release
	return g.inner.Nearest(feat, m)
}

func (g *gateIndex) Size() int { return g.inner.Size() }

// TestStatsBypassesAdmission: a saturated node sheds scans but still
// answers the stats probe — observability stays readable under overload.
func TestStatsBypassesAdmission(t *testing.T) {
	m, corpus := chaosSystem(t)
	reg := telemetry.New()
	gate := &gateIndex{
		inner:   NewShard(m, corpus.Train),
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	srv, err := ServeNodeConfig("127.0.0.1:0", gate, NodeServerConfig{
		Telemetry: reg,
		Admission: AdmissionConfig{MaxInFlight: 1, MaxQueue: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialNodeTimeout(srv.Addr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Occupy the node's only slot, then saturate it.
	feat := make([]float64, 12) // the chaosSystem extractor's embedding dim
	done := make(chan error, 1)
	go func() {
		_, err := tr.Nearest(feat, 1)
		done <- err
	}()
	<-gate.entered
	if _, err := tr.Nearest(feat, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("scan on saturated node: err = %v, want ErrOverloaded", err)
	}
	st, err := tr.Stats(false)
	if err != nil {
		t.Fatalf("stats on saturated node: %v", err)
	}
	if st.Snapshot.Counters["node.admission.shed"] == 0 {
		t.Errorf("shed counter missing from snapshot under overload: %+v", st.Snapshot.Counters)
	}
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("released scan failed: %v", err)
	}
}
