package retrieval

import (
	"bytes"
	"testing"

	"duo/internal/tensor"
)

// FuzzReadShard hardens the index decoder: corrupted bytes must yield an
// error or a consistent shard, never a panic or an inconsistent index.
func FuzzReadShard(f *testing.F) {
	shard := &Shard{
		ids:    []string{"a", "b"},
		labels: []int{0, 1},
		feats:  []*tensor.Tensor{tensor.From([]float64{1, 2}, 2), tensor.From([]float64{3, 4}, 2)},
	}
	var buf bytes.Buffer
	if err := shard.WriteIndex(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	if len(valid) > 8 {
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/2] ^= 0x5a
		f.Add(flipped)
		f.Add(valid[:len(valid)-3])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadShard(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded shard must answer queries without panicking and with
		// a result count bounded by its size.
		if got.Size() == 0 {
			return
		}
		dim := got.feats[0].Len()
		rs := got.Nearest(make([]float64, dim), got.Size()+5)
		if len(rs) > got.Size() {
			t.Fatalf("returned %d results from %d entries", len(rs), got.Size())
		}
	})
}
