package retrieval

import (
	"math/bits"
	"sort"

	"duo/internal/models"
	"duo/internal/tensor"
	"duo/internal/video"
)

// HashEngine is the hash-retrieval variant of the service: gallery
// embeddings are binarized into compact codes and queries rank by Hamming
// distance. This is the deployment style of the paper's reference model
// [42] (HashNet) and of the video-hash systems ref. [32] attacks — binary
// codes make billion-scale galleries searchable with XOR+popcount.
//
// Bits are balanced by thresholding each embedding coordinate at its
// gallery median (raw sign binarization degenerates when coordinates are
// bias-dominated and never change sign).
//
// The black-box interface is identical to the exact Engine's, so every
// attack in this repository runs against it unchanged.
type HashEngine struct {
	model      models.Model
	bits       int
	thresholds []float64
	ids        []string
	labels     []int
	codes      [][]uint64
}

var _ Retriever = (*HashEngine)(nil)

// NewHashEngine binarizes the gallery under the extractor. The code length
// equals the model's feature dimension (one bit per embedding coordinate).
func NewHashEngine(m models.Model, gallery []*video.Video) *HashEngine {
	e := &HashEngine{model: m, bits: m.FeatureDim()}
	feats := make([]*tensor.Tensor, len(gallery))
	for i, v := range gallery {
		feats[i] = models.Embed(m, v)
	}
	e.thresholds = coordinateMedians(feats, m.FeatureDim())
	for i, v := range gallery {
		e.ids = append(e.ids, v.ID)
		e.labels = append(e.labels, v.Label)
		e.codes = append(e.codes, e.code(feats[i]))
	}
	return e
}

// coordinateMedians returns the per-coordinate median over the gallery
// embeddings, used as balanced binarization thresholds.
func coordinateMedians(feats []*tensor.Tensor, dim int) []float64 {
	med := make([]float64, dim)
	if len(feats) == 0 {
		return med
	}
	col := make([]float64, len(feats))
	for j := 0; j < dim; j++ {
		for i, f := range feats {
			col[i] = f.Data()[j]
		}
		sort.Float64s(col)
		if n := len(col); n%2 == 1 {
			med[j] = col[n/2]
		} else {
			med[j] = (col[n/2-1] + col[n/2]) / 2
		}
	}
	return med
}

// code packs the thresholded embedding into 64-bit words.
func (e *HashEngine) code(feat *tensor.Tensor) []uint64 {
	d := feat.Data()
	words := make([]uint64, (len(d)+63)/64)
	for i, v := range d {
		if v > e.thresholds[i] {
			words[i/64] |= 1 << uint(i%64)
		}
	}
	return words
}

// Bits returns the hash code length.
func (e *HashEngine) Bits() int { return e.bits }

// GallerySize returns the number of indexed videos.
func (e *HashEngine) GallerySize() int { return len(e.ids) }

// signCode packs the embedding's coordinate signs into 64-bit words
// (bit = 1 where the coordinate is positive).
func signCode(feat *tensor.Tensor) []uint64 {
	d := feat.Data()
	words := make([]uint64, (len(d)+63)/64)
	for i, v := range d {
		if v > 0 {
			words[i/64] |= 1 << uint(i%64)
		}
	}
	return words
}

// hamming returns the Hamming distance between two equal-length codes.
func hamming(a, b []uint64) int {
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// Retrieve implements Retriever: binarize the query and rank the gallery
// by Hamming distance (ties broken by ID for determinism).
func (e *HashEngine) Retrieve(v *video.Video, m int) []Result {
	q := e.code(models.Embed(e.model, v))
	res := make([]Result, len(e.ids))
	for i := range e.ids {
		res[i] = Result{ID: e.ids[i], Label: e.labels[i], Dist: float64(hamming(q, e.codes[i]))}
	}
	sort.Slice(res, func(a, b int) bool { return resultLess(res[a], res[b]) })
	if m > len(res) {
		m = len(res)
	}
	if m < 0 {
		m = 0
	}
	return res[:m]
}
