package retrieval

import (
	"testing"

	"duo/internal/tensor"
)

func TestSignCodePacking(t *testing.T) {
	// Coordinates: +, −, 0, + → bits 0 and 3 set.
	feat := tensor.From([]float64{1, -2, 0, 0.5}, 4)
	code := signCode(feat)
	if len(code) != 1 {
		t.Fatalf("words = %d", len(code))
	}
	if code[0] != 0b1001 {
		t.Errorf("code = %b, want 1001", code[0])
	}
	// 65 dims → 2 words; last coordinate positive sets bit 0 of word 1.
	big := tensor.New(65)
	big.Set(1, 64)
	code = signCode(big)
	if len(code) != 2 || code[0] != 0 || code[1] != 1 {
		t.Errorf("65-dim code = %v", code)
	}
}

func TestHammingDistance(t *testing.T) {
	a := []uint64{0b1010, 0}
	b := []uint64{0b0110, 1}
	if got := hamming(a, b); got != 3 {
		t.Errorf("hamming = %d, want 3", got)
	}
	if got := hamming(a, a); got != 0 {
		t.Errorf("self hamming = %d", got)
	}
}

func TestHashEngineBasics(t *testing.T) {
	_, c, m := testSystem(t)
	h := NewHashEngine(m, c.Train)
	if h.Bits() != m.FeatureDim() {
		t.Errorf("bits = %d", h.Bits())
	}
	if h.GallerySize() != len(c.Train) {
		t.Errorf("size = %d", h.GallerySize())
	}
	rs := h.Retrieve(c.Test[0], 5)
	if len(rs) != 5 {
		t.Fatalf("got %d results", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Dist < rs[i-1].Dist {
			t.Fatal("not sorted by Hamming distance")
		}
	}
	// Gallery self-query: distance 0 at rank 1.
	self := h.Retrieve(c.Train[0], 1)
	if self[0].ID != c.Train[0].ID || self[0].Dist != 0 {
		t.Errorf("self retrieval = %+v", self[0])
	}
}

func TestHashEngineRetrievalQuality(t *testing.T) {
	eng, c, m := testSystem(t)
	h := NewHashEngine(m, c.Train)
	exact := EvaluateMAP(eng, c.Test, 6)
	hashed := EvaluateMAP(h, c.Test, 6)
	// Binarization loses precision but must stay far above chance (0.25)
	// and within striking distance of the exact engine.
	if hashed < 0.3 {
		t.Errorf("hash mAP = %g, want > 0.3", hashed)
	}
	if hashed < exact-0.45 {
		t.Errorf("hash mAP %g collapsed versus exact %g", hashed, exact)
	}
}

func TestHashEngineClampsM(t *testing.T) {
	_, c, m := testSystem(t)
	h := NewHashEngine(m, c.Train)
	if got := h.Retrieve(c.Test[0], 10_000); len(got) != h.GallerySize() {
		t.Errorf("len = %d", len(got))
	}
	if got := h.Retrieve(c.Test[0], 0); len(got) != 0 {
		t.Errorf("m=0 returned %d", len(got))
	}
}
