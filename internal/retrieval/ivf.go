package retrieval

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"duo/internal/models"
	"duo/internal/parallel"
	"duo/internal/tensor"
	"duo/internal/video"
)

// IVFEngine is an inverted-file approximate-nearest-neighbour retrieval
// engine: gallery features are partitioned into NList cells by a k-means
// coarse quantizer, and a query scans only the NProbe nearest cells. This
// is how production retrieval services keep latency flat as the gallery
// grows ("an ever-growing large database", §I); the attack interface is
// identical to the exact Engine's.
type IVFEngine struct {
	model  models.Model
	nprobe int

	centroids []*tensor.Tensor
	// lists[c] holds the gallery entries assigned to centroid c.
	lists [][]ivfEntry

	queries atomic.Int64
	size    int
	// scratch pools the probe workspace (flattened candidates + sharded
	// top-m heaps) so steady-state queries reuse their buffers.
	scratch sync.Pool
}

// ivfScratch is the per-query probe workspace: the probed cells' entries
// flattened into parallel slices, plus the scan scratch.
type ivfScratch struct {
	ids    []string
	labels []int
	feats  []*tensor.Tensor
	cd     []float64
	scan   scanScratch
}

type ivfEntry struct {
	id    string
	label int
	feat  *tensor.Tensor
}

var _ Retriever = (*IVFEngine)(nil)
var _ BatchRetriever = (*IVFEngine)(nil)

// IVFConfig parameterizes index construction.
type IVFConfig struct {
	// NList is the number of coarse cells (k-means centroids).
	NList int
	// NProbe is how many cells a query scans (1 ≤ NProbe ≤ NList);
	// higher NProbe trades latency for recall.
	NProbe int
	// KMeansIters bounds the quantizer fit.
	KMeansIters int
	// Seed drives the k-means seeding.
	Seed int64
}

// NewIVFEngine extracts gallery features with m and builds the inverted
// index.
func NewIVFEngine(m models.Model, gallery []*video.Video, cfg IVFConfig) (*IVFEngine, error) {
	if len(gallery) == 0 {
		return nil, fmt.Errorf("retrieval: ivf: empty gallery")
	}
	if cfg.NList <= 0 || cfg.NList > len(gallery) {
		return nil, fmt.Errorf("retrieval: ivf: nlist=%d out of range (0, %d]", cfg.NList, len(gallery))
	}
	if cfg.NProbe <= 0 || cfg.NProbe > cfg.NList {
		return nil, fmt.Errorf("retrieval: ivf: nprobe=%d out of range (0, %d]", cfg.NProbe, cfg.NList)
	}

	feats := make([]*tensor.Tensor, len(gallery))
	for i, v := range gallery {
		feats[i] = models.Embed(m, v)
	}
	km, err := KMeans(rand.New(rand.NewSource(cfg.Seed)), feats, cfg.NList, cfg.KMeansIters)
	if err != nil {
		return nil, err
	}

	e := &IVFEngine{
		model:     m,
		nprobe:    cfg.NProbe,
		centroids: km.Centroids,
		lists:     make([][]ivfEntry, cfg.NList),
		size:      len(gallery),
	}
	for i, v := range gallery {
		c := km.Assign[i]
		e.lists[c] = append(e.lists[c], ivfEntry{id: v.ID, label: v.Label, feat: feats[i]})
	}
	return e, nil
}

// GallerySize returns the number of indexed videos.
func (e *IVFEngine) GallerySize() int { return e.size }

// Retrieve implements Retriever: quantize the query, scan the NProbe
// nearest cells exactly, and return the merged top-m. Both the centroid
// ranking and the candidate scan are sharded across parallel.Workers();
// the candidate set and the final (Dist, ID)-ordered list are identical to
// the sequential scan at every worker count.
func (e *IVFEngine) Retrieve(v *video.Video, m int) []Result {
	e.queries.Add(1)
	feat := models.Embed(e.model, v)
	workers := parallel.Workers()

	sc, _ := e.scratch.Get().(*ivfScratch)
	if sc == nil {
		sc = new(ivfScratch)
	}
	defer e.scratch.Put(sc)

	// Rank cells by centroid distance (independent per cell, single
	// writer per slot).
	if cap(sc.cd) < len(e.centroids) {
		sc.cd = make([]float64, len(e.centroids))
	}
	cd := sc.cd[:len(e.centroids)]
	parallel.ForN(workers, len(cd), func(_, start, end int) {
		for i := start; i < end; i++ {
			cd[i] = feat.SquaredDistance(e.centroids[i])
		}
	})
	order := tensor.ArgsortAsc(cd)

	// Flatten the probed cells, then run the shared sharded top-m scan.
	sc.ids, sc.labels, sc.feats = sc.ids[:0], sc.labels[:0], sc.feats[:0]
	for _, ci := range order[:e.nprobe] {
		for _, entry := range e.lists[ci] {
			sc.ids = append(sc.ids, entry.id)
			sc.labels = append(sc.labels, entry.label)
			sc.feats = append(sc.feats, entry.feat)
		}
	}
	return scanTopM(feat, sc.ids, sc.labels, sc.feats, m, workers, &sc.scan)
}

// RetrieveBatch implements BatchRetriever: independent queries fan out
// across workers, each billed individually.
func (e *IVFEngine) RetrieveBatch(vs []*video.Video, m int) [][]Result {
	out := make([][]Result, len(vs))
	parallel.For(len(vs), func(_, start, end int) {
		for i := start; i < end; i++ {
			out[i] = e.Retrieve(vs[i], m)
		}
	})
	return out
}

// RecallAtM measures the fraction of the exact engine's top-m the IVF
// engine also returns, averaged over the queries — the standard ANN recall
// diagnostic.
func RecallAtM(exact, approx Retriever, queries []*video.Video, m int) float64 {
	if len(queries) == 0 || m <= 0 {
		return 0
	}
	total := 0.0
	for _, q := range queries {
		want := map[string]bool{}
		for _, r := range exact.Retrieve(q, m) {
			want[r.ID] = true
		}
		if len(want) == 0 {
			continue
		}
		hit := 0
		for _, r := range approx.Retrieve(q, m) {
			if want[r.ID] {
				hit++
			}
		}
		total += float64(hit) / float64(len(want))
	}
	return total / float64(len(queries))
}
