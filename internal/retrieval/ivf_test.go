package retrieval

import (
	"math"
	"math/rand"
	"testing"

	"duo/internal/tensor"
)

func clusteredVectors(seed int64, perCluster int) ([]*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	centres := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	var vs []*tensor.Tensor
	var labels []int
	for ci, c := range centres {
		for i := 0; i < perCluster; i++ {
			v := tensor.From([]float64{
				c[0] + rng.NormFloat64()*0.5,
				c[1] + rng.NormFloat64()*0.5,
			}, 2)
			vs = append(vs, v)
			labels = append(labels, ci)
		}
	}
	return vs, labels
}

func TestKMeansRecoversClusters(t *testing.T) {
	vs, labels := clusteredVectors(1, 20)
	km, err := KMeans(rand.New(rand.NewSource(2)), vs, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Every true cluster must map to a single k-means cell.
	for c := 0; c < 3; c++ {
		seen := map[int]bool{}
		for i, l := range labels {
			if l == c {
				seen[km.Assign[i]] = true
			}
		}
		if len(seen) != 1 {
			t.Errorf("true cluster %d split across %d cells", c, len(seen))
		}
	}
	if km.Inertia > float64(len(vs))*1.0 {
		t.Errorf("inertia %g too high for tight clusters", km.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := KMeans(rng, nil, 2, 10); err == nil {
		t.Error("empty input accepted")
	}
	vs, _ := clusteredVectors(4, 2)
	if _, err := KMeans(rng, vs, 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(rng, vs, len(vs)+1, 10); err == nil {
		t.Error("k>n accepted")
	}
	bad := append(vs[:1], tensor.New(3))
	if _, err := KMeans(rng, bad, 1, 10); err == nil {
		t.Error("mismatched dims accepted")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	vs, _ := clusteredVectors(5, 2)
	km, err := KMeans(rand.New(rand.NewSource(6)), vs, len(vs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if km.Inertia > 1e-9 {
		t.Errorf("k=n inertia = %g, want ≈ 0", km.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vs, _ := clusteredVectors(7, 10)
	a, _ := KMeans(rand.New(rand.NewSource(8)), vs, 3, 20)
	b, _ := KMeans(rand.New(rand.NewSource(8)), vs, 3, 20)
	if math.Abs(a.Inertia-b.Inertia) > 1e-12 {
		t.Error("same seed produced different clusterings")
	}
}

func TestIVFEngineFullProbeMatchesExact(t *testing.T) {
	eng, c, m := testSystem(t)
	ivf, err := NewIVFEngine(m, c.Train, IVFConfig{NList: 4, NProbe: 4, KMeansIters: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Probing every cell is exhaustive: results must match the exact
	// engine's.
	for _, q := range c.Test[:4] {
		a := IDs(eng.Retrieve(q, 6))
		b := IDs(ivf.Retrieve(q, 6))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("full-probe IVF differs at %d: %v vs %v", i, a, b)
			}
		}
	}
	if ivf.GallerySize() != eng.GallerySize() {
		t.Errorf("IVF size %d vs %d", ivf.GallerySize(), eng.GallerySize())
	}
}

func TestIVFEngineRecallReasonable(t *testing.T) {
	eng, c, m := testSystem(t)
	ivf, err := NewIVFEngine(m, c.Train, IVFConfig{NList: 6, NProbe: 2, KMeansIters: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	recall := RecallAtM(eng, ivf, c.Test, 5)
	if recall < 0.5 {
		t.Errorf("recall@5 = %g with nprobe=2/6, want ≥ 0.5", recall)
	}
	// More probes must not reduce recall.
	ivf4, err := NewIVFEngine(m, c.Train, IVFConfig{NList: 6, NProbe: 5, KMeansIters: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r4 := RecallAtM(eng, ivf4, c.Test, 5); r4 < recall-1e-9 {
		t.Errorf("recall fell with more probes: %g → %g", recall, r4)
	}
}

func TestIVFEngineConfigValidation(t *testing.T) {
	_, c, m := testSystem(t)
	bad := []IVFConfig{
		{NList: 0, NProbe: 1},
		{NList: len(c.Train) + 1, NProbe: 1},
		{NList: 2, NProbe: 0},
		{NList: 2, NProbe: 3},
	}
	for i, cfg := range bad {
		if _, err := NewIVFEngine(m, c.Train, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewIVFEngine(m, nil, IVFConfig{NList: 1, NProbe: 1}); err == nil {
		t.Error("empty gallery accepted")
	}
}

func TestRecallAtMEdgeCases(t *testing.T) {
	eng, c, _ := testSystem(t)
	if got := RecallAtM(eng, eng, nil, 5); got != 0 {
		t.Errorf("recall on no queries = %g", got)
	}
	if got := RecallAtM(eng, eng, c.Test, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("self recall = %g, want 1", got)
	}
}

// TestKMeansNoEmptyClusters pins the farthest-point re-seeding contract:
// whenever the data has at least k distinct points, a fitted codebook
// never returns a dead centroid — every cell owns at least one point.
func TestKMeansNoEmptyClusters(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		// Adversarial shape for Lloyd: one dense blob plus a few remote
		// points, with k far above the natural cluster count, which is
		// exactly the regime where cells empty out mid-iteration.
		var vs []*tensor.Tensor
		for i := 0; i < 40; i++ {
			vs = append(vs, tensor.From([]float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}, 2))
		}
		for i := 0; i < 3; i++ {
			vs = append(vs, tensor.From([]float64{50 + rng.NormFloat64(), 50 + rng.NormFloat64()}, 2))
		}
		k := 8
		km, err := KMeans(rng, vs, k, 30)
		if err != nil {
			t.Fatal(err)
		}
		occupied := make([]int, k)
		for _, a := range km.Assign {
			occupied[a]++
		}
		for ci, c := range occupied {
			if c == 0 {
				t.Errorf("seed %d: cluster %d is empty (occupancy %v)", seed, ci, occupied)
			}
		}
	}
}

// TestKMeansReseedDeterministic: the re-seeding path must stay inside the
// determinism contract — same seed, same data, bitwise-identical
// centroids.
func TestKMeansReseedDeterministic(t *testing.T) {
	build := func() *KMeansResult {
		rng := rand.New(rand.NewSource(31))
		var vs []*tensor.Tensor
		for i := 0; i < 30; i++ {
			vs = append(vs, tensor.From([]float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}, 2))
		}
		vs = append(vs, tensor.From([]float64{40, 40}, 2))
		km, err := KMeans(rng, vs, 6, 25)
		if err != nil {
			t.Fatal(err)
		}
		return km
	}
	a, b := build(), build()
	for ci := range a.Centroids {
		ad, bd := a.Centroids[ci].Data(), b.Centroids[ci].Data()
		for d := range ad {
			if math.Float64bits(ad[d]) != math.Float64bits(bd[d]) {
				t.Fatalf("centroid %d dim %d differs: %v vs %v", ci, d, ad[d], bd[d])
			}
		}
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

// TestKMeansFewerDistinctPointsThanK: with fewer distinct values than k
// there is nothing to separate; the fit must still return (duplicate
// centroids allowed) with zero inertia and consistent assignments.
func TestKMeansFewerDistinctPointsThanK(t *testing.T) {
	var vs []*tensor.Tensor
	for i := 0; i < 6; i++ {
		vs = append(vs, tensor.From([]float64{1, 2}, 2))
	}
	for i := 0; i < 6; i++ {
		vs = append(vs, tensor.From([]float64{9, 9}, 2))
	}
	km, err := KMeans(rand.New(rand.NewSource(33)), vs, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if km.Inertia > 1e-12 {
		t.Errorf("inertia %g, want 0 (every point sits on a centroid)", km.Inertia)
	}
	for i, a := range km.Assign {
		if d := vs[i].SquaredDistance(km.Centroids[a]); d > 1e-12 {
			t.Errorf("point %d assigned to centroid at distance %g", i, d)
		}
	}
}
