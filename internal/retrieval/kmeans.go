package retrieval

import (
	"fmt"
	"math"
	"math/rand"

	"duo/internal/tensor"
)

// KMeansResult holds a fitted codebook.
type KMeansResult struct {
	// Centroids are the k cluster centres.
	Centroids []*tensor.Tensor
	// Assign maps each input vector to its centroid index.
	Assign []int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
	// Iterations is the number of Lloyd iterations run.
	Iterations int
}

// KMeans fits k centroids to the vectors with Lloyd's algorithm and
// k-means++ seeding. It is the coarse quantizer behind the IVF index and
// the per-subspace codebook trainer behind the PQ index. Clusters that
// empty out during Lloyd iterations are re-seeded deterministically from
// the point farthest from its assigned centroid, so a fitted codebook
// never silently carries dead centroids (unless the data has fewer
// distinct points than k).
func KMeans(rng *rand.Rand, vectors []*tensor.Tensor, k, maxIter int) (*KMeansResult, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("retrieval: kmeans: no vectors")
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("retrieval: kmeans: k=%d out of range (0, %d]", k, n)
	}
	if maxIter <= 0 {
		maxIter = 25
	}
	dim := vectors[0].Len()
	for i, v := range vectors {
		if v.Len() != dim {
			return nil, fmt.Errorf("retrieval: kmeans: vector %d has dim %d, want %d", i, v.Len(), dim)
		}
	}

	// k-means++ seeding: first centre uniform, then proportional to the
	// squared distance to the nearest chosen centre.
	centroids := make([]*tensor.Tensor, 0, k)
	centroids = append(centroids, vectors[rng.Intn(n)].Clone())
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, v := range vectors {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := v.SquaredDistance(c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with chosen centres; duplicate one.
			centroids = append(centroids, vectors[rng.Intn(n)].Clone())
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, vectors[pick].Clone())
	}

	res := &KMeansResult{Centroids: centroids, Assign: make([]int, n)}
	pointDist := make([]float64, n)
	assign := func() {
		inertia := 0.0
		for i, v := range vectors {
			best, bi := math.Inf(1), 0
			for ci, c := range centroids {
				if d := v.SquaredDistance(c); d < best {
					best, bi = d, ci
				}
			}
			res.Assign[i] = bi
			pointDist[i] = best
			inertia += best
		}
		res.Inertia = inertia
	}
	prevInertia := math.Inf(1)
	reseeded := false
	for it := 0; it < maxIter; it++ {
		res.Iterations = it + 1
		assign()

		// Update step.
		counts := make([]int, k)
		sums := make([]*tensor.Tensor, k)
		for ci := range sums {
			sums[ci] = tensor.New(dim)
		}
		for i, v := range vectors {
			ci := res.Assign[i]
			counts[ci]++
			sums[ci].AddInPlace(v.Reshape(dim))
		}
		reseeded = false
		for ci := range centroids {
			if counts[ci] > 0 {
				centroids[ci] = sums[ci].Scale(1 / float64(counts[ci]))
				continue
			}
			// Empty cluster: re-seed deterministically from the point
			// farthest from its assigned centroid (lowest index on ties).
			// Consuming that point's distance prevents two empty clusters
			// from claiming the same re-seed in one pass. If every point
			// coincides with a centroid (fewer distinct points than k) the
			// duplicate centroid is left in place — there is nothing to
			// separate.
			far, fd := -1, 0.0
			for i, d := range pointDist {
				if d > fd {
					far, fd = i, d
				}
			}
			if far < 0 {
				continue
			}
			centroids[ci] = vectors[far].Clone()
			pointDist[far] = 0
			reseeded = true
		}

		if reseeded {
			// A re-seeded centroid invalidates the assignment this inertia
			// was computed from; force another Lloyd round so points can
			// migrate to it before convergence is declared.
			prevInertia = math.Inf(1)
			continue
		}
		if math.Abs(prevInertia-res.Inertia) < 1e-9*(1+res.Inertia) {
			break
		}
		prevInertia = res.Inertia
	}
	if reseeded {
		// The loop ended on a re-seeding pass: refresh the assignment so
		// Assign/Inertia describe the returned centroids.
		assign()
	}
	return res, nil
}
