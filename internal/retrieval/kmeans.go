package retrieval

import (
	"fmt"
	"math"
	"math/rand"

	"duo/internal/tensor"
)

// KMeansResult holds a fitted codebook.
type KMeansResult struct {
	// Centroids are the k cluster centres.
	Centroids []*tensor.Tensor
	// Assign maps each input vector to its centroid index.
	Assign []int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
	// Iterations is the number of Lloyd iterations run.
	Iterations int
}

// KMeans fits k centroids to the vectors with Lloyd's algorithm and
// k-means++ seeding. It is the coarse quantizer behind the IVF index.
func KMeans(rng *rand.Rand, vectors []*tensor.Tensor, k, maxIter int) (*KMeansResult, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("retrieval: kmeans: no vectors")
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("retrieval: kmeans: k=%d out of range (0, %d]", k, n)
	}
	if maxIter <= 0 {
		maxIter = 25
	}
	dim := vectors[0].Len()
	for i, v := range vectors {
		if v.Len() != dim {
			return nil, fmt.Errorf("retrieval: kmeans: vector %d has dim %d, want %d", i, v.Len(), dim)
		}
	}

	// k-means++ seeding: first centre uniform, then proportional to the
	// squared distance to the nearest chosen centre.
	centroids := make([]*tensor.Tensor, 0, k)
	centroids = append(centroids, vectors[rng.Intn(n)].Clone())
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, v := range vectors {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := v.SquaredDistance(c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with chosen centres; duplicate one.
			centroids = append(centroids, vectors[rng.Intn(n)].Clone())
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, vectors[pick].Clone())
	}

	res := &KMeansResult{Centroids: centroids, Assign: make([]int, n)}
	prevInertia := math.Inf(1)
	for it := 0; it < maxIter; it++ {
		res.Iterations = it + 1
		// Assignment step.
		inertia := 0.0
		for i, v := range vectors {
			best, bi := math.Inf(1), 0
			for ci, c := range centroids {
				if d := v.SquaredDistance(c); d < best {
					best, bi = d, ci
				}
			}
			res.Assign[i] = bi
			inertia += best
		}
		res.Inertia = inertia

		// Update step.
		counts := make([]int, k)
		sums := make([]*tensor.Tensor, k)
		for ci := range sums {
			sums[ci] = tensor.New(dim)
		}
		for i, v := range vectors {
			ci := res.Assign[i]
			counts[ci]++
			sums[ci].AddInPlace(v.Reshape(dim))
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				// Re-seed an empty cluster with a random vector.
				centroids[ci] = vectors[rng.Intn(n)].Clone()
				continue
			}
			centroids[ci] = sums[ci].Scale(1 / float64(counts[ci]))
		}

		if math.Abs(prevInertia-inertia) < 1e-9*(1+inertia) {
			break
		}
		prevInertia = inertia
	}
	return res, nil
}
