package retrieval

import (
	"errors"
	"sync"

	"duo/internal/telemetry"
)

// ErrOverloaded is the typed load-shedding error: a node (or an injected
// fault standing in for one) refused a request at admission because its
// in-flight and queue limits were both full. Unlike a dead-node failure
// the node is demonstrably alive — it answered, cheaply, with a refusal —
// so the fault-tolerance stack treats it differently everywhere:
//
//   - RetryTransport retries it with backoff (the load spike may pass);
//   - BreakerTransport treats it as proof of liveness, never as a
//     breaker-tripping failure (fast-failing an alive node would turn a
//     load spike into an outage);
//   - Cluster counts shed nodes distinctly from dead ones (outcome
//     "shed", its own telemetry counter and Health field);
//   - the attack loop refunds shed attempts — a refused request did no
//     retrieval work, so it is never billed as a victim query.
//
// It crosses the TCP wire as a flag on the response frame, so errors.Is
// works across process boundaries.
var ErrOverloaded = errors.New("retrieval: node overloaded")

// AdmissionConfig bounds a NodeServer's concurrency: at most MaxInFlight
// requests are served at once, at most MaxQueue more wait for a slot, and
// everything beyond that is shed immediately with ErrOverloaded. The zero
// value disables admission control entirely (unbounded, the pre-overload
// behaviour).
//
// Shedding is deterministic: the decision is a pure function of current
// occupancy — no sampling, no randomness — so a fixed arrival pattern
// always sheds the same requests.
type AdmissionConfig struct {
	// MaxInFlight is the concurrent-service limit (≤ 0 disables admission
	// control, including the queue bound).
	MaxInFlight int
	// MaxQueue is how many admitted requests may wait for an in-flight
	// slot before new arrivals are shed (< 0 means no queue: shed as soon
	// as every in-flight slot is busy).
	MaxQueue int
}

// admissionTel is the admission controller's write-only instrument set
// (nil instruments when telemetry is disabled).
type admissionTel struct {
	// admitted counts requests that got an in-flight slot (queued or not).
	admitted *telemetry.Counter
	// queued counts admitted requests that had to wait for a slot.
	queued *telemetry.Counter
	// shed counts requests refused with ErrOverloaded.
	shed *telemetry.Counter
	// inflight mirrors current occupancy; inflightHW is its high-water mark.
	inflight   *telemetry.Gauge
	inflightHW *telemetry.Gauge
}

// resolveAdmissionTel resolves the instruments under a prefix (e.g.
// "node.admission"); a nil registry yields the disabled set.
func resolveAdmissionTel(r *telemetry.Registry, prefix string) admissionTel {
	return admissionTel{
		admitted:   r.Counter(prefix + ".admitted"),
		queued:     r.Counter(prefix + ".queued"),
		shed:       r.Counter(prefix + ".shed"),
		inflight:   r.Gauge(prefix + ".inflight"),
		inflightHW: r.Gauge(prefix + ".inflight_highwater"),
	}
}

// admission is the bounded in-flight/queue gate in front of a NodeServer's
// request handlers. Reserve admits or sheds immediately (never blocks, so
// the connection read loop keeps draining frames even at saturation);
// acquire then blocks a queued request until an in-flight slot frees.
type admission struct {
	cfg AdmissionConfig
	tel admissionTel

	mu        sync.Mutex
	cond      *sync.Cond
	inflight  int
	queued    int
	highWater int
	shed      int64
	served    int64
}

// newAdmission builds the gate; a zero config means "admit everything".
func newAdmission(cfg AdmissionConfig, tel admissionTel) *admission {
	a := &admission{cfg: cfg, tel: tel}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// unlimited reports whether admission control is disabled.
func (a *admission) unlimited() bool { return a.cfg.MaxInFlight <= 0 }

// ticket is the outcome of a reservation.
type ticket int

const (
	ticketShed   ticket = iota // refused: respond ErrOverloaded
	ticketDirect               // in-flight slot taken; serve now
	ticketQueued               // admitted; acquire() before serving
)

// reserve decides a request's fate without blocking.
func (a *admission) reserve() ticket {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.unlimited() || a.inflight < a.cfg.MaxInFlight {
		a.takeSlotLocked()
		a.tel.admitted.Inc()
		return ticketDirect
	}
	if a.cfg.MaxQueue >= 0 && a.queued < a.cfg.MaxQueue {
		a.queued++
		a.tel.admitted.Inc()
		a.tel.queued.Inc()
		return ticketQueued
	}
	a.shed++
	a.tel.shed.Inc()
	return ticketShed
}

// acquire blocks a queued request until an in-flight slot frees.
func (a *admission) acquire() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.inflight >= a.cfg.MaxInFlight {
		a.cond.Wait()
	}
	a.queued--
	a.takeSlotLocked()
}

// takeSlotLocked occupies one in-flight slot and maintains the occupancy
// instruments. Caller holds a.mu.
func (a *admission) takeSlotLocked() {
	a.inflight++
	a.served++
	if a.inflight > a.highWater {
		a.highWater = a.inflight
		a.tel.inflightHW.Set(int64(a.highWater))
	}
	a.tel.inflight.Set(int64(a.inflight))
}

// release frees an in-flight slot and wakes one queued waiter.
func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.tel.inflight.Set(int64(a.inflight))
	a.mu.Unlock()
	a.cond.Signal()
}

// Sheds returns how many requests were refused with ErrOverloaded.
func (a *admission) Sheds() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}

// Served returns how many requests were admitted (queued included).
func (a *admission) Served() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.served
}

// HighWater returns the peak concurrent in-flight count observed.
func (a *admission) HighWater() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.highWater
}
