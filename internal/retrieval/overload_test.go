package retrieval

// Overload-semantics tests: the admission gate's deterministic shed
// decisions, FaultTransport overload injection, and the one property the
// whole PR hangs on — ErrOverloaded means "alive but refusing", so retry
// backs off and re-tries, the breaker never trips, and the cluster counts
// sheds apart from failures everywhere (Health, telemetry, span outcome,
// policy errors).

import (
	"errors"
	"strings"
	"testing"
	"time"

	"duo/internal/telemetry"
	"duo/internal/trace"
	"duo/internal/video"
)

// setErr swaps the stub's canned error (same package as stubTransport).
func (s *stubTransport) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.err = err
}

func TestAdmissionGateShedsDeterministically(t *testing.T) {
	reg := telemetry.New()
	a := newAdmission(AdmissionConfig{MaxInFlight: 2, MaxQueue: 1},
		resolveAdmissionTel(reg, "adm"))

	if got := a.reserve(); got != ticketDirect {
		t.Fatalf("first reserve = %v, want direct", got)
	}
	if got := a.reserve(); got != ticketDirect {
		t.Fatalf("second reserve = %v, want direct", got)
	}
	if got := a.reserve(); got != ticketQueued {
		t.Fatalf("third reserve = %v, want queued", got)
	}
	// In-flight and queue are both full: the decision is pure occupancy,
	// so every further arrival sheds.
	for i := 0; i < 3; i++ {
		if got := a.reserve(); got != ticketShed {
			t.Fatalf("reserve %d = %v, want shed", 4+i, got)
		}
	}

	// Freeing one slot lets the queued request through without blocking.
	acquired := make(chan struct{})
	go func() {
		a.acquire()
		close(acquired)
	}()
	a.release()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second): //duolint:allow walltime test watchdog only; never fires on the pass path
		t.Fatal("queued request never acquired a freed slot")
	}

	if got := a.Sheds(); got != 3 {
		t.Errorf("Sheds = %d, want 3", got)
	}
	if got := a.Served(); got != 3 {
		t.Errorf("Served = %d, want 3", got)
	}
	if got := a.HighWater(); got != 2 {
		t.Errorf("HighWater = %d, want 2", got)
	}
	for name, want := range map[string]int64{
		"adm.admitted": 3, "adm.queued": 1, "adm.shed": 3,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("adm.inflight_highwater").Value(); got != 2 {
		t.Errorf("inflight_highwater = %d, want 2", got)
	}
}

func TestAdmissionGateUnlimitedByDefault(t *testing.T) {
	a := newAdmission(AdmissionConfig{}, admissionTel{})
	for i := 0; i < 100; i++ {
		if got := a.reserve(); got != ticketDirect {
			t.Fatalf("reserve %d = %v, want direct (zero config = unbounded)", i, got)
		}
	}
	if a.Sheds() != 0 {
		t.Errorf("unlimited gate shed %d requests", a.Sheds())
	}
}

func TestFaultTransportOverloadMode(t *testing.T) {
	inner := &stubTransport{rs: stubResults(4)}
	ft := NewFaultTransport(inner, FaultConfig{POverload: 1})
	if _, err := ft.Nearest(nil, 4); !errors.Is(err, ErrOverloaded) {
		t.Errorf("overload mode: %v", err)
	}
	if inner.callCount() != 0 {
		t.Error("overload mode reached the inner transport")
	}
	if st := ft.Stats(); st.Overloads != 1 {
		t.Errorf("Overloads = %d, want 1", st.Overloads)
	}
}

func TestFaultTransportOverloadScheduleDeterministic(t *testing.T) {
	mk := func() *FaultTransport {
		return NewFaultTransport(&stubTransport{rs: stubResults(8)}, FaultConfig{
			Seed: 42, PDrop: 0.1, PError: 0.1, POverload: 0.3,
		})
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		_, errA := a.Nearest([]float64{1}, 4)
		_, errB := b.Nearest([]float64{1}, 4)
		if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
			t.Fatalf("call %d diverged: %v vs %v", i, errA, errB)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if st := a.Stats(); st.Overloads == 0 {
		t.Errorf("expected overloads over 200 calls at p=0.3: %+v", st)
	}
}

func TestRetryTransportRetriesOverloadWithBackoff(t *testing.T) {
	inner := &stubTransport{rs: stubResults(4)}
	flaky := NewFaultTransport(inner, FaultConfig{})
	flaky.FailNext(2, ErrOverloaded)
	reg := telemetry.New()
	var sleeps []time.Duration
	rt := NewRetryTransport(flaky, RetryConfig{
		MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Seed: 5,
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	rt.SetTelemetry(reg, "retry")

	rs, err := rt.Nearest([]float64{1}, 4)
	if err != nil {
		t.Fatalf("retry did not absorb the shed spike: %v", err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d results, want 4", len(rs))
	}
	if got := rt.Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2 (one per shed)", got)
	}
	if len(sleeps) != 2 {
		t.Errorf("slept %d times, want 2 — overload must back off, not hot-loop", len(sleeps))
	}
	if got := reg.Counter("retry.overloads").Value(); got != 2 {
		t.Errorf("retry.overloads = %d, want 2", got)
	}
}

func TestBreakerNeverTripsOnOverload(t *testing.T) {
	inner := &stubTransport{err: ErrOverloaded}
	bt := NewBreakerTransport(inner, BreakerConfig{FailureThreshold: 2})
	for i := 0; i < 10; i++ {
		if _, err := bt.Nearest(nil, 4); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := bt.State(); got != BreakerClosed {
		t.Errorf("breaker state after 10 sheds = %v, want closed", got)
	}
	if got := bt.ShortCircuits(); got != 0 {
		t.Errorf("breaker short-circuited %d calls under pure overload", got)
	}
	if inner.callCount() != 10 {
		t.Errorf("inner saw %d calls, want all 10 (no fast-fails)", inner.callCount())
	}
}

func TestBreakerOverloadResetsConsecutiveFailures(t *testing.T) {
	inner := &stubTransport{err: ErrInjectedFailure}
	bt := NewBreakerTransport(inner, BreakerConfig{FailureThreshold: 3})
	// Two real failures, then a shed: the shed proves liveness and resets
	// the consecutive count, so two MORE real failures still don't trip.
	bt.Nearest(nil, 4)
	bt.Nearest(nil, 4)
	inner.setErr(ErrOverloaded)
	bt.Nearest(nil, 4)
	inner.setErr(ErrInjectedFailure)
	bt.Nearest(nil, 4)
	bt.Nearest(nil, 4)
	if got := bt.State(); got != BreakerClosed {
		t.Errorf("state = %v, want closed (shed reset the failure streak)", got)
	}
	bt.Nearest(nil, 4)
	if got := bt.State(); got != BreakerOpen {
		t.Errorf("state = %v, want open after a full fresh failure streak", got)
	}
}

func TestBreakerHalfOpenProbeOverloadReCloses(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	inner := &stubTransport{err: ErrInjectedFailure}
	bt := NewBreakerTransport(inner, BreakerConfig{
		FailureThreshold: 2, Cooldown: time.Second, Now: clock.Now,
	})
	bt.Nearest(nil, 4)
	bt.Nearest(nil, 4)
	if got := bt.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clock.Advance(2 * time.Second)
	inner.setErr(ErrOverloaded)
	// The half-open probe answers with a shed: the node is alive, the
	// breaker closes — overload must not restart the cooldown.
	if _, err := bt.Nearest(nil, 4); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("probe: %v", err)
	}
	if got := bt.State(); got != BreakerClosed {
		t.Errorf("state after overloaded probe = %v, want closed", got)
	}
}

// overloadedCluster builds a 3-node cluster with node 1 shedding, plus a
// deterministic query video to drive it with.
func overloadedCluster(t *testing.T) (*Cluster, *video.Video) {
	t.Helper()
	m, corpus := chaosSystem(t)
	nodes := []Transport{
		&stubTransport{rs: stubResults(4)},
		&stubTransport{err: ErrOverloaded},
		&stubTransport{rs: stubResults(4)},
	}
	return NewCluster(m, nodes), corpus.Test[0]
}

func TestClusterCountsShedsDistinctFromFailures(t *testing.T) {
	c, q := overloadedCluster(t)
	reg := telemetry.New()
	c.SetTelemetry(reg)

	rs, err := c.RetrieveErr(q, 4)
	if err == nil || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("best-effort error = %v, want wrapped ErrOverloaded", err)
	}
	if len(rs) == 0 {
		t.Error("best-effort merge dropped the healthy nodes' results")
	}

	h := c.Health()
	if h[1].Sheds != 1 || h[1].Failures != 0 || h[1].ConsecutiveFailures != 0 {
		t.Errorf("node1 health = %+v, want 1 shed, 0 failures", h[1])
	}
	if !h[1].Healthy() {
		t.Error("an overloaded node must still report healthy (alive, at capacity)")
	}
	if got := reg.Counter("cluster.node1.shed").Value(); got != 1 {
		t.Errorf("cluster.node1.shed = %d, want 1", got)
	}
	if got := reg.Counter("cluster.node1.errors").Value(); got != 0 {
		t.Errorf("cluster.node1.errors = %d, want 0 — sheds must not count as errors", got)
	}
}

func TestClusterPolicyErrorsReportSheds(t *testing.T) {
	c, q := overloadedCluster(t)

	c.SetPolicy(RequireAll())
	_, err := c.RetrieveErr(q, 4)
	if err == nil || !strings.Contains(err.Error(), "(1 shed)") {
		t.Errorf("require-all error = %v, want shed count in message", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("policy error does not unwrap to ErrOverloaded: %v", err)
	}

	// Quorum(2) is satisfiable by the two healthy nodes: sheds degrade, the
	// query still succeeds.
	c.SetPolicy(Quorum(2))
	rs, err := c.RetrieveErr(q, 4)
	if err != nil {
		t.Errorf("quorum(2) with one shed node failed: %v", err)
	}
	if len(rs) == 0 {
		t.Error("quorum(2) returned no results")
	}
}

func TestClusterShedSpanOutcome(t *testing.T) {
	c, q := overloadedCluster(t)
	tr := trace.New("overload-test")
	c.SetTrace(tr)

	root := tr.Start(nil, "retrieve")
	c.RetrieveTraced(root.Ctx(), q, 4)
	root.End()

	outcomes := map[string]int{}
	for _, rec := range tr.Records() {
		if rec.Name != "node" {
			continue
		}
		if o, ok := rec.Attrs["outcome"].(string); ok {
			outcomes[o]++
		}
	}
	if outcomes["shed"] != 1 || outcomes["ok"] != 2 {
		t.Errorf("node span outcomes = %v, want 1 shed + 2 ok", outcomes)
	}
}
