package retrieval

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"duo/internal/models"
	"duo/internal/parallel"
	"duo/internal/tensor"
	"duo/internal/video"
)

// syntheticIndex builds an index of n entries with unique IDs and 1-D
// features drawn from a small discrete set, so distance ties are common
// and the (Dist, ID) tie-break rule is genuinely exercised.
func syntheticIndex(rng *rand.Rand, n int) (ids []string, labels []int, feats []*tensor.Tensor) {
	for i := 0; i < n; i++ {
		ids = append(ids, fmt.Sprintf("v%04d", i))
		labels = append(labels, rng.Intn(3))
		feats = append(feats, tensor.From([]float64{float64(rng.Intn(5))}, 1))
	}
	return ids, labels, feats
}

// TestScanTopMMatchesSequential is the core equivalence test: the sharded
// heap scan must be bitwise-identical to the sequential sort-everything
// path at every worker count, including shard layouts that don't divide
// evenly, galleries smaller than the worker count, and m out of range.
func TestScanTopMMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	query := tensor.From([]float64{0.5}, 1)
	for _, n := range []int{0, 1, 2, 3, 7, 10, 33} {
		ids, labels, feats := syntheticIndex(rng, n)
		for _, m := range []int{-1, 0, 1, 2, n / 2, n, n + 5} {
			want := nearest(query, ids, labels, feats, m)
			for _, w := range []int{1, 2, 7} {
				got := scanTopM(query, ids, labels, feats, m, w, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d m=%d workers=%d: sharded scan diverged\n got %v\nwant %v", n, m, w, got, want)
				}
			}
		}
	}
}

// TestEngineRetrieveWorkerCountInvariant runs the full engine path (embed +
// scan) at worker counts 1, 2, and 7 and requires bitwise-identical lists.
func TestEngineRetrieveWorkerCountInvariant(t *testing.T) {
	eng, c, _ := testSystem(t)
	q := c.Test[0]
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	want := eng.Retrieve(q, 7)
	for _, w := range []int{2, 7} {
		parallel.SetWorkers(w)
		got := eng.Retrieve(q, 7)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Retrieve diverged from sequential:\n got %v\nwant %v", w, got, want)
		}
	}
}

// TestGalleryOfOne covers the degenerate single-entry gallery across worker
// counts.
func TestGalleryOfOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids, labels, feats := syntheticIndex(rng, 1)
	query := tensor.From([]float64{2}, 1)
	want := nearest(query, ids, labels, feats, 5)
	for _, w := range []int{1, 2, 7} {
		got := scanTopM(query, ids, labels, feats, 5, w, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged on gallery of 1", w)
		}
	}
}

// TestEngineRetrieveBatchMatchesSequentialRetrieve checks RetrieveBatch
// answers and billing: out[i] == Retrieve(vs[i], m) bitwise and the batch
// bills one query per video.
func TestEngineRetrieveBatchMatchesSequentialRetrieve(t *testing.T) {
	eng, c, _ := testSystem(t)
	vs := c.Test
	for _, w := range []int{1, 2, 7} {
		prev := parallel.SetWorkers(w)
		eng.ResetQueryCount()
		batch := eng.RetrieveBatch(vs, 5)
		if got := eng.QueryCount(); got != int64(len(vs)) {
			t.Errorf("workers=%d: batch billed %d queries, want %d", w, got, len(vs))
		}
		for i, v := range vs {
			want := eng.Retrieve(v, 5)
			if !reflect.DeepEqual(batch[i], want) {
				t.Fatalf("workers=%d: batch[%d] != Retrieve", w, i)
			}
		}
		parallel.SetWorkers(prev)
	}
}

// TestClusterRetrieveBatchMatchesRetrieve mirrors the engine batch test on
// the distributed coordinator.
func TestClusterRetrieveBatchMatchesRetrieve(t *testing.T) {
	_, c, m := testSystem(t)
	cl := NewLocalCluster(m, c.Train, 3)
	defer cl.Close()
	vs := c.Test[:4]
	before := cl.QueryCount()
	batch := cl.RetrieveBatch(vs, 5)
	if got := cl.QueryCount() - before; got != int64(len(vs)) {
		t.Errorf("cluster batch billed %d queries, want %d", got, len(vs))
	}
	for i, v := range vs {
		want := cl.Retrieve(v, 5)
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("cluster batch[%d] != Retrieve", i)
		}
	}
}

// TestIVFRetrieveWorkerCountInvariant checks the probed-cell scan against
// a naive in-package oracle and across worker counts.
func TestIVFRetrieveWorkerCountInvariant(t *testing.T) {
	eng, c, m := testSystem(t)
	_ = eng
	ivf, err := NewIVFEngine(m, c.Train, IVFConfig{NList: 4, NProbe: 4, KMeansIters: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := c.Test[1]
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	want := ivf.Retrieve(q, 6)
	// NProbe == NList, so the probe must agree with the exact engine scan.
	feat := models.Embed(m, q)
	var ids []string
	var labels []int
	var feats []*tensor.Tensor
	for _, cell := range ivf.lists {
		for _, e := range cell {
			ids = append(ids, e.id)
			labels = append(labels, e.label)
			feats = append(feats, e.feat)
		}
	}
	if oracle := nearest(feat, ids, labels, feats, 6); !reflect.DeepEqual(want, oracle) {
		t.Fatalf("IVF full-probe scan != naive oracle:\n got %v\nwant %v", want, oracle)
	}
	for _, w := range []int{2, 7} {
		parallel.SetWorkers(w)
		if got := ivf.Retrieve(q, 6); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: IVF Retrieve diverged", w)
		}
	}
}

// TestEngineConcurrentRetrieveExactQueryCount hammers Retrieve and
// RetrieveBatch from concurrent goroutines (run under -race in CI) and
// checks that QueryCount never loses an increment and answers never
// diverge.
func TestEngineConcurrentRetrieveExactQueryCount(t *testing.T) {
	eng, c, _ := testSystem(t)
	q := c.Test[0]
	want := eng.Retrieve(q, 5)
	eng.ResetQueryCount()

	const goroutines = 8
	const perG = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				var got []Result
				if g%2 == 0 {
					got = eng.Retrieve(q, 5)
				} else {
					got = eng.RetrieveBatch([]*video.Video{q}, 5)[0]
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("goroutine %d: concurrent answer diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := eng.QueryCount(); got != goroutines*perG {
		t.Fatalf("QueryCount=%d after %d concurrent queries", got, goroutines*perG)
	}
}

// TestClusterConcurrentRetrieveBatch hammers the coordinator concurrently;
// every query must be billed and every answer must match the quiescent one.
func TestClusterConcurrentRetrieveBatch(t *testing.T) {
	_, c, m := testSystem(t)
	cl := NewLocalCluster(m, c.Train, 3)
	defer cl.Close()
	q := c.Test[0]
	want := cl.Retrieve(q, 5)
	base := cl.QueryCount()

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := cl.RetrieveBatch([]*video.Video{q, q}, 5)
			for _, rs := range got {
				if !reflect.DeepEqual(rs, want) {
					errs <- fmt.Errorf("goroutine %d: cluster answer diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := cl.QueryCount() - base; got != goroutines*2 {
		t.Fatalf("cluster QueryCount delta=%d, want %d", got, goroutines*2)
	}
}

// TestEvaluateBatchedMatchesSequential pins Evaluate's batched fan-out to
// the plain per-query loop.
func TestEvaluateBatchedMatchesSequential(t *testing.T) {
	eng, c, _ := testSystem(t)
	batched := Evaluate(eng, c.Test, 5)
	sequential := Evaluate(retrieverOnly{eng}, c.Test, 5)
	if batched != sequential {
		t.Fatalf("batched Evaluate %+v != sequential %+v", batched, sequential)
	}
}

// retrieverOnly hides an engine's batching so callers take the sequential
// path.
type retrieverOnly struct{ r Retriever }

func (r retrieverOnly) Retrieve(v *video.Video, m int) []Result { return r.r.Retrieve(v, m) }
