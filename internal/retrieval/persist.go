package retrieval

import (
	"encoding/gob"
	"fmt"
	"io"

	"duo/internal/models"
	"duo/internal/tensor"
)

// indexRecord is the on-disk form of a feature index: flat feature storage
// plus identity metadata. Feature extraction is the expensive part of
// ingest, so production nodes persist the index and reload it on restart.
type indexRecord struct {
	IDs    []string
	Labels []int
	Dim    int
	Feats  []float64
}

func buildRecord(ids []string, labels []int, feats []*tensor.Tensor) indexRecord {
	rec := indexRecord{IDs: ids, Labels: labels}
	if len(feats) > 0 {
		rec.Dim = feats[0].Len()
	}
	for _, f := range feats {
		rec.Feats = append(rec.Feats, f.Data()...)
	}
	return rec
}

func (r indexRecord) unpack() ([]string, []int, []*tensor.Tensor, error) {
	if len(r.IDs) != len(r.Labels) {
		return nil, nil, nil, fmt.Errorf("retrieval: index has %d ids but %d labels", len(r.IDs), len(r.Labels))
	}
	if r.Dim <= 0 && len(r.IDs) > 0 {
		return nil, nil, nil, fmt.Errorf("retrieval: index has non-positive feature dim %d", r.Dim)
	}
	if len(r.IDs)*r.Dim != len(r.Feats) {
		return nil, nil, nil, fmt.Errorf("retrieval: index has %d feature values, want %d", len(r.Feats), len(r.IDs)*r.Dim)
	}
	feats := make([]*tensor.Tensor, len(r.IDs))
	for i := range feats {
		feats[i] = tensor.From(r.Feats[i*r.Dim:(i+1)*r.Dim], r.Dim)
	}
	return r.IDs, r.Labels, feats, nil
}

// WriteIndex persists the shard's feature index with encoding/gob.
func (s *Shard) WriteIndex(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(buildRecord(s.ids, s.labels, s.feats)); err != nil {
		return fmt.Errorf("retrieval: encode index: %w", err)
	}
	return nil
}

// ReadShard loads a shard index previously written with WriteIndex.
func ReadShard(r io.Reader) (*Shard, error) {
	var rec indexRecord
	if err := gob.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("retrieval: decode index: %w", err)
	}
	ids, labels, feats, err := rec.unpack()
	if err != nil {
		return nil, err
	}
	return &Shard{ids: ids, labels: labels, feats: feats}, nil
}

// WriteIndex persists the engine's gallery index (features only — the
// extractor model is reconstructed separately, e.g. from its seed).
func (e *Engine) WriteIndex(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(buildRecord(e.ids, e.labels, e.feats)); err != nil {
		return fmt.Errorf("retrieval: encode index: %w", err)
	}
	return nil
}

// ReadEngine loads an engine index previously written with WriteIndex and
// attaches the query-side extractor m (which must be the model that built
// the index, or retrieval distances are meaningless).
func ReadEngine(r io.Reader, m models.Model) (*Engine, error) {
	var rec indexRecord
	if err := gob.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("retrieval: decode index: %w", err)
	}
	ids, labels, feats, err := rec.unpack()
	if err != nil {
		return nil, err
	}
	if len(feats) > 0 && m.FeatureDim() != rec.Dim {
		return nil, fmt.Errorf("retrieval: model dim %d does not match index dim %d", m.FeatureDim(), rec.Dim)
	}
	return &Engine{model: m, ids: ids, labels: labels, feats: feats}, nil
}
