package retrieval

import (
	"bytes"
	"math/rand"
	"testing"

	"duo/internal/models"
)

func TestEngineIndexRoundTrip(t *testing.T) {
	eng, c, m := testSystem(t)
	var buf bytes.Buffer
	if err := eng.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadEngine(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range c.Test[:3] {
		a := IDs(eng.Retrieve(q, 6))
		b := IDs(loaded.Retrieve(q, 6))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("reloaded engine differs at %d: %v vs %v", i, a, b)
			}
		}
	}
}

func TestShardIndexRoundTrip(t *testing.T) {
	_, c, m := testSystem(t)
	shard := NewShard(m, c.Train[:8])
	var buf bytes.Buffer
	if err := shard.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != shard.Size() {
		t.Fatalf("size %d vs %d", loaded.Size(), shard.Size())
	}
	feat := models.Embed(m, c.Test[0]).Data()
	a := shard.Nearest(feat, 4)
	b := loaded.Nearest(feat, 4)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("reloaded shard differs at %d", i)
		}
	}
}

func TestReadEngineDimMismatch(t *testing.T) {
	eng, _, _ := testSystem(t)
	var buf bytes.Buffer
	if err := eng.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	other := models.NewC3D(rand.New(rand.NewSource(1)),
		models.Geometry{Frames: 8, Channels: 3, Height: 12, Width: 12}, 8) // wrong dim
	if _, err := ReadEngine(&buf, other); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestReadShardGarbage(t *testing.T) {
	if _, err := ReadShard(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
}
