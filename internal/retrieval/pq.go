package retrieval

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"

	"duo/internal/models"
	"duo/internal/parallel"
	"duo/internal/telemetry"
	"duo/internal/tensor"
	"duo/internal/trace"
	"duo/internal/video"
)

// This file implements product quantization (PQ), the compressed-index
// tier of the retrieval service. Gallery features are split into
// contiguous subspaces, each subspace gets its own k-means codebook, and
// every gallery vector is stored as one byte code per subspace. A query
// scans the code matrix with an asymmetric-distance lookup table (ADC) —
// a handful of table lookups per row instead of a full float distance —
// selects a fixed number of candidates, and re-ranks them with exact
// distances so the final list is bit-identical to what the exact engine
// would return for those candidates. This is how production ANN systems
// keep million-entry galleries scannable (§I's "ever-growing large
// database"); DESIGN.md §14 specifies the determinism contract and the
// on-disk layout (pqfile.go).

// pqScanMinShard is the minimum code rows per scan shard: below this the
// per-row ADC work (nsub table lookups) is too cheap to amortize goroutine
// fan-out.
const pqScanMinShard = 1024

// PQConfig parameterizes product-quantized index construction.
type PQConfig struct {
	// Subspaces is the number of code subspaces (1 ≤ Subspaces ≤ dim).
	// Each gallery vector is stored as Subspaces bytes.
	Subspaces int
	// Centroids is the per-subspace codebook size (1 ≤ Centroids ≤ 256,
	// and at most the gallery size — codes are single bytes).
	Centroids int
	// KMeansIters bounds each subspace codebook fit (0 = default).
	KMeansIters int
	// Seed drives the (deterministic) codebook training.
	Seed int64
	// RerankDepth is how many ADC candidates are re-ranked with exact
	// distances per query (≥ 1; raised to m when a query asks for more).
	// It is fixed at build time so retrieval fingerprints are a property
	// of the index, not of the caller.
	RerankDepth int
}

func (cfg *PQConfig) validate(n, dim int) error {
	if cfg.Subspaces < 1 || cfg.Subspaces > dim {
		return fmt.Errorf("retrieval: pq: subspaces=%d out of range [1, %d]", cfg.Subspaces, dim)
	}
	if cfg.Centroids < 1 || cfg.Centroids > 256 {
		return fmt.Errorf("retrieval: pq: centroids=%d out of range [1, 256]", cfg.Centroids)
	}
	if cfg.Centroids > n {
		return fmt.Errorf("retrieval: pq: centroids=%d exceeds gallery size %d", cfg.Centroids, n)
	}
	if cfg.RerankDepth < 1 {
		return fmt.Errorf("retrieval: pq: rerank depth %d < 1", cfg.RerankDepth)
	}
	return nil
}

// pqTel holds the PQ scan instruments (write-only; the all-nil zero value
// is the disabled state, mirroring engineTel).
type pqTel struct {
	// scanNs times the ADC code scan per query (pq.adc_ns — distinct from
	// pq.scan_ns, the engine-level embed-excluded query timer).
	scanNs *telemetry.Histogram
	// rerankNs times the exact re-rank per query.
	rerankNs *telemetry.Histogram
	// codes counts code rows scanned across all queries.
	codes *telemetry.Counter
	// reranked counts candidates re-ranked exactly across all queries.
	reranked *telemetry.Counter
}

func resolvePQTel(r *telemetry.Registry) pqTel {
	return pqTel{
		scanNs:   r.Latency("pq.adc_ns"),
		rerankNs: r.Latency("pq.rerank_ns"),
		codes:    r.Counter("pq.codes_scanned"),
		reranked: r.Counter("pq.reranked"),
	}
}

// pqScratch is the pooled per-query workspace: the ADC lookup table, the
// candidate-selection scratch, and the re-rank buffer. dist is the ADC
// row-scoring closure, created once per scratch and re-targeted per query
// through the codes/lut fields — a closure built inside the query path
// would escape into the scan's worker goroutines and heap-allocate on
// every call.
type pqScratch struct {
	lut []float64
	idx idxScratch
	res []Result

	codes   []byte
	nsub, k int
	dist    func(i int) float64
}

// adcDist returns the scratch's reusable row-scoring closure: the ADC
// distance of row i is a fixed-order sum of nsub lookup-table cells.
func (sc *pqScratch) adcDist() func(i int) float64 {
	if sc.dist == nil {
		sc.dist = func(i int) float64 {
			s := 0.0
			nsub := sc.nsub
			lut := sc.lut
			for sub, c := range sc.codes[i*nsub : (i+1)*nsub] {
				s += lut[sub*sc.k+int(c)]
			}
			return s
		}
	}
	return sc.dist
}

// PQIndex is a model-free product-quantized gallery index: codebooks, the
// byte code matrix, and the exact feature rows used for re-ranking. It
// answers raw-feature queries (the node-side GalleryIndex surface) and is
// the unit persisted by pqfile.go. All storage is flat and read-only after
// construction, so a loaded index can alias a memory-mapped file directly.
type PQIndex struct {
	dim    int
	nsub   int
	k      int
	rerank int

	// codebooks holds the nsub codebooks back to back: codebook s occupies
	// codebooks[s*k*w_s ...] with w_s = Bounds(dim, nsub, s) width; entry j
	// is w_s contiguous floats. Total length k*dim.
	codebooks []float64
	// cbOff[s] is the float offset of codebook s; cbOff[nsub] == k*dim.
	cbOff []int
	// codes is the n×nsub row-major code matrix.
	codes []byte
	// feats is the n×dim row-major exact feature matrix (re-rank only —
	// the ADC scan never touches it, which is what makes the scan cheap
	// and the mmap'd layout lazy).
	feats []float64

	ids    []string
	labels []int

	// closer releases a memory-mapped backing file (nil for built or
	// copy-decoded indexes).
	closer func() error

	scratch sync.Pool
	tel     pqTel
}

var _ GalleryIndex = (*PQIndex)(nil)

// pqSubWidth returns the [lo, hi) coordinate range of subspace s, reusing
// the deterministic contiguous split of parallel.Bounds.
func pqSubBounds(dim, nsub, s int) (lo, hi int) { return parallel.Bounds(dim, nsub, s) }

// pqCodebookOffsets computes the per-subspace float offsets into the flat
// codebook storage.
func pqCodebookOffsets(dim, nsub, k int) []int {
	off := make([]int, nsub+1)
	for s := 0; s < nsub; s++ {
		lo, hi := pqSubBounds(dim, nsub, s)
		off[s+1] = off[s] + k*(hi-lo)
	}
	return off
}

// NewPQIndex trains a product-quantized index over the feature rows.
// ids/labels/feats are parallel slices; every feature must share one
// dimension. Training is deterministic: each subspace codebook is fit by
// the seeded KMeans with an independent per-subspace seed, so the result
// is bitwise-identical at every worker count.
func NewPQIndex(ids []string, labels []int, feats []*tensor.Tensor, cfg PQConfig) (*PQIndex, error) {
	n := len(feats)
	if n == 0 {
		return nil, fmt.Errorf("retrieval: pq: empty gallery")
	}
	if len(ids) != n || len(labels) != n {
		return nil, fmt.Errorf("retrieval: pq: %d ids, %d labels for %d features", len(ids), len(labels), n)
	}
	dim := feats[0].Len()
	for i, f := range feats {
		if f.Len() != dim {
			return nil, fmt.Errorf("retrieval: pq: feature %d has dim %d, want %d", i, f.Len(), dim)
		}
	}
	if cfg.KMeansIters <= 0 {
		cfg.KMeansIters = 25
	}
	if err := cfg.validate(n, dim); err != nil {
		return nil, err
	}

	ix := &PQIndex{
		dim:    dim,
		nsub:   cfg.Subspaces,
		k:      cfg.Centroids,
		rerank: cfg.RerankDepth,
		cbOff:  pqCodebookOffsets(dim, cfg.Subspaces, cfg.Centroids),
		codes:  make([]byte, n*cfg.Subspaces),
		feats:  make([]float64, n*dim),
		ids:    append([]string(nil), ids...),
		labels: append([]int(nil), labels...),
	}
	ix.codebooks = make([]float64, ix.cbOff[ix.nsub])
	for i, f := range feats {
		copy(ix.feats[i*dim:(i+1)*dim], f.Data())
	}

	// Train the nsub codebooks concurrently. Each subspace draws from its
	// own seeded generator, so the fit is independent of the worker count
	// and of training order.
	errs := make([]error, ix.nsub)
	parallel.For(ix.nsub, func(_, start, end int) {
		for s := start; s < end; s++ {
			errs[s] = ix.trainSubspace(s, cfg)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// trainSubspace fits codebook s and writes the codes of its coordinate
// range. Only state owned by subspace s is touched.
func (ix *PQIndex) trainSubspace(s int, cfg PQConfig) error {
	lo, hi := pqSubBounds(ix.dim, ix.nsub, s)
	w := hi - lo
	n := len(ix.ids)
	sub := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		sub[i] = tensor.From(ix.feats[i*ix.dim+lo:i*ix.dim+hi], w)
	}
	// Decorrelate per-subspace streams with a large odd stride so nearby
	// subspaces never share a seed.
	rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*0x9E3779B9))
	km, err := KMeans(rng, sub, ix.k, cfg.KMeansIters)
	if err != nil {
		return fmt.Errorf("retrieval: pq: subspace %d: %w", s, err)
	}
	for j, c := range km.Centroids {
		copy(ix.codebooks[ix.cbOff[s]+j*w:ix.cbOff[s]+(j+1)*w], c.Data())
	}
	for i, a := range km.Assign {
		ix.codes[i*ix.nsub+s] = byte(a)
	}
	return nil
}

// SetTelemetry wires the index's scan instruments into the registry under
// the "pq" prefix; nil disables (the default). Write-only: enabling it
// cannot change any retrieval result.
func (ix *PQIndex) SetTelemetry(r *telemetry.Registry) { ix.tel = resolvePQTel(r) }

// Size returns the number of indexed entries.
func (ix *PQIndex) Size() int { return len(ix.ids) }

// Dim returns the feature dimension.
func (ix *PQIndex) Dim() int { return ix.dim }

// RerankDepth returns the index's fixed exact re-rank depth.
func (ix *PQIndex) RerankDepth() int { return ix.rerank }

// Close releases the index's backing storage (the memory mapping for an
// index opened from a file; a no-op otherwise). The index must not be used
// after Close.
func (ix *PQIndex) Close() error {
	if ix.closer == nil {
		return nil
	}
	c := ix.closer
	ix.closer = nil
	// Drop the aliases into the mapping before releasing it.
	ix.codebooks, ix.codes, ix.feats = nil, nil, nil
	return c()
}

// effectiveRerank is the candidate count actually re-ranked for a query
// asking for m results: the fixed depth, raised to m, capped at the
// gallery size.
func (ix *PQIndex) effectiveRerank(m int) int {
	r := ix.rerank
	if r < m {
		r = m
	}
	if n := len(ix.ids); r > n {
		r = n
	}
	return r
}

// Nearest returns the index's top-m entries for the query feature,
// single-threaded (the cluster's node fan-out is the unit of parallelism,
// exactly like Shard.Nearest).
func (ix *PQIndex) Nearest(feat []float64, m int) []Result {
	return ix.nearest(feat, m, 1)
}

// l2sq is the flat-slice squared L2 distance. The loop mirrors
// tensor.SquaredDistance element for element, so re-ranked distances are
// bitwise-identical to the exact engine's tensor-based scan.
func l2sq(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// nearest is the PQ query hot path: adcSelect into the pooled scratch,
// then copy the top-m into a fresh caller-owned slice.
func (ix *PQIndex) nearest(feat []float64, m, workers int) []Result {
	if len(feat) != ix.dim {
		panic(fmt.Sprintf("retrieval: pq: query dim %d, index dim %d", len(feat), ix.dim))
	}
	n := len(ix.ids)
	if m > n {
		m = n
	}
	if m < 0 {
		m = 0
	}
	out := make([]Result, m)
	if m == 0 {
		return out
	}

	sc, _ := ix.scratch.Get().(*pqScratch)
	if sc == nil {
		sc = new(pqScratch)
	}
	defer ix.scratch.Put(sc)

	res := ix.adcSelect(feat, m, workers, sc)
	copy(out, res[:m])
	return out
}

// adcSelect is the allocation-free core of a PQ query: build the ADC
// lookup table in the scratch, select the re-rank candidates from the code
// matrix with the sharded top-R scan, and re-rank them exactly. Candidate
// selection orders by (ADC distance, ID) and re-ranking orders by (exact
// distance, ID) — both strict total orders — so the output is
// bitwise-identical at every worker count. The returned slice aliases
// sc.res (≥ m entries for m ≤ gallery size) and is valid until the next
// select with the same scratch; with a warm scratch and telemetry
// disabled it performs zero heap allocations.
//
//duolint:hot
func (ix *PQIndex) adcSelect(feat []float64, m, workers int, sc *pqScratch) []Result {
	n := len(ix.ids)

	// ADC lookup table: lut[s*k+j] = ‖query_s − codebook_s[j]‖². Each cell
	// is independent; the table is dim*k float ops, negligible next to the
	// scan it replaces.
	if cap(sc.lut) < ix.nsub*ix.k {
		sc.lut = make([]float64, ix.nsub*ix.k)
	}
	lut := sc.lut[:ix.nsub*ix.k]
	for s := 0; s < ix.nsub; s++ {
		lo, hi := pqSubBounds(ix.dim, ix.nsub, s)
		q := feat[lo:hi]
		w := hi - lo
		cb := ix.codebooks[ix.cbOff[s]:ix.cbOff[s+1]]
		for j := 0; j < ix.k; j++ {
			lut[s*ix.k+j] = l2sq(q, cb[j*w:(j+1)*w])
		}
	}

	// Sharded candidate scan over the code matrix. The per-row score is a
	// fixed-order sum of nsub table cells, so it is a pure function of the
	// row — sharding cannot change a single bit of it. The scoring closure
	// lives in the scratch (see adcDist); re-target it at this query's
	// table and codes.
	R := ix.effectiveRerank(m)
	sc.lut, sc.codes, sc.nsub, sc.k = lut, ix.codes, ix.nsub, ix.k
	sw := ix.tel.scanNs.Start()
	cands := scanTopMIdx(n, R, parallel.CapWorkers(workers, n, pqScanMinShard), sc.adcDist(), ix.ids, &sc.idx)
	sw.Stop()
	ix.tel.codes.Add(int64(n))

	// Exact re-rank at fixed depth: candidates get their true distances
	// (bitwise-identical to the exact engine's) and the final order is the
	// service-wide (Dist, ID) order.
	sw = ix.tel.rerankNs.Start()
	res := sc.res[:0]
	for _, cd := range cands {
		row := ix.feats[cd.row*ix.dim : (cd.row+1)*ix.dim]
		res = append(res, Result{
			ID:    ix.ids[cd.row],
			Label: ix.labels[cd.row],
			Dist:  math.Sqrt(l2sq(feat, row)),
		})
	}
	slices.SortFunc(res, cmpResult)
	sc.res = res
	sw.Stop()
	ix.tel.reranked.Add(int64(len(res)))
	return res
}

// PQEngine is a retrieval engine backed by a product-quantized index: the
// query-side feature extractor plus a PQIndex. Its black-box interface is
// identical to the exact Engine's, so every attack and evaluation in the
// repository runs against it unchanged.
type PQEngine struct {
	model   models.Model
	idx     *PQIndex
	queries atomic.Int64
	tel     engineTel
	tracer  *trace.Tracer
}

var _ Retriever = (*PQEngine)(nil)
var _ BatchRetriever = (*PQEngine)(nil)
var _ FallibleRetriever = (*PQEngine)(nil)
var _ TracedRetriever = (*PQEngine)(nil)

// NewPQEngine extracts gallery features with m and trains a PQ index over
// them.
func NewPQEngine(m models.Model, gallery []*video.Video, cfg PQConfig) (*PQEngine, error) {
	ids := make([]string, len(gallery))
	labels := make([]int, len(gallery))
	feats := make([]*tensor.Tensor, len(gallery))
	for i, v := range gallery {
		ids[i] = v.ID
		labels[i] = v.Label
		feats[i] = models.Embed(m, v)
	}
	ix, err := NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		return nil, err
	}
	return NewPQEngineFromIndex(m, ix)
}

// NewPQEngineFromIndex attaches the query-side extractor to a built or
// loaded index. The model must be the one that produced the index's
// features, or retrieval distances are meaningless; the dimension check
// catches the obvious mismatch.
func NewPQEngineFromIndex(m models.Model, ix *PQIndex) (*PQEngine, error) {
	if m.FeatureDim() != ix.dim {
		return nil, fmt.Errorf("retrieval: pq: model dim %d does not match index dim %d", m.FeatureDim(), ix.dim)
	}
	return &PQEngine{model: m, idx: ix}, nil
}

// Index exposes the engine's underlying PQ index (persistence, telemetry).
func (e *PQEngine) Index() *PQIndex { return e.idx }

// Model exposes the engine's feature extractor (white-box access used only
// by defenses and evaluation, never by the black-box attacks).
func (e *PQEngine) Model() models.Model { return e.model }

// GallerySize returns the number of indexed videos.
func (e *PQEngine) GallerySize() int { return e.idx.Size() }

// QueryCount returns the number of Retrieve calls served.
func (e *PQEngine) QueryCount() int64 { return e.queries.Load() }

// ResetQueryCount zeroes the query counter.
func (e *PQEngine) ResetQueryCount() { e.queries.Store(0) }

// SetTelemetry wires the engine's instruments (and the index's scan
// instruments) into the registry under the "pq" prefix; nil disables.
func (e *PQEngine) SetTelemetry(r *telemetry.Registry) {
	e.tel = resolveEngineTel(r, "pq")
	e.idx.SetTelemetry(r)
}

// SetTrace attaches a tracer: subsequent RetrieveTraced calls record one
// pq.retrieve span each, carrying the scan shape (pq.* attributes).
// Tracing is write-only and cannot change any retrieval result.
func (e *PQEngine) SetTrace(t *trace.Tracer) *PQEngine {
	e.tracer = t
	return e
}

// Retrieve implements Retriever: embed the query and run the ADC scan +
// exact re-rank across parallel.Workers().
func (e *PQEngine) Retrieve(v *video.Video, m int) []Result {
	e.queries.Add(1)
	e.tel.queries.Inc()
	e.tel.topM.Observe(float64(m))
	feat := models.Embed(e.model, v)
	sw := e.tel.scanNs.Start()
	rs := e.idx.nearest(feat.Data(), m, parallel.Workers())
	sw.Stop()
	e.tel.scanned.Add(int64(e.idx.Size()))
	return rs
}

// RetrieveErr implements FallibleRetriever; a local PQ scan cannot fail.
func (e *PQEngine) RetrieveErr(v *video.Video, m int) ([]Result, error) {
	return e.Retrieve(v, m), nil
}

// RetrieveTraced implements TracedRetriever: Retrieve under a span
// recording the quantized-scan shape. Attribute values are pure functions
// of the index and m, so the span tree is deterministic (the bare
// "queries" attribute stays reserved for retrieve leaves, per the golden
// trace contract).
func (e *PQEngine) RetrieveTraced(tc trace.Context, v *video.Video, m int) ([]Result, error) {
	sp := e.tracer.StartCtx(tc, "pq.retrieve")
	sp.SetInt("m", int64(m))
	sp.SetInt("pq.codes_scanned", int64(e.idx.Size()))
	sp.SetInt("pq.rerank_depth", int64(e.idx.effectiveRerank(m)))
	sp.SetInt("pq.subspaces", int64(e.idx.nsub))
	rs := e.Retrieve(v, m)
	sp.SetInt("results", int64(len(rs)))
	sp.End()
	return rs, nil
}

// RetrieveBatch implements BatchRetriever: independent queries fan out
// across workers (each scanning single-threaded, so the batch is the unit
// of parallelism) and each one is billed to QueryCount.
func (e *PQEngine) RetrieveBatch(vs []*video.Video, m int) [][]Result {
	e.queries.Add(int64(len(vs)))
	e.tel.batchSize.Observe(float64(len(vs)))
	out := make([][]Result, len(vs))
	parallel.For(len(vs), func(_, start, end int) {
		for i := start; i < end; i++ {
			e.tel.queries.Inc()
			e.tel.topM.Observe(float64(m))
			feat := models.Embed(e.model, vs[i])
			out[i] = e.idx.nearest(feat.Data(), m, 1)
			e.tel.scanned.Add(int64(e.idx.Size()))
		}
	})
	return out
}
