package retrieval

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"duo/internal/tensor"
)

// pqADC computes the ADC approximation for gallery row i exactly the way
// the scan's lookup table does: per-subspace squared distance from the
// query slice to the row's assigned codebook entry, summed in subspace
// order.
func pqADC(ix *PQIndex, feat []float64, i int) float64 {
	s := 0.0
	for sub := 0; sub < ix.nsub; sub++ {
		lo, hi := pqSubBounds(ix.dim, ix.nsub, sub)
		w := hi - lo
		j := int(ix.codes[i*ix.nsub+sub])
		cb := ix.codebooks[ix.cbOff[sub]+j*w : ix.cbOff[sub]+(j+1)*w]
		s += l2sq(feat[lo:hi], cb)
	}
	return s
}

// pqReconstruct returns row i's quantized reconstruction (its codebook
// entries concatenated across subspaces).
func pqReconstruct(ix *PQIndex, i int) []float64 {
	rec := make([]float64, ix.dim)
	for sub := 0; sub < ix.nsub; sub++ {
		lo, hi := pqSubBounds(ix.dim, ix.nsub, sub)
		w := hi - lo
		j := int(ix.codes[i*ix.nsub+sub])
		copy(rec[lo:hi], ix.codebooks[ix.cbOff[sub]+j*w:ix.cbOff[sub]+(j+1)*w])
	}
	return rec
}

// pqCheckADCBound asserts the two properties that make ADC a sound
// candidate filter, for every gallery row against one query:
//
//  1. The ADC value IS the squared distance to the row's reconstruction
//     (same numbers summed in a different grouping — equal up to float
//     associativity).
//  2. The triangle inequality ties ADC to the true distance through the
//     quantization residual r = ‖x − recon(x)‖:
//     (d − r)² ≤ adc ≤ (d + r)², with d the true query–row distance.
func pqCheckADCBound(t *testing.T, ix *PQIndex, feat []float64) {
	t.Helper()
	for i := 0; i < ix.Size(); i++ {
		row := ix.feats[i*ix.dim : (i+1)*ix.dim]
		rec := pqReconstruct(ix, i)
		adc := pqADC(ix, feat, i)

		recDist := l2sq(feat, rec)
		tol := 1e-9 * (1 + math.Abs(recDist))
		if math.Abs(adc-recDist) > tol {
			t.Fatalf("row %d: adc %g differs from ‖q−recon‖² %g beyond float regrouping", i, adc, recDist)
		}

		d := math.Sqrt(l2sq(feat, row))
		r := math.Sqrt(l2sq(row, rec))
		lo := d - r
		if lo < 0 {
			lo = 0
		}
		loSq, hiSq := lo*lo, (d+r)*(d+r)
		tol = 1e-9 * (1 + hiSq)
		if adc < loSq-tol || adc > hiSq+tol {
			t.Fatalf("row %d: adc %g outside residual bound [%g, %g] (d=%g r=%g)", i, adc, loSq, hiSq, d, r)
		}
	}
}

// TestPQADCBoundProperty checks the residual bound across several random
// clustered instances and queries.
func TestPQADCBoundProperty(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ids, labels, feats := pqTestData(30+seed, 40, 8)
		cfg := pqTestConfig()
		cfg.Seed = seed
		ix, err := NewPQIndex(ids, labels, feats, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, _, qs := pqTestData(60+seed, 5, 8)
		for _, q := range qs {
			pqCheckADCBound(t, ix, q.Data())
		}
	}
}

// TestPQADCExactWhenCodebookCovers: with one centroid per distinct point
// (k = n) the reconstruction is the point itself, the residual collapses
// to zero, and ADC must equal the true squared distance up to float
// regrouping — the quantizer is lossless when it can afford to be.
func TestPQADCExactWhenCodebookCovers(t *testing.T) {
	ids, labels, feats := pqTestData(70, 24, 8)
	cfg := pqTestConfig()
	cfg.Centroids = len(ids)
	cfg.KMeansIters = 30
	ix, err := NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range feats {
		row := ix.feats[i*ix.dim : (i+1)*ix.dim]
		rec := pqReconstruct(ix, i)
		if r := math.Sqrt(l2sq(row, rec)); r > 1e-9 {
			t.Fatalf("row %d: residual %g with k=n, want ≈ 0", i, r)
		}
	}
	_, _, qs := pqTestData(71, 4, 8)
	for _, q := range qs {
		feat := q.Data()
		for i := range feats {
			row := ix.feats[i*ix.dim : (i+1)*ix.dim]
			d2 := l2sq(feat, row)
			adc := pqADC(ix, feat, i)
			if tol := 1e-9 * (1 + d2); math.Abs(adc-d2) > tol {
				t.Fatalf("row %d: adc %g vs exact %g with zero residual", i, adc, d2)
			}
		}
	}
}

// FuzzPQADCBound fuzzes index shapes and data seeds through the residual
// bound: whatever the subspace split, codebook size, or data, ADC must
// stay inside the quantization-residual envelope of the true distance.
func FuzzPQADCBound(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(6), uint8(3), uint8(4))
	f.Add(int64(2), uint8(30), uint8(8), uint8(8), uint8(16))
	f.Add(int64(3), uint8(5), uint8(1), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, dimRaw, nsubRaw, kRaw uint8) {
		n := 1 + int(nRaw)%40
		dim := 1 + int(dimRaw)%12
		nsub := 1 + int(nsubRaw)%dim
		k := 1 + int(kRaw)%n
		if k > 256 {
			k = 256
		}

		rng := rand.New(rand.NewSource(seed))
		ids := make([]string, n)
		labels := make([]int, n)
		feats := make([]*tensor.Tensor, n)
		for i := range feats {
			v := make([]float64, dim)
			for d := range v {
				v[d] = rng.NormFloat64() * 3
			}
			ids[i] = fmt.Sprintf("f%03d", i)
			labels[i] = i % 3
			feats[i] = tensor.From(v, dim)
		}
		ix, err := NewPQIndex(ids, labels, feats, PQConfig{
			Subspaces: nsub, Centroids: k, KMeansIters: 8, Seed: seed, RerankDepth: 4,
		})
		if err != nil {
			t.Fatalf("valid fuzzed config rejected (n=%d dim=%d nsub=%d k=%d): %v", n, dim, nsub, k, err)
		}
		q := make([]float64, dim)
		for d := range q {
			q[d] = rng.NormFloat64() * 3
		}
		pqCheckADCBound(t, ix, q)

		// The scan must agree with brute force over ADC values: its
		// candidate set is the R smallest (adc, id) pairs, and full-depth
		// re-rank equals the exact scan.
		full, err := NewPQIndex(ids, labels, feats, PQConfig{
			Subspaces: nsub, Centroids: k, KMeansIters: 8, Seed: seed, RerankDepth: n,
		})
		if err != nil {
			t.Fatal(err)
		}
		exact := NewShardFromFeatures(ids, labels, feats)
		m := 1 + int(nRaw)%7
		a, b := exact.Nearest(q, m), full.Nearest(q, m)
		for i := range a {
			if a[i].ID != b[i].ID || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
				t.Fatalf("full-rerank rank %d: exact %+v vs pq %+v", i, a[i], b[i])
			}
		}
	})
}
