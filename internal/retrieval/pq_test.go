package retrieval

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"duo/internal/telemetry"
	"duo/internal/tensor"
	"duo/internal/trace"
)

// pqTestData synthesizes a clustered flat-feature gallery for index-level
// tests (no model in the loop).
func pqTestData(seed int64, n, dim int) (ids []string, labels []int, feats []*tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 4
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64() * 5
		}
	}
	for i := 0; i < n; i++ {
		c := i % clusters
		v := make([]float64, dim)
		for d := range v {
			v[d] = centers[c][d] + rng.NormFloat64()
		}
		ids = append(ids, fmt.Sprintf("pq%04d", i))
		labels = append(labels, c)
		feats = append(feats, tensor.From(v, dim))
	}
	return ids, labels, feats
}

func pqTestConfig() PQConfig {
	return PQConfig{Subspaces: 4, Centroids: 8, KMeansIters: 15, Seed: 3, RerankDepth: 8}
}

func TestPQConfigValidation(t *testing.T) {
	ids, labels, feats := pqTestData(1, 30, 8)
	bad := []PQConfig{
		{Subspaces: 0, Centroids: 4, RerankDepth: 4},
		{Subspaces: 9, Centroids: 4, RerankDepth: 4}, // > dim
		{Subspaces: 4, Centroids: 0, RerankDepth: 4},
		{Subspaces: 4, Centroids: 257, RerankDepth: 4},
		{Subspaces: 4, Centroids: 31, RerankDepth: 4}, // > n
		{Subspaces: 4, Centroids: 4, RerankDepth: 0},
	}
	for i, cfg := range bad {
		if _, err := NewPQIndex(ids, labels, feats, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewPQIndex(nil, nil, nil, pqTestConfig()); err == nil {
		t.Error("empty gallery accepted")
	}
	if _, err := NewPQIndex(ids[:29], labels, feats, pqTestConfig()); err == nil {
		t.Error("mismatched ids length accepted")
	}
	mixed := append(append([]*tensor.Tensor(nil), feats[:29]...), tensor.New(5))
	if _, err := NewPQIndex(ids, labels, mixed, pqTestConfig()); err == nil {
		t.Error("mismatched feature dims accepted")
	}
}

// TestPQFullRerankMatchesExactBitwise pins the re-rank contract: with the
// re-rank depth covering the whole gallery, every candidate gets its exact
// distance, so the PQ result list must be bitwise-identical to the exact
// shard scan — IDs, labels, and distance bit patterns.
func TestPQFullRerankMatchesExactBitwise(t *testing.T) {
	ids, labels, feats := pqTestData(2, 60, 8)
	cfg := pqTestConfig()
	cfg.RerankDepth = len(ids)
	ix, err := NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact := NewShardFromFeatures(ids, labels, feats)
	_, _, queries := pqTestData(9, 10, 8)
	for qi, q := range queries {
		a := exact.Nearest(q.Data(), 7)
		b := ix.Nearest(q.Data(), 7)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Label != b[i].Label ||
				math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
				t.Fatalf("query %d rank %d: exact %+v, pq %+v", qi, i, a[i], b[i])
			}
		}
	}
}

// TestPQWorkerCountBitStable asserts the §9 determinism contract at the
// index layer: the same query must produce bitwise-identical results at
// every scan worker count, even when the scan actually shards (gallery
// larger than pqScanMinShard).
func TestPQWorkerCountBitStable(t *testing.T) {
	n := 3 * pqScanMinShard
	ids, labels, feats := pqTestData(4, n, 8)
	cfg := pqTestConfig()
	cfg.Centroids = 16
	ix, err := NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, queries := pqTestData(11, 6, 8)
	for qi, q := range queries {
		base := ix.nearest(q.Data(), 9, 1)
		for _, w := range []int{2, 3, 4, 8} {
			got := ix.nearest(q.Data(), 9, w)
			if len(got) != len(base) {
				t.Fatalf("query %d workers %d: %d vs %d results", qi, w, len(got), len(base))
			}
			for i := range base {
				if base[i].ID != got[i].ID ||
					math.Float64bits(base[i].Dist) != math.Float64bits(got[i].Dist) {
					t.Fatalf("query %d workers %d rank %d: %+v vs %+v", qi, w, i, base[i], got[i])
				}
			}
		}
	}
}

func TestPQNearestEdgeCases(t *testing.T) {
	ids, labels, feats := pqTestData(5, 20, 8)
	ix, err := NewPQIndex(ids, labels, feats, pqTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := feats[0].Data()
	if got := ix.Nearest(q, 0); len(got) != 0 {
		t.Errorf("m=0 returned %d results", len(got))
	}
	if got := ix.Nearest(q, -3); len(got) != 0 {
		t.Errorf("m<0 returned %d results", len(got))
	}
	if got := ix.Nearest(q, 100); len(got) != 20 {
		t.Errorf("m>n returned %d results, want clamp to 20", len(got))
	}
	// The nearest entry to a gallery member is itself, at distance 0.
	if got := ix.Nearest(q, 1); got[0].ID != ids[0] || got[0].Dist != 0 {
		t.Errorf("self query returned %+v", got[0])
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dim-mismatched query did not panic")
			}
		}()
		ix.Nearest(make([]float64, 5), 1)
	}()
	if ix.Size() != 20 || ix.Dim() != 8 || ix.RerankDepth() != pqTestConfig().RerankDepth {
		t.Errorf("accessors: size=%d dim=%d rerank=%d", ix.Size(), ix.Dim(), ix.RerankDepth())
	}
}

// TestPQTrainingDeterministic: same inputs and seed produce bitwise
// identical codebooks and codes (the training fan-out over subspaces must
// not leak scheduling into the fit).
func TestPQTrainingDeterministic(t *testing.T) {
	ids, labels, feats := pqTestData(6, 80, 8)
	cfg := pqTestConfig()
	a, err := NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.codebooks {
		if math.Float64bits(a.codebooks[i]) != math.Float64bits(b.codebooks[i]) {
			t.Fatalf("codebooks differ at %d", i)
		}
	}
	for i := range a.codes {
		if a.codes[i] != b.codes[i] {
			t.Fatalf("codes differ at row-entry %d", i)
		}
	}
}

// TestPQEngineParityAndBilling runs the PQ engine as a drop-in black box
// next to the exact engine: with full re-rank the ranked lists agree, and
// every query path bills QueryCount exactly once per query.
func TestPQEngineParityAndBilling(t *testing.T) {
	eng, c, m := testSystem(t)
	pq, err := NewPQEngine(m, c.Train, PQConfig{
		Subspaces: 4, Centroids: 8, KMeansIters: 15, Seed: 5, RerankDepth: len(c.Train),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pq.GallerySize() != eng.GallerySize() {
		t.Fatalf("gallery size %d vs %d", pq.GallerySize(), eng.GallerySize())
	}
	for _, q := range c.Test[:4] {
		a := IDs(eng.Retrieve(q, 6))
		b := IDs(pq.Retrieve(q, 6))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("full-rerank PQ differs at %d: %v vs %v", i, a, b)
			}
		}
	}
	pq.ResetQueryCount()
	pq.Retrieve(c.Test[0], 3)
	if rs, err := pq.RetrieveErr(c.Test[0], 3); err != nil || len(rs) != 3 {
		t.Fatalf("RetrieveErr: %v, %d results", err, len(rs))
	}
	batch := pq.RetrieveBatch(c.Test[:3], 4)
	if len(batch) != 3 {
		t.Fatalf("batch returned %d lists", len(batch))
	}
	if got := pq.QueryCount(); got != 5 {
		t.Errorf("QueryCount = %d, want 5 (1 + 1 + batch of 3)", got)
	}
	// Batch answers must match the single-query path.
	for i, q := range c.Test[:3] {
		a, b := IDs(pq.Retrieve(q, 4)), IDs(batch[i])
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("batch query %d differs at %d: %v vs %v", i, j, a, b)
			}
		}
	}
}

// TestPQEngineTelemetry checks the write-only instrumentation contract:
// enabling telemetry fills the pq.* instruments without changing results.
func TestPQEngineTelemetry(t *testing.T) {
	eng, c, m := testSystem(t)
	pq, err := NewPQEngine(m, c.Train, PQConfig{
		Subspaces: 4, Centroids: 8, KMeansIters: 15, Seed: 5, RerankDepth: len(c.Train),
	})
	if err != nil {
		t.Fatal(err)
	}
	clean := IDs(pq.Retrieve(c.Test[0], 5))

	reg := telemetry.New()
	pq.SetTelemetry(reg)
	instrumented := IDs(pq.Retrieve(c.Test[0], 5))
	for i := range clean {
		if clean[i] != instrumented[i] {
			t.Fatalf("telemetry changed results: %v vs %v", clean, instrumented)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["pq.queries"] != 1 {
		t.Errorf("pq.queries = %d, want 1", snap.Counters["pq.queries"])
	}
	if got := snap.Counters["pq.codes_scanned"]; got != int64(pq.GallerySize()) {
		t.Errorf("pq.codes_scanned = %d, want %d", got, pq.GallerySize())
	}
	if got := snap.Counters["pq.reranked"]; got != int64(pq.GallerySize()) {
		t.Errorf("pq.reranked = %d, want full-depth %d", got, pq.GallerySize())
	}
	for _, h := range []string{"pq.adc_ns", "pq.rerank_ns", "pq.scan_ns"} {
		if st, ok := snap.Histograms[h]; !ok || st.Count != 1 {
			t.Errorf("histogram %s missing or empty: %+v", h, st)
		}
	}
	_ = eng
}

// TestPQEngineTraced checks the span contract: one pq.retrieve span per
// traced query carrying the scan-shape attributes, and never the bare
// `queries` attribute (reserved for retrieve leaf spans by the golden
// trace contract).
func TestPQEngineTraced(t *testing.T) {
	_, c, m := testSystem(t)
	pq, err := NewPQEngine(m, c.Train, PQConfig{
		Subspaces: 4, Centroids: 8, KMeansIters: 15, Seed: 5, RerankDepth: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("pq-test")
	pq.SetTrace(tr)
	rs, err := pq.RetrieveTraced(trace.Context{}, c.Test[0], 4)
	if err != nil || len(rs) != 4 {
		t.Fatalf("RetrieveTraced: %v, %d results", err, len(rs))
	}
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Name != "pq.retrieve" {
		t.Fatalf("got %d spans %+v, want one pq.retrieve", len(recs), recs)
	}
	r := recs[0]
	for attr, want := range map[string]int64{
		"m":                4,
		"pq.codes_scanned": int64(pq.GallerySize()),
		"pq.rerank_depth":  6,
		"pq.subspaces":     4,
		"results":          4,
	} {
		if got, ok := r.Int(attr); !ok || got != want {
			t.Errorf("span attr %s = %d (ok=%v), want %d", attr, got, ok, want)
		}
	}
	if _, ok := r.Int("queries"); ok {
		t.Error("pq.retrieve span carries the reserved `queries` attribute")
	}
}

// TestPQRecallReasonable: at a shallow re-rank depth PQ is approximate but
// must still retrieve most of the true neighbors on clustered data, and a
// deeper re-rank must not lower recall.
func TestPQRecallReasonable(t *testing.T) {
	eng, c, m := testSystem(t)
	shallow, err := NewPQEngine(m, c.Train, PQConfig{
		Subspaces: 4, Centroids: 8, KMeansIters: 15, Seed: 5, RerankDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	r8 := RecallAtM(eng, shallow, c.Test, 5)
	if r8 < 0.5 {
		t.Errorf("recall@5 = %g at depth 8, want ≥ 0.5", r8)
	}
	deep, err := NewPQEngine(m, c.Train, PQConfig{
		Subspaces: 4, Centroids: 8, KMeansIters: 15, Seed: 5, RerankDepth: len(c.Train),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rFull := RecallAtM(eng, deep, c.Test, 5); rFull < r8-1e-9 {
		t.Errorf("recall fell with deeper re-rank: %g → %g", r8, rFull)
	}
}

func TestPQEngineFromIndexDimMismatch(t *testing.T) {
	_, _, m := testSystem(t)
	ids, labels, feats := pqTestData(7, 30, m.FeatureDim()+1)
	cfg := pqTestConfig()
	cfg.Subspaces = 1
	ix, err := NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPQEngineFromIndex(m, ix); err == nil {
		t.Error("model/index dim mismatch accepted")
	}
}
