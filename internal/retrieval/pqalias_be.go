//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mipsle || mips64le || wasm)

package retrieval

// Portable fallback for big-endian (or otherwise unvetted) architectures:
// float sections of an index file are never aliased in place, so the
// decoder copies them through the explicit little-endian conversion. Same
// values, no unsafe.

// pqAlignedFloats always declines; callers fall back to getFloatsLE.
func pqAlignedFloats(sec []byte) ([]float64, bool) { return nil, false }
