//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mipsle || mips64le || wasm

package retrieval

import "unsafe"

// This file is the little-endian half of the float-section aliasing pair
// (see pqalias_be.go for the portable fallback). On these architectures
// the on-disk little-endian float64 bit patterns are already in native
// byte order, so a mapped index file can be reinterpreted in place —
// loading costs no per-value decode and no copy of the feature matrix.

// pqAlignedFloats reinterprets sec as a []float64 without copying when the
// section is 8-byte aligned (always true for sections of a page-aligned
// mapping, since the layout aligns every section to 8 bytes). A misaligned
// base — possible for heap-backed buffers handed to ReadPQIndex — reports
// false and the caller decodes by copy instead.
func pqAlignedFloats(sec []byte) ([]float64, bool) {
	if len(sec) == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&sec[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&sec[0])), len(sec)/8), true
}
