package retrieval

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// On-disk format of a product-quantized index (DESIGN.md §14): a
// fixed-width 64-byte header followed by 8-byte-aligned flat sections, all
// little-endian. The layout is mmap-friendly by construction — every
// numeric section can be used in place from a read-only mapping, and the
// large exact-feature matrix sits at the tail so a cold node only faults
// in the pages its re-ranks actually touch.
//
//	offset  size  field
//	     0     8  magic "DUOPQIDX"
//	     8     4  version (uint32, currently 1)
//	    12     4  flags (reserved, 0)
//	    16     8  n — indexed entries (uint64)
//	    24     4  dim — feature dimension
//	    28     4  nsub — code subspaces
//	    32     4  k — centroids per subspace
//	    36     4  rerank — fixed exact re-rank depth
//	    40     8  payload length in bytes (uint64)
//	    48     4  CRC-32 (IEEE) of the payload
//	    52     4  id-blob length in bytes
//	    56     8  reserved (0)
//	    64     …  payload
//
// Payload sections, in order, each padded to an 8-byte boundary:
//
//	codebooks  k·dim float64 — subspace codebooks back to back
//	codes      n·nsub bytes  — the code matrix (ADC scan input)
//	labels     n int32
//	idoffs     (n+1) uint32  — byte offsets into idblob (prefix sums)
//	idblob     concatenated id strings
//	feats      n·dim float64 — exact features (re-rank input)
//
// Version changes that alter the layout bump the version field; readers
// reject other versions with ErrIndexVersion rather than guessing.

const (
	pqMagic      = "DUOPQIDX"
	pqVersion    = 1
	pqHeaderSize = 64
)

// Typed load failures: callers (retrievald's load-or-rebuild path, the
// round-trip test battery) distinguish a missing feature from a damaged
// file via errors.Is.
var (
	// ErrIndexMagic means the file is not a PQ index at all.
	ErrIndexMagic = errors.New("retrieval: pq index: bad magic")
	// ErrIndexVersion means the file's layout version is not supported.
	ErrIndexVersion = errors.New("retrieval: pq index: unsupported version")
	// ErrIndexTruncated means the file ends before its declared payload.
	ErrIndexTruncated = errors.New("retrieval: pq index: truncated")
	// ErrIndexCorrupt means the file is structurally invalid or fails its
	// checksum.
	ErrIndexCorrupt = errors.New("retrieval: pq index: corrupt")
)

// pqLayout holds the byte offsets of every payload section, a pure
// function of the header fields (shared by the encoder and the decoder so
// the two can never disagree).
type pqLayout struct {
	cbOff     int
	codesOff  int
	labelsOff int
	idOffOff  int
	idBlobOff int
	featsOff  int
	end       int
}

func pqAlign8(x int) int { return (x + 7) &^ 7 }

func pqLayoutOf(n, dim, nsub, k, idBlobLen int) pqLayout {
	var l pqLayout
	off := 0
	l.cbOff = off
	off = pqAlign8(off + k*dim*8)
	l.codesOff = off
	off = pqAlign8(off + n*nsub)
	l.labelsOff = off
	off = pqAlign8(off + 4*n)
	l.idOffOff = off
	off = pqAlign8(off + 4*(n+1))
	l.idBlobOff = off
	off = pqAlign8(off + idBlobLen)
	l.featsOff = off
	l.end = off + n*dim*8
	return l
}

// putFloatsLE encodes vals into dst as little-endian float64 bit patterns.
func putFloatsLE(dst []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// getFloatsLE decodes a little-endian float64 section into a fresh slice
// (the portable path; little-endian hosts alias the bytes instead).
func getFloatsLE(src []byte) []float64 {
	out := make([]float64, len(src)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return out
}

// floatSection returns the section bytes as []float64, aliasing them
// in place when the platform allows (little-endian, 8-byte aligned) and
// copying otherwise. Either way the values are identical.
func floatSection(sec []byte) []float64 {
	if fs, ok := pqAlignedFloats(sec); ok {
		return fs
	}
	return getFloatsLE(sec)
}

// WriteIndex persists the index in the versioned flat layout. The entire
// payload is assembled in memory to checksum it; index files are dominated
// by the feature matrix, which the caller already holds.
func (ix *PQIndex) WriteIndex(w io.Writer) error {
	n := len(ix.ids)
	idBlobLen := 0
	for _, id := range ix.ids {
		idBlobLen += len(id)
	}
	l := pqLayoutOf(n, ix.dim, ix.nsub, ix.k, idBlobLen)
	payload := make([]byte, l.end)

	putFloatsLE(payload[l.cbOff:], ix.codebooks)
	copy(payload[l.codesOff:], ix.codes)
	for i, lab := range ix.labels {
		binary.LittleEndian.PutUint32(payload[l.labelsOff+4*i:], uint32(int32(lab)))
	}
	off := 0
	for i, id := range ix.ids {
		binary.LittleEndian.PutUint32(payload[l.idOffOff+4*i:], uint32(off))
		copy(payload[l.idBlobOff+off:], id)
		off += len(id)
	}
	binary.LittleEndian.PutUint32(payload[l.idOffOff+4*n:], uint32(off))
	putFloatsLE(payload[l.featsOff:], ix.feats)

	var hdr [pqHeaderSize]byte
	copy(hdr[0:8], pqMagic)
	binary.LittleEndian.PutUint32(hdr[8:], pqVersion)
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(ix.dim))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(ix.nsub))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(ix.k))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(ix.rerank))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[48:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[52:], uint32(idBlobLen))

	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("retrieval: pq index: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("retrieval: pq index: write payload: %w", err)
	}
	return nil
}

// decodePQIndex validates data as a serialized PQ index and materializes
// it. Numeric sections alias data where the platform allows, so when data
// is a read-only file mapping the index serves queries straight from the
// page cache; closer (may be nil) is retained for PQIndex.Close.
func decodePQIndex(data []byte, closer func() error) (*PQIndex, error) {
	if len(data) < pqHeaderSize {
		return nil, fmt.Errorf("%w: %d-byte file, want ≥ %d-byte header", ErrIndexTruncated, len(data), pqHeaderSize)
	}
	if string(data[0:8]) != pqMagic {
		return nil, fmt.Errorf("%w: %q", ErrIndexMagic, string(data[0:8]))
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != pqVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrIndexVersion, v, pqVersion)
	}
	n := int(binary.LittleEndian.Uint64(data[16:]))
	dim := int(binary.LittleEndian.Uint32(data[24:]))
	nsub := int(binary.LittleEndian.Uint32(data[28:]))
	k := int(binary.LittleEndian.Uint32(data[32:]))
	rerank := int(binary.LittleEndian.Uint32(data[36:]))
	payloadLen := int(binary.LittleEndian.Uint64(data[40:]))
	crc := binary.LittleEndian.Uint32(data[48:])
	idBlobLen := int(binary.LittleEndian.Uint32(data[52:]))

	if n < 1 || dim < 1 || nsub < 1 || nsub > dim || k < 1 || k > 256 || k > n || rerank < 1 || idBlobLen < 0 {
		return nil, fmt.Errorf("%w: implausible header (n=%d dim=%d nsub=%d k=%d rerank=%d)", ErrIndexCorrupt, n, dim, nsub, k, rerank)
	}
	l := pqLayoutOf(n, dim, nsub, k, idBlobLen)
	if l.end != payloadLen {
		return nil, fmt.Errorf("%w: declared payload %d bytes, layout needs %d", ErrIndexCorrupt, payloadLen, l.end)
	}
	if len(data) < pqHeaderSize+payloadLen {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrIndexTruncated, len(data), pqHeaderSize+payloadLen)
	}
	if len(data) > pqHeaderSize+payloadLen {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrIndexCorrupt, len(data)-pqHeaderSize-payloadLen)
	}
	payload := data[pqHeaderSize:]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrIndexCorrupt, got, crc)
	}

	ids := make([]string, n)
	blob := payload[l.idBlobOff : l.idBlobOff+idBlobLen]
	prev := 0
	for i := 0; i < n; i++ {
		lo := int(binary.LittleEndian.Uint32(payload[l.idOffOff+4*i:]))
		hi := int(binary.LittleEndian.Uint32(payload[l.idOffOff+4*(i+1):]))
		if lo != prev || hi < lo || hi > idBlobLen {
			return nil, fmt.Errorf("%w: id table entry %d out of order", ErrIndexCorrupt, i)
		}
		ids[i] = string(blob[lo:hi])
		prev = hi
	}
	if prev != idBlobLen {
		return nil, fmt.Errorf("%w: id blob has %d unclaimed bytes", ErrIndexCorrupt, idBlobLen-prev)
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = int(int32(binary.LittleEndian.Uint32(payload[l.labelsOff+4*i:])))
	}

	return &PQIndex{
		dim:       dim,
		nsub:      nsub,
		k:         k,
		rerank:    rerank,
		cbOff:     pqCodebookOffsets(dim, nsub, k),
		codebooks: floatSection(payload[l.cbOff : l.cbOff+k*dim*8]),
		codes:     payload[l.codesOff : l.codesOff+n*nsub],
		feats:     floatSection(payload[l.featsOff : l.featsOff+n*dim*8]),
		ids:       ids,
		labels:    labels,
		closer:    closer,
	}, nil
}

// ReadPQIndex loads an index previously written with WriteIndex from an
// arbitrary reader (the portable, copy-decoding path).
func ReadPQIndex(r io.Reader) (*PQIndex, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("retrieval: pq index: read: %w", err)
	}
	return decodePQIndex(data, nil)
}

// OpenPQIndexFile opens a persisted index read-only, memory-mapping it
// where the platform supports it (falling back to a plain read elsewhere).
// This is the node cold-start path: validation touches the file once, and
// afterwards queries serve from the mapping with no per-entry
// deserialization. Close the index to release the mapping.
func OpenPQIndexFile(path string) (*PQIndex, error) {
	data, closer, err := pqMapFile(path)
	if err != nil {
		return nil, err
	}
	ix, err := decodePQIndex(data, closer)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ix, nil
}
