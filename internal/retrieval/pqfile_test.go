package retrieval

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// pqTestIndex builds a small trained index plus query features.
func pqTestIndex(t *testing.T) (*PQIndex, [][]float64) {
	t.Helper()
	ids, labels, feats := pqTestData(21, 50, 8)
	cfg := pqTestConfig()
	ix, err := NewPQIndex(ids, labels, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, qs := pqTestData(22, 6, 8)
	queries := make([][]float64, len(qs))
	for i, q := range qs {
		queries[i] = q.Data()
	}
	return ix, queries
}

// pqAssertSameAnswers requires two indexes to answer every query with
// bitwise-identical result lists.
func pqAssertSameAnswers(t *testing.T, a, b *PQIndex, queries [][]float64) {
	t.Helper()
	if a.Size() != b.Size() || a.Dim() != b.Dim() || a.RerankDepth() != b.RerankDepth() {
		t.Fatalf("shape differs: (%d,%d,%d) vs (%d,%d,%d)",
			a.Size(), a.Dim(), a.RerankDepth(), b.Size(), b.Dim(), b.RerankDepth())
	}
	for qi, q := range queries {
		ra, rb := a.Nearest(q, 7), b.Nearest(q, 7)
		for i := range ra {
			if ra[i].ID != rb[i].ID || ra[i].Label != rb[i].Label ||
				math.Float64bits(ra[i].Dist) != math.Float64bits(rb[i].Dist) {
				t.Fatalf("query %d rank %d: %+v vs %+v", qi, i, ra[i], rb[i])
			}
		}
	}
}

// TestPQIndexRoundTripReader pins the portable (copy-decoding) round trip:
// a written-then-read index must be answer-identical to the original.
func TestPQIndexRoundTripReader(t *testing.T) {
	ix, queries := pqTestIndex(t)
	var buf bytes.Buffer
	if err := ix.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPQIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pqAssertSameAnswers(t, ix, loaded, queries)
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPQIndexRoundTripFile pins the mmap cold-start path (the platform's
// fast path where supported, plain read elsewhere): open, query, close,
// and double-close safety.
func TestPQIndexRoundTripFile(t *testing.T) {
	ix, queries := pqTestIndex(t)
	path := filepath.Join(t.TempDir(), "pq.duopq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.WriteIndex(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenPQIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pqAssertSameAnswers(t, ix, loaded, queries)
	if err := loaded.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := OpenPQIndexFile(filepath.Join(t.TempDir(), "absent.duopq")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want os.ErrNotExist", err)
	}
}

// pqEncode serializes ix into a byte slice.
func pqEncode(t *testing.T, ix *PQIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPQIndexRejectsDamage walks the failure-mode battery: every class of
// file damage must be rejected with its typed sentinel error, never loaded
// as garbage and never misclassified.
func TestPQIndexRejectsDamage(t *testing.T) {
	ix, _ := pqTestIndex(t)
	good := pqEncode(t, ix)

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty file", func(b []byte) []byte { return nil }, ErrIndexTruncated},
		{"short header", func(b []byte) []byte { return b[:pqHeaderSize-1] }, ErrIndexTruncated},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-9] }, ErrIndexTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrIndexMagic},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], pqVersion+1)
			return b
		}, ErrIndexVersion},
		{"payload bit flip", func(b []byte) []byte { b[pqHeaderSize+17] ^= 0x04; return b }, ErrIndexCorrupt},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xEE) }, ErrIndexCorrupt},
		{"implausible header n=0", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 0)
			return b
		}, ErrIndexCorrupt},
		{"header/payload length mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[40:], uint64(len(b)-pqHeaderSize+8))
			return b
		}, ErrIndexCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), good...))
			_, err := ReadPQIndex(bytes.NewReader(mut))
			if err == nil {
				t.Fatal("damaged index accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			// The same damage must be typed identically through the file
			// opener (the retrievald load-or-rebuild path dispatches on it).
			path := filepath.Join(t.TempDir(), "damaged.duopq")
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenPQIndexFile(path); !errors.Is(err, tc.want) {
				t.Fatalf("OpenPQIndexFile err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestPQIndexRejectsBrokenIDTable corrupts the id offset table and repairs
// the checksum, proving the decoder validates structure beyond the CRC (a
// checksum matches whatever bytes were written, including a buggy
// writer's).
func TestPQIndexRejectsBrokenIDTable(t *testing.T) {
	ix, _ := pqTestIndex(t)
	data := pqEncode(t, ix)
	n := len(ix.ids)
	idBlobLen := 0
	for _, id := range ix.ids {
		idBlobLen += len(id)
	}
	l := pqLayoutOf(n, ix.dim, ix.nsub, ix.k, idBlobLen)
	// Break the prefix-sum invariant of entry 1, then re-checksum.
	binary.LittleEndian.PutUint32(data[pqHeaderSize+l.idOffOff+4:], uint32(idBlobLen+1))
	binary.LittleEndian.PutUint32(data[48:], crc32.ChecksumIEEE(data[pqHeaderSize:]))
	_, err := ReadPQIndex(bytes.NewReader(data))
	if !errors.Is(err, ErrIndexCorrupt) {
		t.Fatalf("err = %v, want ErrIndexCorrupt", err)
	}
}

// TestPQLayoutAligned pins the mmap precondition: every section offset the
// layout computes is 8-byte aligned, whatever the shape, so the float
// sections can alias a mapping on alignment-strict platforms.
func TestPQLayoutAligned(t *testing.T) {
	shapes := []struct{ n, dim, nsub, k, blob int }{
		{1, 1, 1, 1, 0},
		{3, 7, 3, 2, 11},
		{50, 8, 4, 8, 300},
		{1000, 64, 8, 256, 12345},
	}
	for _, s := range shapes {
		l := pqLayoutOf(s.n, s.dim, s.nsub, s.k, s.blob)
		for _, off := range []int{l.cbOff, l.codesOff, l.labelsOff, l.idOffOff, l.idBlobOff, l.featsOff} {
			if off%8 != 0 {
				t.Errorf("shape %+v: offset %d not 8-aligned (layout %+v)", s, off, l)
			}
		}
		if l.end < l.featsOff+s.n*s.dim*8 {
			t.Errorf("shape %+v: end %d too small", s, l.end)
		}
	}
}
