//go:build linux

package retrieval

import (
	"fmt"
	"os"
	"syscall"
)

// pqMapFile maps path read-only and returns the file bytes plus an unmap
// closer. Mapping rather than reading is what makes PQ node cold-starts
// cheap at corpus scale: the kernel faults pages in lazily, so a node is
// serving as soon as the header and code matrix are warm while the large
// exact-feature tail loads on demand as re-ranks touch it.
func pqMapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// Zero-length mappings are invalid; hand back an empty slice and
		// let the decoder reject the file as truncated.
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("retrieval: pq index: %s: %d bytes exceeds address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("retrieval: pq index: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
