//go:build !linux

package retrieval

import "os"

// pqMapFile reads path whole on platforms without the mmap fast path. The
// decoder behaves identically either way; only the residency of the bytes
// differs.
func pqMapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
