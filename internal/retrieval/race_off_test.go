//go:build !race

package retrieval

// raceEnabled reports whether the race detector instruments this build;
// its write barriers add allocations that break exact AllocsPerRun counts.
const raceEnabled = false
